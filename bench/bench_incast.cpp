// N-to-1 synchronized incast into one VOQ, timed against the rotation's
// night->day edge: every wave of senders fires a short transfer at the same
// instant, 30us before the circuit day opens, so the burst piles into the
// rack-0 -> rack-1 VOQ during the blackout and releases the moment the
// optical day begins. This is the worst case the queue disciplines exist
// for, and the bench runs the identical workload under each of them:
//
//   droptail    the paper's bounded VOQ (the baseline)
//   codel       CoDel dropping at dequeue (RFC 8289 scaled to RDCN RTTs)
//   codel-ecn   CoDel marking ECN-capable packets instead of dropping
//   delaymark   instantaneous-sojourn ECN marking
//   sharedpool  dynamic-threshold sharing of one ToR buffer pool
//
// Reported per discipline: flow completion percentiles plus the VOQ's
// drop/mark breakdown and sojourn tail — the profiles must differ, that is
// the point of the axis. With --out the same table is written as
// tdtcp-bench/1 JSON (one run per discipline, counters name-keyed), which
// is what the tracked BENCH_incast.json baseline holds; diff against it
// with tools/bench_compare.py --metric=NAME.
#include "bench_util.hpp"

#include "rdcn/controller.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

constexpr int kSenders = 12;  // N-to-1 fan-in per wave
// ~25 segments per flow: the synchronized fan-in is ~300 packets against a
// 16-packet VOQ, so the burst spills across the circuit day into packet
// days and every discipline's policy actually gets exercised.
constexpr std::uint64_t kFlowBytes = 25 * 8940;

struct QdiscSetup {
  const char* name;
  QueueDisc::Config voq;
};

std::vector<QdiscSetup> Setups() {
  return {
      {"droptail", {.kind = QdiscKind::kDropTail}},
      {"codel", {.kind = QdiscKind::kCodel}},
      {"codel-ecn", {.kind = QdiscKind::kCodel, .codel_ecn = true}},
      {"delaymark", {.kind = QdiscKind::kDelayMark}},
      {"sharedpool",
       {.kind = QdiscKind::kSharedPool, .capacity_packets = 64}},
  };
}

struct IncastStats {
  std::vector<double> fct_us;
  int aborted = 0;
  QueueDisc::Stats voq;  // the incast-side VOQ (rack 0 -> rack 1)
};

IncastStats MeasureIncast(const QueueDisc::Config& voq, int waves) {
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp);
  cfg.topology.voq = voq;
  Simulator sim;
  Random rng(cfg.seed);
  Topology topo(sim, rng, cfg.topology);
  RdcnController::Config rc;
  rc.schedule = cfg.schedule;
  rc.packet_mode = cfg.topology.packet_mode;
  rc.circuit_mode = cfg.topology.circuit_mode;
  RdcnController controller(sim, rc, {topo.port(0, 1), topo.port(1, 0)},
                            {topo.tor(0), topo.tor(1)});
  controller.Start();

  // ECN-capable transport under every discipline so the marking variants
  // have something to mark (capability, not DCTCP's response, is what the
  // drop/mark profile needs).
  TcpConfig base = MakeVariantConfig(Variant::kTdtcp, cfg.workload.base);
  base.ecn_enabled = true;
  base.time_wait_duration = SimTime::Micros(10);

  const Schedule schedule(cfg.schedule);
  const SimTime week = schedule.week_length();
  // The circuit day's start within the week. The data barrier fires in the
  // middle of the blackout right before it, so the fan-in piles into the
  // VOQ while the fabric is dark and releases at the night->day edge; the
  // connections themselves are established over the preceding packet day
  // so no handshake RTT desynchronizes the burst.
  const SimTime day_open =
      schedule.slot_length() *
      static_cast<std::int64_t>(cfg.schedule.circuit_day);
  const SimTime lead = cfg.schedule.night_length / 2;
  const SimTime connect_lead = SimTime::Micros(400);

  IncastStats stats;
  std::vector<std::unique_ptr<TcpConnection>> conns;
  struct StartEnv {
    Simulator& sim;
    Topology& topo;
    TcpConfig& base;
    std::vector<std::unique_ptr<TcpConnection>>& conns;
    IncastStats& stats;
  } env{sim, topo, base, conns, stats};
  for (int w = 0; w < waves; ++w) {
    // Wave w targets week w+1's night->day edge (week 0 is warm-up free of
    // incast so the schedule is already rotating).
    const SimTime fire = week * (w + 1) + day_open - lead;
    for (int s = 0; s < kSenders; ++s) {
      const FlowId id = static_cast<FlowId>(1000 + w * kSenders + s);
      const std::uint32_t host_idx = static_cast<std::uint32_t>(s);
      sim.ScheduleAt(fire - connect_lead, [e = &env, id, host_idx, fire] {
        TcpConfig sc = e->base;
        TcpConfig rc = sc;
        rc.close_on_peer_fin = true;
        auto rx = std::make_unique<TcpConnection>(
            e->sim, e->topo.host(1, 0), id, e->topo.host_id(0, host_idx), rc);
        rx->Listen();
        auto tx = std::make_unique<TcpConnection>(
            e->sim, e->topo.host(0, host_idx), id, e->topo.host_id(1, 0), sc);
        IncastStats& stats = e->stats;
        Simulator& sim = e->sim;
        tx->SetClosedCallback([&stats, &sim, fire](CloseReason reason) {
          if (reason == CloseReason::kNormal) {
            stats.fct_us.push_back((sim.now() - fire).micros_f());
          } else {
            ++stats.aborted;
          }
        });
        tx->Connect();
        // The data barrier: every established sender releases its burst at
        // the same instant, mid-blackout.
        TcpConnection* tx_raw = tx.get();
        sim.ScheduleAt(fire, [tx_raw] {
          tx_raw->AddAppData(kFlowBytes);
          tx_raw->Close();  // lingering close: FIN rides behind the payload
        });
        e->conns.push_back(std::move(rx));
        e->conns.push_back(std::move(tx));
      });
    }
  }

  sim.RunUntil(week * (waves + 2) + SimTime::Millis(2));
  stats.voq = topo.port(0, 1)->voq().stats();
  return stats;
}

BenchRun ToRun(const QdiscSetup& setup, const IncastStats& s, int waves) {
  BenchRun run;
  run.name = setup.name;
  run.iterations = 1;
  auto& c = run.counters;
  c["completed"] = static_cast<double>(s.fct_us.size());
  c["aborted"] = s.aborted;
  c["flows"] = static_cast<double>(waves) * kSenders;
  c["fct_p50_us"] = Percentile(s.fct_us, 50);
  c["fct_p99_us"] = Percentile(s.fct_us, 99);
  c["voq_drops"] = static_cast<double>(s.voq.dropped);
  c["voq_ce_marked"] = static_cast<double>(s.voq.ce_marked);
  c["voq_codel_drops"] = static_cast<double>(s.voq.codel_drops);
  c["voq_codel_marks"] = static_cast<double>(s.voq.codel_marks);
  c["voq_delay_marked"] = static_cast<double>(s.voq.delay_marked);
  c["voq_shared_rejected"] = static_cast<double>(s.voq.shared_rejected);
  c["voq_sojourn_p99_us"] = s.voq.SojournPercentileUs(99);
  c["voq_sojourn_max_us"] = s.voq.max_sojourn.micros_f();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 20);
  const int waves = args.duration_ms;  // legacy: positional arg is the count

  std::vector<QdiscSetup> setups = Setups();
  if (!args.qdisc.empty()) {
    // --qdisc narrows the axis to one discipline (codel keeps both modes).
    std::erase_if(setups, [&](const QdiscSetup& s) {
      return QdiscKindName(s.voq.kind) != args.qdisc;
    });
  }

  std::printf("Incast: %d-to-1 synchronized waves (%d waves, %llu KB per "
              "flow), fired 30us before\nthe circuit day opens, per queue "
              "discipline:\n\n",
              kSenders, waves,
              static_cast<unsigned long long>(kFlowBytes / 1000));

  // One private Simulator per discipline on the pool; results are
  // bit-identical at any job count.
  std::vector<IncastStats> stats(setups.size());
  ParallelFor(args.jobs, setups.size(), [&](std::size_t i) {
    stats[i] = MeasureIncast(setups[i].voq, waves);
  });

  std::printf("%-11s %9s %8s %8s %9s %8s %8s %8s %10s %8s\n", "qdisc",
              "completed", "p50_us", "p99_us", "drops", "ce_mark", "codel",
              "delay", "shared_rej", "soj_p99");
  BenchReport report;
  report.context = "bench_incast";
  for (std::size_t i = 0; i < setups.size(); ++i) {
    const IncastStats& s = stats[i];
    const BenchRun run = ToRun(setups[i], s, waves);
    std::printf(
        "%-11s %6zu/%-3d %8.0f %8.0f %9.0f %8.0f %8.0f %8.0f %10.0f %8.0f\n",
        setups[i].name, s.fct_us.size(), waves * kSenders,
        run.counters.at("fct_p50_us"), run.counters.at("fct_p99_us"),
        run.counters.at("voq_drops"), run.counters.at("voq_ce_marked"),
        run.counters.at("voq_codel_drops") +
            run.counters.at("voq_codel_marks"),
        run.counters.at("voq_delay_marked"),
        run.counters.at("voq_shared_rejected"),
        run.counters.at("voq_sojourn_p99_us"));
    report.runs.push_back(run);
  }

  std::printf("\nexpectation: the disciplines trade loss for delay "
              "differently — drop-tail takes the\nfull-buffer sojourn, "
              "CoDel/delay-mark bound it (dropping or marking instead), "
              "and the\nshared pool moves the admission decision to the "
              "ToR's free buffer.\n");

  if (!args.out.empty()) {
    try {
      WriteBenchJson(args.out + ".json", report);
      std::fprintf(stderr, "  wrote %s.json (schema %s)\n", args.out.c_str(),
                   kBenchSchemaVersion);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  --out failed: %s\n", e.what());
    }
  }
  return 0;
}
