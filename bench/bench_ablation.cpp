// Ablation bench: which TDTCP design decisions carry the win?
//
//   full            — TDTCP as designed
//   -relaxed        — §3.4 relaxed reordering detection off (classic
//                     fast-retransmit marks cross-TDN holes lost)
//   -per_tdn_rtt    — §4.4 RTT sample matching off (type-3 samples pollute)
//   -synth_rto      — §4.4 synthesized timeout off (per-TDN RTO only)
//   -notifications  — single-state CUBIC (no per-TDN modeling at all)
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 80);
  const int ms = args.duration_ms;

  struct Row {
    const char* name;
    bool relaxed;
    bool per_tdn_rtt;
    bool synth_rto;
    bool tdtcp;
    bool pacing;
  };
  const Row rows[] = {
      {"full", true, true, true, true, false},
      {"-relaxed", false, true, true, true, false},
      {"-per_tdn_rtt", true, false, true, true, false},
      {"-synth_rto", true, true, false, true, false},
      {"-notifications", true, true, true, false, false},  // = plain cubic
      {"+pacing", true, true, true, true, true},  // §5.2's burst mitigation
  };

  // Rows are a custom axis (engine flags, not the standard grid), so they
  // go to the pool as fully-resolved cases.
  std::vector<SweepCase> cases;
  for (const auto& row : rows) {
    SweepCase c;
    c.label = row.name;
    c.config = PaperConfig(row.tdtcp ? Variant::kTdtcp : Variant::kCubic)
                   .WithFlows(8)
                   .WithDurationMs(ms);
    c.config.workload.base.relaxed_reordering = row.relaxed;
    c.config.workload.base.per_tdn_rtt = row.per_tdn_rtt;
    c.config.workload.base.synthesized_rto = row.synth_rto;
    c.config.workload.base.pacing_enabled = row.pacing;
    cases.push_back(std::move(c));
  }

  std::printf("TDTCP ablations (%d ms, 8 flows, paper RDCN config)\n\n", ms);
  std::printf("%-16s %10s %8s %8s %8s %8s\n", "config", "goodput", "rtx",
              "rto", "undo", "spur");

  const std::vector<ExperimentResult> results = RunCases(cases, args.jobs);
  const double full_bps = results.front().goodput_bps;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const ExperimentResult& r = results[i];
    std::printf("%-16s %7.2f Gb %8llu %8llu %8llu %8llu   (%+.1f%% vs full)\n",
                cases[i].label.c_str(), r.goodput_bps / 1e9,
                static_cast<unsigned long long>(r.retransmissions),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.undo_events),
                static_cast<unsigned long long>(r.duplicate_segments),
                100.0 * (r.goodput_bps / full_bps - 1.0));
  }
  return 0;
}
