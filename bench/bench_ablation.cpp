// Ablation bench: which TDTCP design decisions carry the win?
//
//   full            — TDTCP as designed
//   -relaxed        — §3.4 relaxed reordering detection off (classic
//                     fast-retransmit marks cross-TDN holes lost)
//   -per_tdn_rtt    — §4.4 RTT sample matching off (type-3 samples pollute)
//   -synth_rto      — §4.4 synthesized timeout off (per-TDN RTO only)
//   -notifications  — single-state CUBIC (no per-TDN modeling at all)
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const int ms = DurationMsFromArgs(argc, argv, 80);

  struct Row {
    const char* name;
    bool relaxed;
    bool per_tdn_rtt;
    bool synth_rto;
    bool tdtcp;
    bool pacing;
  };
  const Row rows[] = {
      {"full", true, true, true, true, false},
      {"-relaxed", false, true, true, true, false},
      {"-per_tdn_rtt", true, false, true, true, false},
      {"-synth_rto", true, true, false, true, false},
      {"-notifications", true, true, true, false, false},  // = plain cubic
      {"+pacing", true, true, true, true, true},  // §5.2's burst mitigation
  };

  std::printf("TDTCP ablations (%d ms, 8 flows, paper RDCN config)\n\n", ms);
  std::printf("%-16s %10s %8s %8s %8s %8s\n", "config", "goodput", "rtx",
              "rto", "undo", "spur");

  double full_bps = 0;
  for (const auto& row : rows) {
    ExperimentConfig cfg = PaperConfig(row.tdtcp ? Variant::kTdtcp
                                                 : Variant::kCubic);
    cfg.duration = SimTime::Millis(ms);
    cfg.warmup = SimTime::Millis(ms / 8);
    cfg.workload.num_flows = 8;
    cfg.workload.base.relaxed_reordering = row.relaxed;
    cfg.workload.base.per_tdn_rtt = row.per_tdn_rtt;
    cfg.workload.base.synthesized_rto = row.synth_rto;
    cfg.workload.base.pacing_enabled = row.pacing;
    std::fprintf(stderr, "  running %s...\n", row.name);
    ExperimentResult r = RunExperiment(cfg);
    if (full_bps == 0) full_bps = r.goodput_bps;
    std::printf("%-16s %7.2f Gb %8llu %8llu %8llu %8llu   (%+.1f%% vs full)\n",
                row.name, r.goodput_bps / 1e9,
                static_cast<unsigned long long>(r.retransmissions),
                static_cast<unsigned long long>(r.timeouts),
                static_cast<unsigned long long>(r.undo_events),
                static_cast<unsigned long long>(r.duplicate_segments),
                100.0 * (r.goodput_bps / full_bps - 1.0));
  }
  return 0;
}
