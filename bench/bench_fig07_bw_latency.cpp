// Figure 7 (§5.2): all TCP variants under both bandwidth and latency
// differences. (a) sequence graphs; (b) ToR VOQ occupancy over time.
//
// Expected shape: TDTCP and reTCPdyn near-optimal; reTCP/DCTCP/CUBIC in the
// middle; MPTCP below CUBIC; TDTCP with the lowest VOQ occupancy, with an
// "initial burst" spike at the optical-to-packet transition (1380us).
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 80);
  const ExperimentConfig base =
      PaperConfig(Variant::kCubic).WithFlows(8).WithDurationMs(args.duration_ms);

  std::printf("Figure 7: bandwidth + latency difference "
              "(packet 10G/~100us, optical 100G/~40us), %d ms averaged\n",
              args.duration_ms);

  const std::vector<Variant> variants = {
      Variant::kTdtcp, Variant::kRetcpDyn, Variant::kRetcp,
      Variant::kDctcp, Variant::kCubic,    Variant::kMptcp,
  };
  auto runs = RunVariants(variants, base, args);

  std::printf("\n--- (a) expected TCP sequence number ---\n");
  auto seq = SeqSeries(runs);
  PrintSeqTable(seq, 100.0);

  std::printf("\n--- (b) ToR VOQ occupancy (packets) ---\n");
  auto voq = VoqSeries(runs);
  PrintSeqTable(voq, 100.0, "packets");

  // Mean VOQ occupancy: the paper's claim is TDTCP lowest.
  std::printf("\nmean VOQ occupancy:\n");
  for (const auto& r : runs) {
    double sum = 0;
    for (const auto& p : r.result.voq_curve) sum += p.mean;
    std::printf("  %-10s %6.2f packets\n", VariantName(r.variant),
                r.result.voq_curve.empty() ? 0.0
                                           : sum / r.result.voq_curve.size());
  }

  PrintGoodputSummary(runs, AnalyticOptimalBps(base),
                      static_cast<double>(base.topology.packet_mode.rate_bps));

  WriteSeriesCsv("fig07a_seq.csv", seq);
  WriteSeriesCsv("fig07b_voq.csv", voq);
  std::printf("\nwrote fig07a_seq.csv, fig07b_voq.csv\n");
  return 0;
}
