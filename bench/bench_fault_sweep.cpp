// Robustness sweep: goodput under an unreliable control plane.
//
// Sweeps the TDN-change notification loss rate and added delivery delay
// (fault/fault_plan.hpp) for TDTCP against the CUBIC and reTCP baselines,
// answering §3.2's graceful-degradation question: when the ToR's ICMP
// notifications are lost or late, TDTCP's data-path TDN inference should
// hold goodput near the fault-free level instead of collapsing to whatever
// the stale per-TDN state happens to allow.
//
// Each point is one deterministic experiment; the run also reports the
// fault-injector accounting (faults injected, notifications dropped, stale
// deliveries filtered, inference-recovered switches) so regressions in the
// recovery path show up as counters, not just goodput.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

constexpr double kLossRates[] = {0.0, 0.01, 0.05, 0.10, 0.20};
constexpr int kDelaysUs[] = {0, 10, 50, 200};
constexpr Variant kVariants[] = {Variant::kTdtcp, Variant::kCubic,
                                 Variant::kRetcp};

ExperimentConfig FaultConfig(Variant v, int ms, std::uint64_t seed,
                             double notify_loss, int notify_delay_us) {
  ExperimentConfig cfg = PaperConfig(v)
                             .WithDurationMs(ms)
                             .WithSeed(seed)
                             .WithSampling(false, false);
  cfg.fault.control.notify_loss_rate = notify_loss;
  cfg.fault.control.notify_delay_mean = SimTime::Micros(notify_delay_us);
  return cfg;
}

std::string PointLabel(Variant v, double loss, int delay_us) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s/loss=%g/delay=%dus", VariantName(v), loss,
                delay_us);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 60);
  const int ms = args.duration_ms;
  const std::vector<std::uint64_t> seeds = args.SeedList();

  std::printf("Fault sweep: goodput vs notification loss / delay\n");

  // One axis at a time (loss with zero delay, delay with zero loss), the
  // grid a paper would plot as two line charts.
  std::vector<SweepCase> cases;
  for (Variant v : kVariants) {
    for (double loss : kLossRates) {
      for (std::uint64_t seed : seeds) {
        cases.push_back(SweepCase{PointLabel(v, loss, 0),
                                  FaultConfig(v, ms, seed, loss, 0)});
      }
    }
    for (int delay : kDelaysUs) {
      if (delay == 0) continue;  // shared fault-free point from the loss axis
      for (std::uint64_t seed : seeds) {
        cases.push_back(SweepCase{PointLabel(v, 0.0, delay),
                                  FaultConfig(v, ms, seed, 0.0, delay)});
      }
    }
  }

  std::fprintf(stderr, "  sweep: %zu points x %d seed%s, jobs=%d...\n",
               cases.size() / seeds.size(), args.seeds,
               args.seeds == 1 ? "" : "s", ResolveJobs(args.jobs));
  std::vector<ExperimentResult> results = RunCases(cases, args.jobs);

  // Assemble a SweepResult (one cell per point, seeds aggregated) so --out
  // gets the standard schema-versioned JSON/CSV.
  SweepResult sweep;
  sweep.jobs = ResolveJobs(args.jobs);
  for (std::size_t i = 0; i < cases.size(); i += seeds.size()) {
    SweepCell cell;
    cell.label = cases[i].label;
    cell.variant = cases[i].config.workload.variant;
    cell.duration = cases[i].config.duration;
    for (std::size_t k = 0; k < seeds.size(); ++k) {
      cell.runs.push_back(
          SweepRun{cases[i + k].config.seed, std::move(results[i + k])});
    }
    cell.metrics = AggregateRuns(cell.runs);
    sweep.cells.push_back(std::move(cell));
  }
  MaybeWriteSweep(args, sweep);

  const auto cell_at = [&](Variant v, double loss,
                           int delay) -> const SweepCell* {
    const std::string label = PointLabel(v, loss, delay);
    for (const SweepCell& c : sweep.cells) {
      if (c.label == label) return &c;
    }
    return nullptr;
  };
  const auto mean_of = [](const SweepCell* c, const char* name) {
    if (!c) return 0.0;
    for (const auto& [n, s] : c->metrics) {
      if (n == name) return s.mean;
    }
    return 0.0;
  };

  std::printf("\n--- goodput (Gbps) vs notification loss rate ---\n");
  std::printf("%-10s", "variant");
  for (double loss : kLossRates) std::printf(" %9.0f%%", loss * 100);
  std::printf("\n");
  for (Variant v : kVariants) {
    std::printf("%-10s", VariantName(v));
    for (double loss : kLossRates) {
      std::printf(" %10.2f", mean_of(cell_at(v, loss, 0), "goodput_bps") / 1e9);
    }
    std::printf("\n");
  }

  std::printf("\n--- goodput (Gbps) vs notification delay ---\n");
  std::printf("%-10s", "variant");
  for (int d : kDelaysUs) std::printf(" %8dus", d);
  std::printf("\n");
  for (Variant v : kVariants) {
    std::printf("%-10s", VariantName(v));
    for (int d : kDelaysUs) {
      std::printf(" %10.2f",
                  mean_of(cell_at(v, d == 0 ? 0.0 : 0.0, d), "goodput_bps") / 1e9);
    }
    std::printf("\n");
  }

  std::printf("\n--- TDTCP recovery accounting ---\n");
  std::printf("%-18s %10s %10s %10s %10s\n", "point", "goodput", "dropped",
              "inferred", "stale");
  for (double loss : kLossRates) {
    const SweepCell* c = cell_at(Variant::kTdtcp, loss, 0);
    std::printf("loss=%-12g %7.2f Gb %10.0f %10.0f %10.0f\n", loss,
                mean_of(c, "goodput_bps") / 1e9,
                mean_of(c, "notifications_dropped"),
                mean_of(c, "tdn_inferred_switches"),
                mean_of(c, "stale_notifications"));
  }

  // Headline graceful-degradation figure: TDTCP's retained goodput at the
  // worst loss point relative to fault-free.
  const double base =
      mean_of(cell_at(Variant::kTdtcp, 0.0, 0), "goodput_bps");
  const double worst =
      mean_of(cell_at(Variant::kTdtcp, kLossRates[4], 0), "goodput_bps");
  if (base > 0) {
    std::printf("\n  tdtcp retains %.1f%% of fault-free goodput at %.0f%% "
                "notification loss\n",
                100.0 * worst / base, kLossRates[4] * 100);
  }
  return 0;
}
