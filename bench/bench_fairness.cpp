// Fairness across competing flows (§3.5's open question).
//
// The paper expects each TDN's CCA to retain the fairness of its
// single-path sibling over long horizons, with possible short-term
// anomalies. We measure Jain's fairness index across the per-flow goodputs
// of a rack of competing long-lived flows, per variant, plus the max/min
// flow ratio — on the paper's RDCN and on a static single-path network as
// the control.
#include "bench_util.hpp"

#include "rdcn/controller.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

struct FairnessResult {
  double jain = 0;
  double max_min_ratio = 0;
  double aggregate_gbps = 0;
};

FairnessResult MeasureFairness(Variant v, int ms, int flows, bool rdcn) {
  ExperimentConfig cfg = PaperConfig(v);
  cfg.workload.num_flows = static_cast<std::uint32_t>(flows);
  // Static packet network control: the circuit never visits this pair.
  if (!rdcn) cfg.schedule.circuit_day = ScheduleConfig::kNoCircuitDay;
  Simulator sim;
  Random rng(cfg.seed);
  Topology topo(sim, rng, cfg.topology);
  RdcnController::Config rc;
  rc.schedule = cfg.schedule;
  rc.packet_mode = cfg.topology.packet_mode;
  rc.circuit_mode = cfg.topology.circuit_mode;
  rc.dynamic_voq = cfg.dynamic_voq;
  RdcnController controller(sim, rc, {topo.port(0, 1), topo.port(1, 0)},
                            {topo.tor(0), topo.tor(1)});
  Workload workload(sim, topo, cfg.workload);
  controller.Start();
  workload.Start();

  // Measure per-flow bytes over the post-warmup window.
  const SimTime warmup = SimTime::Millis(ms / 8);
  std::vector<std::uint64_t> at_warmup(flows, 0);
  sim.Schedule(warmup, [&] {
    for (int i = 0; i < flows; ++i) {
      at_warmup[static_cast<std::size_t>(i)] =
          workload.flows()[static_cast<std::size_t>(i)].bytes_acked();
    }
  });
  sim.RunUntil(SimTime::Millis(ms));

  FairnessResult out;
  double sum = 0, sum_sq = 0, max_v = 0, min_v = 1e30;
  for (int i = 0; i < flows; ++i) {
    const double bytes = static_cast<double>(
        workload.flows()[static_cast<std::size_t>(i)].bytes_acked() -
        at_warmup[static_cast<std::size_t>(i)]);
    sum += bytes;
    sum_sq += bytes * bytes;
    max_v = std::max(max_v, bytes);
    min_v = std::min(min_v, bytes);
  }
  out.jain = (sum * sum) / (flows * sum_sq);
  out.max_min_ratio = min_v > 0 ? max_v / min_v : 1e9;
  out.aggregate_gbps =
      sum * 8.0 / (SimTime::Millis(ms) - warmup).seconds() / 1e9;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 120);
  const int ms = args.duration_ms;
  const int flows = 8;

  std::printf("Fairness across %d competing flows (%d ms, Jain's index; "
              "1.0 = perfectly fair)\n\n", flows, ms);
  std::printf("%-10s | %8s %9s %10s | %8s %9s\n", "variant", "jain",
              "max/min", "agg Gbps", "jain", "max/min");
  std::printf("%-10s | %28s | %18s\n", "", "--------- RDCN ----------",
              "-- static pkt --");

  // Each (variant, network) measurement owns a private Simulator, so the
  // pairs fan out on the shared pool.
  const std::vector<Variant> variants = {Variant::kTdtcp, Variant::kCubic,
                                         Variant::kDctcp, Variant::kRetcpDyn};
  std::vector<FairnessResult> rdcn(variants.size()), ctrl(variants.size());
  ParallelFor(args.jobs, variants.size() * 2, [&](std::size_t i) {
    const Variant v = variants[i / 2];
    if (i % 2 == 0) {
      rdcn[i / 2] = MeasureFairness(v, ms, flows, true);
    } else {
      ctrl[i / 2] = MeasureFairness(v, ms, flows, false);
    }
  });

  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::printf("%-10s | %8.3f %9.2f %10.2f | %8.3f %9.2f\n",
                VariantName(variants[i]), rdcn[i].jain, rdcn[i].max_min_ratio,
                rdcn[i].aggregate_gbps, ctrl[i].jain, ctrl[i].max_min_ratio);
  }
  std::printf("\nexpectation (§3.5): per-TDN CCAs inherit their single-path "
              "siblings' fairness;\nshort-term anomalies possible in the "
              "RDCN column.\n");
  return 0;
}
