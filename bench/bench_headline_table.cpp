// The headline comparison (§1, §5.2): long-lived flow goodput for every
// variant under the paper's RDCN configuration, with ratios against TDTCP.
//
// Paper claims: TDTCP ~24% above single-path CUBIC and DCTCP, ~41% above
// MPTCP, competitive with reTCP(dyn) — without requiring switch buffer
// resizing.
//
// Reference usage of the sweep engine + builder API: the whole bench is a
// declarative spec (variants x seeds) handed to RunVariants; with
// --seeds=K every number below is a cross-seed mean and the goodput column
// gains a 95% confidence interval.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 120);
  const ExperimentConfig base = PaperConfig(Variant::kCubic)
                                    .WithFlows(8)
                                    .WithDurationMs(args.duration_ms);

  std::printf("Headline table: long-lived flow goodput, %d ms simulated, "
              "%u flows, %d seed%s\n", args.duration_ms,
              base.workload.num_flows, args.seeds, args.seeds == 1 ? "" : "s");

  const std::vector<Variant> variants = {
      Variant::kTdtcp, Variant::kRetcpDyn, Variant::kRetcp, Variant::kDctcp,
      Variant::kCubic, Variant::kReno,     Variant::kMptcp,
  };
  auto runs = RunVariants(variants, base, args);

  double tdtcp_bps = 0;
  for (const auto& r : runs) {
    if (r.variant == Variant::kTdtcp) tdtcp_bps = r.stat("goodput_bps")->mean;
  }

  const double optimal = AnalyticOptimalBps(base);
  const double pkt_only = static_cast<double>(base.topology.packet_mode.rate_bps);

  std::printf("\n%-10s %10s %9s %8s %10s %9s %8s %8s\n", "variant", "goodput",
              "ci95", "of-opt", "tdtcp-adv", "rtx", "rto", "spur");
  for (const auto& r : runs) {
    const MetricStats& g = *r.stat("goodput_bps");
    std::printf("%-10s %7.2f Gb %8.2f %7.1f%% %+9.1f%% %8.0f %8.0f %8.0f\n",
                VariantName(r.variant), g.mean / 1e9, g.ci95 / 1e9,
                100.0 * g.mean / optimal,
                100.0 * (tdtcp_bps / g.mean - 1.0),
                r.stat("retransmissions")->mean, r.stat("timeouts")->mean,
                r.stat("duplicate_segments")->mean);
  }
  std::printf("%-10s %7.2f Gb %8s %7.1f%% %+9.1f%%\n", "pkt-only",
              pkt_only / 1e9, "", 100.0 * pkt_only / optimal,
              100.0 * (tdtcp_bps / pkt_only - 1.0));
  std::printf("%-10s %7.2f Gb %8s %7.1f%%\n", "optimal", optimal / 1e9, "",
              100.0);

  std::printf("\npaper reference: tdtcp +24%% vs cubic/dctcp, +41%% vs mptcp, "
              "~= retcpdyn\n");
  return 0;
}
