// The headline comparison (§1, §5.2): long-lived flow goodput for every
// variant under the paper's RDCN configuration, with ratios against TDTCP.
//
// Paper claims: TDTCP ~24% above single-path CUBIC and DCTCP, ~41% above
// MPTCP, competitive with reTCP(dyn) — without requiring switch buffer
// resizing.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const int ms = DurationMsFromArgs(argc, argv, 120);
  ExperimentConfig base = PaperConfig(Variant::kCubic);
  base.duration = SimTime::Millis(ms);
  base.warmup = SimTime::Millis(ms / 8);
  base.workload.num_flows = 8;

  std::printf("Headline table: long-lived flow goodput, %d ms simulated, "
              "%u flows\n", ms, base.workload.num_flows);

  const std::vector<Variant> variants = {
      Variant::kTdtcp, Variant::kRetcpDyn, Variant::kRetcp, Variant::kDctcp,
      Variant::kCubic, Variant::kReno,     Variant::kMptcp,
  };
  auto runs = RunVariants(variants, base);

  double tdtcp_bps = 0;
  for (const auto& r : runs) {
    if (r.variant == Variant::kTdtcp) tdtcp_bps = r.result.goodput_bps;
  }

  const double optimal = AnalyticOptimalBps(base);
  const double pkt_only = static_cast<double>(base.topology.packet_mode.rate_bps);

  std::printf("\n%-10s %10s %8s %10s %9s %8s %8s\n", "variant", "goodput",
              "of-opt", "tdtcp-adv", "rtx", "rto", "spur");
  for (const auto& r : runs) {
    std::printf("%-10s %7.2f Gb %7.1f%% %+9.1f%% %8llu %8llu %8llu\n",
                VariantName(r.variant), r.result.goodput_bps / 1e9,
                100.0 * r.result.goodput_bps / optimal,
                100.0 * (tdtcp_bps / r.result.goodput_bps - 1.0),
                static_cast<unsigned long long>(r.result.retransmissions),
                static_cast<unsigned long long>(r.result.timeouts),
                static_cast<unsigned long long>(r.result.duplicate_segments));
  }
  std::printf("%-10s %7.2f Gb %7.1f%% %+9.1f%%\n", "pkt-only", pkt_only / 1e9,
              100.0 * pkt_only / optimal,
              100.0 * (tdtcp_bps / pkt_only - 1.0));
  std::printf("%-10s %7.2f Gb %7.1f%%\n", "optimal", optimal / 1e9, 100.0);

  std::printf("\npaper reference: tdtcp +24%% vs cubic/dctcp, +41%% vs mptcp, "
              "~= retcpdyn\n");
  return 0;
}
