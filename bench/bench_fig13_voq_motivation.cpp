// Figure 13 (Appendix A.3): ToR VOQ occupancy of single-path CUBIC and
// MPTCP in the motivation configuration (Fig. 2's setup), three weeks.
//
// Expected shape: CUBIC keeps the VOQ near-full during packet days and
// drains it quickly when the optical day starts (service outpaces arrival);
// MPTCP shows the drain-then-refill dip at the optical-to-packet switch.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 80);
  const ExperimentConfig base =
      PaperConfig(Variant::kCubic).WithFlows(8).WithDurationMs(args.duration_ms);

  std::printf("Figure 13 (A.3): ToR VOQ occupancy, motivation config, "
              "%d ms averaged\n", args.duration_ms);

  auto runs = RunVariants({Variant::kCubic, Variant::kMptcp}, base, args);
  auto voq = VoqSeries(runs);
  PrintSeqTable(voq, 50.0, "packets");

  WriteSeriesCsv("fig13_voq.csv", voq);
  std::printf("\nwrote fig13_voq.csv\n");
  return 0;
}
