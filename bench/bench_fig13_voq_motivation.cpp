// Figure 13 (Appendix A.3): ToR VOQ occupancy of single-path CUBIC and
// MPTCP in the motivation configuration (Fig. 2's setup), three weeks.
//
// Expected shape: CUBIC keeps the VOQ near-full during packet days and
// drains it quickly when the optical day starts (service outpaces arrival);
// MPTCP shows the drain-then-refill dip at the optical-to-packet switch.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const int ms = DurationMsFromArgs(argc, argv, 80);
  ExperimentConfig base = PaperConfig(Variant::kCubic);
  base.duration = SimTime::Millis(ms);
  base.warmup = SimTime::Millis(ms / 8);
  base.workload.num_flows = 8;

  std::printf("Figure 13 (A.3): ToR VOQ occupancy, motivation config, "
              "%d ms averaged\n", ms);

  auto runs = RunVariants({Variant::kCubic, Variant::kMptcp}, base);
  auto voq = VoqSeries(runs);
  PrintSeqTable(voq, 50.0, "packets");

  WriteSeriesCsv("fig13_voq.csv", voq);
  std::printf("\nwrote fig13_voq.csv\n");
  return 0;
}
