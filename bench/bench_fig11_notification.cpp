// Figure 11 + §5.4: TDN change notification optimizations.
//
// (1) End-to-end: TDTCP throughput with all three optimizations (cached
//     ICMP construction, pull-model kernel distribution, dedicated control
//     network) versus none — the paper reports +12.7%.
// (2) Component microbenchmarks mirroring §5.4's claims: generation-latency
//     ratio cached-vs-fresh at p50/p99 (8x / 2.7x), and delivery latency
//     control-vs-data network.
//
// Multiple flows per host make the push-model stagger visible.
#include "bench_util.hpp"

#include "net/tor_switch.hpp"
#include "sim/random.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

ExperimentConfig NotifyConfig(int ms, bool optimized) {
  // All rack hosts: the per-host generation loop and push walk hit the
  // tail flows.
  ExperimentConfig cfg =
      PaperConfig(Variant::kTdtcp).WithFlows(16).WithDurationMs(ms);
  if (!optimized) {
    cfg.topology.notify.cached_packet = false;       // fresh construction
    cfg.topology.notify.via_control_network = false; // data-plane ICMP
    cfg.topology.notify_dist.pull_model = false;     // per-flow push walk
    // §5.4: the pull model cut the all-flows update time by three orders of
    // magnitude; the unoptimized kernel walk leaves late flows with a large
    // fraction of the day already gone.
    cfg.topology.notify_dist.push_stagger = SimTime::Micros(12);
  }
  return cfg;
}

void GenerationLatencyMicrobench() {
  Simulator sim;
  Random rng(7);
  NotifyGenConfig cached;
  NotifyGenConfig fresh;
  fresh.cached_packet = false;
  ToRSwitch tor_cached(sim, 0, cached, &rng);
  ToRSwitch tor_fresh(sim, 1, fresh, &rng);
  Host host(sim, 0);
  tor_cached.AttachHost(0, nullptr, &host);
  tor_fresh.AttachHost(0, nullptr, &host);

  std::vector<double> cached_us, fresh_us;
  for (int i = 0; i < 5000; ++i) {
    tor_cached.NotifyHosts(0);
    cached_us.push_back(tor_cached.last_notify_latency()[0].micros_f());
    tor_fresh.NotifyHosts(0);
    fresh_us.push_back(tor_fresh.last_notify_latency()[0].micros_f());
  }
  const double c50 = Percentile(cached_us, 50), c99 = Percentile(cached_us, 99);
  const double f50 = Percentile(fresh_us, 50), f99 = Percentile(fresh_us, 99);
  std::printf("\n--- ICMP generation latency (per notification) ---\n");
  std::printf("  %-22s p50 %7.2f us   p99 %7.2f us\n", "fresh construction",
              f50, f99);
  std::printf("  %-22s p50 %7.2f us   p99 %7.2f us\n", "cached packet", c50, c99);
  std::printf("  speedup: %.1fx at p50, %.1fx at p99 "
              "(paper: 8x / 2.7x)\n", f50 / c50, f99 / c99);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 80);
  const int ms = args.duration_ms;

  std::printf("Figure 11 / §5.4: TDN change notification optimizations\n");

  const std::vector<SweepCase> cases = {
      {"optimized", NotifyConfig(ms, true)},
      {"unoptimized", NotifyConfig(ms, false)},
  };
  std::vector<ExperimentResult> results = RunCases(cases, args.jobs);
  const ExperimentResult& optimized = results[0];
  const ExperimentResult& unoptimized = results[1];

  std::vector<NamedSeries> series = {
      {"optimal", optimized.optimal_curve},
      {"optimized", optimized.seq_curve},
      {"unoptimized", unoptimized.seq_curve},
      {"packet_only", optimized.packet_only_curve},
  };
  PrintSeqTable(series, 100.0);

  std::printf("\n  optimized:   %6.2f Gbps\n", optimized.goodput_bps / 1e9);
  std::printf("  unoptimized: %6.2f Gbps\n", unoptimized.goodput_bps / 1e9);
  std::printf("  improvement: %+.1f%% (paper: +12.7%%)\n",
              100.0 * (optimized.goodput_bps / unoptimized.goodput_bps - 1.0));

  GenerationLatencyMicrobench();

  WriteSeriesCsv("fig11_notification.csv", series);
  std::printf("\nwrote fig11_notification.csv\n");
  return 0;
}
