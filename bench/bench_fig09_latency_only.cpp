// Figure 9 (§5.2): latency difference only at 100 Gbps — both TDNs run at
// the circuit rate; only propagation differs (~100us vs ~40us RTT).
//
// Expected shape: optimal and packet-only lines nearly overlap (packet-only
// is slightly higher because it skips reconfiguration blackouts); the
// buffer-filling variants (TDTCP, CUBIC, reTCP) perform near-identically;
// DCTCP — latency-sensitive — trails; MPTCP brings up the rear.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 80);
  ExperimentConfig base =
      PaperConfig(Variant::kCubic).WithFlows(8).WithDurationMs(args.duration_ms);
  // Both TDNs at 100 Gbps; only latency differs.
  base.topology.packet_mode.rate_bps = 100'000'000'000;
  // At 100G the BDP is ~140 jumbo segments; keep the paper's 16-packet VOQ.

  std::printf("Figure 9: latency difference only at 100 Gbps "
              "(~100us vs ~40us RTT), %d ms averaged\n", args.duration_ms);

  const std::vector<Variant> variants = {
      Variant::kTdtcp, Variant::kRetcpDyn, Variant::kRetcp,
      Variant::kDctcp, Variant::kCubic,    Variant::kMptcp,
  };
  auto runs = RunVariants(variants, base, args);

  auto seq = SeqSeries(runs);
  PrintSeqTable(seq, 100.0);

  PrintGoodputSummary(runs, AnalyticOptimalBps(base),
                      static_cast<double>(base.topology.packet_mode.rate_bps));

  WriteSeriesCsv("fig09_seq.csv", seq);
  std::printf("\nwrote fig09_seq.csv\n");
  return 0;
}
