// Figure 2 (§2.2 motivation): sequence graph of single-path TCP CUBIC and
// MPTCP in the hybrid RDCN over three optical weeks, against the analytic
// optimal and packet-only lines.
//
// Expected shape: both variants parallel the optimal line during packet
// days (unshaded) but fall far below it during the optical day (the
// 1200-1380us window of each 1400us week); MPTCP trails CUBIC.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 80);
  const ExperimentConfig base =
      PaperConfig(Variant::kCubic).WithFlows(8).WithDurationMs(args.duration_ms);

  std::printf("Figure 2: TCP variants in a hybrid RDCN (3 optical weeks, "
              "%d ms averaged)\n", args.duration_ms);
  std::printf("optical day = [1200,1380)us of each 1400us week\n");

  auto runs = RunVariants({Variant::kCubic, Variant::kMptcp}, base, args);
  auto series = SeqSeries(runs);
  PrintSeqTable(series, 100.0);

  PrintGoodputSummary(runs, AnalyticOptimalBps(base),
                      static_cast<double>(base.topology.packet_mode.rate_bps));

  WriteSeriesCsv("fig02_motivation.csv", series);
  std::printf("\nwrote fig02_motivation.csv\n");
  return 0;
}
