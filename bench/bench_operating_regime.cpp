// §3.5 Limitations: "TDTCP is most suitable to operate in networks where
// the periods between TDN changes are 1-100x path RTT."
//
// Two sweeps verify the claimed operating regime:
//   (1) day length from ~1 RTT to ~1000 RTT at the fixed 6:1 ratio — the
//       TDTCP advantage over CUBIC should peak in the paper's band and
//       shrink toward both extremes (fast changes look like per-packet load
//       balancing; slow changes amortize over CUBIC's convergence).
//   (2) packet:optical ratio at the paper's 180us day — the advantage
//       grows with the ratio (rarer circuit days are harder for single-path
//       TCP to exploit).
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

ExperimentConfig PointConfig(Variant v, SimTime day, SimTime night,
                             std::uint32_t num_days, int ms) {
  ExperimentConfig cfg = PaperConfig(v).WithFlows(8).WithDurationMs(ms);
  cfg.schedule.day_length = day;
  cfg.schedule.night_length = night;
  cfg.schedule.num_days = num_days;
  cfg.schedule.circuit_day = num_days - 1;
  cfg.WithSampling(false, false)
      .WithSampleInterval(SimTime::Micros(50))
      .WithPlotWeeks(1);
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 60);
  const int ms = args.duration_ms;

  std::printf("Operating regime sweeps (§3.5), %d ms per point, packet RTT "
              "~100us\n", ms);

  // Both sweeps' points go to one pool as fully-resolved cases (each point
  // has its own schedule AND duration, so the standard grid cross-product
  // does not apply): tdtcp/cubic pairs, day sweep first.
  const std::vector<int> day_sweep = {60, 180, 540, 1800, 6000};
  const std::vector<std::uint32_t> ratio_sweep = {2u, 4u, 7u, 10u, 14u};
  std::vector<SweepCase> cases;
  for (int day_us : day_sweep) {
    const SimTime day = SimTime::Micros(day_us);
    const SimTime night = SimTime::Micros(std::max(2, day_us / 9));
    // At least ~10 weeks of averaging, but bounded for the long-day points.
    const int week_ms = 7 * (day_us + day_us / 9) / 1000;
    const int run_ms = std::max(ms, std::min(10 * std::max(1, week_ms), 500));
    const std::string label = "day" + std::to_string(day_us) + "us";
    cases.push_back({label + "/tdtcp",
                     PointConfig(Variant::kTdtcp, day, night, 7, run_ms)});
    cases.push_back({label + "/cubic",
                     PointConfig(Variant::kCubic, day, night, 7, run_ms)});
  }
  for (std::uint32_t num_days : ratio_sweep) {
    const int run_ms = std::max(ms, static_cast<int>(num_days) * 8);
    const std::string label = "ratio" + std::to_string(num_days - 1);
    cases.push_back({label + "/tdtcp",
                     PointConfig(Variant::kTdtcp, SimTime::Micros(180),
                                 SimTime::Micros(20), num_days, run_ms)});
    cases.push_back({label + "/cubic",
                     PointConfig(Variant::kCubic, SimTime::Micros(180),
                                 SimTime::Micros(20), num_days, run_ms)});
  }

  std::fprintf(stderr, "  %zu points, jobs=%d...\n", cases.size(),
               ResolveJobs(args.jobs));
  const std::vector<ExperimentResult> results = RunCases(cases, args.jobs);

  std::printf("\n--- (1) day length sweep, 6:1 ratio (nights = day/9) ---\n");
  std::printf("%10s %10s | %9s %9s %9s\n", "day_us", "day/RTT", "tdtcp",
              "cubic", "advantage");
  std::size_t idx = 0;
  for (int day_us : day_sweep) {
    const double td = results[idx++].goodput_bps;
    const double cu = results[idx++].goodput_bps;
    std::printf("%10d %10.1f | %6.2f Gb %6.2f Gb %+8.1f%%\n", day_us,
                day_us / 100.0, td / 1e9, cu / 1e9, 100.0 * (td / cu - 1.0));
  }

  std::printf("\n--- (2) packet:optical ratio sweep, 180us days ---\n");
  std::printf("%10s | %9s %9s %9s\n", "ratio", "tdtcp", "cubic", "advantage");
  for (std::uint32_t num_days : ratio_sweep) {
    const double td = results[idx++].goodput_bps;
    const double cu = results[idx++].goodput_bps;
    std::printf("%8u:1 | %6.2f Gb %6.2f Gb %+8.1f%%\n", num_days - 1,
                td / 1e9, cu / 1e9, 100.0 * (td / cu - 1.0));
  }

  std::printf("\nexpectation: the advantage peaks when days are a few RTTs "
              "long and shrinks toward\nboth extremes (§3.5's two extreme "
              "cases).\n");
  return 0;
}
