// §3.5 Limitations: "TDTCP is most suitable to operate in networks where
// the periods between TDN changes are 1-100x path RTT."
//
// Two sweeps verify the claimed operating regime:
//   (1) day length from ~1 RTT to ~1000 RTT at the fixed 6:1 ratio — the
//       TDTCP advantage over CUBIC should peak in the paper's band and
//       shrink toward both extremes (fast changes look like per-packet load
//       balancing; slow changes amortize over CUBIC's convergence).
//   (2) packet:optical ratio at the paper's 180us day — the advantage
//       grows with the ratio (rarer circuit days are harder for single-path
//       TCP to exploit).
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

double Goodput(Variant v, SimTime day, SimTime night, std::uint32_t num_days,
               int ms) {
  ExperimentConfig cfg = PaperConfig(v);
  cfg.schedule.day_length = day;
  cfg.schedule.night_length = night;
  cfg.schedule.num_days = num_days;
  cfg.schedule.circuit_day = num_days - 1;
  cfg.duration = SimTime::Millis(ms);
  cfg.warmup = SimTime::Millis(ms / 8);
  cfg.workload.num_flows = 8;
  cfg.sample_voq = false;
  cfg.sample_reorder = false;
  cfg.sample_interval = SimTime::Micros(50);
  return RunExperiment(cfg, 1).goodput_bps;
}

}  // namespace

int main(int argc, char** argv) {
  const int ms = DurationMsFromArgs(argc, argv, 60);

  std::printf("Operating regime sweeps (§3.5), %d ms per point, packet RTT "
              "~100us\n", ms);

  std::printf("\n--- (1) day length sweep, 6:1 ratio (nights = day/9) ---\n");
  std::printf("%10s %10s | %9s %9s %9s\n", "day_us", "day/RTT", "tdtcp",
              "cubic", "advantage");
  for (int day_us : {60, 180, 540, 1800, 6000}) {
    const SimTime day = SimTime::Micros(day_us);
    const SimTime night = SimTime::Micros(std::max(2, day_us / 9));
    // At least ~10 weeks of averaging, but bounded for the long-day points.
    const int week_ms = 7 * (day_us + day_us / 9) / 1000;
    const int run_ms = std::max(ms, std::min(10 * std::max(1, week_ms), 500));
    std::fprintf(stderr, "  day=%dus...\n", day_us);
    const double td = Goodput(Variant::kTdtcp, day, night, 7, run_ms);
    const double cu = Goodput(Variant::kCubic, day, night, 7, run_ms);
    std::printf("%10d %10.1f | %6.2f Gb %6.2f Gb %+8.1f%%\n", day_us,
                day_us / 100.0, td / 1e9, cu / 1e9, 100.0 * (td / cu - 1.0));
  }

  std::printf("\n--- (2) packet:optical ratio sweep, 180us days ---\n");
  std::printf("%10s | %9s %9s %9s\n", "ratio", "tdtcp", "cubic", "advantage");
  for (std::uint32_t num_days : {2u, 4u, 7u, 10u, 14u}) {
    std::fprintf(stderr, "  ratio %u:1...\n", num_days - 1);
    const int run_ms = std::max(ms, static_cast<int>(num_days) * 8);
    const double td = Goodput(Variant::kTdtcp, SimTime::Micros(180),
                              SimTime::Micros(20), num_days, run_ms);
    const double cu = Goodput(Variant::kCubic, SimTime::Micros(180),
                              SimTime::Micros(20), num_days, run_ms);
    std::printf("%8u:1 | %6.2f Gb %6.2f Gb %+8.1f%%\n", num_days - 1,
                td / 1e9, cu / 1e9, 100.0 * (td / cu - 1.0));
  }

  std::printf("\nexpectation: the advantage peaks when days are a few RTTs "
              "long and shrinks toward\nboth extremes (§3.5's two extreme "
              "cases).\n");
  return 0;
}
