// Adversarial-schedule stability phase diagrams: sweeps rotation period x
// offered load (x RTO/RTT-ratio stressors) and lets the convergence oracle
// (trace/convergence.hpp) classify every cell as converged / oscillating /
// starved — the phase diagram is machine-checked, not eyeballed.
//
// Each cell runs the paper's two-rack fabric with a scaled schedule (the
// 9:1 day:night ratio and the one-circuit-day-in-seven week shape are kept,
// only the rotation period changes) under long-lived flows, with tracing on
// so RunExperiment's stability_* fields carry the oracle verdicts. The
// designed-to-oscillate cells reproduce the historical RTO-backoff
// phase-locking failure: schedule-oblivious cubic with SACK RTT sampling
// disabled and a minimum RTO in the same decade as the rotation week, so
// every backed-off retransmission lands in the same congested segment of
// the schedule (see DESIGN.md §13).
//
// Flags beyond the shared bench set:
//   --require-phases   exit nonzero unless the diagram shows at least one
//                      oracle-certified oscillating AND one converged cell
//                      (the stability_smoke tier-1 gate)
//
// With --out the per-cell verdict counters are written as tdtcp-bench/1
// JSON (the tracked BENCH_stability.json baseline, gated with
// tools/bench_compare.py) and the full results as tdtcp-sweep/1 JSON/CSV
// (<out>_sweep.json/.csv) carrying the stability_* metric family.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

struct StabilityArgs {
  bool require_phases = false;
};

StabilityArgs ParseStabilityArgs(int& argc, char** argv) {
  StabilityArgs out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--require-phases") == 0) {
      out.require_phases = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return out;
}

struct Cell {
  std::string name;
  Variant variant;
  int day_us;          // rotation period axis (night = day/9, week = 7 days)
  std::uint32_t flows; // load axis
  bool sack_rtt;       // off = RTO starves during recovery (stressor)
  bool loose_rto;      // min RTO ~ rotation week (RTO/RTT-ratio stressor)
};

std::vector<Cell> Cells() {
  // Rotation axis {45, 180, 540} µs days x load axis {2, 8} flows, plus the
  // RTO-stressor rows that reproduce the phase-locking limit cycle.
  return {
      Cell{"tdtcp/180us/hi", Variant::kTdtcp, 180, 8, true, false},
      Cell{"tdtcp/180us/lo", Variant::kTdtcp, 180, 2, true, false},
      Cell{"tdtcp/45us/hi", Variant::kTdtcp, 45, 8, true, false},
      Cell{"tdtcp/540us/hi", Variant::kTdtcp, 540, 8, true, false},
      Cell{"cubic/180us/hi", Variant::kCubic, 180, 8, true, false},
      Cell{"cubic/45us/hi", Variant::kCubic, 45, 8, true, false},
      Cell{"cubic/45us/hi/rto-lock", Variant::kCubic, 45, 8, false, true},
      Cell{"cubic/180us/hi/rto-lock", Variant::kCubic, 180, 8, false, true},
  };
}

ExperimentConfig CellConfig(const Cell& cell, const BenchArgs& args) {
  ExperimentConfig cfg = PaperConfig(cell.variant)
                             .WithFlows(cell.flows)
                             .WithDurationMs(args.duration_ms)
                             .WithSampling(false, false)
                             .WithSampleInterval(SimTime::Millis(1))
                             .WithTrace(1u << 18);
  // Scale the whole schedule, keeping the paper's 9:1 day:night ratio and
  // the 7-day week with one circuit day.
  cfg.schedule.day_length = SimTime::Micros(cell.day_us);
  cfg.schedule.night_length = SimTime::Micros(std::max(1, cell.day_us / 9));
  if (!cell.sack_rtt) cfg.workload.base.sack_rtt = false;
  if (cell.loose_rto) {
    // Minimum RTO in the same decade as the rotation week: each backoff
    // doubling lands the retransmission at the same phase of the schedule.
    cfg.workload.base.rtt.min_rto = SimTime::Micros(cell.day_us * 8);
    cfg.workload.base.rtt.initial_rto = SimTime::Micros(cell.day_us * 8);
  }
  ApplyQdisc(cfg, args);
  ApplyRecovery(cfg, args);
  ApplyPerturbation(cfg, args);
  return cfg;
}

// Cell-level phase: oscillating wins (one certified limit cycle makes the
// cell unstable), then starved, then converged.
const char* CellPhase(const ExperimentResult& r) {
  if (r.stability_oscillating > 0) return "oscillating";
  if (r.stability_starved > 0) return "starved";
  if (r.stability_converged > 0) return "converged";
  return "insufficient";
}

BenchRun ToRun(const Cell& cell, const ExperimentResult& r) {
  BenchRun run;
  run.name = cell.name;
  run.iterations = 1;
  auto& c = run.counters;
  c["converged"] = static_cast<double>(r.stability_converged);
  c["oscillating"] = static_cast<double>(r.stability_oscillating);
  c["starved"] = static_cast<double>(r.stability_starved);
  c["insufficient"] = static_cast<double>(r.stability_insufficient);
  c["worst_amplitude"] = r.stability_worst_amplitude;
  c["worst_period_us"] = r.stability_worst_period_us;
  c["goodput_gbps"] = r.goodput_bps / 1e9;
  c["timeouts"] = static_cast<double>(r.timeouts);
  c["trace_hash"] = static_cast<double>(r.trace_hash & ((1ull << 53) - 1));
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  StabilityArgs sargs = ParseStabilityArgs(argc, argv);
  const BenchArgs args = ParseBenchArgs(argc, argv, 60);

  const std::vector<Cell> cells = Cells();
  std::printf("Stability phase diagram: rotation period x load (x RTO "
              "stressors), two-rack\nfabric, %d ms per cell, convergence "
              "oracle verdicts per flow:\n\n", args.duration_ms);

  std::vector<ExperimentResult> results(cells.size());
  ParallelFor(args.jobs, cells.size(), [&](std::size_t i) {
    results[i] = RunExperiment(CellConfig(cells[i], args));
  });

  std::printf("%-26s %7s %5s | %5s %5s %5s %5s | %9s %10s %-12s\n", "cell",
              "day_us", "flows", "conv", "osc", "starv", "insuf", "worst_amp",
              "period_us", "phase");
  BenchReport report;
  report.context = "bench_stability";
  std::uint64_t oscillating_cells = 0, converged_cells = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    const ExperimentResult& r = results[i];
    const char* phase = CellPhase(r);
    if (std::strcmp(phase, "oscillating") == 0) ++oscillating_cells;
    if (std::strcmp(phase, "converged") == 0) ++converged_cells;
    std::printf("%-26s %7d %5u | %5llu %5llu %5llu %5llu | %9.2f %10.1f "
                "%-12s\n",
                cell.name.c_str(), cell.day_us, cell.flows,
                static_cast<unsigned long long>(r.stability_converged),
                static_cast<unsigned long long>(r.stability_oscillating),
                static_cast<unsigned long long>(r.stability_starved),
                static_cast<unsigned long long>(r.stability_insufficient),
                r.stability_worst_amplitude, r.stability_worst_period_us,
                phase);
    report.runs.push_back(ToRun(cell, r));
  }
  std::printf("\nphase diagram: %llu oscillating, %llu converged of %zu "
              "cells\n",
              static_cast<unsigned long long>(oscillating_cells),
              static_cast<unsigned long long>(converged_cells), cells.size());

  bool ok = true;
  if (sargs.require_phases && (oscillating_cells == 0 || converged_cells == 0)) {
    std::fprintf(stderr,
                 "FAIL: phase diagram must contain at least one oscillating "
                 "and one converged cell (got %llu/%llu)\n",
                 static_cast<unsigned long long>(oscillating_cells),
                 static_cast<unsigned long long>(converged_cells));
    ok = false;
  }

  if (!args.out.empty()) {
    try {
      WriteBenchJson(args.out + ".json", report);
      std::fprintf(stderr, "  wrote %s.json (schema %s)\n", args.out.c_str(),
                   kBenchSchemaVersion);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  --out failed: %s\n", e.what());
    }
    SweepResult sweep;
    sweep.jobs = ResolveJobs(args.jobs);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      SweepCell cell;
      cell.label = cells[i].name;
      cell.variant = results[i].variant;
      cell.duration = results[i].duration;
      cell.runs.push_back(SweepRun{/*seed=*/1, results[i]});
      cell.metrics = AggregateRuns(cell.runs);
      sweep.cells.push_back(std::move(cell));
    }
    try {
      WriteSweepJson(args.out + "_sweep.json", sweep);
      WriteSweepCsv(args.out + "_sweep.csv", sweep);
      std::fprintf(stderr, "  wrote %s_sweep.json, %s_sweep.csv (schema %s)\n",
                   args.out.c_str(), args.out.c_str(), kSweepSchemaVersion);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  sweep out failed: %s\n", e.what());
    }
  }

  return ok ? 0 : 1;
}
