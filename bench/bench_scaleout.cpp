// Production-scale workload engine bench: an N-rack rotor fabric under
// heavy-tailed flow-size-CDF churn, sustaining ~1M connection lifecycles per
// run.
//
// Each cell drives every host in an 8-rack (default) RotorNet-style fabric
// as an independent Poisson source, with transfer sizes drawn from a
// built-in flow-size distribution (websearch = DCTCP §2.2, datamining =
// VL2) and destinations picked by a rack-selection policy (uniform
// all-to-all or skewed hotspot). Sizes are scaled down from the published
// distributions (and capped at 2 MB) so a million lifecycles stay
// wall-time-feasible while keeping the shape heavy-tailed across all four
// FCT size buckets; the scale factors are part of the cell definition and
// the tracked baseline.
//
// Reported per cell: lifecycle accounting (every opened connection must
// reach a definite CloseReason — the bench exits nonzero otherwise) and
// per-size-bucket nearest-rank FCT percentiles, plus the 53-bit churn/trace
// determinism fingerprints. --check-bit-identity reruns the cells at jobs=1
// and compares both hashes against the parallel run: the jobs=1 == jobs=N
// contract, enforced with a nonzero exit.
//
// Flags beyond the shared bench set:
//   --lifecycles=N        connection lifecycles per cell (default 1000000)
//   --racks=N             fabric size, even >= 2 (default 8)
//   --policy=NAME         keep only cells with this rack policy
//   --check-bit-identity  rerun serially and compare churn/trace hashes
//
// With --out the table is written as tdtcp-bench/1 JSON (the tracked
// BENCH_scaleout.json baseline, gated with tools/bench_compare.py) and the
// full per-cell results as tdtcp-sweep/1 JSON/CSV (<out>_sweep.json/.csv),
// which carry the churn_fct_<bucket>_* metric family.
#include "bench_util.hpp"

#include "app/flow_cdf.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

struct ScaleoutArgs {
  std::uint32_t lifecycles = 1'000'000;
  std::uint32_t racks = 8;
  std::string policy;             // "" = all cells
  bool check_bit_identity = false;
};

// Strips the scaleout-specific flags out of argv (in place) so the shared
// ParseBenchArgs only sees the flags it knows.
ScaleoutArgs ParseScaleoutArgs(int& argc, char** argv) {
  ScaleoutArgs out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--lifecycles=", 13) == 0) {
      out.lifecycles = static_cast<std::uint32_t>(
          std::max(1L, std::atol(a + 13)));
    } else if (std::strncmp(a, "--racks=", 8) == 0) {
      out.racks = static_cast<std::uint32_t>(std::max(2, std::atoi(a + 8)));
    } else if (std::strncmp(a, "--policy=", 9) == 0) {
      out.policy = a + 9;
      try {
        (void)RackPolicyFromName(out.policy);
      } catch (const std::invalid_argument&) {
        std::fprintf(stderr,
                     "%s: unknown --policy '%s' (expected uniform | "
                     "permutation | hotspot)\n",
                     argv[0], out.policy.c_str());
        std::exit(2);
      }
    } else if (std::strcmp(a, "--check-bit-identity") == 0) {
      out.check_bit_identity = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  return out;
}

struct Cell {
  std::string name;
  std::string cdf;       // built-in distribution name
  double scale;          // size_scale applied to every draw
  RackPolicy policy;
};

std::vector<Cell> Cells() {
  // Scale factors keep ~1M lifecycles wall-time-feasible while spanning all
  // four size buckets: websearch/24 tops out just above the 1 MB xl edge;
  // datamining/16's super-heavy tail is clamped by the 2 MB cap (so capped
  // samples land in xl).
  return {
      Cell{"websearch/uniform", "websearch", 1.0 / 24, RackPolicy::kUniform},
      Cell{"datamining/uniform", "datamining", 1.0 / 16, RackPolicy::kUniform},
      Cell{"websearch/hotspot", "websearch", 1.0 / 24, RackPolicy::kHotspot},
  };
}

ExperimentConfig CellConfig(const Cell& cell, const ScaleoutArgs& sargs,
                            const BenchArgs& args) {
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                             .WithRotorFabric(sargs.racks)
                             .WithDurationMs(args.duration_ms)
                             .WithSampling(false, false)
                             .WithSampleInterval(SimTime::Millis(1))
                             .WithRackPolicy(cell.policy)
                             .WithFlowSizeCdf(BuiltinFlowSizeCdf(cell.cdf),
                                              cell.scale)
                             .WithTrace();
  // Churn-only: the lifecycle population is the entire workload.
  cfg.workload.num_flows = 0;
  cfg.churn.enabled = true;
  cfg.churn.target_connections = sargs.lifecycles;
  // Per-source mean gap: every host in the fabric is a source, so the
  // aggregate arrival rate scales with racks * hosts_per_rack.
  cfg.churn.mean_interarrival = SimTime::Micros(100);
  cfg.churn.max_concurrent = 2048;
  cfg.churn.size_cap_bytes = 2'000'000;
  cfg.churn.hotspot_rack = 0;
  cfg.churn.hotspot_fraction = 0.5;
  return cfg;
}

BenchRun ToRun(const Cell& cell, const ExperimentResult& r) {
  BenchRun run;
  run.name = cell.name;
  run.iterations = 1;
  auto& c = run.counters;
  c["opened"] = static_cast<double>(r.churn.opened);
  c["closed"] = static_cast<double>(r.churn.closed);
  c["abnormal"] = static_cast<double>(r.churn.abnormal());
  c["deferred"] = static_cast<double>(r.churn.deferred);
  c["app_timeouts"] = static_cast<double>(r.churn.app_timeouts);
  c["all_closed"] = r.churn_all_closed ? 1.0 : 0.0;
  c["sim_events"] = static_cast<double>(r.sim_events);
  for (std::size_t b = 0; b < kNumFctBuckets; ++b) {
    const std::string prefix = std::string("fct_") + kFctBucketNames[b];
    const auto& bucket = r.churn_fct_bucket[b];
    c[prefix + "_count"] = static_cast<double>(bucket.count);
    c[prefix + "_p50_us"] = bucket.p50_us;
    c[prefix + "_p99_us"] = bucket.p99_us;
    c[prefix + "_p999_us"] = bucket.p999_us;
  }
  // 53-bit determinism fingerprints (JSON-double safe).
  c["churn_hash"] = static_cast<double>(r.churn_hash & ((1ull << 53) - 1));
  c["trace_hash"] = static_cast<double>(r.trace_hash & ((1ull << 53) - 1));
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  ScaleoutArgs sargs = ParseScaleoutArgs(argc, argv);
  const BenchArgs args = ParseBenchArgs(argc, argv, 10);

  std::vector<Cell> cells = Cells();
  if (!sargs.policy.empty()) {
    std::erase_if(cells, [&](const Cell& c) {
      return RackPolicyName(c.policy) != sargs.policy;
    });
  }

  std::printf("Scale-out workload engine: %u-rack rotor fabric, %u connection "
              "lifecycles per cell,\nper-source Poisson arrivals, CDF flow "
              "sizes, per-size-bucket FCT tails:\n\n",
              sargs.racks, sargs.lifecycles);

  // One private Simulator per cell on the pool; results are bit-identical
  // at any job count.
  std::vector<ExperimentResult> results(cells.size());
  ParallelFor(args.jobs, cells.size(), [&](std::size_t i) {
    results[i] = RunExperiment(CellConfig(cells[i], sargs, args));
  });

  bool ok = true;
  std::printf("%-20s %9s %8s %8s | %-9s %-9s %-9s %-9s\n", "cell", "closed",
              "abnorml", "defer", "s p99_us", "m p99_us", "l p99_us",
              "xl p99_us");
  BenchReport report;
  report.context = "bench_scaleout";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const ExperimentResult& r = results[i];
    const BenchRun run = ToRun(cells[i], r);
    std::printf("%-20s %9.0f %8.0f %8.0f | %-9.0f %-9.0f %-9.0f %-9.0f\n",
                cells[i].name.c_str(), run.counters.at("closed"),
                run.counters.at("abnormal"), run.counters.at("deferred"),
                run.counters.at("fct_s_p99_us"),
                run.counters.at("fct_m_p99_us"),
                run.counters.at("fct_l_p99_us"),
                run.counters.at("fct_xl_p99_us"));
    report.runs.push_back(run);
    // The lifecycle contract: every opened connection reaches kClosed with a
    // definite CloseReason, and the generator hit its target.
    if (!r.churn_all_closed || r.churn.opened != sargs.lifecycles ||
        r.churn.closed != r.churn.opened) {
      std::fprintf(stderr,
                   "FAIL %s: lifecycle leak (opened=%llu closed=%llu "
                   "all_closed=%d, target=%u)\n",
                   cells[i].name.c_str(),
                   static_cast<unsigned long long>(r.churn.opened),
                   static_cast<unsigned long long>(r.churn.closed),
                   r.churn_all_closed ? 1 : 0, sargs.lifecycles);
      ok = false;
    }
  }

  if (sargs.check_bit_identity) {
    std::fprintf(stderr, "  bit-identity check: rerunning %zu cells at "
                 "jobs=1...\n", cells.size());
    std::vector<ExperimentResult> serial(cells.size());
    ParallelFor(1, cells.size(), [&](std::size_t i) {
      serial[i] = RunExperiment(CellConfig(cells[i], sargs, args));
    });
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (serial[i].churn_hash != results[i].churn_hash ||
          serial[i].trace_hash != results[i].trace_hash) {
        std::fprintf(stderr,
                     "FAIL %s: jobs=1 != jobs=N (churn %016llx/%016llx, "
                     "trace %016llx/%016llx)\n",
                     cells[i].name.c_str(),
                     static_cast<unsigned long long>(serial[i].churn_hash),
                     static_cast<unsigned long long>(results[i].churn_hash),
                     static_cast<unsigned long long>(serial[i].trace_hash),
                     static_cast<unsigned long long>(results[i].trace_hash));
        ok = false;
      }
    }
    if (ok) std::fprintf(stderr, "  bit-identity: OK\n");
  }

  if (!args.out.empty()) {
    try {
      WriteBenchJson(args.out + ".json", report);
      std::fprintf(stderr, "  wrote %s.json (schema %s)\n", args.out.c_str(),
                   kBenchSchemaVersion);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  --out failed: %s\n", e.what());
    }
    // Also emit the per-cell results through the sweep schema: the
    // churn_fct_<bucket>_* metric family rides the tdtcp-sweep/1 JSON/CSV.
    SweepResult sweep;
    sweep.jobs = ResolveJobs(args.jobs);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      SweepCell cell;
      cell.label = cells[i].name;
      cell.variant = results[i].variant;
      cell.duration = results[i].duration;
      cell.runs.push_back(SweepRun{/*seed=*/1, results[i]});
      cell.metrics = AggregateRuns(cell.runs);
      sweep.cells.push_back(std::move(cell));
    }
    try {
      WriteSweepJson(args.out + "_sweep.json", sweep);
      WriteSweepCsv(args.out + "_sweep.csv", sweep);
      std::fprintf(stderr, "  wrote %s_sweep.json, %s_sweep.csv (schema %s)\n",
                   args.out.c_str(), args.out.c_str(), kSweepSchemaVersion);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  sweep out failed: %s\n", e.what());
    }
  }
  return ok ? 0 : 1;
}
