// Figure 10 (§5.3): CDFs of (a) reordering events per optical day and
// (b) packets spuriously retransmitted per optical day, for CUBIC, MPTCP,
// and TDTCP. Spurious retransmissions are measured as receiver-side
// duplicate arrivals (ground truth: a retransmission of data that was never
// lost arrives twice). A little fabric jitter provides the intrinsic
// intra-TDN reordering the paper's MPTCP line serves as a baseline for.
//
// Expected shape: TDTCP cuts the tail relative to CUBIC, and most of
// TDTCP's optical days see no spurious retransmission at all.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

void PrintCdf(const char* title, const std::vector<VariantRun>& runs,
              const std::vector<double> VariantRun::*unused,
              std::vector<double> (*extract)(const ExperimentResult&)) {
  (void)unused;
  std::printf("\n--- %s ---\n", title);
  std::printf("%-10s %8s %8s %8s %8s %10s\n", "variant", "p50", "p90", "p99",
              "max", "zero-days");
  for (const auto& r : runs) {
    auto values = extract(r.result);
    int zero_days = 0;
    for (double v : values) zero_days += (v == 0.0);
    std::printf("%-10s %8.1f %8.1f %8.1f %8.1f %9.1f%%\n",
                VariantName(r.variant), Percentile(values, 50),
                Percentile(values, 90), Percentile(values, 99),
                Percentile(values, 100),
                values.empty() ? 0.0
                               : 100.0 * zero_days /
                                     static_cast<double>(values.size()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 150);
  const int ms = args.duration_ms;
  ExperimentConfig base = PaperConfig(Variant::kCubic)
                              .WithFlows(8)
                              .WithDuration(SimTime::Millis(ms))
                              .WithWarmup(SimTime::Millis(ms / 10));
  base.topology.fabric_reorder_jitter = SimTime::Micros(2);

  std::printf("Figure 10: reordering and spurious retransmissions per "
              "optical day (%d ms = %d optical days)\n", ms,
              static_cast<int>(ms * 1000 / 1400));

  auto runs = RunVariants({Variant::kCubic, Variant::kMptcp, Variant::kTdtcp},
                          base, args);

  PrintCdf("(a) reordering events per optical day", runs, nullptr,
           [](const ExperimentResult& r) { return r.reorder_events_per_day; });
  PrintCdf("(b) spurious retransmissions per optical day", runs, nullptr,
           [](const ExperimentResult& r) { return r.spurious_rtx_per_day; });

  for (const auto& r : runs) {
    const std::string name = VariantName(r.variant);
    WriteCdfCsv("fig10a_events_" + name + ".csv", "events_per_day",
                MakeCdf(r.result.reorder_events_per_day));
    WriteCdfCsv("fig10b_spurious_" + name + ".csv", "spurious_rtx_per_day",
                MakeCdf(r.result.spurious_rtx_per_day));
  }
  std::printf("\nwrote fig10{a,b}_*.csv\n");
  return 0;
}
