// Figure 14 (Appendix A.4): ToR VOQ occupancy with only latency changes
// (20us vs 10us RTT), at 10 Gbps and at 100 Gbps fixed bandwidth.
//
// Expected shape: TDTCP's occupancy in line with CUBIC/DCTCP/MPTCP; reTCP
// (especially with dynamic resizing) builds queues ahead of circuit start
// even though the circuit BDP is *smaller* here — its queue-building is
// mismatched when bandwidth is fixed.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

void RunAtRate(std::uint64_t rate_bps, const BenchArgs& args, const char* csv) {
  ExperimentConfig base = PaperConfig(Variant::kCubic)
                              .WithFlows(8)
                              .WithDurationMs(args.duration_ms);
  base.topology.packet_mode.rate_bps = rate_bps;
  base.topology.circuit_mode.rate_bps = rate_bps;
  // A.4: packet RTT 20us, optical RTT 10us.
  base.topology.packet_mode.propagation = SimTime::Micros(9);
  base.topology.circuit_mode.propagation = SimTime::Micros(4);

  std::printf("\n=== packet/optical bandwidth = %.0f Gbps ===\n", rate_bps / 1e9);
  const std::vector<Variant> variants = {
      Variant::kRetcpDyn, Variant::kTdtcp, Variant::kRetcp,
      Variant::kDctcp,    Variant::kCubic, Variant::kMptcp,
  };
  auto runs = RunVariants(variants, base, args);
  auto voq = VoqSeries(runs);
  PrintSeqTable(voq, 50.0, "packets");

  std::printf("\nmean VOQ occupancy:\n");
  for (const auto& r : runs) {
    double sum = 0;
    for (const auto& p : r.result.voq_curve) sum += p.mean;
    std::printf("  %-10s %6.2f packets (goodput %.2f Gbps)\n",
                VariantName(r.variant),
                r.result.voq_curve.empty() ? 0.0 : sum / r.result.voq_curve.size(),
                r.result.goodput_bps / 1e9);
  }
  WriteSeriesCsv(csv, voq);
}

}  // namespace

int main(int argc, char** argv) {
  BenchArgs args = ParseBenchArgs(argc, argv, 60);
  std::printf("Figure 14 (A.4): VOQ occupancy, latency-only difference "
              "(RTT 20us vs 10us)\n");
  const std::string out = args.out;
  if (!out.empty()) args.out = out + "_10g";
  RunAtRate(10'000'000'000, args, "fig14a_voq_10g.csv");
  if (!out.empty()) args.out = out + "_100g";
  RunAtRate(100'000'000'000, args, "fig14b_voq_100g.csv");
  std::printf("\nwrote fig14a_voq_10g.csv, fig14b_voq_100g.csv\n");
  return 0;
}
