// Short flows (§5.1's scoping claim): "RPC workloads that last a few RTTs
// likely only exist during one TDN... In such cases, a larger initial cwnd
// would be more helpful than TDTCP."
//
// We measure flow completion times for short transfers started at staggered
// offsets within the week, for: CUBIC (iw10), TDTCP (iw10), and CUBIC with
// a large initial window (iw40) — checking that TDTCP neither helps nor
// hurts short flows while a bigger initial window does help.
#include "bench_util.hpp"

#include "rdcn/controller.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

struct FctStats {
  std::vector<double> fct_us;
  int aborted = 0;  // flows whose sender closed with an abnormal reason
};

FctStats MeasureShortFlows(Variant v, std::uint32_t initial_cwnd,
                           std::uint64_t flow_bytes, int flows_total,
                           const BenchArgs& args) {
  ExperimentConfig cfg = PaperConfig(v);
  ApplyQdisc(cfg, args);
  Simulator sim;
  Random rng(cfg.seed);
  Topology topo(sim, rng, cfg.topology);
  RdcnController::Config rc;
  rc.schedule = cfg.schedule;
  rc.packet_mode = cfg.topology.packet_mode;
  rc.circuit_mode = cfg.topology.circuit_mode;
  RdcnController controller(sim, rc, {topo.port(0, 1), topo.port(1, 0)},
                            {topo.tor(0), topo.tor(1)});
  controller.Start();

  // Two long-lived background flows keep the fabric realistically busy.
  TcpConfig bg = MakeVariantConfig(v, cfg.workload.base);
  bg.initial_cwnd = initial_cwnd;
  std::vector<std::unique_ptr<TcpConnection>> conns;
  for (std::uint32_t i = 0; i < 2; ++i) {
    conns.push_back(std::make_unique<TcpConnection>(
        sim, topo.host(1, i), 100 + i, topo.host_id(0, i), bg));
    conns.back()->Listen();
    conns.push_back(std::make_unique<TcpConnection>(
        sim, topo.host(0, i), 100 + i, topo.host_id(1, i), bg));
    conns.back()->Connect();
    conns.back()->SetUnlimitedData(true);
  }

  FctStats stats;
  // Short flows start staggered across week offsets (host slots 2..).
  const SimTime week = Schedule(cfg.schedule).week_length();
  int started = 0;
  std::uint32_t slot = 2;
  // The start events capture one pointer to this frame-local bundle instead
  // of a fistful of references (events have a bounded inline capture).
  struct StartEnv {
    Simulator& sim;
    Topology& topo;
    TcpConfig& bg;
    std::vector<std::unique_ptr<TcpConnection>>& conns;
    FctStats& stats;
    int& started;
    std::uint64_t flow_bytes;
  } env{sim, topo, bg, conns, stats, started, flow_bytes};
  for (int i = 0; i < flows_total; ++i) {
    const SimTime start = SimTime::Millis(2) + week * (i / 7) +
                          (week * (i % 7)) / 7;
    const std::uint32_t host_idx = slot;
    slot = 2 + (slot - 1) % (topo.config().hosts_per_rack - 2);
    const FlowId id = static_cast<FlowId>(1000 + i);
    sim.ScheduleAt(start, [e = &env, id, host_idx, start] {
      Simulator& sim = e->sim;
      Topology& topo = e->topo;
      FctStats& stats = e->stats;
      const std::uint64_t flow_bytes = e->flow_bytes;
      // Real lifecycle: the FCT clock runs from Connect() to the sender's
      // ClosedFn, covering handshake, transfer, and FIN teardown. A short
      // TIME_WAIT keeps the 2MSL constant from drowning the comparison.
      TcpConfig sc = e->bg;
      sc.time_wait_duration = SimTime::Micros(10);
      TcpConfig rc = sc;
      rc.close_on_peer_fin = true;
      auto rx = std::make_unique<TcpConnection>(
          sim, topo.host(1, host_idx), id, topo.host_id(0, host_idx), rc);
      rx->Listen();
      auto tx = std::make_unique<TcpConnection>(
          sim, topo.host(0, host_idx), id, topo.host_id(1, host_idx), sc);
      tx->SetClosedCallback([&stats, &sim, start](CloseReason reason) {
        if (reason == CloseReason::kNormal) {
          stats.fct_us.push_back((sim.now() - start).micros_f());
        } else {
          ++stats.aborted;
        }
      });
      tx->Connect();
      tx->AddAppData(flow_bytes);
      tx->Close();  // lingering close: the FIN rides behind the payload
      ++e->started;
      e->conns.push_back(std::move(rx));
      e->conns.push_back(std::move(tx));
    });
  }

  sim.RunUntil(SimTime::Millis(60));
  return stats;
}

void Report(const char* name, const FctStats& s, int flows_total) {
  std::printf("%-14s %6zu/%d closed (%d aborted)   p50 %8.0f us   "
              "p90 %8.0f us   p99 %8.0f us\n",
              name, s.fct_us.size(), flows_total, s.aborted,
              Percentile(s.fct_us, 50), Percentile(s.fct_us, 90),
              Percentile(s.fct_us, 99));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 70);
  const int flows = args.duration_ms;  // legacy: positional arg is the count
  const std::uint64_t kFlowBytes = 20 * 8940;  // ~180 KB: a few RTTs

  std::printf("Short-flow completion times (%llu KB transfers, %d flows "
              "staggered across week offsets,\nwith long-lived background "
              "traffic):\n\n",
              static_cast<unsigned long long>(kFlowBytes / 1000), flows);

  // Four independent measurements (private Simulator each) on the pool.
  struct Setup {
    const char* name;
    Variant variant;
    std::uint32_t iw;
  };
  const std::vector<Setup> setups = {
      {"cubic iw10", Variant::kCubic, 10},
      {"tdtcp iw10", Variant::kTdtcp, 10},
      {"cubic iw40", Variant::kCubic, 40},
      {"tdtcp iw40", Variant::kTdtcp, 40},
  };
  std::vector<FctStats> stats(setups.size());
  ParallelFor(args.jobs, setups.size(), [&](std::size_t i) {
    stats[i] = MeasureShortFlows(setups[i].variant, setups[i].iw, kFlowBytes,
                                 flows, args);
  });
  for (std::size_t i = 0; i < setups.size(); ++i) {
    Report(setups[i].name, stats[i], flows);
  }

  std::printf("\nexpectation (§5.1): TDTCP is roughly FCT-neutral for short "
              "flows; a larger initial\ncwnd helps them more than per-TDN "
              "state does.\n");
  return 0;
}
