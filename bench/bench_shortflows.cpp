// Short-flow tail FCT under faulted churn: the recovery-axis bench.
//
// The RTO tail is the short-flow killer in this RDCN (PAPERS.md, T-RACKs):
// a tail-end drop on a transfer too short for dupACK/SACK recovery waits
// out a full — often exponentially backed-off — RTO that can phase-lock
// with the rotation week. This bench churns short connections through a
// hostile fabric (Gilbert-Elliott burst loss on the fabric ports plus lossy
// TDN notifications) and measures flow completion time percentiles — p50,
// p99 and p99.9, because the rescue only shows in the tail — under each
// recovery mode:
//
//   off     pure RTO recovery (RACK and TLP disabled)
//   rack    the stack's default RACK-TLP machinery
//   agent   RACK-TLP plus the per-host shared RecoveryAgent forcing early
//           retransmits for flows quiet past the adaptive threshold
//
// crossed with {droptail, codel} VOQs so the agent is exercised under both
// loss profiles. Every cell is one deterministic RunExperiment (private
// Simulator); results are bit-identical at any --jobs. With --out the table
// is written as tdtcp-bench/1 JSON — the tracked BENCH_shortflows.json
// baseline — and gated with tools/bench_compare.py
// --metric=fct_p50_us,fct_p99_us,fct_p999_us.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

namespace {

struct Cell {
  std::string name;
  RecoveryMode recovery;
  QdiscKind qdisc;
};

std::vector<Cell> Cells() {
  std::vector<Cell> cells;
  for (const QdiscKind q : {QdiscKind::kDropTail, QdiscKind::kCodel}) {
    for (const RecoveryMode m :
         {RecoveryMode::kOff, RecoveryMode::kRack, RecoveryMode::kAgent}) {
      cells.push_back(Cell{std::string(RecoveryModeName(m)) + "/" +
                               QdiscKindName(q),
                           m, q});
    }
  }
  return cells;
}

ExperimentConfig CellConfig(const Cell& cell, const BenchArgs& args) {
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                             .WithDurationMs(args.duration_ms)
                             .WithQdisc(cell.qdisc)
                             .WithRecovery(cell.recovery);
  // Two long-lived flows keep the fabric realistically busy; the churn is
  // the measured population.
  cfg.workload.num_flows = 2;
  // Short transfers (1..4 segments): mostly too short for dupACK/SACK
  // recovery, so a tail drop leaves only the RTO — or the agent.
  cfg.churn.enabled = true;
  cfg.churn.target_connections = 400;
  cfg.churn.mean_interarrival = SimTime::Micros(60);
  cfg.churn.min_transfer_bytes = 8940;
  cfg.churn.max_transfer_bytes = 4 * 8940;
  cfg.churn.max_concurrent = 24;
  // Hostile fabric: correlated burst loss eats whole short flows at once,
  // and lossy notifications desynchronize the per-TDN state the stack
  // recovers with.
  FaultPlan plan;
  plan.fabric.gilbert_elliott = true;
  plan.fabric.ge_p_good_to_bad = 0.002;
  plan.fabric.ge_p_bad_to_good = 0.2;
  plan.control.notify_loss_rate = 0.05;
  cfg.fault = plan;
  return cfg;
}

BenchRun ToRun(const Cell& cell, const ExperimentResult& r) {
  BenchRun run;
  run.name = cell.name;
  run.iterations = 1;
  auto& c = run.counters;
  c["completed"] = static_cast<double>(r.churn_fct_us.size());
  c["opened"] = static_cast<double>(r.churn.opened);
  c["abnormal"] = static_cast<double>(r.churn.abnormal());
  // Nearest-rank: tail percentiles of a few hundred completions must be
  // observed samples, not interpolations between order statistics.
  c["fct_p50_us"] = PercentileNearestRank(r.churn_fct_us, 50);
  c["fct_p99_us"] = PercentileNearestRank(r.churn_fct_us, 99);
  c["fct_p999_us"] = PercentileNearestRank(r.churn_fct_us, 99.9);
  c["timeouts"] = static_cast<double>(r.timeouts);
  c["recovery_forced"] = static_cast<double>(r.recovery_forced);
  c["recovery_rescued"] = static_cast<double>(r.recovery_rescued);
  c["recovery_spurious"] = static_cast<double>(r.recovery_spurious);
  // 53-bit determinism fingerprint: two runs of this bench match iff their
  // churn lifecycles are bit-identical (the jobs=1 == jobs=N check).
  c["churn_hash"] = static_cast<double>(r.churn_hash & ((1ull << 53) - 1));
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 40);

  std::vector<Cell> cells = Cells();
  if (!args.recovery.empty()) {
    std::erase_if(cells, [&](const Cell& c) {
      return RecoveryModeName(c.recovery) != args.recovery;
    });
  }
  if (!args.qdisc.empty()) {
    std::erase_if(cells, [&](const Cell& c) {
      return QdiscKindName(c.qdisc) != args.qdisc;
    });
  }

  std::printf("Short-flow FCT under faulted churn (%d ms, Gilbert-Elliott "
              "fabric loss + lossy\nnotifications, 400 short transfers), per "
              "recovery mode x VOQ discipline:\n\n",
              args.duration_ms);

  // One private Simulator per cell on the pool; results are bit-identical
  // at any job count.
  std::vector<ExperimentResult> results(cells.size());
  ParallelFor(args.jobs, cells.size(), [&](std::size_t i) {
    results[i] = RunExperiment(CellConfig(cells[i], args));
  });

  std::printf("%-15s %9s %8s %9s %9s %9s %7s %7s %7s %9s\n", "cell",
              "completed", "abnorml", "p50_us", "p99_us", "p999_us", "rto",
              "forced", "rescue", "spurious");
  BenchReport report;
  report.context = "bench_shortflows";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const BenchRun run = ToRun(cells[i], results[i]);
    std::printf(
        "%-15s %6.0f/%-3.0f %7.0f %9.0f %9.0f %9.0f %7.0f %7.0f %7.0f %9.0f\n",
        cells[i].name.c_str(), run.counters.at("completed"),
        run.counters.at("opened"), run.counters.at("abnormal"),
        run.counters.at("fct_p50_us"), run.counters.at("fct_p99_us"),
        run.counters.at("fct_p999_us"), run.counters.at("timeouts"),
        run.counters.at("recovery_forced"),
        run.counters.at("recovery_rescued"),
        run.counters.at("recovery_spurious"));
    report.runs.push_back(run);
  }

  std::printf("\nexpectation: the agent cuts the p99/p99.9 tail versus both "
              "pure-RTO and RACK-TLP\nalone (quiet flows are rescued before "
              "the backed-off RTO), at the cost of a few\nspurious forcings "
              "the DSACK undo machinery repairs.\n");

  if (!args.out.empty()) {
    try {
      WriteBenchJson(args.out + ".json", report);
      std::fprintf(stderr, "  wrote %s.json (schema %s)\n", args.out.c_str(),
                   kBenchSchemaVersion);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  --out failed: %s\n", e.what());
    }
  }
  return 0;
}
