// Microbenchmarks (google-benchmark): raw simulator and stack performance,
// backing the paper's engineering claim that the implementation "scales to
// 100 Gbps and supports reconfigurations on microsecond timescales" —
// translated to this substrate: the simulator processes packet events far
// faster than real time would require for protocol research.
// Beyond the console table, `--out=PATH` writes the results as a
// tdtcp-bench/1 JSON document (see app/result_io.hpp) for baseline tracking
// with tools/bench_compare.py, and `--min-items-per-sec=N` turns the run
// into a smoke test: exit nonzero if any item-rate benchmark falls below N.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "app/experiment.hpp"
#include "app/result_io.hpp"
#include "app/sweep.hpp"
#include "cc/registry.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "net/topology.hpp"
#include "rdcn/controller.hpp"

namespace tdtcp {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    int sink = 0;
    for (int i = 0; i < batch; ++i) {
      sim.Schedule(SimTime::Nanos(i % 1000), [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_SelfReschedulingTimer(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::int64_t fires = 0;
    std::function<void()> tick = [&] {
      if (++fires < 100000) sim.Schedule(SimTime::Nanos(100), tick);
    };
    sim.Schedule(SimTime::Nanos(100), tick);
    sim.Run();
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SelfReschedulingTimer);

// Full 100 Gbps bulk transfer: how many simulated packets per wall second?
void BM_HundredGbpsTransfer(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Random rng(1);
    TopologyConfig tc;
    tc.hosts_per_rack = 2;
    tc.packet_mode.rate_bps = 100'000'000'000;
    tc.voq.capacity_packets = 64;
    Topology topo(sim, rng, tc);
    TcpConfig c;
    c.mss = 8940;
    c.cc_factory = MakeCcFactory("cubic");
    TcpConnection server(sim, topo.host(1, 0), 1, topo.host_id(0, 0), c);
    TcpConnection client(sim, topo.host(0, 0), 1, topo.host_id(1, 0), c);
    server.Listen();
    client.Connect();
    client.SetUnlimitedData(true);
    sim.RunUntil(SimTime::Millis(2));
    benchmark::DoNotOptimize(client.bytes_acked());
    state.counters["sim_events"] = static_cast<double>(sim.events_executed());
    state.counters["goodput_gbps"] =
        static_cast<double>(client.bytes_acked()) * 8 / 2e-3 / 1e9;
  }
}
BENCHMARK(BM_HundredGbpsTransfer)->Unit(benchmark::kMillisecond);

// A full paper-config RDCN week with 8 TDTCP flows: microsecond-scale
// reconfigurations under load.
void BM_RdcnWeekTdtcp(benchmark::State& state) {
  for (auto _ : state) {
    ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                               .WithFlows(8)
                               .WithDuration(SimTime::Micros(2800))  // 2 weeks
                               .WithWarmup(SimTime::Micros(1400))
                               .WithSampling(false, false)
                               .WithSampleInterval(SimTime::Micros(100))
                               .WithPlotWeeks(1);
    ExperimentResult r = RunExperiment(cfg);
    benchmark::DoNotOptimize(r.total_bytes);
  }
  state.SetLabel("two 1400us weeks, 8 flows, 14 reconfigurations");
}
BENCHMARK(BM_RdcnWeekTdtcp)->Unit(benchmark::kMillisecond);

// Sweep-engine scaling: the same 4-cell grid at jobs=1 vs jobs=N. On a
// multi-core machine the jobs=N time should approach time/cores.
void BM_SweepGrid(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SweepSpec spec;
    spec.base = PaperConfig(Variant::kTdtcp)
                    .WithFlows(4)
                    .WithDuration(SimTime::Micros(2800))
                    .WithWarmup(SimTime::Micros(1400))
                    .WithSampling(false, false)
                    .WithSampleInterval(SimTime::Micros(100))
                    .WithPlotWeeks(1);
    spec.variants = {Variant::kTdtcp, Variant::kCubic};
    spec.seeds = {1, 2};
    spec.jobs = jobs;
    SweepResult r = RunSweep(spec);
    benchmark::DoNotOptimize(r.cells.size());
  }
  state.SetLabel("2 variants x 2 seeds");
}
BENCHMARK(BM_SweepGrid)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// ACK-processing hot path: SACK scoreboard + per-TDN accounting.
void BM_AckProcessing(benchmark::State& state) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.hosts_per_rack = 2;
  Topology topo(sim, rng, tc);
  TcpConfig c;
  c.mss = 8940;
  c.cc_factory = MakeCcFactory("cubic");
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  TcpConnection server(sim, topo.host(1, 0), 1, topo.host_id(0, 0), c);
  TcpConnection client(sim, topo.host(0, 0), 1, topo.host_id(1, 0), c);
  server.Listen();
  client.Connect();
  client.SetUnlimitedData(true);
  sim.RunUntil(SimTime::Millis(1));

  std::int64_t processed = 0;
  for (auto _ : state) {
    // Run the live simulation forward; each iteration processes the next
    // chunk of ack/data events.
    sim.RunFor(SimTime::Micros(100));
    processed = static_cast<std::int64_t>(client.stats().acks_received);
    benchmark::DoNotOptimize(processed);
  }
  state.counters["acks"] = static_cast<double>(processed);
}
BENCHMARK(BM_AckProcessing);

// Same-timestamp cohort dispatch: 64 distinct timestamps, 1024 events each.
// Arg toggles RunBatch (1) vs the sequential RunNext loop (0); the delta is
// the price of re-sifting the heap between same-time events.
void BM_EventBatchDispatch(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  constexpr int kEvents = 65536;
  for (auto _ : state) {
    Simulator sim;
    sim.set_batched_dispatch(batched);
    int sink = 0;
    for (int i = 0; i < kEvents; ++i) {
      sim.Schedule(SimTime::Nanos(i % 64), [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kEvents);
}
BENCHMARK(BM_EventBatchDispatch)->Arg(0)->Arg(1);

// ACK/SACK scoreboard batch processing: an 8-ACK dup train with advancing
// SACK edges against a live scoreboard, fed per-packet (0) or coalesced
// through HandleBurst (1). Replays are idempotent after the first pass, so
// every iteration measures the same scoreboard walk.
void BM_AckBurst(benchmark::State& state) {
  const bool coalesce = state.range(0) != 0;
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.hosts_per_rack = 2;
  Topology topo(sim, rng, tc);
  TcpConfig c;
  c.mss = 8940;
  c.cc_factory = MakeCcFactory("cubic");
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  TcpConnection server(sim, topo.host(1, 0), 1, topo.host_id(0, 0), c);
  TcpConnection client(sim, topo.host(0, 0), 1, topo.host_id(1, 0), c);
  server.Listen();
  client.Connect();
  client.SetUnlimitedData(true);
  sim.RunUntil(SimTime::Millis(1));

  constexpr int kBurst = 8;
  const std::uint64_t una = client.snd_una();
  const std::uint64_t mss = c.mss;
  Packet acks[kBurst];
  Packet* ptrs[kBurst];
  auto reload = [&] {
    for (int i = 0; i < kBurst; ++i) {
      Packet p;
      p.type = PacketType::kAck;
      p.flow = 1;
      p.ack = una;
      p.size_bytes = 60;
      p.has_rwnd = true;
      p.rcv_window = 1u << 30;
      p.num_sack = 1;
      p.sack[0] = SackBlock{una + mss, una + mss * (2 + i)};
      acks[i] = p;
      ptrs[i] = &acks[i];
    }
  };
  for (auto _ : state) {
    reload();
    if (coalesce) {
      client.HandleBurst(ptrs, kBurst);
    } else {
      for (int i = 0; i < kBurst; ++i) client.HandlePacket(std::move(acks[i]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
  state.counters["scoreboard_segs"] =
      static_cast<double>(client.send_queue().segments().size());
}
BENCHMARK(BM_AckBurst)->Arg(0)->Arg(1);

// Link burst transfer: an 8-packet zero-serialization convoy bouncing
// between two links; arg toggles Config::allow_burst. Items are packet
// deliveries.
struct BenchBouncer : PacketSink {
  Link* out = nullptr;
  std::uint64_t received = 0;
  void HandlePacket(Packet&& p) override {
    ++received;
    out->Enqueue(std::move(p));
  }
  void HandleBurst(Packet** pkts, std::size_t n) override {
    received += n;
    for (std::size_t i = 0; i < n; ++i) out->Enqueue(std::move(*pkts[i]));
  }
};

void BM_LinkBurst(benchmark::State& state) {
  const bool burst = state.range(0) != 0;
  std::uint64_t delivered = 0;
  for (auto _ : state) {
    Simulator sim;
    BenchBouncer east_sink, west_sink;
    Link::Config lc;
    lc.rate_bps = 1'000'000'000'000'000'000ull;  // zero-tx for any real MTU
    lc.propagation = SimTime::Nanos(100);
    lc.allow_burst = burst;
    lc.queue.capacity_packets = 64;
    Link east(sim, lc, &east_sink);
    Link west(sim, lc, &west_sink);
    east_sink.out = &west;
    west_sink.out = &east;
    for (std::uint64_t i = 0; i < 8; ++i) {
      Packet p;
      p.id = i + 1;
      p.size_bytes = 9000;
      p.payload = 8940;
      east.Enqueue(std::move(p));
    }
    sim.RunUntil(SimTime::Millis(1));
    delivered += east_sink.received + west_sink.received;
    benchmark::DoNotOptimize(east_sink.received);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(delivered));
}
BENCHMARK(BM_LinkBurst)->Arg(0)->Arg(1);

// Scale benchmarks (tracked in BENCH_scale.json): end-to-end simulated
// events per wall second on the two heaviest standing configurations. Items
// are simulator events, so items/s is directly events/s.
void BM_ScaleChurnFault(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    FaultPlan plan;
    plan.fabric.loss_rate = 0.02;
    plan.control.notify_loss_rate = 0.1;
    plan.control.notify_delay_mean = SimTime::Micros(5);
    plan.control.notify_duplicate_rate = 0.05;
    ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                               .WithFlows(8)
                               .WithDuration(SimTime::Millis(5))
                               .WithWarmup(SimTime::Millis(1))
                               .WithSampling(false, false)
                               .WithFault(plan)
                               .WithChurn(50);
    ExperimentResult r = RunExperiment(cfg);
    events += r.sim_events;
    benchmark::DoNotOptimize(r.total_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("2-rack, 8 flows + 50 churn conns, mixed faults");
}
BENCHMARK(BM_ScaleChurnFault)->Unit(benchmark::kMillisecond);

void BM_ScaleIncast(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                               .WithFlows(16)
                               .WithDuration(SimTime::Millis(5))
                               .WithWarmup(SimTime::Millis(1))
                               .WithSampling(false, false);
    ExperimentResult r = RunExperiment(cfg);
    events += r.sim_events;
    benchmark::DoNotOptimize(r.total_bytes);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.SetLabel("2-rack, 16-flow cross-rack incast");
}
BENCHMARK(BM_ScaleIncast)->Unit(benchmark::kMillisecond);

// Console output as usual, plus a machine-readable copy of every finished
// run. Counter values arrive already finalized (rates resolved against cpu
// time by the benchmark runner), so they are copied through untouched.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  std::vector<BenchRun> collected;

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      BenchRun b;
      b.name = run.benchmark_name();
      b.iterations = static_cast<double>(run.iterations);
      const double iters =
          run.iterations == 0 ? 1.0 : static_cast<double>(run.iterations);
      b.real_time_ns = run.real_accumulated_time / iters * 1e9;
      b.cpu_time_ns = run.cpu_accumulated_time / iters * 1e9;
      for (const auto& [name, c] : run.counters) {
        if (name == "items_per_second") {
          b.items_per_second = c.value;
        } else {
          b.counters[name] = c.value;
        }
      }
      collected.push_back(std::move(b));
    }
    ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace
}  // namespace tdtcp

int main(int argc, char** argv) {
  std::string out_path;
  double min_items_per_sec = 0;
  // --min-items-per-sec=@FILE[:FRAC] reads per-benchmark floors from a
  // tdtcp-bench/1 baseline: each run must reach FRAC (default 0.5) of the
  // baseline's items/s for the same benchmark name.
  std::string baseline_floor_path;
  double baseline_floor_frac = 0.5;
  // Strip our flags before google-benchmark sees (and rejects) them.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--out=", 6) == 0) {
      out_path = arg + 6;
    } else if (std::strncmp(arg, "--min-items-per-sec=", 20) == 0) {
      const char* value = arg + 20;
      if (value[0] == '@') {
        baseline_floor_path = value + 1;
        const std::size_t colon = baseline_floor_path.rfind(':');
        if (colon != std::string::npos) {
          char* end = nullptr;
          const double frac =
              std::strtod(baseline_floor_path.c_str() + colon + 1, &end);
          if (end != nullptr && *end == '\0' && frac > 0) {
            baseline_floor_frac = frac;
            baseline_floor_path.resize(colon);
          }
        }
      } else {
        min_items_per_sec = std::atof(value);
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  tdtcp::CollectingReporter reporter;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks(&reporter);
  if (ran == 0) {
    std::fprintf(stderr, "bench_micro: no benchmarks matched the filter\n");
    return 1;
  }

  tdtcp::BenchReport report;
  report.context = "bench_micro";
  report.runs = std::move(reporter.collected);

  if (!out_path.empty()) {
    tdtcp::WriteBenchJson(out_path, report);
    // Validate the emitted document by round-tripping it through the reader;
    // a write/parse mismatch here is a bug worth failing the run over.
    try {
      const tdtcp::BenchReport back = tdtcp::ReadBenchJson(out_path);
      if (back.runs.size() != report.runs.size()) {
        throw std::runtime_error("run count changed across round-trip");
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_micro: invalid --out JSON: %s\n", e.what());
      return 1;
    }
    std::printf("wrote %s (%zu runs, schema %s)\n", out_path.c_str(),
                report.runs.size(), tdtcp::kBenchSchemaVersion);
  }

  if (min_items_per_sec > 0) {
    bool ok = false;
    for (const tdtcp::BenchRun& r : report.runs) {
      if (r.items_per_second == 0) continue;  // no item rate reported
      if (r.items_per_second < min_items_per_sec) {
        std::fprintf(stderr, "bench_micro: %s at %.0f items/s is below the %.0f floor\n",
                     r.name.c_str(), r.items_per_second, min_items_per_sec);
        return 1;
      }
      ok = true;
    }
    if (!ok) {
      std::fprintf(stderr,
                   "bench_micro: --min-items-per-sec set but no benchmark "
                   "reported an item rate\n");
      return 1;
    }
  }

  if (!baseline_floor_path.empty()) {
    tdtcp::BenchReport baseline;
    try {
      baseline = tdtcp::ReadBenchJson(baseline_floor_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "bench_micro: cannot read baseline %s: %s\n",
                   baseline_floor_path.c_str(), e.what());
      return 1;
    }
    std::size_t checked = 0;
    for (const tdtcp::BenchRun& r : report.runs) {
      if (r.items_per_second == 0) continue;
      for (const tdtcp::BenchRun& b : baseline.runs) {
        if (b.name != r.name || b.items_per_second == 0) continue;
        const double floor = b.items_per_second * baseline_floor_frac;
        if (r.items_per_second < floor) {
          std::fprintf(stderr,
                       "bench_micro: %s at %.0f items/s is below %.2fx of the "
                       "baseline %.0f\n",
                       r.name.c_str(), r.items_per_second, baseline_floor_frac,
                       b.items_per_second);
          return 1;
        }
        ++checked;
        break;
      }
    }
    if (checked == 0) {
      std::fprintf(stderr,
                   "bench_micro: baseline floor set but no benchmark matched "
                   "an entry in %s\n",
                   baseline_floor_path.c_str());
      return 1;
    }
    std::printf("baseline floor: %zu benchmarks >= %.2fx of %s\n", checked,
                baseline_floor_frac, baseline_floor_path.c_str());
  }

  benchmark::Shutdown();
  return 0;
}
