// Microbenchmarks (google-benchmark): raw simulator and stack performance,
// backing the paper's engineering claim that the implementation "scales to
// 100 Gbps and supports reconfigurations on microsecond timescales" —
// translated to this substrate: the simulator processes packet events far
// faster than real time would require for protocol research.
#include <benchmark/benchmark.h>

#include "app/experiment.hpp"
#include "app/sweep.hpp"
#include "cc/registry.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "net/topology.hpp"
#include "rdcn/controller.hpp"

namespace tdtcp {
namespace {

void BM_EventQueueScheduleRun(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Simulator sim;
    int sink = 0;
    for (int i = 0; i < batch; ++i) {
      sim.Schedule(SimTime::Nanos(i % 1000), [&sink] { ++sink; });
    }
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1024)->Arg(65536);

void BM_SelfReschedulingTimer(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::int64_t fires = 0;
    std::function<void()> tick = [&] {
      if (++fires < 100000) sim.Schedule(SimTime::Nanos(100), tick);
    };
    sim.Schedule(SimTime::Nanos(100), tick);
    sim.Run();
    benchmark::DoNotOptimize(fires);
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SelfReschedulingTimer);

// Full 100 Gbps bulk transfer: how many simulated packets per wall second?
void BM_HundredGbpsTransfer(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    Random rng(1);
    TopologyConfig tc;
    tc.hosts_per_rack = 2;
    tc.packet_mode.rate_bps = 100'000'000'000;
    tc.voq.capacity_packets = 64;
    Topology topo(sim, rng, tc);
    TcpConfig c;
    c.mss = 8940;
    c.cc_factory = MakeCcFactory("cubic");
    TcpConnection server(sim, topo.host(1, 0), 1, topo.host_id(0, 0), c);
    TcpConnection client(sim, topo.host(0, 0), 1, topo.host_id(1, 0), c);
    server.Listen();
    client.Connect();
    client.SetUnlimitedData(true);
    sim.RunUntil(SimTime::Millis(2));
    benchmark::DoNotOptimize(client.bytes_acked());
    state.counters["sim_events"] = static_cast<double>(sim.events_executed());
    state.counters["goodput_gbps"] =
        static_cast<double>(client.bytes_acked()) * 8 / 2e-3 / 1e9;
  }
}
BENCHMARK(BM_HundredGbpsTransfer)->Unit(benchmark::kMillisecond);

// A full paper-config RDCN week with 8 TDTCP flows: microsecond-scale
// reconfigurations under load.
void BM_RdcnWeekTdtcp(benchmark::State& state) {
  for (auto _ : state) {
    ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                               .WithFlows(8)
                               .WithDuration(SimTime::Micros(2800))  // 2 weeks
                               .WithWarmup(SimTime::Micros(1400))
                               .WithSampling(false, false)
                               .WithSampleInterval(SimTime::Micros(100))
                               .WithPlotWeeks(1);
    ExperimentResult r = RunExperiment(cfg);
    benchmark::DoNotOptimize(r.total_bytes);
  }
  state.SetLabel("two 1400us weeks, 8 flows, 14 reconfigurations");
}
BENCHMARK(BM_RdcnWeekTdtcp)->Unit(benchmark::kMillisecond);

// Sweep-engine scaling: the same 4-cell grid at jobs=1 vs jobs=N. On a
// multi-core machine the jobs=N time should approach time/cores.
void BM_SweepGrid(benchmark::State& state) {
  const int jobs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    SweepSpec spec;
    spec.base = PaperConfig(Variant::kTdtcp)
                    .WithFlows(4)
                    .WithDuration(SimTime::Micros(2800))
                    .WithWarmup(SimTime::Micros(1400))
                    .WithSampling(false, false)
                    .WithSampleInterval(SimTime::Micros(100))
                    .WithPlotWeeks(1);
    spec.variants = {Variant::kTdtcp, Variant::kCubic};
    spec.seeds = {1, 2};
    spec.jobs = jobs;
    SweepResult r = RunSweep(spec);
    benchmark::DoNotOptimize(r.cells.size());
  }
  state.SetLabel("2 variants x 2 seeds");
}
BENCHMARK(BM_SweepGrid)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

// ACK-processing hot path: SACK scoreboard + per-TDN accounting.
void BM_AckProcessing(benchmark::State& state) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.hosts_per_rack = 2;
  Topology topo(sim, rng, tc);
  TcpConfig c;
  c.mss = 8940;
  c.cc_factory = MakeCcFactory("cubic");
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  TcpConnection server(sim, topo.host(1, 0), 1, topo.host_id(0, 0), c);
  TcpConnection client(sim, topo.host(0, 0), 1, topo.host_id(1, 0), c);
  server.Listen();
  client.Connect();
  client.SetUnlimitedData(true);
  sim.RunUntil(SimTime::Millis(1));

  std::int64_t processed = 0;
  for (auto _ : state) {
    // Run the live simulation forward; each iteration processes the next
    // chunk of ack/data events.
    sim.RunFor(SimTime::Micros(100));
    processed = static_cast<std::int64_t>(client.stats().acks_received);
    benchmark::DoNotOptimize(processed);
  }
  state.counters["acks"] = static_cast<double>(processed);
}
BENCHMARK(BM_AckProcessing);

}  // namespace
}  // namespace tdtcp

BENCHMARK_MAIN();
