// Shared bench harness, a thin layer over the sweep engine (app/sweep.hpp):
// benches declare a base config and a variant list, and the engine runs the
// (variant x seed) grid on a thread pool, aggregates across seeds, and
// emits versioned JSON/CSV through app/result_io.hpp.
//
// Every bench accepts the shared flags
//     ./bench_xxx [duration_ms] [--duration-ms=D] [--jobs=N] [--seeds=K]
//                 [--qdisc=NAME] [--out=path] [--schedule-jitter=US]
//                 [--day-skew=S]
// --jobs=0 (the default) uses one worker per hardware thread; results are
// bit-identical at any job count. --seeds=K averages K deterministic seeds
// per configuration and reports mean +/- 95% CI. --qdisc selects the VOQ
// queue discipline (droptail | codel | delaymark | sharedpool; empty keeps
// the config's default). Longer durations average more optical weeks per
// seed (the paper averages thousands). --out=path writes path.json (schema
// tdtcp-sweep/1) and path.csv next to the figure CSVs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/experiment.hpp"
#include "app/result_io.hpp"
#include "app/sweep.hpp"
#include "trace/samplers.hpp"

namespace tdtcp::bench {

struct BenchArgs {
  int duration_ms = 0;
  int jobs = 0;       // 0 = hardware concurrency
  int seeds = 1;      // seeds 1..K per configuration point
  std::string qdisc;  // VOQ discipline name ("" = config default)
  std::string recovery;  // recovery mode name ("" = config default)
  std::string out;    // base path for sweep JSON/CSV ("" = don't write)
  // Adversarial-schedule axes, applied to every run (0 = nominal schedule):
  // --schedule-jitter=J adds a uniform +/- J µs draw to every day/night
  // boundary; --day-skew=S stretches even days by (1+S) and shrinks odd days
  // by (1-S), S in [0, 1).
  double schedule_jitter_us = 0.0;
  double day_skew = 0.0;

  std::vector<std::uint64_t> SeedList() const {
    std::vector<std::uint64_t> s;
    for (int i = 1; i <= seeds; ++i) s.push_back(static_cast<std::uint64_t>(i));
    return s;
  }
};

inline BenchArgs ParseBenchArgs(int argc, char** argv, int default_ms) {
  BenchArgs args;
  args.duration_ms = default_ms;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--duration-ms=", 14) == 0) {
      args.duration_ms = std::atoi(a + 14);
    } else if (std::strncmp(a, "--jobs=", 7) == 0) {
      args.jobs = std::atoi(a + 7);
    } else if (std::strncmp(a, "--seeds=", 8) == 0) {
      args.seeds = std::max(1, std::atoi(a + 8));
    } else if (std::strncmp(a, "--qdisc=", 8) == 0) {
      args.qdisc = a + 8;
      try {
        (void)QdiscKindFromName(args.qdisc);
      } catch (const std::invalid_argument&) {
        std::fprintf(stderr,
                     "%s: unknown --qdisc '%s' (expected droptail | codel | "
                     "delaymark | sharedpool)\n",
                     argv[0], args.qdisc.c_str());
        std::exit(2);
      }
    } else if (std::strncmp(a, "--recovery=", 11) == 0) {
      args.recovery = a + 11;
      try {
        (void)RecoveryModeFromName(args.recovery);
      } catch (const std::invalid_argument&) {
        std::fprintf(stderr,
                     "%s: unknown --recovery '%s' (expected off | rack | "
                     "agent)\n",
                     argv[0], args.recovery.c_str());
        std::exit(2);
      }
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      args.out = a + 6;
    } else if (std::strncmp(a, "--schedule-jitter=", 18) == 0) {
      args.schedule_jitter_us = std::atof(a + 18);
      if (args.schedule_jitter_us < 0.0) {
        std::fprintf(stderr, "%s: --schedule-jitter must be >= 0 µs\n",
                     argv[0]);
        std::exit(2);
      }
    } else if (std::strncmp(a, "--day-skew=", 11) == 0) {
      args.day_skew = std::atof(a + 11);
      if (args.day_skew < 0.0 || args.day_skew >= 1.0) {
        std::fprintf(stderr, "%s: --day-skew must be in [0, 1)\n", argv[0]);
        std::exit(2);
      }
    } else if (a[0] != '-' && std::atoi(a) > 0) {
      args.duration_ms = std::atoi(a);  // legacy positional [duration_ms]
    } else {
      std::fprintf(stderr,
                   "usage: %s [duration_ms] [--duration-ms=D] [--jobs=N] "
                   "[--seeds=K] [--qdisc=NAME] [--recovery=MODE] [--out=path] "
                   "[--schedule-jitter=US] [--day-skew=S]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.duration_ms <= 0) args.duration_ms = default_ms;
  return args;
}

// Applies --qdisc (when given) onto a config: one line in every bench's
// setup path makes the discipline a command-line axis.
inline void ApplyQdisc(ExperimentConfig& cfg, const BenchArgs& args) {
  if (!args.qdisc.empty()) cfg.WithQdisc(QdiscKindFromName(args.qdisc));
}

// Applies --recovery (when given): the tail-recovery axis (off | rack |
// agent) becomes a command-line knob on every sim-scale bench.
inline void ApplyRecovery(ExperimentConfig& cfg, const BenchArgs& args) {
  if (!args.recovery.empty()) {
    cfg.WithRecovery(RecoveryModeFromName(args.recovery));
  }
}

// Applies --schedule-jitter / --day-skew (when given): every bench binary
// runs under a perturbed rotor schedule without per-bench plumbing.
inline void ApplyPerturbation(ExperimentConfig& cfg, const BenchArgs& args) {
  if (args.schedule_jitter_us == 0.0 && args.day_skew == 0.0) return;
  PerturbationConfig p = cfg.perturb;  // keep any bench-specific changes
  p.day_skew = args.day_skew;
  p.jitter = SimTime::Picos(
      static_cast<std::int64_t>(args.schedule_jitter_us * 1e6));
  cfg.WithSchedulePerturbation(std::move(p));
}

struct VariantRun {
  Variant variant;
  ExperimentResult result;  // first seed's run (curves and series)
  std::vector<std::pair<std::string, MetricStats>> stats;  // across seeds

  const MetricStats* stat(const std::string& name) const {
    for (const auto& [n, s] : stats) {
      if (n == name) return &s;
    }
    return nullptr;
  }
};

// Writes the full sweep (per-seed metrics + aggregates) when --out given.
inline void MaybeWriteSweep(const BenchArgs& args, const SweepResult& sweep) {
  if (args.out.empty()) return;
  try {
    WriteSweepJson(args.out + ".json", sweep);
    WriteSweepCsv(args.out + ".csv", sweep);
  } catch (const std::exception& e) {
    // The results are already printed; a bad --out path shouldn't abort.
    std::fprintf(stderr, "  --out failed: %s\n", e.what());
    return;
  }
  std::fprintf(stderr, "  wrote %s.json, %s.csv (schema %s)\n",
               args.out.c_str(), args.out.c_str(), kSweepSchemaVersion);
}

// Runs each variant under `base` on the sweep engine's thread pool,
// averaging args.seeds seeds per variant. Duration/warmup come from `base`
// (set them via WithDurationMs(args.duration_ms) or explicitly).
inline std::vector<VariantRun> RunVariants(const std::vector<Variant>& variants,
                                           const ExperimentConfig& base,
                                           const BenchArgs& args) {
  SweepSpec spec;
  spec.base = base;
  ApplyQdisc(spec.base, args);
  ApplyRecovery(spec.base, args);
  ApplyPerturbation(spec.base, args);
  spec.variants = variants;
  spec.seeds = args.SeedList();
  spec.jobs = args.jobs;

  std::fprintf(stderr, "  sweep: %zu variants x %d seed%s, jobs=%d...\n",
               variants.size(), args.seeds, args.seeds == 1 ? "" : "s",
               ResolveJobs(args.jobs));
  SweepResult sweep = RunSweep(spec);
  std::fprintf(stderr, "  done in %.2fs wall\n", sweep.wall_seconds);
  MaybeWriteSweep(args, sweep);

  std::vector<VariantRun> out;
  for (SweepCell& cell : sweep.cells) {
    out.push_back(VariantRun{cell.variant, std::move(cell.runs.front().result),
                             std::move(cell.metrics)});
  }
  return out;
}

// Prints a paper-style sequence-number table: one row per `row_step_us`,
// one column per curve, values in bytes since the window start.
inline void PrintSeqTable(const std::vector<NamedSeries>& series,
                          double row_step_us, const char* unit = "bytes") {
  std::printf("\n%-10s", "time_us");
  for (const auto& s : series) std::printf(" %14s", s.name.c_str());
  std::printf("   (%s)\n", unit);
  if (series.empty() || series.front().points.empty()) return;
  double next_row = 0;
  for (std::size_t i = 0; i < series.front().points.size(); ++i) {
    const double t = series.front().points[i].offset_us;
    if (t + 1e-9 < next_row) continue;
    next_row = t + row_step_us;
    std::printf("%-10.0f", t);
    for (const auto& s : series) {
      if (i < s.points.size()) {
        std::printf(" %14.0f", s.points[i].mean);
      } else {
        std::printf(" %14s", "");
      }
    }
    std::printf("\n");
  }
}

// Interpolated lookup of a folded curve at `offset_us`.
inline double CurveAt(const std::vector<FoldedPoint>& curve, double offset_us) {
  if (curve.empty()) return 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].offset_us >= offset_us) return curve[i].mean;
  }
  return curve.back().mean;
}

inline void PrintGoodputSummary(const std::vector<VariantRun>& runs,
                                double optimal_bps, double packet_only_bps) {
  const bool ci = !runs.empty() && runs.front().stat("goodput_bps") &&
                  runs.front().stat("goodput_bps")->n > 1;
  std::printf("\n%-10s %10s %8s %8s%s\n", "variant", "goodput", "of-opt",
              "vs-pkt", ci ? "    ci95" : "");
  std::printf("%-10s %7.2f Gb %7.1f%% %7.2fx\n", "optimal", optimal_bps / 1e9,
              100.0, optimal_bps / packet_only_bps);
  for (const auto& r : runs) {
    const MetricStats* g = r.stat("goodput_bps");
    const double bps = g ? g->mean : r.result.goodput_bps;
    std::printf("%-10s %7.2f Gb %7.1f%% %7.2fx", VariantName(r.variant),
                bps / 1e9, 100.0 * bps / optimal_bps, bps / packet_only_bps);
    if (ci && g) std::printf("  +-%.2f Gb", g->ci95 / 1e9);
    std::printf("\n");
  }
  std::printf("%-10s %7.2f Gb %7.1f%% %7.2fx\n", "pkt-only",
              packet_only_bps / 1e9, 100.0 * packet_only_bps / optimal_bps,
              1.0);
}

// Assembles the standard figure bundle: per-variant seq curves plus the
// analytic optimal/packet-only lines from the first run.
inline std::vector<NamedSeries> SeqSeries(const std::vector<VariantRun>& runs) {
  std::vector<NamedSeries> series;
  if (!runs.empty()) {
    series.push_back(NamedSeries{"optimal", runs.front().result.optimal_curve});
  }
  for (const auto& r : runs) {
    series.push_back(NamedSeries{VariantName(r.variant), r.result.seq_curve});
  }
  if (!runs.empty()) {
    series.push_back(
        NamedSeries{"packet_only", runs.front().result.packet_only_curve});
  }
  return series;
}

inline std::vector<NamedSeries> VoqSeries(const std::vector<VariantRun>& runs) {
  std::vector<NamedSeries> series;
  for (const auto& r : runs) {
    series.push_back(NamedSeries{VariantName(r.variant), r.result.voq_curve});
  }
  return series;
}

inline double AnalyticOptimalBps(const ExperimentConfig& cfg) {
  const Schedule schedule(cfg.schedule);
  return schedule.OptimalBits(schedule.week_length(),
                              cfg.topology.packet_mode.rate_bps,
                              cfg.topology.circuit_mode.rate_bps) /
         schedule.week_length().seconds();
}

}  // namespace tdtcp::bench
