// Shared bench harness: runs paper-configured experiments for a set of
// variants, prints the same rows/series the paper plots, and writes CSVs
// next to the binary.
//
// Every bench accepts an optional duration override:
//     ./bench_fig07_bw_latency [duration_ms]
// Longer runs average more optical weeks (the paper averages thousands);
// defaults keep each bench in the seconds range.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "app/experiment.hpp"
#include "trace/samplers.hpp"

namespace tdtcp::bench {

inline int DurationMsFromArgs(int argc, char** argv, int def_ms) {
  if (argc > 1) {
    const int ms = std::atoi(argv[1]);
    if (ms > 0) return ms;
  }
  return def_ms;
}

struct VariantRun {
  Variant variant;
  ExperimentResult result;
};

// Runs each variant under `base` (variant-specific knobs from PaperConfig
// are re-applied on top).
inline std::vector<VariantRun> RunVariants(const std::vector<Variant>& variants,
                                           const ExperimentConfig& base,
                                           int plot_weeks = 3) {
  std::vector<VariantRun> out;
  for (Variant v : variants) {
    ExperimentConfig cfg = base;
    cfg.workload.variant = v;
    cfg.workload.base.tdtcp_enabled = false;
    cfg.workload.base.num_tdns = 1;
    cfg.topology.voq.ecn_threshold_packets =
        PaperConfig(v).topology.voq.ecn_threshold_packets;
    cfg.dynamic_voq = (v == Variant::kRetcpDyn);
    std::fprintf(stderr, "  running %s...\n", VariantName(v));
    out.push_back(VariantRun{v, RunExperiment(cfg, plot_weeks)});
  }
  return out;
}

// Prints a paper-style sequence-number table: one row per `row_step_us`,
// one column per curve, values in bytes since the window start.
inline void PrintSeqTable(const std::vector<NamedSeries>& series,
                          double row_step_us, const char* unit = "bytes") {
  std::printf("\n%-10s", "time_us");
  for (const auto& s : series) std::printf(" %14s", s.name.c_str());
  std::printf("   (%s)\n", unit);
  if (series.empty() || series.front().points.empty()) return;
  double next_row = 0;
  for (std::size_t i = 0; i < series.front().points.size(); ++i) {
    const double t = series.front().points[i].offset_us;
    if (t + 1e-9 < next_row) continue;
    next_row = t + row_step_us;
    std::printf("%-10.0f", t);
    for (const auto& s : series) {
      if (i < s.points.size()) {
        std::printf(" %14.0f", s.points[i].mean);
      } else {
        std::printf(" %14s", "");
      }
    }
    std::printf("\n");
  }
}

// Interpolated lookup of a folded curve at `offset_us`.
inline double CurveAt(const std::vector<FoldedPoint>& curve, double offset_us) {
  if (curve.empty()) return 0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    if (curve[i].offset_us >= offset_us) return curve[i].mean;
  }
  return curve.back().mean;
}

inline void PrintGoodputSummary(const std::vector<VariantRun>& runs,
                                double optimal_bps, double packet_only_bps) {
  std::printf("\n%-10s %10s %8s %8s\n", "variant", "goodput", "of-opt",
              "vs-pkt");
  std::printf("%-10s %7.2f Gb %7.1f%% %7.2fx\n", "optimal", optimal_bps / 1e9,
              100.0, optimal_bps / packet_only_bps);
  for (const auto& r : runs) {
    std::printf("%-10s %7.2f Gb %7.1f%% %7.2fx\n", VariantName(r.variant),
                r.result.goodput_bps / 1e9,
                100.0 * r.result.goodput_bps / optimal_bps,
                r.result.goodput_bps / packet_only_bps);
  }
  std::printf("%-10s %7.2f Gb %7.1f%% %7.2fx\n", "pkt-only",
              packet_only_bps / 1e9, 100.0 * packet_only_bps / optimal_bps,
              1.0);
}

// Assembles the standard figure bundle: per-variant seq curves plus the
// analytic optimal/packet-only lines from the first run.
inline std::vector<NamedSeries> SeqSeries(const std::vector<VariantRun>& runs) {
  std::vector<NamedSeries> series;
  if (!runs.empty()) {
    series.push_back(NamedSeries{"optimal", runs.front().result.optimal_curve});
  }
  for (const auto& r : runs) {
    series.push_back(NamedSeries{VariantName(r.variant), r.result.seq_curve});
  }
  if (!runs.empty()) {
    series.push_back(
        NamedSeries{"packet_only", runs.front().result.packet_only_curve});
  }
  return series;
}

inline std::vector<NamedSeries> VoqSeries(const std::vector<VariantRun>& runs) {
  std::vector<NamedSeries> series;
  for (const auto& r : runs) {
    series.push_back(NamedSeries{VariantName(r.variant), r.result.voq_curve});
  }
  return series;
}

inline double AnalyticOptimalBps(const ExperimentConfig& cfg) {
  const Schedule schedule(cfg.schedule);
  return schedule.OptimalBits(schedule.week_length(),
                              cfg.topology.packet_mode.rate_bps,
                              cfg.topology.circuit_mode.rate_bps) /
         schedule.week_length().seconds();
}

}  // namespace tdtcp::bench
