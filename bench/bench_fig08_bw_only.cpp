// Figure 8 (§5.2): bandwidth difference only — both TDNs share the packet
// network's ~100us RTT; rates stay 10G vs 100G.
//
// Expected shape: CUBIC and DCTCP close most of the gap to TDTCP (they can
// adapt to bandwidth alone); reTCPdyn near-optimal; MPTCP still struggles;
// VOQ occupancy largely unchanged from Fig. 7 with TDTCP lowest.
#include "bench_util.hpp"

using namespace tdtcp;
using namespace tdtcp::bench;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, 80);
  ExperimentConfig base =
      PaperConfig(Variant::kCubic).WithFlows(8).WithDurationMs(args.duration_ms);
  // Equalize latency at the optical propagation (~40us RTT for both): with
  // the latency difference removed, single-path TCP's window suffices for
  // both TDNs' BDPs and it adapts to the bandwidth change alone.
  base.topology.packet_mode.propagation = base.topology.circuit_mode.propagation;

  std::printf("Figure 8: bandwidth difference only "
              "(10G vs 100G, equal ~40us RTT), %d ms averaged\n",
              args.duration_ms);

  const std::vector<Variant> variants = {
      Variant::kTdtcp, Variant::kRetcpDyn, Variant::kRetcp,
      Variant::kDctcp, Variant::kCubic,    Variant::kMptcp,
  };
  auto runs = RunVariants(variants, base, args);

  std::printf("\n--- (a) expected TCP sequence number ---\n");
  auto seq = SeqSeries(runs);
  PrintSeqTable(seq, 100.0);

  std::printf("\n--- (b) ToR VOQ occupancy (packets) ---\n");
  auto voq = VoqSeries(runs);
  PrintSeqTable(voq, 100.0, "packets");

  PrintGoodputSummary(runs, AnalyticOptimalBps(base),
                      static_cast<double>(base.topology.packet_mode.rate_bps));

  WriteSeriesCsv("fig08a_seq.csv", seq);
  WriteSeriesCsv("fig08b_voq.csv", voq);
  std::printf("\nwrote fig08a_seq.csv, fig08b_voq.csv\n");
  return 0;
}
