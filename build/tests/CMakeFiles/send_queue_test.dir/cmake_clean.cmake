file(REMOVE_RECURSE
  "CMakeFiles/send_queue_test.dir/send_queue_test.cpp.o"
  "CMakeFiles/send_queue_test.dir/send_queue_test.cpp.o.d"
  "send_queue_test"
  "send_queue_test.pdb"
  "send_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/send_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
