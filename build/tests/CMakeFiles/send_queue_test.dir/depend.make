# Empty dependencies file for send_queue_test.
# This may be replaced when dependencies are built.
