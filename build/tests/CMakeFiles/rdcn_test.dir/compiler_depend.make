# Empty compiler generated dependencies file for rdcn_test.
# This may be replaced when dependencies are built.
