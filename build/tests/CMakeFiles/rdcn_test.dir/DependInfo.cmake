
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rdcn_test.cpp" "tests/CMakeFiles/rdcn_test.dir/rdcn_test.cpp.o" "gcc" "tests/CMakeFiles/rdcn_test.dir/rdcn_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/tdtcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/mptcp/CMakeFiles/tdtcp_mptcp.dir/DependInfo.cmake"
  "/root/repo/build/src/rdcn/CMakeFiles/tdtcp_rdcn.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tdtcp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/tdtcp_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tdtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
