file(REMOVE_RECURSE
  "CMakeFiles/rdcn_test.dir/rdcn_test.cpp.o"
  "CMakeFiles/rdcn_test.dir/rdcn_test.cpp.o.d"
  "rdcn_test"
  "rdcn_test.pdb"
  "rdcn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdcn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
