# Empty compiler generated dependencies file for receive_buffer_test.
# This may be replaced when dependencies are built.
