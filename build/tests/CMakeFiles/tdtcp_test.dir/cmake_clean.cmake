file(REMOVE_RECURSE
  "CMakeFiles/tdtcp_test.dir/tdtcp_test.cpp.o"
  "CMakeFiles/tdtcp_test.dir/tdtcp_test.cpp.o.d"
  "tdtcp_test"
  "tdtcp_test.pdb"
  "tdtcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdtcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
