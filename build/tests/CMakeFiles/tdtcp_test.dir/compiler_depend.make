# Empty compiler generated dependencies file for tdtcp_test.
# This may be replaced when dependencies are built.
