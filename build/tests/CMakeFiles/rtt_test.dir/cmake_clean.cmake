file(REMOVE_RECURSE
  "CMakeFiles/rtt_test.dir/rtt_test.cpp.o"
  "CMakeFiles/rtt_test.dir/rtt_test.cpp.o.d"
  "rtt_test"
  "rtt_test.pdb"
  "rtt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
