# Empty dependencies file for rtt_test.
# This may be replaced when dependencies are built.
