# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/rdcn_test[1]_include.cmake")
include("/root/repo/build/tests/rtt_test[1]_include.cmake")
include("/root/repo/build/tests/send_queue_test[1]_include.cmake")
include("/root/repo/build/tests/receive_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/cc_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/tdtcp_test[1]_include.cmake")
include("/root/repo/build/tests/mptcp_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
