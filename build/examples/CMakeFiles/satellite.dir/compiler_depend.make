# Empty compiler generated dependencies file for satellite.
# This may be replaced when dependencies are built.
