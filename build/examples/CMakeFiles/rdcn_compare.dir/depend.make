# Empty dependencies file for rdcn_compare.
# This may be replaced when dependencies are built.
