file(REMOVE_RECURSE
  "CMakeFiles/rdcn_compare.dir/rdcn_compare.cpp.o"
  "CMakeFiles/rdcn_compare.dir/rdcn_compare.cpp.o.d"
  "rdcn_compare"
  "rdcn_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdcn_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
