file(REMOVE_RECURSE
  "CMakeFiles/multi_tdn.dir/multi_tdn.cpp.o"
  "CMakeFiles/multi_tdn.dir/multi_tdn.cpp.o.d"
  "multi_tdn"
  "multi_tdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
