# Empty dependencies file for multi_tdn.
# This may be replaced when dependencies are built.
