# Empty compiler generated dependencies file for bench_fig13_voq_motivation.
# This may be replaced when dependencies are built.
