file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_voq_motivation.dir/bench_fig13_voq_motivation.cpp.o"
  "CMakeFiles/bench_fig13_voq_motivation.dir/bench_fig13_voq_motivation.cpp.o.d"
  "bench_fig13_voq_motivation"
  "bench_fig13_voq_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_voq_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
