file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_notification.dir/bench_fig11_notification.cpp.o"
  "CMakeFiles/bench_fig11_notification.dir/bench_fig11_notification.cpp.o.d"
  "bench_fig11_notification"
  "bench_fig11_notification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_notification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
