# Empty compiler generated dependencies file for bench_fig11_notification.
# This may be replaced when dependencies are built.
