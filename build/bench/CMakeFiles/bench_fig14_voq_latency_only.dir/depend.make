# Empty dependencies file for bench_fig14_voq_latency_only.
# This may be replaced when dependencies are built.
