file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_latency_only.dir/bench_fig09_latency_only.cpp.o"
  "CMakeFiles/bench_fig09_latency_only.dir/bench_fig09_latency_only.cpp.o.d"
  "bench_fig09_latency_only"
  "bench_fig09_latency_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_latency_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
