# Empty dependencies file for bench_fig09_latency_only.
# This may be replaced when dependencies are built.
