# Empty dependencies file for bench_fig08_bw_only.
# This may be replaced when dependencies are built.
