file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_bw_only.dir/bench_fig08_bw_only.cpp.o"
  "CMakeFiles/bench_fig08_bw_only.dir/bench_fig08_bw_only.cpp.o.d"
  "bench_fig08_bw_only"
  "bench_fig08_bw_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_bw_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
