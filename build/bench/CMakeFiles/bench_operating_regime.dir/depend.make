# Empty dependencies file for bench_operating_regime.
# This may be replaced when dependencies are built.
