file(REMOVE_RECURSE
  "CMakeFiles/bench_operating_regime.dir/bench_operating_regime.cpp.o"
  "CMakeFiles/bench_operating_regime.dir/bench_operating_regime.cpp.o.d"
  "bench_operating_regime"
  "bench_operating_regime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_operating_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
