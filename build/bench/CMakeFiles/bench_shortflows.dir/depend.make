# Empty dependencies file for bench_shortflows.
# This may be replaced when dependencies are built.
