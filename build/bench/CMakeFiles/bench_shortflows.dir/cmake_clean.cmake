file(REMOVE_RECURSE
  "CMakeFiles/bench_shortflows.dir/bench_shortflows.cpp.o"
  "CMakeFiles/bench_shortflows.dir/bench_shortflows.cpp.o.d"
  "bench_shortflows"
  "bench_shortflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shortflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
