file(REMOVE_RECURSE
  "CMakeFiles/bench_fairness.dir/bench_fairness.cpp.o"
  "CMakeFiles/bench_fairness.dir/bench_fairness.cpp.o.d"
  "bench_fairness"
  "bench_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
