# Empty compiler generated dependencies file for tdtcp_sim.
# This may be replaced when dependencies are built.
