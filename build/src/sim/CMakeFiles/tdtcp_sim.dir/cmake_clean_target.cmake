file(REMOVE_RECURSE
  "libtdtcp_sim.a"
)
