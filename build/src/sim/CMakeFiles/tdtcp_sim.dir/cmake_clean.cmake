file(REMOVE_RECURSE
  "CMakeFiles/tdtcp_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tdtcp_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tdtcp_sim.dir/simulator.cpp.o"
  "CMakeFiles/tdtcp_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/tdtcp_sim.dir/time.cpp.o"
  "CMakeFiles/tdtcp_sim.dir/time.cpp.o.d"
  "libtdtcp_sim.a"
  "libtdtcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdtcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
