file(REMOVE_RECURSE
  "CMakeFiles/tdtcp_trace.dir/flow_logger.cpp.o"
  "CMakeFiles/tdtcp_trace.dir/flow_logger.cpp.o.d"
  "CMakeFiles/tdtcp_trace.dir/samplers.cpp.o"
  "CMakeFiles/tdtcp_trace.dir/samplers.cpp.o.d"
  "libtdtcp_trace.a"
  "libtdtcp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdtcp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
