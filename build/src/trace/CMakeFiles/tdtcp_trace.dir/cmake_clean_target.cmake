file(REMOVE_RECURSE
  "libtdtcp_trace.a"
)
