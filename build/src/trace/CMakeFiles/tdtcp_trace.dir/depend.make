# Empty dependencies file for tdtcp_trace.
# This may be replaced when dependencies are built.
