# Empty dependencies file for tdtcp_rdcn.
# This may be replaced when dependencies are built.
