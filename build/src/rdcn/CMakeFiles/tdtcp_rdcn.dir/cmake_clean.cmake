file(REMOVE_RECURSE
  "CMakeFiles/tdtcp_rdcn.dir/controller.cpp.o"
  "CMakeFiles/tdtcp_rdcn.dir/controller.cpp.o.d"
  "CMakeFiles/tdtcp_rdcn.dir/rotor_controller.cpp.o"
  "CMakeFiles/tdtcp_rdcn.dir/rotor_controller.cpp.o.d"
  "CMakeFiles/tdtcp_rdcn.dir/schedule.cpp.o"
  "CMakeFiles/tdtcp_rdcn.dir/schedule.cpp.o.d"
  "libtdtcp_rdcn.a"
  "libtdtcp_rdcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdtcp_rdcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
