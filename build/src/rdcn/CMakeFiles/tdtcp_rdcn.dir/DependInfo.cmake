
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdcn/controller.cpp" "src/rdcn/CMakeFiles/tdtcp_rdcn.dir/controller.cpp.o" "gcc" "src/rdcn/CMakeFiles/tdtcp_rdcn.dir/controller.cpp.o.d"
  "/root/repo/src/rdcn/rotor_controller.cpp" "src/rdcn/CMakeFiles/tdtcp_rdcn.dir/rotor_controller.cpp.o" "gcc" "src/rdcn/CMakeFiles/tdtcp_rdcn.dir/rotor_controller.cpp.o.d"
  "/root/repo/src/rdcn/schedule.cpp" "src/rdcn/CMakeFiles/tdtcp_rdcn.dir/schedule.cpp.o" "gcc" "src/rdcn/CMakeFiles/tdtcp_rdcn.dir/schedule.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tdtcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tdtcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
