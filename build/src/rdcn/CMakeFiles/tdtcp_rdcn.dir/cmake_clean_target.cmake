file(REMOVE_RECURSE
  "libtdtcp_rdcn.a"
)
