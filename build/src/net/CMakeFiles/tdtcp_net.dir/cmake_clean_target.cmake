file(REMOVE_RECURSE
  "libtdtcp_net.a"
)
