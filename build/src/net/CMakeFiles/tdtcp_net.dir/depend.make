# Empty dependencies file for tdtcp_net.
# This may be replaced when dependencies are built.
