file(REMOVE_RECURSE
  "CMakeFiles/tdtcp_net.dir/fabric_port.cpp.o"
  "CMakeFiles/tdtcp_net.dir/fabric_port.cpp.o.d"
  "CMakeFiles/tdtcp_net.dir/host.cpp.o"
  "CMakeFiles/tdtcp_net.dir/host.cpp.o.d"
  "CMakeFiles/tdtcp_net.dir/link.cpp.o"
  "CMakeFiles/tdtcp_net.dir/link.cpp.o.d"
  "CMakeFiles/tdtcp_net.dir/packet.cpp.o"
  "CMakeFiles/tdtcp_net.dir/packet.cpp.o.d"
  "CMakeFiles/tdtcp_net.dir/queue.cpp.o"
  "CMakeFiles/tdtcp_net.dir/queue.cpp.o.d"
  "CMakeFiles/tdtcp_net.dir/topology.cpp.o"
  "CMakeFiles/tdtcp_net.dir/topology.cpp.o.d"
  "CMakeFiles/tdtcp_net.dir/tor_switch.cpp.o"
  "CMakeFiles/tdtcp_net.dir/tor_switch.cpp.o.d"
  "libtdtcp_net.a"
  "libtdtcp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdtcp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
