file(REMOVE_RECURSE
  "CMakeFiles/tdtcp_mptcp.dir/mptcp_connection.cpp.o"
  "CMakeFiles/tdtcp_mptcp.dir/mptcp_connection.cpp.o.d"
  "libtdtcp_mptcp.a"
  "libtdtcp_mptcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdtcp_mptcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
