# Empty dependencies file for tdtcp_mptcp.
# This may be replaced when dependencies are built.
