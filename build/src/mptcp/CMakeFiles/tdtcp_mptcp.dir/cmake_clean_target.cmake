file(REMOVE_RECURSE
  "libtdtcp_mptcp.a"
)
