file(REMOVE_RECURSE
  "libtdtcp_stack.a"
)
