file(REMOVE_RECURSE
  "CMakeFiles/tdtcp_stack.dir/__/cc/cubic.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/__/cc/cubic.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/__/cc/dctcp.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/__/cc/dctcp.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/__/cc/registry.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/__/cc/registry.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/__/cc/reno.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/__/cc/reno.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/__/cc/retcp.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/__/cc/retcp.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/__/tdtcp/tdn_manager.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/__/tdtcp/tdn_manager.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/receive_buffer.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/receive_buffer.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/rtt_estimator.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/rtt_estimator.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/send_queue.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/send_queue.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/tcp_connection.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/tcp_connection.cpp.o.d"
  "CMakeFiles/tdtcp_stack.dir/types.cpp.o"
  "CMakeFiles/tdtcp_stack.dir/types.cpp.o.d"
  "libtdtcp_stack.a"
  "libtdtcp_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdtcp_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
