# Empty dependencies file for tdtcp_stack.
# This may be replaced when dependencies are built.
