
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/cubic.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/cubic.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/cubic.cpp.o.d"
  "/root/repo/src/cc/dctcp.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/dctcp.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/dctcp.cpp.o.d"
  "/root/repo/src/cc/registry.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/registry.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/registry.cpp.o.d"
  "/root/repo/src/cc/reno.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/reno.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/reno.cpp.o.d"
  "/root/repo/src/cc/retcp.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/retcp.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/cc/retcp.cpp.o.d"
  "/root/repo/src/tdtcp/tdn_manager.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/tdtcp/tdn_manager.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/__/tdtcp/tdn_manager.cpp.o.d"
  "/root/repo/src/tcp/receive_buffer.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/receive_buffer.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/receive_buffer.cpp.o.d"
  "/root/repo/src/tcp/rtt_estimator.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/rtt_estimator.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/rtt_estimator.cpp.o.d"
  "/root/repo/src/tcp/send_queue.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/send_queue.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/send_queue.cpp.o.d"
  "/root/repo/src/tcp/tcp_connection.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/tcp_connection.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/tcp_connection.cpp.o.d"
  "/root/repo/src/tcp/types.cpp" "src/tcp/CMakeFiles/tdtcp_stack.dir/types.cpp.o" "gcc" "src/tcp/CMakeFiles/tdtcp_stack.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/tdtcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tdtcp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
