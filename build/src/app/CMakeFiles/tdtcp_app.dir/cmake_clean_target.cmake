file(REMOVE_RECURSE
  "libtdtcp_app.a"
)
