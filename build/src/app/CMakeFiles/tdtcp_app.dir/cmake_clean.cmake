file(REMOVE_RECURSE
  "CMakeFiles/tdtcp_app.dir/experiment.cpp.o"
  "CMakeFiles/tdtcp_app.dir/experiment.cpp.o.d"
  "CMakeFiles/tdtcp_app.dir/workload.cpp.o"
  "CMakeFiles/tdtcp_app.dir/workload.cpp.o.d"
  "libtdtcp_app.a"
  "libtdtcp_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdtcp_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
