# Empty compiler generated dependencies file for tdtcp_app.
# This may be replaced when dependencies are built.
