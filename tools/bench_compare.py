#!/usr/bin/env python3
"""Compare two tdtcp-bench/1 JSON documents (see src/app/result_io.hpp).

Usage:
    tools/bench_compare.py BASELINE.json CANDIDATE.json [--max-regress=0.15]
                           [--metric=NAME]

Default mode prints a per-benchmark table of cpu time and items/sec with the
candidate/baseline ratio, and exits nonzero if any benchmark present in both
documents regressed by more than --max-regress (default 15%, measured on
items/sec when available, cpu time otherwise).

With --metric=NAME[,NAME...] the comparison runs on counters[NAME] instead
(e.g. fct_p99_us or voq_drops from bench_incast). A comma-separated list
gates every named counter — the way to hold a tail, not just a mean: pass
fct_p50_us,fct_p99_us,fct_p999_us and a candidate that keeps the median but
blows up the p99.9 still fails. Counters are treated as lower-is-better:
the candidate regresses when its value grows by more than --max-regress
over the baseline's. Runs lacking a counter are skipped for that counter.

With --write-baseline the candidate document replaces the baseline file
byte-for-byte after the comparison table is printed (so the delta being
codified is on the record), and the exit code is 0 even if the table shows
regressions — re-baselining is a deliberate act, reviewed via the diff of
the tracked JSON. This replaces hand-editing baseline files.

Typical workflow (EXPERIMENTS.md has the full recipe):
    ./build/bench/bench_micro --out=/tmp/now.json
    tools/bench_compare.py BENCH_sim_core.json /tmp/now.json

    # accept the candidate as the new tracked baseline:
    tools/bench_compare.py BENCH_sim_core.json /tmp/now.json --write-baseline

    ./build/bench/bench_incast --out=/tmp/incast
    tools/bench_compare.py BENCH_incast.json /tmp/incast.json --metric=fct_p99_us

    ./build/bench/bench_shortflows --out=/tmp/sf
    tools/bench_compare.py BENCH_shortflows.json /tmp/sf.json \
        --metric=fct_p50_us,fct_p99_us,fct_p999_us

With --stability the comparison runs on the convergence-oracle verdict
counters emitted by bench_stability (converged / oscillating / starved /
insufficient), gated EXACTLY: these are phase-diagram verdicts, not timings,
so any change — a cell gaining an oscillator, or a designed-to-oscillate
cell going quiet — fails the comparison. worst_amplitude / worst_period_us
are printed for context but not gated (they move with the worst certified
oscillator, which the verdict gate already pins). A document whose runs lack
the stability counters (generated before bench_stability existed, or by a
different bench) gets a clear schema-skew message instead of a KeyError:

    ./build/bench/bench_stability --out=/tmp/stab
    tools/bench_compare.py BENCH_stability.json /tmp/stab.json --stability
"""
import argparse
import json
import sys


def load(path):
    try:
        f = open(path)
    except OSError as e:
        sys.exit(f"{path}: cannot open baseline/candidate document "
                 f"({e.strerror}). Generate one with e.g.\n"
                 f"    ./build/bench/bench_micro --out={path}")
    with f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}: not valid JSON ({e})")
    if doc.get("schema") != "tdtcp-bench/1":
        sys.exit(f"{path}: schema skew — found schema={doc.get('schema')!r}, "
                 f"this tool expects 'tdtcp-bench/1'.\n"
                 f"Sweep documents (tdtcp-sweep/1) are a different format; "
                 f"regenerate a bench document with\n"
                 f"    ./build/bench/bench_micro --out={path}\n"
                 f"or ./build/bench/bench_incast --out=<base> (writes "
                 f"<base>.json)")
    return {run["name"]: run for run in doc["runs"]}


def compare_metric(base, cand, shared, metric, max_regress):
    """Lower-is-better comparison of counters[metric] across shared runs."""
    rows = [n for n in shared if metric in base[n].get("counters", {})
            and metric in cand[n].get("counters", {})]
    skipped = [n for n in shared if n not in rows]
    if not rows:
        sys.exit(f"counter {metric!r} is present in no shared benchmark; "
                 f"available: "
                 f"{sorted(set().union(*(base[n].get('counters', {}) for n in shared)))}")

    width = max(len(n) for n in rows)
    print(f"{'benchmark':<{width}}  {'base':>12}  {'cand':>12}  {'ratio':>7}"
          f"   ({metric}, lower is better)")
    regressions = []
    for name in rows:
        b = base[name]["counters"][metric]
        c = cand[name]["counters"][metric]
        ratio = c / b if b else (0.0 if c == 0 else float("inf"))
        print(f"{name:<{width}}  {b:>12.2f}  {c:>12.2f}  {ratio:>6.2f}x")
        if ratio > 1 + max_regress:
            regressions.append((name, ratio))
    if skipped:
        print(f"\nskipped (no {metric!r} counter): {', '.join(skipped)}")
    return regressions


STABILITY_GATED = ["converged", "oscillating", "starved", "insufficient"]
STABILITY_INFO = ["worst_amplitude", "worst_period_us"]


def compare_stability(base, cand, shared):
    """Exact-match comparison of the convergence-oracle verdict counters."""
    missing = {}
    for name in shared:
        for doc, which in ((base, "baseline"), (cand, "candidate")):
            absent = [m for m in STABILITY_GATED
                      if m not in doc[name].get("counters", {})]
            if absent:
                missing.setdefault(which, set()).update(absent)
    if missing:
        detail = "; ".join(
            f"{which} lacks columns: {', '.join(sorted(cols))}"
            for which, cols in sorted(missing.items()))
        sys.exit(f"stability schema skew — {detail}.\n"
                 f"The stability_* counters are emitted by bench_stability; "
                 f"a document from an older build (or a different bench) "
                 f"cannot be compared with --stability. Regenerate with\n"
                 f"    ./build/bench/bench_stability --out=<base>  (writes "
                 f"<base>.json)")

    width = max(len(n) for n in shared)
    header = "  ".join(f"{m:>12}" for m in STABILITY_GATED)
    print(f"{'cell':<{width}}  {header}   (base -> cand; verdicts gate "
          f"exactly)")
    flips = []
    for name in shared:
        b = base[name]["counters"]
        c = cand[name]["counters"]
        cols = []
        for m in STABILITY_GATED:
            bv, cv = int(b[m]), int(c[m])
            cols.append(f"{bv} -> {cv}" if bv != cv else str(cv))
            if bv != cv:
                flips.append((name, m, bv, cv))
        print(f"{name:<{width}}  " +
              "  ".join(f"{col:>12}" for col in cols))
        for m in STABILITY_INFO:
            if m in b and m in c and b[m] != c[m]:
                print(f"{'':<{width}}    {m}: {b[m]:.2f} -> {c[m]:.2f} "
                      f"(informational)")
    return [(f"{name} [{m}]", f"{bv} -> {cv}")
            for name, m, bv, cv in flips]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--max-regress", type=float, default=0.15,
                    help="fail if any shared benchmark slows by more than "
                         "this fraction (default 0.15)")
    ap.add_argument("--metric", default=None,
                    help="compare these counters[] entries (comma-separated, "
                         "lower is better) instead of cpu time / items/sec; "
                         "every named counter is gated independently")
    ap.add_argument("--stability", action="store_true",
                    help="compare the convergence-oracle verdict counters "
                         "(converged/oscillating/starved/insufficient) from "
                         "bench_stability documents; any verdict change "
                         "fails (phase diagrams gate exactly, not by ratio)")
    ap.add_argument("--write-baseline", action="store_true",
                    help="after printing the comparison, replace the baseline "
                         "file with the candidate document (byte-for-byte) "
                         "and exit 0; the diff of the tracked JSON is the "
                         "review artifact")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    shared = [n for n in base if n in cand]
    if not shared:
        sys.exit("no benchmark names in common between the two documents")

    if args.stability:
        regressions = compare_stability(base, cand, shared)
    elif args.metric:
        regressions = []
        for i, metric in enumerate(m for m in args.metric.split(",") if m):
            if i:
                print()
            regressions += [(f"{name} [{metric}]", ratio)
                            for name, ratio in compare_metric(
                                base, cand, shared, metric,
                                args.max_regress)]
    else:
        width = max(len(n) for n in shared)
        print(f"{'benchmark':<{width}}  {'base cpu':>10}  {'cand cpu':>10}  "
              f"{'base it/s':>10}  {'cand it/s':>10}  {'speedup':>7}")
        regressions = []
        for name in shared:
            b, c = base[name], cand[name]
            b_rate, c_rate = b["items_per_second"], c["items_per_second"]
            if b_rate > 0 and c_rate > 0:
                speedup = c_rate / b_rate
            else:
                speedup = b["cpu_time_ns"] / c["cpu_time_ns"] if c["cpu_time_ns"] else 0

            def ns(v):
                return f"{v / 1e6:.2f}ms" if v >= 1e6 else f"{v:.0f}ns"

            def rate(v):
                return f"{v / 1e6:.2f}M/s" if v else "-"

            print(f"{name:<{width}}  {ns(b['cpu_time_ns']):>10}  "
                  f"{ns(c['cpu_time_ns']):>10}  {rate(b_rate):>10}  "
                  f"{rate(c_rate):>10}  {speedup:>6.2f}x")
            if speedup and speedup < 1 - args.max_regress:
                regressions.append((name, speedup))

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    if only_base:
        print(f"\nonly in baseline: {', '.join(only_base)}")
    if only_cand:
        print(f"only in candidate: {', '.join(only_cand)}")

    if args.write_baseline:
        # Byte copy, not a json.dump round-trip: the tracked baseline keeps
        # exactly the formatting the bench emitter produced.
        with open(args.candidate, "rb") as f:
            payload = f.read()
        with open(args.baseline, "wb") as f:
            f.write(payload)
        if regressions:
            print(f"\nbaseline rewritten: {args.baseline} "
                  f"(accepting {len(regressions)} regression(s) shown above)")
        else:
            print(f"\nbaseline rewritten: {args.baseline}")
        return 0

    if regressions:
        if args.stability:
            print(f"\nFAIL: {len(regressions)} phase-diagram verdict(s) "
                  f"changed:")
            for name, delta in regressions:
                print(f"  {name}: {delta}")
        else:
            print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more "
                  f"than {args.max_regress:.0%}:")
            for name, ratio in regressions:
                print(f"  {name}: {ratio:.2f}x")
        return 1
    if args.stability:
        print("\nOK: phase diagram unchanged")
    else:
        print(f"\nOK: no benchmark regressed more than {args.max_regress:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
