#!/usr/bin/env python3
"""Dump a tdtcp-trace/1 document (see src/trace/trace_io.hpp) as TSV.

Usage:
    tools/trace2tsv.py TRACE.json                # every record, names resolved
    tools/trace2tsv.py TRACE.json --flow 1       # one flow only
    tools/trace2tsv.py TRACE.json --cwnd         # cwnd/ssthresh evolution
    tools/trace2tsv.py TRACE.json --timeseq      # sender time-sequence plot
    tools/trace2tsv.py TRACE.json --recovery     # forced-retransmit events
    tools/trace2tsv.py TRACE.json --stability    # schedule changes/restarts/
                                                 # TDN retirements

Both document shapes work: plain ring dumps and the replay fixtures under
tests/traces/ (the `recorded` section is ignored here). Point names come
from the document's own `points` table, so this script never needs to track
the TracePoint enum.

The --cwnd and --timeseq extractions mirror ExtractCwndEvolution /
ExtractTimeSequence in src/trace/trace_io.cpp; plots built from either side
of the fence agree by construction. Output columns:

    (default)   time_ps  point  flow  a0  a1  a2  a3
    --cwnd      time_ps  tdn    cwnd  ssthresh
    --timeseq   time_ps  acked_through
    --recovery  time_ps  flow   seq   tdn  quiet_ps  threshold_ps
    --stability time_ps  flow   event a0   a1  a2

The --stability view covers the adversarial-schedule events: sched_change
(a0 = day_length ps, a1 = night_length ps, a2 = live TDN count),
sched_restart_hold (a0 = hold ps, a1 = day index, a2 = was night), and
tdn_retire (a0 = live count after, a1 = sets retired, a2 = 1 if the active
TDN moved). A document produced by an emitter that predates these
tracepoints (its `points` table lacks the sched_change column family) gets
a clear schema-skew message instead of silently printing nothing.
"""
import argparse
import json
import sys

# Stable serialization ids (tracepoints.hpp); used only for the extraction
# modes, the default dump resolves names through the document's table.
POINT_CWND_UPDATE = 2
POINT_SACK_EDIT = 6
POINT_UNDO = 7
SACK_EDIT_ACKED = 3
POINT_RECOVERY_FORCED = 20
POINT_SCHED_CHANGE = 22
POINT_SCHED_RESTART_HOLD = 23
POINT_TDN_RETIRE = 24
STABILITY_POINTS = (POINT_SCHED_CHANGE, POINT_SCHED_RESTART_HOLD,
                    POINT_TDN_RETIRE)


def load(path):
    try:
        f = open(path)
    except OSError as e:
        sys.exit(f"{path}: cannot open trace document ({e.strerror})")
    with f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            sys.exit(f"{path}: not valid JSON ({e})")
    if doc.get("schema") != "tdtcp-trace/1":
        sys.exit(f"{path}: not a tdtcp-trace/1 document "
                 f"(schema={doc.get('schema')!r})")
    return doc


def records(doc, flow):
    for rec in doc.get("records", []):
        t, point, rflow, a0, a1, a2, a3 = (int(v) for v in rec)
        if flow is not None and rflow != flow:
            continue
        yield t, point, rflow, a0, a1, a2, a3


def dump_all(doc, flow):
    names = doc.get("points", {})
    print("time_ps\tpoint\tflow\ta0\ta1\ta2\ta3")
    for t, point, rflow, a0, a1, a2, a3 in records(doc, flow):
        name = names.get(str(point), str(point))
        print(f"{t}\t{name}\t{rflow}\t{a0}\t{a1}\t{a2}\t{a3}")


def dump_cwnd(doc, flow):
    print("time_ps\ttdn\tcwnd\tssthresh")
    for t, point, _, a0, a1, a2, _ in records(doc, flow):
        if point in (POINT_CWND_UPDATE, POINT_UNDO):
            print(f"{t}\t{a0}\t{a1}\t{a2}")


def dump_timeseq(doc, flow):
    print("time_ps\tacked_through")
    high = 0
    for t, point, _, a0, a1, a2, _ in records(doc, flow):
        if point == POINT_SACK_EDIT and a0 == SACK_EDIT_ACKED:
            # a1 = seq, a2 = len; report the monotone high-water mark.
            if a1 + a2 > high:
                high = a1 + a2
                print(f"{t}\t{high}")


def dump_recovery(doc, flow):
    # kRecoveryForced: a0 = seq, a1 = episode TDN (undo_tdn), a2 = quiet ps,
    # a3 = adaptive threshold ps at forcing time.
    print("time_ps\tflow\tseq\ttdn\tquiet_ps\tthreshold_ps")
    for t, point, rflow, a0, a1, a2, a3 in records(doc, flow):
        if point == POINT_RECOVERY_FORCED:
            print(f"{t}\t{rflow}\t{a0}\t{a1}\t{a2}\t{a3}")


def dump_stability(doc, flow):
    # Schedule-robustness events: changes applied, restart holds, and the
    # per-connection TDN retirements they caused (flow 0 = controller).
    names = doc.get("points", {})
    known = {str(p) for p in STABILITY_POINTS}
    if not known & set(names):
        sys.exit("stability schema skew — this document's `points` table has "
                 "none of the sched_change / sched_restart_hold / tdn_retire "
                 "columns, so it was written by an emitter that predates the "
                 "adversarial-schedule tracepoints. Regenerate the trace with "
                 "a current build (any run with tracing enabled emits them "
                 "when a schedule perturbation is configured).")
    print("time_ps\tflow\tevent\ta0\ta1\ta2")
    for t, point, rflow, a0, a1, a2, _ in records(doc, flow):
        if point in STABILITY_POINTS:
            name = names.get(str(point), str(point))
            print(f"{t}\t{rflow}\t{name}\t{a0}\t{a1}\t{a2}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("trace", help="tdtcp-trace/1 JSON document")
    ap.add_argument("--flow", type=int, default=None,
                    help="only this FlowId (default: all; host/controller "
                         "records carry flow 0)")
    mode = ap.add_mutually_exclusive_group()
    mode.add_argument("--cwnd", action="store_true",
                      help="cwnd/ssthresh evolution (cwnd updates + undos)")
    mode.add_argument("--timeseq", action="store_true",
                      help="cumulative bytes retired over time")
    mode.add_argument("--recovery", action="store_true",
                      help="recovery-agent forced-retransmit events")
    mode.add_argument("--stability", action="store_true",
                      help="adversarial-schedule events: schedule changes, "
                           "controller-restart holds, TDN retirements")
    args = ap.parse_args()

    doc = load(args.trace)
    if args.cwnd:
        dump_cwnd(doc, args.flow)
    elif args.timeseq:
        dump_timeseq(doc, args.flow)
    elif args.recovery:
        dump_recovery(doc, args.flow)
    elif args.stability:
        dump_stability(doc, args.flow)
    else:
        dump_all(doc, args.flow)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # downstream consumer (head, less) closed the pipe; not an error
        sys.stderr.close()
        sys.exit(0)
