// Receiver-side reassembly and SACK/DSACK generation (RFC 2018 / 2883).
//
// TDTCP deliberately keeps the receiver almost unmodified (§3.3); this
// buffer is plain TCP. It tracks out-of-order segments, generates SACK
// blocks most-recent-first, emits a DSACK block when a duplicate arrives
// (which the sender's undo machinery uses to detect spurious
// retransmissions), and preserves MPTCP data-sequence mappings so the
// meta-level can reassemble.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tdtcp {

class ReceiveBuffer {
 public:
  struct Delivered {
    std::uint64_t seq = 0;
    std::uint32_t len = 0;
    bool has_dss = false;
    std::uint64_t dss_seq = 0;
  };

  struct Result {
    // In-order segments released to the application by this arrival.
    std::vector<Delivered> delivered;
    bool duplicate = false;   // arrival was (fully) already-received data
    SackBlock dsack;          // valid when duplicate
    bool out_of_order = false;
  };

  explicit ReceiveBuffer(std::uint64_t rcv_nxt = 1) : rcv_nxt_(rcv_nxt) {}

  Result OnData(std::uint64_t seq, std::uint32_t len, bool has_dss,
                std::uint64_t dss_seq, SimTime now);

  std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  std::uint64_t ooo_bytes() const { return ooo_bytes_; }

  // Builds up to kMaxSackBlocks SACK blocks: the optional DSACK first, then
  // out-of-order ranges ordered by how recently they grew.
  std::vector<SackBlock> BuildSackBlocks(const Result& last) const;

 private:
  struct OooSegment {
    std::uint32_t len;
    bool has_dss;
    std::uint64_t dss_seq;
  };
  struct Range {
    std::uint64_t start;
    std::uint64_t end;
    SimTime last_touch;
  };

  void TouchRange(std::uint64_t start, std::uint64_t end, SimTime now);

  std::uint64_t rcv_nxt_;
  std::uint64_t ooo_bytes_ = 0;
  std::map<std::uint64_t, OooSegment> ooo_;
  std::vector<Range> ranges_;  // coalesced OOO ranges with recency
};

}  // namespace tdtcp
