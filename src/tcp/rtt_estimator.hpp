// Jacobson/Karels smoothed RTT estimation with Linux-flavoured mdev/rttvar
// tracking. TDTCP instantiates one estimator per TDN (§3.1's delay/RTT
// variable class) and feeds each only samples whose data and ACK travelled
// that TDN (§4.4).
#pragma once

#include "sim/time.hpp"

namespace tdtcp {

class RttEstimator {
 public:
  struct Config {
    SimTime initial_rto = SimTime::Millis(1);
    SimTime min_rto = SimTime::Micros(500);
    SimTime max_rto = SimTime::Seconds(4);
  };

  RttEstimator() : RttEstimator(Config{}) {}
  explicit RttEstimator(Config config) : config_(config) {}

  // Add a measurement (Karn filtering — never sampling retransmitted
  // segments — happens in the caller, which owns the scoreboard).
  void AddSample(SimTime rtt);

  bool has_sample() const { return has_sample_; }
  SimTime srtt() const { return srtt_; }
  SimTime rttvar() const { return rttvar_; }
  SimTime min_rtt() const { return min_rtt_; }
  std::uint64_t samples() const { return samples_; }

  // RTO = srtt + 4 * rttvar, clamped to [min_rto, max_rto]; initial_rto
  // before the first sample. Backoff is applied by the retransmit timer.
  SimTime Rto() const;

  // TDTCP's synthesized timeout (§4.4): the data rides this estimator's TDN
  // but the ACK may return on the slowest one, so assume
  // ½RTT(this) + ½RTT(slowest) plus the usual variance guard.
  SimTime SynthesizedRto(const RttEstimator& slowest) const;

  const Config& config() const { return config_; }

 private:
  SimTime Clamp(SimTime rto) const;

  Config config_;
  bool has_sample_ = false;
  SimTime srtt_ = SimTime::Zero();
  SimTime rttvar_ = SimTime::Zero();
  SimTime min_rtt_ = SimTime::Max();
  std::uint64_t samples_ = 0;
};

}  // namespace tdtcp
