// Shared TCP engine types: Linux-style congestion state machine states and
// ACK-processing event descriptors.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace tdtcp {

// Linux tcp_ca_state: the per-path congestion state machine (Fig. 4 shows
// one instance per TDN).
enum class CaState : std::uint8_t {
  kOpen,      // normal operation
  kDisorder,  // dupACKs/SACKs seen, no loss confirmed yet
  kCwr,       // congestion window reduced (ECN)
  kRecovery,  // fast recovery, retransmitting
  kLoss,      // RTO fired, conservative recovery
};

const char* CaStateName(CaState s);

// Events forwarded to congestion-control modules (subset of Linux
// tcp_ca_event relevant to this system).
enum class CwndEvent : std::uint8_t {
  kTxStart,        // first transmission after idle
  kCompleteCwr,    // finished CWND reduction episode
  kLossUndone,     // spurious loss detected, state restored
  kTdnResume,      // TDTCP: this TDN just became active again
};

// Summary of one incoming ACK after scoreboard updates, given to CC hooks.
struct AckEvent {
  std::uint32_t newly_acked_packets = 0;
  std::uint64_t newly_acked_bytes = 0;
  std::uint32_t newly_sacked_packets = 0;
  bool ece = false;           // ECN echo seen on this ACK
  bool circuit_echo = false;  // reTCP: receiver saw the circuit mark
  SimTime rtt_sample = SimTime::Zero();  // zero when no valid sample
  bool cwnd_limited = false;  // sender was using the full window
};

}  // namespace tdtcp
