// Shared TCP engine types: Linux-style congestion state machine states and
// ACK-processing event descriptors.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace tdtcp {

// Linux tcp_ca_state: the per-path congestion state machine (Fig. 4 shows
// one instance per TDN).
enum class CaState : std::uint8_t {
  kOpen,      // normal operation
  kDisorder,  // dupACKs/SACKs seen, no loss confirmed yet
  kCwr,       // congestion window reduced (ECN)
  kRecovery,  // fast recovery, retransmitting
  kLoss,      // RTO fired, conservative recovery
};

const char* CaStateName(CaState s);

// Why a connection reached kClosed. Every connection that leaves kClosed is
// guaranteed to come back to it with exactly one of these, surfaced through
// the ClosedFn completion callback (RFC 9293 teardown plus the bounded-retry
// aborts a dead peer forces).
enum class CloseReason : std::uint8_t {
  kNone,            // still open (or never opened)
  kNormal,          // orderly FIN handshake completed (either direction)
  kPeerReset,       // RST received from the peer
  kConnectTimeout,  // SYN retransmission cap exhausted (active open)
  kSynAckTimeout,   // reserved: the SYN-ACK cap returns the listener to
                    // kListen (stats.synack_give_ups counts it) without ever
                    // reaching kClosed, so this value is never assigned today

  kRetryLimit,      // max_rto_retries consecutive RTOs without progress
  kPersistTimeout,  // zero-window probes exhausted (peer dead while stalled)
  kUserAbort,       // local Abort() call
};

const char* CloseReasonName(CloseReason r);
inline constexpr std::size_t kNumCloseReasons = 8;

// Events forwarded to congestion-control modules (subset of Linux
// tcp_ca_event relevant to this system).
enum class CwndEvent : std::uint8_t {
  kTxStart,        // first transmission after idle
  kCompleteCwr,    // finished CWND reduction episode
  kLossUndone,     // spurious loss detected, state restored
  kTdnResume,      // TDTCP: this TDN just became active again
};

// Summary of one incoming ACK after scoreboard updates, given to CC hooks.
struct AckEvent {
  std::uint32_t newly_acked_packets = 0;
  std::uint64_t newly_acked_bytes = 0;
  std::uint32_t newly_sacked_packets = 0;
  bool ece = false;           // ECN echo seen on this ACK
  bool circuit_echo = false;  // reTCP: receiver saw the circuit mark
  SimTime rtt_sample = SimTime::Zero();  // zero when no valid sample
  bool cwnd_limited = false;  // sender was using the full window
};

}  // namespace tdtcp
