#include "tcp/recovery_agent.hpp"

#include <algorithm>

#include "net/host.hpp"
#include "tcp/tcp_connection.hpp"

namespace tdtcp {

const char* RecoveryModeName(RecoveryMode m) {
  switch (m) {
    case RecoveryMode::kOff: return "off";
    case RecoveryMode::kRack: return "rack";
    case RecoveryMode::kAgent: return "agent";
  }
  return "unknown";
}

RecoveryMode RecoveryModeFromName(const std::string& name) {
  if (name == "off") return RecoveryMode::kOff;
  if (name == "rack") return RecoveryMode::kRack;
  if (name == "agent") return RecoveryMode::kAgent;
  throw std::invalid_argument("unknown recovery mode '" + name +
                              "' (expected off | rack | agent)");
}

RecoveryAgent::RecoveryAgent(Simulator& sim, Host& host, RecoveryConfig cfg)
    : sim_(sim), host_(host), cfg_(cfg) {
  epoch_timer_.Init(this, &EpochTrampoline);
  host_.SetRecoveryAgent(this);
  host_.wheel().Arm(epoch_timer_, sim_.now() + cfg_.epoch);
}

RecoveryAgent::~RecoveryAgent() {
  host_.wheel().Disarm(epoch_timer_);
  if (host_.recovery_agent() == this) host_.SetRecoveryAgent(nullptr);
  // Orphan any still-registered nodes so late Deregister calls (connection
  // teardown after the agent is gone) are no-ops instead of dangling walks.
  for (Node* n = head_; n != nullptr;) {
    Node* next = n->next;
    n->prev = n->next = nullptr;
    n->agent = nullptr;
    n = next;
  }
  head_ = tail_ = nullptr;
  registered_ = 0;
}

void RecoveryAgent::Register(TcpConnection& conn, Node& node) {
  if (node.agent != nullptr) return;
  node.conn = &conn;
  node.agent = this;
  node.last_progress = sim_.now();
  node.prev = tail_;
  node.next = nullptr;
  if (tail_ != nullptr) {
    tail_->next = &node;
  } else {
    head_ = &node;
  }
  tail_ = &node;
  ++registered_;
}

void RecoveryAgent::Deregister(Node& node) {
  if (node.agent == nullptr) return;
  if (node.prev != nullptr) {
    node.prev->next = node.next;
  } else {
    head_ = node.next;
  }
  if (node.next != nullptr) {
    node.next->prev = node.prev;
  } else {
    tail_ = node.prev;
  }
  node.prev = node.next = nullptr;
  node.agent = nullptr;
  --registered_;
}

void RecoveryAgent::NoteSpurious() {
  ++stats_.spurious;
  scale_ = std::min(scale_ * cfg_.spurious_growth, cfg_.max_scale);
}

SimTime RecoveryAgent::ThresholdFor(const TcpConnection& conn) const {
  const double srtt_ps = static_cast<double>(conn.RecoveryRttHint().picos());
  double t = std::max(static_cast<double>(cfg_.min_linger.picos()),
                      cfg_.srtt_mult * srtt_ps) *
             scale_;
  t = std::clamp(t, static_cast<double>(cfg_.min_linger.picos()),
                 static_cast<double>(cfg_.max_linger.picos()));
  return SimTime::Picos(static_cast<std::int64_t>(t));
}

void RecoveryAgent::OnEpoch() {
  ++stats_.epochs;
  const SimTime now = sim_.now();
  for (Node* n = head_; n != nullptr;) {
    Node* next = n->next;  // forcing may deregister n (never other nodes)
    TcpConnection& c = *n->conn;
    if (!c.RecoveryOutstanding()) {
      // Idle, not quiet: the quiet clock starts when data is in flight.
      n->last_progress = now;
    } else if (now - n->last_progress >= ThresholdFor(c)) {
      const SimTime quiet = now - n->last_progress;
      if (c.ForceRecoveryRetransmit(quiet, ThresholdFor(c))) {
        ++stats_.forced;
      }
      // Pace the next attempt by a fresh threshold whether or not a segment
      // was eligible (a retransmission may already be in flight).
      n->last_progress = now;
    }
    n = next;
  }
  scale_ = std::max(1.0, scale_ * cfg_.decay);
  host_.wheel().Arm(epoch_timer_, now + cfg_.epoch);
}

}  // namespace tdtcp
