#include "tcp/invariant_checker.hpp"

#include <cinttypes>
#include <stdexcept>

#include "tcp/tcp_connection.hpp"

namespace tdtcp {

const char* TcpInvariantChecker::EventName(Event ev) {
  switch (ev) {
    case Event::kAck: return "ack";
    case Event::kLoss: return "loss";
    case Event::kTdnSwitch: return "tdn-switch";
    case Event::kRto: return "rto";
    case Event::kClose: return "close";
  }
  return "?";
}

void TcpInvariantChecker::WillSwitchTdn(const TcpConnection& conn) {
  const TdnManager& tdns = conn.tdns();
  pre_switch_windows_.clear();
  for (std::size_t i = 0; i < tdns.num_tdns(); ++i) {
    const TdnState& st = tdns.state(static_cast<TdnId>(i));
    pre_switch_windows_.emplace_back(st.cwnd, st.ssthresh);
  }
  pre_switch_active_ = tdns.active_id();
  have_switch_snapshot_ = true;
}

void TcpInvariantChecker::Check(TcpConnection& conn, Event ev) {
  ++checks_run_;
  TdnManager& tdns = conn.tdns();
  const std::size_t n = tdns.num_tdns();

  // Recompute every pipe counter from the scoreboard and compare with the
  // per-TDN state the fast paths maintain incrementally.
  recount_scratch_.assign(n, Recount{});
  std::vector<Recount>& actual = recount_scratch_;
  for (const TxSegment& seg : conn.send_queue().segments()) {
    if (seg.tdn >= n) {
      Violate(conn, ev,
              "segment seq=" + std::to_string(seg.seq) +
                  " tagged with unknown TDN " + std::to_string(seg.tdn));
    }
    Recount& c = actual[seg.tdn];
    ++c.packets_out;
    if (seg.sacked) ++c.sacked_out;
    if (seg.lost) ++c.lost_out;
    if (seg.retrans) ++c.retrans_out;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const TdnState& st = tdns.state(static_cast<TdnId>(i));
    const Recount& c = actual[i];
    const std::string tdn = "TDN " + std::to_string(i) + ": ";
    if (st.packets_out != c.packets_out) {
      Violate(conn, ev,
              tdn + "packets_out=" + std::to_string(st.packets_out) +
                  " but scoreboard holds " + std::to_string(c.packets_out));
    }
    // Without SACK, sacked_out is Linux's Reno emulation (a dup-ack count,
    // tcp_add_reno_sack): it has no scoreboard counterpart, so only the
    // left_out bound below applies to it.
    if (conn.config().sack_enabled && st.sacked_out != c.sacked_out) {
      Violate(conn, ev,
              tdn + "sacked_out=" + std::to_string(st.sacked_out) +
                  " but scoreboard holds " + std::to_string(c.sacked_out));
    }
    if (st.lost_out != c.lost_out) {
      Violate(conn, ev,
              tdn + "lost_out=" + std::to_string(st.lost_out) +
                  " but scoreboard holds " + std::to_string(c.lost_out));
    }
    if (st.retrans_out != c.retrans_out) {
      Violate(conn, ev,
              tdn + "retrans_out=" + std::to_string(st.retrans_out) +
                  " but scoreboard holds " + std::to_string(c.retrans_out));
    }
    // Linux tcp_verify_left_out: left_out (sacked + lost) never exceeds
    // packets_out, and the pipe identity
    //   packets_out == sacked_out + lost_out + in_flight - retrans_out
    // holds by construction of packets_in_flight(); verify the inputs.
    if (st.sacked_out + st.lost_out > st.packets_out) {
      Violate(conn, ev,
              tdn + "left_out " + std::to_string(st.sacked_out + st.lost_out) +
                  " > packets_out " + std::to_string(st.packets_out));
    }
    if (st.retrans_out > st.packets_out) {
      Violate(conn, ev,
              tdn + "retrans_out " + std::to_string(st.retrans_out) +
                  " > packets_out " + std::to_string(st.packets_out));
    }
    if (st.cwnd < 1) Violate(conn, ev, tdn + "cwnd below floor of 1");
    if (st.ssthresh < 2) {
      Violate(conn, ev,
              tdn + "ssthresh " + std::to_string(st.ssthresh) +
                  " below floor of 2");
    }
  }

  // Sequence-space sanity and monotonicity.
  if (conn.snd_una() > conn.snd_nxt()) {
    Violate(conn, ev,
            "snd_una " + std::to_string(conn.snd_una()) + " > snd_nxt " +
                std::to_string(conn.snd_nxt()));
  }
  if (conn.snd_una() < last_snd_una_) {
    Violate(conn, ev,
            "snd_una moved backwards: " + std::to_string(last_snd_una_) +
                " -> " + std::to_string(conn.snd_una()));
  }
  if (conn.rcv_nxt() < last_rcv_nxt_) {
    Violate(conn, ev,
            "rcv_nxt moved backwards: " + std::to_string(last_rcv_nxt_) +
                " -> " + std::to_string(conn.rcv_nxt()));
  }
  last_snd_una_ = conn.snd_una();
  last_rcv_nxt_ = conn.rcv_nxt();

  // Per-TDN isolation across a switch (§3.1): only the TDN being resumed
  // may see its congestion window touched by the switch itself.
  if (ev == Event::kTdnSwitch && have_switch_snapshot_) {
    for (std::size_t i = 0;
         i < pre_switch_windows_.size() && i < n; ++i) {
      if (i == tdns.active_id()) continue;
      const TdnState& st = tdns.state(static_cast<TdnId>(i));
      if (st.cwnd != pre_switch_windows_[i].first ||
          st.ssthresh != pre_switch_windows_[i].second) {
        Violate(conn, ev,
                "TDN switch " + std::to_string(pre_switch_active_) + " -> " +
                    std::to_string(tdns.active_id()) +
                    " modified inactive TDN " + std::to_string(i) +
                    " (cwnd " + std::to_string(pre_switch_windows_[i].first) +
                    " -> " + std::to_string(st.cwnd) + ")");
      }
    }
    have_switch_snapshot_ = false;
  }
}

void TcpInvariantChecker::Violate(TcpConnection& conn, Event ev,
                                  const std::string& what) {
  std::FILE* out = stderr;
  std::fprintf(out,
               "\n=== TCP invariant violation (flow %u, event %s) ===\n%s\n",
               conn.flow(), EventName(ev), what.c_str());
  std::fprintf(out,
               "snd_una=%" PRIu64 " snd_nxt=%" PRIu64 " rcv_nxt=%" PRIu64
               " tdtcp=%d active_tdn=%u\n",
               conn.snd_una(), conn.snd_nxt(), conn.rcv_nxt(),
               conn.tdtcp_active() ? 1 : 0,
               static_cast<unsigned>(conn.tdns().active_id()));
  const TdnManager& tdns = conn.tdns();
  for (std::size_t i = 0; i < tdns.num_tdns(); ++i) {
    const TdnState& st = tdns.state(static_cast<TdnId>(i));
    std::fprintf(out,
                 "  TDN %zu: ca=%s cwnd=%u ssthresh=%u packets_out=%u "
                 "sacked=%u lost=%u retrans=%u high_seq=%" PRIu64 "\n",
                 i, CaStateName(st.ca_state), st.cwnd, st.ssthresh,
                 st.packets_out, st.sacked_out, st.lost_out, st.retrans_out,
                 st.high_seq);
  }
  const auto& segs = conn.send_queue().segments();
  std::fprintf(out, "scoreboard (%zu segments%s):\n", segs.size(),
               segs.size() > 64 ? ", first 64" : "");
  std::size_t shown = 0;
  for (const TxSegment& seg : segs) {
    if (++shown > 64) break;
    std::fprintf(out,
                 "  seq=%" PRIu64 " len=%u tdn=%u tx=%u%s%s%s%s%s\n",
                 seg.seq, seg.len, static_cast<unsigned>(seg.tdn),
                 seg.transmissions, seg.syn ? " SYN" : "",
                 seg.fin ? " FIN" : "", seg.sacked ? " SACKED" : "",
                 seg.lost ? " LOST" : "", seg.retrans ? " RETRANS" : "");
  }
  if (const FaultTraceSource* faults = conn.fault_trace()) {
    faults->DumpRecentFaults(out, 32);
  }
  std::fprintf(out, "=== end violation report ===\n");
  throw std::logic_error("TCP invariant violated (flow " +
                         std::to_string(conn.flow()) + ", " + EventName(ev) +
                         "): " + what);
}

}  // namespace tdtcp
