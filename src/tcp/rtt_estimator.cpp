#include "tcp/rtt_estimator.hpp"

#include <algorithm>

namespace tdtcp {

void RttEstimator::AddSample(SimTime rtt) {
  if (rtt <= SimTime::Zero()) return;
  ++samples_;
  min_rtt_ = std::min(min_rtt_, rtt);
  if (!has_sample_) {
    has_sample_ = true;
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    return;
  }
  // srtt += (m - srtt) / 8 ; rttvar += (|m - srtt| - rttvar) / 4
  const SimTime err = rtt >= srtt_ ? rtt - srtt_ : srtt_ - rtt;
  srtt_ = srtt_ + (rtt - srtt_) / 8;
  rttvar_ = rttvar_ + (err - rttvar_) / 4;
}

SimTime RttEstimator::Clamp(SimTime rto) const {
  return std::clamp(rto, config_.min_rto, config_.max_rto);
}

SimTime RttEstimator::Rto() const {
  if (!has_sample_) return config_.initial_rto;
  return Clamp(srtt_ + rttvar_ * 4);
}

SimTime RttEstimator::SynthesizedRto(const RttEstimator& slowest) const {
  if (!has_sample_) return config_.initial_rto;
  const SimTime slow_srtt = slowest.has_sample() ? slowest.srtt() : srtt_;
  const SimTime slow_var = slowest.has_sample() ? slowest.rttvar() : rttvar_;
  const SimTime synth = srtt_ / 2 + slow_srtt / 2;
  return Clamp(synth + std::max(rttvar_, slow_var) * 4);
}

}  // namespace tdtcp
