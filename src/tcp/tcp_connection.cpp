#include "tcp/tcp_connection.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cc/cubic.hpp"

namespace tdtcp {

namespace {

TdnManager::IndexedCcFactory ResolveFactory(const TcpConfig& config) {
  if (!config.per_tdn_cc.empty()) {
    // §3.5: a different CCA per TDN; ids past the list reuse the last entry.
    auto factories = config.per_tdn_cc;
    return [factories](TdnId id) {
      const std::size_t idx =
          std::min<std::size_t>(id, factories.size() - 1);
      return factories[idx]();
    };
  }
  if (config.cc_factory) {
    auto factory = config.cc_factory;
    return [factory](TdnId) { return factory(); };
  }
  return [](TdnId) { return MakeCubic(); };
}

}  // namespace

TcpConnection::TcpConnection(Simulator& sim, Host* host, FlowId flow,
                             NodeId peer, TcpConfig config)
    : sim_(sim), host_(host), flow_(flow), peer_(peer),
      config_(std::move(config)),
      tdns_(config_.tdtcp_enabled ? config_.num_tdns : 1,
            ResolveFactory(config_), config_.rtt, config_.initial_cwnd) {
  assert(host_ != nullptr);
  rto_entry_.Init(this, &RtoTrampoline);
  tlp_entry_.Init(this, &TlpTrampoline);
  persist_entry_.Init(this, &PersistTrampoline);
  time_wait_entry_.Init(this, &TimeWaitTrampoline);
  if (config_.invariant_checks) {
    checker_ = std::make_unique<TcpInvariantChecker>();
  }
  if (config_.register_endpoint) {
    host_->RegisterEndpoint(flow_, this);
    endpoint_registered_ = true;
  }
  recovery_agent_ = host_->recovery_agent();
  if (recovery_agent_ != nullptr) {
    recovery_agent_->Register(*this, recovery_node_);
  }
  if (config_.listen_tdn_notifications) {
    host_->AddTdnListener(
        this,
        [this](TdnId tdn, bool imminent) { OnTdnChange(tdn, imminent); },
        config_.peer_rack);
    host_->AddTdnReconfigListener(
        this, [this](std::uint32_t live) { OnTdnReconfig(live); });
    tdn_listener_registered_ = true;
  }
}

TcpConnection::~TcpConnection() {
  CancelTimers();
  if (recovery_agent_ != nullptr) recovery_agent_->Deregister(recovery_node_);
  if (endpoint_registered_) host_->UnregisterEndpoint(flow_, this);
  if (tdn_listener_registered_) {
    host_->RemoveTdnListener(this);
    host_->RemoveTdnReconfigListener(this);
  }
}

// ---------------------------------------------------------------------------
// Lifecycle
// ---------------------------------------------------------------------------

void TcpConnection::SetState(State s) {
  if (s == state_) return;
  Trace(TracePoint::kTcpStateChange, static_cast<std::uint64_t>(state_),
        static_cast<std::uint64_t>(s));
  state_ = s;
}

const char* TcpConnection::StateName(State s) {
  switch (s) {
    case State::kClosed: return "Closed";
    case State::kListen: return "Listen";
    case State::kSynSent: return "SynSent";
    case State::kSynReceived: return "SynReceived";
    case State::kEstablished: return "Established";
    case State::kFinWait1: return "FinWait1";
    case State::kFinWait2: return "FinWait2";
    case State::kClosing: return "Closing";
    case State::kTimeWait: return "TimeWait";
    case State::kCloseWait: return "CloseWait";
    case State::kLastAck: return "LastAck";
  }
  return "?";
}

void TcpConnection::LifecycleError(const char* api) const {
  // Same discipline as TcpInvariantChecker::Violate: dump the state that
  // proves the misuse, then throw — release builds included. An assert here
  // would let a release-mode churn harness silently clobber a live
  // connection's sequence space.
  std::fprintf(stderr,
               "\n=== TCP lifecycle error (flow %u) ===\n"
               "%s() requires a fresh connection in state Closed; "
               "state=%s close_reason=%s snd_una=%llu snd_nxt=%llu\n"
               "=== end lifecycle error ===\n",
               flow_, api, StateName(state_), CloseReasonName(close_reason_),
               static_cast<unsigned long long>(snd_una_),
               static_cast<unsigned long long>(snd_nxt_));
  throw std::logic_error(std::string("TcpConnection::") + api +
                         " on flow " + std::to_string(flow_) + " in state " +
                         StateName(state_) + " (expected a fresh Closed)");
}

void TcpConnection::Listen() {
  if (state_ != State::kClosed || close_reason_ != CloseReason::kNone) {
    LifecycleError("Listen");
  }
  SetState(State::kListen);
}

void TcpConnection::Connect() {
  if (state_ != State::kClosed || close_reason_ != CloseReason::kNone) {
    LifecycleError("Connect");
  }
  SetState(State::kSynSent);
  SendSyn(/*is_synack=*/false);
  ArmRto();
}

void TcpConnection::SendSyn(bool is_synack) {
  // The SYN occupies one virtual sequence byte. It is always accounted to
  // TDN 0 (Appendix A.2): the TDTCP negotiation has not completed, so there
  // is no notion of an active TDN yet.
  TxSegment seg;
  seg.seq = 0;
  seg.len = 1;
  seg.syn = true;
  seg.tdn = 0;
  seg.first_sent = seg.last_sent = sim_.now();
  send_queue_.Append(seg);
  tdns_.state(0).packets_out++;
  snd_nxt_ = 1;

  ResendSynPacket();
  (void)is_synack;
}

void TcpConnection::ResendSynPacket() {
  Packet p;
  p.id = sim_.NextPacketId();
  p.type = PacketType::kData;
  p.flow = flow_;
  p.dst = peer_;
  p.syn = true;
  p.seq = 0;
  p.payload = 0;
  p.size_bytes = config_.header_bytes;
  p.td_capable = config_.tdtcp_enabled;
  p.td_num_tdns = config_.num_tdns;
  p.pinned_path = config_.pin_path;
  p.subflow = config_.subflow_id;
  p.is_mptcp = config_.mptcp;
  p.sent_time = sim_.now();
  if (state_ == State::kSynReceived) p.ack = 1;  // SYN/ACK
  ++stats_.segments_sent;
  if (has_tap_) tap_(TapDirection::kTx, p);
  host_->Send(std::move(p));
}

void TcpConnection::OnSyn(const Packet& p) {
  // Passive open. Negotiate TD_CAPABLE: both sides must agree on the number
  // of TDNs so the IDs refer to the same network conditions (§4.2).
  tdtcp_active_ = config_.tdtcp_enabled && p.td_capable &&
                  p.td_num_tdns == config_.num_tdns;
  SetState(State::kSynReceived);
  SendSyn(/*is_synack=*/true);
  ArmRto();
}

void TcpConnection::OnSynAck(const Packet& p) {
  tdtcp_active_ = config_.tdtcp_enabled && p.td_capable &&
                  p.td_num_tdns == config_.num_tdns;
  // The SYN/ACK acknowledges our SYN. The SYN may have been marked lost by
  // an RTO while its path (e.g. a pinned subflow's circuit) was unavailable,
  // so account every flag it carries.
  send_queue_.AckThrough(1, [this](const TxSegment& seg) {
    TdnState& st = tdns_.state(seg.tdn);
    st.packets_out--;
    if (seg.sacked) st.sacked_out--;
    if (seg.lost) st.lost_out--;
    if (seg.retrans) st.retrans_out--;
  });
  snd_una_ = 1;
  // A delayed handshake (SYN waited for its path) should not poison the
  // congestion state the connection starts with.
  for (std::size_t i = 0; i < tdns_.num_tdns(); ++i) {
    TdnState& st = tdns_.state(static_cast<TdnId>(i));
    if (st.ca_state == CaState::kLoss && st.packets_out == 0) {
      st.ca_state = CaState::kOpen;
      st.cwnd = std::max(st.cwnd, config_.initial_cwnd);
      st.undo_marker = 0;
    }
  }
  rto_backoff_ = 0;
  CompleteHandshake();

  // Final handshake ACK.
  Packet a;
  a.id = sim_.NextPacketId();
  a.type = PacketType::kAck;
  a.flow = flow_;
  a.dst = peer_;
  a.ack = 1;
  a.size_bytes = config_.ack_bytes;
  a.pinned_path = config_.pin_path;
  a.subflow = config_.subflow_id;
  a.is_mptcp = config_.mptcp;
  a.sent_time = sim_.now();
  if (has_tap_) tap_(TapDirection::kTx, a);
  host_->Send(std::move(a));
}

void TcpConnection::CompleteHandshake() {
  SetState(State::kEstablished);
  CancelTimers();
  rto_retries_ = 0;
  if (on_established_) on_established_();
  // A Close() issued before the handshake completed (lingering close) takes
  // effect now: the FIN follows whatever data was queued.
  if (fin_pending_ && state_ == State::kEstablished) {
    SetState(State::kFinWait1);
  }
  MaybeSend();
}

void TcpConnection::ResetToListen() {
  // Drop the half-open attempt and become a fresh listener (RFC 9293's
  // "return to LISTEN": SYN-ACK retransmission cap or a peer RST in
  // SYN-RECEIVED — the caller accounts which). Everything the attempt put
  // on the scoreboard — the SYN-ACK's virtual byte — is retired with full
  // per-TDN accounting so the invariant recount stays exact.
  for (const auto& seg : send_queue_.segments()) {
    TdnState& st = tdns_.state(seg.tdn);
    st.packets_out--;
    if (seg.sacked) st.sacked_out--;
    if (seg.lost) st.lost_out--;
    if (seg.retrans) st.retrans_out--;
  }
  send_queue_.segments().clear();
  snd_una_ = 0;
  snd_nxt_ = 0;
  tdtcp_active_ = false;
  rto_backoff_ = 0;
  rto_retries_ = 0;
  CancelTimers();
  // A Close() issued while half-open must not be stranded: a "fresh
  // listener" would never fire ClosedFn for it, and the intent would leak
  // into the next accepted connection (instant FIN-WAIT-1 on handshake
  // completion). Behave like Close() on a listener instead.
  if (fin_pending_) {
    fin_pending_ = false;
    ToClosed(CloseReason::kNormal);
    return;
  }
  // Teardown state from the dropped attempt must not survive into the next
  // accepted connection: a stale fin_received_/fin_consumed_ would skew
  // AckValue() and the close machine from the first segment on.
  fin_sent_ = false;
  fin_seq_ = 0;
  fin_received_ = false;
  fin_consumed_ = false;
  peer_fin_seq_ = 0;
  rcv_buffer_ = ReceiveBuffer();
  SetState(State::kListen);
}

// ---------------------------------------------------------------------------
// Teardown
// ---------------------------------------------------------------------------

void TcpConnection::Close() {
  if (state_ == State::kClosed || fin_pending_ || fin_sent_) return;
  Trace(TracePoint::kTcpClose, static_cast<std::uint64_t>(state_));
  unlimited_data_ = false;
  switch (state_) {
    case State::kListen:
      ToClosed(CloseReason::kNormal);
      return;
    case State::kSynSent:
    case State::kSynReceived:
      // Lingering close: remember the intent and let the handshake finish;
      // the FIN rides after any data queued before Close(). If the peer is
      // dead, the SYN retry caps abort with their own reason.
      fin_pending_ = true;
      return;
    case State::kEstablished:
      fin_pending_ = true;
      SetState(State::kFinWait1);
      break;
    case State::kCloseWait:
      fin_pending_ = true;
      SetState(State::kLastAck);
      break;
    default:
      return;  // already on a closing path
  }
  MaybeSend();
}

void TcpConnection::Abort(CloseReason reason) {
  if (state_ == State::kClosed) return;
  // An RST is only meaningful from states where the peer knows our sequence
  // space — and never in reply to the peer's own RST.
  if (state_ != State::kListen && state_ != State::kSynSent &&
      reason != CloseReason::kPeerReset) {
    SendRst();
  }
  ToClosed(reason);
}

void TcpConnection::SendRst() {
  Packet p;
  p.id = sim_.NextPacketId();
  p.type = PacketType::kData;
  p.rst = true;
  p.flow = flow_;
  p.dst = peer_;
  p.seq = snd_nxt_;
  p.payload = 0;
  p.size_bytes = config_.header_bytes;
  p.pinned_path = config_.pin_path;
  p.subflow = config_.subflow_id;
  p.is_mptcp = config_.mptcp;
  p.sent_time = sim_.now();
  ++stats_.rsts_sent;
  Trace(TracePoint::kTcpRstOut, static_cast<std::uint64_t>(state_));
  if (has_tap_) tap_(TapDirection::kTx, p);
  host_->Send(std::move(p));
}

void TcpConnection::OnRst(const Packet& p) {
  (void)p;
  ++stats_.rsts_received;
  Trace(TracePoint::kTcpRstIn, static_cast<std::uint64_t>(state_));
  switch (state_) {
    case State::kClosed:
    case State::kListen:
      return;  // nothing to abort
    case State::kSynReceived:
      // RFC 9293: a reset during a passive open returns to LISTEN.
      ResetToListen();
      return;
    default:
      ToClosed(CloseReason::kPeerReset);
      return;
  }
}

void TcpConnection::ConsumePeerFin() {
  switch (state_) {
    case State::kEstablished:
      SetState(State::kCloseWait);
      if (config_.close_on_peer_fin) Close();
      break;
    case State::kFinWait1:
      // Our FIN is still unacked (an ACK covering it would have moved us to
      // FIN-WAIT-2 already): simultaneous close.
      SetState(State::kClosing);
      break;
    case State::kFinWait2:
      EnterTimeWait();
      break;
    default:
      break;  // duplicates in Closing/TimeWait/CloseWait/LastAck: re-ACK only
  }
}

void TcpConnection::MaybeAdvanceCloseStates() {
  if (!fin_sent_ || snd_una_ <= fin_seq_) return;
  switch (state_) {
    case State::kFinWait1:
      SetState(State::kFinWait2);
      break;
    case State::kClosing:
      EnterTimeWait();
      break;
    case State::kLastAck:
      ToClosed(CloseReason::kNormal);
      break;
    default:
      break;
  }
}

void TcpConnection::EnterTimeWait() {
  SetState(State::kTimeWait);
  // Our FIN — the last byte of the stream — is acked, so the scoreboard is
  // empty and no retransmission machinery is needed; only the 2MSL clock and
  // the duty to re-ACK a retransmitted peer FIN remain.
  CancelTimers();
  const SimTime deadline = host_->wheel().Arm(
      time_wait_entry_, sim_.now() + config_.time_wait_duration);
  Trace(TracePoint::kTcpTimerArm,
        static_cast<std::uint64_t>(TraceTimer::kTimeWait),
        static_cast<std::uint64_t>(deadline.picos()));
}

void TcpConnection::OnTimeWaitFire() {
  Trace(TracePoint::kTcpTimerFire,
        static_cast<std::uint64_t>(TraceTimer::kTimeWait));
  ToClosed(CloseReason::kNormal);
}

void TcpConnection::ToClosed(CloseReason reason) {
  if (state_ == State::kClosed && close_reason_ != CloseReason::kNone) return;
  // MPTCP: snapshot data-level ranges stranded on this subflow before the
  // scoreboard is released, so the meta-connection can reinject them onto a
  // surviving subflow.
  if (config_.mptcp && reason != CloseReason::kNormal) {
    orphaned_dss_ = UnackedDssRanges();
    for (const auto& r : PendingDssRanges()) orphaned_dss_.push_back(r);
  }
  // Retire per-TDN pipe accounting for everything still on the scoreboard —
  // the post-close recount (Event::kClose) then proves every counter hit
  // exactly zero.
  for (const auto& seg : send_queue_.segments()) {
    TdnState& st = tdns_.state(seg.tdn);
    st.packets_out--;
    if (seg.sacked) st.sacked_out--;
    if (seg.lost) st.lost_out--;
    if (seg.retrans) st.retrans_out--;
  }
  send_queue_.segments().clear();
  pending_.clear();
  pending_bytes_ = 0;
  unlimited_data_ = false;
  dupack_count_ = 0;
  CancelTimers();
  // Every path into kClosed funnels through here; the wheel's idempotent
  // disarm makes CancelTimers safe to repeat, and after it no timer may
  // survive to fire into a dead connection (the old EventId scheme only got
  // this right by luck of kInvalidEventId checks on some abort paths).
  assert(!rto_entry_.armed() && !tlp_entry_.armed() &&
         !persist_entry_.armed() && !time_wait_entry_.armed() &&
         "ToClosed left a wheel timer armed");
  assert(pace_timer_ == kInvalidEventId && "ToClosed left the pace timer");
  if (recovery_agent_ != nullptr) recovery_agent_->Deregister(recovery_node_);
  SetState(State::kClosed);
  close_reason_ = reason;
  if (endpoint_registered_) {
    host_->UnregisterEndpoint(flow_, this);
    endpoint_registered_ = false;
  }
  if (tdn_listener_registered_) {
    host_->RemoveTdnListener(this);
    host_->RemoveTdnReconfigListener(this);
    tdn_listener_registered_ = false;
  }
  RunChecker(TcpInvariantChecker::Event::kClose);
  Trace(TracePoint::kTcpClosed, static_cast<std::uint64_t>(reason));
  if (on_closed_) on_closed_(reason);
}

void TcpConnection::DowngradeToRegularTcp() {
  // §4.2: only the local side is affected; the peer may keep sending
  // TDTCP-enabled segments but will get regular ACKs back. We freeze on the
  // currently active state set and stop reacting to TDN notifications.
  tdtcp_active_ = false;
}

// ---------------------------------------------------------------------------
// Application data
// ---------------------------------------------------------------------------

void TcpConnection::SetUnlimitedData(bool unlimited) {
  unlimited_data_ = unlimited;
  MaybeSend();
}

void TcpConnection::AddAppData(std::uint64_t bytes) {
  // Data written after Close() has no sequence space left (the FIN is the
  // last byte of the stream): drop it.
  if (bytes == 0 || fin_pending_ || fin_sent_ || state_ == State::kClosed) {
    return;
  }
  pending_.push_back(PendingChunk{bytes, false, 0});
  pending_bytes_ += bytes;
  MaybeSend();
}

bool TcpConnection::AddMappedData(std::uint32_t len, std::uint64_t dss_seq) {
  // Mapped data is accepted until the FIN is actually on the wire: a meta
  // reinjection may still ride ahead of a pending (not yet sent) FIN. The
  // caller must check the result — a refused range was NOT queued, and a
  // reinjection that ignores the refusal silently drops that DSS range.
  if (len == 0 || fin_sent_ || state_ == State::kClosed) return false;
  pending_.push_back(PendingChunk{len, true, dss_seq});
  pending_bytes_ += len;
  MaybeSend();
  return true;
}

std::uint64_t TcpConnection::unsent_buffered_bytes() const {
  return pending_bytes_;
}

std::uint64_t TcpConnection::bytes_acked() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < tdns_.num_tdns(); ++i) {
    total += tdns_.state(static_cast<TdnId>(i)).bytes_acked;
  }
  return total;
}

std::vector<TcpConnection::DssRange> TcpConnection::UnackedDssRanges() const {
  // After an abort the scoreboard is gone; the ranges it held were
  // snapshotted into orphaned_dss_ for the meta-connection to reinject.
  if (state_ == State::kClosed) return orphaned_dss_;
  std::vector<DssRange> out;
  for (const auto& seg : send_queue_.segments()) {
    if (seg.has_dss && !seg.syn && !seg.fin) {
      out.push_back({seg.dss_seq, seg.len});
    }
  }
  return out;
}

std::vector<TcpConnection::DssRange> TcpConnection::PendingDssRanges() const {
  std::vector<DssRange> out;
  for (const auto& chunk : pending_) {
    if (chunk.has_dss) {
      out.push_back({chunk.dss_seq, static_cast<std::uint32_t>(chunk.bytes)});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// TDN control
// ---------------------------------------------------------------------------

void TcpConnection::OnTdnChange(TdnId tdn, bool imminent) {
  if (imminent) {
    // reTCPdyn advance notice: the ToR enlarged its VOQ; pre-ramp.
    TdnState& st = ActiveState();
    st.cc->OnCircuitTransition(st, /*circuit_up=*/true, /*imminent=*/true);
    MaybeSend();
    return;
  }
  if (!tdtcp_active_) return;
  // A genuine notification is ground truth: it supersedes any data-path
  // inference in progress and suppresses inference for a while (stragglers
  // tagged with the previous TDN are expected right after a switch).
  notify_seen_ = true;
  last_notify_time_ = sim_.now();
  peer_tdn_candidate_ = kNoTdn;
  peer_tdn_streak_ = 0;
  SwitchActiveTdn(tdn);
}

void TcpConnection::OnTdnReconfig(std::uint32_t live_tdns) {
  // Management-plane TDN-count change (ScheduleChange::live_tdns): retire
  // every per-TDN state set the new schedule no longer drives. Unlike
  // OnTdnChange this is reliable (no ICMP loss model) and touches state
  // directly, so it runs under the same invariant-checker discipline as a
  // switch.
  if (!tdtcp_active_) return;
  ++stats_.tdn_reconfigs;
  if (checker_) checker_->WillSwitchTdn(*this);
  const bool moved = tdns_.RetireAbove(live_tdns);
  if (moved) {
    ++stats_.tdn_switches;
    tdn_pointer_pending_ = true;
    ArmRto();
    ArmTlp();
  }
  RunChecker(TcpInvariantChecker::Event::kTdnSwitch);
  if (moved) MaybeSend();
}

void TcpConnection::SwitchActiveTdn(TdnId tdn) {
  if (checker_) checker_->WillSwitchTdn(*this);
  if (!tdns_.SwitchTo(tdn)) return;  // duplicate notification: no-op
  ++stats_.tdn_switches;
  // First transmission on the new TDN will advance the TDN change pointer.
  tdn_pointer_pending_ = true;
  // Timers depend on the active TDN's RTT model.
  ArmRto();
  ArmTlp();
  RunChecker(TcpInvariantChecker::Event::kTdnSwitch);
  // §5.2 "initial burst": the resumed TDN wakes with a (possibly) wide-open
  // cwnd and near-zero in-flight, so transmission resumes immediately.
  MaybeSend();
}

void TcpConnection::NotePeerTdn(TdnId tdn) {
  if (!tdtcp_active_ || !config_.tdn_inference || tdn == kNoTdn) return;
  if (tdn == ActiveTdn()) {
    // Peer agrees with our view: any mismatch streak was stragglers.
    peer_tdn_candidate_ = kNoTdn;
    peer_tdn_streak_ = 0;
    return;
  }
  if (tdn != peer_tdn_candidate_) {
    peer_tdn_candidate_ = tdn;
    peer_tdn_streak_ = 1;
    peer_tdn_first_ = sim_.now();
    return;
  }
  ++peer_tdn_streak_;
  if (peer_tdn_streak_ < config_.tdn_infer_packets) return;
  // In-flight traffic tagged with the previous TDN drains within about one
  // RTT of a genuine switch, so require the mismatch streak to outlive the
  // same patience the relaxed reordering heuristic uses (1.5x the slowest
  // sRTT, §3.4) -- measured both from the first mismatch and from the last
  // notification we actually received.
  const RttEstimator& slowest = tdns_.SlowestRtt(ActiveTdn());
  const SimTime patience = slowest.has_sample()
                               ? slowest.srtt() + slowest.srtt() / 2
                               : config_.rtt.initial_rto;
  if (sim_.now() - peer_tdn_first_ <= patience) return;
  if (notify_seen_ && sim_.now() - last_notify_time_ <= patience) return;
  // Our notification for this TDN change was lost: converge via the data
  // path (§3.2 graceful degradation).
  const TdnId target = peer_tdn_candidate_;
  peer_tdn_candidate_ = kNoTdn;
  peer_tdn_streak_ = 0;
  ++stats_.tdn_inferred_switches;
  SwitchActiveTdn(target);
}

// ---------------------------------------------------------------------------
// Packet entry point
// ---------------------------------------------------------------------------

void TcpConnection::HandlePacket(Packet&& p) {
  if (has_tap_) tap_(TapDirection::kRx, p);
  if (p.type == PacketType::kTdnNotify) {
    OnTdnChange(p.notify_tdn, p.circuit_imminent);
    return;
  }
  if (p.rst) {
    OnRst(p);
    return;
  }
  if (state_ == State::kClosed) {
    // A dead endpoint object still wired into the datapath behaves like the
    // host's closed port: reset the sender (never in reply to an RST, which
    // the branch above already consumed).
    SendRst();
    return;
  }
  if (p.type == PacketType::kData) {
    if (p.syn) {
      if (state_ == State::kListen) { OnSyn(p); return; }
      if (state_ == State::kSynSent) { OnSynAck(p); return; }
      // Retransmitted SYN-ACK: our handshake ACK was lost. Re-ACK so the
      // peer can leave SYN-RECEIVED. A bare duplicate SYN is ignored — the
      // peer's RTO resends our SYN-ACK if that was the loss.
      if (p.ack == 1 &&
          (state_ == State::kEstablished || InClosingFamily())) {
        SendPureAck();
      }
      return;
    }
    if (state_ == State::kListen) {
      // Data at a listener that never saw this handshake.
      SendRst();
      return;
    }
    if (p.payload > 0 || p.fin) {
      OnDataSegment(std::move(p));
      return;
    }
    return;
  }
  // Pure ACK.
  if (state_ == State::kListen) {
    SendRst();
    return;
  }
  if (state_ == State::kSynReceived) CompleteHandshake();
  switch (state_) {
    case State::kEstablished:
    case State::kFinWait1:
    case State::kFinWait2:
    case State::kClosing:
    case State::kCloseWait:
    case State::kLastAck:
      OnAckPacket(p);
      break;
    default:
      break;  // SynSent / TimeWait: a pure ACK carries nothing for us
  }
}

bool TcpConnection::CoalescableAck(const Packet& p) const {
  // Only the boring common case coalesces: an established, SACK-enabled,
  // non-MPTCP connection receiving a bare ACK. Anything carrying control
  // flags, payload, or DSS side effects takes the sequential path, where
  // the full per-packet state dispatch applies.
  return state_ == State::kEstablished && config_.sack_enabled &&
         !config_.mptcp && p.type == PacketType::kAck && !p.rst && !p.syn &&
         !p.fin && !p.has_dss && p.payload == 0;
}

void TcpConnection::HandleBurst(Packet** pkts, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    // CoalescableAck reads state_ fresh each group, so a transition caused
    // by one group (e.g. a FIN sent out of MaybeSend) demotes the rest of
    // the burst to the sequential path.
    if (!CoalescableAck(*pkts[i])) {
      HandlePacket(std::move(*pkts[i]));
      ++i;
      continue;
    }
    std::size_t j = i + 1;
    while (j < n && CoalescableAck(*pkts[j])) ++j;
    if (j - i == 1) {
      HandlePacket(std::move(*pkts[i]));
    } else {
      OnAckBurst(pkts + i, j - i);
    }
    i = j;
  }
}

void TcpConnection::OnAckBurst(Packet** acks, std::size_t n) {
  // Phase 1: per-packet header effects, in arrival order — exactly the
  // prologue each OnAckPacket call would have run (stats, window update,
  // TDN note, D-SACK consumption) — while collecting the burst's plain
  // SACK blocks and the highest cumulative ACK.
  std::uint64_t max_ack = snd_una_;
  const Packet* last = nullptr;  // last sane ACK: trigger/ECE context
  const Packet* cum = nullptr;   // first ACK reaching max_ack
  bool any_ece = false;
  for (std::size_t i = 0; i < n; ++i) {
    const Packet& p = *acks[i];
    if (has_tap_) tap_(TapDirection::kRx, p);
    ++stats_.acks_received;
    if (p.has_rwnd) {
      peer_rwnd_ = p.rcv_window;
      if (peer_rwnd_ > 0 && (persist_entry_.armed() || persist_probing_)) {
        CancelPersist();
      }
    }
    NotePeerTdn(p.ack_tdn);
    if (p.ack > snd_nxt_) continue;  // acks data never sent
    NoteCircuitEcho(p.circuit_echo);
    last = &p;
    any_ece = any_ece || p.ece;
    if (tdtcp_active_ && p.ack_tdn != kNoTdn) tdns_.EnsureTdn(p.ack_tdn);
    if (p.ack > max_ack) {
      max_ack = p.ack;
      cum = &p;
    }
  }
  if (last == nullptr) return;  // every ACK was beyond snd_nxt_
  if (tdns_.TotalPacketsOut() == 0 && max_ack <= snd_una_) {
    // Stale burst; it may still carry a window reopening (handled above).
    // The sequential path discards such ACKs before SACK processing, so
    // their D-SACKs are deliberately not consumed here either.
    MaybeSend();
    return;
  }

  // Second per-packet pass: D-SACK consumption (per ACK, against its own
  // blocks, exactly as sequential processing would) and the union of the
  // burst's plain SACK blocks. ApplySack is segment-major, so overlapping
  // or unsorted blocks need no pre-merge.
  std::uint32_t sackless_dups = 0;
  sack_merge_scratch_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    const Packet& p = *acks[i];
    if (p.ack > snd_nxt_) continue;
    std::uint8_t first_block = 0;
    if (p.num_sack > 0) first_block = SplitDsack(p);
    for (std::uint8_t k = first_block; k < p.num_sack; ++k) {
      sack_merge_scratch_.push_back(p.sack[k]);
    }
    // Sackless duplicate against the pre-burst snd_una_; only consumed when
    // the whole burst makes no cumulative progress (below), where the
    // snapshot comparison is exact.
    if (p.ack == snd_una_ && first_block >= p.num_sack) ++sackless_dups;
  }

  const TdnId trigger_tdn =
      (tdtcp_active_ && last->ack_tdn != kNoTdn) ? last->ack_tdn : ActiveTdn();
  tdns_.EnsureTdn(trigger_tdn);

  // Phase 2: one scoreboard pass with the merged deltas.
  acked_pkts_scratch_.assign(tdns_.num_tdns(), 0);
  acked_bytes_scratch_.assign(tdns_.num_tdns(), 0);
  sacked_pkts_scratch_.assign(tdns_.num_tdns(), 0);
  rtt_scratch_.assign(tdns_.num_tdns(), SimTime::Zero());
  ece_target_tdn_ = trigger_tdn;

  std::uint32_t newly_sacked = 0;
  if (!sack_merge_scratch_.empty()) {
    const TdnId sack_tdn = last->ack_tdn;
    newly_sacked = send_queue_.ApplySack(
        std::span<const SackBlock>(sack_merge_scratch_),
        [this, sack_tdn](TxSegment& seg) { NoteSackedSegment(seg, sack_tdn); });
  }

  if (max_ack > snd_una_) {
    const bool acked_fresh_data = ProcessCumulativeAck(*cum, trigger_tdn);
    dupack_count_ = 0;
    rto_retries_ = 0;
    persist_backoff_ = 0;
    persist_probing_ = false;
    if (acked_fresh_data) rto_backoff_ = 0;
    tlp_in_flight_ = false;
    if (recovery_agent_ != nullptr) {
      recovery_agent_->NoteProgress(recovery_node_);
    }
  } else {
    dupack_count_ += sackless_dups;
  }

  DetectLosses(trigger_tdn, newly_sacked);
  // ECE from any ACK in the burst counts once against the merged pass's
  // target TDN — same once-per-window semantics as sequential processing,
  // since EnterCwr latches until snd_una_ passes high_seq anyway.
  Packet merged = *last;
  merged.ack = max_ack;
  merged.ece = any_ece;
  AdvanceStateMachines(merged);

  if (fin_sent_) MaybeAdvanceCloseStates();
  if (state_ == State::kClosed) return;

  ArmRto();
  ArmTlp();
  RunChecker(TcpInvariantChecker::Event::kAck);
  MaybeSend();
  if (on_send_ready_) on_send_ready_();
}

// ---------------------------------------------------------------------------
// Receiver path
// ---------------------------------------------------------------------------

void TcpConnection::OnDataSegment(Packet&& p) {
  if (state_ == State::kSynReceived) {
    // The handshake ACK can be implicit in the first data segment.
    CompleteHandshake();
  }
  if (state_ != State::kEstablished && !InClosingFamily()) return;

  // TD_DATA_ACK D bit: the TDN the peer sent this data on.
  NotePeerTdn(p.data_tdn);

  ReceiveBuffer::Result result;
  if (p.payload > 0) {
    result = rcv_buffer_.OnData(p.seq, p.payload, p.has_dss, p.dss_seq,
                                sim_.now());
    if (result.duplicate) ++stats_.duplicate_segments;
    for (const auto& d : result.delivered) {
      stats_.bytes_received += d.len;
      if (deliver_) deliver_(DeliverInfo{d.seq, d.len, d.has_dss, d.dss_seq});
    }
  }
  if (p.fin && !fin_received_) {
    fin_received_ = true;
    peer_fin_seq_ = p.seq + p.payload;
    ++stats_.fins_received;
  }
  // The FIN is consumed only in order: every stream byte before it must have
  // been delivered, or the ACK covering it would lie about the data.
  bool fin_just_consumed = false;
  if (fin_received_ && !fin_consumed_ &&
      rcv_buffer_.rcv_nxt() == peer_fin_seq_) {
    fin_consumed_ = true;
    fin_just_consumed = true;
    Trace(TracePoint::kTcpFinRx, peer_fin_seq_);
  }
  // ACK first — AckValue() covers the consumed FIN — then advance the close
  // machine: ConsumePeerFin may enter TIME-WAIT or close outright, and the
  // ACK must not be lost to that transition.
  SendAck(result, p);
  if (fin_just_consumed) {
    ConsumePeerFin();
  } else if (p.fin && fin_consumed_ && state_ == State::kTimeWait) {
    // Retransmitted peer FIN: our final ACK was lost. The re-ACK went out
    // above; restart the 2MSL clock (RFC 9293 §3.10.7.4).
    EnterTimeWait();
  }
}

void TcpConnection::SendAck(const ReceiveBuffer::Result& result,
                            const Packet& data) {
  Packet a;
  a.id = sim_.NextPacketId();
  a.type = PacketType::kAck;
  a.flow = flow_;
  a.dst = peer_;
  a.ack = AckValue();
  a.size_bytes = config_.ack_bytes;
  const std::uint64_t used = rcv_buffer_.ooo_bytes();
  std::uint64_t wnd =
      config_.rcv_buf_bytes > used ? config_.rcv_buf_bytes - used : 0;
  // Plain TCP: an injected window constraint (application backpressure) caps
  // the advertised window directly — a zero here is what arms the peer's
  // persist timer. MPTCP subflows keep their subflow window open and carry
  // the shared meta constraint in dss_rwnd instead (below), so hole-filling
  // reinjections are never blocked by the very stall they are repairing.
  if (!config_.mptcp && rwnd_provider_) {
    wnd = std::min(wnd, rwnd_provider_());
  }
  a.rcv_window = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(wnd, 0xffffffffu));
  a.has_rwnd = true;
  if (config_.sack_enabled) {
    auto blocks = rcv_buffer_.BuildSackBlocks(result);
    a.num_sack = static_cast<std::uint8_t>(
        std::min<std::size_t>(blocks.size(), kMaxSackBlocks));
    for (std::uint8_t i = 0; i < a.num_sack; ++i) a.sack[i] = blocks[i];
  }
  // DCTCP-style precise per-packet ECN echo.
  a.ece = (data.ecn == Ecn::kCe);
  // reTCP: echo the switch's circuit mark back to the sender.
  a.circuit_echo = data.circuit_mark;
  // TD_DATA_ACK: the TDN this ACK is being sent on (A bit).
  if (tdtcp_active_) a.ack_tdn = ActiveTdn();
  a.pinned_path = config_.pin_path;
  a.subflow = config_.subflow_id;
  a.is_mptcp = config_.mptcp;
  if (config_.mptcp && dss_ack_provider_) {
    a.has_dss = true;
    a.dss_ack = dss_ack_provider_();
    // The meta-level window rides the DSS option; it is enforced by the
    // peer's meta scheduler (not per subflow, so hole-filling reinjections
    // are never blocked by the very stall they are repairing).
    if (rwnd_provider_) a.dss_rwnd = rwnd_provider_();
  }
  a.sent_time = sim_.now();
  if (has_tap_) tap_(TapDirection::kTx, a);
  host_->Send(std::move(a));
}

void TcpConnection::SendPureAck() {
  // Bare re-ACK (retransmitted SYN-ACK or peer FIN): no SACK blocks, no
  // window recomputation — just the cumulative ACK the peer is missing.
  Packet a;
  a.id = sim_.NextPacketId();
  a.type = PacketType::kAck;
  a.flow = flow_;
  a.dst = peer_;
  a.ack = AckValue();
  a.size_bytes = config_.ack_bytes;
  if (tdtcp_active_) a.ack_tdn = ActiveTdn();
  a.pinned_path = config_.pin_path;
  a.subflow = config_.subflow_id;
  a.is_mptcp = config_.mptcp;
  a.sent_time = sim_.now();
  if (has_tap_) tap_(TapDirection::kTx, a);
  host_->Send(std::move(a));
}

// ---------------------------------------------------------------------------
// Sender path: ACK processing
// ---------------------------------------------------------------------------

void TcpConnection::OnAckPacket(const Packet& p) {
  ++stats_.acks_received;
  if (on_dss_ack_ && p.has_dss) on_dss_ack_(p.dss_ack, p.dss_rwnd);
  if (p.has_rwnd) {
    peer_rwnd_ = p.rcv_window;  // zero means flow-control stall
    if (peer_rwnd_ > 0 && (persist_entry_.armed() || persist_probing_)) {
      // The window reopened: leave persist mode. MaybeSend (below, on every
      // ACK path including the stale-ACK one) resumes normal transmission.
      // persist_probing_ can outlive the timer (it lapses once the probe is
      // outstanding and the RTO owns it), so check both.
      CancelPersist();
    }
  }

  // TD_DATA_ACK A bit: the TDN the peer sent this ACK on.
  NotePeerTdn(p.ack_tdn);

  if (p.ack > snd_nxt_) return;  // acks data never sent
  // §4.3 "all TDNs": an ACK may acknowledge data sent on any TDN, so the
  // stale-ACK filter must consult the sum of per-TDN packets_out. A stale
  // ACK may still carry a window update (e.g. a zero-window reopening), so
  // give the transmit path a chance before discarding it.
  if (tdns_.TotalPacketsOut() == 0 && p.ack <= snd_una_) {
    MaybeSend();
    return;
  }

  const TdnId trigger_tdn =
      (tdtcp_active_ && p.ack_tdn != kNoTdn) ? p.ack_tdn : ActiveTdn();
  tdns_.EnsureTdn(trigger_tdn);

  NoteCircuitEcho(p.circuit_echo);

  // Per-ACK scratch accounting (per TDN).
  acked_pkts_scratch_.assign(tdns_.num_tdns(), 0);
  acked_bytes_scratch_.assign(tdns_.num_tdns(), 0);
  sacked_pkts_scratch_.assign(tdns_.num_tdns(), 0);
  rtt_scratch_.assign(tdns_.num_tdns(), SimTime::Zero());
  ece_target_tdn_ = trigger_tdn;

  std::uint32_t newly_sacked = 0;
  if (config_.sack_enabled && p.num_sack > 0) {
    newly_sacked = ProcessSackBlocks(p, trigger_tdn);
  }

  const std::uint32_t total_acked_before = tdns_.TotalPacketsOut();
  std::uint32_t newly_acked_total = 0;
  if (p.ack > snd_una_) {
    const bool acked_fresh_data = ProcessCumulativeAck(p, trigger_tdn);
    newly_acked_total = total_acked_before - tdns_.TotalPacketsOut();
    dupack_count_ = 0;
    rto_retries_ = 0;      // forward progress: the peer is alive
    persist_backoff_ = 0;  // an ACKed probe is an answered probe
    persist_probing_ = false;
    // Karn's algorithm: an ACK that only covers retransmitted data is
    // ambiguous — it may acknowledge the original transmission, so it says
    // nothing about the current path delay. Only an ACK of never-
    // retransmitted data proves the path is live and may reset the
    // exponential RTO backoff.
    if (acked_fresh_data) rto_backoff_ = 0;
    tlp_in_flight_ = false;
    // Cumulative advance = forward progress: reset the recovery agent's
    // quiet clock for this connection.
    if (recovery_agent_ != nullptr) recovery_agent_->NoteProgress(recovery_node_);
  } else if (p.ack == snd_una_ && p.payload == 0 && newly_sacked == 0) {
    ++dupack_count_;
    if (!config_.sack_enabled) {
      // Reno-SACK emulation (Linux tcp_add_reno_sack): each dupACK means one
      // segment left the network, so account a virtual SACK for pipe/PRR.
      TdnState& st = ActiveState();
      if (st.sacked_out + st.lost_out < st.packets_out) {
        st.sacked_out++;
        sacked_pkts_scratch_[tdns_.active_id()]++;
      }
    }
  }
  if (!config_.sack_enabled && newly_acked_total > 0) {
    // Linux tcp_remove_reno_sacks: the cumulative ACK consumes virtual SACKs.
    TdnState& st = ActiveState();
    st.sacked_out -= std::min(st.sacked_out, newly_acked_total);
    if (snd_una_ >= snd_nxt_) st.sacked_out = 0;
  }

  DetectLosses(trigger_tdn, newly_sacked);
  AdvanceStateMachines(p);

  // An ACK covering our FIN moves the close machine; it may retire the
  // connection entirely (LAST-ACK -> CLOSED), after which no timer may be
  // re-armed and the checker has already run its post-close recount.
  if (fin_sent_) MaybeAdvanceCloseStates();
  if (state_ == State::kClosed) return;

  ArmRto();
  ArmTlp();
  RunChecker(TcpInvariantChecker::Event::kAck);
  MaybeSend();
  if (on_send_ready_) on_send_ready_();
}

std::uint32_t TcpConnection::ProcessSackBlocks(const Packet& p, TdnId trigger_tdn) {
  (void)trigger_tdn;
  // The packet's own block array is applied in place (a span past any
  // leading D-SACK block) — no per-ACK copy of the blocks.
  const std::uint8_t first = SplitDsack(p);
  const TdnId ack_tdn = p.ack_tdn;
  return send_queue_.ApplySack(
      std::span<const SackBlock>(p.sack.data() + first,
                                 static_cast<std::size_t>(p.num_sack - first)),
      [this, ack_tdn](TxSegment& seg) { NoteSackedSegment(seg, ack_tdn); });
}

std::uint8_t TcpConnection::SplitDsack(const Packet& p) {
  // RFC 2883: a D-SACK is a first block below the cumulative ACK, or one
  // contained in the second block.
  if (p.num_sack == 0) return 0;
  const SackBlock& b0 = p.sack[0];
  const bool below_cum = b0.end <= p.ack;
  const bool inside_second =
      p.num_sack >= 2 && b0.start >= p.sack[1].start && b0.end <= p.sack[1].end;
  if (!below_cum && !inside_second) return 0;
  ++stats_.dsacks_received;
  ProcessDsack(b0);
  return 1;
}

void TcpConnection::NoteSackedSegment(TxSegment& seg, TdnId ack_tdn) {
  TdnState& st = tdns_.state(seg.tdn);
  st.sacked_out++;
  Trace(TracePoint::kTcpSackEdit,
        static_cast<std::uint64_t>(TraceSackEdit::kSacked), seg.seq, seg.len,
        seg.tdn);
  if (seg.tdn < sacked_pkts_scratch_.size()) sacked_pkts_scratch_[seg.tdn]++;
  if (seg.lost) {
    // The receiver has it after all; it was reordered, not lost.
    seg.lost = false;
    st.lost_out--;
  }
  if (seg.last_sent > rack_mstamp_) {
    rack_mstamp_ = seg.last_sent;
    rack_mstamp_tdn_ = seg.tdn;
  }
  // SACK RTT sampling (Linux sack_rtt): a newly SACKed, never-retransmitted
  // segment is as valid a sample as a cumulatively acked one, under the
  // same Karn + TDN-matching rules. Without it a sender whose only
  // delivered segments are SACKed keeps RTO pinned at initial_rto, whose
  // exponential backoff can phase-lock with the rotation week so every
  // retransmission lands in the same congested schedule segment.
  if (!config_.sack_rtt) return;
  if (seg.ever_retrans) return;
  const SimTime rtt = sim_.now() - seg.last_sent;
  if (tdtcp_active_ && config_.per_tdn_rtt) {
    if (ack_tdn != kNoTdn && ack_tdn == seg.tdn) {
      st.rtt.AddSample(rtt);
    } else {
      ++stats_.rtt_samples_dropped;
    }
  } else {
    st.rtt.AddSample(rtt);
  }
}

void TcpConnection::ProcessDsack(const SackBlock& block) {
  Trace(TracePoint::kTcpSackEdit,
        static_cast<std::uint64_t>(TraceSackEdit::kUndo), block.start,
        block.end - block.start);
  // A DSACK proves a retransmission was spurious: the receiver already had
  // the data. Credit the undo bookkeeping of the TDN whose recovery episode
  // produced the retransmission (seg.undo_tdn — pinned at the *first*
  // retransmission, so later re-retransmissions on other TDNs don't move
  // the credit).
  TxSegment* seg = send_queue_.Find(block.start);
  if (seg != nullptr && seg->ever_retrans) {
    // The DSACK disproves an agent forcing exactly once: clear the flag so a
    // second duplicate report cannot double-count.
    if (seg->forced_rtx) {
      seg->forced_rtx = false;
      CountSpuriousForcing();
    }
    TdnState& st = tdns_.state(seg->undo_tdn);
    if (st.undo_retrans > 0) st.undo_retrans--;
    return;
  }
  // Retired forced segment: the original's (delayed) cumulative ACK beat the
  // DSACK. The range record is erased on match, keeping the count
  // exactly-once per forcing.
  for (auto it = forced_retired_.begin(); it != forced_retired_.end(); ++it) {
    if (block.start >= it->first && block.start < it->second) {
      forced_retired_.erase(it);
      CountSpuriousForcing();
      break;
    }
  }
  // Segment already cumulatively acked: credit the TDN whose recovery
  // episode actually covered this sequence range. A bare "first armed undo
  // marker" scan would credit whichever TDN happens to be recovering now —
  // across a TDN switch that is the wrong episode, and its undo would
  // restore the wrong TDN's window.
  for (std::size_t i = 0; i < tdns_.num_tdns(); ++i) {
    TdnState& st = tdns_.state(static_cast<TdnId>(i));
    if (st.undo_marker != 0 && st.undo_retrans > 0 &&
        block.start >= st.undo_marker && block.start < st.high_seq) {
      st.undo_retrans--;
      return;
    }
  }
}

bool TcpConnection::ProcessCumulativeAck(const Packet& p, TdnId trigger_tdn) {
  bool acked_fresh_data = false;
  send_queue_.AckThrough(p.ack, [this, &p, trigger_tdn,
                                 &acked_fresh_data](const TxSegment& seg) {
    // §4.3 "specific TDN": scan the retransmission queue and update the
    // tracking variables of the TDN each segment belongs to.
    TdnState& st = tdns_.state(seg.tdn);
    st.packets_out--;
    if (seg.sacked) st.sacked_out--;
    if (seg.lost) st.lost_out--;
    if (seg.retrans) st.retrans_out--;
    if (!seg.syn && !seg.fin) {
      st.bytes_acked += seg.len;
      acked_pkts_scratch_[seg.tdn]++;
      acked_bytes_scratch_[seg.tdn] += seg.len;
      ece_target_tdn_ = seg.tdn;
    }
    // An acked never-retransmitted FIN proves path liveness just like data.
    if (!seg.syn && !seg.ever_retrans) acked_fresh_data = true;
    // An agent-forced segment finally cumulatively acked is a rescue. Keep
    // its range around so a late DSACK (duplicate arriving after the
    // original's delayed ACK) can still reclassify the forcing as spurious.
    if (seg.forced_rtx) {
      ++stats_.recovery_rescued;
      if (recovery_agent_ != nullptr) recovery_agent_->NoteRescued();
      if (forced_retired_.size() >= kMaxForcedRetired) {
        forced_retired_.erase(forced_retired_.begin());
      }
      forced_retired_.emplace_back(seg.seq, seg.end_seq());
    }
    Trace(TracePoint::kTcpSackEdit,
          static_cast<std::uint64_t>(TraceSackEdit::kAcked), seg.seq, seg.len,
          seg.tdn);
    if (seg.last_sent > rack_mstamp_) {
      rack_mstamp_ = seg.last_sent;
      rack_mstamp_tdn_ = seg.tdn;
    }
    // RTT sampling: Karn (never a retransmitted segment), then §4.4's TDN
    // matching — only samples whose data and ACK rode the same TDN feed
    // that TDN's estimator; "type-3" mixed samples are dropped.
    if (seg.ever_retrans) return;
    const SimTime rtt = sim_.now() - seg.last_sent;
    if (tdtcp_active_ && config_.per_tdn_rtt) {
      if (p.ack_tdn != kNoTdn && p.ack_tdn == seg.tdn) {
        st.rtt.AddSample(rtt);
        rtt_scratch_[seg.tdn] = rtt;
      } else {
        ++stats_.rtt_samples_dropped;
      }
    } else {
      st.rtt.AddSample(rtt);
      rtt_scratch_[seg.tdn] = rtt;
    }
    (void)trigger_tdn;
  });
  snd_una_ = p.ack;
  return acked_fresh_data;
}

void TcpConnection::DetectLosses(TdnId trigger_tdn, std::uint32_t newly_sacked) {
  if (!config_.sack_enabled) {
    // Classic triple-dupACK: mark the head segment lost.
    if (dupack_count_ >= config_.dupack_threshold && !send_queue_.Empty()) {
      TxSegment& head = send_queue_.front();
      if (!head.lost && !head.sacked) MarkSegmentLost(head);
    }
    return;
  }

  const std::uint64_t high_sacked = send_queue_.highest_sacked();
  if (high_sacked <= snd_una_) return;

  auto& segs = send_queue_.segments();
  std::uint32_t holes = 0;
  std::uint32_t marked = 0;

  // Suffix counts of SACKed segments: one backward pass replaces the
  // quadratic per-hole rescan. The loop below never changes `sacked` (only
  // `lost`/`retrans`), so the counts stay valid throughout.
  sacked_above_scratch_.resize(segs.size());
  {
    std::uint32_t cnt = 0;
    for (std::size_t j = segs.size(); j-- > 0;) {
      sacked_above_scratch_[j] = cnt;
      if (segs[j].sacked) ++cnt;
    }
  }

  for (std::size_t i = 0; i < segs.size(); ++i) {
    TxSegment& seg = segs[i];
    if (seg.end_seq() > high_sacked) break;
    if (seg.sacked) continue;
    // A retransmission is in flight: only RACK-on-the-retransmission may
    // re-declare it (Linux keeps SACKED_RETRANS segments off the mark list
    // until the rtx itself times out or proves lost).
    if (seg.retrans) {
      bool rtx_lost = false;
      if (config_.rack_enabled && rack_mstamp_ > SimTime::Zero()) {
        const TdnState& st = tdns_.state(seg.tdn);
        const SimTime reo_wnd = st.rtt.has_sample() ? st.rtt.min_rtt() / 4
                                                    : SimTime::Micros(25);
        rtx_lost = rack_mstamp_ > seg.last_sent + reo_wnd;
      }
      if (rtx_lost) {
        TdnState& st = tdns_.state(seg.tdn);
        seg.retrans = false;
        st.retrans_out--;
        if (!seg.lost) {
          MarkSegmentLost(seg);
          ++marked;
        }
      }
      continue;
    }
    if (seg.lost) continue;  // awaiting retransmission
    ++holes;

    // Classic dupACK-count analogue: enough SACKed segments above this one.
    const bool dup_cond =
        sacked_above_scratch_[i] >= config_.dupack_threshold;

    // RACK: delivered segments transmitted sufficiently later imply loss.
    bool rack_cond = false;
    if (config_.rack_enabled && rack_mstamp_ > SimTime::Zero()) {
      const TdnState& st = tdns_.state(seg.tdn);
      const SimTime reo_wnd = st.rtt.has_sample()
                                  ? st.rtt.min_rtt() / 4
                                  : SimTime::Micros(25);
      rack_cond = rack_mstamp_ > seg.last_sent + reo_wnd;
    }
    if (!dup_cond && !rack_cond) continue;

    // §3.4 relaxed detection: a hole whose TDN differs from the TDN of the
    // triggering ACK is suspected cross-TDN reordering — its ACK is merely
    // delayed on the slower path. Exempt it unless it has been silent for a
    // full pessimistic cross-TDN RTT (then RACK-TLP-style recovery kicks in).
    if (tdtcp_active_ && config_.relaxed_reordering &&
        SuspectCrossTdnReordering(seg, trigger_tdn, tdn_change_)) {
      const RttEstimator& slowest = tdns_.SlowestRtt(seg.tdn);
      SimTime patience = slowest.has_sample()
                             ? slowest.srtt() + slowest.srtt() / 2
                             : config_.rtt.initial_rto;
      // "Pessimistic" requires the hole's own path to have been measured: a
      // fast TDN's samples bound nothing about an unsampled slow path, so
      // until the hole's TDN has an RTT of its own, wait at least the
      // conservative pre-handshake RTO.
      if (!tdns_.state(seg.tdn).rtt.has_sample()) {
        patience = std::max(patience, config_.rtt.initial_rto);
      }
      if (sim_.now() - seg.last_sent <= patience) {
        ++stats_.cross_tdn_exemptions;
        continue;
      }
    }
    MarkSegmentLost(seg);
    ++marked;
  }

  // A reordering event is a *new* gap opening between the cumulative ACK
  // and the highest SACK (Fig. 10a); long-lived exempted holes count once.
  if (holes > prev_holes_ && newly_sacked > 0) {
    ++stats_.reorder_events;
    stats_.reorder_hole_packets += holes - prev_holes_;
  }
  prev_holes_ = holes;
  stats_.reorder_marked_lost += marked;
  if (marked > 0) RunChecker(TcpInvariantChecker::Event::kLoss);
}

void TcpConnection::MarkSegmentLost(TxSegment& seg) {
  assert(!seg.lost && !seg.sacked);
  seg.lost = true;
  TdnState& st = tdns_.state(seg.tdn);
  st.lost_out++;
  Trace(TracePoint::kTcpSackEdit,
        static_cast<std::uint64_t>(TraceSackEdit::kLost), seg.seq, seg.len,
        seg.tdn);
  if (seg.retrans) {
    // The retransmission itself is presumed lost too.
    seg.retrans = false;
    st.retrans_out--;
  }
}

void TcpConnection::AdvanceStateMachines(const Packet& p) {
  for (std::size_t i = 0; i < tdns_.num_tdns(); ++i) {
    const TdnId id = static_cast<TdnId>(i);
    TdnState& st = tdns_.state(id);
    const std::uint32_t acked_here =
        i < acked_pkts_scratch_.size() ? acked_pkts_scratch_[i] : 0;
    const CaState prev_ca = st.ca_state;
    const std::uint32_t prev_cwnd = st.cwnd;
    const std::uint32_t prev_ssthresh = st.ssthresh;

    // CC per-ACK hook (DCTCP fraction tracking etc.) for TDNs with progress.
    if (acked_here > 0) {
      AckContext ctx;
      ctx.event.newly_acked_packets = acked_here;
      ctx.event.newly_acked_bytes = acked_bytes_scratch_[i];
      ctx.event.ece = p.ece && id == ece_target_tdn_;
      ctx.event.circuit_echo = p.circuit_echo;
      ctx.event.rtt_sample = rtt_scratch_[i];
      ctx.event.cwnd_limited = st.cwnd_limited;
      ctx.snd_una = snd_una_;
      ctx.snd_nxt = snd_nxt_;
      ctx.now = sim_.now();
      st.cc->OnAck(st, ctx);
    }

    // ECN-Echo: reduce once per window via the CWR state.
    if (p.ece && id == ece_target_tdn_ &&
        (st.ca_state == CaState::kOpen || st.ca_state == CaState::kDisorder)) {
      EnterCwr(st);
    }

    switch (st.ca_state) {
      case CaState::kOpen:
      case CaState::kDisorder:
        if (st.lost_out > 0) {
          EnterRecovery(st);
          // The entering ACK participates in the rate reduction (Linux runs
          // tcp_cwnd_reduction on the same ACK that enters recovery).
          ProportionalRateReduction(st, acked_here,
                                    i < sacked_pkts_scratch_.size()
                                        ? sacked_pkts_scratch_[i] : 0);
        } else if (st.sacked_out > 0) {
          st.ca_state = CaState::kDisorder;
        } else {
          st.ca_state = CaState::kOpen;
        }
        break;
      case CaState::kCwr:
        ProportionalRateReduction(st, acked_here,
                                  i < sacked_pkts_scratch_.size()
                                      ? sacked_pkts_scratch_[i] : 0);
        if (snd_una_ >= st.high_seq) {
          st.ca_state = CaState::kOpen;
          st.cwnd = std::max(2u, st.ssthresh);  // tcp_end_cwnd_reduction
          st.cc->OnCwndEvent(st, CwndEvent::kCompleteCwr);
        }
        break;
      case CaState::kRecovery:
      case CaState::kLoss:
        MaybeUndo(st);
        if (st.ca_state == CaState::kRecovery) {
          ProportionalRateReduction(st, acked_here,
                                    i < sacked_pkts_scratch_.size()
                                        ? sacked_pkts_scratch_[i] : 0);
        }
        if ((st.ca_state == CaState::kRecovery || st.ca_state == CaState::kLoss) &&
            snd_una_ >= st.high_seq) {
          if (st.ca_state == CaState::kRecovery) {
            st.cwnd = std::max(2u, st.ssthresh);  // tcp_end_cwnd_reduction
          }
          st.ca_state = st.sacked_out > 0 ? CaState::kDisorder : CaState::kOpen;
          st.undo_marker = 0;
        }
        break;
    }

    // Window growth on ACKed progress, outside Recovery/CWR (slow-start
    // regrowth during Loss recovery is standard).
    if (acked_here > 0 &&
        (st.ca_state == CaState::kOpen || st.ca_state == CaState::kDisorder ||
         st.ca_state == CaState::kLoss)) {
      st.cc->CongAvoid(st, acked_here, sim_.now());
    }

    if (has_trace_) {
      if (st.ca_state != prev_ca) {
        Trace(TracePoint::kTcpCaStateChange, id,
              static_cast<std::uint64_t>(prev_ca),
              static_cast<std::uint64_t>(st.ca_state));
      }
      if (st.cwnd != prev_cwnd || st.ssthresh != prev_ssthresh) {
        Trace(TracePoint::kTcpCwndUpdate, id, st.cwnd, st.ssthresh);
      }
    }
  }
}

void TcpConnection::ProportionalRateReduction(TdnState& st,
                                              std::uint32_t newly_acked,
                                              std::uint32_t newly_sacked) {
  // RFC 6937 / Linux tcp_cwnd_reduction. While the pipe is above ssthresh,
  // release sending credit in proportion to delivery (rate halving); once at
  // or below, hold the pipe at ssthresh, always allowing the fast
  // retransmit itself through.
  const std::uint32_t delivered = newly_acked + newly_sacked;
  if (delivered == 0 && st.lost_out == 0) return;
  st.prr_delivered += delivered;
  const std::uint32_t pipe = st.packets_in_flight();
  std::int64_t sndcnt;
  if (pipe > st.ssthresh) {
    sndcnt = (static_cast<std::int64_t>(st.prr_delivered) * st.ssthresh +
              st.prior_cwnd - 1) / std::max<std::uint32_t>(1, st.prior_cwnd) -
             st.prr_out;
  } else {
    const std::int64_t delta = static_cast<std::int64_t>(st.ssthresh) - pipe;
    sndcnt = std::min<std::int64_t>(
        delta, std::max<std::int64_t>(
                   static_cast<std::int64_t>(st.prr_delivered) - st.prr_out,
                   newly_acked));
  }
  const bool fast_rexmit = st.lost_out > 0;
  sndcnt = std::max<std::int64_t>(sndcnt, fast_rexmit ? 1 : 0);
  // Floor at 1: with an empty pipe and zero send credit (a pure-SACK ACK
  // whose delivery was already spent), pipe + sndcnt is 0, and a zero
  // window would deadlock the connection until RTO (Linux warns on
  // snd_cwnd == 0 for the same reason).
  st.cwnd = std::max(
      1u, pipe + static_cast<std::uint32_t>(std::max<std::int64_t>(0, sndcnt)));
}

void TcpConnection::MaybeUndo(TdnState& st) {
  if (st.undo_marker == 0) return;
  const bool all_rtx_disproved = st.any_rtx_since_entry && st.undo_retrans == 0;
  const bool acked_without_rtx =
      !st.any_rtx_since_entry && snd_una_ >= st.high_seq;
  if (!all_rtx_disproved && !acked_without_rtx) return;

  // Spurious recovery: restore the window (Linux tcp_undo_cwnd_reduction).
  st.cwnd = st.cc->UndoCwnd(st);
  st.ssthresh = std::max(st.ssthresh, st.prior_ssthresh);
  st.ca_state = snd_una_ >= st.high_seq ? CaState::kOpen : CaState::kDisorder;
  st.undo_marker = 0;
  st.undo_events++;
  stats_.undo_events++;
  Trace(TracePoint::kTcpUndo, st.id, st.cwnd, st.ssthresh);
  st.cc->OnCwndEvent(st, CwndEvent::kLossUndone);
}

// ---------------------------------------------------------------------------
// Congestion transitions
// ---------------------------------------------------------------------------

void TcpConnection::EnterRecovery(TdnState& st) {
  st.prior_cwnd = st.cwnd;
  st.prior_ssthresh = st.ssthresh;
  st.ssthresh = std::max(2u, st.cc->SsThresh(st));
  st.ca_state = CaState::kRecovery;
  st.high_seq = snd_nxt_;
  st.undo_marker = snd_una_;
  st.undo_retrans = 0;
  st.any_rtx_since_entry = false;
  st.rtx_this_episode = 0;
  // PRR: the window converges to ssthresh proportionally to delivery.
  st.prr_delivered = 0;
  st.prr_out = 0;
  st.fast_recoveries++;
  stats_.fast_recoveries++;
}

void TcpConnection::EnterCwr(TdnState& st) {
  st.prior_cwnd = st.cwnd;
  st.prior_ssthresh = st.ssthresh;
  st.ssthresh = std::max(2u, st.cc->SsThresh(st));
  st.ca_state = CaState::kCwr;
  st.high_seq = snd_nxt_;
  st.undo_marker = 0;  // ECN reductions are never undone
  st.prr_delivered = 0;
  st.prr_out = 0;
}

void TcpConnection::EnterLoss(TdnState& st) {
  st.prior_cwnd = st.cwnd;
  st.prior_ssthresh = st.ssthresh;
  st.ssthresh = std::max(2u, st.cc->SsThresh(st));
  st.cwnd = 1;
  st.ca_state = CaState::kLoss;
  st.high_seq = snd_nxt_;
  st.undo_marker = snd_una_;
  st.undo_retrans = 0;
  st.any_rtx_since_entry = false;
  st.rtx_this_episode = 0;
  st.timeouts++;
  st.cc->OnRetransmitTimeout(st);
  // Everything outstanding on this TDN is presumed lost, including any
  // retransmissions in flight (Linux tcp_enter_loss clears SACKED_RETRANS).
  for (auto& seg : send_queue_.segments()) {
    if (seg.tdn != st.id || seg.sacked) continue;
    if (seg.retrans) {
      seg.retrans = false;
      st.retrans_out--;
    }
    if (!seg.lost) MarkSegmentLost(seg);
  }
}

// ---------------------------------------------------------------------------
// Sending
// ---------------------------------------------------------------------------

bool TcpConnection::PacingDefers() {
  if (!config_.pacing_enabled) return false;
  const RttEstimator& rtt = tdns_.active().rtt;
  if (!rtt.has_sample()) return false;  // no rate estimate yet
  if (next_send_time_ <= sim_.now()) return false;
  if (pace_timer_ == kInvalidEventId) {
    pace_timer_ = sim_.ScheduleAt(next_send_time_, [this] {
      pace_timer_ = kInvalidEventId;
      MaybeSend();
    });
  }
  return true;
}

void TcpConnection::NotePacedTransmission(std::uint32_t bytes) {
  if (!config_.pacing_enabled) return;
  const TdnState& st = tdns_.active();
  if (!st.rtt.has_sample()) return;
  // rate = gain * cwnd * mss / srtt; the gap for `bytes` is bytes/rate.
  const double rate_Bps = config_.pacing_gain *
                          static_cast<double>(st.cwnd) * config_.mss /
                          st.rtt.srtt().seconds();
  if (rate_Bps <= 0) return;
  const SimTime gap = SimTime::SecondsF(bytes / rate_Bps);
  const SimTime base = std::max(next_send_time_, sim_.now());
  next_send_time_ = base + gap;
}

bool TcpConnection::IsCwndLimited() const {
  const TdnState& st = tdns_.active();
  return st.packets_in_flight() >= st.cwnd;
}

void TcpConnection::MaybeSend() {
  if (!CanTransmit()) return;

  // §4.3 "any TDN": retransmissions go out first if any TDN is recovering,
  // regardless of which TDN originally carried the segment.
  while (tdns_.AnyRetransmitPending() && !IsCwndLimited()) {
    if (PacingDefers()) return;
    if (!RetransmitOneLost()) break;
  }

  while (CanSendNewSegment()) {
    if (PacingDefers()) return;
    SendNewSegment();
  }

  // The FIN follows the last buffered byte; it ignores cwnd/rwnd (its one
  // virtual byte never occupies the network).
  MaybeSendFin();

  // Linux tcp_is_cwnd_limited bookkeeping: growth is only justified when
  // the window, not the application, was the limit.
  TdnState& st = ActiveState();
  const bool have_data = unlimited_data_ || pending_bytes_ > 0;
  st.cwnd_limited = have_data && IsCwndLimited();

  // Zero-window deadlock breaker: data is waiting, nothing is in flight (so
  // no ACK will ever come back), and the peer's window — not cwnd — blocks
  // the next segment. Without a probe the connection would stall forever,
  // because the ACK reopening the window has no packet to ride on.
  if (have_data && outstanding_bytes() == 0 && !CanSendNewSegment()) {
    ArmPersist();
  }
}

bool TcpConnection::CanSendNewSegment() const {
  if (!CanTransmit() || fin_sent_) return false;
  if (!unlimited_data_ && pending_bytes_ == 0) return false;
  if (IsCwndLimited()) return false;
  const std::uint64_t wnd = std::min<std::uint64_t>(peer_rwnd_, config_.snd_buf_bytes);
  std::uint32_t next_len = config_.mss;
  if (!unlimited_data_ && !pending_.empty()) {
    next_len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(next_len, pending_.front().bytes));
  }
  return outstanding_bytes() + next_len <= wnd;
}

void TcpConnection::SendNewSegment(std::uint32_t len_cap) {
  std::uint32_t len = config_.mss;
  if (len_cap != 0) len = std::min(len, len_cap);
  bool has_dss = false;
  std::uint64_t dss = 0;
  if (!unlimited_data_ || !pending_.empty()) {
    PendingChunk& chunk = pending_.front();
    len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(len, chunk.bytes));
    has_dss = chunk.has_dss;
    dss = chunk.dss_seq;
    chunk.bytes -= len;
    if (chunk.has_dss) chunk.dss_seq += len;
    pending_bytes_ -= len;
    if (chunk.bytes == 0) pending_.pop_front();
  }

  TxSegment seg;
  seg.seq = snd_nxt_;
  seg.len = len;
  seg.tdn = ActiveTdn();
  seg.first_sent = seg.last_sent = sim_.now();
  seg.has_dss = has_dss;
  seg.dss_seq = dss;

  if (tdn_pointer_pending_) {
    tdn_change_.Advance(seg.seq, seg.tdn);
    tdn_pointer_pending_ = false;
  }

  send_queue_.Append(seg);
  TdnState& st = ActiveState();
  st.packets_out++;
  st.segments_sent++;
  if (st.ca_state == CaState::kRecovery || st.ca_state == CaState::kCwr) {
    st.prr_out++;
  }
  snd_nxt_ += len;

  TransmitSegment(send_queue_.segments().back(), /*is_retransmission=*/false);
  if (!rto_entry_.armed()) ArmRto();
}

void TcpConnection::MaybeSendFin() {
  if (!fin_pending_ || fin_sent_) return;
  if (pending_bytes_ > 0) return;  // FIN is the last byte of the stream
  // kClosing belongs here too: a simultaneous close can move FIN-WAIT-1 to
  // CLOSING while queued data still delays our FIN. The ACK of a FIN sent
  // from CLOSING advances to TIME-WAIT as usual (MaybeAdvanceCloseStates);
  // without this the FIN would never go out and both ends would hang.
  if (state_ != State::kFinWait1 && state_ != State::kLastAck &&
      state_ != State::kClosing) {
    return;
  }
  // Like the SYN, the FIN occupies one virtual sequence byte and rides the
  // normal scoreboard — SACKed, RACK-marked, RTO-retransmitted like data. It
  // is sent regardless of cwnd/rwnd (zero wire payload), so a zero-window
  // stall can never wedge the close.
  TxSegment seg;
  seg.seq = snd_nxt_;
  seg.len = 1;
  seg.fin = true;
  seg.tdn = ActiveTdn();
  seg.first_sent = seg.last_sent = sim_.now();
  if (tdn_pointer_pending_) {
    tdn_change_.Advance(seg.seq, seg.tdn);
    tdn_pointer_pending_ = false;
  }
  send_queue_.Append(seg);
  TdnState& st = ActiveState();
  st.packets_out++;
  st.segments_sent++;
  if (st.ca_state == CaState::kRecovery || st.ca_state == CaState::kCwr) {
    st.prr_out++;
  }
  fin_seq_ = seg.seq;
  fin_sent_ = true;
  fin_pending_ = false;
  snd_nxt_ += 1;
  ++stats_.fins_sent;
  TransmitSegment(send_queue_.segments().back(), /*is_retransmission=*/false);
  if (!rto_entry_.armed()) ArmRto();
}

bool TcpConnection::RetransmitOneLost() {
  for (auto& seg : send_queue_.segments()) {
    if (!seg.lost || seg.retrans) continue;
    TdnState& origin = tdns_.state(seg.tdn);
    TdnState& active = ActiveState();

    // Re-tag: the retransmission rides the currently active TDN, so its
    // accounting moves entirely to that TDN (keeping per-TDN sums exact).
    // The segment stays marked lost (Linux SACKED_RETRANS): the original is
    // still presumed gone; only the retransmission is in the pipe.
    origin.packets_out--;
    origin.lost_out--;
    // Undo bookkeeping belongs to the recovery *episode*, pinned at the
    // first retransmission. Re-retransmissions after a TDN switch must not
    // re-point undo_tdn at the new TDN, or the eventual DSACK would credit —
    // and MaybeUndo would restore — the wrong TDN's window.
    if (!seg.ever_retrans) seg.undo_tdn = seg.tdn;
    TdnState& episode = tdns_.state(seg.undo_tdn);
    episode.undo_retrans++;
    episode.any_rtx_since_entry = true;
    episode.rtx_this_episode++;
    seg.tdn = ActiveTdn();
    active.packets_out++;
    active.lost_out++;
    active.retrans_out++;
    if (active.ca_state == CaState::kRecovery ||
        active.ca_state == CaState::kCwr) {
      active.prr_out++;
    }
    seg.retrans = true;
    seg.ever_retrans = true;
    seg.last_sent = sim_.now();
    seg.transmissions++;

    ++stats_.retransmissions;
    TransmitSegment(seg, /*is_retransmission=*/true);
    return true;
  }
  return false;
}

void TcpConnection::TransmitSegment(TxSegment& seg, bool is_retransmission) {
  Packet p;
  p.id = sim_.NextPacketId();
  p.type = PacketType::kData;
  p.flow = flow_;
  p.dst = peer_;
  p.seq = seg.seq;
  p.payload = (seg.syn || seg.fin) ? 0 : seg.len;
  p.syn = seg.syn;
  // A SYN segment retransmitted from any state past kSynSent is our SYN-ACK
  // (the active opener's SYN is retired before it leaves kSynSent): carry the
  // ACK flag so an established peer recognizes it and re-ACKs, retiring the
  // virtual byte an implicit handshake completion left on the scoreboard.
  if (seg.syn && state_ != State::kSynSent) p.ack = 1;
  p.fin = seg.fin;
  p.size_bytes = p.payload + config_.header_bytes;
  if (config_.ecn_enabled || ActiveState().cc->WantsEcn()) p.ecn = Ecn::kEct0;
  if (tdtcp_active_) p.data_tdn = seg.tdn;  // TD_DATA_ACK, D bit
  p.pinned_path = config_.pin_path;
  p.subflow = config_.subflow_id;
  p.is_mptcp = config_.mptcp;
  if (seg.has_dss) {
    p.has_dss = true;
    p.dss_seq = seg.dss_seq;
  }
  p.sent_time = sim_.now();
  if (!is_retransmission) ++stats_.segments_sent;
  if (is_retransmission) {
    Trace(TracePoint::kTcpSackEdit,
          static_cast<std::uint64_t>(TraceSackEdit::kRetrans), seg.seq,
          seg.len, seg.tdn);
  }
  NotePacedTransmission(p.size_bytes);
  if (has_tap_) tap_(TapDirection::kTx, p);
  host_->Send(std::move(p));
}

// ---------------------------------------------------------------------------
// Timers
// ---------------------------------------------------------------------------

SimTime TcpConnection::RtoForSegment(const TxSegment& seg) const {
  // §4.4: TDTCP cannot predict which TDN the ACK will return on, so it
  // pessimistically assumes the slowest.
  return tdns_.RtoFor(seg.tdn, tdtcp_active_ && config_.synthesized_rto);
}

void TcpConnection::ArmRto() {
  host_->wheel().Disarm(rto_entry_);
  if (send_queue_.Empty()) return;
  const TxSegment& head = send_queue_.front();
  SimTime deadline =
      head.last_sent + RtoForSegment(head) * (std::int64_t{1} << rto_backoff_);
  if (deadline <= sim_.now()) deadline = sim_.now() + SimTime::Nanos(1);
  // The wheel quantizes deadlines up to its tick; trace the actual fire time
  // so trace-replay sees the time the callback really runs at.
  deadline = host_->wheel().Arm(rto_entry_, deadline);
  Trace(TracePoint::kTcpTimerArm,
        static_cast<std::uint64_t>(TraceTimer::kRto),
        static_cast<std::uint64_t>(deadline.picos()));
}

void TcpConnection::OnRtoFire() {
  if (send_queue_.Empty()) return;
  TxSegment& head = send_queue_.front();
  const SimTime deadline =
      head.last_sent + RtoForSegment(head) * (std::int64_t{1} << rto_backoff_);
  if (deadline > sim_.now()) {
    // Head was (re)transmitted since the timer was set; re-arm.
    ArmRto();
    return;
  }
  ++stats_.timeouts;
  Trace(TracePoint::kTcpTimerFire,
        static_cast<std::uint64_t>(TraceTimer::kRto));

  // The timeout supersedes any pending tail-loss probe: recovery now belongs
  // to the RTO machinery. A TLP left armed here would fire mid-Loss and
  // inject a stray retransmission into the carefully reduced pipe.
  if (tlp_entry_.armed()) {
    host_->wheel().Disarm(tlp_entry_);
    Trace(TracePoint::kTcpTimerCancel,
          static_cast<std::uint64_t>(TraceTimer::kTlp));
  }
  tlp_in_flight_ = false;

  // Handshake retransmission: resend the SYN / SYN-ACK itself — up to the
  // cap, beyond which the peer is presumed dead. transmissions starts at 1,
  // so the cap counts *re*transmissions. Only the two genuine handshake
  // states qualify: an implicit handshake completion (first data segment)
  // leaves the SYN-ACK byte unacked on the scoreboard, and an RTO on it
  // from kEstablished or a closing state must use the normal data path —
  // ResetToListen on a connection that has consumed stream data would
  // rewind rcv_nxt and strand the teardown.
  if (head.syn &&
      (state_ == State::kSynSent || state_ == State::kSynReceived)) {
    const std::uint32_t cap = state_ == State::kSynSent
                                  ? config_.max_syn_retries
                                  : config_.max_synack_retries;
    if (head.transmissions > cap) {
      if (state_ == State::kSynSent) {
        ToClosed(CloseReason::kConnectTimeout);
      } else {
        ++stats_.synack_give_ups;
        ResetToListen();
      }
      return;
    }
    head.last_sent = sim_.now();
    head.transmissions++;
    head.ever_retrans = true;
    rto_backoff_ = std::min(rto_backoff_ + 1, 8u);
    ResendSynPacket();
    ArmRto();
    return;
  }

  // Established-family give-up: consecutive RTOs without a single cumulative
  // advance mean the peer (or its path) is gone. Abort with an RST on the
  // off-chance the peer is half-alive. When what's timing out is a zero-
  // window probe, the stall is a persist give-up: it gets the persist retry
  // budget and is reported as kPersistTimeout.
  ++rto_retries_;
  const std::uint32_t retry_cap = persist_probing_
                                      ? config_.max_persist_retries
                                      : config_.max_rto_retries;
  if (rto_retries_ > retry_cap) {
    Abort(persist_probing_ ? CloseReason::kPersistTimeout
                           : CloseReason::kRetryLimit);
    return;
  }

  TdnState& st = tdns_.state(head.tdn);
  const CaState prev_ca = st.ca_state;
  const std::uint32_t prev_cwnd = st.cwnd;
  const std::uint32_t prev_ssthresh = st.ssthresh;
  if (st.ca_state != CaState::kLoss) {
    EnterLoss(st);
  } else {
    // Repeated timeout: the in-flight retransmissions are presumed lost
    // too. A segment whose original was SACKed meanwhile needs no further
    // retransmission — just retire its rtx.
    for (auto& seg : send_queue_.segments()) {
      if (seg.tdn != st.id || !seg.retrans) continue;
      seg.retrans = false;
      st.retrans_out--;
      if (!seg.lost && !seg.sacked) {
        seg.lost = true;
        st.lost_out++;
      }
    }
  }
  rto_backoff_ = std::min(rto_backoff_ + 1, 8u);
  if (has_trace_) {
    if (st.ca_state != prev_ca) {
      Trace(TracePoint::kTcpCaStateChange, st.id,
            static_cast<std::uint64_t>(prev_ca),
            static_cast<std::uint64_t>(st.ca_state));
    }
    if (st.cwnd != prev_cwnd || st.ssthresh != prev_ssthresh) {
      Trace(TracePoint::kTcpCwndUpdate, st.id, st.cwnd, st.ssthresh);
    }
  }
  RunChecker(TcpInvariantChecker::Event::kRto);
  // Like Linux tcp_retransmit_timer: the timeout itself retransmits the head
  // segment unconditionally, outside the cwnd-limited transmit loop. Under
  // TDTCP the active TDN may be pipe-full with its own (healthy) flight while
  // the timed-out TDN's losses starve; recovery must not wait on it.
  RetransmitOneLost();
  MaybeSend();
  ArmRto();
}

void TcpConnection::ArmTlp() {
  host_->wheel().Disarm(tlp_entry_);
  if (!config_.tlp_enabled || tlp_in_flight_) return;
  if (send_queue_.Empty()) return;
  if (tdns_.AnyRetransmitPending()) return;  // RTO/recovery owns the clock
  const RttEstimator& rtt = tdns_.active().rtt;
  SimTime pto = rtt.has_sample() ? rtt.srtt() * 2 : config_.rtt.initial_rto;
  pto = std::max(pto, SimTime::Micros(300));
  const SimTime deadline = host_->wheel().Arm(tlp_entry_, sim_.now() + pto);
  Trace(TracePoint::kTcpTimerArm,
        static_cast<std::uint64_t>(TraceTimer::kTlp),
        static_cast<std::uint64_t>(deadline.picos()));
}

void TcpConnection::OnTlpFire() {
  if (send_queue_.Empty() || tlp_in_flight_) return;
  if (!CanTransmit()) return;
  Trace(TracePoint::kTcpTimerFire,
        static_cast<std::uint64_t>(TraceTimer::kTlp));
  ++stats_.tlp_probes;
  tlp_in_flight_ = true;
  if (CanSendNewSegment()) {
    SendNewSegment();
    return;
  }
  // Probe with the highest unSACKed segment.
  auto& segs = send_queue_.segments();
  for (auto it = segs.rbegin(); it != segs.rend(); ++it) {
    TxSegment& seg = *it;
    if (seg.sacked || seg.lost) continue;
    TdnState& origin = tdns_.state(seg.tdn);
    TdnState& active = ActiveState();
    origin.packets_out--;
    if (seg.retrans) { origin.retrans_out--; seg.retrans = false; }
    // Same episode-pinning rule as RetransmitOneLost: only the first
    // retransmission establishes which TDN's undo bookkeeping owns this
    // segment.
    if (!seg.ever_retrans) seg.undo_tdn = seg.tdn;
    seg.tdn = ActiveTdn();
    active.packets_out++;
    active.retrans_out++;
    seg.retrans = true;
    seg.ever_retrans = true;
    seg.last_sent = sim_.now();
    seg.transmissions++;
    ++stats_.retransmissions;
    TransmitSegment(seg, /*is_retransmission=*/true);
    ArmRto();
    return;
  }
}

void TcpConnection::ArmPersist() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait) return;
  if (persist_entry_.armed()) return;
  // Exponential backoff from the active TDN's RTO, capped like the RTO
  // itself (RFC 9293 recommends the same clamped doubling). Only the shift
  // is capped: persist_backoff_ keeps counting toward the give-up limit.
  SimTime interval =
      tdns_.RtoFor(ActiveTdn(), tdtcp_active_ && config_.synthesized_rto) *
      (std::int64_t{1} << std::min(persist_backoff_, 8u));
  interval = std::min(interval, config_.rtt.max_rto);
  const SimTime deadline =
      host_->wheel().Arm(persist_entry_, sim_.now() + interval);
  Trace(TracePoint::kTcpTimerArm,
        static_cast<std::uint64_t>(TraceTimer::kPersist),
        static_cast<std::uint64_t>(deadline.picos()));
}

void TcpConnection::CancelPersist() {
  persist_backoff_ = 0;
  persist_probing_ = false;
  if (!persist_entry_.armed()) return;
  host_->wheel().Disarm(persist_entry_);
  Trace(TracePoint::kTcpTimerCancel,
        static_cast<std::uint64_t>(TraceTimer::kPersist));
}

void TcpConnection::OnPersistFire() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait) return;
  const bool have_data = unlimited_data_ || pending_bytes_ > 0;
  // Window reopened or data drained since arming: persist mode is over.
  if (!have_data || outstanding_bytes() > 0 || CanSendNewSegment()) {
    MaybeSend();
    return;
  }
  Trace(TracePoint::kTcpTimerFire,
        static_cast<std::uint64_t>(TraceTimer::kPersist));
  // Defense in depth: a peer that keeps the connection in persist mode past
  // the probe budget is treated as dead. In practice a dead peer is caught
  // on the RTO side (the probe below is real data, so its retransmissions
  // run on the RTO timer and the give-up there reports kPersistTimeout while
  // persist_probing_ is set); this branch only fires if probing somehow
  // recurs without either an answer or an RTO exhaustion.
  if (persist_backoff_ >= config_.max_persist_retries) {
    Abort(CloseReason::kPersistTimeout);
    return;
  }
  // 1-byte window probe: real new data, so the peer's ACK both answers the
  // probe and carries the current window. It is retransmittable through the
  // normal machinery if lost.
  ++stats_.persist_probes;
  persist_probing_ = true;
  SendNewSegment(/*len_cap=*/1);
  ++persist_backoff_;
  ArmPersist();
}

void TcpConnection::CancelTimers() {
  // Wheel disarm is idempotent, so this is safe to repeat (double close).
  TimerWheel& wheel = host_->wheel();
  wheel.Disarm(rto_entry_);
  wheel.Disarm(tlp_entry_);
  if (pace_timer_ != kInvalidEventId) {
    sim_.Cancel(pace_timer_);
    pace_timer_ = kInvalidEventId;
  }
  wheel.Disarm(persist_entry_);
  persist_backoff_ = 0;
  persist_probing_ = false;
  wheel.Disarm(time_wait_entry_);
}

// ---------------------------------------------------------------------------
// Host recovery agent hooks
// ---------------------------------------------------------------------------

void TcpConnection::CountSpuriousForcing() {
  ++stats_.recovery_spurious;
  if (recovery_agent_ != nullptr) recovery_agent_->NoteSpurious();
}

bool TcpConnection::RecoveryOutstanding() const {
  // Only synchronized, transmit-capable states qualify: the handshake has
  // its own retry ladder and TimeWait/Closed have nothing to rescue.
  if (!CanTransmit()) return false;
  // A zero-window stall is flow control, not loss; the persist machinery
  // owns that clock and a forced retransmit would just burn a probe.
  if (persist_probing_) return false;
  return !send_queue_.Empty() && snd_nxt_ > snd_una_;
}

SimTime TcpConnection::RecoveryRttHint() const {
  // Pessimistic like the synthesized RTO (§4.4): the agent cannot know which
  // TDN the rescue's ACK will return on, so the quiet threshold scales with
  // the slowest measured path.
  SimTime hint = SimTime::Zero();
  for (std::size_t i = 0; i < tdns_.num_tdns(); ++i) {
    const RttEstimator& rtt = tdns_.state(static_cast<TdnId>(i)).rtt;
    if (rtt.has_sample() && rtt.srtt() > hint) hint = rtt.srtt();
  }
  if (hint == SimTime::Zero()) hint = config_.rtt.initial_rto;
  return hint;
}

bool TcpConnection::ForceRecoveryRetransmit(SimTime quiet, SimTime threshold) {
  if (!RecoveryOutstanding()) return false;
  // The oldest unacked segment is the queue head. A SYN keeps its own retry
  // ladder (forcing would bypass the handshake caps); a SACKed head was
  // delivered and its cumulative ACK is presumably in flight; a head with a
  // retransmission outstanding already has its rescue in the pipe.
  TxSegment& head = send_queue_.front();
  if (head.syn || head.sacked || head.retrans) return false;

  // The forcing is a loss signal for the head's TDN: arm that TDN's undo
  // bookkeeping (undo_marker/undo_retrans) by entering Recovery, so a later
  // DSACK proving the forcing spurious undoes cwnd on the right TDN.
  TdnState& st = tdns_.state(head.tdn);
  const CaState prev_ca = st.ca_state;
  const std::uint32_t prev_cwnd = st.cwnd;
  const std::uint32_t prev_ssthresh = st.ssthresh;
  if (st.ca_state == CaState::kOpen || st.ca_state == CaState::kDisorder) {
    EnterRecovery(st);
  }
  if (!head.lost) MarkSegmentLost(head);
  if (has_trace_) {
    if (st.ca_state != prev_ca) {
      Trace(TracePoint::kTcpCaStateChange, st.id,
            static_cast<std::uint64_t>(prev_ca),
            static_cast<std::uint64_t>(st.ca_state));
    }
    if (st.cwnd != prev_cwnd || st.ssthresh != prev_ssthresh) {
      Trace(TracePoint::kTcpCwndUpdate, st.id, st.cwnd, st.ssthresh);
    }
  }
  // The head is now the first lost-without-rtx segment, so RetransmitOneLost
  // sends exactly it — through the normal episode pinning (undo_tdn,
  // ever_retrans for Karn) and per-TDN accounting, outside the cwnd-limited
  // transmit loop like an RTO's unconditional head retransmission.
  if (!RetransmitOneLost()) return false;
  head.forced_rtx = true;
  ++stats_.recovery_forced;
  Trace(TracePoint::kRecoveryForced, head.seq,
        static_cast<std::uint64_t>(head.undo_tdn),
        static_cast<std::uint64_t>(quiet.picos()),
        static_cast<std::uint64_t>(threshold.picos()));
  // Re-arm from the fresh transmission WITHOUT bumping rto_backoff_: the
  // agent, not the exponential ladder, paces recovery for quiet flows.
  ArmRto();
  RunChecker(TcpInvariantChecker::Event::kLoss);
  return true;
}

// ---------------------------------------------------------------------------
// reTCP circuit echo
// ---------------------------------------------------------------------------

void TcpConnection::NoteCircuitEcho(bool circuit) {
  if (circuit_echo_seen_ && circuit == last_circuit_echo_) return;
  const bool first = !circuit_echo_seen_;
  circuit_echo_seen_ = true;
  last_circuit_echo_ = circuit;
  if (first && !circuit) return;  // initial state on the packet network
  TdnState& st = ActiveState();
  st.cc->OnCircuitTransition(st, circuit, /*imminent=*/false);
}

}  // namespace tdtcp
