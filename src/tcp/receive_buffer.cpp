#include "tcp/receive_buffer.hpp"

#include <algorithm>

namespace tdtcp {

ReceiveBuffer::Result ReceiveBuffer::OnData(std::uint64_t seq, std::uint32_t len,
                                            bool has_dss, std::uint64_t dss_seq,
                                            SimTime now) {
  Result result;
  const std::uint64_t end = seq + len;

  // Fully old data: duplicate; report a DSACK block (RFC 2883).
  if (end <= rcv_nxt_ || ooo_.contains(seq)) {
    result.duplicate = true;
    result.dsack = SackBlock{seq, end};
    return result;
  }
  if (seq < rcv_nxt_) {
    // Partial overlap with delivered data; trim the stale prefix.
    const std::uint64_t trim = rcv_nxt_ - seq;
    seq = rcv_nxt_;
    len -= static_cast<std::uint32_t>(trim);
    if (has_dss) dss_seq += trim;
  }

  if (seq == rcv_nxt_) {
    // In-order: deliver it plus any now-contiguous buffered segments.
    result.delivered.push_back(Delivered{seq, len, has_dss, dss_seq});
    rcv_nxt_ = seq + len;
    auto it = ooo_.begin();
    while (it != ooo_.end() && it->first == rcv_nxt_) {
      result.delivered.push_back(
          Delivered{it->first, it->second.len, it->second.has_dss, it->second.dss_seq});
      rcv_nxt_ += it->second.len;
      ooo_bytes_ -= it->second.len;
      it = ooo_.erase(it);
    }
    // Drop ranges that are now fully delivered.
    std::erase_if(ranges_, [this](const Range& r) { return r.end <= rcv_nxt_; });
    for (auto& r : ranges_) r.start = std::max(r.start, rcv_nxt_);
    return result;
  }

  // Out of order: buffer and record for SACK.
  result.out_of_order = true;
  ooo_.emplace(seq, OooSegment{len, has_dss, dss_seq});
  ooo_bytes_ += len;
  TouchRange(seq, seq + len, now);
  return result;
}

void ReceiveBuffer::TouchRange(std::uint64_t start, std::uint64_t end, SimTime now) {
  // Merge with any adjacent/overlapping ranges; the merged range is "most
  // recent" per RFC 2018's guidance to report the newest block first.
  Range merged{start, end, now};
  std::erase_if(ranges_, [&merged](const Range& r) {
    if (r.end < merged.start || r.start > merged.end) return false;
    merged.start = std::min(merged.start, r.start);
    merged.end = std::max(merged.end, r.end);
    return true;
  });
  ranges_.push_back(merged);
}

std::vector<SackBlock> ReceiveBuffer::BuildSackBlocks(const Result& last) const {
  std::vector<SackBlock> blocks;
  if (last.duplicate) blocks.push_back(last.dsack);

  std::vector<Range> sorted = ranges_;
  std::sort(sorted.begin(), sorted.end(),
            [](const Range& a, const Range& b) { return a.last_touch > b.last_touch; });
  for (const auto& r : sorted) {
    if (blocks.size() >= kMaxSackBlocks) break;
    blocks.push_back(SackBlock{r.start, r.end});
  }
  return blocks;
}

}  // namespace tdtcp
