// Host-level shared recovery agent (T-RACKs-style, PAPERS.md).
//
// The RTO tail is the short-flow killer in this RDCN: a tail-end drop on a
// flow too short for dupACK/SACK recovery waits out a full — often
// exponentially backed-off — RTO, and the rotation week can phase-lock those
// retries into the same congested day. Instead of tightening every
// connection's own timer, one agent per host tracks every active
// connection's last-cumulative-ACK time in a flat intrusive list and, on a
// single coarse epoch timer (a few RTT quanta, serviced by the host's
// TimerWheel), forces an early retransmit of the oldest unacked segment for
// any flow quiet past an adaptive threshold.
//
// The forced retransmit routes through the connection's ordinary scoreboard
// machinery (MarkSegmentLost + RetransmitOneLost), so:
//  - Karn's rule holds: the segment is ever_retrans, never RTT-sampled, and
//    its ACK does not reset the RTO backoff;
//  - the per-TDN recovery episode pins undo_tdn at first retransmission, so
//    a DSACK proving the forcing spurious undoes cwnd on the right TDN;
//  - the InvariantChecker recounts clean — lost_out/retrans_out move through
//    the same single entry points as RACK/RTO losses.
// Crucially the RTO is re-armed from the fresh transmission *without*
// bumping rto_backoff_: the agent, not the exponential ladder, paces
// recovery for quiet flows.
//
// Threshold adaptation: quiet > clamp(max(min_linger, srtt_mult * srtt) *
// scale, min_linger, max_linger) forces a retransmit. Every DSACK-detected
// spurious forcing multiplies `scale` up (the agent was too eager for this
// host's RTT population); each clean epoch decays it back toward 1.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/timer_wheel.hpp"

namespace tdtcp {

class Host;
class TcpConnection;

// The recovery axis benches/experiments compare: no fast tail recovery at
// all (pure RTO), the default RACK-TLP stack, or RACK-TLP plus the agent.
enum class RecoveryMode { kOff, kRack, kAgent };

const char* RecoveryModeName(RecoveryMode m);
// "off" | "rack" | "agent"; throws std::invalid_argument otherwise.
RecoveryMode RecoveryModeFromName(const std::string& name);

struct RecoveryConfig {
  // Shared timer quantum: every connection on the host is scanned once per
  // epoch. A few RTT quanta — coarse enough to be one timer, fine enough
  // that a rescue lands well before the first backed-off RTO.
  SimTime epoch = SimTime::Micros(100);
  // Threshold clamp and shape (see header comment).
  SimTime min_linger = SimTime::Micros(400);
  SimTime max_linger = SimTime::Millis(4);
  double srtt_mult = 2.0;
  // Adaptive scale: grows on every spurious forcing, decays per clean epoch.
  double spurious_growth = 1.5;
  double decay = 0.999;
  double max_scale = 8.0;
};

struct RecoveryAgentStats {
  std::uint64_t epochs = 0;     // scan passes run
  std::uint64_t forced = 0;     // forced retransmits issued
  std::uint64_t rescued = 0;    // forced retransmits later cumulatively acked
  std::uint64_t spurious = 0;   // forcings disproved by DSACK
};

class RecoveryAgent {
 public:
  // Intrusive list entry, embedded in TcpConnection. last_progress is the
  // connection's last cumulative-ACK advance (or the moment data was first
  // outstanding); the agent owns every other field.
  struct Node {
    Node* prev = nullptr;
    Node* next = nullptr;
    TcpConnection* conn = nullptr;
    RecoveryAgent* agent = nullptr;  // non-null while registered
    SimTime last_progress;
  };

  // Registers itself on `host` (connections created afterwards find it via
  // Host::recovery_agent()) and starts the epoch timer on the host's wheel.
  RecoveryAgent(Simulator& sim, Host& host, RecoveryConfig cfg = {});
  ~RecoveryAgent();
  RecoveryAgent(const RecoveryAgent&) = delete;
  RecoveryAgent& operator=(const RecoveryAgent&) = delete;

  void Register(TcpConnection& conn, Node& node);
  void Deregister(Node& node);  // idempotent; safe on an unregistered node

  // Connection-side notifications.
  void NoteProgress(Node& node) { node.last_progress = sim_.now(); }
  void NoteRescued() { ++stats_.rescued; }
  void NoteSpurious();

  const RecoveryAgentStats& stats() const { return stats_; }
  double scale() const { return scale_; }
  std::size_t registered() const { return registered_; }
  const RecoveryConfig& config() const { return cfg_; }

 private:
  static void EpochTrampoline(void* self) {
    static_cast<RecoveryAgent*>(self)->OnEpoch();
  }
  void OnEpoch();
  SimTime ThresholdFor(const TcpConnection& conn) const;

  Simulator& sim_;
  Host& host_;
  RecoveryConfig cfg_;
  TimerWheel::Timer epoch_timer_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t registered_ = 0;
  double scale_ = 1.0;
  RecoveryAgentStats stats_;
};

}  // namespace tdtcp
