// Runtime TCP invariant checker.
//
// Linux's TCP accounting is notoriously easy to corrupt one counter at a
// time — the pipe identity (packets_out == sacked_out + lost_out +
// in_flight - retrans_out) is exactly what the kernel's tcp_verify_left_out
// warns about, and TDTCP multiplies the surface by keeping one copy per
// TDN (§3.1/§4.3). The checker recomputes every per-TDN counter from the
// scoreboard after each ACK, loss-marking pass, RTO, and TDN switch, and
// validates sequence monotonicity, window floors, and per-TDN isolation
// across switches. On violation it dumps the scoreboard, every TDN's
// congestion state, and the recent fault trace (when a FaultInjector is
// armed), then throws std::logic_error so tests fail immediately at the
// first corrupt state instead of ten seconds of simulated time later.
//
// Enabled by default on every connection (TcpConfig::invariant_checks);
// cost is O(scoreboard) per checked event.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace tdtcp {

class TcpConnection;

// Implemented by the fault layer (FaultInjector) so a violation report can
// include the fault history that led up to the broken state. Declared here,
// not in src/fault/, so the TCP stack never depends on the fault library.
class FaultTraceSource {
 public:
  virtual ~FaultTraceSource() = default;
  virtual void DumpRecentFaults(std::FILE* out, std::size_t last_n) const = 0;
};

class TcpInvariantChecker {
 public:
  enum class Event : std::uint8_t { kAck, kLoss, kTdnSwitch, kRto, kClose };
  static const char* EventName(Event ev);

  // Validates the connection's full accounting state; throws
  // std::logic_error (after dumping diagnostics to stderr) on violation.
  void Check(TcpConnection& conn, Event ev);

  // Snapshot per-TDN congestion windows immediately before a TDN switch so
  // the kTdnSwitch check can verify isolation: switching TDNs must not
  // touch any non-active TDN's cwnd/ssthresh (§3.1's "snapshot view").
  void WillSwitchTdn(const TcpConnection& conn);

  std::uint64_t checks_run() const { return checks_run_; }

 private:
  // Per-TDN counters recomputed from the scoreboard (the ground truth).
  struct Recount {
    std::uint32_t packets_out = 0;
    std::uint32_t sacked_out = 0;
    std::uint32_t lost_out = 0;
    std::uint32_t retrans_out = 0;
  };

  [[noreturn]] void Violate(TcpConnection& conn, Event ev,
                            const std::string& what);

  std::uint64_t checks_run_ = 0;
  // Recount scratch: Check runs on every ACK, so the recount buffer is a
  // member rather than a fresh per-call vector.
  std::vector<Recount> recount_scratch_;
  // Monotonicity watermarks.
  std::uint64_t last_snd_una_ = 0;
  std::uint64_t last_rcv_nxt_ = 0;
  // Pre-switch (cwnd, ssthresh) per TDN, captured by WillSwitchTdn.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pre_switch_windows_;
  std::uint8_t pre_switch_active_ = 0;
  bool have_switch_snapshot_ = false;
};

}  // namespace tdtcp
