// The sender's retransmission queue and SACK scoreboard.
//
// Each entry is one transmitted segment, tagged with the TDN it was (last)
// sent on — the per-segment tagging §3.1 adds so ACK processing can credit
// the right TDN ("specific TDN" class, §4.3) and the relaxed reordering
// heuristic (§3.4) can tell delayed cross-TDN traffic from true loss.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tdtcp {

struct TxSegment {
  std::uint64_t seq = 0;
  std::uint32_t len = 0;           // payload bytes (SYN: 1 virtual byte)
  TdnId tdn = 0;                   // TDN of the most recent transmission
  SimTime first_sent;
  SimTime last_sent;
  std::uint32_t transmissions = 1;
  bool syn = false;
  bool fin = false;  // sequence-occupying FIN (1 virtual byte, like the SYN)
  bool sacked = false;
  bool lost = false;
  bool retrans = false;        // a retransmission is currently in flight
  bool ever_retrans = false;   // Karn: never RTT-sample this segment
  // The host RecoveryAgent forced this segment's (re)transmission; cleared
  // when the forcing is resolved (cumulative ACK = rescued, DSACK =
  // spurious) so each forcing is counted exactly once.
  bool forced_rtx = false;
  // TDN whose recovery episode retransmitted this segment (DSACK undo
  // credits that TDN's undo_retrans).
  TdnId undo_tdn = 0;
  // MPTCP data-sequence mapping of the first payload byte (valid if has_dss).
  bool has_dss = false;
  std::uint64_t dss_seq = 0;

  std::uint64_t end_seq() const { return seq + len; }
};

class SendQueue {
 public:
  // Appends a newly transmitted segment (in sequence order).
  void Append(TxSegment seg);

  bool Empty() const { return segs_.empty(); }
  std::size_t size() const { return segs_.size(); }
  const TxSegment& front() const { return segs_.front(); }
  TxSegment& front() { return segs_.front(); }

  // Removes segments fully covered by cumulative `ack` and invokes `fn` on
  // each before removal (per-TDN accounting, RTT sampling).
  void AckThrough(std::uint64_t ack, const std::function<void(const TxSegment&)>& fn);

  // Marks segments fully covered by the SACK blocks; invokes `fn` for each
  // segment that transitions to sacked. Returns the count newly sacked.
  std::uint32_t ApplySack(std::span<const SackBlock> blocks,
                          const std::function<void(TxSegment&)>& fn);

  // Highest sequence that has ever been SACKed (0 if none).
  std::uint64_t highest_sacked() const { return highest_sacked_; }

  // Iterate over all segments (loss marking, retransmit scans).
  std::deque<TxSegment>& segments() { return segs_; }
  const std::deque<TxSegment>& segments() const { return segs_; }

  // The first segment covering `seq`, or nullptr.
  TxSegment* Find(std::uint64_t seq);

  // Sum of per-flag counts (consistency checking in tests).
  std::uint32_t CountSacked() const;
  std::uint32_t CountLost() const;
  std::uint32_t CountRetrans() const;

 private:
  std::deque<TxSegment> segs_;
  std::uint64_t highest_sacked_ = 0;
};

}  // namespace tdtcp
