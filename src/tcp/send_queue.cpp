#include "tcp/send_queue.hpp"

#include <algorithm>
#include <cassert>

namespace tdtcp {

void SendQueue::Append(TxSegment seg) {
  assert(segs_.empty() || seg.seq >= segs_.back().end_seq());
  segs_.push_back(seg);
}

void SendQueue::AckThrough(std::uint64_t ack,
                           const std::function<void(const TxSegment&)>& fn) {
  while (!segs_.empty() && segs_.front().end_seq() <= ack) {
    fn(segs_.front());
    segs_.pop_front();
  }
}

std::uint32_t SendQueue::ApplySack(std::span<const SackBlock> blocks,
                                   const std::function<void(TxSegment&)>& fn) {
  std::uint32_t newly = 0;
  for (auto& seg : segs_) {
    if (seg.sacked) continue;
    for (const auto& b : blocks) {
      if (seg.seq >= b.start && seg.end_seq() <= b.end) {
        seg.sacked = true;
        highest_sacked_ = std::max(highest_sacked_, seg.end_seq());
        fn(seg);
        ++newly;
        break;
      }
    }
  }
  return newly;
}

TxSegment* SendQueue::Find(std::uint64_t seq) {
  for (auto& seg : segs_) {
    if (seq >= seg.seq && seq < seg.end_seq()) return &seg;
  }
  return nullptr;
}

std::uint32_t SendQueue::CountSacked() const {
  return static_cast<std::uint32_t>(
      std::count_if(segs_.begin(), segs_.end(), [](auto& s) { return s.sacked; }));
}
std::uint32_t SendQueue::CountLost() const {
  return static_cast<std::uint32_t>(
      std::count_if(segs_.begin(), segs_.end(), [](auto& s) { return s.lost; }));
}
std::uint32_t SendQueue::CountRetrans() const {
  return static_cast<std::uint32_t>(
      std::count_if(segs_.begin(), segs_.end(), [](auto& s) { return s.retrans; }));
}

}  // namespace tdtcp
