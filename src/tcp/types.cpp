#include "tcp/types.hpp"

namespace tdtcp {

const char* CaStateName(CaState s) {
  switch (s) {
    case CaState::kOpen: return "Open";
    case CaState::kDisorder: return "Disorder";
    case CaState::kCwr: return "CWR";
    case CaState::kRecovery: return "Recovery";
    case CaState::kLoss: return "Loss";
  }
  return "?";
}

const char* CloseReasonName(CloseReason r) {
  switch (r) {
    case CloseReason::kNone: return "None";
    case CloseReason::kNormal: return "Normal";
    case CloseReason::kPeerReset: return "PeerReset";
    case CloseReason::kConnectTimeout: return "ConnectTimeout";
    case CloseReason::kSynAckTimeout: return "SynAckTimeout";
    case CloseReason::kRetryLimit: return "RetryLimit";
    case CloseReason::kPersistTimeout: return "PersistTimeout";
    case CloseReason::kUserAbort: return "UserAbort";
  }
  return "?";
}

}  // namespace tdtcp
