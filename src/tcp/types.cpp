#include "tcp/types.hpp"

namespace tdtcp {

const char* CaStateName(CaState s) {
  switch (s) {
    case CaState::kOpen: return "Open";
    case CaState::kDisorder: return "Disorder";
    case CaState::kCwr: return "CWR";
    case CaState::kRecovery: return "Recovery";
    case CaState::kLoss: return "Loss";
  }
  return "?";
}

}  // namespace tdtcp
