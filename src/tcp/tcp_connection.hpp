// The TCP engine.
//
// One class implements every sender/receiver variant in the paper:
//   * classic single-path TCP (CUBIC, DCTCP, reTCP): one TdnState,
//     notifications ignored;
//   * TDTCP: N TdnStates, ToR notifications switch the active one, segments
//     carry TD_DATA_ACK TDN tags, the relaxed reordering heuristic and
//     per-TDN RTT filtering are active;
//   * MPTCP subflows: pinned to one network, carrying DSS mappings, driven
//     by the meta-connection in src/mptcp/.
//
// The engine mirrors the Linux machinery the paper modifies: a SACK
// scoreboard, the Open/Disorder/CWR/Recovery/Loss state machine
// (per TDN, as in Fig. 4), RACK-style time-based loss detection with
// TLP probes, RTO with exponential backoff, DSACK-based undo of spurious
// recoveries, and ECN (DCTCP-style per-packet echo).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "net/host.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"
#include "tcp/invariant_checker.hpp"
#include "tcp/recovery_agent.hpp"
#include "tcp/receive_buffer.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/send_queue.hpp"
#include "tcp/types.hpp"
#include "tdtcp/congestion_control.hpp"
#include "tdtcp/reordering.hpp"
#include "tdtcp/tdn_manager.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {

struct TcpConfig {
  // --- segmentation (jumbo frames per §5.1) --------------------------------
  std::uint32_t mss = 8940;          // payload bytes per segment
  std::uint32_t header_bytes = 60;   // wire overhead per data segment
  std::uint32_t ack_bytes = 60;      // pure-ACK wire size

  // --- windows --------------------------------------------------------------
  std::uint32_t initial_cwnd = 10;   // segments (Linux default)
  std::uint64_t snd_buf_bytes = 8ull << 20;
  std::uint64_t rcv_buf_bytes = 8ull << 20;

  // --- TDTCP ----------------------------------------------------------------
  bool tdtcp_enabled = false;      // negotiate TD_CAPABLE, per-TDN state
  std::uint8_t num_tdns = 1;
  bool relaxed_reordering = true;  // §3.4 heuristic       (ablation switch)
  bool per_tdn_rtt = true;         // §4.4 sample matching (ablation switch)
  bool synthesized_rto = true;     // §4.4 pessimistic RTO (ablation switch)

  // --- robustness (§3.2: unreliable control plane) --------------------------
  // Always-on accounting validation after every ACK/loss/RTO/TDN-switch
  // event (see tcp/invariant_checker.hpp). Throws std::logic_error on the
  // first corrupted counter.
  bool invariant_checks = true;
  // Data-path TDN inference: when a notification is lost, converge to the
  // peer's TDN from the TD_DATA_ACK tags on incoming traffic. A switch is
  // inferred only after `tdn_infer_packets` consecutive identically-tagged
  // mismatches that persist longer than the reordering patience (1.5x the
  // slowest sRTT), so in-flight stragglers from a genuine switch never
  // trigger it.
  bool tdn_inference = true;
  std::uint32_t tdn_infer_packets = 4;

  // --- loss detection ---------------------------------------------------------
  bool sack_enabled = true;
  // Linux sack_rtt parity: take RTT samples from newly SACKed (never
  // retransmitted) segments. Disabling it starves the RTT estimator during
  // recovery — RTO stays pinned at its initial/backed-off value, which is the
  // historical ingredient of the RTO-backoff phase-locking failure mode (the
  // bench_stability canary flips this off to reproduce it).
  bool sack_rtt = true;
  std::uint32_t dupack_threshold = 3;
  bool rack_enabled = true;   // time-based marking
  bool tlp_enabled = true;    // tail-loss probes

  // --- ECN -------------------------------------------------------------------
  bool ecn_enabled = false;   // send data ECT(0); DCTCP forces this on

  // --- timers ------------------------------------------------------------------
  RttEstimator::Config rtt;

  // --- lifecycle / bounded retries (RFC 9293 teardown + dead-peer aborts) ---
  // Caps count retransmissions of the respective segment; exceeding one
  // aborts the connection (or, for the SYN-ACK, returns the endpoint to
  // kListen) with the matching CloseReason.
  std::uint32_t max_syn_retries = 6;      // active open → kConnectTimeout
  std::uint32_t max_synack_retries = 5;   // passive open → back to kListen
  // Consecutive RTO fires from a synchronized state without forward progress
  // (any cumulative-ACK advance resets the count) → kRetryLimit.
  std::uint32_t max_rto_retries = 8;
  // Consecutive unanswered transmissions of a zero-window probe before the
  // stall is declared fatal (kPersistTimeout). The probe is real 1-byte data,
  // so its retransmissions run on the RTO timer; this cap replaces
  // max_rto_retries while the probe is what's outstanding.
  std::uint32_t max_persist_retries = 10;
  // 2MSL analogue. Real stacks wait minutes; the simulated fabric's MSL is a
  // few RTTs, and churn workloads need TIME_WAIT to actually free state.
  SimTime time_wait_duration = SimTime::Millis(1);
  // Receiver convenience for request/response and churn apps: entering
  // kCloseWait immediately answers the peer's FIN with our own (Close()).
  bool close_on_peer_fin = false;

  // --- pacing -------------------------------------------------------------------
  // §5.2 suggests sender pacing to blunt the cwnd-sized burst a TDN switch
  // releases into the (possibly frozen) VOQ. When enabled, transmissions
  // are spaced at pacing_gain * cwnd * mss / srtt of the active TDN.
  bool pacing_enabled = false;
  double pacing_gain = 2.0;

  // --- congestion control --------------------------------------------------
  CcFactory cc_factory;  // defaults to CUBIC when empty
  // §3.5: "In principle, TDTCP could use multiple, different CCAs within a
  // single flow." When non-empty, TDN i uses per_tdn_cc[min(i, size-1)]
  // instead of cc_factory.
  std::vector<CcFactory> per_tdn_cc;

  // --- MPTCP subflow plumbing -----------------------------------------------
  std::int8_t pin_path = kUnpinned;
  std::uint8_t subflow_id = 0;
  bool mptcp = false;  // stamp DSS fields on segments/ACKs
  // MPTCP subflows don't own the host's flow demux entry or notifications;
  // the meta-connection does.
  bool register_endpoint = true;
  bool listen_tdn_notifications = true;
  // Multi-rack fabrics: only react to notifications about paths toward the
  // peer's rack (kAllRacks = the paper's fabric-wide semantics).
  RackId peer_rack = kAllRacks;
};

struct TcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_recoveries = 0;
  std::uint64_t tlp_probes = 0;
  std::uint64_t undo_events = 0;          // spurious recoveries rolled back
  std::uint64_t dsacks_received = 0;
  // Reordering accounting for Fig. 10: an event is an ACK whose SACK
  // processing leaves un-SACKed segments below the highest SACK; "marked"
  // counts segments the fast-retransmit logic declared lost.
  std::uint64_t reorder_events = 0;
  std::uint64_t reorder_hole_packets = 0;
  std::uint64_t reorder_marked_lost = 0;
  std::uint64_t cross_tdn_exemptions = 0;  // §3.4 holes left un-marked
  std::uint64_t rtt_samples_dropped = 0;   // §4.4 type-3 samples discarded
  std::uint64_t tdn_switches = 0;
  std::uint64_t tdn_inferred_switches = 0;  // recovered via data-path tags
  std::uint64_t tdn_reconfigs = 0;          // management-plane TDN-count changes
  std::uint64_t acks_received = 0;
  std::uint64_t bytes_received = 0;        // receiver-side delivered to app
  std::uint64_t duplicate_segments = 0;    // receiver-side dup arrivals
  std::uint64_t persist_probes = 0;        // zero-window probes sent
  std::uint64_t fins_sent = 0;             // FIN segments (first transmission)
  std::uint64_t fins_received = 0;         // peer FINs consumed in order
  std::uint64_t rsts_sent = 0;
  std::uint64_t rsts_received = 0;
  std::uint64_t synack_give_ups = 0;       // SYN-ACK cap hit, back to kListen
  // Host recovery agent (tcp/recovery_agent.hpp) interactions on this flow.
  std::uint64_t recovery_forced = 0;    // agent-forced early retransmits
  std::uint64_t recovery_rescued = 0;   // forced rtx later cumulatively acked
  std::uint64_t recovery_spurious = 0;  // forced rtx disproved by DSACK
};

class TcpConnection : public PacketSink {
 public:
  // RFC 9293 state machine. Values are stable trace IDs (kTcpStateChange
  // arguments appear in checked-in fixtures): append, never reorder.
  enum class State : std::uint8_t {
    kClosed, kListen, kSynSent, kSynReceived, kEstablished,
    kFinWait1, kFinWait2, kClosing, kTimeWait, kCloseWait, kLastAck,
  };

  // Receiver callback: an in-order byte range was delivered to the app.
  // `stream_seq` is the (1-based) TCP stream offset; when the segment
  // carried a DSS mapping, `dss_seq`/`has_dss` expose it for MPTCP.
  struct DeliverInfo {
    std::uint64_t stream_seq;
    std::uint32_t len;
    bool has_dss;
    std::uint64_t dss_seq;
  };
  using DeliverFn = std::function<void(const DeliverInfo&)>;

  TcpConnection(Simulator& sim, Host* host, FlowId flow, NodeId peer,
                TcpConfig config);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // --- connection lifecycle --------------------------------------------------
  void Listen();
  void Connect();
  // Graceful close: no more application data; a FIN rides the normal
  // scoreboard/RTO machinery after everything buffered has been sent. Called
  // before the handshake completes, the intent is remembered and the FIN
  // follows the handshake (a lingering close, like a real socket close with
  // unsent data). Idempotent.
  void Close();
  // Immediate teardown: sends RST (when a sequence-synchronized state makes
  // one meaningful) and releases everything now.
  void Abort(CloseReason reason = CloseReason::kUserAbort);
  // Fired exactly once when the connection reaches kClosed with a definite
  // reason. The callback must not destroy the connection synchronously (it
  // runs inside packet/timer processing); defer reclamation with
  // sim.Schedule(0, ...).
  using ClosedFn = std::function<void(CloseReason)>;
  void SetClosedCallback(ClosedFn fn) { on_closed_ = std::move(fn); }

  // --- application data -------------------------------------------------------
  // Unlimited source (long-lived flow, as in §5.1).
  void SetUnlimitedData(bool unlimited);
  // Finite write of plain stream bytes.
  void AddAppData(std::uint64_t bytes);
  // MPTCP: append `len` bytes mapped at data-level sequence `dss_seq`.
  // Returns false — and queues nothing — once the FIN is on the wire or the
  // connection is closed; reinjection callers must route the range elsewhere.
  bool AddMappedData(std::uint32_t len, std::uint64_t dss_seq);

  // --- TDN control -------------------------------------------------------------
  // Host notification entry point (wired via Host::AddTdnListener).
  void OnTdnChange(TdnId tdn, bool imminent);
  // Management-plane TDN-count change (Host::AddTdnReconfigListener): retire
  // per-TDN state sets with id >= live_tdns (TdnManager::RetireAbove).
  void OnTdnReconfig(std::uint32_t live_tdns);
  // §4.2: collapse an established TDTCP connection to regular TCP.
  void DowngradeToRegularTcp();

  // --- network entry point -----------------------------------------------------
  void HandlePacket(Packet&& p) override;
  // Link-burst fast path: runs of coalescable pure ACKs (established, SACK
  // on, no MPTCP/DSS) are merged into one scoreboard pass (OnAckBurst);
  // everything else falls back to HandlePacket, re-checking state per
  // packet so a mid-burst transition is honoured.
  void HandleBurst(Packet** pkts, std::size_t n) override;

  // --- hooks -------------------------------------------------------------------
  void SetDeliverCallback(DeliverFn fn) { deliver_ = std::move(fn); }
  // Receiver side: value to stamp into outgoing ACKs' dss_ack (MPTCP meta
  // cumulative ACK).
  void SetDssAckProvider(std::function<std::uint64_t()> fn) {
    dss_ack_provider_ = std::move(fn);
  }
  // Receiver side: additional receive-window constraint advertised in ACKs
  // (MPTCP subflows share the meta-level receive buffer, so a data-sequence
  // hole parked on a dead subflow shrinks every subflow's window — the
  // flow-control stall of §2.2/§3.3).
  void SetRwndProvider(std::function<std::uint64_t()> fn) {
    rwnd_provider_ = std::move(fn);
  }
  // Sender side: observed peer dss_ack (and meta window) on an ACK.
  void SetDssAckCallback(std::function<void(std::uint64_t, std::uint64_t)> fn) {
    on_dss_ack_ = std::move(fn);
  }
  void SetEstablishedCallback(std::function<void()> fn) {
    on_established_ = std::move(fn);
  }
  // Debug tap: observes every packet this endpoint sends/receives (the
  // counterpart of the paper artifact's Wireshark TDTCP dissector).
  enum class TapDirection : std::uint8_t { kTx, kRx };
  using TapFn = std::function<void(TapDirection, const Packet&)>;
  void SetPacketTap(TapFn fn) {
    tap_ = std::move(fn);
    // Hoisted emptiness flag: the per-packet paths test one bool instead of
    // probing the std::function's vtable pointer.
    has_tap_ = static_cast<bool>(tap_);
  }
  // Fired after ACK processing frees window space (MPTCP scheduler hook).
  void SetSendReadyCallback(std::function<void()> fn) {
    on_send_ready_ = std::move(fn);
  }
  // Fault-trace context for invariant-violation reports (the armed
  // FaultInjector, when an experiment runs with a FaultPlan).
  void SetFaultTraceSource(const FaultTraceSource* src) { fault_trace_ = src; }
  const FaultTraceSource* fault_trace() const { return fault_trace_; }
  // Tracepoint sink (trace/tracepoints.hpp). Same hoisted-bool discipline as
  // the packet tap: the disabled fast path costs one predictable branch.
  void SetTraceRing(TraceRing* ring) {
    trace_ = ring;
    has_trace_ = ring != nullptr;
    tdns_.SetTrace(ring, &sim_, flow_);
  }

  // --- introspection -----------------------------------------------------------
  State state() const { return state_; }
  CloseReason close_reason() const { return close_reason_; }
  static const char* StateName(State s);
  bool tdtcp_active() const { return tdtcp_active_; }
  std::uint64_t snd_una() const { return snd_una_; }
  std::uint64_t snd_nxt() const { return snd_nxt_; }
  std::uint64_t rcv_nxt() const { return rcv_buffer_.rcv_nxt(); }
  std::uint64_t bytes_acked() const;      // sender-side progress (all TDNs)
  std::uint64_t outstanding_bytes() const { return snd_nxt_ - snd_una_; }
  std::uint64_t unsent_buffered_bytes() const;
  TdnManager& tdns() { return tdns_; }
  const TdnManager& tdns() const { return tdns_; }
  const TcpStats& stats() const { return stats_; }
  const TcpConfig& config() const { return config_; }
  const SendQueue& send_queue() const { return send_queue_; }
  FlowId flow() const { return flow_; }
  std::uint32_t rto_backoff() const { return rto_backoff_; }
  bool persist_timer_armed() const { return persist_entry_.armed(); }
  // Our FIN is on the wire: no further stream bytes (AddMappedData refuses),
  // so MPTCP failover must not pick this subflow as a reinjection target.
  bool fin_sent() const { return fin_sent_; }

  // Unacked data-level (DSS) ranges, lowest first — MPTCP reinjection scans
  // these to remap stranded data onto the active subflow.
  struct DssRange { std::uint64_t dss_seq; std::uint32_t len; };
  std::vector<DssRange> UnackedDssRanges() const;
  // DSS ranges scheduled onto this subflow but not yet transmitted (stuck in
  // the send buffer of a subflow whose path went away).
  std::vector<DssRange> PendingDssRanges() const;

  // --- host recovery agent hooks (tcp/recovery_agent.hpp) --------------------
  // Unacked data is on the wire and the connection is in a state the agent
  // may act on (synchronized, not persist-probing a zero window).
  bool RecoveryOutstanding() const;
  // Pessimistic RTT estimate for the agent's adaptive quiet threshold: the
  // slowest per-TDN sRTT, or the configured initial RTO before any sample.
  SimTime RecoveryRttHint() const;
  // Forces an early retransmit of the oldest unacked (un-SACKed) segment
  // through the ordinary scoreboard machinery — Karn-safe, per-TDN episode
  // accounting intact — and re-arms the RTO from the fresh transmission
  // WITHOUT bumping the exponential backoff. Returns false when nothing is
  // eligible (handshake, retransmission already in flight, FIN-less empty
  // queue). `quiet`/`threshold` only annotate the tracepoint.
  bool ForceRecoveryRetransmit(SimTime quiet, SimTime threshold);

 private:
  // Counts a DSACK-disproved forcing (stats + agent threshold adaptation).
  void CountSpuriousForcing();

  struct PendingChunk {
    std::uint64_t bytes;
    bool has_dss;
    std::uint64_t dss_seq;
  };

  // --- handshake ---------------------------------------------------------------
  void SendSyn(bool is_synack);
  void ResendSynPacket();
  void OnSyn(const Packet& p);
  void OnSynAck(const Packet& p);
  void CompleteHandshake();
  // Satellite: SYN-ACK retransmit cap — drop the half-open attempt and
  // become a fresh listener again.
  void ResetToListen();

  // --- teardown ----------------------------------------------------------------
  // Hard-error guard for API misuse (Listen/Connect off kClosed): dump like
  // the invariant checker, then throw std::logic_error — release builds too.
  [[noreturn]] void LifecycleError(const char* api) const;
  bool InClosingFamily() const {
    return state_ == State::kFinWait1 || state_ == State::kFinWait2 ||
           state_ == State::kClosing || state_ == State::kTimeWait ||
           state_ == State::kCloseWait || state_ == State::kLastAck;
  }
  // A FIN has been queued (fin_pending_) and all buffered data is on the
  // wire: append the sequence-occupying FIN segment.
  void MaybeSendFin();
  // Peer FIN consumed in order at `fin_seq`: ACK it and advance the state
  // machine (passive close / simultaneous close / TIME_WAIT entry).
  void ConsumePeerFin();
  // Our FIN was cumulatively acked: FIN-WAIT-1 → FIN-WAIT-2 / CLOSING →
  // TIME_WAIT / LAST-ACK → CLOSED.
  void MaybeAdvanceCloseStates();
  void EnterTimeWait();
  void OnTimeWaitFire();
  void SendRst();
  void OnRst(const Packet& p);
  void SendPureAck();
  bool CanTransmit() const {
    return state_ == State::kEstablished || state_ == State::kFinWait1 ||
           state_ == State::kCloseWait || state_ == State::kClosing ||
           state_ == State::kLastAck;
  }
  // Terminal transition: retire per-TDN accounting for every scoreboard
  // entry, cancel timers, deregister from the host, run the checker's kClose
  // recount, and fire ClosedFn exactly once.
  void ToClosed(CloseReason reason);
  // Cumulative-ACK value to advertise: rcv_nxt plus one once the peer's FIN
  // has been consumed (the FIN occupies a sequence byte).
  std::uint64_t AckValue() const {
    return rcv_buffer_.rcv_nxt() + (fin_consumed_ ? 1 : 0);
  }

  // --- sending ------------------------------------------------------------------
  void MaybeSend();
  // True when pacing defers transmission; arms the pace timer.
  bool PacingDefers();
  void NotePacedTransmission(std::uint32_t bytes);
  bool CanSendNewSegment() const;
  // `len_cap` caps the segment payload (0 = no cap); the persist path sends
  // 1-byte window probes through the regular segment machinery.
  void SendNewSegment(std::uint32_t len_cap = 0);
  bool RetransmitOneLost();
  void TransmitSegment(TxSegment& seg, bool is_retransmission);
  Packet BuildDataPacket(const TxSegment& seg) const;

  // --- receiving ----------------------------------------------------------------
  void OnDataSegment(Packet&& p);
  void SendAck(const ReceiveBuffer::Result& result, const Packet& data);

  // --- ACK processing -----------------------------------------------------------
  void OnAckPacket(const Packet& p);
  // True when `p` may join an ACK-coalescing run: pure ACK, connection
  // established, SACK enabled, no MPTCP/DSS side effects.
  bool CoalescableAck(const Packet& p) const;
  // Processes a run of >= 2 coalescable ACKs as one scoreboard pass: merged
  // SACK blocks, one cumulative advance to the highest ACK, one loss-
  // detection/state-machine/timer/send round. Per-packet header effects
  // (stats, window updates, TDN notes, D-SACK) still run per ACK, in order.
  void OnAckBurst(Packet** acks, std::size_t n);
  std::uint32_t ProcessSackBlocks(const Packet& p, TdnId trigger_tdn);
  // RFC 2883 D-SACK split: if the packet's first SACK block duplicates
  // already-received data, consume it (ProcessDsack) and return 1 so the
  // caller applies only p.sack[1..num_sack); returns 0 otherwise.
  std::uint8_t SplitDsack(const Packet& p);
  // Shared ApplySack visitor body: per-TDN sacked_out accounting, lost-undo,
  // RACK mstamp advance, and SACK RTT sampling against `ack_tdn`.
  void NoteSackedSegment(TxSegment& seg, TdnId ack_tdn);
  void ProcessDsack(const SackBlock& block);
  // Returns true when the ACK retired at least one data segment that was
  // never retransmitted — the only ACKs Karn's algorithm lets reset the RTO
  // backoff.
  bool ProcessCumulativeAck(const Packet& p, TdnId trigger_tdn);
  void DetectLosses(TdnId trigger_tdn, std::uint32_t newly_sacked);
  void MarkSegmentLost(TxSegment& seg);
  void AdvanceStateMachines(const Packet& p);
  void ProportionalRateReduction(TdnState& st, std::uint32_t newly_acked,
                                 std::uint32_t newly_sacked);
  void MaybeUndo(TdnState& st);

  // --- congestion transitions -----------------------------------------------
  void EnterRecovery(TdnState& st);
  void EnterCwr(TdnState& st);
  void EnterLoss(TdnState& st);

  // --- timers -------------------------------------------------------------------
  void ArmRto();
  void OnRtoFire();
  void ArmTlp();
  void OnTlpFire();
  // Zero-window persist timer (RFC 9293 §3.8.6.1): while the peer advertises
  // a zero window and nothing is in flight, probe with 1-byte segments under
  // exponential backoff instead of stalling forever.
  void ArmPersist();
  void CancelPersist();
  void OnPersistFire();
  void CancelTimers();
  SimTime RtoForSegment(const TxSegment& seg) const;

  // --- TDN switching / inference ---------------------------------------------
  // The switch itself (shared by notifications and data-path inference).
  void SwitchActiveTdn(TdnId tdn);
  // Observes the peer's TD_DATA_ACK tag on incoming traffic; infers a lost
  // notification when a mismatch streak outlives the reordering patience.
  void NotePeerTdn(TdnId tdn);

  // --- helpers ------------------------------------------------------------------
  TdnState& ActiveState() { return tdns_.active(); }
  TdnId ActiveTdn() const { return tdns_.active_id(); }
  bool IsCwndLimited() const;
  void NoteCircuitEcho(bool circuit);
  void RunChecker(TcpInvariantChecker::Event ev) {
    if (checker_) checker_->Check(*this, ev);
  }
  // Connection-state transition with its tracepoint.
  void SetState(State s);
  void Trace(TracePoint point, std::uint64_t a0 = 0, std::uint64_t a1 = 0,
             std::uint64_t a2 = 0, std::uint64_t a3 = 0) {
    if (has_trace_) {
      trace_->Emit(sim_.now().picos(), point, flow_, a0, a1, a2, a3);
    }
  }

  Simulator& sim_;
  Host* host_;
  FlowId flow_;
  NodeId peer_;
  TcpConfig config_;
  State state_ = State::kClosed;

  // Negotiated at handshake: both ends TD_CAPABLE with equal TDN counts.
  bool tdtcp_active_ = false;

  TdnManager tdns_;
  SendQueue send_queue_;
  ReceiveBuffer rcv_buffer_;
  TdnChangePointer tdn_change_;
  bool tdn_pointer_pending_ = false;  // advance pointer at next transmission

  // --- sequence space (1-based; SYN occupies byte 0) ---------------------------
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;

  // --- app data ------------------------------------------------------------------
  bool unlimited_data_ = false;
  std::deque<PendingChunk> pending_;   // unsent application bytes
  std::uint64_t pending_bytes_ = 0;

  // --- peer flow control -----------------------------------------------------
  std::uint64_t peer_rwnd_ = 1ull << 30;

  // --- loss detection state -----------------------------------------------------
  std::uint32_t dupack_count_ = 0;
  SimTime rack_mstamp_ = SimTime::Zero();  // newest delivered tx timestamp
  TdnId rack_mstamp_tdn_ = 0;
  std::uint32_t prev_holes_ = 0;  // reordering-event edge detection
  // DetectLosses suffix counts: sacked_above_scratch_[i] = SACKed segments
  // strictly after scoreboard index i (one backward pass per ACK instead of
  // the O(n^2) per-hole rescan).
  std::vector<std::uint32_t> sacked_above_scratch_;
  // OnAckBurst: union of the burst's plain (non-D-SACK) SACK blocks.
  std::vector<SackBlock> sack_merge_scratch_;

  // --- per-ACK scratch (per-TDN newly-acked accounting) -------------------------
  std::vector<std::uint32_t> acked_pkts_scratch_;
  std::vector<std::uint32_t> sacked_pkts_scratch_;
  std::vector<std::uint64_t> acked_bytes_scratch_;
  std::vector<SimTime> rtt_scratch_;
  TdnId ece_target_tdn_ = 0;

  // --- timers ---------------------------------------------------------------------
  // RTO/TLP/persist/TimeWait live on the host's hierarchical timer wheel as
  // intrusive entries (zero steady-state allocation, O(1) rearm); only the
  // pace timer — fine-grained, sub-tick spacing — stays on the event heap.
  // The wheel auto-disarms an entry before invoking its trampoline, so the
  // `armed()` predicates match the old "EventId cleared in the lambda" flow.
  static void RtoTrampoline(void* c) {
    static_cast<TcpConnection*>(c)->OnRtoFire();
  }
  static void TlpTrampoline(void* c) {
    static_cast<TcpConnection*>(c)->OnTlpFire();
  }
  static void PersistTrampoline(void* c) {
    static_cast<TcpConnection*>(c)->OnPersistFire();
  }
  static void TimeWaitTrampoline(void* c) {
    static_cast<TcpConnection*>(c)->OnTimeWaitFire();
  }
  TimerWheel::Timer rto_entry_;
  TimerWheel::Timer tlp_entry_;
  std::uint32_t rto_backoff_ = 0;
  bool tlp_in_flight_ = false;
  TimerWheel::Timer persist_entry_;
  std::uint32_t persist_backoff_ = 0;
  // True while the outstanding data is an unanswered zero-window probe.
  // Retransmissions of the probe ride the RTO timer, so the RTO give-up
  // path consults this to report the abort as kPersistTimeout (and to cap
  // it at max_persist_retries) instead of kRetryLimit.
  bool persist_probing_ = false;
  TimerWheel::Timer time_wait_entry_;

  // --- host recovery agent ---------------------------------------------------
  RecoveryAgent* recovery_agent_ = nullptr;  // host's agent at construction
  RecoveryAgent::Node recovery_node_;
  // [seq, end_seq) of forced segments already retired by a cumulative ACK,
  // so a late DSACK can still reclassify the forcing as spurious. Bounded;
  // oldest entries are dropped.
  static constexpr std::size_t kMaxForcedRetired = 64;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> forced_retired_;

  // --- teardown state ------------------------------------------------------------
  CloseReason close_reason_ = CloseReason::kNone;
  bool fin_pending_ = false;    // Close() called; FIN not yet on the wire
  bool fin_sent_ = false;       // our FIN occupies [fin_seq_, fin_seq_+1)
  std::uint64_t fin_seq_ = 0;
  bool fin_received_ = false;   // peer FIN seen (possibly out of order)
  std::uint64_t peer_fin_seq_ = 0;
  bool fin_consumed_ = false;   // peer FIN reached rcv_nxt: ACK covers it
  bool endpoint_registered_ = false;  // still owns the host demux entry
  bool tdn_listener_registered_ = false;
  std::uint32_t rto_retries_ = 0;  // consecutive data RTOs without progress

  // --- pacing ---------------------------------------------------------------------
  EventId pace_timer_ = kInvalidEventId;
  SimTime next_send_time_ = SimTime::Zero();

  // --- reTCP circuit echo tracking ---------------------------------------------
  bool last_circuit_echo_ = false;
  bool circuit_echo_seen_ = false;

  // --- invariant checking / fault context ---------------------------------------
  std::unique_ptr<TcpInvariantChecker> checker_;
  const FaultTraceSource* fault_trace_ = nullptr;

  // --- data-path TDN inference (§3.2 robustness) ---------------------------------
  TdnId peer_tdn_candidate_ = kNoTdn;
  std::uint32_t peer_tdn_streak_ = 0;
  SimTime peer_tdn_first_ = SimTime::Zero();
  SimTime last_notify_time_ = SimTime::Zero();
  bool notify_seen_ = false;

  // --- callbacks -------------------------------------------------------------------
  DeliverFn deliver_;
  TapFn tap_;
  bool has_tap_ = false;
  TraceRing* trace_ = nullptr;
  bool has_trace_ = false;
  std::function<std::uint64_t()> dss_ack_provider_;
  std::function<std::uint64_t()> rwnd_provider_;
  std::function<void(std::uint64_t, std::uint64_t)> on_dss_ack_;
  std::function<void()> on_established_;
  std::function<void()> on_send_ready_;
  ClosedFn on_closed_;
  // MPTCP: DSS ranges stranded when an aborted subflow's scoreboard was
  // released — the meta-connection reinjects them onto a survivor.
  std::vector<DssRange> orphaned_dss_;

  TcpStats stats_;
};

}  // namespace tdtcp
