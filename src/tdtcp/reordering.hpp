// §3.4's relaxed reordering detection.
//
// When SACKs open a hole in the sequence space, classic fast recovery marks
// the hole segments lost. In an RDCN most such holes are cross-TDN
// reordering: segments sent at the tail of a high-latency TDN are overtaken
// by segments (and their ACKs) on the new low-latency TDN. TDTCP inspects
// the TDN tag of every hole segment and compares it against the TDN of the
// acknowledgment that triggered the heuristic and the TDN change pointer
// (the first sequence transmitted on the new TDN): a mismatched segment is
// very likely just delayed, so it is exempted from loss marking and left to
// RACK-TLP (with the pessimistic cross-TDN reordering window) to catch the
// rare true tail loss.
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "tcp/send_queue.hpp"

namespace tdtcp {

// Position of the most recent TDN boundary in sequence space: the first
// sequence number transmitted on the current TDN (equivalently, one past
// the last sequence of the previous TDN).
struct TdnChangePointer {
  std::uint64_t first_seq_of_new_tdn = 0;
  TdnId new_tdn = 0;

  void Advance(std::uint64_t seq, TdnId tdn) {
    first_seq_of_new_tdn = seq;
    new_tdn = tdn;
  }
};

// True when `seg` — a hole segment the fast-retransmit heuristic wants to
// mark lost — should instead be suspected of cross-TDN reordering.
inline bool SuspectCrossTdnReordering(const TxSegment& seg, TdnId trigger_ack_tdn,
                                      const TdnChangePointer& pointer) {
  if (seg.tdn == trigger_ack_tdn) return false;
  // A mismatched segment sitting below the change pointer belongs to the
  // previous TDN; its ACK is almost certainly in flight on the slower path.
  // Segments above the pointer with a stale tag (rare: retransmissions
  // re-tagged mid-switch) are treated the same way — the tag mismatch is
  // the paper's primary condition.
  (void)pointer;
  return true;
}

}  // namespace tdtcp
