#include "tdtcp/tdn_manager.hpp"

#include <cassert>

#include "sim/simulator.hpp"

namespace tdtcp {

TdnManager::TdnManager(std::uint32_t num_tdns, IndexedCcFactory factory,
                       RttEstimator::Config rtt_config, std::uint32_t initial_cwnd)
    : factory_(std::move(factory)), rtt_config_(rtt_config),
      initial_cwnd_(initial_cwnd) {
  assert(num_tdns >= 1);
  for (std::uint32_t i = 0; i < num_tdns; ++i) EnsureTdn(static_cast<TdnId>(i));
}

void TdnManager::EnsureTdn(TdnId id) {
  while (states_.size() <= id) {
    TdnState s;
    s.id = static_cast<TdnId>(states_.size());
    s.cwnd = initial_cwnd_;
    s.rtt = RttEstimator(rtt_config_);
    s.cc = factory_(s.id);
    s.cc->Init(s);
    states_.push_back(std::move(s));
    if (has_trace_) {
      trace_->Emit(trace_sim_->now().picos(), TracePoint::kTdnStateSelect,
                   trace_flow_, states_.back().id);
    }
  }
}

bool TdnManager::SwitchTo(TdnId id) {
  EnsureTdn(id);
  if (id == active_) return false;
  const TdnId prev = active_;
  active_ = id;
  TdnState& s = states_[active_];
  s.cc->OnCwndEvent(s, CwndEvent::kTdnResume);
  if (has_trace_) {
    trace_->Emit(trace_sim_->now().picos(), TracePoint::kTdnSwitch,
                 trace_flow_, prev, id);
  }
  return true;
}

std::uint32_t TdnManager::TotalPacketsOut() const {
  std::uint32_t total = 0;
  for (const auto& s : states_) total += s.packets_out;
  return total;
}

std::uint32_t TdnManager::TotalPipe() const {
  std::uint32_t total = 0;
  for (const auto& s : states_) total += s.packets_in_flight();
  return total;
}

bool TdnManager::AnyRetransmitPending() const {
  for (const auto& s : states_) {
    if (s.lost_out > 0 &&
        (s.ca_state == CaState::kRecovery || s.ca_state == CaState::kLoss)) {
      return true;
    }
  }
  return false;
}

const RttEstimator& TdnManager::SlowestRtt(TdnId fallback) const {
  const RttEstimator* slowest = &states_[fallback].rtt;
  for (const auto& s : states_) {
    if (!s.rtt.has_sample()) continue;
    if (!slowest->has_sample() || s.rtt.srtt() > slowest->srtt()) {
      slowest = &s.rtt;
    }
  }
  return *slowest;
}

SimTime TdnManager::RtoFor(TdnId id, bool synthesized) const {
  const TdnState& s = states_[id];
  if (!synthesized) return s.rtt.Rto();
  return s.rtt.SynthesizedRto(SlowestRtt(id));
}

}  // namespace tdtcp
