#include "tdtcp/tdn_manager.hpp"

#include <stdexcept>
#include <string>

#include "sim/simulator.hpp"

namespace tdtcp {

TdnManager::TdnManager(std::uint32_t num_tdns, IndexedCcFactory factory,
                       RttEstimator::Config rtt_config, std::uint32_t initial_cwnd)
    : factory_(std::move(factory)), rtt_config_(rtt_config),
      initial_cwnd_(initial_cwnd) {
  if (num_tdns < 1) {
    // Was an NDEBUG-silent assert: a zero-TDN manager has no active() state
    // and the first tag/switch would index an empty vector.
    throw std::invalid_argument(
        "TdnManager: num_tdns must be >= 1 (got " + std::to_string(num_tdns) +
        ")");
  }
  for (std::uint32_t i = 0; i < num_tdns; ++i) EnsureTdn(static_cast<TdnId>(i));
}

void TdnManager::EnsureTdn(TdnId id) {
  while (states_.size() <= id) {
    TdnState s;
    s.id = static_cast<TdnId>(states_.size());
    s.cwnd = initial_cwnd_;
    s.rtt = RttEstimator(rtt_config_);
    s.cc = factory_(s.id);
    s.cc->Init(s);
    states_.push_back(std::move(s));
    if (has_trace_) {
      trace_->Emit(trace_sim_->now().picos(), TracePoint::kTdnStateSelect,
                   trace_flow_, states_.back().id);
    }
  }
  if (retired_.size() < states_.size()) retired_.resize(states_.size(), false);
}

void TdnManager::ReviveIfDrained(TdnState& s) {
  // A revived set starts fresh only once its in-flight data has fully
  // drained; with segments still on the scoreboard the old accounting (and
  // CC episode state) must carry over or the invariant checker's recount
  // diverges.
  if (s.packets_out != 0 || s.retrans_out != 0) return;
  const TdnId id = s.id;
  s = TdnState();
  s.id = id;
  s.cwnd = initial_cwnd_;
  s.rtt = RttEstimator(rtt_config_);
  s.cc = factory_(id);
  s.cc->Init(s);
}

bool TdnManager::SwitchTo(TdnId id) {
  EnsureTdn(id);
  if (id == active_) return false;
  if (retired_[id]) {
    // Reviving a retired TDN (the schedule grew back): reset to fresh
    // connection state if it drained while parked, carry over otherwise.
    retired_[id] = false;
    ReviveIfDrained(states_[id]);
  }
  const TdnId prev = active_;
  active_ = id;
  TdnState& s = states_[active_];
  s.cc->OnCwndEvent(s, CwndEvent::kTdnResume);
  if (has_trace_) {
    trace_->Emit(trace_sim_->now().picos(), TracePoint::kTdnSwitch,
                 trace_flow_, prev, id);
  }
  return true;
}

bool TdnManager::RetireAbove(std::uint32_t live) {
  if (live == 0) {
    throw std::invalid_argument(
        "TdnManager::RetireAbove: a reconfiguration must leave at least one "
        "live TDN (got live=0)");
  }
  ++retire_events_;
  std::uint64_t newly_retired = 0;
  for (std::size_t id = 0; id < states_.size(); ++id) {
    const bool retire = id >= live;
    if (retire && !retired_[id]) ++newly_retired;
    if (!retire && retired_[id]) {
      // The schedule grew back: ids below the new count are live again.
      retired_[id] = false;
      ReviveIfDrained(states_[id]);
    } else {
      retired_[id] = retire;
    }
  }
  bool moved = false;
  if (active_ < retired_.size() && retired_[active_]) {
    // Never leave the connection tagging new data with a retired TDN; TDN 0
    // always survives (live >= 1).
    moved = SwitchTo(0);
  }
  if (has_trace_) {
    trace_->Emit(trace_sim_->now().picos(), TracePoint::kTdnRetire,
                 trace_flow_, live, newly_retired, moved);
  }
  return moved;
}

std::uint32_t TdnManager::TotalPacketsOut() const {
  std::uint32_t total = 0;
  for (const auto& s : states_) total += s.packets_out;
  return total;
}

std::uint32_t TdnManager::TotalPipe() const {
  std::uint32_t total = 0;
  for (const auto& s : states_) total += s.packets_in_flight();
  return total;
}

bool TdnManager::AnyRetransmitPending() const {
  for (const auto& s : states_) {
    if (s.lost_out > 0 &&
        (s.ca_state == CaState::kRecovery || s.ca_state == CaState::kLoss)) {
      return true;
    }
  }
  return false;
}

const RttEstimator& TdnManager::SlowestRtt(TdnId fallback) const {
  const RttEstimator* slowest = &states_[fallback].rtt;
  for (const auto& s : states_) {
    if (!s.rtt.has_sample()) continue;
    if (!slowest->has_sample() || s.rtt.srtt() > slowest->srtt()) {
      slowest = &s.rtt;
    }
  }
  return *slowest;
}

SimTime TdnManager::RtoFor(TdnId id, bool synthesized) const {
  const TdnState& s = states_[id];
  if (!synthesized) return s.rtt.Rto();
  return s.rtt.SynthesizedRto(SlowestRtt(id));
}

}  // namespace tdtcp
