// The congestion-control module interface, shaped after Linux's
// tcp_congestion_ops so kernel algorithms port over directly.
//
// TDTCP instantiates one module per TDN (the module's members are the
// CC-private state the paper duplicates); single-path variants have exactly
// one. Modules mutate only the TdnState handed to them.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/time.hpp"
#include "tcp/types.hpp"
#include "tdtcp/tdn_state.hpp"

namespace tdtcp {

// Extra per-ACK context beyond AckEvent that some modules need.
struct AckContext {
  AckEvent event;
  std::uint64_t snd_una = 0;  // after this ACK was applied
  std::uint64_t snd_nxt = 0;
  SimTime now;
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual const char* name() const = 0;

  virtual void Init(TdnState& s) { (void)s; }

  // Slow-start threshold to adopt on a congestion event (loss or ECE).
  virtual std::uint32_t SsThresh(TdnState& s) = 0;

  // Window growth on ACKs while in Open/Disorder (slow start + congestion
  // avoidance). `acked` is segments newly acknowledged.
  virtual void CongAvoid(TdnState& s, std::uint32_t acked, SimTime now) = 0;

  // Called for every valid ACK after scoreboard updates (DCTCP fraction
  // tracking, RTT-based logic, ...).
  virtual void OnAck(TdnState& s, const AckContext& ctx) { (void)s; (void)ctx; }

  // Congestion-window to restore when a loss event is undone.
  virtual std::uint32_t UndoCwnd(TdnState& s) {
    return std::max(s.cwnd, s.prior_cwnd);
  }

  virtual void OnCwndEvent(TdnState& s, CwndEvent ev) { (void)s; (void)ev; }

  virtual void OnRetransmitTimeout(TdnState& s) { (void)s; }

  // reTCP hook: the fabric moved on/off the optical circuit (from the
  // receiver's echoed switch mark), or — with `imminent` — the ToR warned
  // that the circuit is about to come up (reTCPdyn pre-fill).
  virtual void OnCircuitTransition(TdnState& s, bool circuit_up, bool imminent) {
    (void)s; (void)circuit_up; (void)imminent;
  }

  // Whether data packets should be sent ECN-capable (ECT(0)).
  virtual bool WantsEcn() const { return false; }
};

using CcFactory = std::function<std::unique_ptr<CongestionControl>()>;

}  // namespace tdtcp
