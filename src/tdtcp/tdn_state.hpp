// TdnState: the subset of TCP connection state TDTCP duplicates per
// time-division network (§3.1).
//
// The paper groups the duplicated variables into three categories; all
// three live here, one instance per TDN:
//   * "pipe" variables     — packets_out, sacked_out, lost_out, retrans_out
//   * congestion variables — cwnd, ssthresh, ca_state (+ recovery/undo
//                            bookkeeping), and the CC module's private state
//   * delay/RTT variables  — srtt/rttvar/mdev via RttEstimator
//
// A classic single-path connection is simply a connection with one TdnState.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/types.hpp"

namespace tdtcp {

class CongestionControl;

struct TdnState {
  TdnId id = 0;

  // --- "pipe" variables ---------------------------------------------------
  std::uint32_t packets_out = 0;   // segments transmitted, not yet cumACKed
  std::uint32_t sacked_out = 0;    // segments SACKed by the receiver
  std::uint32_t lost_out = 0;      // segments marked lost
  std::uint32_t retrans_out = 0;   // retransmissions in flight

  // Linux tcp_packets_in_flight(): how full this TDN's pipe is.
  std::uint32_t packets_in_flight() const {
    return packets_out - sacked_out - lost_out + retrans_out;
  }

  // --- congestion control variables ----------------------------------------
  std::uint32_t cwnd = 10;                 // segments
  std::uint32_t ssthresh = 0x7fffffff;     // segments
  CaState ca_state = CaState::kOpen;
  std::uint64_t high_seq = 0;       // recovery/CWR exit point (snd_nxt at entry)
  std::uint32_t prior_cwnd = 0;     // for undo
  std::uint32_t prior_ssthresh = 0;
  std::uint64_t undo_marker = 0;    // snd_una at recovery entry; 0 = no undo armed
  std::uint32_t undo_retrans = 0;   // retransmissions DSACK must disprove
  bool any_rtx_since_entry = false; // retransmitted at all this episode?
  std::uint32_t rtx_this_episode = 0;

  // Proportional Rate Reduction (RFC 6937, Linux tcp_cwnd_reduction):
  // during Recovery/CWR the window shrinks towards ssthresh in proportion
  // to delivery, instead of collapsing in one step.
  std::uint32_t prr_delivered = 0;
  std::uint32_t prr_out = 0;

  // Fractional congestion-avoidance growth (Linux snd_cwnd_cnt).
  std::uint32_t cwnd_cnt = 0;

  // Was the sender using the full window at its last send attempt?
  // (Linux tcp_is_cwnd_limited gates congestion-avoidance growth.)
  bool cwnd_limited = false;

  // --- delay / RTT variables ------------------------------------------------
  RttEstimator rtt;

  // --- CC module (one instance per TDN; §3.5: in principle each TDN could
  // even run a different CCA) -------------------------------------------------
  std::unique_ptr<CongestionControl> cc;

  // --- statistics -----------------------------------------------------------
  std::uint64_t bytes_acked = 0;
  std::uint64_t segments_sent = 0;
  std::uint32_t fast_recoveries = 0;
  std::uint32_t timeouts = 0;
  std::uint32_t undo_events = 0;  // spurious recoveries rolled back
};

}  // namespace tdtcp
