// TdnManager: owns the per-TDN state copies and implements the four state
// management semantics of §4.3:
//   * current TDN  — active() for tagging new transmissions,
//   * all TDNs     — TotalPacketsOut() for ACK validation,
//   * any TDN      — AnyRetransmitPending() ORs ca_state/lost_out,
//   * specific TDN — state(id) so ACK processing credits each segment's TDN.
// It also provides §4.4's pessimistic synthesized RTO against the slowest
// TDN, and supports runtime schedule growth (§4.2: "TDTCP automatically
// initializes a new set of state variables upon being notified of a new TDN
// for the first time").
#pragma once

#include <cstdint>
#include <vector>

#include "tcp/rtt_estimator.hpp"
#include "tdtcp/congestion_control.hpp"
#include "tdtcp/tdn_state.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {
class Simulator;
}

namespace tdtcp {

class TdnManager {
 public:
  // §3.5: each TDN could in principle run a different CCA, so the factory
  // is indexed by TDN id.
  using IndexedCcFactory = std::function<std::unique_ptr<CongestionControl>(TdnId)>;

  TdnManager(std::uint32_t num_tdns, IndexedCcFactory factory,
             RttEstimator::Config rtt_config, std::uint32_t initial_cwnd);

  // Convenience: the same CCA on every TDN.
  TdnManager(std::uint32_t num_tdns, const CcFactory& factory,
             RttEstimator::Config rtt_config, std::uint32_t initial_cwnd)
      : TdnManager(num_tdns,
                   IndexedCcFactory([factory](TdnId) { return factory(); }),
                   rtt_config, initial_cwnd) {}

  TdnId active_id() const { return active_; }
  TdnState& active() { return states_[active_]; }
  const TdnState& active() const { return states_[active_]; }

  TdnState& state(TdnId id) { return states_[id]; }
  const TdnState& state(TdnId id) const { return states_[id]; }
  std::size_t num_tdns() const { return states_.size(); }

  // §3.1: swap the active set of state variables. The new set "already
  // contains a snapshot view of the new TDN when it was last active", so the
  // switch itself only flips an index and notifies the new TDN's CC module.
  // Unknown ids allocate fresh state (runtime schedule change). Returns
  // false if the id was already active.
  bool SwitchTo(TdnId id);

  void EnsureTdn(TdnId id);

  // Schedule reconfiguration (TDN-count change): retire every state set with
  // id >= `live`. Semantics (DESIGN.md §13):
  //   * surviving TDNs carry their state over unchanged;
  //   * a retired set keeps its accounting — segments tagged with it are
  //     still on the scoreboard and drain through the normal ACK/loss paths,
  //     so the invariant checker's recount stays consistent;
  //   * the active TDN is never left retired: it falls back to TDN 0 (which
  //     a reconfiguration can never retire, live >= 1);
  //   * a later SwitchTo on a retired id revives it — with freshly
  //     initialized CC/RTT/cwnd state if it had fully drained, in place (a
  //     carry-over, the data is still in flight) otherwise.
  // Returns true when the active TDN moved. Throws std::invalid_argument on
  // live == 0.
  bool RetireAbove(std::uint32_t live);
  bool retired(TdnId id) const {
    return id < retired_.size() && retired_[id];
  }
  std::uint32_t live_tdns() const {
    std::uint32_t live = 0;
    for (bool r : retired_) live += r ? 0 : 1;
    return live;
  }
  std::uint64_t retire_events() const { return retire_events_; }

  // §4.3 "all TDNs": an ACK can acknowledge data from any TDN, so validity
  // checks must use the sum.
  std::uint32_t TotalPacketsOut() const;
  std::uint32_t TotalPipe() const;

  // §4.3 "any TDN": retransmissions are scheduled if any TDN is in
  // Recovery/Loss with unrecovered losses.
  bool AnyRetransmitPending() const;

  // §4.4: the TDN whose smoothed RTT is currently largest (for pessimistic
  // timeout synthesis). Falls back to `fallback` when nothing has samples.
  const RttEstimator& SlowestRtt(TdnId fallback) const;

  // RTO for a segment sent on `id`: synthesized against the slowest TDN
  // when `synthesized` (TDTCP), the TDN's own RTO otherwise.
  SimTime RtoFor(TdnId id, bool synthesized) const;

  // Tracepoint sink: SwitchTo emits kTdnSwitch, EnsureTdn emits
  // kTdnStateSelect when it lazily allocates a new state set.
  void SetTrace(TraceRing* ring, const Simulator* sim, FlowId flow) {
    trace_ = ring;
    trace_sim_ = sim;
    trace_flow_ = flow;
    has_trace_ = ring != nullptr && sim != nullptr;
  }

 private:
  void ReviveIfDrained(TdnState& s);

  std::vector<TdnState> states_;
  std::vector<bool> retired_;
  std::uint64_t retire_events_ = 0;
  IndexedCcFactory factory_;
  RttEstimator::Config rtt_config_;
  std::uint32_t initial_cwnd_;
  TdnId active_ = 0;
  TraceRing* trace_ = nullptr;
  const Simulator* trace_sim_ = nullptr;
  FlowId trace_flow_ = 0;
  bool has_trace_ = false;
};

}  // namespace tdtcp
