#include "sim/simulator.hpp"

#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.hpp"

namespace tdtcp {

// Chunked slab + freelist: pointers stay stable across growth, blocks are
// recycled for the simulation's lifetime, and steady state never allocates.
struct Simulator::PacketPool {
  static constexpr std::size_t kBlockPackets = 64;
  std::vector<std::unique_ptr<Packet[]>> blocks;
  std::vector<Packet*> free;
  std::size_t outstanding = 0;
};

Simulator::Simulator() : packet_pool_(std::make_unique<PacketPool>()) {}
Simulator::~Simulator() = default;

Packet* Simulator::StashPacket(Packet&& p) {
  PacketPool& pool = *packet_pool_;
  if (pool.free.empty()) {
    pool.blocks.push_back(std::make_unique<Packet[]>(PacketPool::kBlockPackets));
    Packet* base = pool.blocks.back().get();
    pool.free.reserve(pool.blocks.size() * PacketPool::kBlockPackets);
    for (std::size_t i = PacketPool::kBlockPackets; i-- > 0;) {
      pool.free.push_back(base + i);
    }
  }
  Packet* slot = pool.free.back();
  pool.free.pop_back();
  ++pool.outstanding;
  *slot = std::move(p);
  return slot;
}

void Simulator::ReleasePacket(Packet* p) {
  packet_pool_->free.push_back(p);
  --packet_pool_->outstanding;
}

std::size_t Simulator::stashed_packets() const {
  return packet_pool_->outstanding;
}

void Simulator::ThrowScheduledInPast(SimTime at) const {
  // A past-time event would silently reorder the event list in release
  // builds (the queue pops it "next" with a stale timestamp), corrupting
  // every downstream measurement. Fail loudly in every build type.
  throw std::logic_error("Simulator::ScheduleAt: event scheduled in the past (at=" +
                         std::to_string(at.picos()) + "ps, now=" +
                         std::to_string(now_.picos()) + "ps)");
}

void Simulator::Run() {
  stopped_ = false;
  if (batched_dispatch_) {
    // RunBatch advances the clock before the first callback and drains the
    // whole timestamp; Stop() is honored between events via the reference.
    while (!stopped_ && !queue_.Empty()) {
      events_executed_ += queue_.RunBatch(now_, stopped_);
    }
    return;
  }
  while (!stopped_ && !queue_.Empty()) {
    // RunNext advances the clock before running the callback so that
    // everything the callback does (including relative scheduling) sees the
    // event's time.
    queue_.RunNext(now_);
    ++events_executed_;
  }
}

void Simulator::RunUntil(SimTime until) {
  stopped_ = false;
  if (batched_dispatch_) {
    // A batch never crosses a timestamp, so the NextTime guard bounds it to
    // events at <= until exactly as the event-at-a-time loop does.
    while (!stopped_ && !queue_.Empty() && queue_.NextTime() <= until) {
      events_executed_ += queue_.RunBatch(now_, stopped_);
    }
  } else {
    while (!stopped_ && !queue_.Empty() && queue_.NextTime() <= until) {
      queue_.RunNext(now_);
      ++events_executed_;
    }
  }
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace tdtcp
