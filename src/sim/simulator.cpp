#include "sim/simulator.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace tdtcp {

EventId Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  if (at < now_) {
    // A past-time event would silently reorder the event list in release
    // builds (the queue pops it "next" with a stale timestamp), corrupting
    // every downstream measurement. Fail loudly in every build type.
    throw std::logic_error("Simulator::ScheduleAt: event scheduled in the past (at=" +
                           std::to_string(at.picos()) + "ps, now=" +
                           std::to_string(now_.picos()) + "ps)");
  }
  return queue_.Schedule(at, std::move(fn));
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && !queue_.Empty()) {
    // Advance the clock before running the callback so that everything the
    // callback does (including relative scheduling) sees the event's time.
    EventQueue::Event ev = queue_.PopNext();
    now_ = ev.at;
    ev.fn();
    ++events_executed_;
  }
}

void Simulator::RunUntil(SimTime until) {
  stopped_ = false;
  while (!stopped_ && !queue_.Empty() && queue_.NextTime() <= until) {
    EventQueue::Event ev = queue_.PopNext();
    now_ = ev.at;
    ev.fn();
    ++events_executed_;
  }
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace tdtcp
