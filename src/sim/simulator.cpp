#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace tdtcp {

EventId Simulator::ScheduleAt(SimTime at, std::function<void()> fn) {
  assert(at >= now_ && "cannot schedule an event in the past");
  return queue_.Schedule(at, std::move(fn));
}

void Simulator::Run() {
  stopped_ = false;
  while (!stopped_ && !queue_.Empty()) {
    // Advance the clock before running the callback so that everything the
    // callback does (including relative scheduling) sees the event's time.
    EventQueue::Event ev = queue_.PopNext();
    now_ = ev.at;
    ev.fn();
    ++events_executed_;
  }
}

void Simulator::RunUntil(SimTime until) {
  stopped_ = false;
  while (!stopped_ && !queue_.Empty() && queue_.NextTime() <= until) {
    EventQueue::Event ev = queue_.PopNext();
    now_ = ev.at;
    ev.fn();
    ++events_executed_;
  }
  if (!stopped_ && now_ < until) now_ = until;
}

}  // namespace tdtcp
