// Seeded pseudo-random source for workloads and latency models.
//
// A thin wrapper over std::mt19937_64 so every experiment takes an explicit
// seed and replays bit-for-bit.
#pragma once

#include <cstdint>
#include <random>

#include "sim/time.hpp"

namespace tdtcp {

class Random {
 public:
  explicit Random(std::uint64_t seed = 1) : rng_(seed) {}

  // Uniform in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(rng_);
  }

  double UniformDouble(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng_);
  }

  bool Bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return std::bernoulli_distribution(p)(rng_);
  }

  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(rng_);
  }

  // Lognormal with given median and sigma of the underlying normal; used by
  // the notification-latency model (heavy upper tail, like packet
  // construction cost in a software switch).
  SimTime LognormalTime(SimTime median, double sigma) {
    std::lognormal_distribution<double> d(0.0, sigma);
    return SimTime::Picos(
        static_cast<std::int64_t>(static_cast<double>(median.picos()) * d(rng_)));
  }

  SimTime UniformTime(SimTime lo, SimTime hi) {
    return SimTime::Picos(UniformInt(lo.picos(), hi.picos()));
  }

  std::mt19937_64& engine() { return rng_; }

 private:
  std::mt19937_64 rng_;
};

}  // namespace tdtcp
