// Simulation time: a strong integer type with picosecond resolution.
//
// Picoseconds keep packet serialization exact at 100 Gbps (one bit = 10 ps)
// while still covering ~106 days of simulated time in a signed 64-bit value,
// so the whole simulator stays integer-only and bit-for-bit deterministic.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace tdtcp {

class SimTime {
 public:
  constexpr SimTime() = default;

  // Named constructors. Fractional inputs are supported for convenience in
  // configuration code; the stored value is always integral picoseconds.
  static constexpr SimTime Picos(std::int64_t ps) { return SimTime(ps); }
  static constexpr SimTime Nanos(std::int64_t ns) { return SimTime(ns * 1'000); }
  static constexpr SimTime Micros(std::int64_t us) { return SimTime(us * 1'000'000); }
  static constexpr SimTime Millis(std::int64_t ms) { return SimTime(ms * 1'000'000'000); }
  static constexpr SimTime Seconds(std::int64_t s) { return SimTime(s * 1'000'000'000'000); }
  static constexpr SimTime SecondsF(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e12));
  }
  static constexpr SimTime MicrosF(double us) {
    return SimTime(static_cast<std::int64_t>(us * 1e6));
  }
  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() {
    return SimTime(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t picos() const { return ps_; }
  constexpr std::int64_t nanos() const { return ps_ / 1'000; }
  constexpr std::int64_t micros() const { return ps_ / 1'000'000; }
  constexpr std::int64_t millis() const { return ps_ / 1'000'000'000; }
  constexpr double seconds() const { return static_cast<double>(ps_) * 1e-12; }
  constexpr double micros_f() const { return static_cast<double>(ps_) * 1e-6; }
  constexpr double millis_f() const { return static_cast<double>(ps_) * 1e-9; }

  constexpr bool IsZero() const { return ps_ == 0; }

  constexpr SimTime operator+(SimTime o) const { return SimTime(ps_ + o.ps_); }
  constexpr SimTime operator-(SimTime o) const { return SimTime(ps_ - o.ps_); }
  constexpr SimTime operator*(std::int64_t k) const { return SimTime(ps_ * k); }
  constexpr SimTime operator/(std::int64_t k) const { return SimTime(ps_ / k); }
  constexpr std::int64_t operator/(SimTime o) const { return ps_ / o.ps_; }
  constexpr SimTime operator%(SimTime o) const { return SimTime(ps_ % o.ps_); }
  SimTime& operator+=(SimTime o) { ps_ += o.ps_; return *this; }
  SimTime& operator-=(SimTime o) { ps_ -= o.ps_; return *this; }

  constexpr auto operator<=>(const SimTime&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr SimTime(std::int64_t ps) : ps_(ps) {}
  std::int64_t ps_ = 0;
};

// Transmission (serialization) time of `bytes` at `bits_per_second`.
constexpr SimTime TransmissionTime(std::uint32_t bytes, std::uint64_t bits_per_second) {
  // bytes * 8 bits * 1e12 ps/s / rate. Factored to avoid overflow:
  // 1e12 * 8 = 8e12; bytes up to ~64KB -> 5.2e17, fits in int64.
  return SimTime::Picos(static_cast<std::int64_t>(
      (static_cast<__int128>(bytes) * 8 * 1'000'000'000'000) / bits_per_second));
}

}  // namespace tdtcp
