// A deterministic, allocation-free future-event list.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which makes simulations reproducible regardless of heap internals. The
// core is allocation-free in steady state:
//
//  * Callbacks are stored in InlineEvent, a type-erased functor with a
//    fixed-capacity inline buffer (no std::function, no heap). Captures
//    larger than kInlineEventCapacity fail to compile.
//  * Callback slots live in a recycled slab of fixed-size blocks (stable
//    addresses, one cache line per slot); the 4-ary min-heap orders 16-byte
//    POD entries {time, key}.
//  * Same-time events are batched into COHORTS: the heap holds one entry per
//    distinct timestamp, and all events sharing that timestamp hang off it
//    as a FIFO chain through a recycled node pool. A direct-mapped
//    time->tail cache makes the append O(1) — no sift — so draining N
//    same-time events costs one sift-down total instead of N. The cache is
//    a pure accelerator: a missed hit merely creates a second heap entry
//    ("twin cohort") at the same time, and because appends only ever go to
//    the most recently cached cohort while sequence numbers are globally
//    monotonic, every seq in an older twin is smaller than every seq in a
//    newer one — the per-entry first-seq key keeps twins in exact FIFO
//    order.
//  * Cancellation is sequence-tagged: an EventId packs {seq, slot}, where
//    seq is the event's globally unique schedule sequence number. A chain
//    node whose seq no longer matches its slot's live seq is dead, so
//    Cancel() is O(1) with zero hashing, and a stale id can never alias a
//    later event (sequence numbers are monotonic, never recycled). Dead
//    nodes are skipped at the head and compacted wholesale when they exceed
//    half the pending chain nodes.
//  * Zero-delay events (Schedule(0, ...) via the Simulator — the dominant
//    pattern in link/queue handoff) bypass the heap entirely through a FIFO
//    lane, while the shared sequence counter keeps the combined firing
//    order identical to a single heap keyed on (time, schedule order).
//
// RunBatch() drains every event sharing the earliest timestamp (heap cohort
// twins + same-time lane arrivals, merged in seq order) in one call, and
// PeekBatchHorizon() exposes the same boundary as a read-only probe — the
// lookahead primitive conservative-parallel (PDES) sharding will reuse.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace tdtcp {

// Packs {seq, slot}: slot in the low kSlotIndexBits, the event's unique
// schedule sequence number above it. Sequence numbers start at 1, so no
// valid id ever equals kInvalidEventId.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Maximum capture size of a scheduled callback. Raise deliberately: every
// event slot carries this many bytes inline, and big captures usually mean a
// Packet is being copied into a lambda instead of going through the
// Simulator's packet freelist.
inline constexpr std::size_t kInlineEventCapacity = 48;

// A move-only type-erased callable with inline storage — the allocation-free
// replacement for std::function<void()> in the event core.
class InlineEvent {
 public:
  InlineEvent() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineEvent>>>
  InlineEvent(F&& f) {  // NOLINT(google-explicit-constructor)
    Emplace(std::forward<F>(f));
  }

  InlineEvent(InlineEvent&& o) noexcept {
    if (o.ops_ != nullptr) {
      ops_ = o.ops_;
      ops_->relocate(buf_, o.buf_);
      o.ops_ = nullptr;
    }
  }

  InlineEvent& operator=(InlineEvent&& o) noexcept {
    if (this != &o) {
      Reset();
      if (o.ops_ != nullptr) {
        ops_ = o.ops_;
        ops_->relocate(buf_, o.buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineEvent(const InlineEvent&) = delete;
  InlineEvent& operator=(const InlineEvent&) = delete;

  ~InlineEvent() { Reset(); }

  template <typename F>
  void Emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineEventCapacity,
                  "event capture exceeds kInlineEventCapacity — shrink the "
                  "lambda capture (stash Packets via Simulator::StashPacket)");
    static_assert(alignof(Fn) <= alignof(void*),
                  "over-aligned event capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event callables must be nothrow-movable");
    Reset();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &OpsFor<Fn>::kOps;
  }

  void operator()() { ops_->invoke(buf_); }

  // Single-indirect-call invoke-then-destroy, for the run loop's in-place
  // dispatch (the capture is destroyed even if the callback throws).
  void InvokeAndReset() {
    const Ops* ops = ops_;
    ops_ = nullptr;
    ops->invoke_destroy(buf_);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*invoke_destroy)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
  };

  template <typename Fn>
  struct OpsFor {
    static constexpr Ops kOps = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* p) {
          Fn* f = static_cast<Fn*>(p);
          struct Guard {
            Fn* f;
            ~Guard() { f->~Fn(); }
          } guard{f};
          (*f)();
        },
        [](void* dst, void* src) {
          Fn* s = static_cast<Fn*>(src);
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
    };
  };

  // Pointer alignment (not max_align_t) keeps a whole Slot — buffer, ops,
  // live tag — inside one 64-byte cache line; captures are pointers and
  // small integers, never over-aligned SIMD types.
  alignas(void*) unsigned char buf_[kInlineEventCapacity];
  const Ops* ops_ = nullptr;
};

class EventQueue {
 public:
  // Slot-index width inside an EventId. 2^20 concurrent pending events; the
  // remaining 43 sequence bits never overflow in any realistic run (checked
  // — Schedule throws rather than corrupting order).
  static constexpr std::uint32_t kSlotIndexBits = 20;
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotIndexBits;
  static constexpr std::uint64_t kMaxSeq =
      (std::uint64_t{1} << (63 - kSlotIndexBits)) - 1;

  EventQueue();

  // Schedules through the time-ordered heap. `ScheduleImmediate` is the
  // zero-delay fast lane: the caller (the Simulator) guarantees `at` equals
  // the current simulation time, so the entry can skip the heap and drain
  // FIFO. Both share one sequence counter, so the combined firing order is
  // exactly (time, schedule order).
  template <typename F>
  EventId Schedule(SimTime at, F&& fn) {
    const std::uint32_t slot = AcquireSlot(std::forward<F>(fn));
    return ScheduleHeap(at, slot);
  }

  template <typename F>
  EventId ScheduleImmediate(SimTime at, F&& fn) {
    const std::uint32_t slot = AcquireSlot(std::forward<F>(fn));
    const std::uint64_t seq = NextSeq();
    SlotRef(slot).live = seq | kLaneFlag;
    LanePush(LaneEntry{at, MakeKey(seq, slot)});
    ++live_count_;
    return MakeKey(seq, slot);
  }

  // Cancels a pending event. Cancelling an already-fired, already-cancelled,
  // or invalid id is a harmless no-op, which simplifies timer management in
  // protocol code. O(1): the slot's live tag is cleared so the queued entry
  // no longer matches, and the callback is destroyed eagerly.
  void Cancel(EventId id);

  bool Empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Time of the earliest live event; SimTime::Max() when empty.
  SimTime NextTime();

  struct Event {
    SimTime at;
    EventId id;
    InlineEvent fn;
  };

  // Pops the earliest live event WITHOUT running it. The caller must advance
  // its clock to event.at before invoking event.fn, so that callbacks
  // observe the correct current time. The callback is relocated out of its
  // slot (and the slot recycled) before the caller runs it, so callbacks may
  // freely schedule new events. Precondition: !Empty().
  Event PopNext();

  // Pops the earliest live event and invokes it in place: one indirect call,
  // no relocation. `now_out` is set to the event's time before the callback
  // runs. Safe against reentrant Schedule/Cancel because slots live in
  // fixed-size blocks that never move, and the entry's live tag is retired
  // before invocation. Precondition: !Empty().
  void RunNext(SimTime& now_out);

  // Drains EVERY live event sharing the earliest timestamp — the heap
  // cohort, its twins, and lane entries at the same instant, merged in
  // schedule-sequence order — and invokes each in place. Events the
  // callbacks schedule at the same instant (zero-delay chains through the
  // lane) join the batch, exactly as repeated RunNext calls would take
  // them. `now_out` is set to the batch timestamp before the first callback
  // runs; `stop` is re-checked between events so Simulator::Stop() keeps
  // its between-events semantics. Returns the number of events dispatched
  // (0 when empty). The dispatch order is bit-identical to calling
  // RunNext() in a loop.
  std::size_t RunBatch(SimTime& now_out, const bool& stop);

  // Read-only probe of the batch boundary: the earliest live timestamp, how
  // many live events currently share it, and the earliest strictly-later
  // live timestamp. This is the conservative-parallel (PDES) lookahead
  // primitive: a shard may safely dispatch `ready` events and advance its
  // local clock to `next_at` without synchronizing, provided no external
  // input can arrive before `next_at`. O(ready + twins) — it walks only the
  // equal-time prefix of the heap (same-time entries form a prefix-closed
  // subtree rooted at the top).
  struct BatchHorizon {
    SimTime at = SimTime::Max();       // earliest live event time
    SimTime next_at = SimTime::Max();  // earliest strictly-later live time
    std::size_t ready = 0;             // live events sharing `at`
  };
  BatchHorizon PeekBatchHorizon();

  // Monotonic internals counters (batching / cancellation observability).
  struct Counters {
    std::uint64_t batches = 0;       // RunBatch invocations that dispatched
    std::uint64_t max_batch = 0;     // largest single batch
    std::uint64_t cohort_hits = 0;   // O(1) same-time appends (sift skipped)
    std::uint64_t dead_dropped = 0;  // cancelled entries reclaimed lazily
    std::uint64_t compactions = 0;   // whole-heap compaction passes
  };
  const Counters& counters() const { return counters_; }

  // --- introspection / test hooks -------------------------------------------
  static std::uint32_t SlotOf(EventId id) {
    return static_cast<std::uint32_t>(id & (kMaxSlots - 1));
  }
  static std::uint64_t SeqOf(EventId id) { return id >> kSlotIndexBits; }
  // Backing-store sizes, for compaction tests. heap_storage counts heap
  // entries (one per distinct pending timestamp, dead cohorts included).
  std::size_t heap_storage_for_test() const { return heap_.size(); }
  std::size_t slab_size_for_test() const {
    return slot_blocks_.size() * kSlotBlock;
  }
  // Forces the global sequence counter, to exercise the overflow guard
  // without scheduling 2^43 events. Monotonicity must be preserved.
  void ForceNextSeqForTest(std::uint64_t seq) {
    assert(seq >= seq_);
    seq_ = seq;
  }

 private:
  // POD heap entry: 16 bytes, one per distinct pending timestamp. `key` is
  // (first_seq << kNodeIndexBits) | head_node: comparing keys compares the
  // chain head's FIFO sequence number (unique, so the node bits below never
  // decide), which both orders twin cohorts correctly and recovers the
  // chain head in O(1).
  struct Entry {
    SimTime at;
    std::uint64_t key;
  };

  // Lane entries reuse the 16-byte shape but their `key` is the EventId
  // (seq << kSlotIndexBits | slot) directly — the lane never mixes into the
  // heap, and the one lane-vs-heap merge point compares seqs explicitly.
  struct LaneEntry {
    SimTime at;
    std::uint64_t key;
  };

  // Chain node: the event's id plus the next node of its cohort (kNilNode
  // terminates). Free nodes thread the freelist through `next`.
  struct Node {
    std::uint64_t ev;
    std::uint32_t next;
  };
  static constexpr std::uint32_t kNilNode = 0xffffffffu;
  // Node-index width inside a heap key. One bit wider than the slot space:
  // cancelled events free their slot immediately but leave the chain node
  // in place until compaction, and compaction (triggered at >50% dead)
  // bounds dead nodes by live ones — so the pool never exceeds 2x slots.
  static constexpr std::uint32_t kNodeIndexBits = kSlotIndexBits + 1;
  static constexpr std::uint32_t kMaxNodes = 1u << kNodeIndexBits;
  static constexpr std::uint64_t kNodeIndexMask = kMaxNodes - 1;
  static_assert(kNodeIndexBits + 43 <= 64, "heap key overflow");

  // One cache line: 48B capture + ops pointer + live tag.
  struct Slot {
    InlineEvent fn;
    // Sequence number of the pending event occupying this slot (bit 63 set
    // when the entry is in the zero-delay lane, not the heap); 0 when free
    // or dead.
    std::uint64_t live = 0;
  };
  static constexpr std::uint64_t kLaneFlag = std::uint64_t{1} << 63;

  static EventId MakeKey(std::uint64_t seq, std::uint32_t slot) {
    return (seq << kSlotIndexBits) | slot;
  }
  static std::uint64_t HeapKey(std::uint64_t seq, std::uint32_t node) {
    return (seq << kNodeIndexBits) | node;
  }
  static std::uint64_t HeapFirstSeq(const Entry& e) {
    return e.key >> kNodeIndexBits;
  }

  // Fires-after ordering for the min-heap. Deliberately bitwise rather than
  // short-circuit: the sift loops compare essentially random entries, and a
  // flag-combine + cmov beats a ~50% mispredicted branch pair.
  static bool After(const Entry& a, const Entry& b) {
    const std::int64_t at_a = a.at.picos();
    const std::int64_t at_b = b.at.picos();
    return (at_a > at_b) | ((at_a == at_b) & (a.key > b.key));
  }

  std::uint64_t NextSeq() {
    if (seq_ > kMaxSeq) ThrowSeqExhausted();
    return seq_++;
  }
  [[noreturn]] void ThrowSeqExhausted() const;

  // Slots live in fixed-size blocks so growth never relocates a live slot —
  // the run loop invokes callbacks in place, and a callback scheduling new
  // events must not move the functor under its own feet.
  static constexpr std::size_t kSlotBlockShift = 6;
  static constexpr std::size_t kSlotBlock = std::size_t{1} << kSlotBlockShift;

  Slot& SlotRef(std::uint32_t i) {
    return slot_blocks_[i >> kSlotBlockShift][i & (kSlotBlock - 1)];
  }
  const Slot& SlotRef(std::uint32_t i) const {
    return slot_blocks_[i >> kSlotBlockShift][i & (kSlotBlock - 1)];
  }

  template <typename F>
  std::uint32_t AcquireSlot(F&& fn) {
    if (free_slots_.empty()) GrowSlab();
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    SlotRef(slot).fn.Emplace(std::forward<F>(fn));
    return slot;
  }

  void GrowSlab();

  bool EventDead(std::uint64_t ev) const {
    return (SlotRef(SlotOf(ev)).live & ~kLaneFlag) != (ev >> kSlotIndexBits);
  }

  // --- cohort plumbing -------------------------------------------------------
  // Set-associative time -> chain-tail cache, the O(1) append accelerator.
  // 4 ways of 16 bytes fill exactly one cache line per set, and 512 sets
  // (32 KiB) hold ~2000 distinct pending timestamps before conflicts start
  // — a direct-mapped table thrashes badly at the event core's typical
  // ~1000 live timestamps. Eviction and wholesale invalidation are always
  // CORRECT (the next same-time schedule just opens a twin cohort); the one
  // mandatory maintenance point is clearing the entry when its cohort fully
  // drains — a stale hit would append to a freed node and lose the event.
  static constexpr std::uint32_t kCohortSetBits = 9;
  static constexpr std::size_t kCohortSets = std::size_t{1} << kCohortSetBits;
  static constexpr std::size_t kCohortWays = 4;
  struct CohortRef {
    std::int64_t at_ps;  // -1 = empty (negative times are never cached)
    std::uint32_t tail;
    std::uint32_t pad;
  };
  struct alignas(64) CohortSet {
    CohortRef way[kCohortWays];
  };
  static std::size_t CohortIndex(std::int64_t ps) {
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(ps) * 0x9E3779B97F4A7C15ull) >>
        (64 - kCohortSetBits));
  }
  void ClearCohortRef(SimTime at) {
    CohortSet& set = cohort_cache_[CohortIndex(at.picos())];
    for (std::size_t w = 0; w < kCohortWays; ++w) {
      if (set.way[w].at_ps == at.picos()) {
        set.way[w].at_ps = -1;
        return;
      }
    }
  }
  void InvalidateCohortCache();

  EventId ScheduleHeap(SimTime at, std::uint32_t slot);
  std::uint32_t AllocNode(std::uint64_t ev);
  void FreeNode(std::uint32_t n) {
    nodes_[n].next = node_free_;
    node_free_ = n;
  }
  // Detaches and frees the heap front's chain head (advancing the cohort or
  // popping the entry) and returns the event id. Precondition: the head
  // node's event is live.
  std::uint64_t TakeHeapHead();

  static constexpr std::size_t kHeapArity = 4;

  // Growable POD entry buffer, 64-byte-aligned with the data pointer offset
  // by 3 entries: the 4-child group of node i (indices 4i+1..4i+4, 64 bytes)
  // then starts at byte 64(i+1) — exactly one cache line per sift level.
  class EntryBuf {
   public:
    EntryBuf() = default;
    ~EntryBuf();
    EntryBuf(const EntryBuf&) = delete;
    EntryBuf& operator=(const EntryBuf&) = delete;

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    Entry& operator[](std::size_t i) { return data_[i]; }
    const Entry& operator[](std::size_t i) const { return data_[i]; }
    Entry& front() { return data_[0]; }
    const Entry& front() const { return data_[0]; }
    Entry& back() { return data_[size_ - 1]; }
    void push_back(const Entry& e) {
      if (size_ == cap_) Grow();
      data_[size_++] = e;
    }
    void pop_back() { --size_; }
    void resize_down(std::size_t n) { size_ = n; }  // compaction pack

   private:
    static constexpr std::size_t kPad = kHeapArity - 1;
    void Grow();

    void* raw_ = nullptr;
    Entry* data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
  };

  struct Taken {
    SimTime at;
    EventId ev;
  };
  Taken TakeNextEntry();
  void SiftUp(std::size_t i);
  void SiftDown(std::size_t i);
  void HeapPopTop();
  void DropDeadHeads();
  // Rebuilds the heap without dead chain nodes once they exceed half the
  // pending pool, so cancel-heavy workloads (RTO timers under low loss)
  // stay bounded.
  void MaybeCompact();
  void Compact();

  void LanePush(const LaneEntry& e);
  void LanePop();
  const LaneEntry* LaneFront() const {
    return lane_count_ == 0 ? nullptr : &lane_[lane_head_];
  }

  std::vector<std::unique_ptr<Slot[]>> slot_blocks_;
  std::vector<std::uint32_t> free_slots_;
  EntryBuf heap_;
  std::vector<Node> nodes_;
  std::uint32_t node_free_ = kNilNode;
  std::unique_ptr<CohortSet[]> cohort_cache_;
  std::uint32_t cohort_rr_ = 0;  // round-robin way replacement cursor
  std::vector<LaneEntry> lane_;  // circular; size is a power of two
  std::size_t lane_head_ = 0;
  std::size_t lane_count_ = 0;
  std::uint64_t seq_ = 1;
  std::size_t live_count_ = 0;
  std::size_t heap_nodes_ = 0;  // chain nodes linked into the heap (incl. dead)
  std::size_t heap_dead_ = 0;   // dead chain nodes
  std::size_t lane_dead_ = 0;
  Counters counters_;
  std::vector<std::uint32_t> horizon_scratch_;  // PeekBatchHorizon DFS stack
};

}  // namespace tdtcp
