// A deterministic future-event list.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which makes simulations reproducible regardless of heap internals.
// Cancellation is lazy: a cancelled event stays in the heap but is skipped
// when popped, keeping Cancel() O(1).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace tdtcp {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  EventId Schedule(SimTime at, std::function<void()> fn);

  // Cancels a pending event. Cancelling an already-fired, already-cancelled,
  // or invalid id is a harmless no-op, which simplifies timer management in
  // protocol code.
  void Cancel(EventId id);

  bool Empty() const { return live_.empty(); }
  std::size_t size() const { return live_.size(); }

  // Time of the earliest live event; SimTime::Max() when empty.
  SimTime NextTime();

  struct Event {
    SimTime at;
    EventId id;  // also the FIFO tie-breaker: ids are monotonically increasing
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  // Pops the earliest live event WITHOUT running it. The caller must advance
  // its clock to event.at before invoking event.fn, so that callbacks
  // observe the correct current time. Precondition: !Empty().
  Event PopNext();

 private:

  // Pops heap entries whose id is no longer live (cancelled).
  void DropDeadHead();

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::unordered_set<EventId> live_;
  EventId next_id_ = 1;
};

}  // namespace tdtcp
