// Order-sensitive FNV-1a 64 accumulator, for compact determinism
// fingerprints: fault traces (FaultInjector::TraceHash) and packet-tap
// hashes in tests digest event streams to one comparable value.
#pragma once

#include <cstdint>

namespace tdtcp {

class Fnv1a64 {
 public:
  // Mixes the 8 bytes of `v` (little-endian) into the running hash.
  void Mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xff;
      hash_ *= 0x100000001b3ull;
    }
  }

  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

}  // namespace tdtcp
