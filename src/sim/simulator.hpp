// The simulation driver: a clock plus the future-event list.
//
// All model components hold a Simulator& and schedule callbacks through it;
// nothing in the simulator blocks or uses wall-clock time.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace tdtcp {

class Simulator {
 public:
  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` after the current time (delay may be zero;
  // zero-delay events run after the current event completes, in FIFO order).
  EventId Schedule(SimTime delay, std::function<void()> fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` at absolute time `at`. Scheduling in the past throws
  // std::logic_error in every build type (not just debug builds): a stale
  // event would corrupt the event order silently otherwise.
  EventId ScheduleAt(SimTime at, std::function<void()> fn);

  void Cancel(EventId id) { queue_.Cancel(id); }

  // Runs until the event list drains or Stop() is called.
  void Run();

  // Runs events with time <= `until`, then advances the clock to `until`.
  void RunUntil(SimTime until);

  void RunFor(SimTime duration) { RunUntil(now_ + duration); }

  // Stops Run()/RunUntil() after the current event returns.
  void Stop() { stopped_ = true; }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const { return queue_.size(); }

  // Per-simulation packet id source (for tracing; never affects protocol
  // behaviour). Owned by the Simulator so concurrent simulations on
  // different threads never share mutable state and ids replay
  // deterministically for a given (config, seed).
  std::uint64_t NextPacketId() { return next_packet_id_++; }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::Zero();
  bool stopped_ = false;
  std::uint64_t events_executed_ = 0;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace tdtcp
