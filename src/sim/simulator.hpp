// The simulation driver: a clock plus the future-event list.
//
// All model components hold a Simulator& and schedule callbacks through it;
// nothing in the simulator blocks or uses wall-clock time. The event core is
// allocation-free in steady state (see event_queue.hpp); the Simulator adds
// a recycled per-simulation Packet freelist so the packet path never copies
// a Packet into a lambda capture or touches the heap per hop.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace tdtcp {

struct Packet;

class Simulator {
 public:
  Simulator();
  ~Simulator();

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run `delay` after the current time (delay may be zero;
  // zero-delay events run after the current event completes, in FIFO order,
  // through a dedicated lane that bypasses the heap).
  template <typename F>
  EventId Schedule(SimTime delay, F&& fn) {
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Schedules `fn` at absolute time `at`. Scheduling in the past throws
  // std::logic_error in every build type (not just debug builds): a stale
  // event would corrupt the event order silently otherwise.
  template <typename F>
  EventId ScheduleAt(SimTime at, F&& fn) {
    if (at < now_) ThrowScheduledInPast(at);
    if (at == now_) return queue_.ScheduleImmediate(at, std::forward<F>(fn));
    return queue_.Schedule(at, std::forward<F>(fn));
  }

  // Fire-once scheduling for "schedule and forget" call sites: never assigns
  // the caller an EventId, so the event cannot be cancelled and no liveness
  // handle escapes. (With sequence-tagged slots the bookkeeping itself is
  // already O(1) and hash-free; this overload exists so the dominant call
  // sites state their intent and never pay for or misuse a dead id.)
  template <typename F>
  void ScheduleNoCancel(SimTime delay, F&& fn) {
    (void)Schedule(delay, std::forward<F>(fn));
  }
  template <typename F>
  void ScheduleAtNoCancel(SimTime at, F&& fn) {
    (void)ScheduleAt(at, std::forward<F>(fn));
  }

  void Cancel(EventId id) { queue_.Cancel(id); }

  // Runs until the event list drains or Stop() is called.
  void Run();

  // Runs events with time <= `until`, then advances the clock to `until`.
  void RunUntil(SimTime until);

  void RunFor(SimTime duration) { RunUntil(now_ + duration); }

  // Stops Run()/RunUntil() after the current event returns.
  void Stop() { stopped_ = true; }

  // Batched dispatch (default on): the run loops drain all events sharing a
  // timestamp through EventQueue::RunBatch — one heap interaction per
  // distinct time instead of per event. The dispatch order is bit-identical
  // to event-at-a-time execution (the batch is the same merged seq-ordered
  // stream RunNext would produce); the switch exists so the
  // batched-vs-sequential soak can prove that, not because behaviour
  // differs.
  void set_batched_dispatch(bool on) { batched_dispatch_ = on; }
  bool batched_dispatch() const { return batched_dispatch_; }

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t pending_events() const { return queue_.size(); }

  // PDES lookahead probe (see EventQueue::PeekBatchHorizon).
  EventQueue::BatchHorizon PeekBatchHorizon() {
    return queue_.PeekBatchHorizon();
  }

  // Event-core internals counters, surfaced as sim_* sweep metrics.
  struct Stats {
    std::uint64_t events_executed = 0;
    std::uint64_t batches = 0;       // RunBatch calls that dispatched
    std::uint64_t max_batch = 0;     // largest same-timestamp batch
    std::uint64_t cohort_hits = 0;   // O(1) same-time appends (no sift)
    std::uint64_t dead_dropped = 0;  // cancelled entries reclaimed lazily
    std::uint64_t compactions = 0;   // whole-heap compaction passes
  };
  Stats GetStats() const {
    const EventQueue::Counters& c = queue_.counters();
    return Stats{events_executed_, c.batches,      c.max_batch,
                 c.cohort_hits,    c.dead_dropped, c.compactions};
  }

  // Per-simulation packet id source (for tracing; never affects protocol
  // behaviour). Owned by the Simulator so concurrent simulations on
  // different threads never share mutable state and ids replay
  // deterministically for a given (config, seed).
  std::uint64_t NextPacketId() { return next_packet_id_++; }

  // --- packet freelist --------------------------------------------------------
  // Parks a packet in recycled per-simulation storage and returns a stable
  // pointer, so in-flight packets ride event captures as one pointer instead
  // of a by-value Packet copy. Every StashPacket must be paired with exactly
  // one ReleasePacket after the packet has been moved out (or dropped).
  Packet* StashPacket(Packet&& p);
  void ReleasePacket(Packet* p);
  std::size_t stashed_packets() const;  // currently outstanding (for tests)

 private:
  struct PacketPool;

  [[noreturn]] void ThrowScheduledInPast(SimTime at) const;

  EventQueue queue_;
  SimTime now_ = SimTime::Zero();
  bool stopped_ = false;
  bool batched_dispatch_ = true;
  std::uint64_t events_executed_ = 0;
  std::uint64_t next_packet_id_ = 1;
  std::unique_ptr<PacketPool> packet_pool_;
};

}  // namespace tdtcp
