#include "sim/time.hpp"

#include <cstdio>

namespace tdtcp {

std::string SimTime::ToString() const {
  char buf[48];
  if (ps_ % 1'000'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(micros()));
  } else if (ps_ % 1'000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(nanos()));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldps", static_cast<long long>(ps_));
  }
  return buf;
}

}  // namespace tdtcp
