// Minimal JSON document model, writer helpers, and parser shared by every
// serialization schema in the tree (tdtcp-sweep/1, tdtcp-bench/1,
// tdtcp-trace/1). Lives in the base library so higher layers (app/, trace/)
// can both use it without depending on each other.
//
// The parser accepts exactly the subset of JSON the writers emit (objects,
// arrays, strings, numbers, literals) so documents round-trip without
// third-party dependencies.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace tdtcp {

struct JsonValue {
  enum class Type { kNull, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* Find(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  double NumberOr(double def) const {
    return type == Type::kNumber ? number : def;
  }
};

// Parses a JSON document; throws std::runtime_error on malformed input.
JsonValue ParseJson(const std::string& text);

// %.17g: round-trips every finite double exactly.
std::string NumberToJson(double v);

// Escapes ", \, and control bytes for embedding in a JSON string literal.
std::string EscapeJson(const std::string& s);

// Whole-file helpers used by every Write*/Read* entry point. WriteTextFile
// appends a trailing newline; both throw std::runtime_error on I/O failure.
std::string ReadTextFile(const std::string& path);
void WriteTextFile(const std::string& path, const std::string& text);

}  // namespace tdtcp
