#include "sim/json.hpp"

#include <cctype>
#include <cstdio>
#include <stdexcept>

namespace tdtcp {

std::string NumberToJson(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void Fail(const char* what) {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail("unexpected character");
    ++pos_;
  }

  JsonValue ParseValue() {
    // A hostile input of "[[[[[..." would otherwise recurse once per byte
    // and overflow the stack long before any other check fires.
    if (depth_ >= kMaxDepth) Fail("nesting too deep");
    ++depth_;
    JsonValue v = ParseValueInner();
    --depth_;
    return v;
  }

  JsonValue ParseValueInner() {
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = ParseString();
        return v;
      }
      case 't': ParseLiteral("true"); return MakeNumber(1);
      case 'f': ParseLiteral("false"); return MakeNumber(0);
      case 'n': ParseLiteral("null"); return JsonValue{};
      default: return ParseNumber();
    }
  }

  static JsonValue MakeNumber(double d) {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  void ParseLiteral(const char* lit) {
    SkipSpace();
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) Fail("bad literal");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Manual hex parse: std::stoi would accept partial garbage
            // ("\u12zz") or throw an unhelpful exception ("\uzzzz").
            if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              unsigned digit;
              if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') digit = static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') digit = static_cast<unsigned>(h - 'A' + 10);
              else Fail("non-hex digit in \\u escape");
              code = code * 16 + digit;
            }
            // The writer only emits \u for control bytes; anything wider
            // would need UTF-8 encoding we don't produce.
            if (code > 0xff) Fail("\\u escape outside Latin-1 range");
            out += static_cast<char>(code);
            pos_ += 4;
            break;
          }
          default: Fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) Fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue ParseNumber() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected number");
    const std::string tok = text_.substr(start, pos_ - start);
    double d;
    std::size_t consumed = 0;
    try {
      d = std::stod(tok, &consumed);
    } catch (const std::exception&) {
      Fail("malformed number");  // "-", "1e", "..", "1e999" (overflow), ...
    }
    if (consumed != tok.size()) Fail("malformed number");
    return MakeNumber(d);
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = ParseString();
      Expect(':');
      v.object.emplace(std::move(key), ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  static constexpr int kMaxDepth = 200;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

std::string ReadTextFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) throw std::runtime_error("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return text;
}

void WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot open " + path);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace tdtcp
