// Hierarchical timer wheel: one per host, servicing every connection's
// RTO/TLP/persist/TimeWait timers with O(1) arm/disarm/rearm and zero
// steady-state allocation.
//
// Why not the event heap? A churning host re-arms its RTO on every ACK; with
// per-connection heap events that is four live heap slots per connection and
// a log(n) sift per rearm. The wheel replaces them with an intrusive
// doubly-linked entry embedded in the connection: arming is a list append
// into a pow2 slot, disarming is an unlink, and a single Simulator event (the
// "driver") services the whole wheel, so 10k connections cost one heap entry
// instead of 40k.
//
// Determinism contract (the jobs=1 == jobs=N and trace-replay invariants
// both lean on it):
//  - Deadlines are quantized UP to the wheel tick (2^20 ps ~ 1.05 us) at Arm
//    time, and Arm returns the quantized fire time, so traced deadlines are
//    exactly the times callbacks later run at.
//  - Timers sharing a tick fire in deterministic order; timers armed from
//    the same instant fire in FIFO arm order (cascades splice lists in
//    order, inserts append at the tail).
//  - Nothing here reads wall clocks or addresses: firing order is a pure
//    function of (arm time, deadline) sequences.
//
// Levels are 64 slots wide; level L's slots are 64^L ticks apart. An entry
// further out than level 0's horizon parks at the coarsest level that can
// hold it and *cascades* down (re-inserts by its remaining delta) when the
// wheel's cursor enters its slot's range — the classic hashed hierarchical
// wheel, except the cursor jumps straight to the next occupied tick (via
// per-level occupancy bitmaps) instead of ticking through empty slots.
#pragma once

#include <cassert>
#include <cstdint>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {

class TimerWheel {
 public:
  static constexpr int kTickShift = 20;  // tick = 2^20 ps ~ 1.05 us
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64 slots per level
  static constexpr int kLevels = 6;              // 64^6 ticks ~ 20 h horizon

  // Intrusive entry. Embed one per logical timer (a connection embeds four);
  // Init once with a trampoline + context, then Arm/Disarm freely. Must not
  // be moved while armed (the wheel holds its address).
  class Timer {
    friend class TimerWheel;

   public:
    Timer() = default;
    ~Timer() {
      if (wheel_ != nullptr) wheel_->Disarm(*this);
    }
    Timer(const Timer&) = delete;
    Timer& operator=(const Timer&) = delete;

    void Init(void* ctx, void (*fn)(void*)) {
      ctx_ = ctx;
      fn_ = fn;
    }
    bool armed() const { return wheel_ != nullptr; }
    // Quantized fire time; meaningful only while armed.
    SimTime deadline() const {
      return SimTime::Picos(tick_ << TimerWheel::kTickShift);
    }

   private:
    Timer* prev_ = nullptr;
    Timer* next_ = nullptr;
    TimerWheel* wheel_ = nullptr;  // non-null while armed
    std::int64_t tick_ = 0;
    std::int8_t level_ = 0;
    std::int8_t slot_ = 0;
    void (*fn_)(void*) = nullptr;
    void* ctx_ = nullptr;
  };

  explicit TimerWheel(Simulator& sim) : sim_(sim) {}
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  // Arms (or rearms — the pending deadline is replaced) `t` to fire at `at`,
  // rounded up to the next wheel tick, never earlier than the next tick
  // boundary at or after now. Returns the quantized fire time. O(1).
  SimTime Arm(Timer& t, SimTime at);

  // O(1) and idempotent: disarming an unarmed timer is a no-op, so teardown
  // paths may disarm unconditionally (and repeatedly) without bookkeeping.
  void Disarm(Timer& t);

  std::size_t armed_count() const { return armed_; }
  std::uint64_t cascades() const { return cascades_; }
  std::uint64_t fired() const { return fired_; }

  // Cascade observability: emits kWheelCascade (flow 0, `scope` in a3 — the
  // owning host's NodeId) whenever a slot's entries re-insert downward.
  void SetTrace(TraceRing* ring, std::uint64_t scope) {
    trace_ = ring;
    scope_ = scope;
  }

 private:
  struct Slot {
    Timer* head = nullptr;
    Timer* tail = nullptr;
  };

  static std::int64_t CeilTick(std::int64_t picos) {
    return (picos + ((std::int64_t{1} << kTickShift) - 1)) >> kTickShift;
  }

  void Insert(Timer& t);
  void Unlink(Timer& t);
  void Cascade(int level, int slot);
  // Earliest tick at which anything could be due (exact for level 0, the
  // slot-range start for coarser levels), or -1 when the wheel is idle.
  std::int64_t NextOccupiedTick() const;
  void ScheduleDriver();
  void OnDriver();
  void FireCurrentSlot();

  Simulator& sim_;
  Slot slots_[kLevels][kSlots];
  std::uint64_t occupied_[kLevels] = {};  // bit s set <=> slots_[L][s] nonempty
  // Wheel cursor: every entry's tick is >= current_tick_, and level-0 slots
  // hold only ticks within (current_tick_, current_tick_ + kSlots).
  std::int64_t current_tick_ = 0;
  std::size_t armed_ = 0;
  bool firing_ = false;
  EventId driver_ = kInvalidEventId;
  std::int64_t driver_tick_ = -1;
  std::uint64_t cascades_ = 0;
  std::uint64_t fired_ = 0;
  TraceRing* trace_ = nullptr;
  std::uint64_t scope_ = 0;
};

}  // namespace tdtcp
