#include "sim/timer_wheel.hpp"

#include <bit>

namespace tdtcp {

TimerWheel::~TimerWheel() {
  if (driver_ != kInvalidEventId) sim_.Cancel(driver_);
  // Orphan any still-armed entries so their destructors (which may run after
  // this wheel is gone) see an unarmed timer instead of a dangling pointer.
  for (auto& level : slots_) {
    for (Slot& s : level) {
      for (Timer* t = s.head; t != nullptr;) {
        Timer* next = t->next_;
        t->wheel_ = nullptr;
        t->prev_ = t->next_ = nullptr;
        t = next;
      }
    }
  }
}

SimTime TimerWheel::Arm(Timer& t, SimTime at) {
  assert(t.fn_ != nullptr && "Timer::Init before Arm");
  if (t.wheel_ != nullptr) {
    assert(t.wheel_ == this);
    Unlink(t);
    --armed_;
  }
  // With nothing armed the cursor is free to fast-forward to now; tight
  // deltas keep entries at the lowest level and cascades rare.
  if (armed_ == 0 && !firing_) {
    current_tick_ = sim_.now().picos() >> kTickShift;
  }
  std::int64_t tick = CeilTick(at.picos());
  const std::int64_t now_ceil = CeilTick(sim_.now().picos());
  if (tick < now_ceil) tick = now_ceil;
  // Outside the driver, tick == current_tick_ would name a slot the cursor
  // already passed; push it to the next tick (inside the driver the firing
  // loop re-checks the current slot, so "due this tick" is fine).
  if (!firing_ && tick <= current_tick_) tick = current_tick_ + 1;
  t.tick_ = tick;
  t.wheel_ = this;
  Insert(t);
  ++armed_;
  if (!firing_) ScheduleDriver();
  return SimTime::Picos(tick << kTickShift);
}

void TimerWheel::Disarm(Timer& t) {
  if (t.wheel_ == nullptr) return;  // idempotent: double-disarm is a no-op
  assert(t.wheel_ == this);
  Unlink(t);
  t.wheel_ = nullptr;
  --armed_;
  // The driver event is left in place: a stale wake finds nothing due and
  // reschedules, which is cheaper than cancel churn on every disarm.
}

void TimerWheel::Insert(Timer& t) {
  const std::int64_t delta = t.tick_ - current_tick_;
  assert(delta >= 0);
  int level = 0;
  while (level < kLevels - 1 &&
         (delta >> (kSlotBits * (level + 1))) != 0) {
    ++level;
  }
  const int slot =
      static_cast<int>((t.tick_ >> (kSlotBits * level)) & (kSlots - 1));
  t.level_ = static_cast<std::int8_t>(level);
  t.slot_ = static_cast<std::int8_t>(slot);
  Slot& s = slots_[level][slot];
  t.prev_ = s.tail;
  t.next_ = nullptr;
  if (s.tail != nullptr) {
    s.tail->next_ = &t;
  } else {
    s.head = &t;
  }
  s.tail = &t;
  occupied_[level] |= std::uint64_t{1} << slot;
}

void TimerWheel::Unlink(Timer& t) {
  Slot& s = slots_[t.level_][t.slot_];
  if (t.prev_ != nullptr) {
    t.prev_->next_ = t.next_;
  } else {
    s.head = t.next_;
  }
  if (t.next_ != nullptr) {
    t.next_->prev_ = t.prev_;
  } else {
    s.tail = t.prev_;
  }
  t.prev_ = t.next_ = nullptr;
  if (s.head == nullptr) {
    occupied_[t.level_] &= ~(std::uint64_t{1} << t.slot_);
  }
}

std::int64_t TimerWheel::NextOccupiedTick() const {
  std::int64_t best = -1;
  for (int level = 0; level < kLevels; ++level) {
    const std::uint64_t bits = occupied_[level];
    if (bits == 0) continue;
    const int cursor =
        static_cast<int>((current_tick_ >> (kSlotBits * level)) & (kSlots - 1));
    // Cyclic distance 1..64 to the next occupied slot. The cursor's own slot
    // counts as a full lap: at level 0 it was just fired, at coarser levels
    // it was cascaded on range entry, so anything (re)inserted there belongs
    // to the next wrap.
    const std::uint64_t rot = std::rotr(bits, (cursor + 1) & (kSlots - 1));
    const int dist = std::countr_zero(rot) + 1;
    std::int64_t cand;
    if (level == 0) {
      cand = current_tick_ + dist;
    } else {
      cand = ((current_tick_ >> (kSlotBits * level)) + dist)
             << (kSlotBits * level);
    }
    if (best < 0 || cand < best) best = cand;
  }
  return best;
}

void TimerWheel::ScheduleDriver() {
  const std::int64_t next = NextOccupiedTick();
  if (next == driver_tick_) return;
  if (driver_ != kInvalidEventId) {
    sim_.Cancel(driver_);
    driver_ = kInvalidEventId;
  }
  driver_tick_ = next;
  if (next < 0) return;  // idle
  // A coarse-level candidate is the slot-range *start*, which can lie in the
  // past when the cursor is stale; wake now and let the driver cascade its
  // way down to the real deadlines.
  SimTime at = SimTime::Picos(next << kTickShift);
  if (at < sim_.now()) at = sim_.now();
  driver_ = sim_.ScheduleAt(at, [this] { OnDriver(); });
}

void TimerWheel::OnDriver() {
  driver_ = kInvalidEventId;
  driver_tick_ = -1;
  firing_ = true;
  const std::int64_t now_tick = sim_.now().picos() >> kTickShift;
  while (true) {
    const std::int64_t next = NextOccupiedTick();
    if (next < 0 || next > now_tick) break;
    // Enter `next`'s range at every level (coarse first, so re-inserted
    // entries land below and are themselves cascaded/fired this pass).
    const std::int64_t prev = current_tick_;
    current_tick_ = next;
    for (int level = kLevels - 1; level >= 1; --level) {
      if ((next >> (kSlotBits * level)) != (prev >> (kSlotBits * level))) {
        Cascade(level, static_cast<int>((next >> (kSlotBits * level)) &
                                        (kSlots - 1)));
      }
    }
    FireCurrentSlot();
  }
  if (current_tick_ < now_tick) current_tick_ = now_tick;
  firing_ = false;
  ScheduleDriver();
}

void TimerWheel::Cascade(int level, int slot) {
  Slot& s = slots_[level][slot];
  Timer* t = s.head;
  if (t == nullptr) return;
  s.head = s.tail = nullptr;
  occupied_[level] &= ~(std::uint64_t{1} << slot);
  std::uint64_t moved = 0;
  while (t != nullptr) {
    Timer* next = t->next_;
    t->prev_ = t->next_ = nullptr;
    Insert(*t);  // re-place by remaining delta (list order preserved)
    ++moved;
    t = next;
  }
  ++cascades_;
  if (trace_ != nullptr) {
    trace_->Emit(sim_.now().picos(), TracePoint::kWheelCascade, 0,
                 static_cast<std::uint64_t>(level),
                 static_cast<std::uint64_t>(slot), moved, scope_);
  }
}

void TimerWheel::FireCurrentSlot() {
  const int slot = static_cast<int>(current_tick_ & (kSlots - 1));
  Slot& s = slots_[0][slot];
  // Pop-and-fire one entry at a time: a callback may disarm or rearm any
  // other pending entry — including ones due this very tick — so the list
  // must stay intact (and disarmable) between callbacks. New arms for this
  // tick append at the tail and are drained by the same loop.
  while (Timer* t = s.head) {
    assert(t->tick_ == current_tick_);
    Unlink(*t);
    t->wheel_ = nullptr;
    --armed_;
    ++fired_;
    t->fn_(t->ctx_);
  }
}

}  // namespace tdtcp
