#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace tdtcp {

EventId EventQueue::Schedule(SimTime at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Event{at, id, std::move(fn)});
  live_.insert(id);
  return id;
}

void EventQueue::Cancel(EventId id) {
  live_.erase(id);
}

void EventQueue::DropDeadHead() {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  DropDeadHead();
  return heap_.empty() ? SimTime::Max() : heap_.top().at;
}

EventQueue::Event EventQueue::PopNext() {
  DropDeadHead();
  assert(!heap_.empty());
  // Move the callback out before popping: the callback may schedule events,
  // and we must not hold a reference into the heap while it runs.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  live_.erase(ev.id);
  return ev;
}

}  // namespace tdtcp
