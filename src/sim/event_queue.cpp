#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace tdtcp {
namespace {

// Below this many chain nodes a compaction pass costs more than it saves.
constexpr std::size_t kCompactMinNodes = 64;

}  // namespace

EventQueue::EventQueue()
    // Plain array-new: CohortSet is trivial, so the storage stays
    // uninitialized until the one memset below (make_unique would zero it
    // first and touch the 32 KiB twice per Simulator construction).
    : cohort_cache_(new CohortSet[kCohortSets]) {
  InvalidateCohortCache();
}

void EventQueue::InvalidateCohortCache() {
  // 0xff bytes give at_ps = -1 (empty) in one memset; tail is never read
  // while at_ps is the sentinel.
  static_assert(std::is_trivially_copyable_v<CohortSet>);
  std::memset(cohort_cache_.get(), 0xff, kCohortSets * sizeof(CohortSet));
}

EventQueue::EntryBuf::~EntryBuf() {
  if (raw_ != nullptr) ::operator delete(raw_, std::align_val_t{64});
}

void EventQueue::EntryBuf::Grow() {
  static_assert(sizeof(Entry) == 16 && std::is_trivially_copyable_v<Entry>);
  const std::size_t ncap = std::max<std::size_t>(64, cap_ * 2);
  void* nraw = ::operator new((kPad + ncap) * sizeof(Entry), std::align_val_t{64});
  Entry* ndata = static_cast<Entry*>(nraw) + kPad;
  if (size_ != 0) std::memcpy(ndata, data_, size_ * sizeof(Entry));
  if (raw_ != nullptr) ::operator delete(raw_, std::align_val_t{64});
  raw_ = nraw;
  data_ = ndata;
  cap_ = ncap;
}

void EventQueue::GrowSlab() {
  if (slot_blocks_.size() * kSlotBlock >= kMaxSlots) {
    throw std::length_error(
        "EventQueue: too many concurrent pending events (kMaxSlots)");
  }
  auto block = std::make_unique<Slot[]>(kSlotBlock);
  const std::uint32_t base =
      static_cast<std::uint32_t>(slot_blocks_.size() * kSlotBlock);
  slot_blocks_.push_back(std::move(block));
  free_slots_.reserve(slot_blocks_.size() * kSlotBlock);
  for (std::size_t i = kSlotBlock; i-- > 0;) {
    free_slots_.push_back(base + static_cast<std::uint32_t>(i));
  }
}

void EventQueue::ThrowSeqExhausted() const {
  throw std::length_error("EventQueue: schedule sequence space exhausted");
}

std::uint32_t EventQueue::AllocNode(std::uint64_t ev) {
  std::uint32_t n = node_free_;
  if (n == kNilNode) {
    if (nodes_.size() >= kMaxNodes) {
      throw std::length_error("EventQueue: chain node pool exhausted");
    }
    n = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{ev, kNilNode});
    return n;
  }
  node_free_ = nodes_[n].next;
  nodes_[n] = Node{ev, kNilNode};
  return n;
}

EventId EventQueue::ScheduleHeap(SimTime at, std::uint32_t slot) {
  const std::uint64_t seq = NextSeq();
  SlotRef(slot).live = seq;
  const EventId id = MakeKey(seq, slot);
  const std::uint32_t node = AllocNode(id);
  const std::int64_t ps = at.picos();
  CohortSet& set = cohort_cache_[CohortIndex(ps)];
  // One fused pass over the set's four ways (one cache line): find the hit
  // and, failing that, the first empty way to insert into.
  CohortRef* hit = nullptr;
  CohortRef* empty = nullptr;
  for (std::size_t w = 0; w < kCohortWays; ++w) {
    CohortRef& c = set.way[w];
    if (c.at_ps == ps) {
      hit = &c;
      break;
    }
    if (empty == nullptr && c.at_ps < 0) empty = &c;
  }
  if (hit != nullptr) {
    // Same-time append: chain onto the cached cohort's tail, no heap
    // traffic at all. Sequence monotonicity keeps the chain FIFO-sorted.
    nodes_[hit->tail].next = node;
    hit->tail = node;
    ++counters_.cohort_hits;
  } else {
    heap_.push_back(Entry{at, HeapKey(seq, node)});
    SiftUp(heap_.size() - 1);
    if (ps >= 0) {
      // No empty way: replace round-robin. Replacement is deterministic (a
      // counter, not wall-clock or randomness) and only ever costs
      // performance: an evicted time just reopens as a twin.
      if (empty == nullptr) empty = &set.way[cohort_rr_++ & (kCohortWays - 1)];
      *empty = CohortRef{ps, node, 0};
    }
  }
  ++heap_nodes_;
  ++live_count_;
  return id;
}

void EventQueue::Cancel(EventId id) {
  const std::uint32_t slot = SlotOf(id);
  if (slot >= slab_size_for_test()) return;  // never existed
  Slot& s = SlotRef(slot);
  // A live slot's tag equals the id's sequence number; anything else means
  // the event already fired, was already cancelled, or the id is bogus. A
  // free slot's tag is 0, which only the (invalid) zero sequence matches.
  const std::uint64_t seq = SeqOf(id);
  if (seq == 0 || (s.live & ~kLaneFlag) != seq) return;
  const bool was_lane = (s.live & kLaneFlag) != 0;
  s.fn.Reset();  // destroy the capture eagerly; the entry is now dead
  s.live = 0;
  free_slots_.push_back(slot);
  --live_count_;
  if (was_lane) {
    ++lane_dead_;
  } else {
    // The chain node stays linked (O(1) cancel); drain skips it lazily and
    // compaction reclaims it wholesale.
    ++heap_dead_;
    MaybeCompact();
  }
}

// The heap is 4-ary: half the dependent levels of a binary heap, and the
// four 16-byte children of a node share one cache line, so the
// deeper-but-narrower compare fan costs less than it saves in latency on
// large heaps. Arity is invisible to firing order — (at, key) is a strict
// total order, so any valid heap pops the same sequence.
void EventQueue::SiftUp(std::size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!After(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::SiftDown(std::size_t i) {
  // Bottom-up sift (Floyd): walk the hole down the min-child path to a leaf,
  // then bubble the displaced element back up. HeapPopTop feeds this a leaf
  // element that nearly always belongs back near the bottom, so the
  // bubble-up is short and the early-exit compare per level is saved.
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  std::size_t hole = i;
  for (;;) {
    const std::size_t first = kHeapArity * hole + 1;
    if (first >= n) break;
    std::size_t best;
    if (first + kHeapArity <= n) {
      // Full node: tournament min — the two pair-compares are independent,
      // and with the branchless comparator each pick is a cmov.
      const std::size_t a = After(heap_[first], heap_[first + 1])
                                ? first + 1 : first;
      const std::size_t b = After(heap_[first + 2], heap_[first + 3])
                                ? first + 3 : first + 2;
      best = After(heap_[a], heap_[b]) ? b : a;
    } else {
      best = first;
      for (std::size_t c = first + 1; c < n; ++c) {
        if (After(heap_[best], heap_[c])) best = c;
      }
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > i) {
    const std::size_t parent = (hole - 1) / kHeapArity;
    if (!After(heap_[parent], e)) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

void EventQueue::HeapPopTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void EventQueue::DropDeadHeads() {
  // The dead counters gate the slot probes: with no pending cancellations
  // (the common case) this is two compare-to-zero branches, no slab reads.
  if (lane_dead_ != 0) {
    while (lane_count_ != 0 && EventDead(lane_[lane_head_].key)) {
      LanePop();
      --lane_dead_;
      ++counters_.dead_dropped;
    }
  }
  if (heap_dead_ != 0) {
    while (!heap_.empty()) {
      Entry& front = heap_.front();
      const std::uint32_t head =
          static_cast<std::uint32_t>(front.key & kNodeIndexMask);
      if (!EventDead(nodes_[head].ev)) break;
      const std::uint32_t next = nodes_[head].next;
      FreeNode(head);
      --heap_nodes_;
      --heap_dead_;
      ++counters_.dead_dropped;
      if (next == kNilNode) {
        // Whole cohort gone: the cache entry (if still ours) must die with
        // it, or a later same-time schedule would append to a freed node.
        ClearCohortRef(front.at);
        HeapPopTop();
      } else {
        // Advance the cohort in place. The front stays the true minimum:
        // within the chain seqs ascend, and any same-time twin was created
        // strictly later, so all its seqs are larger than the whole chain.
        front.key = HeapKey(nodes_[next].ev >> kSlotIndexBits, next);
      }
      if (heap_dead_ == 0) break;
    }
  }
}

void EventQueue::MaybeCompact() {
  if (heap_nodes_ >= kCompactMinNodes && heap_dead_ * 2 > heap_nodes_) {
    Compact();
  }
}

void EventQueue::Compact() {
  // Filter every cohort chain (dead nodes can sit mid-chain), drop cohorts
  // that end up empty, then Floyd-heapify the packed entries: O(nodes), and
  // the pass runs at most once per half-pool of cancellations.
  std::size_t w = 0;
  for (std::size_t r = 0; r < heap_.size(); ++r) {
    const Entry e = heap_[r];
    std::uint32_t head = kNilNode;
    std::uint32_t tail = kNilNode;
    std::uint32_t cur = static_cast<std::uint32_t>(e.key & kNodeIndexMask);
    while (cur != kNilNode) {
      const std::uint32_t next = nodes_[cur].next;
      if (EventDead(nodes_[cur].ev)) {
        FreeNode(cur);
        --heap_nodes_;
        --heap_dead_;
        ++counters_.dead_dropped;
      } else {
        if (head == kNilNode) {
          head = cur;
        } else {
          nodes_[tail].next = cur;
        }
        tail = cur;
      }
      cur = next;
    }
    if (head != kNilNode) {
      nodes_[tail].next = kNilNode;
      heap_[w++] = Entry{e.at, HeapKey(nodes_[head].ev >> kSlotIndexBits, head)};
    }
  }
  heap_.resize_down(w);
  for (std::size_t i = heap_.size() / kHeapArity + 1; i-- > 0;) {
    if (i < heap_.size()) SiftDown(i);
  }
  // Chain tails may have moved or died; a wholesale wipe is always safe.
  InvalidateCohortCache();
  ++counters_.compactions;
}

SimTime EventQueue::NextTime() {
  DropDeadHeads();
  const LaneEntry* lane = LaneFront();
  if (lane == nullptr) {
    return heap_.empty() ? SimTime::Max() : heap_.front().at;
  }
  // Lane entries were scheduled at what was then "now", which can only be at
  // or before every heap entry's time.
  return lane->at;
}

std::uint64_t EventQueue::TakeHeapHead() {
  Entry& front = heap_.front();
  const std::uint32_t head =
      static_cast<std::uint32_t>(front.key & kNodeIndexMask);
  Node& nd = nodes_[head];
  const std::uint64_t ev = nd.ev;
  // The winner's slot line is needed right after the structural pop;
  // kicking the fetch off here hides it behind the sift-down / advance.
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(&SlotRef(SlotOf(ev)), 1 /*write*/);
#endif
  const std::uint32_t next = nd.next;
  FreeNode(head);
  --heap_nodes_;
  if (next == kNilNode) {
    ClearCohortRef(front.at);
    HeapPopTop();
  } else {
    front.key = HeapKey(nodes_[next].ev >> kSlotIndexBits, next);
  }
  return ev;
}

EventQueue::Taken EventQueue::TakeNextEntry() {
  DropDeadHeads();
  assert(live_count_ > 0);
  const LaneEntry* lane = LaneFront();
  if (lane != nullptr) {
    // A heap cohort at the same instant whose head has a smaller sequence
    // number was scheduled earlier and must keep its FIFO position. Lane
    // keys and heap keys use different layouts, so compare seqs explicitly.
    const bool lane_first =
        heap_.empty() || lane->at < heap_.front().at ||
        (lane->at == heap_.front().at &&
         SeqOf(lane->key) < HeapFirstSeq(heap_.front()));
    if (lane_first) {
      const Taken t{lane->at, lane->key};
      LanePop();
      return t;
    }
  }
  const SimTime at = heap_.front().at;
  return Taken{at, TakeHeapHead()};
}

EventQueue::Event EventQueue::PopNext() {
  const Taken t = TakeNextEntry();
  Slot& s = SlotRef(SlotOf(t.ev));
  Event ev;
  ev.at = t.at;
  ev.id = t.ev;
  ev.fn = std::move(s.fn);  // relocate out; the slot is immediately reusable
  s.live = 0;
  free_slots_.push_back(SlotOf(t.ev));
  --live_count_;
  return ev;
}

void EventQueue::RunNext(SimTime& now_out) {
  const Taken t = TakeNextEntry();
  const std::uint32_t slot = SlotOf(t.ev);
  Slot& s = SlotRef(slot);
  // Retire the entry before running: a reentrant Cancel of this id is a
  // no-op, and the slot stays off the freelist until the callback returns,
  // so reentrant Schedules can never emplace over the running functor
  // (slot blocks never relocate, see GrowSlab).
  s.live = 0;
  --live_count_;
  now_out = t.at;
  s.fn.InvokeAndReset();
  free_slots_.push_back(slot);
}

std::size_t EventQueue::RunBatch(SimTime& now_out, const bool& stop) {
  DropDeadHeads();
  if (live_count_ == 0) return 0;
  const LaneEntry* lf = LaneFront();
  SimTime t = lf != nullptr ? lf->at : heap_.front().at;
  if (lf != nullptr && !heap_.empty() && heap_.front().at < t) {
    t = heap_.front().at;
  }
  now_out = t;
  std::size_t n = 0;
  while (!stop) {
    DropDeadHeads();
    const LaneEntry* lane = LaneFront();
    const bool heap_ready = !heap_.empty() && heap_.front().at == t;
    std::uint64_t ev;
    if (lane != nullptr && lane->at == t &&
        (!heap_ready || SeqOf(lane->key) < HeapFirstSeq(heap_.front()))) {
      ev = lane->key;
      LanePop();
    } else if (heap_ready) {
      ev = TakeHeapHead();
    } else {
      break;  // nothing live left at t — the batch boundary
    }
    const std::uint32_t slot = SlotOf(ev);
    Slot& s = SlotRef(slot);
    s.live = 0;
    --live_count_;
    s.fn.InvokeAndReset();
    free_slots_.push_back(slot);
    ++n;
  }
  if (n != 0) {
    ++counters_.batches;
    if (n > counters_.max_batch) counters_.max_batch = n;
  }
  return n;
}

EventQueue::BatchHorizon EventQueue::PeekBatchHorizon() {
  DropDeadHeads();
  BatchHorizon h;
  if (live_count_ == 0) return h;
  const LaneEntry* lf = LaneFront();
  h.at = lf != nullptr ? lf->at : heap_.front().at;
  if (!heap_.empty() && heap_.front().at < h.at) h.at = heap_.front().at;
  // Lane times are non-decreasing (each was "now" when pushed), so the scan
  // stops at the first strictly-later live entry.
  for (std::size_t i = 0; i < lane_count_; ++i) {
    const LaneEntry& e = lane_[(lane_head_ + i) & (lane_.size() - 1)];
    if (EventDead(e.key)) continue;
    if (e.at == h.at) {
      ++h.ready;
    } else {
      if (e.at < h.next_at) h.next_at = e.at;
      break;
    }
  }
  // Same-time heap entries form a prefix-closed subtree rooted at the top
  // (every ancestor of an equal-min entry is also equal-min), so a DFS that
  // stops at later-time entries touches only the batch plus its frontier.
  horizon_scratch_.clear();
  if (!heap_.empty()) horizon_scratch_.push_back(0);
  while (!horizon_scratch_.empty()) {
    const std::size_t i = horizon_scratch_.back();
    horizon_scratch_.pop_back();
    if (heap_[i].at != h.at) {
      if (heap_[i].at < h.next_at) h.next_at = heap_[i].at;
      continue;  // its whole subtree is at or after this time
    }
    for (std::uint32_t cur =
             static_cast<std::uint32_t>(heap_[i].key & kNodeIndexMask);
         cur != kNilNode; cur = nodes_[cur].next) {
      if (!EventDead(nodes_[cur].ev)) ++h.ready;
    }
    const std::size_t first = kHeapArity * i + 1;
    for (std::size_t c = first; c < heap_.size() && c < first + kHeapArity;
         ++c) {
      horizon_scratch_.push_back(static_cast<std::uint32_t>(c));
    }
  }
  return h;
}

void EventQueue::LanePush(const LaneEntry& e) {
  if (lane_count_ == lane_.size()) {
    // Grow and re-linearize (power-of-two sizes keep the index mask cheap).
    std::vector<LaneEntry> bigger(std::max<std::size_t>(8, lane_.size() * 2));
    for (std::size_t i = 0; i < lane_count_; ++i) {
      bigger[i] = lane_[(lane_head_ + i) & (lane_.size() - 1)];
    }
    lane_ = std::move(bigger);
    lane_head_ = 0;
  }
  lane_[(lane_head_ + lane_count_) & (lane_.size() - 1)] = e;
  ++lane_count_;
}

void EventQueue::LanePop() {
  lane_head_ = (lane_head_ + 1) & (lane_.size() - 1);
  --lane_count_;
}

}  // namespace tdtcp
