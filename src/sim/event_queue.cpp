#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace tdtcp {
namespace {

// Below this many heap entries a compaction pass costs more than it saves.
constexpr std::size_t kCompactMinHeap = 64;

}  // namespace

EventQueue::EntryBuf::~EntryBuf() {
  if (raw_ != nullptr) ::operator delete(raw_, std::align_val_t{64});
}

void EventQueue::EntryBuf::Grow() {
  static_assert(sizeof(Entry) == 16 && std::is_trivially_copyable_v<Entry>);
  const std::size_t ncap = std::max<std::size_t>(64, cap_ * 2);
  void* nraw = ::operator new((kPad + ncap) * sizeof(Entry), std::align_val_t{64});
  Entry* ndata = static_cast<Entry*>(nraw) + kPad;
  if (size_ != 0) std::memcpy(ndata, data_, size_ * sizeof(Entry));
  if (raw_ != nullptr) ::operator delete(raw_, std::align_val_t{64});
  raw_ = nraw;
  data_ = ndata;
  cap_ = ncap;
}

void EventQueue::GrowSlab() {
  if (slot_blocks_.size() * kSlotBlock >= kMaxSlots) {
    throw std::length_error(
        "EventQueue: too many concurrent pending events (kMaxSlots)");
  }
  auto block = std::make_unique<Slot[]>(kSlotBlock);
  const std::uint32_t base =
      static_cast<std::uint32_t>(slot_blocks_.size() * kSlotBlock);
  slot_blocks_.push_back(std::move(block));
  free_slots_.reserve(slot_blocks_.size() * kSlotBlock);
  for (std::size_t i = kSlotBlock; i-- > 0;) {
    free_slots_.push_back(base + static_cast<std::uint32_t>(i));
  }
}

void EventQueue::ThrowSeqExhausted() const {
  throw std::length_error("EventQueue: schedule sequence space exhausted");
}

void EventQueue::Cancel(EventId id) {
  const std::uint32_t slot = SlotOf(id);
  if (slot >= slab_size_for_test()) return;  // never existed
  Slot& s = SlotRef(slot);
  // A live slot's tag equals the id's sequence number; anything else means
  // the event already fired, was already cancelled, or the id is bogus. A
  // free slot's tag is 0, which only the (invalid) zero sequence matches.
  const std::uint64_t seq = SeqOf(id);
  if (seq == 0 || (s.live & ~kLaneFlag) != seq) return;
  const bool was_lane = (s.live & kLaneFlag) != 0;
  s.fn.Reset();  // destroy the capture eagerly; the entry is now dead
  s.live = 0;
  free_slots_.push_back(slot);
  --live_count_;
  if (was_lane) {
    ++lane_dead_;
  } else {
    ++heap_dead_;
    MaybeCompact();
  }
}

// The heap is 4-ary: half the dependent levels of a binary heap, and the
// four 16-byte children of a node share one cache line, so the
// deeper-but-narrower compare fan costs less than it saves in latency on
// large heaps. Arity is invisible to firing order — (at, key) is a strict
// total order, so any valid heap pops the same sequence.
void EventQueue::SiftUp(std::size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kHeapArity;
    if (!After(heap_[parent], e)) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::SiftDown(std::size_t i) {
  // Bottom-up sift (Floyd): walk the hole down the min-child path to a leaf,
  // then bubble the displaced element back up. HeapPopTop feeds this a leaf
  // element that nearly always belongs back near the bottom, so the
  // bubble-up is short and the early-exit compare per level is saved.
  const std::size_t n = heap_.size();
  const Entry e = heap_[i];
  std::size_t hole = i;
  for (;;) {
    const std::size_t first = kHeapArity * hole + 1;
    if (first >= n) break;
    std::size_t best;
    if (first + kHeapArity <= n) {
      // Full node: tournament min — the two pair-compares are independent,
      // and with the branchless comparator each pick is a cmov.
      const std::size_t a = After(heap_[first], heap_[first + 1])
                                ? first + 1 : first;
      const std::size_t b = After(heap_[first + 2], heap_[first + 3])
                                ? first + 3 : first + 2;
      best = After(heap_[a], heap_[b]) ? b : a;
    } else {
      best = first;
      for (std::size_t c = first + 1; c < n; ++c) {
        if (After(heap_[best], heap_[c])) best = c;
      }
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > i) {
    const std::size_t parent = (hole - 1) / kHeapArity;
    if (!After(heap_[parent], e)) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

void EventQueue::HeapPopTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0);
}

void EventQueue::DropDeadHeads() {
  // The dead counters gate the slot probes: with no pending cancellations
  // (the common case) this is two compare-to-zero branches, no slab reads.
  if (lane_dead_ != 0) {
    while (lane_count_ != 0 && EntryDead(lane_[lane_head_])) {
      LanePop();
      --lane_dead_;
    }
  }
  if (heap_dead_ != 0) {
    while (!heap_.empty() && EntryDead(heap_.front())) {
      HeapPopTop();
      --heap_dead_;
    }
  }
}

void EventQueue::MaybeCompact() {
  if (heap_.size() < kCompactMinHeap || heap_dead_ * 2 <= heap_.size()) return;
  std::size_t w = 0;
  for (std::size_t r = 0; r < heap_.size(); ++r) {
    if (!EntryDead(heap_[r])) heap_[w++] = heap_[r];
  }
  heap_.resize_down(w);
  // Floyd heapify: O(n), and the pass runs at most once per half-heap of
  // cancellations. Every index >= size/arity is a leaf.
  for (std::size_t i = heap_.size() / kHeapArity + 1; i-- > 0;) {
    if (i < heap_.size()) SiftDown(i);
  }
  heap_dead_ = 0;
}

SimTime EventQueue::NextTime() {
  DropDeadHeads();
  const Entry* lane = LaneFront();
  if (lane == nullptr) {
    return heap_.empty() ? SimTime::Max() : heap_.front().at;
  }
  // Lane entries were scheduled at what was then "now", which can only be at
  // or before every heap entry's time.
  return lane->at;
}

EventQueue::Entry EventQueue::TakeNextEntry() {
  DropDeadHeads();
  assert(live_count_ > 0);
  const Entry* lane = LaneFront();
  bool use_lane;
  if (lane != nullptr && !heap_.empty()) {
    // A heap entry at the same instant with a smaller sequence number was
    // scheduled earlier and must keep its FIFO position.
    use_lane = After(heap_.front(), *lane);
  } else {
    use_lane = lane != nullptr;
  }
  Entry e;
  if (use_lane) {
    e = *lane;
    LanePop();
  } else {
    e = heap_.front();
    // The winner's slot line is needed right after the structural pop;
    // kicking the fetch off here hides it behind the whole sift-down.
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&SlotRef(SlotOf(e.key)), 1 /*write*/);
#endif
    HeapPopTop();
  }
  return e;
}

EventQueue::Event EventQueue::PopNext() {
  const Entry e = TakeNextEntry();
  Slot& s = SlotRef(SlotOf(e.key));
  Event ev;
  ev.at = e.at;
  ev.id = e.key;
  ev.fn = std::move(s.fn);  // relocate out; the slot is immediately reusable
  s.live = 0;
  free_slots_.push_back(SlotOf(e.key));
  --live_count_;
  return ev;
}

void EventQueue::RunNext(SimTime& now_out) {
  const Entry e = TakeNextEntry();
  const std::uint32_t slot = SlotOf(e.key);
  Slot& s = SlotRef(slot);
  // Retire the entry before running: a reentrant Cancel of this id is a
  // no-op, and the slot stays off the freelist until the callback returns,
  // so reentrant Schedules can never emplace over the running functor
  // (slot blocks never relocate, see GrowSlab).
  s.live = 0;
  --live_count_;
  now_out = e.at;
  s.fn.InvokeAndReset();
  free_slots_.push_back(slot);
}

void EventQueue::LanePush(const Entry& e) {
  if (lane_count_ == lane_.size()) {
    // Grow and re-linearize (power-of-two sizes keep the index mask cheap).
    std::vector<Entry> bigger(std::max<std::size_t>(8, lane_.size() * 2));
    for (std::size_t i = 0; i < lane_count_; ++i) {
      bigger[i] = lane_[(lane_head_ + i) & (lane_.size() - 1)];
    }
    lane_ = std::move(bigger);
    lane_head_ = 0;
  }
  lane_[(lane_head_ + lane_count_) & (lane_.size() - 1)] = e;
  ++lane_count_;
}

void EventQueue::LanePop() {
  lane_head_ = (lane_head_ + 1) & (lane_.size() - 1);
  --lane_count_;
}

}  // namespace tdtcp
