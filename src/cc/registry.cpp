#include "cc/registry.hpp"

#include <stdexcept>
#include <string>

#include "cc/cubic.hpp"
#include "cc/dctcp.hpp"
#include "cc/reno.hpp"
#include "cc/retcp.hpp"

namespace tdtcp {

CcFactory MakeCcFactory(std::string_view name) {
  if (name == "reno") return [] { return MakeReno(); };
  if (name == "cubic") return [] { return MakeCubic(); };
  if (name == "dctcp") return [] { return MakeDctcp(); };
  if (name == "retcp") return [] { return MakeRetcp(); };
  if (name == "retcpdyn") return [] { return MakeRetcpDyn(); };
  throw std::invalid_argument("unknown congestion control: " + std::string(name));
}

}  // namespace tdtcp
