#include "cc/registry.hpp"

#include <stdexcept>
#include <string>

#include "cc/cubic.hpp"
#include "cc/dctcp.hpp"
#include "cc/reno.hpp"
#include "cc/retcp.hpp"

namespace tdtcp {
namespace {

struct CcEntry {
  std::string_view name;
  std::unique_ptr<CongestionControl> (*make)();
};

// Constant-initialized: plain function pointers, no static constructors,
// nothing for two threads to race on.
constexpr CcEntry kCcTable[] = {
    {"reno", MakeReno},
    {"cubic", MakeCubic},
    {"dctcp", MakeDctcp},
    {"retcp", MakeRetcp},
    {"retcpdyn", MakeRetcpDyn},
};

}  // namespace

CcFactory MakeCcFactory(std::string_view name) {
  for (const CcEntry& e : kCcTable) {
    if (e.name == name) return e.make;
  }
  throw std::invalid_argument("unknown congestion control: " + std::string(name));
}

std::vector<std::string_view> RegisteredCcNames() {
  std::vector<std::string_view> names;
  for (const CcEntry& e : kCcTable) names.push_back(e.name);
  return names;
}

}  // namespace tdtcp
