#include "cc/cubic.hpp"

#include <algorithm>
#include <cmath>

namespace tdtcp {

void CubicCc::Init(TdnState& s) {
  (void)s;
  ResetEpoch();
  last_max_cwnd_ = 0;
  delay_min_s_ = 0;
}

void CubicCc::ResetEpoch() {
  epoch_start_ = SimTime::Zero();
  origin_point_ = 0;
  k_seconds_ = 0;
  tcp_cwnd_ = 0;
  ack_cnt_ = 0;
}

std::uint32_t CubicCc::SsThresh(TdnState& s) {
  // Fast convergence: a flow that lost before reaching its previous maximum
  // releases extra room for newcomers.
  const double cwnd = s.cwnd;
  if (cwnd < last_max_cwnd_) {
    last_max_cwnd_ = cwnd * (1.0 + kBeta) / 2.0;
  } else {
    last_max_cwnd_ = cwnd;
  }
  ResetEpoch();
  return std::max(2u, static_cast<std::uint32_t>(cwnd * kBeta));
}

void CubicCc::OnRetransmitTimeout(TdnState& s) {
  (void)s;
  ResetEpoch();
  last_max_cwnd_ = 0;
}

void CubicCc::OnAck(TdnState& s, const AckContext& ctx) {
  (void)s;
  if (ctx.event.rtt_sample > SimTime::Zero()) {
    const double rtt_s = ctx.event.rtt_sample.seconds();
    if (delay_min_s_ == 0 || rtt_s < delay_min_s_) delay_min_s_ = rtt_s;
  }
  last_ack_ = ctx.now;
}

void CubicCc::OnCwndEvent(TdnState& s, CwndEvent ev) {
  (void)s;
  if (ev == CwndEvent::kTxStart || ev == CwndEvent::kTdnResume) {
    // Linux bictcp_cwnd_event(CA_EVENT_TX_START): shift the epoch forward by
    // the idle time so the cubic curve does not fast-forward through a quiet
    // (or, for TDTCP, inactive-TDN) period. This is what makes a resumed TDN
    // continue "as if it has just resumed from a checkpoint" (§3.1).
    if (!epoch_start_.IsZero() && last_ack_ > SimTime::Zero()) {
      // Delta is applied lazily at the next Update() via last_ack_.
      pending_idle_shift_ = true;
    }
  }
}

std::uint32_t CubicCc::Update(TdnState& s, std::uint32_t acked, SimTime now) {
  ack_cnt_ += acked;

  if (pending_idle_shift_ && !epoch_start_.IsZero()) {
    const SimTime delta = now - last_ack_;
    if (delta > SimTime::Zero()) epoch_start_ += delta;
    pending_idle_shift_ = false;
  }

  if (epoch_start_.IsZero()) {
    epoch_start_ = now;
    ack_cnt_ = acked;
    tcp_cwnd_ = s.cwnd;
    if (last_max_cwnd_ <= s.cwnd) {
      k_seconds_ = 0;
      origin_point_ = s.cwnd;
    } else {
      k_seconds_ = std::cbrt((last_max_cwnd_ - s.cwnd) / kC);
      origin_point_ = last_max_cwnd_;
    }
  }

  const double t = (now - epoch_start_).seconds() + delay_min_s_;
  const double offs = t - k_seconds_;
  const double target = origin_point_ + kC * offs * offs * offs;

  double cnt;
  if (target > s.cwnd) {
    cnt = s.cwnd / (target - s.cwnd);
  } else {
    cnt = 100.0 * s.cwnd;  // effectively hold
  }
  // Before the first loss there is no origin point; cap the divisor so the
  // window still ramps ~5% per RTT (Linux does the same).
  if (last_max_cwnd_ == 0 && cnt > 20) cnt = 20;

  // TCP friendliness: estimate what Reno would have reached and never grow
  // slower than that.
  if (delay_min_s_ > 0) {
    const double delta = s.cwnd / 0.7;  // 3*(1+beta)/(3-beta)*... simplified
    while (ack_cnt_ > delta) {
      ack_cnt_ -= delta;
      tcp_cwnd_ += 1;
    }
    if (tcp_cwnd_ > s.cwnd) {
      const double friendliness_cnt = s.cwnd / (tcp_cwnd_ - s.cwnd);
      cnt = std::min(cnt, friendliness_cnt);
    }
  }

  return std::max(2u, static_cast<std::uint32_t>(cnt));
}

void CubicCc::CongAvoid(TdnState& s, std::uint32_t acked, SimTime now) {
  if (s.cwnd < s.ssthresh) {
    s.cwnd += acked;
    return;
  }
  if (!s.cwnd_limited) return;
  const std::uint32_t cnt = Update(s, acked, now);
  // Linux tcp_cong_avoid_ai: accumulate acked segments and grow by the
  // full quotient (bulk ACKs may warrant more than +1).
  // Appropriate byte counting (RFC 3465, L=2): a cumulative ACK counts at
  // most two segments toward window growth.
  s.cwnd_cnt += std::min<std::uint32_t>(acked, 2);
  if (s.cwnd_cnt >= cnt) {
    s.cwnd += s.cwnd_cnt / cnt;
    s.cwnd_cnt %= cnt;
  }
}

std::unique_ptr<CongestionControl> MakeCubic() {
  return std::make_unique<CubicCc>();
}

}  // namespace tdtcp
