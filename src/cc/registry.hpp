// Name-based congestion-control factory lookup, mirroring Linux's
// `sysctl net.ipv4.tcp_congestion_control` selection by name.
//
// Registration is a constant-initialized table of (name, constructor)
// pairs: lookups never touch mutable state, so concurrent experiment
// construction from a thread-parallel sweep is race-free by construction
// (no lazy init, no locks to forget).
#pragma once

#include <string_view>
#include <vector>

#include "tdtcp/congestion_control.hpp"

namespace tdtcp {

// Supported: "reno", "cubic", "dctcp", "retcp", "retcpdyn".
// Throws std::invalid_argument for unknown names.
CcFactory MakeCcFactory(std::string_view name);

// All registered module names, in registration order.
std::vector<std::string_view> RegisteredCcNames();

}  // namespace tdtcp
