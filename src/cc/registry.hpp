// Name-based congestion-control factory lookup, mirroring Linux's
// `sysctl net.ipv4.tcp_congestion_control` selection by name.
#pragma once

#include <string_view>

#include "tdtcp/congestion_control.hpp"

namespace tdtcp {

// Supported: "reno", "cubic", "dctcp", "retcp", "retcpdyn".
// Throws std::invalid_argument for unknown names.
CcFactory MakeCcFactory(std::string_view name);

}  // namespace tdtcp
