// DCTCP (Alizadeh et al., SIGCOMM 2010 / RFC 8257): ECN-fraction-scaled
// window reduction. The switch CE-marks above a shallow threshold K; the
// receiver echoes marks per packet; the sender maintains an EWMA `alpha` of
// the marked-byte fraction per window and cuts cwnd by alpha/2 once per
// window (via the engine's CWR state, whose magnitude comes from SsThresh).
#pragma once

#include <memory>

#include "tdtcp/congestion_control.hpp"

namespace tdtcp {

class DctcpCc : public CongestionControl {
 public:
  struct Params {
    double g = 1.0 / 16.0;  // alpha EWMA gain
  };

  DctcpCc() = default;
  explicit DctcpCc(Params params) : params_(params) {}

  const char* name() const override { return "dctcp"; }
  void Init(TdnState& s) override;
  std::uint32_t SsThresh(TdnState& s) override;
  void CongAvoid(TdnState& s, std::uint32_t acked, SimTime now) override;
  void OnAck(TdnState& s, const AckContext& ctx) override;
  bool WantsEcn() const override { return true; }

  double alpha() const { return alpha_; }

 private:
  Params params_;
  double alpha_ = 1.0;  // start conservative, as RFC 8257 recommends
  std::uint64_t window_end_seq_ = 0;
  std::uint64_t acked_bytes_total_ = 0;
  std::uint64_t acked_bytes_ecn_ = 0;
};

std::unique_ptr<CongestionControl> MakeDctcp();

}  // namespace tdtcp
