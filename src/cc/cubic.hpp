// CUBIC congestion control (Ha, Rhee, Xu 2008), ported from the Linux
// tcp_cubic.c essentials: cubic window growth around the last-max origin
// point, fast convergence, TCP-friendliness (Reno-equivalent floor), and
// epoch-shift compensation for idle/inactive periods so a TDTCP TDN resumes
// its growth curve from the checkpoint instead of fast-forwarding through
// the time it was inactive. HyStart is intentionally omitted (documented in
// DESIGN.md); at data-center RTTs slow start exits via ssthresh/loss.
#pragma once

#include <memory>

#include "tdtcp/congestion_control.hpp"

namespace tdtcp {

class CubicCc : public CongestionControl {
 public:
  const char* name() const override { return "cubic"; }
  void Init(TdnState& s) override;
  std::uint32_t SsThresh(TdnState& s) override;
  void CongAvoid(TdnState& s, std::uint32_t acked, SimTime now) override;
  void OnAck(TdnState& s, const AckContext& ctx) override;
  void OnCwndEvent(TdnState& s, CwndEvent ev) override;
  void OnRetransmitTimeout(TdnState& s) override;

  double last_max_cwnd() const { return last_max_cwnd_; }

 protected:
  void ResetEpoch();
  // Computes the per-ACK increment divisor `cnt` (Linux bictcp_update).
  std::uint32_t Update(TdnState& s, std::uint32_t acked, SimTime now);

  // CUBIC constants (Linux defaults).
  static constexpr double kBeta = 717.0 / 1024.0;  // multiplicative decrease
  static constexpr double kC = 0.4;                // scaling constant

  double last_max_cwnd_ = 0;
  double origin_point_ = 0;
  double k_seconds_ = 0;
  SimTime epoch_start_ = SimTime::Zero();
  SimTime last_ack_ = SimTime::Zero();
  double delay_min_s_ = 0;  // min RTT seen, seconds (0 = none)
  double tcp_cwnd_ = 0;     // Reno-friendliness estimator
  double ack_cnt_ = 0;
  bool pending_idle_shift_ = false;  // shift epoch by idle time at next Update
};

std::unique_ptr<CongestionControl> MakeCubic();

}  // namespace tdtcp
