// TCP NewReno congestion control: the RFC 5681 baseline (slow start, AIMD
// congestion avoidance, half-window ssthresh).
#pragma once

#include <memory>

#include "tdtcp/congestion_control.hpp"

namespace tdtcp {

class RenoCc : public CongestionControl {
 public:
  const char* name() const override { return "reno"; }
  std::uint32_t SsThresh(TdnState& s) override;
  void CongAvoid(TdnState& s, std::uint32_t acked, SimTime now) override;
};

std::unique_ptr<CongestionControl> MakeReno();

}  // namespace tdtcp
