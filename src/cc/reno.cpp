#include "cc/reno.hpp"

#include <algorithm>

namespace tdtcp {

std::uint32_t RenoCc::SsThresh(TdnState& s) {
  return std::max(2u, s.cwnd / 2);
}

void RenoCc::CongAvoid(TdnState& s, std::uint32_t acked, SimTime now) {
  (void)now;
  if (s.cwnd < s.ssthresh) {
    // Slow start: one segment per ACKed segment.
    s.cwnd += acked;
    return;
  }
  if (!s.cwnd_limited) return;
  // Congestion avoidance: one segment per window (tcp_cong_avoid_ai).
  // RFC 3465 appropriate byte counting (L=2 per ACK event).
  s.cwnd_cnt += std::min<std::uint32_t>(acked, 2);
  if (s.cwnd_cnt >= s.cwnd) {
    s.cwnd_cnt -= s.cwnd;
    s.cwnd += 1;
  }
}

std::unique_ptr<CongestionControl> MakeReno() {
  return std::make_unique<RenoCc>();
}

}  // namespace tdtcp
