// reTCP (Mukerjee et al., NSDI 2020): single-path TCP with explicit switch
// support for RDCNs. ToRs mark packets with the network that carried them;
// the receiver echoes the mark, and the sender multiplicatively scales its
// window when the flow moves on/off the optical circuit. The "dyn" variant
// additionally reacts to the ToR's circuit-imminent advance notice (sent
// when the switch enlarges its VOQ) by pre-ramping, so the enlarged queue is
// pre-filled and the flow bursts at circuit rate the moment the circuit
// activates (§5.2's "retcpdyn").
#pragma once

#include <memory>

#include "cc/cubic.hpp"

namespace tdtcp {

class RetcpCc : public CubicCc {
 public:
  struct Params {
    // cwnd multiplier on circuit-up: roughly the BDP ratio between the
    // optical and packet TDNs (100G*40us / 10G*100us = 4).
    double ramp_factor = 4.0;
    bool react_to_imminent = false;  // the "dyn" behaviour
  };

  RetcpCc() = default;
  explicit RetcpCc(Params params) : params_(params) {}

  const char* name() const override {
    return params_.react_to_imminent ? "retcpdyn" : "retcp";
  }

  void OnCircuitTransition(TdnState& s, bool circuit_up, bool imminent) override;

 private:
  void RampUp(TdnState& s);
  void RampDown(TdnState& s);

  Params params_;
  bool ramped_ = false;
  std::uint32_t pre_ramp_cwnd_ = 0;
  std::uint32_t pre_ramp_ssthresh_ = 0;
};

std::unique_ptr<CongestionControl> MakeRetcp();
std::unique_ptr<CongestionControl> MakeRetcpDyn();

}  // namespace tdtcp
