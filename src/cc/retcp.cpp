#include "cc/retcp.hpp"

#include <algorithm>

namespace tdtcp {

void RetcpCc::RampUp(TdnState& s) {
  if (ramped_) return;
  // Never amplify a window that is already recovering from loss; the
  // multiplicative increase is meant for a healthy packet-network window.
  if (s.ca_state != CaState::kOpen && s.ca_state != CaState::kDisorder) return;
  ramped_ = true;
  pre_ramp_cwnd_ = s.cwnd;
  pre_ramp_ssthresh_ = s.ssthresh;
  s.cwnd = std::max<std::uint32_t>(
      2, static_cast<std::uint32_t>(s.cwnd * params_.ramp_factor));
  // Operate in congestion avoidance at the ramped window, not slow start.
  s.ssthresh = std::min(s.ssthresh, s.cwnd);
}

void RetcpCc::RampDown(TdnState& s) {
  if (!ramped_) return;
  ramped_ = false;
  // Fall back to the pre-circuit window and threshold: the packet network's
  // fair share, regardless of what happened on the circuit.
  s.cwnd = std::max<std::uint32_t>(2, std::min(s.cwnd, pre_ramp_cwnd_));
  s.ssthresh = std::max<std::uint32_t>(2, pre_ramp_ssthresh_);
}

void RetcpCc::OnCircuitTransition(TdnState& s, bool circuit_up, bool imminent) {
  if (imminent) {
    if (params_.react_to_imminent) RampUp(s);
    return;
  }
  if (circuit_up) {
    RampUp(s);
  } else {
    RampDown(s);
  }
}

std::unique_ptr<CongestionControl> MakeRetcp() {
  return std::make_unique<RetcpCc>(RetcpCc::Params{4.0, false});
}

std::unique_ptr<CongestionControl> MakeRetcpDyn() {
  return std::make_unique<RetcpCc>(RetcpCc::Params{4.0, true});
}

}  // namespace tdtcp
