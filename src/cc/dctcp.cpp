#include "cc/dctcp.hpp"

#include <algorithm>

namespace tdtcp {

void DctcpCc::Init(TdnState& s) {
  (void)s;
  alpha_ = 1.0;
  window_end_seq_ = 0;
  acked_bytes_total_ = 0;
  acked_bytes_ecn_ = 0;
}

void DctcpCc::OnAck(TdnState& s, const AckContext& ctx) {
  (void)s;
  acked_bytes_total_ += ctx.event.newly_acked_bytes;
  if (ctx.event.ece) acked_bytes_ecn_ += ctx.event.newly_acked_bytes;

  if (window_end_seq_ == 0) window_end_seq_ = ctx.snd_nxt;
  if (ctx.snd_una >= window_end_seq_) {
    // One observation window elapsed: fold the marked fraction into alpha.
    const double m = acked_bytes_total_ > 0
                         ? static_cast<double>(acked_bytes_ecn_) /
                               static_cast<double>(acked_bytes_total_)
                         : 0.0;
    alpha_ = alpha_ * (1.0 - params_.g) + params_.g * m;
    acked_bytes_total_ = 0;
    acked_bytes_ecn_ = 0;
    window_end_seq_ = ctx.snd_nxt;
  }
}

std::uint32_t DctcpCc::SsThresh(TdnState& s) {
  const double reduced = s.cwnd * (1.0 - alpha_ / 2.0);
  return std::max(2u, static_cast<std::uint32_t>(reduced));
}

void DctcpCc::CongAvoid(TdnState& s, std::uint32_t acked, SimTime now) {
  (void)now;
  if (s.cwnd < s.ssthresh) {
    s.cwnd += acked;
    return;
  }
  if (!s.cwnd_limited) return;
  // RFC 3465 appropriate byte counting (L=2 per ACK event).
  s.cwnd_cnt += std::min<std::uint32_t>(acked, 2);
  if (s.cwnd_cnt >= s.cwnd) {
    s.cwnd_cnt -= s.cwnd;
    s.cwnd += 1;
  }
}

std::unique_ptr<CongestionControl> MakeDctcp() {
  return std::make_unique<DctcpCc>();
}

}  // namespace tdtcp
