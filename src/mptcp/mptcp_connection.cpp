#include "mptcp/mptcp_connection.hpp"

#include <algorithm>
#include <cassert>

namespace tdtcp {

MptcpConnection::MptcpConnection(Simulator& sim, Host* host, FlowId flow,
                                 NodeId peer, Config config)
    : sim_(sim), host_(host), flow_(flow), config_(config),
      last_progress_(sim.now()) {
  assert(config_.num_subflows >= 1 && config_.num_subflows <= 8);
  for (std::uint32_t i = 0; i < config_.num_subflows; ++i) {
    TcpConfig sc = config_.subflow;
    sc.mptcp = true;
    sc.pin_path = static_cast<std::int8_t>(i);
    sc.subflow_id = static_cast<std::uint8_t>(i);
    sc.tdtcp_enabled = false;
    sc.register_endpoint = false;       // the meta owns the flow demux entry
    sc.listen_tdn_notifications = false;  // tdm_schd is driven by the meta
    auto sub = std::make_unique<TcpConnection>(sim_, host_, flow_, peer, sc);
    TcpConnection* raw = sub.get();
    raw->SetDeliverCallback([this](const TcpConnection::DeliverInfo& info) {
      OnSubflowDeliver(info);
    });
    raw->SetDssAckProvider([this] { return meta_rcv_.rcv_nxt(); });
    raw->SetRwndProvider([this] {
      const std::uint64_t used = meta_rcv_.ooo_bytes();
      return config_.meta_rcv_buf_bytes > used
                 ? config_.meta_rcv_buf_bytes - used
                 : 0;
    });
    raw->SetDssAckCallback([this](std::uint64_t ack, std::uint64_t wnd) {
      OnDssAck(ack, wnd);
    });
    raw->SetSendReadyCallback([this] { TrySchedule(); });
    raw->SetEstablishedCallback([this] { TrySchedule(); });
    raw->SetClosedCallback([this, i](CloseReason reason) {
      OnSubflowClosed(i, reason);
    });
    subflows_.push_back(std::move(sub));
  }
  host_->RegisterEndpoint(flow_, this);
  host_->AddTdnListener(this, [this](TdnId tdn, bool imminent) {
    OnTdnChange(tdn, imminent);
  });
}

MptcpConnection::~MptcpConnection() {
  if (reinject_timer_ != kInvalidEventId) sim_.Cancel(reinject_timer_);
  host_->UnregisterEndpoint(flow_, this);  // sink-checked: no-op after close
  host_->RemoveTdnListener(this);
}

void MptcpConnection::Listen() {
  for (auto& s : subflows_) s->Listen();
}

void MptcpConnection::Connect() {
  for (auto& s : subflows_) s->Connect();
  ArmReinjectTimer();
}

void MptcpConnection::SetUnlimitedData(bool unlimited) {
  unlimited_ = unlimited;
  TrySchedule();
}

void MptcpConnection::Close() {
  unlimited_ = false;  // no new mappings; queued data drains ahead of FINs
  for (auto& s : subflows_) s->Close();
}

void MptcpConnection::Abort(CloseReason reason) {
  unlimited_ = false;
  for (auto& s : subflows_) s->Abort(reason);
}

CloseReason MptcpConnection::close_reason() const {
  if (!closed()) return CloseReason::kNone;
  return abnormal_reason_ != CloseReason::kNone ? abnormal_reason_
                                                : CloseReason::kNormal;
}

TcpConnection* MptcpConnection::FindSurvivor(std::uint32_t excluding) {
  // Prefer an established survivor; fall back to one still handshaking or
  // draining (its queue is preserved either way). A subflow whose FIN is
  // already on the wire has no stream bytes left — AddMappedData refuses —
  // so it cannot carry a reinjection.
  TcpConnection* fallback = nullptr;
  for (std::uint32_t i = 0; i < subflows_.size(); ++i) {
    if (i == excluding) continue;
    TcpConnection* s = subflows_[i].get();
    if (s->state() == TcpConnection::State::kClosed || s->fin_sent()) continue;
    if (s->state() == TcpConnection::State::kEstablished) return s;
    if (fallback == nullptr) fallback = s;
  }
  return fallback;
}

void MptcpConnection::ReinjectOrphans(std::uint32_t dead_idx) {
  TcpConnection* target = FindSurvivor(dead_idx);
  // UnackedDssRanges() on a closed subflow returns the snapshot its abort
  // took before releasing the scoreboard (scheduled-but-unsent included).
  // Only ranges the survivor actually accepted count as rescued; the rest
  // are recorded as lost so the stats never claim a rescue that no-op'd.
  for (const auto& r : subflows_[dead_idx]->UnackedDssRanges()) {
    if (r.dss_seq + r.len <= dss_una_) continue;  // already meta-acked
    if (target != nullptr && target->AddMappedData(r.len, r.dss_seq)) {
      ++mp_stats_.reinjections;
      ++mp_stats_.abort_reinjections;
      mp_stats_.reinjected_bytes += r.len;
    } else {
      ++mp_stats_.unrescued_ranges;
      mp_stats_.unrescued_bytes += r.len;
    }
  }
}

void MptcpConnection::OnSubflowClosed(std::uint32_t idx, CloseReason reason) {
  ++closed_subflows_;
  if (reason != CloseReason::kNormal) {
    ++mp_stats_.subflow_aborts;
    if (abnormal_reason_ == CloseReason::kNone) abnormal_reason_ = reason;
    // Fail over before reinjecting so the rescue lands on a live subflow,
    // then rescue whatever DSS ranges died with this one.
    if (idx == active_subflow_) {
      for (std::uint32_t i = 0; i < subflows_.size(); ++i) {
        if (i != idx &&
            subflows_[i]->state() != TcpConnection::State::kClosed) {
          active_subflow_ = i;
          break;
        }
      }
    }
    ReinjectOrphans(idx);
    TrySchedule();
  }
  if (!closed()) return;
  // Last subflow down: the meta-connection is gone. Release the demux entry
  // and listener now (not at destruction) so churned metas never dangle.
  if (reinject_timer_ != kInvalidEventId) {
    sim_.Cancel(reinject_timer_);
    reinject_timer_ = kInvalidEventId;
  }
  host_->UnregisterEndpoint(flow_, this);
  host_->RemoveTdnListener(this);
  if (on_closed_) on_closed_(close_reason());
}

void MptcpConnection::HandlePacket(Packet&& p) {
  if (p.type == PacketType::kTdnNotify) {
    OnTdnChange(p.notify_tdn, p.circuit_imminent);
    return;
  }
  const std::uint32_t idx = p.subflow;
  if (idx >= subflows_.size()) return;
  subflows_[idx]->HandlePacket(std::move(p));
}

void MptcpConnection::OnTdnChange(TdnId tdn, bool imminent) {
  if (imminent) return;
  // tdm_schd: subflow i is pinned to network i; steer to the active one.
  const std::uint32_t target = std::min<std::uint32_t>(
      tdn, static_cast<std::uint32_t>(subflows_.size() - 1));
  if (target != active_subflow_) {
    active_subflow_ = target;
    TrySchedule();
  }
}

void MptcpConnection::TrySchedule() {
  if (!unlimited_) return;
  TcpConnection* sub = subflows_[active_subflow_].get();
  if (sub->state() != TcpConnection::State::kEstablished) return;

  const std::uint64_t mss = config_.subflow.mss;
  const std::uint64_t queue_target =
      static_cast<std::uint64_t>(config_.subflow_queue_segments) * mss;

  while (sub->unsent_buffered_bytes() < queue_target &&
         MetaWindowUsed() + mss <= config_.meta_snd_buf_bytes &&
         MetaWindowUsed() + mss <= peer_meta_wnd_) {
    sub->AddMappedData(static_cast<std::uint32_t>(mss), dss_next_);
    dss_next_ += mss;
    ++mp_stats_.scheduled_segments;
  }
}

void MptcpConnection::OnDssAck(std::uint64_t dss_ack, std::uint64_t dss_rwnd) {
  peer_meta_wnd_ = dss_rwnd;
  if (peer_meta_wnd_ == 0) ++mp_stats_.zero_window_acks;
  if (dss_ack <= dss_una_) {
    TrySchedule();  // the window may have reopened
    return;
  }
  dss_una_ = dss_ack;
  last_progress_ = sim_.now();
  TrySchedule();
}

void MptcpConnection::OnSubflowDeliver(const TcpConnection::DeliverInfo& info) {
  if (!info.has_dss) return;
  auto result = meta_rcv_.OnData(info.dss_seq, info.len, false, 0, sim_.now());
  if (result.duplicate) ++mp_stats_.meta_duplicates;
}

void MptcpConnection::ArmReinjectTimer() {
  reinject_timer_ = sim_.Schedule(config_.reinject_delay, [this] {
    reinject_timer_ = kInvalidEventId;
    MaybeReinject();
    ArmReinjectTimer();
  });
}

void MptcpConnection::MaybeReinject() {
  ++mp_stats_.stall_checks;
  if (!unlimited_) return;
  // A stall: no meta progress for a full reinjection delay while data-level
  // sequence space is outstanding (the hole is parked on a subflow whose
  // path is gone, closing the meta window / filling the meta send buffer).
  if (sim_.now() - last_progress_ < config_.reinject_delay) return;
  if (MetaWindowUsed() == 0) return;

  TcpConnection* active = subflows_[active_subflow_].get();
  if (active->state() != TcpConnection::State::kEstablished) return;

  // Find the lowest unacked (or stranded-unsent) DSS range held by another
  // subflow and remap it onto the active one (Raiciu et al.'s
  // connection-level reinjection).
  std::uint64_t best_dss = ~0ull;
  std::uint32_t best_len = 0;
  for (std::uint32_t i = 0; i < subflows_.size(); ++i) {
    if (i == active_subflow_) continue;
    for (const auto& r : subflows_[i]->UnackedDssRanges()) {
      if (r.dss_seq < best_dss && r.dss_seq >= dss_una_) {
        best_dss = r.dss_seq;
        best_len = r.len;
      }
    }
    for (const auto& r : subflows_[i]->PendingDssRanges()) {
      if (r.dss_seq < best_dss && r.dss_seq >= dss_una_) {
        best_dss = r.dss_seq;
        best_len = std::min<std::uint32_t>(r.len, config_.subflow.mss);
      }
    }
  }
  if (best_len == 0) return;

  std::uint32_t budget = config_.reinject_burst_segments;
  std::uint64_t dss = best_dss;
  while (budget-- > 0 && dss < dss_next_) {
    if (!active->AddMappedData(best_len, dss)) break;
    ++mp_stats_.reinjections;
    mp_stats_.reinjected_bytes += best_len;
    dss += best_len;
  }
}

std::uint64_t MptcpConnection::reorder_events() const {
  std::uint64_t total = 0;
  for (const auto& s : subflows_) total += s->stats().reorder_events;
  return total;
}

std::uint64_t MptcpConnection::reorder_marked_lost() const {
  std::uint64_t total = 0;
  for (const auto& s : subflows_) total += s->stats().reorder_marked_lost;
  return total;
}

}  // namespace tdtcp
