// Multipath TCP with the paper's `tdm_schd` scheduler (§2.2).
//
// The meta-connection owns one subflow per network, each pinned to its path
// (subflow 0 → packet network, subflow 1 → optical circuit), each a full
// TcpConnection with its own sequence space. New application data is mapped
// into the data-sequence (DSS) space and steered to whichever subflow's
// network the RDCN schedule currently provides. Subflow ACKs piggyback a
// DATA_ACK (dss_ack) that frees the bounded meta send buffer.
//
// The stall mechanism the paper measures arises structurally: tail segments
// sent on the optical subflow right before circuit teardown sit stashed at
// the ToR (their path is pinned and inactive), so the DATA_ACK stops
// advancing, the meta send buffer fills, and the sender cannot push new data
// on the now-active packet subflow until connection-level reinjection remaps
// the stranded DSS range onto it — at the cost of duplicate transmissions.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/host.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"
#include "tcp/receive_buffer.hpp"
#include "tcp/tcp_connection.hpp"

namespace tdtcp {

class MptcpConnection : public PacketSink {
 public:
  struct Config {
    TcpConfig subflow;                 // base subflow configuration
    std::uint32_t num_subflows = 2;    // subflow i is pinned to path i
    // Meta-level send buffer: unacked-at-meta data is bounded by this, which
    // is what turns a stalled DATA_ACK (hole parked on a dead subflow) into
    // a transmission stall a few hundred microseconds later.
    std::uint64_t meta_snd_buf_bytes = 128 * 8940;
    // Meta-level receive buffer shared by all subflows (Linux-scale, MBs). A
    // data-sequence hole lets in-order-at-subflow data pile up here; if it
    // ever fills, the advertised meta window closes — §3.3's flow-control
    // stall. The send buffer usually binds first.
    std::uint64_t meta_rcv_buf_bytes = 512 * 8940;
    // How long the scheduler tolerates a stall before reinjecting, and how
    // many segments one reinjection pass remaps. The delay approximates the
    // subflow-RTO-scale trigger of the reference implementation.
    SimTime reinject_delay = SimTime::Micros(500);
    std::uint32_t reinject_burst_segments = 8;
    // Keep this many unsent segments queued per active subflow.
    std::uint32_t subflow_queue_segments = 2;
  };

  struct Stats {
    std::uint64_t scheduled_segments = 0;
    std::uint64_t reinjections = 0;
    std::uint64_t reinjected_bytes = 0;
    std::uint64_t stall_checks = 0;
    std::uint64_t meta_duplicates = 0;  // receiver-side DSS dups discarded
    std::uint64_t zero_window_acks = 0; // flow-control stall evidence
    std::uint64_t subflow_aborts = 0;   // subflows closed abnormally
    std::uint64_t abort_reinjections = 0;  // DSS ranges rescued from them
    // Stranded DSS ranges no survivor could accept (none left, or the only
    // candidates had their FIN on the wire): data the meta lost, not rescued.
    std::uint64_t unrescued_ranges = 0;
    std::uint64_t unrescued_bytes = 0;
  };

  MptcpConnection(Simulator& sim, Host* host, FlowId flow, NodeId peer,
                  Config config);
  ~MptcpConnection() override;

  void Listen();
  void Connect();
  void SetUnlimitedData(bool unlimited);

  // Graceful meta close: every subflow sends its FIN through the normal
  // machinery. The meta reaches kClosed — and ClosedFn fires — once the last
  // subflow does. An aborted subflow (RST, retry cap) hands its stranded DSS
  // ranges to a survivor before the meta gives up on them.
  void Close();
  void Abort(CloseReason reason = CloseReason::kUserAbort);
  using ClosedFn = TcpConnection::ClosedFn;
  // Same contract as TcpConnection::SetClosedCallback: the callback must not
  // destroy the meta-connection synchronously.
  void SetClosedCallback(ClosedFn fn) { on_closed_ = std::move(fn); }
  bool closed() const { return closed_subflows_ == subflows_.size(); }
  // kNormal when every subflow closed gracefully; otherwise the first
  // abnormal subflow reason (kNone while any subflow is still open).
  CloseReason close_reason() const;

  void HandlePacket(Packet&& p) override;

  // Sender-side meta progress: DSS bytes cumulatively DATA_ACKed.
  std::uint64_t meta_bytes_acked() const { return dss_una_ - 1; }
  // Receiver-side meta progress: DSS bytes delivered in order to the app.
  std::uint64_t meta_bytes_delivered() const { return meta_rcv_.rcv_nxt() - 1; }

  TcpConnection* subflow(std::uint32_t i) { return subflows_[i].get(); }
  std::uint32_t active_subflow() const { return active_subflow_; }
  const Stats& stats() const { return mp_stats_; }

  // Aggregate reordering stats across subflows (Fig. 10's MPTCP line).
  std::uint64_t reorder_events() const;
  std::uint64_t reorder_marked_lost() const;

 private:
  void OnTdnChange(TdnId tdn, bool imminent);
  void OnSubflowClosed(std::uint32_t idx, CloseReason reason);
  // Remap DSS ranges stranded on a dead subflow onto a surviving one.
  void ReinjectOrphans(std::uint32_t dead_idx);
  TcpConnection* FindSurvivor(std::uint32_t excluding);
  void TrySchedule();
  void OnDssAck(std::uint64_t dss_ack, std::uint64_t dss_rwnd);
  void OnSubflowDeliver(const TcpConnection::DeliverInfo& info);
  void ArmReinjectTimer();
  void MaybeReinject();
  std::uint64_t MetaWindowUsed() const { return dss_next_ - dss_una_; }

  Simulator& sim_;
  Host* host_;
  FlowId flow_;
  Config config_;
  std::vector<std::unique_ptr<TcpConnection>> subflows_;
  std::uint32_t active_subflow_ = 0;
  bool unlimited_ = false;

  // Sender meta state (DSS space is 1-based like the stream space).
  std::uint64_t dss_next_ = 1;
  std::uint64_t dss_una_ = 1;
  std::uint64_t peer_meta_wnd_ = 1ull << 30;

  // Receiver meta reassembly.
  ReceiveBuffer meta_rcv_;

  EventId reinject_timer_ = kInvalidEventId;
  SimTime last_progress_;

  // Teardown: count of subflows at kClosed, first abnormal reason seen.
  std::uint32_t closed_subflows_ = 0;
  CloseReason abnormal_reason_ = CloseReason::kNone;
  ClosedFn on_closed_;

  Stats mp_stats_;
};

}  // namespace tdtcp
