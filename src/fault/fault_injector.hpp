// Executes a FaultPlan against a Topology.
//
// The injector installs fault filters on every fabric port and rack NIC
// link, a notification fault hook on every ToR, and schedules link-down
// windows plus a periodic network-invariant audit. Every random decision is
// drawn from a dedicated Random stream seeded from (run seed ^ plan salt):
// the trace is bit-identical across runs of the same (plan, seed) and
// independent of workload randomness, composing with the sweep engine's
// jobs=1 == jobs=N determinism guarantee.
//
// Every injected fault is appended to an ordered trace; TraceHash() folds
// it into a single value tests can compare across runs, and
// DumpRecentFaults() renders the tail into TCP invariant-violation reports
// (the FaultTraceSource interface from tcp/invariant_checker.hpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <vector>

#include "fault/fault_plan.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/invariant_checker.hpp"

namespace tdtcp {

enum class FaultKind : std::uint8_t {
  kDataLoss,         // Bernoulli drop on a data link
  kDataCorrupt,      // corruption (dropped at checksum)
  kBurstLoss,        // Gilbert-Elliott bad-state drop
  kNotifyDrop,       // control-plane notification lost
  kNotifyDelay,      // notification delivered late
  kNotifyDuplicate,  // notification delivered twice
  kStallDrop,        // swallowed by a controller stall window
  kLinkDown,
  kLinkUp,
  kHostDown,         // one host's NIC dies silently (subject = NodeId)
  kHostUp,
};

const char* FaultKindName(FaultKind kind);

struct FaultEvent {
  SimTime at = SimTime::Zero();
  FaultKind kind = FaultKind::kDataLoss;
  std::uint64_t packet_id = 0;  // zero for link up/down events
  std::uint32_t subject = 0;    // link index or rack id
};

struct FaultStats {
  std::uint64_t data_dropped = 0;
  std::uint64_t data_corrupted = 0;
  std::uint64_t burst_dropped = 0;
  std::uint64_t notifications_dropped = 0;
  std::uint64_t notifications_delayed = 0;
  std::uint64_t notifications_duplicated = 0;
  std::uint64_t stall_dropped = 0;
  std::uint64_t link_transitions = 0;
  std::uint64_t host_transitions = 0;

  std::uint64_t total() const {
    return data_dropped + data_corrupted + burst_dropped +
           notifications_dropped + notifications_delayed +
           notifications_duplicated + stall_dropped + link_transitions +
           host_transitions;
  }
};

class FaultInjector final : public FaultTraceSource {
 public:
  FaultInjector(Simulator& sim, FaultPlan plan, std::uint64_t run_seed);

  // Installs all hooks on `topo` and schedules the plan's link windows and
  // periodic audits. Call once, before the simulation starts (the topology
  // must outlive the injector's hooks, i.e. the injector).
  void Arm(Topology& topo);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }
  const std::vector<FaultEvent>& trace() const { return trace_; }

  // FNV-1a over the ordered (time, kind, packet, subject) tuples: two runs
  // with identical fault behaviour hash identically.
  std::uint64_t TraceHash() const;

  // FaultTraceSource: render the last `last_n` fault events.
  void DumpRecentFaults(std::FILE* out, std::size_t last_n) const override;

 private:
  struct GeState {
    bool bad = false;
  };

  // Returns true when the packet should be dropped; records the fault.
  bool RollLink(const LinkFaultSpec& spec, GeState& ge, const Packet& p,
                std::uint32_t subject);
  void OnNotify(const Packet& icmp, SimTime base_delay,
                std::vector<SimTime>& delays_out, std::uint32_t rack);
  bool InStall(SimTime t) const;
  void Record(FaultKind kind, std::uint64_t packet_id, std::uint32_t subject);
  void ScheduleAudit();
  void Audit() const;

  Simulator& sim_;
  FaultPlan plan_;
  Random rng_;
  std::vector<GeState> ge_states_;
  std::vector<const QueueDisc*> audited_voqs_;
  std::vector<FaultEvent> trace_;
  FaultStats stats_;
  bool armed_ = false;
};

}  // namespace tdtcp
