#include "fault/fault_injector.hpp"

#include <cassert>
#include <cinttypes>
#include <stdexcept>
#include <string>

#include "sim/hash.hpp"

namespace tdtcp {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDataLoss: return "data-loss";
    case FaultKind::kDataCorrupt: return "data-corrupt";
    case FaultKind::kBurstLoss: return "burst-loss";
    case FaultKind::kNotifyDrop: return "notify-drop";
    case FaultKind::kNotifyDelay: return "notify-delay";
    case FaultKind::kNotifyDuplicate: return "notify-dup";
    case FaultKind::kStallDrop: return "stall-drop";
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kHostDown: return "host-down";
    case FaultKind::kHostUp: return "host-up";
  }
  return "?";
}

FaultInjector::FaultInjector(Simulator& sim, FaultPlan plan,
                             std::uint64_t run_seed)
    : sim_(sim), plan_(std::move(plan)), rng_(run_seed ^ plan_.seed_salt) {}

void FaultInjector::Arm(Topology& topo) {
  assert(!armed_ && "FaultInjector::Arm called twice");
  armed_ = true;
  const std::uint32_t racks = topo.config().num_racks;

  // One Gilbert-Elliott chain per faulted link. Indices are assigned in a
  // fixed construction order so the trace's `subject` field is stable:
  // fabric ports first (src-major), then rack uplinks, then downlinks.
  std::uint32_t subject = 0;

  for (RackId a = 0; a < racks; ++a) {
    for (RackId b = 0; b < racks; ++b) {
      if (a == b) continue;
      FabricPort* port = topo.port(a, b);
      audited_voqs_.push_back(&port->voq());
      const std::uint32_t idx = subject++;
      ge_states_.emplace_back();
      if (!plan_.fabric.Empty()) {
        port->SetFaultFilter([this, idx](const Packet& p) {
          return RollLink(plan_.fabric, ge_states_[idx], p, idx);
        });
      }
    }
  }
  for (RackId r = 0; r < racks; ++r) {
    for (Link* link : {topo.rack_uplink(r), topo.rack_downlink(r)}) {
      const std::uint32_t idx = subject++;
      ge_states_.emplace_back();
      if (!plan_.host_links.Empty()) {
        link->SetFaultFilter([this, idx](const Packet& p) {
          return RollLink(plan_.host_links, ge_states_[idx], p, idx);
        });
      }
    }
  }

  if (!plan_.control.Empty()) {
    for (RackId r = 0; r < racks; ++r) {
      topo.tor(r)->SetNotifyFaultHook(
          [this, r](const Packet& icmp, SimTime base,
                    std::vector<SimTime>& out) {
            OnNotify(icmp, base, out, r);
          });
    }
  }

  for (const LinkDownWindow& w : plan_.link_downs) {
    if (w.rack >= racks || w.duration.IsZero()) continue;
    Link* link = w.uplink ? topo.rack_uplink(w.rack) : topo.rack_downlink(w.rack);
    const std::uint32_t rack = w.rack;
    sim_.ScheduleAtNoCancel(w.down_at, [this, link, rack] {
      link->set_enabled(false);
      ++stats_.link_transitions;
      Record(FaultKind::kLinkDown, 0, rack);
    });
    sim_.ScheduleAtNoCancel(w.down_at + w.duration, [this, link, rack] {
      link->set_enabled(true);
      ++stats_.link_transitions;
      Record(FaultKind::kLinkUp, 0, rack);
    });
  }

  for (const HostDownWindow& w : plan_.host_downs) {
    if (w.rack >= racks || w.host_index >= topo.config().hosts_per_rack) {
      continue;
    }
    Host* host = topo.host(w.rack, w.host_index);
    const std::uint32_t node = host->id();
    sim_.ScheduleAtNoCancel(w.down_at, [this, host, node] {
      host->set_nic_enabled(false);
      ++stats_.host_transitions;
      Record(FaultKind::kHostDown, 0, node);
    });
    if (!w.duration.IsZero()) {
      sim_.ScheduleAtNoCancel(w.down_at + w.duration, [this, host, node] {
        host->set_nic_enabled(true);
        ++stats_.host_transitions;
        Record(FaultKind::kHostUp, 0, node);
      });
    }
  }

  if (!plan_.audit_interval.IsZero()) ScheduleAudit();
}

bool FaultInjector::RollLink(const LinkFaultSpec& spec, GeState& ge,
                             const Packet& p, std::uint32_t subject) {
  if (spec.gilbert_elliott) {
    // Advance the chain once per packet, then roll the state's loss prob.
    if (ge.bad) {
      if (rng_.Bernoulli(spec.ge_p_bad_to_good)) ge.bad = false;
    } else if (rng_.Bernoulli(spec.ge_p_good_to_bad)) {
      ge.bad = true;
    }
    const double loss = ge.bad ? spec.ge_loss_bad : spec.ge_loss_good;
    if (rng_.Bernoulli(loss)) {
      ++stats_.burst_dropped;
      Record(FaultKind::kBurstLoss, p.id, subject);
      return true;
    }
  }
  if (rng_.Bernoulli(spec.loss_rate)) {
    ++stats_.data_dropped;
    Record(FaultKind::kDataLoss, p.id, subject);
    return true;
  }
  if (rng_.Bernoulli(spec.corrupt_rate)) {
    ++stats_.data_corrupted;
    Record(FaultKind::kDataCorrupt, p.id, subject);
    return true;
  }
  return false;
}

bool FaultInjector::InStall(SimTime t) const {
  for (const auto& w : plan_.control.stalls) {
    if (t >= w.from && t < w.until) return true;
  }
  return false;
}

void FaultInjector::OnNotify(const Packet& icmp, SimTime base_delay,
                             std::vector<SimTime>& delays_out,
                             std::uint32_t rack) {
  const ControlFaultSpec& c = plan_.control;
  if (InStall(sim_.now())) {
    ++stats_.stall_dropped;
    Record(FaultKind::kStallDrop, icmp.id, rack);
    return;  // no deliveries: the reconfiguration happens silently
  }
  if (rng_.Bernoulli(c.notify_loss_rate)) {
    ++stats_.notifications_dropped;
    Record(FaultKind::kNotifyDrop, icmp.id, rack);
    return;
  }
  SimTime when = base_delay;
  if (!c.notify_delay_mean.IsZero()) {
    when = when + SimTime::Picos(static_cast<std::int64_t>(
                      rng_.Exponential(static_cast<double>(
                          c.notify_delay_mean.picos()))));
  }
  if (!c.notify_delay_jitter.IsZero()) {
    when = when + rng_.UniformTime(SimTime::Zero(), c.notify_delay_jitter);
  }
  if (when != base_delay) {
    ++stats_.notifications_delayed;
    Record(FaultKind::kNotifyDelay, icmp.id, rack);
  }
  delays_out.push_back(when);
  if (rng_.Bernoulli(c.notify_duplicate_rate)) {
    ++stats_.notifications_duplicated;
    Record(FaultKind::kNotifyDuplicate, icmp.id, rack);
    // The duplicate trails the original slightly, as a retransmitted or
    // misrouted copy would.
    delays_out.push_back(when + SimTime::Micros(1));
  }
}

void FaultInjector::Record(FaultKind kind, std::uint64_t packet_id,
                           std::uint32_t subject) {
  trace_.push_back(FaultEvent{sim_.now(), kind, packet_id, subject});
}

std::uint64_t FaultInjector::TraceHash() const {
  Fnv1a64 h;
  for (const FaultEvent& e : trace_) {
    h.Mix(static_cast<std::uint64_t>(e.at.picos()));
    h.Mix(static_cast<std::uint64_t>(e.kind));
    h.Mix(e.packet_id);
    h.Mix(e.subject);
  }
  return h.value();
}

void FaultInjector::DumpRecentFaults(std::FILE* out,
                                     std::size_t last_n) const {
  const std::size_t start =
      trace_.size() > last_n ? trace_.size() - last_n : 0;
  std::fprintf(out, "recent fault trace (%zu of %zu events):\n",
               trace_.size() - start, trace_.size());
  for (std::size_t i = start; i < trace_.size(); ++i) {
    const FaultEvent& e = trace_[i];
    std::fprintf(out, "  t=%.3fus %s packet=%" PRIu64 " subject=%u\n",
                 static_cast<double>(e.at.picos()) / 1e6, FaultKindName(e.kind),
                 e.packet_id, e.subject);
  }
}

void FaultInjector::ScheduleAudit() {
  sim_.ScheduleNoCancel(plan_.audit_interval, [this] {
    Audit();
    ScheduleAudit();
  });
}

void FaultInjector::Audit() const {
  for (const QueueDisc* voq : audited_voqs_) {
    if (!voq->WithinBound()) {
      throw std::logic_error(
          "VOQ occupancy invariant violated: occupancy " +
          std::to_string(voq->occupancy()) + " exceeds bound (capacity " +
          std::to_string(voq->capacity()) + ") at t=" +
          std::to_string(sim_.now().picos()) + "ps");
    }
  }
}

}  // namespace tdtcp
