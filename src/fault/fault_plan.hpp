// Declarative fault scenarios for the simulator.
//
// A FaultPlan is pure data: which links lose or corrupt packets (i.i.d. or
// Gilbert-Elliott bursts), when links go down, and how the control plane
// misbehaves (notification drop / delay / duplication / reordering, and
// controller stalls that skip a reconfiguration entirely). The FaultInjector
// executes a plan against a Topology with a dedicated Random stream, so the
// same (plan, seed) always produces a bit-identical fault trace regardless
// of what the workload's own randomness does.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tdtcp {

// Per-link random loss and corruption. Bernoulli and Gilbert-Elliott can be
// combined; a packet is dropped when either process fires. Corruption is
// modeled as a drop counted separately: a corrupted packet fails the
// receiver's checksum, which is indistinguishable from loss end to end.
struct LinkFaultSpec {
  double loss_rate = 0.0;     // i.i.d. per-packet drop probability
  double corrupt_rate = 0.0;  // i.i.d. per-packet corruption probability

  // Gilbert-Elliott burst loss: a two-state Markov chain advanced once per
  // packet. The bad state drops with high probability, producing the
  // correlated bursts that i.i.d. loss cannot.
  bool gilbert_elliott = false;
  double ge_p_good_to_bad = 0.0;
  double ge_p_bad_to_good = 0.1;
  double ge_loss_good = 0.0;
  double ge_loss_bad = 1.0;

  bool Empty() const {
    return loss_rate <= 0.0 && corrupt_rate <= 0.0 && !gilbert_elliott;
  }
};

// Scheduled full outage of one rack NIC link (maintenance window, flapping
// transceiver). The in-flight transmission completes; queued packets wait.
struct LinkDownWindow {
  RackId rack = 0;
  bool uplink = true;  // false = the ToR -> hosts downlink
  SimTime down_at = SimTime::Zero();
  SimTime duration = SimTime::Zero();
};

// Scheduled death of one host's NIC (kernel panic mid-connection, hard
// power-off). Both directions drop silently at the host — no RST, no link
// carrier event — so its peers only discover the death through their own
// bounded-retry machinery (SYN caps, max_rto_retries, persist give-up),
// while the downed host's local timers keep running and abort its side too.
struct HostDownWindow {
  RackId rack = 0;
  std::uint32_t host_index = 0;
  SimTime down_at = SimTime::Zero();
  SimTime duration = SimTime::Zero();  // zero = never comes back
};

// Control-plane faults, applied independently to every per-host ICMP
// notification a ToR generates (§3.2's unreliable notification channel).
struct ControlFaultSpec {
  double notify_loss_rate = 0.0;       // drop the notification outright
  double notify_duplicate_rate = 0.0;  // deliver it twice

  // Extra delivery latency: exponential with this mean (zero disables),
  // plus uniform jitter in [0, notify_delay_jitter]. Large draws reorder
  // notifications relative to each other and to the data path; the hosts'
  // sequence filter must absorb the stale arrivals.
  SimTime notify_delay_mean = SimTime::Zero();
  SimTime notify_delay_jitter = SimTime::Zero();

  // Controller stall: every notification generated inside a window is
  // swallowed -- the fabric reconfigures on schedule but no host hears
  // about it, exactly the "skipped reconfiguration" failure mode.
  struct StallWindow {
    SimTime from = SimTime::Zero();
    SimTime until = SimTime::Zero();
  };
  std::vector<StallWindow> stalls;

  bool Empty() const {
    return notify_loss_rate <= 0.0 && notify_duplicate_rate <= 0.0 &&
           notify_delay_mean.IsZero() && notify_delay_jitter.IsZero() &&
           stalls.empty();
  }
};

struct FaultPlan {
  LinkFaultSpec fabric;      // every ToR-to-ToR fabric port
  LinkFaultSpec host_links;  // every rack NIC link (up and down)
  std::vector<LinkDownWindow> link_downs;
  std::vector<HostDownWindow> host_downs;
  ControlFaultSpec control;

  // Mixed into the experiment seed to derive the injector's dedicated
  // Random stream (fault decisions never consume workload randomness).
  std::uint64_t seed_salt = 0x9e3779b97f4a7c15ull;

  // Period of the injector's network-invariant audit (VOQ occupancy within
  // bound on every fabric port). Zero disables the audit.
  SimTime audit_interval = SimTime::Micros(50);

  bool Empty() const {
    return fabric.Empty() && host_links.Empty() && link_downs.empty() &&
           host_downs.empty() && control.Empty();
  }
};

}  // namespace tdtcp
