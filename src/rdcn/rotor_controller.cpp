#include "rdcn/rotor_controller.hpp"

#include <stdexcept>
#include <string>

namespace tdtcp {

RotorController::RotorController(Simulator& sim, Config config, Topology* topo)
    : sim_(sim), config_(config), topo_(topo) {
  // Throw, don't assert: the default build defines NDEBUG, and an odd rack
  // count would silently build garbage matchings (the circle method pairs
  // slot i with slot n-1-i, which only covers everyone for even n).
  const std::uint32_t racks = topo_->config().num_racks;
  if (racks < 2 || racks % 2 != 0) {
    throw std::invalid_argument(
        "RotorController: round-robin matchings need an even rack count >= 2 "
        "(got " + std::to_string(racks) + ")");
  }
  BuildMatchings();
}

void RotorController::BuildMatchings() {
  // Classic round-robin tournament ("circle method"): rack 0 is fixed, the
  // others rotate; every day is a perfect matching and all pairs meet once
  // per week.
  const std::uint32_t n = topo_->config().num_racks;
  const std::uint32_t days = n - 1;
  matchings_.assign(days, std::vector<RackId>(n, 0));
  for (std::uint32_t d = 0; d < days; ++d) {
    auto& m = matchings_[d];
    // Position table: slot 0 holds rack 0; slots 1..n-1 hold the rotated rest.
    std::vector<RackId> slots(n);
    slots[0] = 0;
    for (std::uint32_t i = 1; i < n; ++i) {
      slots[i] = 1 + (d + i - 1) % (n - 1);
    }
    // Pair slot i with slot n-1-i.
    for (std::uint32_t i = 0; i < n / 2; ++i) {
      const RackId a = slots[i];
      const RackId b = slots[n - 1 - i];
      m[a] = b;
      m[b] = a;
    }
  }
}

void RotorController::Start() { RunDay(0); }

void RotorController::RunDay(std::uint32_t day) {
  const std::uint32_t n = topo_->config().num_racks;
  const auto& matching = matchings_[day];
  for (RackId a = 0; a < n; ++a) {
    const RackId partner = matching[a];
    for (RackId b = 0; b < n; ++b) {
      if (a == b) continue;
      FabricPort* port = topo_->port(a, b);
      const bool circuit = (b == partner);
      const NetworkMode& mode =
          circuit ? config_.circuit_mode : config_.packet_mode;
      const bool changed = port->mode().tdn != mode.tdn;
      port->SetMode(mode);
      port->SetBlackout(false);
      if (changed) {
        topo_->tor(a)->NotifyHosts(mode.tdn, /*imminent=*/false, /*peer=*/b,
                                   ++notify_seq_);
      }
    }
  }
  sim_.ScheduleNoCancel(config_.day_length, [this, day] { RunNight(day); });
}

void RotorController::RunNight(std::uint32_t day) {
  const std::uint32_t n = topo_->config().num_racks;
  const auto& matching = matchings_[day];
  for (RackId a = 0; a < n; ++a) {
    for (RackId b = 0; b < n; ++b) {
      if (a == b) continue;
      topo_->port(a, b)->SetBlackout(true);
    }
    // Circuit teardown notice for the pair that was connected.
    topo_->tor(a)->NotifyHosts(config_.packet_mode.tdn, /*imminent=*/false,
                               /*peer=*/matching[a], ++notify_seq_);
  }
  const std::uint32_t next = (day + 1) % matchings_.size();
  sim_.ScheduleNoCancel(config_.night_length, [this, next] { RunDay(next); });
}

}  // namespace tdtcp
