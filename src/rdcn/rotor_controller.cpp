#include "rdcn/rotor_controller.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace tdtcp {

RotorController::RotorController(Simulator& sim, Config config, Topology* topo)
    : sim_(sim), config_(config), topo_(topo) {
  // Throw, don't assert: the default build defines NDEBUG, and an odd rack
  // count would silently build garbage matchings (the circle method pairs
  // slot i with slot n-1-i, which only covers everyone for even n).
  const std::uint32_t racks = topo_->config().num_racks;
  if (racks < 2 || racks % 2 != 0) {
    throw std::invalid_argument(
        "RotorController: round-robin matchings need an even rack count >= 2 "
        "(got " + std::to_string(racks) + ")");
  }
  BuildMatchings();
  if (!config_.perturb.Empty()) {
    perturb_ =
        std::make_unique<SchedulePerturbation>(config_.perturb, config_.seed);
  }
}

void RotorController::BuildMatchings() {
  // Classic round-robin tournament ("circle method"): rack 0 is fixed, the
  // others rotate; every day is a perfect matching and all pairs meet once
  // per week.
  const std::uint32_t n = topo_->config().num_racks;
  const std::uint32_t days = n - 1;
  matchings_.assign(days, std::vector<RackId>(n, 0));
  for (std::uint32_t d = 0; d < days; ++d) {
    auto& m = matchings_[d];
    // Position table: slot 0 holds rack 0; slots 1..n-1 hold the rotated rest.
    std::vector<RackId> slots(n);
    slots[0] = 0;
    for (std::uint32_t i = 1; i < n; ++i) {
      slots[i] = 1 + (d + i - 1) % (n - 1);
    }
    // Pair slot i with slot n-1-i.
    for (std::uint32_t i = 0; i < n / 2; ++i) {
      const RackId a = slots[i];
      const RackId b = slots[n - 1 - i];
      m[a] = b;
      m[b] = a;
    }
  }
}

void RotorController::ReshuffleMatchings() {
  // Relabel the racks with a fresh random permutation: every day is still a
  // perfect matching and all pairs still meet once per week, but who meets
  // whom on which day changes — the "matching reshuffle" mid-flow change.
  const std::uint32_t n = topo_->config().num_racks;
  std::vector<RackId> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i] = i;
  Random& rng = perturb_->rng();
  for (std::uint32_t i = n - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.UniformInt(0, i));
    std::swap(perm[i], perm[j]);
  }
  std::vector<std::vector<RackId>> shuffled(matchings_.size(),
                                            std::vector<RackId>(n, 0));
  for (std::size_t d = 0; d < matchings_.size(); ++d) {
    for (std::uint32_t r = 0; r < n; ++r) {
      shuffled[d][perm[r]] = perm[matchings_[d][r]];
    }
  }
  matchings_ = std::move(shuffled);
  ++reshuffles_;
}

void RotorController::ApplyChange(const ScheduleChange& change) {
  if (!change.day_length.IsZero()) config_.day_length = change.day_length;
  if (!change.night_length.IsZero()) {
    config_.night_length = change.night_length;
  }
  if (change.circuit_tdn >= 0) {
    config_.circuit_mode.tdn = static_cast<TdnId>(change.circuit_tdn);
  }
  if (change.reshuffle_matchings) ReshuffleMatchings();
  if (change.live_tdns >= 0 && reconfig_) {
    reconfig_(static_cast<std::uint32_t>(change.live_tdns));
  }
}

bool RotorController::DeferForRestart(std::uint32_t day, bool night) {
  if (!perturb_) return false;
  const SimTime hold = perturb_->RestartHold(sim_.now() - start_time_);
  if (hold.IsZero()) return false;
  ++restart_holds_;
  if (night) {
    sim_.ScheduleNoCancel(hold, [this, day] { RunNight(day); });
  } else {
    sim_.ScheduleNoCancel(hold, [this, day] { RunDay(day); });
  }
  return true;
}

void RotorController::Start() {
  start_time_ = sim_.now();
  RunDay(0);
}

void RotorController::RunDay(std::uint32_t day) {
  if (DeferForRestart(day, /*night=*/false)) return;
  if (perturb_) {
    while (const ScheduleChange* ch =
               perturb_->PendingChange(sim_.now() - start_time_)) {
      ApplyChange(*ch);
      perturb_->MarkApplied();
    }
  }
  const std::uint32_t n = topo_->config().num_racks;
  const auto& matching = matchings_[day];
  for (RackId a = 0; a < n; ++a) {
    const RackId partner = matching[a];
    for (RackId b = 0; b < n; ++b) {
      if (a == b) continue;
      FabricPort* port = topo_->port(a, b);
      const bool circuit = (b == partner);
      const NetworkMode& mode =
          circuit ? config_.circuit_mode : config_.packet_mode;
      const bool changed = port->mode().tdn != mode.tdn;
      port->SetMode(mode);
      port->SetBlackout(false);
      if (changed) {
        topo_->tor(a)->NotifyHosts(mode.tdn, /*imminent=*/false, /*peer=*/b,
                                   ++notify_seq_);
      }
    }
  }
  const SimTime day_length =
      perturb_ ? perturb_->PerturbDay(day, config_.day_length)
               : config_.day_length;
  sim_.ScheduleNoCancel(day_length, [this, day] { RunNight(day); });
}

void RotorController::RunNight(std::uint32_t day) {
  if (DeferForRestart(day, /*night=*/true)) return;
  const std::uint32_t n = topo_->config().num_racks;
  const auto& matching = matchings_[day];
  for (RackId a = 0; a < n; ++a) {
    for (RackId b = 0; b < n; ++b) {
      if (a == b) continue;
      topo_->port(a, b)->SetBlackout(true);
    }
    // Circuit teardown notice for the pair that was connected.
    topo_->tor(a)->NotifyHosts(config_.packet_mode.tdn, /*imminent=*/false,
                               /*peer=*/matching[a], ++notify_seq_);
  }
  const std::uint32_t next = (day + 1) % matchings_.size();
  const SimTime night_length =
      perturb_ ? perturb_->PerturbNight(config_.night_length)
               : config_.night_length;
  sim_.ScheduleNoCancel(night_length, [this, next] { RunDay(next); });
}

}  // namespace tdtcp
