// Adversarial-schedule perturbations for the RDCN controllers.
//
// A PerturbationConfig is pure data, mirroring fault/fault_plan.hpp: skewed
// day lengths, jittered day/night boundaries, mid-flow schedule changes
// (rotation-period change, matching reshuffle, TDN-count change), and
// controller-restart windows during which the fabric freezes in place. The
// SchedulePerturbation engine executes a config with a dedicated Random
// stream (seed ^ seed_salt, same discipline as the fault injector), so the
// same (config, seed) always produces the same perturbed schedule no matter
// what the workload's own randomness does.
//
// Both RdcnController and RotorController consult the engine at every
// day/night boundary; ExperimentConfig::WithSchedulePerturbation wires it
// end to end, and the convergence oracle (trace/convergence.hpp) classifies
// what the transport did underneath.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace tdtcp {

// One mid-flow schedule change. Changes are applied at the first day
// boundary at-or-after `at` (a real controller rolls a new schedule out at a
// reconfiguration point, never mid-day), in config order; fields at their
// sentinel values keep the current setting. All perturbation times (`at`,
// RestartWindow::at) are relative to the controller's Start() time.
struct ScheduleChange {
  SimTime at = SimTime::Zero();
  SimTime day_length = SimTime::Zero();    // zero = keep
  SimTime night_length = SimTime::Zero();  // zero = keep
  std::int32_t circuit_day = -1;           // pair fabric only; -1 = keep
  std::int32_t circuit_tdn = -1;           // new circuit-day TDN id; -1 = keep
  // TDN-count change: hosts retire per-TDN state sets with id >= this count
  // (TdnManager::RetireAbove semantics — surviving TDNs carry their state,
  // retired sets drain in place and re-initialize on revival). -1 = keep.
  std::int32_t live_tdns = -1;
  // Rotor fabric only: relabel the round-robin matchings with a fresh random
  // rack permutation (every day is still a perfect matching and all pairs
  // still meet once per week, but who meets whom on which day changes).
  bool reshuffle_matchings = false;
};

// Controller-restart window: a boundary falling inside [at, at + duration)
// is deferred to the window's end — the fabric freezes in whatever state the
// previous segment left it and no notifications are generated, composing
// with (but distinct from) FaultInjector stalls, which reconfigure the
// fabric on schedule and swallow only the notifications.
struct RestartWindow {
  SimTime at = SimTime::Zero();
  SimTime duration = SimTime::Zero();
};

struct PerturbationConfig {
  // Skewed day lengths: even-indexed days stretch to (1 + day_skew) x
  // nominal, odd-indexed days shrink to (1 - day_skew) x nominal. Must be in
  // [0, 1).
  double day_skew = 0.0;

  // Jittered boundaries: every day and night length additionally gets an
  // independent uniform draw in [-jitter, +jitter] (clamped so a segment
  // never collapses below a quarter of its nominal length).
  SimTime jitter = SimTime::Zero();

  std::vector<ScheduleChange> changes;
  std::vector<RestartWindow> restarts;

  // Mixed into the experiment seed for the engine's dedicated Random stream.
  // Distinct default from FaultPlan::seed_salt so an experiment running both
  // never correlates fault and schedule draws.
  std::uint64_t seed_salt = 0xc2b2ae3d27d4eb4full;

  bool Empty() const {
    return day_skew == 0.0 && jitter.IsZero() && changes.empty() &&
           restarts.empty();
  }
};

class SchedulePerturbation {
 public:
  struct Stats {
    std::uint64_t skewed_days = 0;
    std::uint64_t jittered_boundaries = 0;
    std::uint64_t changes_applied = 0;
    std::uint64_t restart_holds = 0;
  };

  // Throws std::invalid_argument on day_skew outside [0, 1), negative
  // jitter, or a change/restart with a negative time.
  SchedulePerturbation(PerturbationConfig config, std::uint64_t seed);

  // Perturbed length of day `day_index` (skew + jitter over `base`). Draws
  // are consumed in call order from the dedicated stream, so a controller
  // walking boundaries in simulated-time order is deterministic.
  SimTime PerturbDay(std::uint32_t day_index, SimTime base);
  // Perturbed night length (jitter only; skew is a day-length property).
  SimTime PerturbNight(SimTime base);

  // The next unapplied ScheduleChange due at-or-before `now`, or nullptr.
  // The caller applies it and then MarkApplied()s it; changes are consumed
  // strictly in config order.
  const ScheduleChange* PendingChange(SimTime now) const;
  void MarkApplied();

  // Nonzero when `now` falls inside a restart window: the remaining hold the
  // controller must defer its boundary by.
  SimTime RestartHold(SimTime now);

  Random& rng() { return rng_; }
  const Stats& stats() const { return stats_; }

 private:
  SimTime Jitter(SimTime length, SimTime base);

  PerturbationConfig config_;
  Random rng_;
  std::size_t next_change_ = 0;
  Stats stats_;
};

}  // namespace tdtcp
