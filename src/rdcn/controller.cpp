#include "rdcn/controller.hpp"

#include <stdexcept>
#include <utility>

namespace tdtcp {

RdcnController::RdcnController(Simulator& sim, Config config,
                               std::vector<FabricPort*> ports,
                               std::vector<ToRSwitch*> tors)
    : sim_(sim), config_(config), schedule_(config.schedule),
      ports_(std::move(ports)), tors_(std::move(tors)) {
  if (ports_.empty()) {
    // Was an NDEBUG-silent assert: a portless controller would dereference
    // ports_.front() at the first dynamic-VOQ resize or imminent notice.
    throw std::invalid_argument(
        "RdcnController: needs at least one fabric port to drive");
  }
  normal_voq_packets_ = ports_.front()->voq().capacity();
  if (!config_.perturb.Empty()) {
    perturb_ =
        std::make_unique<SchedulePerturbation>(config_.perturb, config_.seed);
  }
}

void RdcnController::Start() {
  start_time_ = sim_.now();
  RunDay(0);
}

bool RdcnController::DeferForRestart(std::uint32_t day_index, bool night) {
  if (!perturb_) return false;
  const SimTime hold = perturb_->RestartHold(sim_.now() - start_time_);
  if (hold.IsZero()) return false;
  // Controller restart: the fabric freezes in whatever state the previous
  // segment left it (ports keep their mode/blackout), nothing is notified,
  // and the boundary re-fires once the controller comes back.
  ++restart_holds_;
  if (has_trace_) {
    trace_->Emit(sim_.now().picos(), TracePoint::kSchedRestartHold, /*flow=*/0,
                 static_cast<std::uint64_t>(hold.picos()), day_index, night);
  }
  if (night) {
    sim_.ScheduleNoCancel(hold, [this, day_index] { RunNight(day_index); });
  } else {
    sim_.ScheduleNoCancel(hold, [this, day_index] { RunDay(day_index); });
  }
  return true;
}

void RdcnController::ApplyChange(const ScheduleChange& change) {
  if (!change.day_length.IsZero()) {
    config_.schedule.day_length = change.day_length;
  }
  if (!change.night_length.IsZero()) {
    config_.schedule.night_length = change.night_length;
  }
  if (change.circuit_day >= 0) {
    config_.schedule.circuit_day =
        static_cast<std::uint32_t>(change.circuit_day) %
        config_.schedule.num_days;
  }
  if (change.circuit_tdn >= 0) {
    config_.circuit_mode.tdn = static_cast<TdnId>(change.circuit_tdn);
  }
  if (has_trace_) {
    trace_->Emit(sim_.now().picos(), TracePoint::kSchedChange, /*flow=*/0,
                 static_cast<std::uint64_t>(config_.schedule.day_length.picos()),
                 static_cast<std::uint64_t>(config_.schedule.night_length.picos()),
                 change.live_tdns >= 0
                     ? static_cast<std::uint64_t>(change.live_tdns)
                     : 0);
  }
  if (change.live_tdns >= 0 && reconfig_) {
    reconfig_(static_cast<std::uint32_t>(change.live_tdns));
  }
}

void RdcnController::RunDay(std::uint32_t day_index) {
  if (DeferForRestart(day_index, /*night=*/false)) return;
  if (perturb_) {
    // Schedule changes roll out at day boundaries, in config order.
    while (const ScheduleChange* ch =
               perturb_->PendingChange(sim_.now() - start_time_)) {
      ApplyChange(*ch);
      perturb_->MarkApplied();
    }
  }
  const bool circuit = (day_index == config_.schedule.circuit_day);
  const NetworkMode& mode = circuit ? config_.circuit_mode : config_.packet_mode;

  ++reconfigurations_;
  if (has_trace_) {
    trace_->Emit(sim_.now().picos(), TracePoint::kRdcnDayStart, /*flow=*/0,
                 mode.tdn, day_index, circuit);
  }
  for (FabricPort* p : ports_) {
    p->SetMode(mode);
    p->SetBlackout(false);
  }
  // ToRs proactively notify hosts when the path actually changes. Identical
  // consecutive packet days produce no notification (the TDN is unchanged),
  // and circuit teardown is announced at night start by RunNight.
  if (mode.tdn != last_notified_tdn_) NotifyAll(mode.tdn);

  const SimTime day_length =
      perturb_ ? perturb_->PerturbDay(day_index, config_.schedule.day_length)
               : config_.schedule.day_length;

  // reTCPdyn: ahead of the next circuit day, enlarge VOQs and warn senders.
  if (config_.dynamic_voq) {
    const std::uint32_t days = config_.schedule.num_days;
    const std::uint32_t next = (day_index + 1) % days;
    if (next == config_.schedule.circuit_day) {
      const SimTime until_next_day = day_length + config_.schedule.night_length;
      if (until_next_day > config_.resize_advance) {
        sim_.ScheduleNoCancel(until_next_day - config_.resize_advance, [this] {
          ResizeVoqs(config_.enlarged_voq_packets);
          NotifyAll(ports_.front()->mode().tdn, /*imminent=*/true);
        });
      }
    }
  }

  sim_.ScheduleNoCancel(day_length,
                        [this, day_index] { RunNight(day_index); });
}

void RdcnController::RunNight(std::uint32_t day_index) {
  if (DeferForRestart(day_index, /*night=*/true)) return;
  const bool was_circuit = (day_index == config_.schedule.circuit_day);
  if (has_trace_) {
    trace_->Emit(sim_.now().picos(), TracePoint::kRdcnNightStart, /*flow=*/0,
                 day_index, was_circuit);
  }
  for (FabricPort* p : ports_) p->SetBlackout(true);
  if (was_circuit) {
    // Circuit teardown: the hosts' next packets must be modeled on TDN 0.
    NotifyAll(config_.packet_mode.tdn);
    if (config_.dynamic_voq) ResizeVoqs(normal_voq_packets_);
  }
  const std::uint32_t next = (day_index + 1) % config_.schedule.num_days;
  const SimTime night_length =
      perturb_ ? perturb_->PerturbNight(config_.schedule.night_length)
               : config_.schedule.night_length;
  sim_.ScheduleNoCancel(night_length, [this, next] { RunDay(next); });
}

void RdcnController::NotifyAll(TdnId tdn, bool imminent) {
  if (!imminent) last_notified_tdn_ = tdn;
  const std::uint64_t seq = ++notify_seq_;
  for (ToRSwitch* tor : tors_) tor->NotifyHosts(tdn, imminent, kAllRacks, seq);
}

void RdcnController::ResizeVoqs(std::uint32_t packets) {
  // Shrinking back to the normal capacity at circuit teardown while the
  // enlarged VOQ is still deep performs a drain-then-shrink (§5.2): the
  // queue stops admitting but retains the excess until it drains at packet
  // speed; QueueDisc::Stats::shrink_deferred counts the retained packets.
  for (FabricPort* p : ports_) p->voq().set_capacity(packets);
}

}  // namespace tdtcp
