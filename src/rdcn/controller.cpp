#include "rdcn/controller.hpp"

#include <cassert>
#include <utility>

namespace tdtcp {

RdcnController::RdcnController(Simulator& sim, Config config,
                               std::vector<FabricPort*> ports,
                               std::vector<ToRSwitch*> tors)
    : sim_(sim), config_(config), schedule_(config.schedule),
      ports_(std::move(ports)), tors_(std::move(tors)) {
  assert(!ports_.empty());
  if (!ports_.empty()) normal_voq_packets_ = ports_.front()->voq().capacity();
}

void RdcnController::Start() {
  start_time_ = sim_.now();
  RunDay(0);
}

void RdcnController::RunDay(std::uint32_t day_index) {
  const bool circuit = (day_index == config_.schedule.circuit_day);
  const NetworkMode& mode = circuit ? config_.circuit_mode : config_.packet_mode;

  ++reconfigurations_;
  if (has_trace_) {
    trace_->Emit(sim_.now().picos(), TracePoint::kRdcnDayStart, /*flow=*/0,
                 mode.tdn, day_index, circuit);
  }
  for (FabricPort* p : ports_) {
    p->SetMode(mode);
    p->SetBlackout(false);
  }
  // ToRs proactively notify hosts when the path actually changes. Identical
  // consecutive packet days produce no notification (the TDN is unchanged),
  // and circuit teardown is announced at night start by RunNight.
  if (mode.tdn != last_notified_tdn_) NotifyAll(mode.tdn);

  // reTCPdyn: ahead of the next circuit day, enlarge VOQs and warn senders.
  if (config_.dynamic_voq) {
    const std::uint32_t days = config_.schedule.num_days;
    const std::uint32_t next = (day_index + 1) % days;
    if (next == config_.schedule.circuit_day) {
      const SimTime until_next_day = config_.schedule.day_length +
                                     config_.schedule.night_length;
      if (until_next_day > config_.resize_advance) {
        sim_.ScheduleNoCancel(until_next_day - config_.resize_advance, [this] {
          ResizeVoqs(config_.enlarged_voq_packets);
          NotifyAll(ports_.front()->mode().tdn, /*imminent=*/true);
        });
      }
    }
  }

  sim_.ScheduleNoCancel(config_.schedule.day_length,
                        [this, day_index] { RunNight(day_index); });
}

void RdcnController::RunNight(std::uint32_t day_index) {
  const bool was_circuit = (day_index == config_.schedule.circuit_day);
  if (has_trace_) {
    trace_->Emit(sim_.now().picos(), TracePoint::kRdcnNightStart, /*flow=*/0,
                 day_index, was_circuit);
  }
  for (FabricPort* p : ports_) p->SetBlackout(true);
  if (was_circuit) {
    // Circuit teardown: the hosts' next packets must be modeled on TDN 0.
    NotifyAll(config_.packet_mode.tdn);
    if (config_.dynamic_voq) ResizeVoqs(normal_voq_packets_);
  }
  const std::uint32_t next = (day_index + 1) % config_.schedule.num_days;
  sim_.ScheduleNoCancel(config_.schedule.night_length, [this, next] { RunDay(next); });
}

void RdcnController::NotifyAll(TdnId tdn, bool imminent) {
  if (!imminent) last_notified_tdn_ = tdn;
  const std::uint64_t seq = ++notify_seq_;
  for (ToRSwitch* tor : tors_) tor->NotifyHosts(tdn, imminent, kAllRacks, seq);
}

void RdcnController::ResizeVoqs(std::uint32_t packets) {
  // Shrinking back to the normal capacity at circuit teardown while the
  // enlarged VOQ is still deep performs a drain-then-shrink (§5.2): the
  // queue stops admitting but retains the excess until it drains at packet
  // speed; QueueDisc::Stats::shrink_deferred counts the retained packets.
  for (FabricPort* p : ports_) p->voq().set_capacity(packets);
}

}  // namespace tdtcp
