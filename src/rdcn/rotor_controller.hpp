// Multi-rack demand-oblivious rotation (RotorNet-style, §6): each day the
// OCS realizes one perfect matching over the racks; cycling through all
// N-1 matchings provides full-mesh connectivity once per week.
//
// This extends the paper's two-rack evaluation fabric: ToRs issue
// per-destination TDN notifications (the ICMP additionally scopes the
// change to one remote rack), so a host's flows to different racks keep
// independent, correctly-sequenced TDN views.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "rdcn/schedule.hpp"
#include "sim/simulator.hpp"

namespace tdtcp {

class RotorController {
 public:
  struct Config {
    SimTime day_length = SimTime::Micros(180);
    SimTime night_length = SimTime::Micros(20);
    NetworkMode packet_mode;
    NetworkMode circuit_mode;
  };

  // Drives every fabric port of `topo` (requires an even rack count >= 2).
  RotorController(Simulator& sim, Config config, Topology* topo);

  void Start();

  std::uint32_t num_matchings() const {
    return static_cast<std::uint32_t>(matchings_.size());
  }
  SimTime week_length() const {
    return (config_.day_length + config_.night_length) *
           static_cast<std::int64_t>(matchings_.size());
  }

  // The rack matched with `rack` on matching `day` (round-robin tournament).
  RackId PartnerOf(std::uint32_t day, RackId rack) const {
    return matchings_[day][rack];
  }

 private:
  void BuildMatchings();
  void RunDay(std::uint32_t day);
  void RunNight(std::uint32_t day);

  Simulator& sim_;
  Config config_;
  Topology* topo_;
  // matchings_[day][rack] = partner rack.
  std::vector<std::vector<RackId>> matchings_;
  // Per-peer-scope sequencing happens at the hosts; one shared generation
  // counter is enough for monotonicity within each scope.
  std::uint64_t notify_seq_ = 0;
};

}  // namespace tdtcp
