// Multi-rack demand-oblivious rotation (RotorNet-style, §6): each day the
// OCS realizes one perfect matching over the racks; cycling through all
// N-1 matchings provides full-mesh connectivity once per week.
//
// This extends the paper's two-rack evaluation fabric: ToRs issue
// per-destination TDN notifications (the ICMP additionally scopes the
// change to one remote rack), so a host's flows to different racks keep
// independent, correctly-sequenced TDN views. A configured
// SchedulePerturbation additionally skews/jitters the rotation, reshuffles
// the matchings mid-flow, and freezes the rotor across restart windows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "rdcn/perturbation.hpp"
#include "rdcn/schedule.hpp"
#include "sim/simulator.hpp"

namespace tdtcp {

class RotorController {
 public:
  struct Config {
    SimTime day_length = SimTime::Micros(180);
    SimTime night_length = SimTime::Micros(20);
    NetworkMode packet_mode;
    NetworkMode circuit_mode;

    // Adversarial-schedule perturbations (empty = nominal rotation) and the
    // experiment seed their dedicated Random stream derives from.
    PerturbationConfig perturb;
    std::uint64_t seed = 1;
  };

  // Drives every fabric port of `topo` (requires an even rack count >= 2).
  RotorController(Simulator& sim, Config config, Topology* topo);

  void Start();

  std::uint32_t num_matchings() const {
    return static_cast<std::uint32_t>(matchings_.size());
  }
  SimTime week_length() const {
    return (config_.day_length + config_.night_length) *
           static_cast<std::int64_t>(matchings_.size());
  }

  // The rack matched with `rack` on matching `day` (round-robin tournament).
  RackId PartnerOf(std::uint32_t day, RackId rack) const {
    return matchings_[day][rack];
  }

  // Perturbation accounting (zeros when no perturbation is configured).
  std::uint64_t schedule_changes_applied() const {
    return perturb_ ? perturb_->stats().changes_applied : 0;
  }
  std::uint64_t restart_holds() const { return restart_holds_; }
  std::uint64_t reshuffles() const { return reshuffles_; }

  // Management-plane hook for TDN-count changes (ScheduleChange::live_tdns);
  // see RdcnController::SetReconfigHook.
  using ReconfigFn = std::function<void(std::uint32_t live_tdns)>;
  void SetReconfigHook(ReconfigFn fn) { reconfig_ = std::move(fn); }

 private:
  void BuildMatchings();
  void ReshuffleMatchings();
  void ApplyChange(const ScheduleChange& change);
  bool DeferForRestart(std::uint32_t day, bool night);
  void RunDay(std::uint32_t day);
  void RunNight(std::uint32_t day);

  Simulator& sim_;
  Config config_;
  Topology* topo_;
  // matchings_[day][rack] = partner rack.
  std::vector<std::vector<RackId>> matchings_;
  std::unique_ptr<SchedulePerturbation> perturb_;
  ReconfigFn reconfig_;
  // Perturbation times (ScheduleChange::at, RestartWindow::at) are relative
  // to this, like the pair controller's schedule queries.
  SimTime start_time_;
  std::uint64_t restart_holds_ = 0;
  std::uint64_t reshuffles_ = 0;
  // Per-peer-scope sequencing happens at the hosts; one shared generation
  // counter is enough for monotonicity within each scope.
  std::uint64_t notify_seq_ = 0;
};

}  // namespace tdtcp
