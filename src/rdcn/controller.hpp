// Drives the fabric through the RDCN schedule: reconfigures fabric ports at
// day/night boundaries, blacks the fabric out during reconfiguration, emits
// ToR-generated TDN-change notifications (§3.2), and implements reTCPdyn's
// switch cooperation (VOQ enlargement + advance ramp notice, §5.2). When a
// SchedulePerturbation is configured it additionally runs the adversarial
// schedule: skewed/jittered segment lengths, mid-flow schedule changes
// applied at day boundaries, and restart windows that freeze the fabric.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/fabric_port.hpp"
#include "net/tor_switch.hpp"
#include "rdcn/perturbation.hpp"
#include "rdcn/schedule.hpp"
#include "sim/simulator.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {

class RdcnController {
 public:
  struct Config {
    ScheduleConfig schedule;
    NetworkMode packet_mode;
    NetworkMode circuit_mode;

    // reTCPdyn switch support: enlarge the VOQ `resize_advance` before each
    // circuit day and send a circuit-imminent notification so senders
    // pre-fill the queue; restore at circuit teardown.
    bool dynamic_voq = false;
    SimTime resize_advance = SimTime::Micros(150);
    std::uint32_t enlarged_voq_packets = 50;

    // Adversarial-schedule perturbations (empty = the nominal schedule) and
    // the experiment seed their dedicated Random stream derives from.
    PerturbationConfig perturb;
    std::uint64_t seed = 1;
  };

  // `ports` are the fabric ports of the observed rack pair (both
  // directions); `tors` the switches whose hosts should be notified.
  // Throws std::invalid_argument when `ports` is empty (was an NDEBUG-silent
  // assert) or the perturbation config is malformed.
  RdcnController(Simulator& sim, Config config, std::vector<FabricPort*> ports,
                 std::vector<ToRSwitch*> tors);

  // Begins executing the schedule at the current simulation time (which
  // becomes the start of week 0, day 0).
  void Start();

  const Schedule& schedule() const { return schedule_; }
  SimTime start_time() const { return start_time_; }

  // Schedule queries relative to the controller's start time. Under an
  // active perturbation these describe the *nominal* schedule; the perturbed
  // boundary times live only in the event stream (and the tracepoints).
  TdnId ActiveTdn(SimTime t) const { return schedule_.TdnAt(Rel(t)); }
  bool BlackoutAt(SimTime t) const { return schedule_.BlackoutAt(Rel(t)); }

  std::uint32_t reconfigurations() const { return reconfigurations_; }

  // Perturbation accounting (zeros when no perturbation is configured).
  std::uint64_t schedule_changes_applied() const {
    return perturb_ ? perturb_->stats().changes_applied : 0;
  }
  std::uint64_t restart_holds() const { return restart_holds_; }

  // Management-plane hook for TDN-count changes: called synchronously at the
  // day boundary that applies a ScheduleChange with live_tdns set, with the
  // new live count. RunExperiment wires this to every host's
  // DistributeTdnReconfig (retirement rides the management plane, not the
  // lossy per-day ICMP channel — see DESIGN.md §13).
  using ReconfigFn = std::function<void(std::uint32_t live_tdns)>;
  void SetReconfigHook(ReconfigFn fn) { reconfig_ = std::move(fn); }

  // Tracepoint sink: day/night boundaries emit kRdcnDayStart (a0=tdn,
  // a1=day index, a2=circuit day) and kRdcnNightStart (a0=day index,
  // a1=was circuit day), flow 0. Perturbations add kSchedChange and
  // kSchedRestartHold.
  void SetTraceRing(TraceRing* ring) {
    trace_ = ring;
    has_trace_ = ring != nullptr;
  }

 private:
  SimTime Rel(SimTime t) const { return t - start_time_; }

  void RunDay(std::uint32_t day_index);
  void RunNight(std::uint32_t day_index);
  void ApplyChange(const ScheduleChange& change);
  // True when the boundary was deferred into a restart window (the caller
  // returns immediately; the boundary re-fires at the window's end).
  bool DeferForRestart(std::uint32_t day_index, bool night);
  void NotifyAll(TdnId tdn, bool imminent = false);
  void ResizeVoqs(std::uint32_t packets);

  Simulator& sim_;
  Config config_;
  Schedule schedule_;
  std::vector<FabricPort*> ports_;
  std::vector<ToRSwitch*> tors_;
  std::unique_ptr<SchedulePerturbation> perturb_;
  ReconfigFn reconfig_;
  SimTime start_time_;
  std::uint32_t normal_voq_packets_ = 16;
  std::uint32_t reconfigurations_ = 0;
  std::uint64_t restart_holds_ = 0;
  TdnId last_notified_tdn_ = 0;
  // Notification generation number: stamped into every ICMP so hosts can
  // discard duplicated/reordered/stale deliveries (Packet::notify_seq).
  std::uint64_t notify_seq_ = 0;
  TraceRing* trace_ = nullptr;
  bool has_trace_ = false;
};

}  // namespace tdtcp
