// Drives the fabric through the RDCN schedule: reconfigures fabric ports at
// day/night boundaries, blacks the fabric out during reconfiguration, emits
// ToR-generated TDN-change notifications (§3.2), and implements reTCPdyn's
// switch cooperation (VOQ enlargement + advance ramp notice, §5.2).
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric_port.hpp"
#include "net/tor_switch.hpp"
#include "rdcn/schedule.hpp"
#include "sim/simulator.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {

class RdcnController {
 public:
  struct Config {
    ScheduleConfig schedule;
    NetworkMode packet_mode;
    NetworkMode circuit_mode;

    // reTCPdyn switch support: enlarge the VOQ `resize_advance` before each
    // circuit day and send a circuit-imminent notification so senders
    // pre-fill the queue; restore at circuit teardown.
    bool dynamic_voq = false;
    SimTime resize_advance = SimTime::Micros(150);
    std::uint32_t enlarged_voq_packets = 50;
  };

  // `ports` are the fabric ports of the observed rack pair (both
  // directions); `tors` the switches whose hosts should be notified.
  RdcnController(Simulator& sim, Config config, std::vector<FabricPort*> ports,
                 std::vector<ToRSwitch*> tors);

  // Begins executing the schedule at the current simulation time (which
  // becomes the start of week 0, day 0).
  void Start();

  const Schedule& schedule() const { return schedule_; }
  SimTime start_time() const { return start_time_; }

  // Schedule queries relative to the controller's start time.
  TdnId ActiveTdn(SimTime t) const { return schedule_.TdnAt(Rel(t)); }
  bool BlackoutAt(SimTime t) const { return schedule_.BlackoutAt(Rel(t)); }

  std::uint32_t reconfigurations() const { return reconfigurations_; }

  // Tracepoint sink: day/night boundaries emit kRdcnDayStart (a0=tdn,
  // a1=day index, a2=circuit day) and kRdcnNightStart (a0=day index,
  // a1=was circuit day), flow 0.
  void SetTraceRing(TraceRing* ring) {
    trace_ = ring;
    has_trace_ = ring != nullptr;
  }

 private:
  SimTime Rel(SimTime t) const { return t - start_time_; }

  void RunDay(std::uint32_t day_index);
  void RunNight(std::uint32_t day_index);
  void NotifyAll(TdnId tdn, bool imminent = false);
  void ResizeVoqs(std::uint32_t packets);

  Simulator& sim_;
  Config config_;
  Schedule schedule_;
  std::vector<FabricPort*> ports_;
  std::vector<ToRSwitch*> tors_;
  SimTime start_time_;
  std::uint32_t normal_voq_packets_ = 16;
  std::uint32_t reconfigurations_ = 0;
  TdnId last_notified_tdn_ = 0;
  // Notification generation number: stamped into every ICMP so hosts can
  // discard duplicated/reordered/stale deliveries (Packet::notify_seq).
  std::uint64_t notify_seq_ = 0;
  TraceRing* trace_ = nullptr;
  bool has_trace_ = false;
};

}  // namespace tdtcp
