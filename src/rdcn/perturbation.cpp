#include "rdcn/perturbation.hpp"

#include <stdexcept>
#include <string>

namespace tdtcp {

SchedulePerturbation::SchedulePerturbation(PerturbationConfig config,
                                           std::uint64_t seed)
    : config_(std::move(config)), rng_(seed ^ config_.seed_salt) {
  if (config_.day_skew < 0.0 || config_.day_skew >= 1.0) {
    throw std::invalid_argument(
        "SchedulePerturbation: day_skew must be in [0, 1) (got " +
        std::to_string(config_.day_skew) + ")");
  }
  if (config_.jitter < SimTime::Zero()) {
    throw std::invalid_argument(
        "SchedulePerturbation: jitter must be non-negative (got " +
        std::to_string(config_.jitter.picos()) + " ps)");
  }
  for (const ScheduleChange& ch : config_.changes) {
    if (ch.at < SimTime::Zero() || ch.day_length < SimTime::Zero() ||
        ch.night_length < SimTime::Zero()) {
      throw std::invalid_argument(
          "SchedulePerturbation: ScheduleChange times must be non-negative");
    }
    if (ch.live_tdns == 0) {
      throw std::invalid_argument(
          "SchedulePerturbation: live_tdns must be >= 1 (a schedule with "
          "zero TDNs has no network to notify)");
    }
  }
  for (const RestartWindow& w : config_.restarts) {
    if (w.at < SimTime::Zero() || w.duration < SimTime::Zero()) {
      throw std::invalid_argument(
          "SchedulePerturbation: RestartWindow times must be non-negative");
    }
  }
}

SimTime SchedulePerturbation::Jitter(SimTime length, SimTime base) {
  if (config_.jitter.IsZero()) return length;
  ++stats_.jittered_boundaries;
  const SimTime draw =
      rng_.UniformTime(SimTime::Zero(), config_.jitter * 2) - config_.jitter;
  SimTime jittered = length + draw;
  // A segment never collapses below a quarter of its nominal length: the
  // fabric still makes forward progress through the week under any jitter.
  const SimTime floor = base / 4;
  if (jittered < floor) jittered = floor;
  return jittered;
}

SimTime SchedulePerturbation::PerturbDay(std::uint32_t day_index,
                                         SimTime base) {
  SimTime length = base;
  if (config_.day_skew > 0.0) {
    ++stats_.skewed_days;
    const double factor = (day_index % 2 == 0) ? 1.0 + config_.day_skew
                                               : 1.0 - config_.day_skew;
    length = SimTime::Picos(static_cast<std::int64_t>(
        static_cast<double>(base.picos()) * factor));
  }
  return Jitter(length, base);
}

SimTime SchedulePerturbation::PerturbNight(SimTime base) {
  if (base.IsZero()) return base;  // no blackout to jitter
  return Jitter(base, base);
}

const ScheduleChange* SchedulePerturbation::PendingChange(SimTime now) const {
  if (next_change_ >= config_.changes.size()) return nullptr;
  const ScheduleChange& ch = config_.changes[next_change_];
  return ch.at <= now ? &ch : nullptr;
}

void SchedulePerturbation::MarkApplied() {
  if (next_change_ < config_.changes.size()) {
    ++next_change_;
    ++stats_.changes_applied;
  }
}

SimTime SchedulePerturbation::RestartHold(SimTime now) {
  for (const RestartWindow& w : config_.restarts) {
    if (now >= w.at && now < w.at + w.duration) {
      ++stats_.restart_holds;
      return w.at + w.duration - now;
    }
  }
  return SimTime::Zero();
}

}  // namespace tdtcp
