// The demand-oblivious RDCN schedule (§2.1): a week of fixed-length days
// separated by reconfiguration nights. During one designated day per week
// the observed rack pair is connected by the optical circuit (TDN 1); all
// other days it communicates over the packet network (TDN 0). Nights black
// out the fabric while the OCS reconfigures.
//
// Defaults reproduce §5.1: 180 us days, 20 us nights, 7 configurations per
// week (a 6:1 packet:optical ratio, i.e., an 8-rack RotorNet-style RDCN).
#pragma once

#include <cstdint>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tdtcp {

struct ScheduleConfig {
  // Explicit "the circuit never visits this pair" encoding: a schedule whose
  // week is all packet days, used as the static-network control in fairness
  // and degeneration experiments. Any other value >= num_days is rejected.
  static constexpr std::uint32_t kNoCircuitDay = 0xffffffffu;

  SimTime day_length = SimTime::Micros(180);
  SimTime night_length = SimTime::Micros(20);
  std::uint32_t num_days = 7;     // configurations per week
  std::uint32_t circuit_day = 6;  // which day connects our rack pair
};

class Schedule {
 public:
  // Throws std::invalid_argument on a config that cannot describe a week:
  // nonpositive day/night lengths, zero days, or a circuit day outside
  // [0, num_days) other than ScheduleConfig::kNoCircuitDay. Throwing
  // (instead of the old NDEBUG-silent assert) keeps release builds from
  // silently dividing by a zero-length slot.
  explicit Schedule(ScheduleConfig config);

  const ScheduleConfig& config() const { return config_; }

  SimTime slot_length() const { return config_.day_length + config_.night_length; }
  SimTime week_length() const {
    return slot_length() * static_cast<std::int64_t>(config_.num_days);
  }

  struct Slot {
    std::uint32_t day_index = 0;  // 0 .. num_days-1
    bool night = false;           // inside the blackout following the day
    bool circuit = false;         // day connects our pair optically
    SimTime start;                // start of the day (or night) segment
    SimTime end;                  // end of the segment
  };

  // The schedule segment containing time `t` (weeks repeat forever).
  Slot SlotAt(SimTime t) const;

  // TDN a sender should model at time `t`: 1 only during the circuit day
  // itself; nights and packet days are TDN 0.
  TdnId TdnAt(SimTime t) const;

  bool BlackoutAt(SimTime t) const { return SlotAt(t).night; }

  // Analytic capacity helpers used for the "optimal" and "packet only"
  // reference lines in the sequence graphs (§2.2, §5.2).
  //
  // Bits an ideal flow could move during [0, t] if it perfectly used
  // whichever network is active (and nothing during nights).
  double OptimalBits(SimTime t, std::uint64_t packet_bps,
                     std::uint64_t circuit_bps) const;

  // Bits a flow pinned to the packet network moves in [0, t]. Such a flow
  // never rides the circuit and never experiences blackout (Fig. 9's note).
  double PacketOnlyBits(SimTime t, std::uint64_t packet_bps) const {
    return static_cast<double>(packet_bps) * t.seconds();
  }

 private:
  ScheduleConfig config_;
};

}  // namespace tdtcp
