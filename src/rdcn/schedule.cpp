#include "rdcn/schedule.hpp"

#include <cassert>

namespace tdtcp {

Schedule::Slot Schedule::SlotAt(SimTime t) const {
  assert(t >= SimTime::Zero());
  const SimTime week = week_length();
  const SimTime week_start = t - (t % week);
  const SimTime in_week = t % week;
  const std::int64_t day_index = in_week / slot_length();
  const SimTime slot_start = week_start + slot_length() * day_index;
  const SimTime day_end = slot_start + config_.day_length;

  Slot slot;
  slot.day_index = static_cast<std::uint32_t>(day_index);
  slot.circuit = (slot.day_index == config_.circuit_day);
  if (t < day_end) {
    slot.night = false;
    slot.start = slot_start;
    slot.end = day_end;
  } else {
    slot.night = true;
    slot.start = day_end;
    slot.end = slot_start + slot_length();
  }
  return slot;
}

TdnId Schedule::TdnAt(SimTime t) const {
  const Slot s = SlotAt(t);
  return (s.circuit && !s.night) ? TdnId{1} : TdnId{0};
}

double Schedule::OptimalBits(SimTime t, std::uint64_t packet_bps,
                             std::uint64_t circuit_bps) const {
  const SimTime week = week_length();
  const std::int64_t full_weeks = t / week;
  const double day_s = config_.day_length.seconds();
  const double per_week_bits =
      day_s * (static_cast<double>(packet_bps) * (config_.num_days - 1) +
               static_cast<double>(circuit_bps));

  double bits = per_week_bits * static_cast<double>(full_weeks);

  // Partial final week: walk its slots.
  SimTime cursor = week * full_weeks;
  while (cursor < t) {
    const Slot s = SlotAt(cursor);
    const SimTime seg_end = s.end < t ? s.end : t;
    if (!s.night) {
      const double rate = s.circuit ? static_cast<double>(circuit_bps)
                                    : static_cast<double>(packet_bps);
      bits += rate * (seg_end - cursor).seconds();
    }
    cursor = seg_end;
  }
  return bits;
}

}  // namespace tdtcp
