#include "rdcn/schedule.hpp"

#include <stdexcept>
#include <string>

namespace tdtcp {

Schedule::Schedule(ScheduleConfig config) : config_(config) {
  // Throw, don't assert: the default build defines NDEBUG, and a degenerate
  // schedule would otherwise divide by a zero-length slot (SlotAt) or index
  // a day that never occurs (circuit_day).
  if (config_.day_length <= SimTime::Zero()) {
    throw std::invalid_argument(
        "Schedule: day_length must be positive (got " +
        std::to_string(config_.day_length.picos()) + " ps)");
  }
  if (config_.night_length < SimTime::Zero()) {
    throw std::invalid_argument(
        "Schedule: night_length must be non-negative (got " +
        std::to_string(config_.night_length.picos()) + " ps)");
  }
  if (config_.num_days < 1) {
    throw std::invalid_argument("Schedule: num_days must be >= 1 (got 0)");
  }
  if (config_.circuit_day >= config_.num_days &&
      config_.circuit_day != ScheduleConfig::kNoCircuitDay) {
    throw std::invalid_argument(
        "Schedule: circuit_day " + std::to_string(config_.circuit_day) +
        " is outside the week (num_days=" + std::to_string(config_.num_days) +
        "); use ScheduleConfig::kNoCircuitDay for an all-packet week");
  }
}

Schedule::Slot Schedule::SlotAt(SimTime t) const {
  if (t < SimTime::Zero()) {
    // Was an NDEBUG-silent assert: a negative time would make the modular
    // week arithmetic below produce a slot from the wrong week boundary.
    throw std::invalid_argument(
        "Schedule::SlotAt: negative time (" + std::to_string(t.picos()) +
        " ps); schedule queries are relative to the controller start");
  }
  const SimTime week = week_length();
  const SimTime week_start = t - (t % week);
  const SimTime in_week = t % week;
  const std::int64_t day_index = in_week / slot_length();
  const SimTime slot_start = week_start + slot_length() * day_index;
  const SimTime day_end = slot_start + config_.day_length;

  Slot slot;
  slot.day_index = static_cast<std::uint32_t>(day_index);
  slot.circuit = (slot.day_index == config_.circuit_day);
  if (t < day_end) {
    slot.night = false;
    slot.start = slot_start;
    slot.end = day_end;
  } else {
    slot.night = true;
    slot.start = day_end;
    slot.end = slot_start + slot_length();
  }
  return slot;
}

TdnId Schedule::TdnAt(SimTime t) const {
  const Slot s = SlotAt(t);
  return (s.circuit && !s.night) ? TdnId{1} : TdnId{0};
}

double Schedule::OptimalBits(SimTime t, std::uint64_t packet_bps,
                             std::uint64_t circuit_bps) const {
  const SimTime week = week_length();
  const std::int64_t full_weeks = t / week;
  const double day_s = config_.day_length.seconds();
  const bool has_circuit = config_.circuit_day < config_.num_days;
  const double per_week_bits =
      has_circuit
          ? day_s * (static_cast<double>(packet_bps) * (config_.num_days - 1) +
                     static_cast<double>(circuit_bps))
          : day_s * static_cast<double>(packet_bps) * config_.num_days;

  double bits = per_week_bits * static_cast<double>(full_weeks);

  // Partial final week: walk its slots.
  SimTime cursor = week * full_weeks;
  while (cursor < t) {
    const Slot s = SlotAt(cursor);
    const SimTime seg_end = s.end < t ? s.end : t;
    if (!s.night) {
      const double rate = s.circuit ? static_cast<double>(circuit_bps)
                                    : static_cast<double>(packet_bps);
      bits += rate * (seg_end - cursor).seconds();
    }
    cursor = seg_end;
  }
  return bits;
}

}  // namespace tdtcp
