// Builds the paper's evaluation topology (Fig. 6): racks of hosts behind
// ToR switches connected by a reconfigurable fabric.
//
// Host ids are rack * hosts_per_rack + index. All benches use two racks, as
// in the paper ("we can emulate any scale of RDCN using this topology by
// pinning flows between this pair of racks"), but the builder supports any
// rack count with a full mesh of fabric ports.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/fabric_port.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "net/tor_switch.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace tdtcp {

struct TopologyConfig {
  std::uint32_t num_racks = 2;
  std::uint32_t hosts_per_rack = 16;

  // The rack "machine NIC" (Fig. 6): every emulated host in a rack shares
  // one data-plane NIC in each direction, so the rack's aggregate arrival
  // rate at the ToR can never exceed this — exactly the property that keeps
  // the synchronized post-notification burst from instantly overflowing the
  // VOQ at circuit start in the real testbed.
  std::uint64_t host_link_rate_bps = 100'000'000'000;
  SimTime host_link_delay = SimTime::Nanos(500);

  // The two TDN personalities of the fabric. Defaults reproduce §5.1:
  // packet network 10 Gbps / ~100 us RTT, optical 100 Gbps / ~40 us RTT.
  NetworkMode packet_mode{/*tdn=*/0, /*rate=*/10'000'000'000,
                          /*prop=*/SimTime::Micros(48), /*circuit=*/false};
  NetworkMode circuit_mode{/*tdn=*/1, /*rate=*/100'000'000'000,
                           /*prop=*/SimTime::Micros(18), /*circuit=*/true};

  // The single queue-discipline default for every fabric-port VOQ
  // (QueueDisc::Config's own defaults are the paper's 16-packet drop-tail
  // VOQ with marking disabled; DCTCP configs lower the threshold and
  // ExperimentConfig::WithQdisc swaps the discipline). Per-port exceptions
  // go in `voq_overrides`.
  QueueDisc::Config voq;
  struct VoqOverride {
    RackId src = 0;
    RackId dst = 0;
    QueueDisc::Config voq;
  };
  std::vector<VoqOverride> voq_overrides;

  // The rack NIC queues (deep drop-tail by default; a NIC is not a VOQ).
  QueueDisc::Config host_queue = HostQueueDefault();
  static QueueDisc::Config HostQueueDefault() {
    QueueDisc::Config q;
    q.capacity_packets = 1024;
    return q;
  }

  SimTime fabric_reorder_jitter = SimTime::Zero();

  NotifyGenConfig notify;
  NotifyDistribution notify_dist;
};

class Topology {
 public:
  Topology(Simulator& sim, Random& rng, const TopologyConfig& config);

  Host* host(RackId rack, std::uint32_t index) {
    return hosts_[rack * config_.hosts_per_rack + index].get();
  }
  Host* host_by_id(NodeId id) { return hosts_[id].get(); }
  ToRSwitch* tor(RackId rack) { return tors_[rack].get(); }

  // The fabric port carrying traffic from `src` rack toward `dst` rack.
  FabricPort* port(RackId src, RackId dst) { return tors_[src]->port(dst); }

  // The rack machine NICs (shared by every host in the rack): hosts -> ToR
  // and ToR -> hosts. Fault plans target these for NIC loss and link-down
  // windows.
  Link* rack_uplink(RackId rack) { return uplinks_[rack]; }
  Link* rack_downlink(RackId rack) { return downlinks_[rack]; }

  NodeId host_id(RackId rack, std::uint32_t index) const {
    return rack * config_.hosts_per_rack + index;
  }
  RackId rack_of(NodeId host) const { return host / config_.hosts_per_rack; }

  const TopologyConfig& config() const { return config_; }

 private:
  // Delivers rack-downlink packets to the destination host.
  class RackDemux : public PacketSink {
   public:
    explicit RackDemux(Topology* topo) : topo_(topo) {}
    void HandlePacket(Packet&& p) override {
      topo_->host_by_id(p.dst)->HandlePacket(std::move(p));
    }
   private:
    Topology* topo_;
  };

  TopologyConfig config_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<ToRSwitch>> tors_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Link*> uplinks_;    // per rack, owned by links_
  std::vector<Link*> downlinks_;  // per rack, owned by links_
  std::vector<std::unique_ptr<RackDemux>> demuxes_;
};

}  // namespace tdtcp
