// The reconfigurable ToR-to-ToR fabric port: a single VOQ whose service
// rate, propagation delay, and availability follow the RDCN schedule.
//
// This mirrors Etalon's model: one virtual output queue per destination
// rack, drained into whichever network (electrical packet or optical
// circuit) the current configuration provides, and paused entirely during
// reconfiguration nights. Leftover packets from a packet day drain at
// circuit speed once the circuit comes up (A.3's "quickly drained").
//
// MPTCP experiments pin subflows to one network (§2.2). Pinned packets whose
// network is not currently active wait in a side stash and join the VOQ when
// their network returns — this is what strands subflow traffic and produces
// MPTCP's flow-control stalls.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "net/node.hpp"
#include "net/queue_disc.hpp"
#include "sim/simulator.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace tdtcp {

// One network personality of the fabric (a TDN as seen by this rack pair).
struct NetworkMode {
  TdnId tdn = 0;
  std::uint64_t rate_bps = 10'000'000'000;
  SimTime propagation = SimTime::Micros(48);
  bool circuit = false;  // true when this mode is an optical circuit
};

class FabricPort {
 public:
  struct Config {
    QueueDisc::Config voq;
    NetworkMode initial_mode;
    // Optional uniform extra propagation jitter (intra-TDN reordering).
    SimTime reorder_jitter = SimTime::Zero();
    std::uint32_t pinned_stash_capacity = 256;
    std::string name;
  };

  FabricPort(Simulator& sim, Config config, PacketSink* remote, Random* rng = nullptr);

  // Schedule control (driven by the RDCN controller).
  void SetMode(const NetworkMode& mode);
  void SetBlackout(bool blackout);

  const NetworkMode& mode() const { return mode_; }
  bool blackout() const { return blackout_; }

  void Enqueue(Packet&& p);

  QueueDisc& voq() { return voq_; }
  const QueueDisc& voq() const { return voq_; }

  // Total packets stashed because their pinned network is inactive.
  std::uint32_t pinned_waiting() const;
  std::uint64_t pinned_dropped() const { return pinned_dropped_; }

  // Fault-injection hook (src/fault): consulted once per packet after it
  // finishes serializing, before propagation. Returning true drops it.
  using FaultFilter = std::function<bool(const Packet&)>;
  void SetFaultFilter(FaultFilter filter) {
    fault_filter_ = std::move(filter);
    has_fault_filter_ = static_cast<bool>(fault_filter_);
  }
  std::uint64_t fault_dropped() const { return fault_dropped_; }

  const std::string& name() const { return config_.name; }

 private:
  // Active path index: 0 = packet network, 1 = circuit.
  int active_path() const { return mode_.circuit ? 1 : 0; }

  void TopUpFromStash();
  void MaybeTransmit();

  Simulator& sim_;
  Config config_;
  PacketSink* remote_;
  Random* rng_;
  QueueDisc voq_;
  NetworkMode mode_;
  bool blackout_ = false;
  bool busy_ = false;
  std::deque<Packet> stash_[2];
  // Scratch for SetMode's VOQ repack; a member so mode flips (4x per RDCN
  // week per port) reuse its capacity instead of allocating a fresh deque.
  std::vector<Packet> keep_scratch_;
  std::vector<Packet> drain_scratch_;
  FaultFilter fault_filter_;
  bool has_fault_filter_ = false;
  std::uint64_t pinned_dropped_ = 0;
  std::uint64_t fault_dropped_ = 0;
};

}  // namespace tdtcp
