#include "net/queue.hpp"

#include <algorithm>
#include <utility>

namespace tdtcp {

bool Queue::Enqueue(Packet&& p) {
  if (q_.size() >= config_.capacity_packets) {
    ++stats_.dropped;
    return false;
  }
  if (q_.size() >= config_.ecn_threshold_packets && p.ecn == Ecn::kEct0) {
    p.ecn = Ecn::kCe;
    ++stats_.ce_marked;
  }
  q_.push_back(std::move(p));
  ++stats_.enqueued;
  stats_.max_occupancy =
      std::max(stats_.max_occupancy, static_cast<std::uint32_t>(q_.size()));
  return true;
}

std::optional<Packet> Queue::Dequeue() {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  return p;
}

}  // namespace tdtcp
