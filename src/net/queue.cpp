#include "net/queue.hpp"

#include <algorithm>
#include <utility>

namespace tdtcp {

bool Queue::Enqueue(Packet&& p) {
  if (q_.size() >= config_.capacity_packets) {
    ++stats_.dropped;
    return false;
  }
  if (q_.size() >= config_.ecn_threshold_packets && p.ecn == Ecn::kEct0) {
    p.ecn = Ecn::kCe;
    ++stats_.ce_marked;
  }
  q_.push_back(std::move(p));
  ++stats_.enqueued;
  stats_.max_occupancy =
      std::max(stats_.max_occupancy, static_cast<std::uint32_t>(q_.size()));
  return true;
}

std::optional<Packet> Queue::Dequeue() {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  if (shrink_watermark_ != 0) {
    // The post-shrink overshoot only ever drains: tighten the watermark with
    // the occupancy and clear it once we are back within capacity.
    if (q_.size() <= config_.capacity_packets) {
      shrink_watermark_ = 0;
    } else {
      shrink_watermark_ =
          std::min(shrink_watermark_, static_cast<std::uint32_t>(q_.size()));
    }
  }
  return p;
}

void Queue::set_capacity(std::uint32_t packets) {
  if (q_.size() > packets) {
    stats_.shrink_deferred += q_.size() - packets;
    shrink_watermark_ = static_cast<std::uint32_t>(q_.size());
  } else {
    shrink_watermark_ = 0;
  }
  config_.capacity_packets = packets;
}

}  // namespace tdtcp
