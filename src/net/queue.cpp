#include "net/queue.hpp"

#include <algorithm>
#include <utility>

namespace tdtcp {

void Queue::Grow() {
  std::vector<Packet> bigger(std::max<std::size_t>(8, ring_.size() * 2));
  for (std::size_t i = 0; i < count_; ++i) {
    bigger[i] = std::move(ring_[(head_ + i) & (ring_.size() - 1)]);
  }
  ring_ = std::move(bigger);
  head_ = 0;
}

bool Queue::Enqueue(Packet&& p) {
  if (count_ >= config_.capacity_packets) {
    ++stats_.dropped;
    return false;
  }
  if (count_ >= config_.ecn_threshold_packets && p.ecn == Ecn::kEct0) {
    p.ecn = Ecn::kCe;
    ++stats_.ce_marked;
  }
  if (count_ == ring_.size()) Grow();
  ring_[(head_ + count_) & (ring_.size() - 1)] = std::move(p);
  ++count_;
  ++stats_.enqueued;
  stats_.max_occupancy =
      std::max(stats_.max_occupancy, static_cast<std::uint32_t>(count_));
  return true;
}

std::optional<Packet> Queue::Dequeue() {
  if (count_ == 0) return std::nullopt;
  std::optional<Packet> p(std::move(ring_[head_]));
  head_ = (head_ + 1) & (ring_.size() - 1);
  --count_;
  if (shrink_watermark_ != 0) {
    // The post-shrink overshoot only ever drains: tighten the watermark with
    // the occupancy and clear it once we are back within capacity.
    if (count_ <= config_.capacity_packets) {
      shrink_watermark_ = 0;
    } else {
      shrink_watermark_ =
          std::min(shrink_watermark_, static_cast<std::uint32_t>(count_));
    }
  }
  return p;
}

void Queue::set_capacity(std::uint32_t packets) {
  if (count_ > packets) {
    stats_.shrink_deferred += count_ - packets;
    shrink_watermark_ = static_cast<std::uint32_t>(count_);
  } else {
    shrink_watermark_ = 0;
  }
  config_.capacity_packets = packets;
}

}  // namespace tdtcp
