// Drop-tail packet queue with DCTCP-style ECN marking.
//
// Models a ToR virtual output queue (VOQ): bounded in packets (the paper
// uses 16 jumbo frames), instantaneous-occupancy CE marking above a
// threshold K, and runtime-resizable capacity (reTCPdyn enlarges the VOQ to
// 50 packets ahead of a circuit day).
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "net/packet.hpp"

namespace tdtcp {

class Queue {
 public:
  struct Config {
    std::uint32_t capacity_packets = 16;
    // CE-mark packets admitted while occupancy >= threshold. The default
    // (max) disables marking; DCTCP configs set a small K.
    std::uint32_t ecn_threshold_packets = std::numeric_limits<std::uint32_t>::max();
  };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t ce_marked = 0;
    std::uint32_t max_occupancy = 0;
    // Packets retained above capacity by a drain-then-shrink resize
    // (reTCPdyn 50 -> 16 at circuit teardown while the VOQ is still deep).
    std::uint64_t shrink_deferred = 0;
  };

  explicit Queue(Config config) : config_(config) {}
  Queue() : Queue(Config{}) {}

  // Returns false (and counts a drop) when full. Applies CE marking to
  // ECN-capable packets admitted above the threshold.
  bool Enqueue(Packet&& p);

  std::optional<Packet> Dequeue();
  const Packet* Peek() const { return count_ == 0 ? nullptr : &ring_[head_]; }

  bool Empty() const { return count_ == 0; }
  std::uint32_t occupancy() const { return static_cast<std::uint32_t>(count_); }
  std::uint32_t capacity() const { return config_.capacity_packets; }

  // Runtime resize (reTCPdyn, paper section 5.2). Shrinking below the current
  // occupancy performs a drain-then-shrink: admissions stop immediately (the
  // queue is over capacity), but the excess packets were legitimately
  // admitted under the enlarged promise and are retained until they drain
  // naturally -- dropping them would manufacture loss at every circuit
  // teardown. The retained excess is counted in Stats::shrink_deferred, and
  // occupancy is bounded by the pre-shrink watermark until it decays (see
  // WithinBound()).
  void set_capacity(std::uint32_t packets);
  void set_ecn_threshold(std::uint32_t packets) { config_.ecn_threshold_packets = packets; }

  // The VOQ occupancy invariant: occupancy <= capacity, except transiently
  // after a drain-then-shrink where the bound is the occupancy at shrink
  // time (monotonically non-increasing until it reaches capacity again).
  bool WithinBound() const {
    return count_ <= std::max(config_.capacity_packets, shrink_watermark_);
  }

  const Stats& stats() const { return stats_; }

 private:
  // Grows the circular buffer (power-of-two sizes). Called only when
  // occupancy reaches a new high-water mark; steady state never allocates.
  void Grow();

  Config config_;
  std::vector<Packet> ring_;  // circular packet storage
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Stats stats_;
  // Non-zero only while draining after a shrink below occupancy.
  std::uint32_t shrink_watermark_ = 0;
};

}  // namespace tdtcp
