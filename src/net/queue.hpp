// Drop-tail packet queue with DCTCP-style ECN marking.
//
// Models a ToR virtual output queue (VOQ): bounded in packets (the paper
// uses 16 jumbo frames), instantaneous-occupancy CE marking above a
// threshold K, and runtime-resizable capacity (reTCPdyn enlarges the VOQ to
// 50 packets ahead of a circuit day).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <optional>

#include "net/packet.hpp"

namespace tdtcp {

class Queue {
 public:
  struct Config {
    std::uint32_t capacity_packets = 16;
    // CE-mark packets admitted while occupancy >= threshold. The default
    // (max) disables marking; DCTCP configs set a small K.
    std::uint32_t ecn_threshold_packets = std::numeric_limits<std::uint32_t>::max();
  };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t ce_marked = 0;
    std::uint32_t max_occupancy = 0;
  };

  explicit Queue(Config config) : config_(config) {}
  Queue() : Queue(Config{}) {}

  // Returns false (and counts a drop) when full. Applies CE marking to
  // ECN-capable packets admitted above the threshold.
  bool Enqueue(Packet&& p);

  std::optional<Packet> Dequeue();
  const Packet* Peek() const { return q_.empty() ? nullptr : &q_.front(); }

  bool Empty() const { return q_.empty(); }
  std::uint32_t occupancy() const { return static_cast<std::uint32_t>(q_.size()); }
  std::uint32_t capacity() const { return config_.capacity_packets; }

  // Runtime resize; shrinking never discards already-queued packets.
  void set_capacity(std::uint32_t packets) { config_.capacity_packets = packets; }
  void set_ecn_threshold(std::uint32_t packets) { config_.ecn_threshold_packets = packets; }

  const Stats& stats() const { return stats_; }

 private:
  Config config_;
  std::deque<Packet> q_;
  Stats stats_;
};

}  // namespace tdtcp
