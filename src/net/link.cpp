#include "net/link.hpp"

#include <cassert>
#include <utility>

namespace tdtcp {

Link::Link(Simulator& sim, Config config, PacketSink* sink, Random* rng)
    : sim_(sim), config_(std::move(config)), sink_(sink), rng_(rng),
      queue_(config_.queue) {
  assert(sink_ != nullptr);
  assert(config_.rate_bps > 0);
}

void Link::Enqueue(Packet&& p) {
  p.enqueue_time = sim_.now();
  if (!queue_.Enqueue(std::move(p))) return;  // dropped
  MaybeTransmit();
}

void Link::set_enabled(bool enabled) {
  if (enabled_ == enabled) return;
  enabled_ = enabled;
  if (enabled_) MaybeTransmit();
}

void Link::MaybeTransmit() {
  if (busy_ || !enabled_ || queue_.Empty()) return;
  // An AQM dequeue may consume the whole backlog as drops and come back
  // empty-handed; there is nothing to transmit then.
  std::optional<Packet> head = queue_.Dequeue(sim_.now());
  if (!head) return;
  // Park the in-flight packet in the simulator's freelist so the event
  // captures one pointer, not a Packet copy.
  Packet* p = sim_.StashPacket(std::move(*head));
  busy_ = true;
  const SimTime tx = TransmissionTime(p->size_bytes, config_.rate_bps);
  sim_.ScheduleNoCancel(tx, [this, p] {
    busy_ = false;
    Deliver(p);
    MaybeTransmit();
  });
}

void Link::Deliver(Packet* p) {
  if (has_fault_filter_ && fault_filter_(*p)) {
    ++fault_dropped_;
    sim_.ReleasePacket(p);
    return;  // lost on the wire
  }
  SimTime delay = config_.propagation;
  if (!config_.reorder_jitter.IsZero() && rng_ != nullptr) {
    delay += rng_->UniformTime(SimTime::Zero(), config_.reorder_jitter);
  }
  ++delivered_;
  sim_.ScheduleNoCancel(delay, [this, p] {
    sink_->HandlePacket(std::move(*p));
    sim_.ReleasePacket(p);
  });
}

}  // namespace tdtcp
