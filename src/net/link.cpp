#include "net/link.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tdtcp {

Link::Link(Simulator& sim, Config config, PacketSink* sink, Random* rng)
    : sim_(sim), config_(std::move(config)), sink_(sink), rng_(rng),
      queue_(config_.queue) {
  assert(sink_ != nullptr);
  assert(config_.rate_bps > 0);
}

void Link::Enqueue(Packet&& p) {
  p.enqueue_time = sim_.now();
  if (!queue_.Enqueue(std::move(p))) return;  // dropped
  MaybeTransmit();
}

void Link::set_enabled(bool enabled) {
  if (enabled_ == enabled) return;
  enabled_ = enabled;
  if (enabled_) MaybeTransmit();
}

std::uint32_t Link::ZeroTxMaxBytes() const {
  // TransmissionTime truncates: size * 8e12 / rate == 0 picos exactly when
  // size * 8e12 < rate, so the largest qualifying size is
  // (rate - 1) / 8e12 in integer arithmetic.
  const std::uint64_t cap = (config_.rate_bps - 1) / 8'000'000'000'000ull;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cap, 0xffffffffu));
}

void Link::MaybeTransmit() {
  for (;;) {
    if (busy_ || !enabled_ || queue_.Empty()) return;
    if (config_.allow_burst && config_.reorder_jitter.IsZero()) {
      const Packet* head = queue_.Peek();
      if (head != nullptr &&
          TransmissionTime(head->size_bytes, config_.rate_bps).IsZero()) {
        // Zero-serialization regime: the whole run would cascade through
        // same-tick events anyway; take it in one burst and go around for
        // whatever is left (a larger packet, or overflow past the burst cap).
        if (!TransmitBurst()) return;
        continue;
      }
    }
    // An AQM dequeue may consume the whole backlog as drops and come back
    // empty-handed; there is nothing to transmit then.
    std::optional<Packet> head = queue_.Dequeue(sim_.now());
    if (!head) return;
    // Park the in-flight packet in the simulator's freelist so the event
    // captures one pointer, not a Packet copy.
    Packet* p = sim_.StashPacket(std::move(*head));
    busy_ = true;
    const SimTime tx = TransmissionTime(p->size_bytes, config_.rate_bps);
    sim_.ScheduleNoCancel(tx, [this, p] {
      busy_ = false;
      Deliver(p);
      MaybeTransmit();
    });
    return;
  }
}

bool Link::TransmitBurst() {
  // Reused across calls: default-constructing kMaxLinkBurst Packets (~7 KB)
  // here would dwarf the event savings for small bursts. thread_local is
  // safe — every survivor is stashed before this frame returns, so no state
  // outlives the call, and concurrent simulators live on separate threads.
  static thread_local Packet buf[kMaxLinkBurst];
  const std::size_t n =
      queue_.DequeueBurst(sim_.now(), kMaxLinkBurst, ZeroTxMaxBytes(), buf);
  if (n == 0) return false;  // AQM consumed the poppable run as drops
  // Chain the fault-filter survivors through the packets' intrusive links;
  // the delivery event then captures one pointer for the whole burst.
  Packet* head = nullptr;
  Packet* tail = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    if (has_fault_filter_ && fault_filter_(buf[i])) {
      ++fault_dropped_;
      continue;  // lost on the wire
    }
    Packet* s = sim_.StashPacket(std::move(buf[i]));
    s->burst_next = nullptr;
    if (tail == nullptr) {
      head = s;
    } else {
      tail->burst_next = s;
    }
    tail = s;
    ++delivered_;
  }
  if (head != nullptr) {
    sim_.ScheduleNoCancel(config_.propagation,
                          [this, head] { DeliverBurst(head); });
  }
  return true;
}

void Link::DeliverBurst(Packet* head) {
  Packet* pkts[kMaxLinkBurst];
  std::size_t n = 0;
  for (Packet* p = head; p != nullptr; p = p->burst_next) pkts[n++] = p;
  sink_->HandleBurst(pkts, n);
  for (std::size_t i = 0; i < n; ++i) sim_.ReleasePacket(pkts[i]);
}

void Link::Deliver(Packet* p) {
  if (has_fault_filter_ && fault_filter_(*p)) {
    ++fault_dropped_;
    sim_.ReleasePacket(p);
    return;  // lost on the wire
  }
  SimTime delay = config_.propagation;
  if (!config_.reorder_jitter.IsZero() && rng_ != nullptr) {
    delay += rng_->UniformTime(SimTime::Zero(), config_.reorder_jitter);
  }
  ++delivered_;
  sim_.ScheduleNoCancel(delay, [this, p] {
    sink_->HandlePacket(std::move(*p));
    sim_.ReleasePacket(p);
  });
}

}  // namespace tdtcp
