// A unidirectional link: bounded queue + serializing transmitter +
// propagation delay.
//
// Packets serialize back-to-back at `rate_bps`, then arrive at the sink
// after `propagation`. A link can be disabled (RDCN night): the
// in-progress transmission completes, queued packets wait. Optional random
// jitter models intra-TDN reordering (off by default; Fig. 10's baseline
// reordering experiments enable it).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/node.hpp"
#include "net/queue_disc.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace tdtcp {

class Link {
 public:
  struct Config {
    std::uint64_t rate_bps = 10'000'000'000;  // 10 Gbps
    SimTime propagation = SimTime::Micros(1);
    QueueDisc::Config queue;
    // When > 0, each packet's propagation is extended by a uniform random
    // extra delay in [0, reorder_jitter]; late packets can overtake, which
    // models intrinsic intra-TDN reordering.
    SimTime reorder_jitter = SimTime::Zero();
    // Opt-in burst fast path: packets whose serialization time truncates to
    // zero at this rate (they would all arrive at the same tick anyway, as
    // separate delivery events) are popped together via
    // QueueDisc::DequeueBurst and handed to the sink in one
    // PacketSink::HandleBurst call. Delivery times and per-packet order are
    // unchanged; what changes is that the burst's deliveries are no longer
    // interleavable with other same-tick events, so the contract is that no
    // other producer feeds the sink at the same tick. Requires
    // reorder_jitter == 0 (jitter would split the arrival tick); ignored
    // otherwise.
    bool allow_burst = false;
    std::string name;  // for tracing
  };

  // Upper bound on packets per HandleBurst call (and the stack buffers the
  // burst path uses). A longer backlog simply takes several bursts.
  static constexpr std::size_t kMaxLinkBurst = 32;

  Link(Simulator& sim, Config config, PacketSink* sink, Random* rng = nullptr);

  // Admits a packet to the queue (may drop) and kicks the transmitter.
  void Enqueue(Packet&& p);

  // Fault-injection hook (src/fault): consulted once per packet after it
  // finishes serializing, before propagation. Returning true drops the
  // packet on the wire (loss or corruption; a corrupted packet fails the
  // receiver checksum, which is indistinguishable from loss here).
  using FaultFilter = std::function<bool(const Packet&)>;
  void SetFaultFilter(FaultFilter filter) {
    fault_filter_ = std::move(filter);
    // Hoisted emptiness flag: the per-packet fast path pays one predictable
    // branch when no filter is installed instead of a std::function probe.
    has_fault_filter_ = static_cast<bool>(fault_filter_);
  }
  std::uint64_t fault_dropped() const { return fault_dropped_; }

  // Night/blackout control: a disabled link does not start new
  // transmissions; the one in flight (if any) still completes and
  // propagates.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  void set_rate_bps(std::uint64_t rate) { config_.rate_bps = rate; }
  std::uint64_t rate_bps() const { return config_.rate_bps; }

  QueueDisc& queue() { return queue_; }
  const QueueDisc& queue() const { return queue_; }
  const std::string& name() const { return config_.name; }

  std::uint64_t delivered() const { return delivered_; }

 private:
  void MaybeTransmit();
  // `p` is a Simulator-stashed packet owned by the caller's event; Deliver
  // either forwards it (releasing after the final handoff) or drops it.
  void Deliver(Packet* p);
  // Burst path: pops a zero-serialization run off the queue, runs the fault
  // filter per packet, and schedules one delivery event for the survivors
  // (chained through Packet::burst_next). Returns false when it made no
  // progress (nothing poppable).
  bool TransmitBurst();
  void DeliverBurst(Packet* head);
  // Largest size whose serialization time truncates to zero at this rate
  // (0 when no packet qualifies — burst never engages).
  std::uint32_t ZeroTxMaxBytes() const;

  Simulator& sim_;
  Config config_;
  PacketSink* sink_;
  Random* rng_;
  QueueDisc queue_;
  FaultFilter fault_filter_;
  bool has_fault_filter_ = false;
  bool busy_ = false;
  bool enabled_ = true;
  std::uint64_t delivered_ = 0;
  std::uint64_t fault_dropped_ = 0;
};

}  // namespace tdtcp
