// A unidirectional link: bounded queue + serializing transmitter +
// propagation delay.
//
// Packets serialize back-to-back at `rate_bps`, then arrive at the sink
// after `propagation`. A link can be disabled (RDCN night): the
// in-progress transmission completes, queued packets wait. Optional random
// jitter models intra-TDN reordering (off by default; Fig. 10's baseline
// reordering experiments enable it).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/node.hpp"
#include "net/queue_disc.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace tdtcp {

class Link {
 public:
  struct Config {
    std::uint64_t rate_bps = 10'000'000'000;  // 10 Gbps
    SimTime propagation = SimTime::Micros(1);
    QueueDisc::Config queue;
    // When > 0, each packet's propagation is extended by a uniform random
    // extra delay in [0, reorder_jitter]; late packets can overtake, which
    // models intrinsic intra-TDN reordering.
    SimTime reorder_jitter = SimTime::Zero();
    std::string name;  // for tracing
  };

  Link(Simulator& sim, Config config, PacketSink* sink, Random* rng = nullptr);

  // Admits a packet to the queue (may drop) and kicks the transmitter.
  void Enqueue(Packet&& p);

  // Fault-injection hook (src/fault): consulted once per packet after it
  // finishes serializing, before propagation. Returning true drops the
  // packet on the wire (loss or corruption; a corrupted packet fails the
  // receiver checksum, which is indistinguishable from loss here).
  using FaultFilter = std::function<bool(const Packet&)>;
  void SetFaultFilter(FaultFilter filter) {
    fault_filter_ = std::move(filter);
    // Hoisted emptiness flag: the per-packet fast path pays one predictable
    // branch when no filter is installed instead of a std::function probe.
    has_fault_filter_ = static_cast<bool>(fault_filter_);
  }
  std::uint64_t fault_dropped() const { return fault_dropped_; }

  // Night/blackout control: a disabled link does not start new
  // transmissions; the one in flight (if any) still completes and
  // propagates.
  void set_enabled(bool enabled);
  bool enabled() const { return enabled_; }

  void set_rate_bps(std::uint64_t rate) { config_.rate_bps = rate; }
  std::uint64_t rate_bps() const { return config_.rate_bps; }

  QueueDisc& queue() { return queue_; }
  const QueueDisc& queue() const { return queue_; }
  const std::string& name() const { return config_.name; }

  std::uint64_t delivered() const { return delivered_; }

 private:
  void MaybeTransmit();
  // `p` is a Simulator-stashed packet owned by the caller's event; Deliver
  // either forwards it (releasing after the final handoff) or drops it.
  void Deliver(Packet* p);

  Simulator& sim_;
  Config config_;
  PacketSink* sink_;
  Random* rng_;
  QueueDisc queue_;
  FaultFilter fault_filter_;
  bool has_fault_filter_ = false;
  bool busy_ = false;
  bool enabled_ = true;
  std::uint64_t delivered_ = 0;
  std::uint64_t fault_dropped_ = 0;
};

}  // namespace tdtcp
