// Anything that can receive a packet: hosts, switches, TCP endpoints.
#pragma once

#include "net/packet.hpp"

namespace tdtcp {

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void HandlePacket(Packet&& p) = 0;
};

}  // namespace tdtcp
