// Anything that can receive a packet: hosts, switches, TCP endpoints.
#pragma once

#include <cstddef>
#include <utility>

#include "net/packet.hpp"

namespace tdtcp {

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void HandlePacket(Packet&& p) = 0;

  // Burst delivery: `n` packets that arrived at the same instant, in arrival
  // order. Ownership semantics match HandlePacket — the sink must move out
  // of each *pkts[i] and never retain the pointers past the call. The
  // default simply loops, so a sink overrides only when it can amortize
  // per-packet work (routing memo, ACK coalescing); behaviour must stay
  // equivalent to the loop.
  virtual void HandleBurst(Packet** pkts, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) HandlePacket(std::move(*pkts[i]));
  }
};

}  // namespace tdtcp
