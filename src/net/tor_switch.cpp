#include "net/tor_switch.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tdtcp {

void ToRSwitch::AttachHost(NodeId host, Link* downlink, PacketSink* control_sink) {
  host_index_[host] = hosts_.size();
  hosts_.push_back(HostPort{host, downlink, control_sink});
}

FabricPort* ToRSwitch::AddRemoteRack(RackId rack, FabricPort::Config config,
                                     PacketSink* remote_tor) {
  const bool shares = config.voq.kind == QdiscKind::kSharedPool;
  if (shares) {
    shared_pool_.total_packets =
        std::max(shared_pool_.total_packets, config.voq.shared_pool_packets);
  }
  auto port = std::make_unique<FabricPort>(sim_, std::move(config), remote_tor, rng_);
  FabricPort* raw = port.get();
  if (shares) raw->voq().AttachSharedPool(&shared_pool_);
  ports_[rack] = std::move(port);
  return raw;
}

ToRSwitch::Route ToRSwitch::Resolve(NodeId dst) {
  RackId dst_rack;
  if (hosts_per_rack_ != 0) {
    dst_rack = static_cast<RackId>(dst / hosts_per_rack_);
  } else {
    assert(rack_of_ && "rack resolver not installed");
    dst_rack = rack_of_(dst);
  }
  if (dst_rack == rack_) {
    if (hosts_per_rack_ != 0) {
      // Uniform topology: host slots are attached in id order, so the
      // downlink index is arithmetic, not a hash probe.
      const std::size_t idx = static_cast<std::size_t>(dst % hosts_per_rack_);
      if (idx < hosts_.size() && hosts_[idx].id == dst) {
        return Route{hosts_[idx].downlink, nullptr};
      }
    }
    auto it = host_index_.find(dst);
    assert(it != host_index_.end() && "unknown local host");
    return Route{hosts_[it->second].downlink, nullptr};
  }
  auto it = ports_.find(dst_rack);
  assert(it != ports_.end() && "no fabric port for destination rack");
  return Route{nullptr, it->second.get()};
}

void ToRSwitch::HandlePacket(Packet&& p) {
  ++forwarded_;
  const Route r = Resolve(p.dst);
  if (r.downlink != nullptr) {
    r.downlink->Enqueue(std::move(p));
  } else {
    r.port->Enqueue(std::move(p));
  }
}

void ToRSwitch::HandleBurst(Packet** pkts, std::size_t n) {
  // Same-tick bursts overwhelmingly share a destination (an incast fan-in
  // converging on one host); the memo turns the per-packet resolution into
  // one per run of equal destinations.
  NodeId memo_dst = kInvalidNode;
  Route memo;
  for (std::size_t i = 0; i < n; ++i) {
    Packet& p = *pkts[i];
    ++forwarded_;
    if (p.dst != memo_dst) {
      memo_dst = p.dst;
      memo = Resolve(p.dst);
    }
    if (memo.downlink != nullptr) {
      memo.downlink->Enqueue(std::move(p));
    } else {
      memo.port->Enqueue(std::move(p));
    }
  }
}

SimTime ToRSwitch::SampleGenDelay() {
  if (notify_.cached_packet) {
    if (rng_ == nullptr) return notify_.gen_delay_cached_median;
    return rng_->LognormalTime(notify_.gen_delay_cached_median,
                               notify_.cached_sigma);
  }
  if (rng_ == nullptr) return notify_.gen_delay_fresh_median;
  return rng_->LognormalTime(notify_.gen_delay_fresh_median, notify_.gen_sigma);
}

void ToRSwitch::NotifyHosts(TdnId tdn, bool imminent, RackId peer,
                            std::uint64_t seq) {
  last_notify_latency_.assign(hosts_.size(), SimTime::Zero());
  SimTime accumulated = SimTime::Zero();
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    accumulated += SampleGenDelay();
    last_notify_latency_[i] = accumulated;

    Packet icmp;
    icmp.id = sim_.NextPacketId();
    icmp.type = PacketType::kTdnNotify;
    icmp.size_bytes = 64;
    icmp.dst = hosts_[i].id;
    icmp.notify_tdn = tdn;
    icmp.circuit_imminent = imminent;
    icmp.notify_peer = peer;
    icmp.notify_seq = seq;
    ++notifications_sent_;

    deliveries_scratch_.clear();
    if (has_notify_fault_) {
      notify_fault_(icmp, accumulated, deliveries_scratch_);
    } else {
      deliveries_scratch_.push_back(accumulated);
    }
    for (SimTime when : deliveries_scratch_) {
      // Each delivery owns a pooled copy of the ICMP, so the event captures
      // pointers instead of a whole Packet (which would not fit the inline
      // event buffer anyway).
      Packet* stashed = sim_.StashPacket(Packet(icmp));
      if (notify_.via_control_network) {
        PacketSink* sink = hosts_[i].control;
        sim_.ScheduleNoCancel(when + notify_.control_delay, [this, sink, stashed] {
          sink->HandlePacket(std::move(*stashed));
          sim_.ReleasePacket(stashed);
        });
      } else {
        // Data-plane delivery: the ICMP rides the (possibly busy) downlink.
        Link* down = hosts_[i].downlink;
        sim_.ScheduleNoCancel(when, [this, down, stashed] {
          down->Enqueue(std::move(*stashed));
          sim_.ReleasePacket(stashed);
        });
      }
    }
  }
}

}  // namespace tdtcp
