// An end host: NIC uplink to its ToR, endpoint (socket) registry, and the
// kernel-side TDN-notification distribution model from §5.4.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {

// Defined in src/tcp (a layer above); the host only stores the pointer so
// connections on this host can find their shared recovery agent.
class RecoveryAgent;

// How the host kernel distributes a freshly received TDN ID to its flows.
// "Push" loops over established flows one by one (each successive flow sees
// the update `push_stagger` later); "pull" publishes a global variable that
// every flow reads immediately (§5.4's 3-orders-of-magnitude optimization).
struct NotifyDistribution {
  bool pull_model = true;
  SimTime push_stagger = SimTime::Micros(4);
};

class Host : public PacketSink {
 public:
  // Called when the host learns the active TDN changed. `imminent` is the
  // reTCPdyn advance notice (circuit coming up shortly).
  using TdnListener = std::function<void(TdnId tdn, bool imminent)>;

  Host(Simulator& sim, NodeId id) : sim_(sim), id_(id), wheel_(sim) {}

  NodeId id() const { return id_; }

  // Per-host hierarchical timer wheel: every connection's RTO/TLP/persist/
  // TimeWait timer is an intrusive entry here instead of a heap event.
  TimerWheel& wheel() { return wheel_; }

  // Host-level shared recovery agent (src/tcp/recovery_agent.hpp), or null.
  // Connections consult this at construction and register themselves.
  void SetRecoveryAgent(RecoveryAgent* agent) { recovery_agent_ = agent; }
  RecoveryAgent* recovery_agent() const { return recovery_agent_; }

  void AttachUplink(Link* up) { uplink_ = up; }

  // Sockets register to receive packets addressed to this host's flow.
  void RegisterEndpoint(FlowId flow, PacketSink* endpoint) {
    endpoints_[flow] = endpoint;
  }
  // `endpoint` guards against the churn race where a closed connection's
  // deferred teardown would evict a new connection that reused its FlowId:
  // only the sink that owns the entry may remove it (nullptr = any owner).
  void UnregisterEndpoint(FlowId flow, PacketSink* endpoint = nullptr) {
    auto it = endpoints_.find(flow);
    if (it == endpoints_.end()) return;
    if (endpoint != nullptr && it->second != endpoint) return;
    endpoints_.erase(it);
  }
  std::size_t num_endpoints() const { return endpoints_.size(); }
  std::size_t num_tdn_listeners() const { return tdn_listeners_.size(); }

  // Flow-ordered: the i-th registered listener is the i-th established flow
  // the push model iterates over. `owner` keys removal. `peer_rack` filters
  // per-destination notifications (multi-rack fabrics); kAllRacks listeners
  // hear everything, and fabric-wide notifications reach every listener.
  void AddTdnListener(const void* owner, TdnListener listener,
                      RackId peer_rack = kAllRacks) {
    tdn_listeners_.push_back({owner, peer_rack, std::move(listener)});
  }
  void RemoveTdnListener(const void* owner) {
    std::erase_if(tdn_listeners_,
                  [owner](const auto& e) { return e.owner == owner; });
  }

  // Management-plane TDN-count reconfiguration (ScheduleChange::live_tdns):
  // unlike the data-plane TDN notifications above this is not a lossy ICMP —
  // the controller's management network tells every host synchronously how
  // many TDNs the new schedule has, and connections retire the rest
  // (TcpConnection::OnTdnReconfig).
  using TdnReconfigListener = std::function<void(std::uint32_t live_tdns)>;
  void AddTdnReconfigListener(const void* owner, TdnReconfigListener listener) {
    reconfig_listeners_.push_back({owner, std::move(listener)});
  }
  void RemoveTdnReconfigListener(const void* owner) {
    std::erase_if(reconfig_listeners_,
                  [owner](const auto& e) { return e.owner == owner; });
  }
  void DistributeTdnReconfig(std::uint32_t live_tdns) {
    // Listeners may register/unregister during delivery (a reconfig can kick
    // a connection into sending, closing, etc.) — iterate a snapshot.
    const auto snapshot = reconfig_listeners_;
    for (const auto& e : snapshot) e.fn(live_tdns);
  }

  void set_notify_distribution(NotifyDistribution d) { notify_ = d; }

  // Transmit a packet from a local socket out the NIC.
  void Send(Packet&& p);

  // Packet arriving from the ToR (or control network).
  void HandlePacket(Packet&& p) override;

  // Burst arrival (link burst fast path): consecutive data packets for the
  // same registered flow are handed to the endpoint in one
  // PacketSink::HandleBurst call (one endpoint lookup per run, and the
  // endpoint can coalesce an ACK train); notifications and unknown flows
  // fall back to the per-packet path.
  void HandleBurst(Packet** pkts, std::size_t n) override;

  std::uint64_t dropped_no_endpoint() const { return dropped_no_endpoint_; }
  std::uint64_t rsts_sent() const { return rsts_sent_; }

  // FaultKind::kHostDown model: the NIC dies (both directions drop silently)
  // but the host's kernel timers keep running, so local connections march
  // through their retry caps and abort deterministically.
  void set_nic_enabled(bool enabled);
  bool nic_enabled() const { return nic_enabled_; }
  std::uint64_t dropped_nic_down() const { return dropped_nic_down_; }

  // Sequenced notifications (Packet::notify_seq != 0) filtered because a
  // newer one for the same peer scope was already applied -- duplicates,
  // reordered stragglers, and stale retransmissions all land here (§3.2).
  std::uint64_t stale_notifications_dropped() const {
    return stale_notifications_dropped_;
  }

  // Tracepoint sink: notification receipt/dedup emit kHostNotifyRx /
  // kHostNotifyStale (flow 0, host id in a3).
  void SetTraceRing(TraceRing* ring) {
    trace_ = ring;
    has_trace_ = ring != nullptr;
    wheel_.SetTrace(ring, id_);
  }

 private:
  struct ListenerEntry {
    const void* owner;
    RackId peer_rack;
    TdnListener fn;
  };

  struct ReconfigEntry {
    const void* owner;
    TdnReconfigListener fn;
  };

  void DistributeTdn(TdnId tdn, bool imminent, RackId peer);

  Simulator& sim_;
  NodeId id_;
  TimerWheel wheel_;
  RecoveryAgent* recovery_agent_ = nullptr;
  Link* uplink_ = nullptr;
  std::unordered_map<FlowId, PacketSink*> endpoints_;
  std::vector<ListenerEntry> tdn_listeners_;
  std::vector<ReconfigEntry> reconfig_listeners_;
  NotifyDistribution notify_;
  std::uint64_t dropped_no_endpoint_ = 0;
  std::uint64_t rsts_sent_ = 0;
  bool nic_enabled_ = true;
  std::uint64_t dropped_nic_down_ = 0;
  // Highest applied notify_seq per peer scope (kAllRacks is its own scope).
  std::unordered_map<RackId, std::uint64_t> last_notify_seq_;
  std::uint64_t stale_notifications_dropped_ = 0;
  TraceRing* trace_ = nullptr;
  bool has_trace_ = false;
};

}  // namespace tdtcp
