#include "net/packet.hpp"

namespace tdtcp {

std::uint64_t NextPacketId() {
  static std::uint64_t next = 1;
  return next++;
}

}  // namespace tdtcp
