#include "net/host.hpp"

#include <cassert>
#include <utility>

namespace tdtcp {

void Host::Send(Packet&& p) {
  assert(uplink_ != nullptr && "host has no uplink");
  if (!nic_enabled_) {
    ++dropped_nic_down_;
    return;
  }
  p.src = id_;
  uplink_->Enqueue(std::move(p));
}

void Host::set_nic_enabled(bool enabled) {
  if (enabled == nic_enabled_) return;
  nic_enabled_ = enabled;
  if (has_trace_) {
    trace_->Emit(sim_.now().picos(), TracePoint::kHostNicState,
                 /*flow=*/0, enabled ? 1 : 0, 0, 0, id_);
  }
}

void Host::HandlePacket(Packet&& p) {
  if (!nic_enabled_) {
    ++dropped_nic_down_;
    return;
  }
  if (p.type == PacketType::kTdnNotify) {
    if (p.notify_seq != 0) {
      // Sequenced notification: apply it only if it is newer than the last
      // one seen for this peer scope. This makes duplicated, reordered, and
      // stale control-plane deliveries idempotent (§3.2) without the flows
      // ever seeing them.
      std::uint64_t& last = last_notify_seq_[p.notify_peer];
      if (p.notify_seq <= last) {
        ++stale_notifications_dropped_;
        if (has_trace_) {
          trace_->Emit(sim_.now().picos(), TracePoint::kHostNotifyStale,
                       /*flow=*/0, p.notify_tdn, p.notify_seq,
                       p.circuit_imminent, id_);
        }
        return;
      }
      last = p.notify_seq;
    }
    if (has_trace_) {
      trace_->Emit(sim_.now().picos(), TracePoint::kHostNotifyRx,
                   /*flow=*/0, p.notify_tdn, p.notify_seq,
                   p.circuit_imminent, id_);
    }
    DistributeTdn(p.notify_tdn, p.circuit_imminent, p.notify_peer);
    return;
  }
  auto it = endpoints_.find(p.flow);
  if (it == endpoints_.end()) {
    ++dropped_no_endpoint_;
    // RFC 9293: a segment aimed at a closed endpoint gets RST — unless it is
    // itself an RST (never answer RST with RST, or two dead ends ping-pong
    // forever). The peer's connection aborts with kPeerReset instead of
    // retransmitting into the void.
    if (!p.rst && p.src != kInvalidNode) {
      Packet rst;
      rst.id = sim_.NextPacketId();
      rst.type = PacketType::kData;
      rst.rst = true;
      rst.flow = p.flow;
      rst.dst = p.src;
      rst.seq = p.ack;
      rst.size_bytes = 60;
      rst.pinned_path = p.pinned_path;
      rst.subflow = p.subflow;
      rst.is_mptcp = p.is_mptcp;
      rst.sent_time = sim_.now();
      ++rsts_sent_;
      Send(std::move(rst));
    }
    return;
  }
  it->second->HandlePacket(std::move(p));
}

void Host::HandleBurst(Packet** pkts, std::size_t n) {
  std::size_t i = 0;
  while (i < n) {
    Packet& p = *pkts[i];
    if (!nic_enabled_ || p.type == PacketType::kTdnNotify) {
      HandlePacket(std::move(p));  // notify/NIC-down handling, per packet
      ++i;
      continue;
    }
    auto it = endpoints_.find(p.flow);
    if (it == endpoints_.end()) {
      HandlePacket(std::move(p));  // the RST-to-closed-endpoint path
      ++i;
      continue;
    }
    // Extend the run across consecutive packets for the same flow. The
    // endpoint processes them in order within one call; a teardown
    // triggered mid-run keeps delivering to the same (still live) object,
    // which is the burst contract (see Link::Config::allow_burst).
    std::size_t j = i + 1;
    while (j < n && pkts[j]->flow == p.flow &&
           pkts[j]->type != PacketType::kTdnNotify) {
      ++j;
    }
    it->second->HandleBurst(pkts + i, j - i);
    i = j;
  }
}

void Host::DistributeTdn(TdnId tdn, bool imminent, RackId peer) {
  const auto matches = [peer](const ListenerEntry& l) {
    return peer == kAllRacks || l.peer_rack == kAllRacks ||
           l.peer_rack == peer;
  };
  if (notify_.pull_model) {
    // Flows read a shared variable: all see the new TDN at once.
    for (auto& l : tdn_listeners_) {
      if (matches(l)) l.fn(tdn, imminent);
    }
    return;
  }
  // Push model: the kernel walks the flow list; flow i learns the new TDN
  // i staggers later ("unlucky flows which see the TDN update after others
  // get less time to send", §5.4).
  for (std::size_t i = 0; i < tdn_listeners_.size(); ++i) {
    if (!matches(tdn_listeners_[i])) continue;
    const void* owner = tdn_listeners_[i].owner;
    sim_.ScheduleNoCancel(notify_.push_stagger * static_cast<std::int64_t>(i),
                          [this, owner, tdn, imminent] {
                            for (auto& l : tdn_listeners_) {
                              if (l.owner == owner) l.fn(tdn, imminent);
                            }
                          });
  }
}

}  // namespace tdtcp
