#include "net/queue_disc.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace tdtcp {

const char* QdiscKindName(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kDropTail: return "droptail";
    case QdiscKind::kCodel: return "codel";
    case QdiscKind::kDelayMark: return "delaymark";
    case QdiscKind::kSharedPool: return "sharedpool";
  }
  return "?";
}

QdiscKind QdiscKindFromName(const std::string& name) {
  if (name == "droptail") return QdiscKind::kDropTail;
  if (name == "codel") return QdiscKind::kCodel;
  if (name == "delaymark") return QdiscKind::kDelayMark;
  if (name == "sharedpool") return QdiscKind::kSharedPool;
  throw std::invalid_argument("unknown qdisc: " + name);
}

double QueueDisc::Stats::SojournPercentileUs(double p) const {
  if (sojourn_count == 0) return 0.0;
  const double clamped = std::min(100.0, std::max(0.0, p));
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(sojourn_count)));
  if (rank == 0) rank = 1;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kSojournBuckets; ++b) {
    cum += sojourn_hist[b];
    if (cum >= rank) {
      // Upper edge of bucket b: 1 us for b=0, else 2^b us.
      return static_cast<double>(std::uint64_t{1} << b);
    }
  }
  return static_cast<double>(std::uint64_t{1} << (kSojournBuckets - 1));
}

void QueueDisc::Grow() {
  std::vector<Packet> bigger(std::max<std::size_t>(8, ring_.size() * 2));
  for (std::size_t i = 0; i < count_; ++i) {
    bigger[i] = std::move(ring_[(head_ + i) & (ring_.size() - 1)]);
  }
  ring_ = std::move(bigger);
  head_ = 0;
}

void QueueDisc::Push(Packet&& p) {
  if (count_ == ring_.size()) Grow();
  ring_[(head_ + count_) & (ring_.size() - 1)] = std::move(p);
  ++count_;
  ++stats_.enqueued;
  stats_.max_occupancy =
      std::max(stats_.max_occupancy, static_cast<std::uint32_t>(count_));
  if (config_.kind == QdiscKind::kSharedPool && pool_ != nullptr) ++pool_->used;
}

bool QueueDisc::CanEnqueue() const {
  if (count_ >= config_.capacity_packets) return false;
  if (config_.kind == QdiscKind::kSharedPool && pool_ != nullptr) {
    // Dynamic threshold (DT): admit while occupancy < alpha * free pool.
    // A full pool admits nothing; a lone queue on a large pool behaves
    // like drop-tail at its own capacity.
    if (pool_->used >= pool_->total_packets) return false;
    if (static_cast<double>(count_) >=
        config_.shared_alpha * static_cast<double>(pool_->free_packets())) {
      return false;
    }
  }
  return true;
}

bool QueueDisc::Enqueue(Packet&& p) {
  if (count_ >= config_.capacity_packets) {
    ++stats_.dropped;
    return false;
  }
  if (config_.kind == QdiscKind::kSharedPool && pool_ != nullptr &&
      !CanEnqueue()) {
    ++stats_.dropped;
    ++stats_.shared_rejected;
    return false;
  }
  if (count_ >= config_.ecn_threshold_packets && p.ecn == Ecn::kEct0) {
    p.ecn = Ecn::kCe;
    ++stats_.ce_marked;
  }
  Push(std::move(p));
  return true;
}

std::optional<Packet> QueueDisc::PopRaw() {
  if (count_ == 0) return std::nullopt;
  std::optional<Packet> p(std::move(ring_[head_]));
  head_ = (head_ + 1) & (ring_.size() - 1);
  --count_;
  if (config_.kind == QdiscKind::kSharedPool && pool_ != nullptr &&
      pool_->used > 0) {
    --pool_->used;
  }
  if (shrink_watermark_ != 0) {
    // The post-shrink overshoot only ever drains: tighten the watermark with
    // the occupancy and clear it once we are back within capacity.
    if (count_ <= config_.capacity_packets) {
      shrink_watermark_ = 0;
    } else {
      shrink_watermark_ =
          std::min(shrink_watermark_, static_cast<std::uint32_t>(count_));
    }
  }
  return p;
}

void QueueDisc::Restore(Packet&& p) {
  Push(std::move(p));
  if (count_ > config_.capacity_packets) {
    shrink_watermark_ =
        std::max(shrink_watermark_, static_cast<std::uint32_t>(count_));
  }
}

void QueueDisc::RecordSojourn(SimTime sojourn) {
  if (sojourn < SimTime::Zero()) sojourn = SimTime::Zero();
  ++stats_.sojourn_count;
  const std::uint64_t us = static_cast<std::uint64_t>(sojourn.micros());
  stats_.sojourn_sum_us += us;
  if (sojourn > stats_.max_sojourn) stats_.max_sojourn = sojourn;
  std::size_t bucket = us == 0 ? 0 : static_cast<std::size_t>(std::bit_width(us));
  if (bucket >= Stats::kSojournBuckets) bucket = Stats::kSojournBuckets - 1;
  ++stats_.sojourn_hist[bucket];
}

SimTime QueueDisc::CodelControlLaw(SimTime t) const {
  // interval / sqrt(count): same-binary IEEE-754 sqrt over small integers
  // is deterministic, preserving jobs=1 == jobs=N bit-identity.
  return t + SimTime::Picos(static_cast<std::int64_t>(
                 static_cast<double>(config_.codel_interval.picos()) /
                 std::sqrt(static_cast<double>(codel_count_))));
}

bool QueueDisc::CodelOkToDrop(SimTime sojourn, SimTime now) {
  // Below target — or nothing left behind this packet worth defending the
  // target with — resets the above-target tracking (RFC 8289 §4.2 plus the
  // MAXPACKET backlog guard, expressed in packets).
  if (sojourn < config_.codel_target || count_ == 0) {
    codel_first_above_ = SimTime::Zero();
    return false;
  }
  if (codel_first_above_.IsZero()) {
    codel_first_above_ = now + config_.codel_interval;
    return false;
  }
  return now >= codel_first_above_;
}

bool QueueDisc::CodelDeliver(Packet& p, SimTime sojourn, SimTime now) {
  const bool ok_to_drop = CodelOkToDrop(sojourn, now);
  if (codel_dropping_) {
    if (!ok_to_drop) {
      codel_dropping_ = false;
      return true;
    }
    if (now >= codel_drop_next_) {
      ++codel_count_;
      codel_drop_next_ = CodelControlLaw(codel_drop_next_);
      if (config_.codel_ecn && p.ecn == Ecn::kEct0) {
        p.ecn = Ecn::kCe;
        ++stats_.ce_marked;
        ++stats_.codel_marks;
        return true;
      }
      ++stats_.dropped;
      ++stats_.codel_drops;
      return false;
    }
    return true;
  }
  if (ok_to_drop) {
    // Enter the dropping state. Re-entry soon after leaving it resumes at
    // the previous drop rate instead of restarting from one per interval;
    // the 16-interval recency window matches Linux sch_codel (a 1-interval
    // window forgets the rate on every sawtooth and never re-converges
    // against a persistent overload).
    codel_dropping_ = true;
    const bool recent = now - codel_drop_next_ < config_.codel_interval * 16;
    codel_count_ = recent && codel_count_ > 2 ? codel_count_ - 2 : 1;
    codel_drop_next_ = CodelControlLaw(now);
    if (config_.codel_ecn && p.ecn == Ecn::kEct0) {
      p.ecn = Ecn::kCe;
      ++stats_.ce_marked;
      ++stats_.codel_marks;
      return true;
    }
    ++stats_.dropped;
    ++stats_.codel_drops;
    return false;
  }
  return true;
}

std::optional<Packet> QueueDisc::Dequeue(SimTime now) {
  for (;;) {
    std::optional<Packet> p = PopRaw();
    if (!p) {
      codel_dropping_ = false;
      return std::nullopt;
    }
    const SimTime sojourn = now - p->enqueue_time;
    switch (config_.kind) {
      case QdiscKind::kDropTail:
      case QdiscKind::kSharedPool:
        break;
      case QdiscKind::kDelayMark:
        if (sojourn >= config_.delay_mark_threshold && p->ecn == Ecn::kEct0) {
          p->ecn = Ecn::kCe;
          ++stats_.ce_marked;
          ++stats_.delay_marked;
        }
        break;
      case QdiscKind::kCodel:
        if (!CodelDeliver(*p, sojourn, now)) continue;  // a CoDel drop
        break;
    }
    // Only delivered packets enter the sojourn telemetry: a CoDel-consumed
    // packet is a drop, and its (deliberately long) wait must not pollute
    // the delay distribution the forwarded traffic actually experienced.
    RecordSojourn(sojourn);
    return p;
  }
}

std::size_t QueueDisc::DequeueBurst(SimTime now, std::size_t max,
                                    std::uint32_t max_packet_bytes,
                                    Packet* out) {
  std::size_t n = 0;
  std::uint32_t popped = 0;
  // Sojourn summary accumulates in locals; one store per burst below. The
  // histogram still takes a per-packet increment (each packet lands in its
  // own bucket), but that is one L1 line, not the whole Stats record.
  std::uint64_t soj_count = 0;
  std::uint64_t soj_sum_us = 0;
  SimTime soj_max = stats_.max_sojourn;
  while (n < max) {
    if (count_ == 0) {
      // The (n < max) call that would have found the queue empty: Dequeue's
      // nullopt return resets the CoDel dropping state, so this does too.
      codel_dropping_ = false;
      break;
    }
    if (ring_[head_].size_bytes > max_packet_bytes) break;
    Packet p = std::move(ring_[head_]);
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;  // live: CoDel's backlog guard reads occupancy per packet
    ++popped;
    const SimTime raw_sojourn = now - p.enqueue_time;
    switch (config_.kind) {
      case QdiscKind::kDropTail:
      case QdiscKind::kSharedPool:
        break;
      case QdiscKind::kDelayMark:
        if (raw_sojourn >= config_.delay_mark_threshold &&
            p.ecn == Ecn::kEct0) {
          p.ecn = Ecn::kCe;
          ++stats_.ce_marked;
          ++stats_.delay_marked;
        }
        break;
      case QdiscKind::kCodel:
        if (!CodelDeliver(p, raw_sojourn, now)) continue;  // a CoDel drop
        break;
    }
    const SimTime sojourn =
        raw_sojourn < SimTime::Zero() ? SimTime::Zero() : raw_sojourn;
    ++soj_count;
    const std::uint64_t us = static_cast<std::uint64_t>(sojourn.micros());
    soj_sum_us += us;
    if (sojourn > soj_max) soj_max = sojourn;
    std::size_t bucket =
        us == 0 ? 0 : static_cast<std::size_t>(std::bit_width(us));
    if (bucket >= Stats::kSojournBuckets) bucket = Stats::kSojournBuckets - 1;
    ++stats_.sojourn_hist[bucket];
    out[n++] = std::move(p);
  }
  stats_.sojourn_count += soj_count;
  stats_.sojourn_sum_us += soj_sum_us;
  stats_.max_sojourn = soj_max;
  if (popped != 0) {
    if (config_.kind == QdiscKind::kSharedPool && pool_ != nullptr) {
      pool_->used -= std::min(pool_->used, popped);
    }
    if (shrink_watermark_ != 0) {
      // Occupancy only fell across the burst, so the per-pop tightening
      // telescopes to one update against the final count.
      if (count_ <= config_.capacity_packets) {
        shrink_watermark_ = 0;
      } else {
        shrink_watermark_ =
            std::min(shrink_watermark_, static_cast<std::uint32_t>(count_));
      }
    }
  }
  return n;
}

void QueueDisc::DrainRawInto(std::vector<Packet>& out) {
  if (count_ == 0) return;
  const std::uint32_t popped = static_cast<std::uint32_t>(count_);
  out.reserve(out.size() + count_);
  while (count_ != 0) {
    out.push_back(std::move(ring_[head_]));
    head_ = (head_ + 1) & (ring_.size() - 1);
    --count_;
  }
  if (config_.kind == QdiscKind::kSharedPool && pool_ != nullptr) {
    pool_->used -= std::min(pool_->used, popped);
  }
  // Occupancy is zero, so any post-shrink overshoot has fully drained.
  shrink_watermark_ = 0;
}

void QueueDisc::set_capacity(std::uint32_t packets) {
  if (count_ > packets) {
    stats_.shrink_deferred += count_ - packets;
    shrink_watermark_ = static_cast<std::uint32_t>(count_);
  } else {
    shrink_watermark_ = 0;
  }
  config_.capacity_packets = packets;
}

}  // namespace tdtcp
