// Top-of-rack switch: routes between local hosts and remote racks through
// reconfigurable fabric ports, and generates the ICMP TDN-change
// notifications (§3.2) with the latency model whose optimizations §5.4
// evaluates.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/fabric_port.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace tdtcp {

// ToR-side notification generation model (§5.4).
//  * cached_packet: pre-built ICMP skeleton, only the TDN ID is filled in
//    (optimized) vs constructing a packet from scratch per host with a
//    heavy-tailed cost (unoptimized; 8x slower at p50, 2.7x at p99).
//  * via_control_network: dedicated control NIC with a fixed small delay
//    (optimized) vs riding the busy data-plane downlink queue (unoptimized).
struct NotifyGenConfig {
  bool cached_packet = true;
  // Both construction paths are lognormal; caching cuts the median ~8x but
  // keeps a relatively fatter tail (the paper measures 8x at p50, 2.7x at
  // p99 — §5.4).
  SimTime gen_delay_cached_median = SimTime::Nanos(500);
  double cached_sigma = 0.7;
  SimTime gen_delay_fresh_median = SimTime::Micros(4);
  double gen_sigma = 0.35;
  bool via_control_network = true;
  SimTime control_delay = SimTime::Micros(1);
};

class ToRSwitch : public PacketSink {
 public:
  ToRSwitch(Simulator& sim, RackId rack, NotifyGenConfig notify, Random* rng)
      : sim_(sim), rack_(rack), notify_(notify), rng_(rng) {}

  RackId rack() const { return rack_; }

  // `control_sink` receives ICMP notifications delivered over the control
  // network (in practice, the host itself).
  void AttachHost(NodeId host, Link* downlink, PacketSink* control_sink);

  // Creates the fabric port toward `rack`. A port configured with
  // QdiscKind::kSharedPool is attached to this switch's buffer pool (the
  // pool is provisioned to the largest shared_pool_packets seen across
  // ports), so every such VOQ on the ToR competes under dynamic-threshold
  // sharing.
  FabricPort* AddRemoteRack(RackId rack, FabricPort::Config config,
                            PacketSink* remote_tor);

  // Maps a host id to its rack; installed by the topology builder.
  void SetRackResolver(std::function<RackId(NodeId)> resolver) {
    rack_of_ = std::move(resolver);
  }

  // Uniform-topology fast path: when every rack holds `hosts_per_rack`
  // consecutively numbered hosts, routing is pure arithmetic and the
  // per-packet std::function resolver is bypassed entirely. Zero disables
  // the fast path (irregular topologies fall back to the resolver).
  void SetUniformRackSize(std::uint32_t hosts_per_rack) {
    hosts_per_rack_ = hosts_per_rack;
  }

  void HandlePacket(Packet&& p) override;

  // Burst forwarding: consecutive packets for the same destination reuse
  // the resolved route (one rack resolution + port/downlink lookup per run
  // instead of per packet). Forwarding behaviour per packet is identical
  // to HandlePacket.
  void HandleBurst(Packet** pkts, std::size_t n) override;

  // Emits a TDN-change notification to every attached host. Generation cost
  // accumulates per host (the software switch builds packets in a loop), so
  // later hosts learn later. `imminent` is the reTCPdyn advance notice;
  // `peer` scopes the notification to paths toward one remote rack
  // (multi-rack fabrics). `seq` is the controller's generation number
  // stamped into the ICMP (zero = unsequenced, see Packet::notify_seq).
  void NotifyHosts(TdnId tdn, bool imminent = false, RackId peer = kAllRacks,
                   std::uint64_t seq = 0);

  // Control-plane fault hook (src/fault): decides how each per-host
  // notification is delivered. The hook appends the delivery delays to use
  // to `delays_out` -- none drops the notification, one delivers it
  // normally (possibly late), several duplicate it. When unset, one
  // delivery at `base_delay`.
  using NotifyFaultHook = std::function<void(
      const Packet& icmp, SimTime base_delay, std::vector<SimTime>& delays_out)>;
  void SetNotifyFaultHook(NotifyFaultHook hook) {
    notify_fault_ = std::move(hook);
    has_notify_fault_ = static_cast<bool>(notify_fault_);
  }

  FabricPort* port(RackId rack) { return ports_.at(rack).get(); }
  const FabricPort* port(RackId rack) const { return ports_.at(rack).get(); }

  std::uint64_t forwarded() const { return forwarded_; }
  std::uint64_t notifications_sent() const { return notifications_sent_; }

  // The switch-wide buffer pool (kSharedPool VOQs only; total_packets stays
  // zero when no port shares).
  const SharedBufferPool& shared_pool() const { return shared_pool_; }

  // Total notification generation latency accumulated for the most recent
  // NotifyHosts() call, per host (for §5.4 latency breakdowns).
  const std::vector<SimTime>& last_notify_latency() const {
    return last_notify_latency_;
  }

 private:
  struct HostPort {
    NodeId id;
    Link* downlink;
    PacketSink* control;
  };

  SimTime SampleGenDelay();

  // Resolved forwarding target: exactly one of the two is non-null.
  struct Route {
    Link* downlink = nullptr;
    FabricPort* port = nullptr;
  };
  Route Resolve(NodeId dst);

  Simulator& sim_;
  RackId rack_;
  NotifyGenConfig notify_;
  Random* rng_;
  std::vector<HostPort> hosts_;
  std::unordered_map<NodeId, std::size_t> host_index_;
  std::unordered_map<RackId, std::unique_ptr<FabricPort>> ports_;
  SharedBufferPool shared_pool_;
  std::function<RackId(NodeId)> rack_of_;
  std::uint32_t hosts_per_rack_ = 0;  // 0 = use rack_of_
  NotifyFaultHook notify_fault_;
  bool has_notify_fault_ = false;
  std::uint64_t forwarded_ = 0;
  std::uint64_t notifications_sent_ = 0;
  std::vector<SimTime> last_notify_latency_;
  // Scratch for NotifyHosts fault-hook delivery times (reused per host).
  std::vector<SimTime> deliveries_scratch_;
};

}  // namespace tdtcp
