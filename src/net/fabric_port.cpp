#include "net/fabric_port.hpp"

#include <cassert>
#include <utility>

namespace tdtcp {

FabricPort::FabricPort(Simulator& sim, Config config, PacketSink* remote,
                       Random* rng)
    : sim_(sim), config_(std::move(config)), remote_(remote), rng_(rng),
      voq_(config_.voq), mode_(config_.initial_mode) {
  assert(remote_ != nullptr);
}

void FabricPort::SetMode(const NetworkMode& mode) {
  mode_ = mode;
  // Pinned packets already admitted to the VOQ must not ride the wrong
  // network: move the ones whose network just went away back to the stash
  // (this is what strands an MPTCP subflow's tail ACKs for a whole week,
  // §2.2), and pull in stashed packets whose network just came up. The
  // repack moves packets structurally (PopRaw/Restore): it is not a service
  // or admission event, so it must not distort sojourn stats, advance the
  // AQM, or manufacture drops for packets the queue already admitted.
  if (!voq_.Empty()) {
    drain_scratch_.clear();
    voq_.DrainRawInto(drain_scratch_);  // one batched structural pop
    keep_scratch_.clear();
    for (Packet& p : drain_scratch_) {
      if (p.pinned_path != kUnpinned && p.pinned_path != active_path()) {
        auto& stash = stash_[p.pinned_path];
        if (stash.size() >= config_.pinned_stash_capacity) {
          ++pinned_dropped_;
        } else {
          stash.push_back(std::move(p));
        }
      } else {
        keep_scratch_.push_back(std::move(p));
      }
    }
    drain_scratch_.clear();
    for (auto& p : keep_scratch_) voq_.Restore(std::move(p));
    keep_scratch_.clear();
  }
  TopUpFromStash();
  MaybeTransmit();
}

void FabricPort::SetBlackout(bool blackout) {
  blackout_ = blackout;
  if (!blackout_) MaybeTransmit();
}

void FabricPort::Enqueue(Packet&& p) {
  p.enqueue_time = sim_.now();
  if (p.pinned_path != kUnpinned && p.pinned_path != active_path()) {
    auto& stash = stash_[p.pinned_path];
    if (stash.size() >= config_.pinned_stash_capacity) {
      ++pinned_dropped_;
      return;
    }
    stash.push_back(std::move(p));
    return;
  }
  voq_.Enqueue(std::move(p));  // may drop
  MaybeTransmit();
}

std::uint32_t FabricPort::pinned_waiting() const {
  return static_cast<std::uint32_t>(stash_[0].size() + stash_[1].size());
}

void FabricPort::TopUpFromStash() {
  auto& stash = stash_[active_path()];
  // CanEnqueue is the discipline's own admission predicate (plain occupancy
  // for drop-tail, the dynamic threshold for a shared pool), so a stashed
  // pinned packet is never offered to a queue that would drop it.
  while (!stash.empty() && voq_.CanEnqueue()) {
    voq_.Enqueue(std::move(stash.front()));
    stash.pop_front();
  }
}

void FabricPort::MaybeTransmit() {
  if (busy_ || blackout_) return;
  TopUpFromStash();
  if (voq_.Empty()) return;
  // An AQM dequeue may consume the whole backlog as drops and come back
  // empty-handed; there is nothing to serialize then.
  std::optional<Packet> head = voq_.Dequeue(sim_.now());
  if (!head) return;
  // Park the in-flight packet in the simulator's freelist so each hop's
  // event captures one pointer, not a Packet copy.
  Packet* p = sim_.StashPacket(std::move(*head));
  // reTCP switch support: stamp which network carried this packet.
  p->circuit_mark = mode_.circuit;
  busy_ = true;
  const SimTime tx = TransmissionTime(p->size_bytes, mode_.rate_bps);
  sim_.ScheduleNoCancel(tx, [this, p] {
    busy_ = false;
    if (has_fault_filter_ && fault_filter_(*p)) {
      ++fault_dropped_;  // lost on the wire
      sim_.ReleasePacket(p);
      MaybeTransmit();
      return;
    }
    // Propagation parameters are read at serialization-complete time: a mode
    // change during serialization affects this packet's flight, as before.
    SimTime prop = mode_.propagation;
    if (!config_.reorder_jitter.IsZero() && rng_ != nullptr) {
      prop += rng_->UniformTime(SimTime::Zero(), config_.reorder_jitter);
    }
    sim_.ScheduleNoCancel(prop, [this, p] {
      remote_->HandlePacket(std::move(*p));
      sim_.ReleasePacket(p);
    });
    MaybeTransmit();
  });
}

}  // namespace tdtcp
