// Pluggable queue disciplines for the ToR VOQ (and every other bounded
// packet queue in the simulator).
//
// One concrete class, QueueDisc, provides a stable
// enqueue/dequeue/peek/resize contract and dispatches the discipline-
// specific behavior through an enum switch: no virtual calls, no hot-path
// allocation, so PR 3's zero-steady-state-allocation contract and the
// jobs=1 == jobs=N bit-identity guarantee both survive. The disciplines:
//
//  * kDropTail   — the paper's VOQ: bounded in packets, instantaneous-
//                  occupancy CE marking above a threshold K, and runtime-
//                  resizable capacity with drain-then-shrink semantics
//                  (reTCPdyn enlarges the VOQ to 50 packets ahead of a
//                  circuit day). Bit-identical to the pre-refactor Queue.
//  * kCodel      — CoDel (RFC 8289): drop at dequeue when the per-packet
//                  sojourn time has stayed above `codel_target` for a full
//                  `codel_interval`, then again at interval/sqrt(count)
//                  until the standing queue dissolves. `codel_ecn` marks
//                  ECN-capable packets instead of dropping them.
//  * kDelayMark  — delay-based ECN: CE-mark any ECN-capable packet whose
//                  instantaneous sojourn at dequeue exceeds a threshold
//                  (a sojourn analogue of DCTCP's occupancy marking).
//  * kSharedPool — dynamic threshold (DT) buffer sharing: every VOQ on a
//                  ToR draws from one SharedBufferPool, and a queue may
//                  admit only while occupancy < alpha * free_pool. A queue
//                  with no pool attached degrades to drop-tail.
//
// The occupancy-threshold ECN marker runs under every discipline (DCTCP's
// marking composes with any buffer-management policy); CoDel and delay-mark
// add dequeue-side behavior on top.
//
// Sojourn accounting: owners stamp Packet::enqueue_time at admission (Link
// and FabricPort already do) and pass the current time to Dequeue(now),
// which records the sojourn summary and gives the time-based disciplines
// their signal. PopRaw()/Restore() are the structural escape hatches for
// FabricPort's mode-flip repack: they move packets without touching the
// sojourn stats or the AQM state, so a repack is invisible to the
// discipline (the packets' admission promises already happened).
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tdtcp {

enum class QdiscKind : std::uint8_t {
  kDropTail,
  kCodel,
  kDelayMark,
  kSharedPool,
};

// Stable lowercase names for flags, sweep labels, and JSON.
const char* QdiscKindName(QdiscKind kind);
// Throws std::invalid_argument on an unknown name.
QdiscKind QdiscKindFromName(const std::string& name);

// The buffer pool a ToR's VOQs share under kSharedPool. Owned by the
// ToRSwitch; queues hold a non-owning pointer and keep `used` current as
// they admit and release packets.
struct SharedBufferPool {
  std::uint32_t total_packets = 0;
  std::uint32_t used = 0;

  std::uint32_t free_packets() const {
    return used < total_packets ? total_packets - used : 0;
  }
};

class QueueDisc {
 public:
  struct Config {
    QdiscKind kind = QdiscKind::kDropTail;
    std::uint32_t capacity_packets = 16;
    // CE-mark packets admitted while occupancy >= threshold. The default
    // (max) disables marking; DCTCP configs set a small K. Applies under
    // every discipline.
    std::uint32_t ecn_threshold_packets = std::numeric_limits<std::uint32_t>::max();

    // --- kCodel ------------------------------------------------------------
    // Defaults scale RFC 8289's 5ms/100ms to the RDCN's microsecond RTTs:
    // interval ~ the worst-case packet-TDN RTT (~100 us), target ~ 5% of
    // the interval (the RFC's own ratio).
    SimTime codel_target = SimTime::Micros(5);
    SimTime codel_interval = SimTime::Micros(100);
    // Mark ECN-capable packets instead of dropping them (the state machine
    // advances identically; NotEct packets are still dropped).
    bool codel_ecn = false;

    // --- kDelayMark --------------------------------------------------------
    SimTime delay_mark_threshold = SimTime::Micros(50);

    // --- kSharedPool -------------------------------------------------------
    // Per-queue DT threshold factor: admit while occupancy < alpha * free.
    double shared_alpha = 1.0;
    // Pool size the owning ToR provisions (the ToR takes the max over its
    // ports' configs when it creates the pool).
    std::uint32_t shared_pool_packets = 64;
  };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;    // all causes (tail, DT rejection, CoDel)
    std::uint64_t ce_marked = 0;  // all causes (threshold, CoDel, delay)
    std::uint32_t max_occupancy = 0;
    // Packets retained above capacity by a drain-then-shrink resize
    // (reTCPdyn 50 -> 16 at circuit teardown while the VOQ is still deep).
    std::uint64_t shrink_deferred = 0;

    // Per-discipline breakdowns (each also counted in dropped/ce_marked).
    std::uint64_t codel_drops = 0;
    std::uint64_t codel_marks = 0;
    std::uint64_t delay_marked = 0;
    std::uint64_t shared_rejected = 0;  // DT rejections below raw capacity

    // Sojourn summary over every packet Dequeue() *delivered* (a packet
    // CoDel consumed is a drop, not a delivery, so the distribution always
    // describes the delay the forwarded traffic experienced).
    // Histogram bucket b counts sojourns in [2^(b-1), 2^b) microseconds
    // (bucket 0: < 1 us; the last bucket absorbs the tail).
    static constexpr std::size_t kSojournBuckets = 22;
    std::uint64_t sojourn_count = 0;
    std::uint64_t sojourn_sum_us = 0;
    SimTime max_sojourn = SimTime::Zero();
    std::array<std::uint64_t, kSojournBuckets> sojourn_hist{};

    double mean_sojourn_us() const {
      return sojourn_count == 0
                 ? 0.0
                 : static_cast<double>(sojourn_sum_us) /
                       static_cast<double>(sojourn_count);
    }
    // Upper edge (us) of the histogram bucket containing the p-th
    // percentile sojourn (p in [0, 100]); 0 when nothing was dequeued.
    double SojournPercentileUs(double p) const;
  };

  explicit QueueDisc(Config config) : config_(config) {}
  QueueDisc() : QueueDisc(Config{}) {}

  // Admission. Returns false (and counts a drop) when the discipline
  // rejects the packet: occupancy at raw capacity, or — under kSharedPool —
  // at the dynamic threshold. Applies occupancy-threshold CE marking to
  // ECN-capable packets admitted above the threshold.
  bool Enqueue(Packet&& p);

  // Would Enqueue admit a packet right now? (No mutation, no stats.)
  bool CanEnqueue() const;

  // Service. `now` drives the sojourn accounting and the time-based
  // disciplines; under kCodel the call may consume queued packets (counting
  // codel_drops) before returning one, or return nullopt if the drops
  // emptied the queue.
  std::optional<Packet> Dequeue(SimTime now);

  // Burst service: pops up to `max` deliverable packets into `out[0..)` and
  // returns how many were delivered. Exactly equivalent to calling
  // Dequeue(now) repeatedly until `max` deliveries or an empty queue — the
  // AQM control law (CoDel state machine, delay marking, live occupancy)
  // runs per packet on identical state — but the sojourn-summary, shared-
  // pool, and shrink-watermark bookkeeping is folded into one update per
  // burst. A front packet larger than `max_packet_bytes` stops the burst
  // *before* being popped (the caller's "would this packet still belong to
  // the burst" predicate, e.g. Link's zero-serialization cap).
  std::size_t DequeueBurst(SimTime now, std::size_t max,
                           std::uint32_t max_packet_bytes, Packet* out);

  // Structural bulk drain, the batched form of `while (auto p = PopRaw())`:
  // moves every queued packet into `out` (appending) with the pool and
  // watermark accounting applied once. Same non-service semantics as
  // PopRaw — no sojourn stats, no AQM. For owners repacking a queue.
  void DrainRawInto(std::vector<Packet>& out);

  // Structural pop: front packet with pool/watermark accounting but no
  // sojourn stats and no AQM. For owners repacking a queue (FabricPort's
  // mode flip) — not a service path.
  std::optional<Packet> PopRaw();

  // Structural push, the inverse of PopRaw: re-admits a packet whose
  // admission promise was already given, bypassing the admission test (a
  // repack must never manufacture drops). Occupancy may transiently exceed
  // capacity here only if it already did before the repack; the
  // drain-then-shrink watermark is extended to keep WithinBound() honest.
  void Restore(Packet&& p);

  const Packet* Peek() const { return count_ == 0 ? nullptr : &ring_[head_]; }

  bool Empty() const { return count_ == 0; }
  std::uint32_t occupancy() const { return static_cast<std::uint32_t>(count_); }
  std::uint32_t capacity() const { return config_.capacity_packets; }
  QdiscKind kind() const { return config_.kind; }

  // Runtime resize (reTCPdyn, paper section 5.2). Shrinking below the current
  // occupancy performs a drain-then-shrink: admissions stop immediately (the
  // queue is over capacity), but the excess packets were legitimately
  // admitted under the enlarged promise and are retained until they drain
  // naturally -- dropping them would manufacture loss at every circuit
  // teardown. The retained excess is counted in Stats::shrink_deferred, and
  // occupancy is bounded by the pre-shrink watermark until it decays (see
  // WithinBound()). Identical semantics under every discipline.
  void set_capacity(std::uint32_t packets);
  void set_ecn_threshold(std::uint32_t packets) { config_.ecn_threshold_packets = packets; }

  // The VOQ occupancy invariant: occupancy <= capacity, except transiently
  // after a drain-then-shrink where the bound is the occupancy at shrink
  // time (monotonically non-increasing until it reaches capacity again).
  bool WithinBound() const {
    return count_ <= std::max(config_.capacity_packets, shrink_watermark_);
  }

  // Joins this queue to a ToR-level pool (kSharedPool only; ignored — and
  // harmless — under other kinds). Attach before any packet is admitted.
  void AttachSharedPool(SharedBufferPool* pool) { pool_ = pool; }
  const SharedBufferPool* shared_pool() const { return pool_; }

  const Config& config() const { return config_; }
  const Stats& stats() const { return stats_; }

 private:
  // Grows the circular buffer (power-of-two sizes). Called only when
  // occupancy reaches a new high-water mark; steady state never allocates.
  void Grow();
  void Push(Packet&& p);
  void RecordSojourn(SimTime sojourn);
  // CoDel per-dequeue decision. Returns false when `p` was consumed as a
  // CoDel drop; may CE-mark `p` in codel_ecn mode.
  bool CodelDeliver(Packet& p, SimTime sojourn, SimTime now);
  bool CodelOkToDrop(SimTime sojourn, SimTime now);
  SimTime CodelControlLaw(SimTime t) const;

  Config config_;
  std::vector<Packet> ring_;  // circular packet storage
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  Stats stats_;
  // Non-zero only while draining after a shrink below occupancy.
  std::uint32_t shrink_watermark_ = 0;

  // kSharedPool: non-owning; null = degrade to drop-tail.
  SharedBufferPool* pool_ = nullptr;

  // kCodel state machine (RFC 8289 names).
  SimTime codel_first_above_ = SimTime::Zero();
  SimTime codel_drop_next_ = SimTime::Zero();
  std::uint32_t codel_count_ = 0;
  bool codel_dropping_ = false;
};

}  // namespace tdtcp
