#include "net/topology.hpp"

#include <string>

namespace tdtcp {

Topology::Topology(Simulator& sim, Random& rng, const TopologyConfig& config)
    : config_(config) {
  const std::uint32_t total_hosts = config.num_racks * config.hosts_per_rack;
  hosts_.reserve(total_hosts);
  for (NodeId id = 0; id < total_hosts; ++id) {
    hosts_.push_back(std::make_unique<Host>(sim, id));
    hosts_.back()->set_notify_distribution(config.notify_dist);
  }

  tors_.reserve(config.num_racks);
  for (RackId r = 0; r < config.num_racks; ++r) {
    tors_.push_back(std::make_unique<ToRSwitch>(sim, r, config.notify, &rng));
    tors_.back()->SetRackResolver(
        [hpr = config.hosts_per_rack](NodeId id) { return id / hpr; });
    // The builder numbers hosts rack-major and attaches them in id order, so
    // the ToR can route with arithmetic instead of the resolver above.
    tors_.back()->SetUniformRackSize(config.hosts_per_rack);
  }

  // Rack machine NICs (shared by all hosts in the rack, per Fig. 6).
  Link::Config host_link;
  host_link.rate_bps = config.host_link_rate_bps;
  host_link.propagation = config.host_link_delay;
  host_link.queue = config.host_queue;

  for (RackId r = 0; r < config.num_racks; ++r) {
    Link::Config up = host_link;
    up.name = "rack" + std::to_string(r) + "-up";
    links_.push_back(std::make_unique<Link>(sim, up, tors_[r].get()));
    Link* uplink = links_.back().get();
    uplinks_.push_back(uplink);

    demuxes_.push_back(std::make_unique<RackDemux>(this));
    Link::Config down = host_link;
    down.name = "rack" + std::to_string(r) + "-down";
    links_.push_back(std::make_unique<Link>(sim, down, demuxes_.back().get()));
    Link* downlink = links_.back().get();
    downlinks_.push_back(downlink);

    for (std::uint32_t i = 0; i < config.hosts_per_rack; ++i) {
      Host* h = host(r, i);
      h->AttachUplink(uplink);
      tors_[r]->AttachHost(h->id(), downlink, h);
    }
  }

  // Full mesh of fabric ports between racks, starting on the packet network.
  for (RackId a = 0; a < config.num_racks; ++a) {
    for (RackId b = 0; b < config.num_racks; ++b) {
      if (a == b) continue;
      FabricPort::Config fp;
      fp.voq = config.voq;
      for (const auto& ov : config.voq_overrides) {
        if (ov.src == a && ov.dst == b) fp.voq = ov.voq;
      }
      fp.initial_mode = config.packet_mode;
      fp.reorder_jitter = config.fabric_reorder_jitter;
      fp.name = "fabric" + std::to_string(a) + "-" + std::to_string(b);
      tors_[a]->AddRemoteRack(b, fp, tors_[b].get());
    }
  }
}

}  // namespace tdtcp
