// The on-wire packet model.
//
// One flat struct covers every packet the system exchanges: TCP data, TCP
// ACKs (with SACK blocks, ECN echo, and the TDTCP TD_DATA_ACK option), the
// TD_CAPABLE handshake, MPTCP DSS mappings, and the ICMP TDN-change
// notification (§4.1). A simulator gains nothing from byte-level encoding;
// fields mirror the paper's packet formats (Fig. 5) one-to-one.
#pragma once

#include <array>
#include <cstdint>

#include "sim/time.hpp"

namespace tdtcp {

using NodeId = std::uint32_t;
using RackId = std::uint32_t;
using FlowId = std::uint32_t;
using TdnId = std::uint8_t;

inline constexpr NodeId kInvalidNode = 0xffffffff;
inline constexpr TdnId kNoTdn = 0xff;
inline constexpr RackId kAllRacks = 0xffffffff;

enum class PacketType : std::uint8_t {
  kData,       // TCP segment carrying payload (or SYN/FIN)
  kAck,        // pure TCP ACK
  kTdnNotify,  // ICMP TDN-change notification (Fig. 5a)
};

// IP-level ECN codepoints plus the TCP-level echo bits we need.
enum class Ecn : std::uint8_t { kNotEct, kEct0, kCe };

struct SackBlock {
  std::uint64_t start = 0;  // inclusive
  std::uint64_t end = 0;    // exclusive
  bool operator==(const SackBlock&) const = default;
};

inline constexpr int kMaxSackBlocks = 4;

// Which network a packet is forced onto, if any. MPTCP subflows are pinned
// (§2.2: "pinning one subflow to the packet network and one to the optical
// network"); everything else follows the ToR's time-division routing.
inline constexpr std::int8_t kUnpinned = -1;

struct Packet {
  // --- identity / routing -------------------------------------------------
  std::uint64_t id = 0;  // unique per simulation, for tracing
  FlowId flow = 0;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  PacketType type = PacketType::kData;
  std::uint32_t size_bytes = 0;  // wire size including headers
  std::int8_t pinned_path = kUnpinned;

  // --- TCP header ---------------------------------------------------------
  std::uint64_t seq = 0;        // first payload byte (64-bit: no wraparound)
  std::uint64_t ack = 0;        // cumulative ACK
  std::uint32_t payload = 0;    // payload bytes (0 for pure ACK)
  std::uint32_t rcv_window = 0; // advertised receive window (bytes)
  bool has_rwnd = false;        // rcv_window field is meaningful (zero = stall)
  bool syn = false;
  bool fin = false;
  bool rst = false;
  bool ece = false;  // ECN-Echo
  bool cwr = false;  // Congestion Window Reduced

  std::array<SackBlock, kMaxSackBlocks> sack{};
  std::uint8_t num_sack = 0;

  // --- IP / switch state --------------------------------------------------
  Ecn ecn = Ecn::kNotEct;
  // reTCP: the ToR stamps whether the circuit was up when it forwarded this
  // packet; receivers echo it back in `circuit_echo` on ACKs.
  bool circuit_mark = false;
  bool circuit_echo = false;

  // --- TDTCP options (Fig. 5b/5c) ------------------------------------------
  bool td_capable = false;      // TD_CAPABLE handshake option
  std::uint8_t td_num_tdns = 0; // # TDNs the sender observes
  TdnId data_tdn = kNoTdn;      // TD_DATA_ACK: TDN the data was sent on (D bit)
  TdnId ack_tdn = kNoTdn;       // TD_DATA_ACK: TDN the ACK was sent on (A bit)

  // --- ICMP TDN notification (Fig. 5a) -------------------------------------
  TdnId notify_tdn = kNoTdn;
  // reTCPdyn advance notice: the circuit will come up shortly (the ToR has
  // already enlarged its VOQ); senders may pre-ramp.
  bool circuit_imminent = false;
  // Multi-rack extension: the notification applies only to paths toward
  // this rack (kAllRacks = fabric-wide, the paper's two-rack semantics).
  RackId notify_peer = 0xffffffff;
  // Controller-stamped generation number. Hosts drop a sequenced
  // notification whose seq is <= the last one they applied for the same
  // peer scope, making duplicated/reordered/stale deliveries idempotent
  // (§3.2). Zero means unsequenced: always delivered (hand-crafted tests).
  std::uint64_t notify_seq = 0;

  // --- MPTCP --------------------------------------------------------------
  std::uint8_t subflow = 0;       // subflow index the segment belongs to
  bool has_dss = false;           // carries a data-sequence mapping
  std::uint64_t dss_seq = 0;      // data-level sequence of first payload byte
  std::uint64_t dss_ack = 0;      // data-level cumulative ACK
  std::uint64_t dss_rwnd = 0;     // meta-level receive window (bytes)
  bool is_mptcp = false;

  // --- timestamps (simulator-side metadata, not header bytes) --------------
  SimTime sent_time = SimTime::Zero();     // when the sender transmitted it
  SimTime enqueue_time = SimTime::Zero();  // last queue admission (for delay)

  // Intrusive link for a link-level same-tick burst (src/net/link.cpp):
  // valid only between burst formation and delivery, never once a sink has
  // taken the packet. Not header bytes; carries no protocol meaning.
  Packet* burst_next = nullptr;

  bool IsAckLike() const { return type == PacketType::kAck || payload == 0; }
};

}  // namespace tdtcp
