#include "app/flow_cdf.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tdtcp {

FlowSizeCdf::FlowSizeCdf(std::string name, std::vector<Point> points)
    : name_(std::move(name)), points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("FlowSizeCdf '" + name_ +
                                "': need at least two (bytes, cum) rows");
  }
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    if (!(p.bytes >= 0) || !(p.cum >= 0) || !(p.cum <= 1)) {
      throw std::invalid_argument("FlowSizeCdf '" + name_ +
                                  "': row out of range at index " +
                                  std::to_string(i));
    }
    if (i > 0 && (p.bytes < points_[i - 1].bytes ||
                  p.cum < points_[i - 1].cum)) {
      throw std::invalid_argument("FlowSizeCdf '" + name_ +
                                  "': bytes/cum must be nondecreasing (row " +
                                  std::to_string(i) + ")");
    }
  }
  if (points_.back().cum != 1.0) {
    throw std::invalid_argument("FlowSizeCdf '" + name_ +
                                "': last row must have cum == 1");
  }
}

FlowSizeCdf FlowSizeCdf::Websearch() {
  // DCTCP §2.2 web-search flow sizes, as distributed with the
  // pFabric/Conga-style simulation scripts. Mean ≈ 1.71 MB.
  return FlowSizeCdf("websearch", {
                                      {0, 0},
                                      {10'000, 0.15},
                                      {20'000, 0.20},
                                      {30'000, 0.30},
                                      {50'000, 0.40},
                                      {80'000, 0.53},
                                      {200'000, 0.60},
                                      {1'000'000, 0.70},
                                      {2'000'000, 0.80},
                                      {5'000'000, 0.90},
                                      {10'000'000, 0.97},
                                      {30'000'000, 1.00},
                                  });
}

FlowSizeCdf FlowSizeCdf::Datamining() {
  // VL2 data-mining flow sizes: mostly mice, bytes in a super-heavy tail.
  return FlowSizeCdf("datamining", {
                                       {80, 0},
                                       {180, 0.10},
                                       {250, 0.20},
                                       {560, 0.30},
                                       {900, 0.40},
                                       {1'100, 0.50},
                                       {1'870, 0.60},
                                       {3'160, 0.70},
                                       {10'000, 0.80},
                                       {400'000, 0.90},
                                       {3'160'000, 0.95},
                                       {100'000'000, 0.98},
                                       {1'000'000'000, 1.00},
                                   });
}

FlowSizeCdf FlowSizeCdf::FromFile(const std::string& path) {
  std::ifstream f(path);
  if (!f) {
    throw std::invalid_argument("FlowSizeCdf: cannot open " + path);
  }
  std::vector<Point> points;
  std::string line;
  while (std::getline(f, line)) {
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream row(line);
    std::vector<double> cols;
    double v;
    while (row >> v) cols.push_back(v);
    if (cols.empty()) continue;  // blank / comment-only line
    if (cols.size() < 2) {
      throw std::invalid_argument("FlowSizeCdf: " + path +
                                  ": row needs >= 2 columns: '" + line + "'");
    }
    // cdf.h format: first column bytes, last column cumulative probability
    // (classic three-column files carry an unused middle field).
    points.push_back(Point{cols.front(), cols.back()});
  }
  return FlowSizeCdf(path, std::move(points));
}

double FlowSizeCdf::BytesAtQuantile(double u) const {
  u = std::clamp(u, 0.0, 1.0);
  if (u <= points_.front().cum) return points_.front().bytes;
  // First row with cum >= u; rows are nondecreasing in cum.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), u,
      [](const Point& p, double q) { return p.cum < q; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double span = hi.cum - lo.cum;
  if (span <= 0) return hi.bytes;  // vertical step: the whole mass sits here
  const double frac = (u - lo.cum) / span;
  return lo.bytes + frac * (hi.bytes - lo.bytes);
}

std::uint64_t FlowSizeCdf::Sample(Random& rng) const {
  const double bytes = BytesAtQuantile(rng.UniformDouble(0.0, 1.0));
  return static_cast<std::uint64_t>(
      std::max<double>(1.0, std::llround(bytes)));
}

double FlowSizeCdf::MeanBytes() const {
  // Trapezoid rule over the rows; mass below the first row (cum_0 > 0)
  // sits entirely at the first row's size.
  double mean = points_.front().cum * points_.front().bytes;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double mass = points_[i].cum - points_[i - 1].cum;
    mean += mass * 0.5 * (points_[i].bytes + points_[i - 1].bytes);
  }
  return mean;
}

std::shared_ptr<const FlowSizeCdf> BuiltinFlowSizeCdf(const std::string& name) {
  if (name == "websearch") {
    return std::make_shared<const FlowSizeCdf>(FlowSizeCdf::Websearch());
  }
  if (name == "datamining") {
    return std::make_shared<const FlowSizeCdf>(FlowSizeCdf::Datamining());
  }
  throw std::invalid_argument("unknown built-in flow-size CDF: " + name +
                              " (expected websearch | datamining)");
}

}  // namespace tdtcp
