#include "app/workload.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "cc/registry.hpp"

namespace tdtcp {

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kReno: return "reno";
    case Variant::kCubic: return "cubic";
    case Variant::kDctcp: return "dctcp";
    case Variant::kRetcp: return "retcp";
    case Variant::kRetcpDyn: return "retcpdyn";
    case Variant::kMptcp: return "mptcp";
    case Variant::kTdtcp: return "tdtcp";
  }
  return "?";
}

Variant VariantFromName(std::string_view name) {
  if (name == "reno") return Variant::kReno;
  if (name == "cubic") return Variant::kCubic;
  if (name == "dctcp") return Variant::kDctcp;
  if (name == "retcp") return Variant::kRetcp;
  if (name == "retcpdyn") return Variant::kRetcpDyn;
  if (name == "mptcp") return Variant::kMptcp;
  if (name == "tdtcp") return Variant::kTdtcp;
  throw std::invalid_argument("unknown variant: " + std::string(name));
}

std::size_t FctBucketOf(std::uint64_t bytes) {
  for (std::size_t b = 0; b + 1 < kNumFctBuckets; ++b) {
    if (bytes <= kFctBucketUpperBytes[b]) return b;
  }
  return kNumFctBuckets - 1;
}

const char* RackPolicyName(RackPolicy p) {
  switch (p) {
    case RackPolicy::kFixedPair: return "pair";
    case RackPolicy::kUniform: return "uniform";
    case RackPolicy::kPermutation: return "permutation";
    case RackPolicy::kHotspot: return "hotspot";
  }
  return "?";
}

RackPolicy RackPolicyFromName(std::string_view name) {
  if (name == "pair") return RackPolicy::kFixedPair;
  if (name == "uniform") return RackPolicy::kUniform;
  if (name == "permutation") return RackPolicy::kPermutation;
  if (name == "hotspot") return RackPolicy::kHotspot;
  throw std::invalid_argument("unknown rack policy: " + std::string(name));
}

TcpConfig MakeVariantConfig(Variant v, TcpConfig base) {
  switch (v) {
    case Variant::kReno:
      base.cc_factory = MakeCcFactory("reno");
      break;
    case Variant::kCubic:
      base.cc_factory = MakeCcFactory("cubic");
      break;
    case Variant::kDctcp:
      base.cc_factory = MakeCcFactory("dctcp");
      base.ecn_enabled = true;
      break;
    case Variant::kRetcp:
      base.cc_factory = MakeCcFactory("retcp");
      break;
    case Variant::kRetcpDyn:
      base.cc_factory = MakeCcFactory("retcpdyn");
      break;
    case Variant::kMptcp:
      // Subflow config; the MptcpConnection fills in pinning/DSS fields.
      base.cc_factory = MakeCcFactory("cubic");
      break;
    case Variant::kTdtcp:
      base.cc_factory = MakeCcFactory("cubic");  // §3.5: CUBIC in every TDN
      base.tdtcp_enabled = true;
      if (base.num_tdns < 2) base.num_tdns = 2;
      break;
  }
  return base;
}

std::uint64_t Flow::bytes_acked() const {
  if (tcp_sender) return tcp_sender->bytes_acked();
  if (mptcp_sender) return mptcp_sender->meta_bytes_acked();
  return 0;
}

std::uint64_t Flow::reorder_events() const {
  if (tcp_sender) return tcp_sender->stats().reorder_events;
  if (mptcp_sender) return mptcp_sender->reorder_events();
  return 0;
}

std::uint64_t Flow::reorder_marked_lost() const {
  if (tcp_sender) return tcp_sender->stats().reorder_marked_lost;
  if (mptcp_sender) return mptcp_sender->reorder_marked_lost();
  return 0;
}

std::uint64_t Flow::retransmissions() const {
  if (tcp_sender) return tcp_sender->stats().retransmissions;
  if (mptcp_sender) {
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < 2; ++i) {
      total += const_cast<MptcpConnection*>(mptcp_sender.get())
                   ->subflow(i)->stats().retransmissions;
    }
    return total;
  }
  return 0;
}

std::uint64_t Flow::duplicate_segments() const {
  if (tcp_receiver) return tcp_receiver->stats().duplicate_segments;
  if (mptcp_receiver) {
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < 2; ++i) {
      total += const_cast<MptcpConnection*>(mptcp_receiver.get())
                   ->subflow(i)->stats().duplicate_segments;
    }
    return total;
  }
  return 0;
}

namespace {

// Rack-pair sanity shared by Workload and fixed-pair churn. Throws (not
// assert): the default RelWithDebInfo build defines NDEBUG, and a bad rack
// index must not silently read past the rack array.
void ValidateRackPair(const Topology& topo, RackId src, RackId dst,
                      const char* what) {
  const std::uint32_t racks = topo.config().num_racks;
  if (src >= racks || dst >= racks) {
    throw std::invalid_argument(
        std::string(what) + ": rack out of range (src=" + std::to_string(src) +
        ", dst=" + std::to_string(dst) + ", num_racks=" +
        std::to_string(racks) + ")");
  }
  if (src == dst) {
    throw std::invalid_argument(
        std::string(what) + ": src_rack == dst_rack (" + std::to_string(src) +
        ") — intra-rack traffic never touches a fabric port");
  }
}

// SplitMix64: derives a well-mixed per-source seed from a node id so source
// streams are independent even for adjacent ids.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

Workload::Workload(Simulator& sim, Topology& topo, WorkloadConfig config)
    : config_(std::move(config)) {
  ValidateRackPair(topo, config_.src_rack, config_.dst_rack, "Workload");
  if (config_.num_flows > topo.config().hosts_per_rack) {
    throw std::invalid_argument(
        "Workload: num_flows (" + std::to_string(config_.num_flows) +
        ") exceeds hosts_per_rack (" +
        std::to_string(topo.config().hosts_per_rack) + ")");
  }
  for (std::uint32_t i = 0; i < config_.num_flows; ++i) {
    const FlowId id = config_.first_flow_id + i;
    Host* src = topo.host(config_.src_rack, i);
    Host* dst = topo.host(config_.dst_rack, i);
    Flow flow;
    if (config_.variant == Variant::kMptcp) {
      MptcpConnection::Config mc = config_.mptcp;
      mc.subflow = MakeVariantConfig(config_.variant, config_.base);
      flow.mptcp_receiver = std::make_unique<MptcpConnection>(
          sim, dst, id, src->id(), mc);
      flow.mptcp_sender = std::make_unique<MptcpConnection>(
          sim, src, id, dst->id(), mc);
    } else {
      TcpConfig tc = MakeVariantConfig(config_.variant, config_.base);
      TcpConfig rc = tc;
      if (config_.scope_tdn_to_peer) {
        tc.peer_rack = config_.dst_rack;
        rc.peer_rack = config_.src_rack;
      }
      flow.tcp_receiver = std::make_unique<TcpConnection>(
          sim, dst, id, src->id(), rc);
      flow.tcp_sender = std::make_unique<TcpConnection>(
          sim, src, id, dst->id(), tc);
    }
    flows_.push_back(std::move(flow));
  }
}

void Workload::Start() {
  for (auto& f : flows_) {
    if (f.tcp_sender) {
      f.tcp_receiver->Listen();
      f.tcp_sender->Connect();
      f.tcp_sender->SetUnlimitedData(true);
    } else {
      f.mptcp_receiver->Listen();
      f.mptcp_sender->Connect();
      f.mptcp_sender->SetUnlimitedData(true);
    }
  }
}

std::uint64_t Workload::total_bytes_acked() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f.bytes_acked();
  return total;
}

std::uint64_t Workload::total_reorder_events() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f.reorder_events();
  return total;
}

std::uint64_t Workload::total_reorder_marked_lost() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f.reorder_marked_lost();
  return total;
}

std::uint64_t Workload::total_duplicate_segments() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f.duplicate_segments();
  return total;
}

// --- connection churn --------------------------------------------------------

ChurnGenerator::ChurnGenerator(Simulator& sim, Topology& topo,
                               ChurnConfig config, std::uint64_t seed)
    : sim_(sim),
      topo_(topo),
      config_(std::move(config)),
      rng_(seed ^ config_.seed_salt),
      slots_(config_.max_concurrent),
      next_flow_(config_.first_flow_id) {
  if (config_.variant == Variant::kMptcp) {
    throw std::invalid_argument(
        "churn uses plain TcpConnection pairs; pick a non-MPTCP variant");
  }
  double mix_weight = 0.0;
  for (const TenantShare& t : config_.tenant_mix) {
    if (t.variant == Variant::kMptcp) {
      throw std::invalid_argument(
          "churn tenant mix: kMptcp tenants are not supported (churn cycles "
          "are single-subflow TcpConnection pairs)");
    }
    if (!(t.weight > 0.0)) {
      throw std::invalid_argument(
          "churn tenant mix: every tenant weight must be > 0");
    }
    mix_weight += t.weight;
  }
  mix_weight_ = mix_weight;
  if (config_.max_concurrent == 0) {
    throw std::invalid_argument("churn: max_concurrent must be > 0");
  }
  if (config_.min_transfer_bytes == 0 ||
      config_.min_transfer_bytes > config_.max_transfer_bytes) {
    throw std::invalid_argument(
        "churn: need 0 < min_transfer_bytes <= max_transfer_bytes");
  }
  const std::uint32_t racks = topo_.config().num_racks;
  if (config_.rack_policy == RackPolicy::kFixedPair) {
    ValidateRackPair(topo_, config_.src_rack, config_.dst_rack, "churn");
  } else {
    if (racks < 2) {
      throw std::invalid_argument(
          "churn: multi-source rack policies need num_racks >= 2 (got " +
          std::to_string(racks) + ")");
    }
    if (config_.rack_policy == RackPolicy::kHotspot) {
      if (config_.hotspot_rack >= racks) {
        throw std::invalid_argument(
            "churn: hotspot_rack " + std::to_string(config_.hotspot_rack) +
            " out of range (num_racks=" + std::to_string(racks) + ")");
      }
      if (config_.hotspot_fraction < 0.0 || config_.hotspot_fraction > 1.0) {
        throw std::invalid_argument(
            "churn: hotspot_fraction must be in [0, 1]");
      }
    }
    // Every host in every rack is an independent source. Stream seeds are
    // splitmix-derived from the node id so a source's draws do not depend on
    // how its arrivals interleave with other sources'.
    sources_.reserve(static_cast<std::size_t>(racks) *
                     topo_.config().hosts_per_rack);
    for (RackId r = 0; r < racks; ++r) {
      for (std::uint32_t h = 0; h < topo_.config().hosts_per_rack; ++h) {
        Source s;
        s.rack = r;
        s.host = h;
        s.rng = Random(seed ^ config_.seed_salt ^
                       SplitMix64(topo_.host_id(r, h) + 1));
        sources_.push_back(std::move(s));
      }
    }
    if (config_.rack_policy == RackPolicy::kPermutation) {
      permutation_shift_ = static_cast<RackId>(
          rng_.UniformInt(1, static_cast<std::int64_t>(racks) - 1));
    }
  }
  // Lowest index pops first.
  free_.reserve(slots_.size());
  for (std::uint32_t i = static_cast<std::uint32_t>(slots_.size()); i > 0; --i) {
    free_.push_back(i - 1);
  }
}

void ChurnGenerator::Start() {
  if (config_.rack_policy == RackPolicy::kFixedPair) {
    ScheduleArrival();
    return;
  }
  for (std::uint32_t s = 0; s < sources_.size(); ++s) {
    ScheduleSourceArrival(s);
  }
}

void ChurnGenerator::ScheduleArrival() {
  if (stats_.opened >= config_.target_connections) return;
  const double mean_ps =
      static_cast<double>(config_.mean_interarrival.picos());
  const auto gap_ps =
      std::max<std::int64_t>(1, std::llround(rng_.Exponential(mean_ps)));
  sim_.Schedule(SimTime::Picos(gap_ps), [this] { OnArrival(); });
}

void ChurnGenerator::OnArrival() {
  if (stats_.opened >= config_.target_connections) return;
  if (free_.empty()) {
    ++stats_.deferred;
    ScheduleArrival();
    return;
  }
  const std::uint64_t bytes = DrawBytes(rng_);
  const Variant variant = DrawVariant(rng_);
  const std::uint32_t host_idx =
      free_.back() % topo_.config().hosts_per_rack;
  OpenSlot(config_.src_rack, host_idx, config_.dst_rack, host_idx, bytes,
           variant);
  ScheduleArrival();
}

void ChurnGenerator::ScheduleSourceArrival(std::uint32_t s) {
  if (stats_.opened >= config_.target_connections) return;
  const double mean_ps =
      static_cast<double>(config_.mean_interarrival.picos());
  const auto gap_ps = std::max<std::int64_t>(
      1, std::llround(sources_[s].rng.Exponential(mean_ps)));
  sim_.Schedule(SimTime::Picos(gap_ps), [this, s] { OnSourceArrival(s); });
}

void ChurnGenerator::OnSourceArrival(std::uint32_t s) {
  if (stats_.opened >= config_.target_connections) return;
  Source& src = sources_[s];
  if (free_.empty()) {
    ++stats_.deferred;
    ScheduleSourceArrival(s);
    return;
  }
  const RackId dst_rack = PickDstRack(src.rack, src.rng);
  const std::uint32_t dst_host = static_cast<std::uint32_t>(src.rng.UniformInt(
      0, static_cast<std::int64_t>(topo_.config().hosts_per_rack) - 1));
  const std::uint64_t bytes = DrawBytes(src.rng);
  const Variant variant = DrawVariant(src.rng);
  OpenSlot(src.rack, src.host, dst_rack, dst_host, bytes, variant);
  ScheduleSourceArrival(s);
}

RackId ChurnGenerator::PickDstRack(RackId src_rack, Random& rng) {
  const std::uint32_t racks = topo_.config().num_racks;
  switch (config_.rack_policy) {
    case RackPolicy::kFixedPair:
      return config_.dst_rack;
    case RackPolicy::kPermutation:
      return (src_rack + permutation_shift_) % racks;
    case RackPolicy::kHotspot:
      if (src_rack != config_.hotspot_rack &&
          rng.Bernoulli(config_.hotspot_fraction)) {
        return config_.hotspot_rack;
      }
      break;  // fall through to uniform-excluding-self
    case RackPolicy::kUniform:
      break;
  }
  const RackId r = static_cast<RackId>(
      rng.UniformInt(0, static_cast<std::int64_t>(racks) - 2));
  return r >= src_rack ? r + 1 : r;
}

Variant ChurnGenerator::DrawVariant(Random& rng) {
  if (config_.tenant_mix.empty()) return config_.variant;
  // One weighted draw from the arrival's own stream, so the tenant sequence
  // is deterministic per seed and independent of other sources' interleaving.
  double x = rng.UniformDouble(0.0, mix_weight_);
  for (const TenantShare& t : config_.tenant_mix) {
    if (x < t.weight) return t.variant;
    x -= t.weight;
  }
  return config_.tenant_mix.back().variant;  // FP-edge fallback
}

std::uint64_t ChurnGenerator::DrawBytes(Random& rng) {
  if (config_.size_cdf == nullptr) {
    return static_cast<std::uint64_t>(rng.UniformInt(
        static_cast<std::int64_t>(config_.min_transfer_bytes),
        static_cast<std::int64_t>(config_.max_transfer_bytes)));
  }
  std::uint64_t bytes = config_.size_cdf->Sample(rng);
  if (config_.size_scale != 1.0) {
    bytes = static_cast<std::uint64_t>(std::max<double>(
        1.0, std::llround(static_cast<double>(bytes) * config_.size_scale)));
  }
  if (config_.size_cap_bytes != 0) {
    bytes = std::min(bytes, config_.size_cap_bytes);
  }
  return bytes;
}

void ChurnGenerator::OpenSlot(RackId src_rack, std::uint32_t src_host,
                              RackId dst_rack, std::uint32_t dst_host,
                              std::uint64_t bytes, Variant variant) {
  const std::uint32_t idx = free_.back();
  free_.pop_back();
  Slot& slot = slots_[idx];
  slot.flow = next_flow_++;
  slot.opened_at = sim_.now();
  slot.closed_ends = 0;
  slot.sender_reason = CloseReason::kNone;
  slot.receiver_reason = CloseReason::kNone;
  slot.in_use = true;
  slot.bytes = bytes;

  Host* src = topo_.host(src_rack, src_host);
  Host* dst = topo_.host(dst_rack, dst_host);
  slot.src_node = src->id();
  slot.dst_node = dst->id();

  TcpConfig tc = MakeVariantConfig(variant, config_.base);
  TcpConfig rc = tc;
  if (config_.scope_tdn_to_peer) {
    tc.peer_rack = dst_rack;
    rc.peer_rack = src_rack;
  }
  rc.close_on_peer_fin = true;  // server: close as soon as the request ends
  slot.receiver = std::make_unique<TcpConnection>(sim_, dst, slot.flow,
                                                  src->id(), rc);
  slot.receiver->SetClosedCallback([this, idx](CloseReason reason) {
    OnEndClosed(idx, /*sender_end=*/false, reason);
  });
  if (trace_ring_ != nullptr) slot.receiver->SetTraceRing(trace_ring_);
  slot.receiver->Listen();

  slot.sender = std::make_unique<TcpConnection>(sim_, src, slot.flow,
                                                dst->id(), tc);
  slot.sender->SetClosedCallback([this, idx](CloseReason reason) {
    OnEndClosed(idx, /*sender_end=*/true, reason);
  });
  if (trace_ring_ != nullptr) slot.sender->SetTraceRing(trace_ring_);
  slot.sender->Connect();
  slot.sender->AddAppData(bytes);
  slot.sender->Close();  // lingering close: the FIN rides behind the data

  slot.timeout = sim_.Schedule(config_.slot_timeout,
                               [this, idx] { OnSlotTimeout(idx); });
  ++stats_.opened;
  ++stats_.opened_by_variant[static_cast<std::size_t>(variant)];
  ++active_;
}

void ChurnGenerator::OnEndClosed(std::uint32_t idx, bool sender_end,
                                 CloseReason reason) {
  Slot& slot = slots_[idx];
  assert(slot.in_use);
  if (sender_end) {
    slot.sender_reason = reason;
  } else {
    slot.receiver_reason = reason;
  }
  if (++slot.closed_ends < 2) return;

  // Both endpoints reached kClosed: the cycle is complete.
  if (slot.timeout != kInvalidEventId) {
    sim_.Cancel(slot.timeout);
    slot.timeout = kInvalidEventId;
  }
  ++stats_.closed;
  ++stats_.reasons[static_cast<std::size_t>(slot.sender_reason)];
  stats_.bytes_completed += slot.sender->bytes_acked();
  if (slot.sender_reason == CloseReason::kNormal) {
    fcts_.push_back(sim_.now() - slot.opened_at);
    sized_fcts_.push_back(SizedFct{slot.bytes, sim_.now() - slot.opened_at});
  }
  Fold(slot.flow);
  Fold(slot.src_node);
  Fold(slot.dst_node);
  Fold(slot.bytes);
  Fold(static_cast<std::uint64_t>(slot.opened_at.picos()));
  Fold(static_cast<std::uint64_t>(sim_.now().picos()));
  Fold((static_cast<std::uint64_t>(slot.sender_reason) << 8) |
       static_cast<std::uint64_t>(slot.receiver_reason));
  --active_;
  // We are inside the second endpoint's ToClosed: its ClosedFn must not
  // destroy the connection synchronously. Reclaim on the next event.
  sim_.Schedule(SimTime::Zero(), [this, idx] { Reclaim(idx); });
}

void ChurnGenerator::OnSlotTimeout(std::uint32_t idx) {
  Slot& slot = slots_[idx];
  slot.timeout = kInvalidEventId;
  if (!slot.in_use || slot.closed_ends >= 2) return;
  ++stats_.app_timeouts;
  // Abort whichever ends are still open; each Abort fires OnEndClosed
  // synchronously, and the second one schedules the reclamation.
  if (slot.sender->state() != TcpConnection::State::kClosed) {
    slot.sender->Abort(CloseReason::kUserAbort);
  }
  if (slot.receiver->state() != TcpConnection::State::kClosed) {
    slot.receiver->Abort(CloseReason::kUserAbort);
  }
}

void ChurnGenerator::Reclaim(std::uint32_t idx) {
  Slot& slot = slots_[idx];
  slot.sender.reset();
  slot.receiver.reset();
  slot.in_use = false;
  free_.push_back(idx);
}

void ChurnGenerator::Fold(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    hash_ ^= (v >> (8 * i)) & 0xff;
    hash_ *= 1099511628211ull;  // FNV prime
  }
}

}  // namespace tdtcp
