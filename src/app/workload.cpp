#include "app/workload.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "cc/registry.hpp"

namespace tdtcp {

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kReno: return "reno";
    case Variant::kCubic: return "cubic";
    case Variant::kDctcp: return "dctcp";
    case Variant::kRetcp: return "retcp";
    case Variant::kRetcpDyn: return "retcpdyn";
    case Variant::kMptcp: return "mptcp";
    case Variant::kTdtcp: return "tdtcp";
  }
  return "?";
}

Variant VariantFromName(std::string_view name) {
  if (name == "reno") return Variant::kReno;
  if (name == "cubic") return Variant::kCubic;
  if (name == "dctcp") return Variant::kDctcp;
  if (name == "retcp") return Variant::kRetcp;
  if (name == "retcpdyn") return Variant::kRetcpDyn;
  if (name == "mptcp") return Variant::kMptcp;
  if (name == "tdtcp") return Variant::kTdtcp;
  throw std::invalid_argument("unknown variant: " + std::string(name));
}

TcpConfig MakeVariantConfig(Variant v, TcpConfig base) {
  switch (v) {
    case Variant::kReno:
      base.cc_factory = MakeCcFactory("reno");
      break;
    case Variant::kCubic:
      base.cc_factory = MakeCcFactory("cubic");
      break;
    case Variant::kDctcp:
      base.cc_factory = MakeCcFactory("dctcp");
      base.ecn_enabled = true;
      break;
    case Variant::kRetcp:
      base.cc_factory = MakeCcFactory("retcp");
      break;
    case Variant::kRetcpDyn:
      base.cc_factory = MakeCcFactory("retcpdyn");
      break;
    case Variant::kMptcp:
      // Subflow config; the MptcpConnection fills in pinning/DSS fields.
      base.cc_factory = MakeCcFactory("cubic");
      break;
    case Variant::kTdtcp:
      base.cc_factory = MakeCcFactory("cubic");  // §3.5: CUBIC in every TDN
      base.tdtcp_enabled = true;
      if (base.num_tdns < 2) base.num_tdns = 2;
      break;
  }
  return base;
}

std::uint64_t Flow::bytes_acked() const {
  if (tcp_sender) return tcp_sender->bytes_acked();
  if (mptcp_sender) return mptcp_sender->meta_bytes_acked();
  return 0;
}

std::uint64_t Flow::reorder_events() const {
  if (tcp_sender) return tcp_sender->stats().reorder_events;
  if (mptcp_sender) return mptcp_sender->reorder_events();
  return 0;
}

std::uint64_t Flow::reorder_marked_lost() const {
  if (tcp_sender) return tcp_sender->stats().reorder_marked_lost;
  if (mptcp_sender) return mptcp_sender->reorder_marked_lost();
  return 0;
}

std::uint64_t Flow::retransmissions() const {
  if (tcp_sender) return tcp_sender->stats().retransmissions;
  if (mptcp_sender) {
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < 2; ++i) {
      total += const_cast<MptcpConnection*>(mptcp_sender.get())
                   ->subflow(i)->stats().retransmissions;
    }
    return total;
  }
  return 0;
}

std::uint64_t Flow::duplicate_segments() const {
  if (tcp_receiver) return tcp_receiver->stats().duplicate_segments;
  if (mptcp_receiver) {
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < 2; ++i) {
      total += const_cast<MptcpConnection*>(mptcp_receiver.get())
                   ->subflow(i)->stats().duplicate_segments;
    }
    return total;
  }
  return 0;
}

Workload::Workload(Simulator& sim, Topology& topo, WorkloadConfig config)
    : config_(std::move(config)) {
  assert(config_.num_flows <= topo.config().hosts_per_rack);
  for (std::uint32_t i = 0; i < config_.num_flows; ++i) {
    const FlowId id = config_.first_flow_id + i;
    Host* src = topo.host(config_.src_rack, i);
    Host* dst = topo.host(config_.dst_rack, i);
    Flow flow;
    if (config_.variant == Variant::kMptcp) {
      MptcpConnection::Config mc = config_.mptcp;
      mc.subflow = MakeVariantConfig(config_.variant, config_.base);
      flow.mptcp_receiver = std::make_unique<MptcpConnection>(
          sim, dst, id, src->id(), mc);
      flow.mptcp_sender = std::make_unique<MptcpConnection>(
          sim, src, id, dst->id(), mc);
    } else {
      const TcpConfig tc = MakeVariantConfig(config_.variant, config_.base);
      flow.tcp_receiver = std::make_unique<TcpConnection>(
          sim, dst, id, src->id(), tc);
      flow.tcp_sender = std::make_unique<TcpConnection>(
          sim, src, id, dst->id(), tc);
    }
    flows_.push_back(std::move(flow));
  }
}

void Workload::Start() {
  for (auto& f : flows_) {
    if (f.tcp_sender) {
      f.tcp_receiver->Listen();
      f.tcp_sender->Connect();
      f.tcp_sender->SetUnlimitedData(true);
    } else {
      f.mptcp_receiver->Listen();
      f.mptcp_sender->Connect();
      f.mptcp_sender->SetUnlimitedData(true);
    }
  }
}

std::uint64_t Workload::total_bytes_acked() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f.bytes_acked();
  return total;
}

std::uint64_t Workload::total_reorder_events() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f.reorder_events();
  return total;
}

std::uint64_t Workload::total_reorder_marked_lost() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f.reorder_marked_lost();
  return total;
}

std::uint64_t Workload::total_duplicate_segments() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f.duplicate_segments();
  return total;
}

}  // namespace tdtcp
