#include "app/result_io.hpp"

#include <cctype>
#include <cstdio>
#include <set>
#include <stdexcept>

namespace tdtcp {

// --- JSON writing -----------------------------------------------------------
// (NumberToJson/EscapeJson/ParseJson come from sim/json.)

namespace {

void AppendMetricStats(std::string& out, const MetricStats& s) {
  out += "{\"mean\":" + NumberToJson(s.mean);
  out += ",\"stddev\":" + NumberToJson(s.stddev);
  out += ",\"ci95\":" + NumberToJson(s.ci95);
  out += ",\"n\":" + NumberToJson(static_cast<double>(s.n)) + "}";
}

}  // namespace

std::string SweepToJson(const SweepResult& sweep) {
  std::string out;
  out += "{\"schema\":\"";
  out += kSweepSchemaVersion;
  out += "\",\"jobs\":" + NumberToJson(sweep.jobs);
  out += ",\"wall_seconds\":" + NumberToJson(sweep.wall_seconds);
  out += ",\"cells\":[";
  for (std::size_t c = 0; c < sweep.cells.size(); ++c) {
    const SweepCell& cell = sweep.cells[c];
    if (c) out += ",";
    out += "{\"label\":\"" + EscapeJson(cell.label) + "\"";
    out += ",\"variant\":\"" + EscapeJson(VariantName(cell.variant)) + "\"";
    out += ",\"schedule\":\"" + EscapeJson(cell.schedule_label) + "\"";
    out += ",\"qdisc\":\"" + EscapeJson(cell.qdisc_label) + "\"";
    out += ",\"duration_ps\":" +
           NumberToJson(static_cast<double>(cell.duration.picos()));
    out += ",\"duration_ms\":" + NumberToJson(cell.duration.millis_f());
    out += ",\"runs\":[";
    for (std::size_t r = 0; r < cell.runs.size(); ++r) {
      const SweepRun& run = cell.runs[r];
      if (r) out += ",";
      out += "{\"seed\":" + NumberToJson(static_cast<double>(run.seed));
      out += ",\"metrics\":{";
      const auto metrics = ScalarMetrics(run.result);
      for (std::size_t m = 0; m < metrics.size(); ++m) {
        if (m) out += ",";
        out += "\"" + EscapeJson(metrics[m].first) +
               "\":" + NumberToJson(metrics[m].second);
      }
      out += "}}";
    }
    out += "],\"aggregates\":{";
    for (std::size_t m = 0; m < cell.metrics.size(); ++m) {
      if (m) out += ",";
      out += "\"" + EscapeJson(cell.metrics[m].first) + "\":";
      AppendMetricStats(out, cell.metrics[m].second);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void WriteSweepJson(const std::string& path, const SweepResult& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot open " + path);
  const std::string json = SweepToJson(sweep);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

// --- JSON parsing -----------------------------------------------------------

namespace {

double RequireNumber(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  if (!v || v->type != JsonValue::Type::kNumber) {
    throw std::runtime_error("tdtcp-sweep: missing numeric field " + key);
  }
  return v->number;
}

// Applies a named scalar metric back onto an ExperimentResult, inverting
// ScalarMetrics for the round-trip.
void ApplyMetric(ExperimentResult& r, const std::string& name, double value) {
  const auto u64 = [&] { return static_cast<std::uint64_t>(value); };
  if (name == "goodput_bps") r.goodput_bps = value;
  else if (name == "total_bytes") r.total_bytes = u64();
  else if (name == "retransmissions") r.retransmissions = u64();
  else if (name == "timeouts") r.timeouts = u64();
  else if (name == "reorder_events") r.reorder_events = u64();
  else if (name == "reorder_marked_lost") r.reorder_marked_lost = u64();
  else if (name == "duplicate_segments") r.duplicate_segments = u64();
  else if (name == "undo_events") r.undo_events = u64();
  else if (name == "cross_tdn_exemptions") r.cross_tdn_exemptions = u64();
  else if (name == "faults_injected") r.faults_injected = u64();
  else if (name == "notifications_dropped") r.notifications_dropped = u64();
  else if (name == "stale_notifications") r.stale_notifications = u64();
  else if (name == "tdn_inferred_switches") r.tdn_inferred_switches = u64();
  else if (name == "voq_shrink_deferred") r.voq_shrink_deferred = u64();
  else if (name == "voq_drops") r.voq_drops = u64();
  else if (name == "voq_ce_marked") r.voq_ce_marked = u64();
  else if (name == "voq_codel_drops") r.voq_codel_drops = u64();
  else if (name == "voq_codel_marks") r.voq_codel_marks = u64();
  else if (name == "voq_delay_marked") r.voq_delay_marked = u64();
  else if (name == "voq_shared_rejected") r.voq_shared_rejected = u64();
  else if (name == "voq_sojourn_mean_us") r.voq_sojourn_mean_us = value;
  else if (name == "voq_sojourn_p99_us") r.voq_sojourn_p99_us = value;
  else if (name == "voq_sojourn_max_us") r.voq_sojourn_max_us = value;
  else if (name == "trace_hash") r.trace_hash = u64();  // 53-bit fingerprint
  else if (name == "trace_records") r.trace_records = u64();
  else if (name == "recovery_forced") r.recovery_forced = u64();
  else if (name == "recovery_rescued") r.recovery_rescued = u64();
  else if (name == "recovery_spurious") r.recovery_spurious = u64();
  else if (name == "sim_events") r.sim_events = u64();
  else if (name == "sim_batches") r.sim_batches = u64();
  else if (name == "sim_max_batch") r.sim_max_batch = u64();
  else if (name == "sim_cohort_hits") r.sim_cohort_hits = u64();
  else if (name == "sim_dead_dropped") r.sim_dead_dropped = u64();
  else if (name == "sim_compactions") r.sim_compactions = u64();
  else if (name.rfind("churn_fct_", 0) == 0) {
    // Per-size-bucket FCT family: churn_fct_<bucket>_{count,p50_us,...}.
    for (std::size_t bkt = 0; bkt < kNumFctBuckets; ++bkt) {
      const std::string prefix = std::string("churn_fct_") +
                                 kFctBucketNames[bkt] + "_";
      if (name.rfind(prefix, 0) != 0) continue;
      const std::string field = name.substr(prefix.size());
      auto& bucket = r.churn_fct_bucket[bkt];
      if (field == "count") bucket.count = u64();
      else if (field == "p50_us") bucket.p50_us = value;
      else if (field == "p99_us") bucket.p99_us = value;
      else if (field == "p999_us") bucket.p999_us = value;
      break;
    }
  }
  // Unknown metrics from a newer minor schema are ignored.
}

}  // namespace

SweepResult SweepFromJson(const std::string& json) {
  const JsonValue doc = ParseJson(json);
  const JsonValue* schema = doc.Find("schema");
  if (!schema || schema->string != kSweepSchemaVersion) {
    throw std::runtime_error("tdtcp-sweep: unsupported schema");
  }

  SweepResult out;
  out.jobs = static_cast<int>(RequireNumber(doc, "jobs"));
  out.wall_seconds = RequireNumber(doc, "wall_seconds");

  const JsonValue* cells = doc.Find("cells");
  if (!cells || cells->type != JsonValue::Type::kArray) {
    throw std::runtime_error("tdtcp-sweep: missing cells");
  }
  for (const JsonValue& jc : cells->array) {
    SweepCell cell;
    if (const JsonValue* v = jc.Find("label")) cell.label = v->string;
    if (const JsonValue* v = jc.Find("variant")) {
      cell.variant = VariantFromName(v->string);
    }
    if (const JsonValue* v = jc.Find("schedule")) cell.schedule_label = v->string;
    if (const JsonValue* v = jc.Find("qdisc")) cell.qdisc_label = v->string;
    cell.duration = SimTime::Picos(
        static_cast<std::int64_t>(RequireNumber(jc, "duration_ps")));

    if (const JsonValue* runs = jc.Find("runs")) {
      for (const JsonValue& jr : runs->array) {
        SweepRun run;
        run.seed = static_cast<std::uint64_t>(RequireNumber(jr, "seed"));
        run.result.variant = cell.variant;
        run.result.duration = cell.duration;
        if (const JsonValue* metrics = jr.Find("metrics")) {
          for (const auto& [name, value] : metrics->object) {
            ApplyMetric(run.result, name, value.NumberOr(0));
          }
        }
        cell.runs.push_back(std::move(run));
      }
    }

    if (const JsonValue* aggs = jc.Find("aggregates")) {
      // Rebuild in canonical ScalarMetrics order (the JSON object model is
      // a sorted map), so round-tripped cells compare equal to the writer's.
      auto take = [&](const std::string& name, const JsonValue& jstats) {
        MetricStats s;
        s.mean = RequireNumber(jstats, "mean");
        s.stddev = RequireNumber(jstats, "stddev");
        s.ci95 = RequireNumber(jstats, "ci95");
        s.n = static_cast<std::size_t>(RequireNumber(jstats, "n"));
        cell.metrics.emplace_back(name, s);
      };
      std::set<std::string> taken;
      for (const auto& [name, unused] : ScalarMetrics(ExperimentResult{})) {
        (void)unused;
        if (const JsonValue* jstats = aggs->Find(name)) {
          take(name, *jstats);
          taken.insert(name);
        }
      }
      for (const auto& [name, jstats] : aggs->object) {
        if (!taken.count(name)) take(name, jstats);
      }
    }
    out.cells.push_back(std::move(cell));
  }
  return out;
}

SweepResult ReadSweepJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) throw std::runtime_error("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return SweepFromJson(text);
}

// --- microbenchmark serialization -------------------------------------------

const BenchRun* BenchReport::Find(const std::string& name) const {
  for (const BenchRun& r : runs) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::string BenchToJson(const BenchReport& report) {
  std::string out;
  out += "{\"schema\":\"";
  out += kBenchSchemaVersion;
  out += "\",\"context\":\"" + EscapeJson(report.context) + "\"";
  out += ",\"runs\":[";
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    const BenchRun& r = report.runs[i];
    if (i) out += ",";
    out += "{\"name\":\"" + EscapeJson(r.name) + "\"";
    out += ",\"real_time_ns\":" + NumberToJson(r.real_time_ns);
    out += ",\"cpu_time_ns\":" + NumberToJson(r.cpu_time_ns);
    out += ",\"iterations\":" + NumberToJson(r.iterations);
    out += ",\"items_per_second\":" + NumberToJson(r.items_per_second);
    out += ",\"counters\":{";
    std::size_t c = 0;
    for (const auto& [name, value] : r.counters) {
      if (c++) out += ",";
      out += "\"" + EscapeJson(name) + "\":" + NumberToJson(value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void WriteBenchJson(const std::string& path, const BenchReport& report) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot open " + path);
  const std::string json = BenchToJson(report);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

BenchReport BenchFromJson(const std::string& json) {
  const JsonValue doc = ParseJson(json);
  const JsonValue* schema = doc.Find("schema");
  if (!schema || schema->string != kBenchSchemaVersion) {
    throw std::runtime_error("tdtcp-bench: unsupported schema");
  }
  BenchReport out;
  if (const JsonValue* v = doc.Find("context")) out.context = v->string;
  const JsonValue* runs = doc.Find("runs");
  if (!runs || runs->type != JsonValue::Type::kArray) {
    throw std::runtime_error("tdtcp-bench: missing runs");
  }
  for (const JsonValue& jr : runs->array) {
    BenchRun r;
    const JsonValue* name = jr.Find("name");
    if (!name || name->type != JsonValue::Type::kString || name->string.empty()) {
      throw std::runtime_error("tdtcp-bench: run without a name");
    }
    r.name = name->string;
    r.real_time_ns = RequireNumber(jr, "real_time_ns");
    r.cpu_time_ns = RequireNumber(jr, "cpu_time_ns");
    r.iterations = RequireNumber(jr, "iterations");
    r.items_per_second = RequireNumber(jr, "items_per_second");
    if (const JsonValue* counters = jr.Find("counters")) {
      for (const auto& [cname, value] : counters->object) {
        r.counters[cname] = value.NumberOr(0);
      }
    }
    out.runs.push_back(std::move(r));
  }
  return out;
}

BenchReport ReadBenchJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) throw std::runtime_error("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return BenchFromJson(text);
}

// --- CSV --------------------------------------------------------------------

void WriteSweepCsv(const std::string& path, const SweepResult& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot open " + path);

  std::fprintf(f, "label,variant,schedule,qdisc,duration_ms,seed");
  if (!sweep.cells.empty() && !sweep.cells.front().runs.empty()) {
    for (const auto& [name, value] :
         ScalarMetrics(sweep.cells.front().runs.front().result)) {
      (void)value;
      std::fprintf(f, ",%s", name.c_str());
    }
  }
  std::fprintf(f, "\n");

  for (const SweepCell& cell : sweep.cells) {
    for (const SweepRun& run : cell.runs) {
      std::fprintf(f, "%s,%s,%s,%s,%.6g,%llu", cell.label.c_str(),
                   VariantName(cell.variant), cell.schedule_label.c_str(),
                   cell.qdisc_label.c_str(), cell.duration.millis_f(),
                   static_cast<unsigned long long>(run.seed));
      for (const auto& [name, value] : ScalarMetrics(run.result)) {
        (void)name;
        std::fprintf(f, ",%.17g", value);
      }
      std::fprintf(f, "\n");
    }
    for (const char* row : {"mean", "stddev", "ci95"}) {
      std::fprintf(f, "%s,%s,%s,%s,%.6g,%s", cell.label.c_str(),
                   VariantName(cell.variant), cell.schedule_label.c_str(),
                   cell.qdisc_label.c_str(), cell.duration.millis_f(), row);
      for (const auto& [name, stats] : cell.metrics) {
        (void)name;
        const double v = std::string(row) == "mean"     ? stats.mean
                         : std::string(row) == "stddev" ? stats.stddev
                                                        : stats.ci95;
        std::fprintf(f, ",%.17g", v);
      }
      std::fprintf(f, "\n");
    }
  }
  std::fclose(f);
}

}  // namespace tdtcp
