#include "app/result_io.hpp"

#include <cctype>
#include <cstdio>
#include <set>
#include <stdexcept>

namespace tdtcp {

// --- JSON writing -----------------------------------------------------------

namespace {

// %.17g round-trips every finite double exactly.
std::string NumberToJson(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendMetricStats(std::string& out, const MetricStats& s) {
  out += "{\"mean\":" + NumberToJson(s.mean);
  out += ",\"stddev\":" + NumberToJson(s.stddev);
  out += ",\"ci95\":" + NumberToJson(s.ci95);
  out += ",\"n\":" + NumberToJson(static_cast<double>(s.n)) + "}";
}

}  // namespace

std::string SweepToJson(const SweepResult& sweep) {
  std::string out;
  out += "{\"schema\":\"";
  out += kSweepSchemaVersion;
  out += "\",\"jobs\":" + NumberToJson(sweep.jobs);
  out += ",\"wall_seconds\":" + NumberToJson(sweep.wall_seconds);
  out += ",\"cells\":[";
  for (std::size_t c = 0; c < sweep.cells.size(); ++c) {
    const SweepCell& cell = sweep.cells[c];
    if (c) out += ",";
    out += "{\"label\":\"" + EscapeJson(cell.label) + "\"";
    out += ",\"variant\":\"" + EscapeJson(VariantName(cell.variant)) + "\"";
    out += ",\"schedule\":\"" + EscapeJson(cell.schedule_label) + "\"";
    out += ",\"duration_ps\":" +
           NumberToJson(static_cast<double>(cell.duration.picos()));
    out += ",\"duration_ms\":" + NumberToJson(cell.duration.millis_f());
    out += ",\"runs\":[";
    for (std::size_t r = 0; r < cell.runs.size(); ++r) {
      const SweepRun& run = cell.runs[r];
      if (r) out += ",";
      out += "{\"seed\":" + NumberToJson(static_cast<double>(run.seed));
      out += ",\"metrics\":{";
      const auto metrics = ScalarMetrics(run.result);
      for (std::size_t m = 0; m < metrics.size(); ++m) {
        if (m) out += ",";
        out += "\"" + EscapeJson(metrics[m].first) +
               "\":" + NumberToJson(metrics[m].second);
      }
      out += "}}";
    }
    out += "],\"aggregates\":{";
    for (std::size_t m = 0; m < cell.metrics.size(); ++m) {
      if (m) out += ",";
      out += "\"" + EscapeJson(cell.metrics[m].first) + "\":";
      AppendMetricStats(out, cell.metrics[m].second);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void WriteSweepJson(const std::string& path, const SweepResult& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot open " + path);
  const std::string json = SweepToJson(sweep);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

// --- JSON parsing -----------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue v = ParseValue();
    SkipSpace();
    if (pos_ != text_.size()) Fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void Fail(const char* what) {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() {
    SkipSpace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail("unexpected character");
    ++pos_;
  }

  JsonValue ParseValue() {
    // A hostile input of "[[[[[..." would otherwise recurse once per byte
    // and overflow the stack long before any other check fires.
    if (depth_ >= kMaxDepth) Fail("nesting too deep");
    ++depth_;
    JsonValue v = ParseValueInner();
    --depth_;
    return v;
  }

  JsonValue ParseValueInner() {
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = ParseString();
        return v;
      }
      case 't': ParseLiteral("true"); return MakeNumber(1);
      case 'f': ParseLiteral("false"); return MakeNumber(0);
      case 'n': ParseLiteral("null"); return JsonValue{};
      default: return ParseNumber();
    }
  }

  static JsonValue MakeNumber(double d) {
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  void ParseLiteral(const char* lit) {
    SkipSpace();
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) Fail("bad literal");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) Fail("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Manual hex parse: std::stoi would accept partial garbage
            // ("\u12zz") or throw an unhelpful exception ("\uzzzz").
            if (pos_ + 4 > text_.size()) Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + static_cast<std::size_t>(i)];
              unsigned digit;
              if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') digit = static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') digit = static_cast<unsigned>(h - 'A' + 10);
              else Fail("non-hex digit in \\u escape");
              code = code * 16 + digit;
            }
            // The writer only emits \u for control bytes; anything wider
            // would need UTF-8 encoding we don't produce.
            if (code > 0xff) Fail("\\u escape outside Latin-1 range");
            out += static_cast<char>(code);
            pos_ += 4;
            break;
          }
          default: Fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) Fail("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  JsonValue ParseNumber() {
    SkipSpace();
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) Fail("expected number");
    const std::string tok = text_.substr(start, pos_ - start);
    double d;
    std::size_t consumed = 0;
    try {
      d = std::stod(tok, &consumed);
    } catch (const std::exception&) {
      Fail("malformed number");  // "-", "1e", "..", "1e999" (overflow), ...
    }
    if (consumed != tok.size()) Fail("malformed number");
    return MakeNumber(d);
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      std::string key = ParseString();
      Expect(':');
      v.object.emplace(std::move(key), ParseValue());
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  static constexpr int kMaxDepth = 200;

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

double RequireNumber(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.Find(key);
  if (!v || v->type != JsonValue::Type::kNumber) {
    throw std::runtime_error("tdtcp-sweep: missing numeric field " + key);
  }
  return v->number;
}

// Applies a named scalar metric back onto an ExperimentResult, inverting
// ScalarMetrics for the round-trip.
void ApplyMetric(ExperimentResult& r, const std::string& name, double value) {
  const auto u64 = [&] { return static_cast<std::uint64_t>(value); };
  if (name == "goodput_bps") r.goodput_bps = value;
  else if (name == "total_bytes") r.total_bytes = u64();
  else if (name == "retransmissions") r.retransmissions = u64();
  else if (name == "timeouts") r.timeouts = u64();
  else if (name == "reorder_events") r.reorder_events = u64();
  else if (name == "reorder_marked_lost") r.reorder_marked_lost = u64();
  else if (name == "duplicate_segments") r.duplicate_segments = u64();
  else if (name == "undo_events") r.undo_events = u64();
  else if (name == "cross_tdn_exemptions") r.cross_tdn_exemptions = u64();
  else if (name == "faults_injected") r.faults_injected = u64();
  else if (name == "notifications_dropped") r.notifications_dropped = u64();
  else if (name == "stale_notifications") r.stale_notifications = u64();
  else if (name == "tdn_inferred_switches") r.tdn_inferred_switches = u64();
  else if (name == "voq_shrink_deferred") r.voq_shrink_deferred = u64();
  // Unknown metrics from a newer minor schema are ignored.
}

}  // namespace

JsonValue ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

SweepResult SweepFromJson(const std::string& json) {
  const JsonValue doc = ParseJson(json);
  const JsonValue* schema = doc.Find("schema");
  if (!schema || schema->string != kSweepSchemaVersion) {
    throw std::runtime_error("tdtcp-sweep: unsupported schema");
  }

  SweepResult out;
  out.jobs = static_cast<int>(RequireNumber(doc, "jobs"));
  out.wall_seconds = RequireNumber(doc, "wall_seconds");

  const JsonValue* cells = doc.Find("cells");
  if (!cells || cells->type != JsonValue::Type::kArray) {
    throw std::runtime_error("tdtcp-sweep: missing cells");
  }
  for (const JsonValue& jc : cells->array) {
    SweepCell cell;
    if (const JsonValue* v = jc.Find("label")) cell.label = v->string;
    if (const JsonValue* v = jc.Find("variant")) {
      cell.variant = VariantFromName(v->string);
    }
    if (const JsonValue* v = jc.Find("schedule")) cell.schedule_label = v->string;
    cell.duration = SimTime::Picos(
        static_cast<std::int64_t>(RequireNumber(jc, "duration_ps")));

    if (const JsonValue* runs = jc.Find("runs")) {
      for (const JsonValue& jr : runs->array) {
        SweepRun run;
        run.seed = static_cast<std::uint64_t>(RequireNumber(jr, "seed"));
        run.result.variant = cell.variant;
        run.result.duration = cell.duration;
        if (const JsonValue* metrics = jr.Find("metrics")) {
          for (const auto& [name, value] : metrics->object) {
            ApplyMetric(run.result, name, value.NumberOr(0));
          }
        }
        cell.runs.push_back(std::move(run));
      }
    }

    if (const JsonValue* aggs = jc.Find("aggregates")) {
      // Rebuild in canonical ScalarMetrics order (the JSON object model is
      // a sorted map), so round-tripped cells compare equal to the writer's.
      auto take = [&](const std::string& name, const JsonValue& jstats) {
        MetricStats s;
        s.mean = RequireNumber(jstats, "mean");
        s.stddev = RequireNumber(jstats, "stddev");
        s.ci95 = RequireNumber(jstats, "ci95");
        s.n = static_cast<std::size_t>(RequireNumber(jstats, "n"));
        cell.metrics.emplace_back(name, s);
      };
      std::set<std::string> taken;
      for (const auto& [name, unused] : ScalarMetrics(ExperimentResult{})) {
        (void)unused;
        if (const JsonValue* jstats = aggs->Find(name)) {
          take(name, *jstats);
          taken.insert(name);
        }
      }
      for (const auto& [name, jstats] : aggs->object) {
        if (!taken.count(name)) take(name, jstats);
      }
    }
    out.cells.push_back(std::move(cell));
  }
  return out;
}

SweepResult ReadSweepJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) throw std::runtime_error("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return SweepFromJson(text);
}

// --- microbenchmark serialization -------------------------------------------

const BenchRun* BenchReport::Find(const std::string& name) const {
  for (const BenchRun& r : runs) {
    if (r.name == name) return &r;
  }
  return nullptr;
}

std::string BenchToJson(const BenchReport& report) {
  std::string out;
  out += "{\"schema\":\"";
  out += kBenchSchemaVersion;
  out += "\",\"context\":\"" + EscapeJson(report.context) + "\"";
  out += ",\"runs\":[";
  for (std::size_t i = 0; i < report.runs.size(); ++i) {
    const BenchRun& r = report.runs[i];
    if (i) out += ",";
    out += "{\"name\":\"" + EscapeJson(r.name) + "\"";
    out += ",\"real_time_ns\":" + NumberToJson(r.real_time_ns);
    out += ",\"cpu_time_ns\":" + NumberToJson(r.cpu_time_ns);
    out += ",\"iterations\":" + NumberToJson(r.iterations);
    out += ",\"items_per_second\":" + NumberToJson(r.items_per_second);
    out += ",\"counters\":{";
    std::size_t c = 0;
    for (const auto& [name, value] : r.counters) {
      if (c++) out += ",";
      out += "\"" + EscapeJson(name) + "\":" + NumberToJson(value);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

void WriteBenchJson(const std::string& path, const BenchReport& report) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot open " + path);
  const std::string json = BenchToJson(report);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

BenchReport BenchFromJson(const std::string& json) {
  const JsonValue doc = ParseJson(json);
  const JsonValue* schema = doc.Find("schema");
  if (!schema || schema->string != kBenchSchemaVersion) {
    throw std::runtime_error("tdtcp-bench: unsupported schema");
  }
  BenchReport out;
  if (const JsonValue* v = doc.Find("context")) out.context = v->string;
  const JsonValue* runs = doc.Find("runs");
  if (!runs || runs->type != JsonValue::Type::kArray) {
    throw std::runtime_error("tdtcp-bench: missing runs");
  }
  for (const JsonValue& jr : runs->array) {
    BenchRun r;
    const JsonValue* name = jr.Find("name");
    if (!name || name->type != JsonValue::Type::kString || name->string.empty()) {
      throw std::runtime_error("tdtcp-bench: run without a name");
    }
    r.name = name->string;
    r.real_time_ns = RequireNumber(jr, "real_time_ns");
    r.cpu_time_ns = RequireNumber(jr, "cpu_time_ns");
    r.iterations = RequireNumber(jr, "iterations");
    r.items_per_second = RequireNumber(jr, "items_per_second");
    if (const JsonValue* counters = jr.Find("counters")) {
      for (const auto& [cname, value] : counters->object) {
        r.counters[cname] = value.NumberOr(0);
      }
    }
    out.runs.push_back(std::move(r));
  }
  return out;
}

BenchReport ReadBenchJson(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) throw std::runtime_error("cannot open " + path);
  std::string text;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  return BenchFromJson(text);
}

// --- CSV --------------------------------------------------------------------

void WriteSweepCsv(const std::string& path, const SweepResult& sweep) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw std::runtime_error("cannot open " + path);

  std::fprintf(f, "label,variant,schedule,duration_ms,seed");
  if (!sweep.cells.empty() && !sweep.cells.front().runs.empty()) {
    for (const auto& [name, value] :
         ScalarMetrics(sweep.cells.front().runs.front().result)) {
      (void)value;
      std::fprintf(f, ",%s", name.c_str());
    }
  }
  std::fprintf(f, "\n");

  for (const SweepCell& cell : sweep.cells) {
    for (const SweepRun& run : cell.runs) {
      std::fprintf(f, "%s,%s,%s,%.6g,%llu", cell.label.c_str(),
                   VariantName(cell.variant), cell.schedule_label.c_str(),
                   cell.duration.millis_f(),
                   static_cast<unsigned long long>(run.seed));
      for (const auto& [name, value] : ScalarMetrics(run.result)) {
        (void)name;
        std::fprintf(f, ",%.17g", value);
      }
      std::fprintf(f, "\n");
    }
    for (const char* row : {"mean", "stddev", "ci95"}) {
      std::fprintf(f, "%s,%s,%s,%.6g,%s", cell.label.c_str(),
                   VariantName(cell.variant), cell.schedule_label.c_str(),
                   cell.duration.millis_f(), row);
      for (const auto& [name, stats] : cell.metrics) {
        (void)name;
        const double v = std::string(row) == "mean"     ? stats.mean
                         : std::string(row) == "stddev" ? stats.stddev
                                                        : stats.ci95;
        std::fprintf(f, ",%.17g", v);
      }
      std::fprintf(f, "\n");
    }
  }
  std::fclose(f);
}

}  // namespace tdtcp
