// End-to-end experiment harness: wires a two-rack RDCN topology, the
// schedule controller, and a workload of long-lived flows; runs the
// simulation; and collects the series/statistics every figure in the paper
// is built from. Defaults reproduce the Etalon testbed configuration of
// §5.1 (10 Gbps/~100 µs packet TDN, 100 Gbps/~40 µs optical TDN, 180 µs
// days, 20 µs nights, 6:1 packet:optical, 16-packet jumbo-frame VOQs).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "app/workload.hpp"
#include "fault/fault_plan.hpp"
#include "tcp/recovery_agent.hpp"
#include "net/topology.hpp"
#include "rdcn/controller.hpp"
#include "rdcn/perturbation.hpp"
#include "trace/convergence.hpp"
#include "trace/samplers.hpp"
#include "trace/trace_io.hpp"

namespace tdtcp {

// Tracepoint observability for a run (trace/tracepoints.hpp). Disabled by
// default: every instrumented component then pays one predictable branch
// per site and the perf baselines are unchanged. When enabled, the
// controller, every host, and every plain-TCP endpoint share one ring;
// `record_flow` additionally attaches a TraceRecorder to that flow's sender
// so the result carries a replayable RecordedConnection.
struct TraceOptions {
  bool enabled = false;
  std::size_t ring_capacity = 1u << 16;  // records; rounded up to a power of 2
  FlowId record_flow = 0;                // 0 = trace only, no recording
};

// Which scheduler drives the fabric ports.
enum class FabricKind {
  // The paper's two-rack evaluation: an RdcnController on the
  // (workload.src_rack, workload.dst_rack) port pair.
  kPair,
  // RotorNet-style N-rack rotation: a RotorController cycling every fabric
  // port through the N-1 round-robin perfect matchings. Requires an even
  // topology.num_racks >= 2; connections get per-peer TDN scoping.
  kRotor,
};

// Experiment description. The struct doubles as a fluent builder: every
// field stays public (existing field-poking code keeps working verbatim),
// and the chainable `With*` setters are the preferred way to express a
// configuration:
//
//   ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
//                              .WithFlows(8)
//                              .WithDuration(SimTime::Millis(50))
//                              .WithSeed(3);
struct ExperimentConfig {
  TopologyConfig topology;
  ScheduleConfig schedule;
  WorkloadConfig workload;
  // Connection churn riding alongside (or instead of) the long-lived flows;
  // disabled by default. When churn.inherit_base is set (the default) the
  // generator adopts workload.base/variant at run time.
  ChurnConfig churn;
  // Fault scenario; an empty plan (the default) arms no injector.
  FaultPlan fault;
  // Adversarial-schedule perturbations (rdcn/perturbation.hpp): day skew,
  // boundary jitter, mid-flow schedule changes, controller-restart windows.
  // Empty (the default) arms nothing. Composes with `fault`.
  PerturbationConfig perturb;
  // Convergence-oracle thresholds for the stability_* result fields. Only
  // consulted when tracing is enabled (the oracle reads the trace ring);
  // from_ps is overridden with the warmup time at run start.
  ConvergenceConfig stability;
  // Tail-recovery axis. kRack is the stack's default (RACK + TLP, no agent);
  // kOff disables both on every connection (pure RTO recovery); kAgent
  // additionally runs one shared RecoveryAgent per host, scanning every
  // connection off the host's timer wheel and forcing early retransmits for
  // flows quiet past the adaptive threshold.
  RecoveryMode recovery = RecoveryMode::kRack;
  RecoveryConfig recovery_config;
  // Tracepoint ring / replay recording; disabled by default.
  TraceOptions trace;
  // Fabric scheduler; see FabricKind. Set via WithRotorFabric().
  FabricKind fabric = FabricKind::kPair;
  bool dynamic_voq = false;  // reTCPdyn switch cooperation
  SimTime duration = SimTime::Millis(200);
  SimTime warmup = SimTime::Millis(20);
  SimTime sample_interval = SimTime::Micros(5);
  std::uint64_t seed = 1;
  bool sample_voq = true;
  bool sample_reorder = true;
  // Simulator event-dispatch batching (Simulator::set_batched_dispatch).
  // On by default; the sequential path exists for A/B bit-identity checks
  // (tests/batch_test) and as an escape hatch, not as a tuning knob.
  bool batched_dispatch = true;
  // How many optical weeks the folded curves span (the paper's Fig. 2/7
  // windows show ~3 weeks).
  int plot_weeks = 3;

  // --- fluent builder -------------------------------------------------------

  // Switches the transport variant, re-applying the paper's variant-specific
  // knobs (DCTCP's shallow ECN threshold, reTCPdyn's dynamic VOQ) and
  // resetting per-variant engine state so any variant can be derived from
  // any base config.
  ExperimentConfig& WithVariant(Variant v);

  // Swaps the VOQ queue discipline (one line: WithQdisc(QdiscKind::kCodel)),
  // keeping every other queue knob — including the variant's ECN threshold —
  // as configured. kSharedPool sizes each VOQ's raw capacity to the pool so
  // the dynamic threshold, not the per-queue cap, governs admission.
  ExperimentConfig& WithQdisc(QdiscKind kind);
  // Full queue-discipline configuration for every fabric VOQ. Apply before
  // WithVariant if the variant's ECN threshold should win (the sweep engine
  // composes them in that order).
  ExperimentConfig& WithQdiscConfig(const QueueDisc::Config& q) {
    topology.voq = q;
    return *this;
  }

  ExperimentConfig& WithFlows(std::uint32_t n) {
    workload.num_flows = n;
    return *this;
  }
  ExperimentConfig& WithDuration(SimTime d) {
    duration = d;
    return *this;
  }
  // Duration with the bench-standard warmup (one eighth of the run).
  ExperimentConfig& WithDurationMs(int ms) {
    duration = SimTime::Millis(ms);
    warmup = SimTime::Millis(ms / 8);
    return *this;
  }
  ExperimentConfig& WithWarmup(SimTime w) {
    warmup = w;
    return *this;
  }
  ExperimentConfig& WithSeed(std::uint64_t s) {
    seed = s;
    return *this;
  }
  ExperimentConfig& WithSchedule(const ScheduleConfig& s) {
    schedule = s;
    return *this;
  }
  ExperimentConfig& WithSampleInterval(SimTime i) {
    sample_interval = i;
    return *this;
  }
  ExperimentConfig& WithSampling(bool voq, bool reorder) {
    sample_voq = voq;
    sample_reorder = reorder;
    return *this;
  }
  ExperimentConfig& WithPlotWeeks(int weeks) {
    plot_weeks = weeks;
    return *this;
  }
  ExperimentConfig& WithFault(const FaultPlan& plan) {
    fault = plan;
    return *this;
  }
  ExperimentConfig& WithRecovery(RecoveryMode m) {
    recovery = m;
    return *this;
  }
  ExperimentConfig& WithRecoveryConfig(const RecoveryConfig& rc) {
    recovery = RecoveryMode::kAgent;
    recovery_config = rc;
    return *this;
  }
  // Adds a churn workload of `connections` open/transfer/close cycles with
  // Poisson arrivals, inheriting the experiment's transport configuration.
  ExperimentConfig& WithChurn(std::uint32_t connections,
                              SimTime mean_interarrival = SimTime::Micros(100)) {
    churn.enabled = true;
    churn.target_connections = connections;
    churn.mean_interarrival = mean_interarrival;
    return *this;
  }
  // Full-control churn configuration (enabled implicitly).
  ExperimentConfig& WithChurnConfig(ChurnConfig c) {
    churn = std::move(c);
    churn.enabled = true;
    return *this;
  }
  // N-rack RotorNet-style fabric: `num_racks` racks (even, >= 2) driven by a
  // RotorController, with every connection's TDN notifications scoped to its
  // peer's rack (each rack pair has its own day/night phase, so fabric-wide
  // notifications would corrupt unrelated flows' TDN views).
  ExperimentConfig& WithRotorFabric(std::uint32_t num_racks) {
    fabric = FabricKind::kRotor;
    topology.num_racks = num_racks;
    workload.scope_tdn_to_peer = true;
    churn.scope_tdn_to_peer = true;
    return *this;
  }
  // Churn rack-selection policy (see RackPolicy). kHotspot aims
  // `hotspot_fraction` of arrivals at `hotspot_rack`.
  ExperimentConfig& WithRackPolicy(RackPolicy p) {
    churn.rack_policy = p;
    return *this;
  }
  // Heavy-tailed churn transfer sizes from a flow-size CDF, optionally
  // scaled (bytes = max(1, round(sample * scale))).
  ExperimentConfig& WithFlowSizeCdf(std::shared_ptr<const FlowSizeCdf> cdf,
                                    double scale = 1.0) {
    churn.size_cdf = std::move(cdf);
    churn.size_scale = scale;
    return *this;
  }
  ExperimentConfig& WithTrace(std::size_t ring_capacity = 1u << 16) {
    trace.enabled = true;
    trace.ring_capacity = ring_capacity;
    return *this;
  }
  // Tracing plus a replayable recording of `flow`'s sender.
  ExperimentConfig& WithTraceRecording(FlowId flow) {
    trace.enabled = true;
    trace.record_flow = flow;
    return *this;
  }
  ExperimentConfig& WithBatchedDispatch(bool batched) {
    batched_dispatch = batched;
    return *this;
  }
  // Adversarial schedule: perturb the controller's day/night timing and/or
  // inject mid-flow schedule changes and restart windows.
  ExperimentConfig& WithSchedulePerturbation(PerturbationConfig p) {
    perturb = std::move(p);
    return *this;
  }
  // Convergence-oracle thresholds (stability_* result fields; needs tracing).
  ExperimentConfig& WithStabilityOracle(const ConvergenceConfig& c) {
    stability = c;
    return *this;
  }
  // Mixed tenant population: each churn arrival draws its transport variant
  // from this weighted mix instead of using churn.variant uniformly, so
  // TDTCP, cubic, and DCTCP tenants coexist on the same fabric. Implies
  // churn; weights need not sum to 1.
  ExperimentConfig& WithTenantMix(std::vector<TenantShare> mix) {
    churn.enabled = true;
    churn.tenant_mix = std::move(mix);
    return *this;
  }
};

// The paper's baseline configuration for a given variant (DCTCP gets a
// shallow ECN threshold, reTCPdyn enables dynamic VOQ resizing, MPTCP uses
// two pinned subflows).
ExperimentConfig PaperConfig(Variant v);

struct ExperimentResult {
  Variant variant;
  SimTime week;
  SimTime duration;
  SimTime warmup;

  // Aggregate post-warmup goodput (transport-delivered payload bits/s).
  double goodput_bps = 0;

  // Raw sampled series (aggregate across flows).
  std::vector<Sample> seq_samples;        // bytes acked
  std::vector<Sample> voq_samples;        // forward-direction VOQ occupancy
  std::vector<Sample> reorder_event_samples;
  std::vector<Sample> reorder_marked_samples;

  // Folded into the paper's expected-progress form.
  std::vector<FoldedPoint> seq_curve;     // bytes vs offset in plotted window
  std::vector<FoldedPoint> voq_curve;

  // Analytic reference lines over the same window (aggregate fabric bytes).
  std::vector<FoldedPoint> optimal_curve;
  std::vector<FoldedPoint> packet_only_curve;

  // Totals.
  std::uint64_t total_bytes = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t reorder_events = 0;
  std::uint64_t reorder_marked_lost = 0;
  std::uint64_t undo_events = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t cross_tdn_exemptions = 0;

  // Per-optical-day deltas (Fig. 10). "Spurious rtx" uses receiver-side
  // duplicate arrivals: the ground truth for retransmissions of data that
  // was never lost.
  std::vector<double> reorder_events_per_day;
  std::vector<double> reorder_marked_per_day;
  std::vector<double> spurious_rtx_per_day;
  std::uint64_t duplicate_segments = 0;

  // Connection-churn accounting (all zero when churn was disabled). After a
  // churn run the simulation drains for one slot_timeout past `duration` so
  // in-flight cycles finish; churn_all_closed then asserts that every opened
  // connection reached kClosed with a definite CloseReason.
  ChurnStats churn;
  std::uint64_t churn_hash = 0;   // ChurnGenerator::hash() fingerprint
  bool churn_all_closed = true;
  // Per-cycle flow completion times (µs) of kNormal churn closes, in
  // completion order; empty when churn was disabled.
  std::vector<double> churn_fct_us;
  // Per-size-bucket FCT tails (nearest-rank percentiles of the same
  // completions, split by requested transfer size — see kFctBucketNames /
  // kFctBucketUpperBytes). Empty buckets report zero percentiles.
  struct FctBucketSummary {
    std::uint64_t count = 0;
    double p50_us = 0;
    double p99_us = 0;
    double p999_us = 0;
  };
  FctBucketSummary churn_fct_bucket[kNumFctBuckets];

  // Host recovery agent accounting, summed over every host's agent (all
  // zero unless the run used RecoveryMode::kAgent).
  std::uint64_t recovery_forced = 0;
  std::uint64_t recovery_rescued = 0;
  std::uint64_t recovery_spurious = 0;

  // Fault-injection accounting (all zero when the plan was empty).
  std::uint64_t faults_injected = 0;       // every recorded fault event
  std::uint64_t fault_trace_hash = 0;      // FNV-1a of the ordered trace
  std::uint64_t notifications_dropped = 0; // control-plane drops + stalls
  std::uint64_t stale_notifications = 0;   // host-side dup/stale filter hits
  std::uint64_t tdn_inferred_switches = 0; // data-path inference recoveries
  std::uint64_t voq_shrink_deferred = 0;   // drain-then-shrink retained pkts

  // Queue-discipline accounting, summed over the two observed fabric VOQs
  // (port a->b and b->a). The breakdown counters are zero under plain
  // drop-tail; the sojourn summary is populated for every discipline.
  std::uint64_t voq_drops = 0;             // all-cause VOQ drops
  std::uint64_t voq_ce_marked = 0;         // all-cause CE marks
  std::uint64_t voq_codel_drops = 0;
  std::uint64_t voq_codel_marks = 0;
  std::uint64_t voq_delay_marked = 0;
  std::uint64_t voq_shared_rejected = 0;
  double voq_sojourn_mean_us = 0;
  double voq_sojourn_p99_us = 0;           // histogram-bucket upper edge
  double voq_sojourn_max_us = 0;

  // Simulator event-core accounting (Simulator::GetStats): total events
  // executed, batch counters from the batched dispatch loop, and the event
  // queue's dead-entry/compaction bookkeeping. sim_batches/sim_max_batch are
  // zero when the run disabled batched dispatch.
  std::uint64_t sim_events = 0;
  std::uint64_t sim_batches = 0;
  std::uint64_t sim_max_batch = 0;
  std::uint64_t sim_cohort_hits = 0;
  std::uint64_t sim_dead_dropped = 0;
  std::uint64_t sim_compactions = 0;

  // Tracing (all zero/null when TraceOptions::enabled was false). The hash
  // is order-sensitive over the whole ring, so two runs of the same config
  // match iff their tracepoint streams are bit-identical — the sweep
  // engine's jobs=1 == jobs=N determinism check compares exactly this.
  std::uint64_t trace_hash = 0;
  std::uint64_t trace_records = 0;  // total emitted (may exceed ring capacity)
  std::shared_ptr<RecordedConnection> recorded;  // set when record_flow != 0

  // Convergence-oracle verdicts (trace/convergence.hpp) over the post-warmup
  // trace ring; all zero when tracing was disabled. Flow-level rollups: a
  // flow oscillates if any of its TDN series does.
  std::uint64_t stability_converged = 0;
  std::uint64_t stability_oscillating = 0;
  std::uint64_t stability_starved = 0;
  std::uint64_t stability_insufficient = 0;
  double stability_worst_amplitude = 0;
  double stability_worst_period_us = 0;
  // Schedule-perturbation accounting (zero when perturb was empty).
  std::uint64_t schedule_changes = 0;
  std::uint64_t restart_holds = 0;
  std::uint64_t tdn_reconfigs = 0;  // summed TcpStats::tdn_reconfigs
};

// Runs one deterministic experiment: the single entry point for the whole
// harness. Everything about the run — including `plot_weeks` — lives in the
// config, so a config value (typically produced by the builder chain) fully
// determines the result. Thread-safe: concurrent calls share no mutable
// state; results for a given config are bit-identical regardless of how
// many other experiments run concurrently.
ExperimentResult RunExperiment(const ExperimentConfig& config);

// DEPRECATED: use RunExperiment(PaperConfig(v).WithDuration(duration)).
// Kept (comment-level deprecation) for out-of-tree callers; no in-repo
// caller remains.
ExperimentResult RunPaperExperiment(Variant v, SimTime duration = SimTime::Millis(200));

}  // namespace tdtcp
