// Thread-parallel experiment sweep engine.
//
// Every figure in the paper is "dozens-to-hundreds of deterministic optical
// weeks" per configuration point, and points are embarrassingly parallel:
// RunExperiment shares no mutable state between calls, so a sweep is a grid
// of (variant x schedule x duration x seed) cells executed by a fixed-size
// thread pool where each worker owns a private Simulator/Random/Topology
// (constructed inside RunExperiment). Determinism is a hard contract:
// results for a given (config, seed) are bit-identical at jobs=1 and
// jobs=N — cells are expanded in a fixed order up front and each task
// writes only its own preassigned slot.
//
// Cross-seed aggregation (mean, stddev, 95% CI per scalar metric) turns the
// per-seed results into the statistics the paper's averaged figures need.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "app/experiment.hpp"

namespace tdtcp {

// --- generic parallel driver ------------------------------------------------

// Resolves a --jobs value: n > 0 is taken literally, 0 means "one worker
// per hardware thread".
int ResolveJobs(int jobs);

// Runs fn(0..n-1) on `jobs` worker threads (capped at n; jobs <= 1 runs
// inline). fn must be safe to call concurrently for distinct indices. The
// first exception thrown by any task is rethrown after all workers join.
void ParallelFor(int jobs, std::size_t n,
                 const std::function<void(std::size_t)>& fn);

// --- cross-seed statistics --------------------------------------------------

struct MetricStats {
  double mean = 0;
  double stddev = 0;  // sample standard deviation (n-1 denominator)
  double ci95 = 0;    // half-width: t_{0.975, n-1} * stddev / sqrt(n)
  std::size_t n = 0;
};

MetricStats ComputeStats(const std::vector<double>& values);

// The scalar metrics a sweep aggregates across seeds, as (name, value)
// pairs — one place defines the set for aggregation, JSON, and CSV alike.
std::vector<std::pair<std::string, double>> ScalarMetrics(
    const ExperimentResult& r);

// --- the sweep grid ---------------------------------------------------------

// One named schedule variation (the "schedule override" axis).
struct SchedulePoint {
  std::string label;
  ScheduleConfig schedule;
};

// One named queue-discipline variation (the "qdisc override" axis). The
// config is applied to the base *before* WithVariant, so a variant's own
// queue knobs (DCTCP's ECN threshold) compose with any discipline.
struct QdiscPoint {
  std::string label;
  QueueDisc::Config qdisc;
};

struct SweepSpec {
  // Shared defaults; each cell derives from a copy of this.
  ExperimentConfig base;

  // Grid axes. An empty axis means "just the base config's value".
  std::vector<Variant> variants;
  std::vector<std::uint64_t> seeds;
  std::vector<SimTime> durations;
  std::vector<SchedulePoint> schedules;
  std::vector<QdiscPoint> qdiscs;

  // Worker threads; 0 = hardware concurrency.
  int jobs = 1;
};

// A fully-resolved run: the unit of work the pool executes. Label is free
// text for tables/CSV ("tdtcp", "-relaxed", ...); the axis labels are also
// carried individually so downstream grouping never parses the label.
struct SweepCase {
  std::string label;
  ExperimentConfig config;
  // Axis labels (after `config` so the common {label, config} aggregate
  // init keeps working): empty for the base schedule/qdisc.
  std::string schedule_label;
  std::string qdisc_label;
};

// One grid cell = one (variant, schedule, duration) point, holding the
// per-seed results (ordered exactly as spec.seeds) plus cross-seed
// aggregates keyed by metric name.
struct SweepRun {
  std::uint64_t seed = 0;
  ExperimentResult result;
};

struct SweepCell {
  std::string label;            // variant name (+ "/schedule" + "/qdisc")
  Variant variant = Variant::kTdtcp;
  std::string schedule_label;   // empty for the base schedule
  std::string qdisc_label;      // empty for the base qdisc
  SimTime duration;
  std::vector<SweepRun> runs;
  std::vector<std::pair<std::string, MetricStats>> metrics;
};

struct SweepResult {
  std::vector<SweepCell> cells;  // fixed grid order: variant-major
  int jobs = 1;                  // resolved worker count actually used
  double wall_seconds = 0;
};

// Expands the grid in deterministic order (variant-major, then schedule,
// then qdisc, then duration): cell i covers seeds [i*K, (i+1)*K).
std::vector<SweepCase> ExpandGrid(const SweepSpec& spec);

// Runs the whole grid on the pool and aggregates across seeds.
SweepResult RunSweep(const SweepSpec& spec);

// Lower-level entry for benches whose axis is not expressible as the
// standard grid (ablation rows, notification on/off, ...): runs each
// fully-resolved case on the pool; results arrive in input order.
std::vector<ExperimentResult> RunCases(const std::vector<SweepCase>& cases,
                                       int jobs);

// Re-aggregates a cell's runs (exposed for tests and custom pipelines).
std::vector<std::pair<std::string, MetricStats>> AggregateRuns(
    const std::vector<SweepRun>& runs);

}  // namespace tdtcp
