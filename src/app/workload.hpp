// Workload construction: long-lived bulk flows between a rack pair, one per
// host pair, in any of the paper's transport variants (§5.1: flowgrind-style
// bulk transfers, all flows starting together).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "app/flow_cdf.hpp"
#include "mptcp/mptcp_connection.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"

namespace tdtcp {

enum class Variant {
  kReno,
  kCubic,
  kDctcp,
  kRetcp,
  kRetcpDyn,
  kMptcp,
  kTdtcp,
};

inline constexpr std::size_t kNumVariants = 7;

const char* VariantName(Variant v);
Variant VariantFromName(std::string_view name);

// Translates a variant into engine configuration on top of `base`.
TcpConfig MakeVariantConfig(Variant v, TcpConfig base);

// One tenant class in a mixed churn population: `weight` is the relative
// probability an arrival belongs to this tenant (weights need not sum to 1).
struct TenantShare {
  Variant variant = Variant::kTdtcp;
  double weight = 1.0;
};

struct WorkloadConfig {
  Variant variant = Variant::kTdtcp;
  std::uint32_t num_flows = 8;
  RackId src_rack = 0;
  RackId dst_rack = 1;
  TcpConfig base;  // shared engine parameters (mss, timers, ...)
  MptcpConnection::Config mptcp;  // used when variant == kMptcp
  FlowId first_flow_id = 1;
  // Scope each connection's TDN notifications to its peer's rack instead of
  // the fabric-wide kAllRacks default. Required on rotor fabrics, where each
  // rack pair runs its own day/night phase.
  bool scope_tdn_to_peer = false;
};

// --- flow-size buckets -------------------------------------------------------
// Per-size FCT reporting splits completions into four buckets by requested
// transfer size: s <= 10 KB < m <= 100 KB < l <= 1 MB < xl. The edges follow
// the short/medium/long split the DC literature reports tails over (10 KB
// mice, 1 MB+ elephants).

inline constexpr std::size_t kNumFctBuckets = 4;
inline constexpr const char* kFctBucketNames[kNumFctBuckets] = {"s", "m", "l",
                                                                "xl"};
inline constexpr std::uint64_t kFctBucketUpperBytes[kNumFctBuckets - 1] = {
    10'000, 100'000, 1'000'000};

// Bucket index for a transfer of `bytes` (upper edges inclusive).
std::size_t FctBucketOf(std::uint64_t bytes);

// One sender/receiver pair. Exactly one of (tcp_*, mptcp_*) is populated.
struct Flow {
  std::unique_ptr<TcpConnection> tcp_sender;
  std::unique_ptr<TcpConnection> tcp_receiver;
  std::unique_ptr<MptcpConnection> mptcp_sender;
  std::unique_ptr<MptcpConnection> mptcp_receiver;

  // Sender-side bytes the transport has reliably delivered (the quantity
  // the paper's sequence graphs plot).
  std::uint64_t bytes_acked() const;
  std::uint64_t reorder_events() const;
  std::uint64_t reorder_marked_lost() const;
  std::uint64_t retransmissions() const;
  // Receiver-side duplicate arrivals: ground truth for spurious
  // retransmissions (a retransmission of data that was never lost shows up
  // as a duplicate; Fig. 10b counts exactly these).
  std::uint64_t duplicate_segments() const;
};

class Workload {
 public:
  Workload(Simulator& sim, Topology& topo, WorkloadConfig config);

  // Connects every flow and switches senders to unlimited data.
  void Start();

  std::uint64_t total_bytes_acked() const;
  std::uint64_t total_reorder_events() const;
  std::uint64_t total_reorder_marked_lost() const;
  std::uint64_t total_duplicate_segments() const;

  std::vector<Flow>& flows() { return flows_; }
  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  std::vector<Flow> flows_;
};

// --- connection churn --------------------------------------------------------
// Open → transfer → close cycles with Poisson arrivals: the workload shape
// that exercises the full lifecycle machinery (handshake, lingering close,
// FIN/ACK teardown, TIME_WAIT reclamation, and — under fault injection —
// every abort path). Each cycle is a fresh sender/receiver TcpConnection
// pair: the sender does Connect() + AddAppData(transfer) + Close() and the
// FIN rides out behind the data; the receiver runs with close_on_peer_fin so
// consuming the FIN triggers its own half of the handshake.

// How churned connections pick their (src_rack, dst_rack) pair.
enum class RackPolicy {
  // The classic two-rack shape: every cycle runs config.src_rack ->
  // config.dst_rack from a single arrival process (the paper's setup).
  kFixedPair,
  // Every host in every rack is an independent Poisson source; destination
  // rack uniform over the other racks, destination host uniform in-rack.
  kUniform,
  // Like kUniform, but each run draws one cyclic rack shift k in [1, n-1]
  // and every source in rack r sends only to rack (r + k) mod n — the
  // permutation-traffic pattern rotor fabrics are provisioned for.
  kPermutation,
  // Like kUniform, but each arrival targets `hotspot_rack` with probability
  // `hotspot_fraction` (falling back to uniform when the source sits in the
  // hotspot rack itself) — the skewed pattern that stresses one rack's VOQs.
  kHotspot,
};

const char* RackPolicyName(RackPolicy p);
RackPolicy RackPolicyFromName(std::string_view name);

struct ChurnConfig {
  bool enabled = false;
  // Stop opening new connections once this many have been opened.
  std::uint32_t target_connections = 1000;
  // Poisson arrival process (exponential inter-arrival gaps). Under
  // kFixedPair this is the rate of the single generator; under the
  // multi-source policies it is the per-source-host mean gap, so the
  // aggregate arrival rate scales with the fabric size.
  SimTime mean_interarrival = SimTime::Micros(100);
  // Per-connection transfer size, uniform in [min, max] — unless `size_cdf`
  // is set, in which case sizes come from the CDF instead.
  std::uint64_t min_transfer_bytes = 8940;
  std::uint64_t max_transfer_bytes = 10 * 8940;
  // Heavy-tailed flow sizes: when non-null, each arrival draws its transfer
  // size from this distribution (one uniform draw per arrival). Shared
  // immutable table — cheap to copy across a sweep grid.
  std::shared_ptr<const FlowSizeCdf> size_cdf;
  // Applied to every CDF draw: bytes = max(1, round(sample * size_scale)),
  // then clamped to size_cap_bytes when nonzero. Lets a bench run the true
  // distribution shape at a wall-time-feasible byte volume.
  double size_scale = 1.0;
  std::uint64_t size_cap_bytes = 0;
  // Concurrency bound: arrivals finding every slot busy are deferred (the
  // arrival process keeps running, so the target is still reached once
  // slots drain).
  std::uint32_t max_concurrent = 16;
  // Application-level patience: a connection not fully closed this long
  // after opening is Abort()ed on both ends. This is what guarantees every
  // opened connection reaches kClosed with a definite reason even when a
  // kHostDown window silently kills an endpoint mid-handshake (a pure
  // receiver with nothing in flight has no retransmission machinery to
  // notice a dead peer — exactly like a real server without keepalives).
  SimTime slot_timeout = SimTime::Millis(40);
  // Rack selection. kFixedPair uses (src_rack, dst_rack); the multi-source
  // policies ignore them and draw per arrival.
  RackPolicy rack_policy = RackPolicy::kFixedPair;
  RackId src_rack = 0;
  RackId dst_rack = 1;
  // kHotspot knobs: target rack and the probability an arrival aims at it.
  RackId hotspot_rack = 0;
  double hotspot_fraction = 0.5;
  // Scope each connection's TDN notifications to its peer's rack (see
  // WorkloadConfig::scope_tdn_to_peer). Required on rotor fabrics.
  bool scope_tdn_to_peer = false;
  Variant variant = Variant::kCubic;  // any non-MPTCP variant
  // Mixed tenant population: when non-empty, each arrival draws its variant
  // from this weighted mix (one draw from the arrival's own stream) instead
  // of using `variant` uniformly. kMptcp entries are rejected (churn cycles
  // are single-subflow TcpConnections). Drawn from the same stream as the
  // arrival's other randomness, so the mix is deterministic per seed.
  std::vector<TenantShare> tenant_mix;
  TcpConfig base;
  // When set, RunExperiment copies workload.base/variant over base/variant
  // so `.WithChurn(n)` inherits the experiment's transport configuration.
  bool inherit_base = true;
  // Churn flows live in their own id range so they never collide with the
  // long-lived workload flows sharing the hosts.
  FlowId first_flow_id = 1'000'000;
  std::uint64_t seed_salt = 0x9e3779b97f4a7c15ull;
};

struct ChurnStats {
  std::uint64_t opened = 0;
  std::uint64_t closed = 0;        // both endpoints reached kClosed
  std::uint64_t deferred = 0;      // arrivals skipped: all slots busy
  std::uint64_t app_timeouts = 0;  // slot_timeout fired, endpoints aborted
  std::uint64_t bytes_completed = 0;  // sender bytes acked at close
  // Sender-side close reasons, indexed by CloseReason.
  std::uint64_t reasons[kNumCloseReasons] = {};
  // Opens per transport variant (meaningful under a tenant mix; with a
  // uniform population everything lands on the configured variant).
  std::uint64_t opened_by_variant[kNumVariants] = {};

  std::uint64_t normal() const {
    return reasons[static_cast<std::size_t>(CloseReason::kNormal)];
  }
  std::uint64_t abnormal() const { return closed - normal(); }
};

// One completed (kNormal) cycle's requested size and completion time: the
// raw material for per-size-bucket FCT percentiles.
struct SizedFct {
  std::uint64_t bytes = 0;
  SimTime fct;
};

class ChurnGenerator {
 public:
  // `seed` is the experiment seed; the generator draws from its own stream
  // (seed ^ seed_salt) so adding churn never perturbs other seeded draws.
  // Under the multi-source policies each source host additionally gets its
  // own splitmix-derived stream, so a source's draw sequence is independent
  // of how arrivals interleave across the fabric.
  // Throws std::invalid_argument when the rack configuration does not fit
  // the topology (out-of-range racks, src == dst, too few racks).
  ChurnGenerator(Simulator& sim, Topology& topo, ChurnConfig config,
                 std::uint64_t seed);
  ~ChurnGenerator() = default;
  ChurnGenerator(const ChurnGenerator&) = delete;
  ChurnGenerator& operator=(const ChurnGenerator&) = delete;

  void Start();

  // Attach a trace ring before Start(): every churned connection emits its
  // lifecycle tracepoints into it (same ring the experiment attaches to the
  // long-lived flows, hosts, and controller).
  void SetTraceRing(TraceRing* ring) { trace_ring_ = ring; }

  // True once every opened connection reached kClosed (slots may still be
  // awaiting their deferred reclamation event).
  bool AllClosed() const { return active_ == 0; }
  const ChurnStats& stats() const { return stats_; }
  // Flow completion time (open -> both ends closed) of every cycle whose
  // sender closed kNormal, in completion order. The short-flow tail
  // percentiles the recovery benches gate on are computed from this.
  const std::vector<SimTime>& fcts() const { return fcts_; }
  // Same completions with their requested transfer sizes, for per-size
  // bucketing (same order as fcts()).
  const std::vector<SizedFct>& sized_fcts() const { return sized_fcts_; }
  // Order-sensitive FNV-1a over every completed connection's
  // (flow, open time, close time, close reasons) — the determinism
  // fingerprint the sweep engine's jobs=1 == jobs=N check compares.
  std::uint64_t hash() const { return hash_; }

 private:
  struct Slot {
    std::unique_ptr<TcpConnection> sender;
    std::unique_ptr<TcpConnection> receiver;
    FlowId flow = 0;
    NodeId src_node = 0;
    NodeId dst_node = 0;
    std::uint64_t bytes = 0;
    SimTime opened_at;
    EventId timeout = kInvalidEventId;
    std::uint8_t closed_ends = 0;
    CloseReason sender_reason = CloseReason::kNone;
    CloseReason receiver_reason = CloseReason::kNone;
    bool in_use = false;
  };

  // A per-host Poisson arrival process (multi-source policies only).
  struct Source {
    RackId rack = 0;
    std::uint32_t host = 0;
    Random rng;
  };

  void ScheduleArrival();
  void OnArrival();
  void ScheduleSourceArrival(std::uint32_t s);
  void OnSourceArrival(std::uint32_t s);
  RackId PickDstRack(RackId src_rack, Random& rng);
  std::uint64_t DrawBytes(Random& rng);
  Variant DrawVariant(Random& rng);
  void OpenSlot(RackId src_rack, std::uint32_t src_host, RackId dst_rack,
                std::uint32_t dst_host, std::uint64_t bytes, Variant variant);
  void OnEndClosed(std::uint32_t idx, bool sender_end, CloseReason reason);
  void OnSlotTimeout(std::uint32_t idx);
  void Reclaim(std::uint32_t idx);
  void Fold(std::uint64_t v);

  Simulator& sim_;
  Topology& topo_;
  ChurnConfig config_;
  TraceRing* trace_ring_ = nullptr;
  Random rng_;
  std::vector<Source> sources_;
  double mix_weight_ = 0.0;  // sum of tenant_mix weights
  RackId permutation_shift_ = 1;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint32_t active_ = 0;
  FlowId next_flow_;
  ChurnStats stats_;
  std::vector<SimTime> fcts_;
  std::vector<SizedFct> sized_fcts_;
  std::uint64_t hash_ = 14695981039346656037ull;  // FNV offset basis
};

}  // namespace tdtcp
