// Workload construction: long-lived bulk flows between a rack pair, one per
// host pair, in any of the paper's transport variants (§5.1: flowgrind-style
// bulk transfers, all flows starting together).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "mptcp/mptcp_connection.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"

namespace tdtcp {

enum class Variant {
  kReno,
  kCubic,
  kDctcp,
  kRetcp,
  kRetcpDyn,
  kMptcp,
  kTdtcp,
};

const char* VariantName(Variant v);
Variant VariantFromName(std::string_view name);

// Translates a variant into engine configuration on top of `base`.
TcpConfig MakeVariantConfig(Variant v, TcpConfig base);

struct WorkloadConfig {
  Variant variant = Variant::kTdtcp;
  std::uint32_t num_flows = 8;
  RackId src_rack = 0;
  RackId dst_rack = 1;
  TcpConfig base;  // shared engine parameters (mss, timers, ...)
  MptcpConnection::Config mptcp;  // used when variant == kMptcp
  FlowId first_flow_id = 1;
};

// One sender/receiver pair. Exactly one of (tcp_*, mptcp_*) is populated.
struct Flow {
  std::unique_ptr<TcpConnection> tcp_sender;
  std::unique_ptr<TcpConnection> tcp_receiver;
  std::unique_ptr<MptcpConnection> mptcp_sender;
  std::unique_ptr<MptcpConnection> mptcp_receiver;

  // Sender-side bytes the transport has reliably delivered (the quantity
  // the paper's sequence graphs plot).
  std::uint64_t bytes_acked() const;
  std::uint64_t reorder_events() const;
  std::uint64_t reorder_marked_lost() const;
  std::uint64_t retransmissions() const;
  // Receiver-side duplicate arrivals: ground truth for spurious
  // retransmissions (a retransmission of data that was never lost shows up
  // as a duplicate; Fig. 10b counts exactly these).
  std::uint64_t duplicate_segments() const;
};

class Workload {
 public:
  Workload(Simulator& sim, Topology& topo, WorkloadConfig config);

  // Connects every flow and switches senders to unlimited data.
  void Start();

  std::uint64_t total_bytes_acked() const;
  std::uint64_t total_reorder_events() const;
  std::uint64_t total_reorder_marked_lost() const;
  std::uint64_t total_duplicate_segments() const;

  std::vector<Flow>& flows() { return flows_; }
  const WorkloadConfig& config() const { return config_; }

 private:
  WorkloadConfig config_;
  std::vector<Flow> flows_;
};

}  // namespace tdtcp
