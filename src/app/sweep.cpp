#include "app/sweep.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>

namespace tdtcp {

int ResolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

void ParallelFor(int jobs, std::size_t n,
                 const std::function<void(std::size_t)>& fn) {
  jobs = ResolveJobs(jobs);
  if (static_cast<std::size_t>(jobs) > n) jobs = static_cast<int>(n);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex error_mu;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int w = 0; w < jobs; ++w) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

// Two-sided 95% Student-t critical values by degrees of freedom; seeds-per-
// cell is small, so the normal 1.96 would understate the interval.
double TCritical95(std::size_t df) {
  static constexpr double kTable[] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return 0;
  if (df <= 30) return kTable[df - 1];
  return 1.96;
}

}  // namespace

MetricStats ComputeStats(const std::vector<double>& values) {
  MetricStats s;
  s.n = values.size();
  if (s.n == 0) return s;
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n < 2) return s;
  double sq = 0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
  s.ci95 = TCritical95(s.n - 1) * s.stddev /
           std::sqrt(static_cast<double>(s.n));
  return s;
}

std::vector<std::pair<std::string, double>> ScalarMetrics(
    const ExperimentResult& r) {
  return {
      {"goodput_bps", r.goodput_bps},
      {"total_bytes", static_cast<double>(r.total_bytes)},
      {"retransmissions", static_cast<double>(r.retransmissions)},
      {"timeouts", static_cast<double>(r.timeouts)},
      {"reorder_events", static_cast<double>(r.reorder_events)},
      {"reorder_marked_lost", static_cast<double>(r.reorder_marked_lost)},
      {"duplicate_segments", static_cast<double>(r.duplicate_segments)},
      {"undo_events", static_cast<double>(r.undo_events)},
      {"cross_tdn_exemptions", static_cast<double>(r.cross_tdn_exemptions)},
      {"faults_injected", static_cast<double>(r.faults_injected)},
      {"notifications_dropped", static_cast<double>(r.notifications_dropped)},
      {"stale_notifications", static_cast<double>(r.stale_notifications)},
      {"tdn_inferred_switches", static_cast<double>(r.tdn_inferred_switches)},
      {"voq_shrink_deferred", static_cast<double>(r.voq_shrink_deferred)},
      // Queue-discipline metrics (PR 6). Inserted mid-list is fine: the
      // regression fixtures pin only the leading entries' order.
      {"voq_drops", static_cast<double>(r.voq_drops)},
      {"voq_ce_marked", static_cast<double>(r.voq_ce_marked)},
      {"voq_codel_drops", static_cast<double>(r.voq_codel_drops)},
      {"voq_codel_marks", static_cast<double>(r.voq_codel_marks)},
      {"voq_delay_marked", static_cast<double>(r.voq_delay_marked)},
      {"voq_shared_rejected", static_cast<double>(r.voq_shared_rejected)},
      {"voq_sojourn_mean_us", r.voq_sojourn_mean_us},
      {"voq_sojourn_p99_us", r.voq_sojourn_p99_us},
      {"voq_sojourn_max_us", r.voq_sojourn_max_us},
      // Masked to the double mantissa so the value survives the JSON
      // round-trip exactly; 53 bits is ample for an equality fingerprint.
      {"trace_hash", static_cast<double>(r.trace_hash & ((1ull << 53) - 1))},
      {"trace_records", static_cast<double>(r.trace_records)},
      // Churn lifecycle metrics (zero when churn was disabled). Appended at
      // the end: downstream consumers index metrics by name, but the sweep
      // regression fixtures pin the leading entries' order.
      {"churn_opened", static_cast<double>(r.churn.opened)},
      {"churn_closed", static_cast<double>(r.churn.closed)},
      {"churn_abnormal", static_cast<double>(r.churn.abnormal())},
      {"churn_app_timeouts", static_cast<double>(r.churn.app_timeouts)},
      {"churn_bytes", static_cast<double>(r.churn.bytes_completed)},
      {"churn_hash", static_cast<double>(r.churn_hash & ((1ull << 53) - 1))},
      {"churn_all_closed", r.churn_all_closed ? 1.0 : 0.0},
      // Host recovery agent metrics (PR 7); appended at the end like the
      // churn family so fixture-pinned leading entries keep their order.
      {"recovery_forced", static_cast<double>(r.recovery_forced)},
      {"recovery_rescued", static_cast<double>(r.recovery_rescued)},
      {"recovery_spurious", static_cast<double>(r.recovery_spurious)},
      // Simulator event-core metrics (batched dispatch + queue bookkeeping);
      // appended at the end like the families above.
      {"sim_events", static_cast<double>(r.sim_events)},
      {"sim_batches", static_cast<double>(r.sim_batches)},
      {"sim_max_batch", static_cast<double>(r.sim_max_batch)},
      {"sim_cohort_hits", static_cast<double>(r.sim_cohort_hits)},
      {"sim_dead_dropped", static_cast<double>(r.sim_dead_dropped)},
      {"sim_compactions", static_cast<double>(r.sim_compactions)},
      // Per-size-bucket FCT tails (this PR); appended at the end like the
      // families above. Bucket b: count + nearest-rank p50/p99/p99.9 in µs.
      {"churn_fct_s_count", static_cast<double>(r.churn_fct_bucket[0].count)},
      {"churn_fct_s_p50_us", r.churn_fct_bucket[0].p50_us},
      {"churn_fct_s_p99_us", r.churn_fct_bucket[0].p99_us},
      {"churn_fct_s_p999_us", r.churn_fct_bucket[0].p999_us},
      {"churn_fct_m_count", static_cast<double>(r.churn_fct_bucket[1].count)},
      {"churn_fct_m_p50_us", r.churn_fct_bucket[1].p50_us},
      {"churn_fct_m_p99_us", r.churn_fct_bucket[1].p99_us},
      {"churn_fct_m_p999_us", r.churn_fct_bucket[1].p999_us},
      {"churn_fct_l_count", static_cast<double>(r.churn_fct_bucket[2].count)},
      {"churn_fct_l_p50_us", r.churn_fct_bucket[2].p50_us},
      {"churn_fct_l_p99_us", r.churn_fct_bucket[2].p99_us},
      {"churn_fct_l_p999_us", r.churn_fct_bucket[2].p999_us},
      {"churn_fct_xl_count", static_cast<double>(r.churn_fct_bucket[3].count)},
      {"churn_fct_xl_p50_us", r.churn_fct_bucket[3].p50_us},
      {"churn_fct_xl_p99_us", r.churn_fct_bucket[3].p99_us},
      {"churn_fct_xl_p999_us", r.churn_fct_bucket[3].p999_us},
      // Convergence-oracle verdicts + schedule-perturbation accounting
      // (appended at the end: fixtures pin the leading order).
      {"stability_converged", static_cast<double>(r.stability_converged)},
      {"stability_oscillating", static_cast<double>(r.stability_oscillating)},
      {"stability_starved", static_cast<double>(r.stability_starved)},
      {"stability_insufficient",
       static_cast<double>(r.stability_insufficient)},
      {"stability_worst_amplitude", r.stability_worst_amplitude},
      {"stability_worst_period_us", r.stability_worst_period_us},
      {"schedule_changes", static_cast<double>(r.schedule_changes)},
      {"restart_holds", static_cast<double>(r.restart_holds)},
      {"tdn_reconfigs", static_cast<double>(r.tdn_reconfigs)},
  };
}

std::vector<std::pair<std::string, MetricStats>> AggregateRuns(
    const std::vector<SweepRun>& runs) {
  std::vector<std::pair<std::string, MetricStats>> out;
  if (runs.empty()) return out;
  const auto names = ScalarMetrics(runs.front().result);
  for (std::size_t m = 0; m < names.size(); ++m) {
    std::vector<double> values;
    values.reserve(runs.size());
    for (const SweepRun& run : runs) {
      values.push_back(ScalarMetrics(run.result)[m].second);
    }
    out.emplace_back(names[m].first, ComputeStats(values));
  }
  return out;
}

std::vector<SweepCase> ExpandGrid(const SweepSpec& spec) {
  const std::vector<Variant> variants =
      spec.variants.empty() ? std::vector<Variant>{spec.base.workload.variant}
                            : spec.variants;
  const std::vector<std::uint64_t> seeds =
      spec.seeds.empty() ? std::vector<std::uint64_t>{spec.base.seed}
                         : spec.seeds;
  const std::vector<SimTime> durations =
      spec.durations.empty() ? std::vector<SimTime>{spec.base.duration}
                             : spec.durations;
  const std::vector<SchedulePoint> schedules =
      spec.schedules.empty()
          ? std::vector<SchedulePoint>{{"", spec.base.schedule}}
          : spec.schedules;
  const std::vector<QdiscPoint> qdiscs =
      spec.qdiscs.empty()
          ? std::vector<QdiscPoint>{{"", spec.base.topology.voq}}
          : spec.qdiscs;

  std::vector<SweepCase> cases;
  cases.reserve(variants.size() * schedules.size() * qdiscs.size() *
                durations.size() * seeds.size());
  for (Variant v : variants) {
    for (const SchedulePoint& sp : schedules) {
      for (const QdiscPoint& qp : qdiscs) {
        for (SimTime d : durations) {
          for (std::uint64_t seed : seeds) {
            SweepCase c;
            c.label = VariantName(v);
            if (!sp.label.empty()) c.label += "/" + sp.label;
            if (!qp.label.empty()) c.label += "/" + qp.label;
            c.schedule_label = sp.label;
            c.qdisc_label = qp.label;
            c.config = spec.base;
            // Qdisc before variant: the variant's queue knobs (DCTCP's ECN
            // threshold) then compose on top of the chosen discipline.
            c.config.WithQdiscConfig(qp.qdisc)
                .WithVariant(v)
                .WithSchedule(sp.schedule)
                .WithDuration(d)
                .WithSeed(seed);
            cases.push_back(std::move(c));
          }
        }
      }
    }
  }
  return cases;
}

std::vector<ExperimentResult> RunCases(const std::vector<SweepCase>& cases,
                                       int jobs) {
  std::vector<ExperimentResult> results(cases.size());
  ParallelFor(jobs, cases.size(), [&](std::size_t i) {
    results[i] = RunExperiment(cases[i].config);
  });
  return results;
}

SweepResult RunSweep(const SweepSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<SweepCase> cases = ExpandGrid(spec);
  const std::size_t seeds_per_cell =
      spec.seeds.empty() ? 1 : spec.seeds.size();

  SweepResult out;
  out.jobs = ResolveJobs(spec.jobs);
  std::vector<ExperimentResult> results = RunCases(cases, spec.jobs);

  for (std::size_t i = 0; i < cases.size(); i += seeds_per_cell) {
    SweepCell cell;
    cell.label = cases[i].label;
    cell.variant = cases[i].config.workload.variant;
    cell.duration = cases[i].config.duration;
    // Axis labels travel on the case itself — no label-string surgery.
    cell.schedule_label = cases[i].schedule_label;
    cell.qdisc_label = cases[i].qdisc_label;
    for (std::size_t k = 0; k < seeds_per_cell; ++k) {
      cell.runs.push_back(
          SweepRun{cases[i + k].config.seed, std::move(results[i + k])});
    }
    cell.metrics = AggregateRuns(cell.runs);
    out.cells.push_back(std::move(cell));
  }

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return out;
}

}  // namespace tdtcp
