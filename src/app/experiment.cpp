#include "app/experiment.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

#include "fault/fault_injector.hpp"
#include "rdcn/rotor_controller.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "trace/replayer.hpp"

namespace tdtcp {

ExperimentConfig& ExperimentConfig::WithVariant(Variant v) {
  workload.variant = v;
  // Reset engine state a previous variant may have left behind so any
  // variant derives cleanly from any base (the workload layer re-enables
  // TDTCP/MPTCP machinery from `variant`).
  workload.base.tdtcp_enabled = false;
  workload.base.num_tdns = 1;
  // DCTCP marks at a shallow threshold (half the VOQ with jumbo frames);
  // everything else never marks.
  topology.voq.ecn_threshold_packets =
      v == Variant::kDctcp ? 12 : std::numeric_limits<std::uint32_t>::max();
  dynamic_voq = (v == Variant::kRetcpDyn);
  return *this;
}

ExperimentConfig& ExperimentConfig::WithQdisc(QdiscKind kind) {
  topology.voq.kind = kind;
  if (kind == QdiscKind::kSharedPool) {
    // Let the dynamic threshold govern admission: the per-queue cap opens up
    // to the whole pool and alpha * free_pool becomes the binding bound.
    topology.voq.capacity_packets = topology.voq.shared_pool_packets;
  }
  return *this;
}

ExperimentConfig PaperConfig(Variant v) {
  ExperimentConfig cfg;
  cfg.workload.num_flows = 8;
  cfg.topology.hosts_per_rack = 16;

  // §5.1 jumbo frames; BDPs: packet ~14 segments, optical ~62.
  cfg.workload.base.mss = 8940;
  cfg.workload.base.initial_cwnd = 10;

  return cfg.WithVariant(v);
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  const int plot_weeks = config.plot_weeks;
  // Rack-pair sanity up front, before any port/host lookup can index past
  // the rack array (the Workload/ChurnGenerator constructors re-validate,
  // but the pair controller dereferences ports first).
  const RackId a = config.workload.src_rack;
  const RackId b = config.workload.dst_rack;
  if (a >= config.topology.num_racks || b >= config.topology.num_racks ||
      a == b) {
    throw std::invalid_argument(
        "RunExperiment: invalid workload rack pair (src=" + std::to_string(a) +
        ", dst=" + std::to_string(b) + ", num_racks=" +
        std::to_string(config.topology.num_racks) + ")");
  }
  Simulator sim;
  sim.set_batched_dispatch(config.batched_dispatch);
  Random rng(config.seed);

  Topology topo(sim, rng, config.topology);

  // Fabric scheduler: the paper's pair controller, or the RotorNet-style
  // rotation over every fabric port.
  std::unique_ptr<RdcnController> controller;
  std::unique_ptr<RotorController> rotor;
  if (config.fabric == FabricKind::kRotor) {
    RotorController::Config rrc;
    rrc.day_length = config.schedule.day_length;
    rrc.night_length = config.schedule.night_length;
    rrc.packet_mode = config.topology.packet_mode;
    rrc.circuit_mode = config.topology.circuit_mode;
    rrc.perturb = config.perturb;
    rrc.seed = config.seed;
    rotor = std::make_unique<RotorController>(sim, rrc, &topo);
  } else {
    RdcnController::Config rc;
    rc.schedule = config.schedule;
    rc.packet_mode = config.topology.packet_mode;
    rc.circuit_mode = config.topology.circuit_mode;
    rc.dynamic_voq = config.dynamic_voq;
    rc.perturb = config.perturb;
    rc.seed = config.seed;
    controller = std::make_unique<RdcnController>(
        sim, rc, std::vector<FabricPort*>{topo.port(a, b), topo.port(b, a)},
        std::vector<ToRSwitch*>{topo.tor(a), topo.tor(b)});
  }
  // TDN-count changes travel the management plane: the controller's reconfig
  // hook fans out to every host synchronously (not via the lossy ICMP path),
  // and each listening connection retires its surplus per-TDN state sets.
  if (!config.perturb.Empty()) {
    auto reconfig = [&topo, &config](std::uint32_t live_tdns) {
      for (RackId rack = 0; rack < config.topology.num_racks; ++rack) {
        for (std::uint32_t i = 0; i < config.topology.hosts_per_rack; ++i) {
          topo.host(rack, i)->DistributeTdnReconfig(live_tdns);
        }
      }
    };
    if (rotor) {
      rotor->SetReconfigHook(reconfig);
    } else {
      controller->SetReconfigHook(reconfig);
    }
  }

  // The recovery axis edits the effective transport config (kOff strips
  // RACK and TLP for a pure-RTO baseline) and, for kAgent, plants one agent
  // per host. Agents are created before any connection so constructors find
  // them via Host::recovery_agent(), and declared before the workload/churn
  // so connections deregister from a live agent during teardown.
  WorkloadConfig effective_workload = config.workload;
  if (config.recovery == RecoveryMode::kOff) {
    effective_workload.base.rack_enabled = false;
    effective_workload.base.tlp_enabled = false;
  }
  std::vector<std::unique_ptr<RecoveryAgent>> agents;
  if (config.recovery == RecoveryMode::kAgent) {
    for (RackId rack = 0; rack < config.topology.num_racks; ++rack) {
      for (std::uint32_t i = 0; i < config.topology.hosts_per_rack; ++i) {
        agents.push_back(std::make_unique<RecoveryAgent>(
            sim, *topo.host(rack, i), config.recovery_config));
      }
    }
  }

  Workload workload(sim, topo, effective_workload);

  std::unique_ptr<ChurnGenerator> churn;
  if (config.churn.enabled) {
    ChurnConfig cc = config.churn;
    if (cc.inherit_base) {
      cc.base = effective_workload.base;
      // Churn cycles are plain TcpConnection pairs; an MPTCP experiment's
      // churn traffic runs the subflow transport instead.
      cc.variant = config.workload.variant == Variant::kMptcp
                       ? Variant::kCubic
                       : config.workload.variant;
    }
    churn = std::make_unique<ChurnGenerator>(sim, topo, cc, config.seed);
  }

  // Arm the fault injector (if any) after the flows exist but before the
  // controller's synchronous t=0 notification, so the very first NotifyHosts
  // already passes through the control-plane fault hook.
  std::unique_ptr<FaultInjector> injector;
  if (!config.fault.Empty()) {
    injector = std::make_unique<FaultInjector>(sim, config.fault, config.seed);
    injector->Arm(topo);
    for (auto& f : workload.flows()) {
      if (f.tcp_sender) f.tcp_sender->SetFaultTraceSource(injector.get());
      if (f.tcp_receiver) f.tcp_receiver->SetFaultTraceSource(injector.get());
    }
  }

  // Tracepoint ring: one per run, shared by the controller, every host, and
  // every plain-TCP endpoint. Wired before controller.Start() so the t=0
  // day boundary and its notifications are already on the record.
  std::unique_ptr<TraceRing> trace_ring;
  std::unique_ptr<TraceRecorder> recorder;
  if (config.trace.enabled) {
    trace_ring = std::make_unique<TraceRing>(config.trace.ring_capacity);
    // The rotor scheduler has no tracepoints of its own; hosts and endpoints
    // still put every notification/lifecycle event on the record.
    if (controller) controller->SetTraceRing(trace_ring.get());
    for (RackId rack = 0; rack < config.topology.num_racks; ++rack) {
      for (std::uint32_t i = 0; i < config.topology.hosts_per_rack; ++i) {
        topo.host(rack, i)->SetTraceRing(trace_ring.get());
      }
    }
    if (churn) churn->SetTraceRing(trace_ring.get());
    for (auto& f : workload.flows()) {
      if (f.tcp_sender) f.tcp_sender->SetTraceRing(trace_ring.get());
      // Both endpoints of a flow share its FlowId, but replay recreates only
      // the sender; the recorded flow's receiver stays off the ring so the
      // flow-filtered stream holds exactly what replay can reproduce.
      if (f.tcp_receiver &&
          f.tcp_receiver->flow() != config.trace.record_flow) {
        f.tcp_receiver->SetTraceRing(trace_ring.get());
      }
    }
    if (config.trace.record_flow != 0) {
      const FlowId first = config.workload.first_flow_id;
      const std::uint32_t idx = config.trace.record_flow - first;
      if (config.trace.record_flow >= first && idx < workload.flows().size() &&
          workload.flows()[idx].tcp_sender) {
        recorder = std::make_unique<TraceRecorder>(
            sim, *workload.flows()[idx].tcp_sender,
            *topo.host(config.workload.src_rack, idx));
      }
    }
  }

  if (rotor) {
    rotor->Start();
  } else {
    controller->Start();
  }
  workload.Start();
  if (churn) churn->Start();
  if (recorder) {
    // Workload::Start just called Connect()/SetUnlimitedData(true) on every
    // sender; mirror them into the recording after the t=0 notification the
    // controller already delivered, preserving invocation order.
    recorder->NoteConnect();
    recorder->NoteUnlimited();
  }

  SeriesSampler seq(sim, config.sample_interval,
                    [&workload] { return static_cast<double>(workload.total_bytes_acked()); });
  seq.Start();

  std::unique_ptr<SeriesSampler> voq;
  if (config.sample_voq) {
    FabricPort* fwd = topo.port(a, b);
    voq = std::make_unique<SeriesSampler>(
        sim, config.sample_interval,
        [fwd] { return static_cast<double>(fwd->voq().occupancy()); });
    voq->Start();
  }

  std::unique_ptr<SeriesSampler> reorder_ev;
  std::unique_ptr<SeriesSampler> reorder_mk;
  std::unique_ptr<SeriesSampler> dup_segs;
  if (config.sample_reorder) {
    reorder_ev = std::make_unique<SeriesSampler>(
        sim, config.sample_interval,
        [&workload] { return static_cast<double>(workload.total_reorder_events()); });
    reorder_ev->Start();
    reorder_mk = std::make_unique<SeriesSampler>(
        sim, config.sample_interval,
        [&workload] { return static_cast<double>(workload.total_reorder_marked_lost()); });
    reorder_mk->Start();
    dup_segs = std::make_unique<SeriesSampler>(
        sim, config.sample_interval,
        [&workload] { return static_cast<double>(workload.total_duplicate_segments()); });
    dup_segs->Start();
  }

  // Goodput measurement window: [warmup, duration].
  std::uint64_t bytes_at_warmup = 0;
  sim.ScheduleNoCancel(config.warmup, [&] { bytes_at_warmup = workload.total_bytes_acked(); });

  sim.RunUntil(config.duration);
  // Freeze the goodput window before any churn drain extends the run.
  const std::uint64_t bytes_at_end = workload.total_bytes_acked();

  if (churn) {
    // Drain: the arrival process runs until it reaches its target — arrivals
    // deferred behind busy slots spill past `duration` — and every open cycle
    // then resolves within slot_timeout of its opening (the app-level abort
    // guarantees it). Step the clock until the generator reports done; the
    // iteration bound is a backstop against misconfiguration, generous enough
    // that hitting it means something is genuinely wedged (which the
    // churn_all_closed result flag then records).
    const SimTime step = config.churn.slot_timeout + SimTime::Millis(1);
    for (int i = 0;
         i < 100000 && !(churn->stats().opened >=
                             config.churn.target_connections &&
                         churn->AllClosed());
         ++i) {
      sim.RunUntil(sim.now() + step);
    }
  }

  const Schedule schedule(config.schedule);

  ExperimentResult r;
  r.variant = config.workload.variant;
  r.week = rotor ? rotor->week_length() : schedule.week_length();
  r.duration = config.duration;
  r.warmup = config.warmup;
  r.total_bytes = bytes_at_end;
  const double window_s = (config.duration - config.warmup).seconds();
  if (window_s > 0) {
    r.goodput_bps =
        static_cast<double>(r.total_bytes - bytes_at_warmup) * 8.0 / window_s;
  }

  r.seq_samples = seq.samples();
  r.seq_curve = FoldWeeks(r.seq_samples, r.week, config.warmup, plot_weeks);
  if (voq) {
    r.voq_samples = voq->samples();
    // VOQ occupancy is a level, not a counter: fold raw values by averaging
    // levels at each offset. Reuse FoldWeeks on (value - week start) would
    // distort; instead fold absolute values via a zero-based trick: FoldWeeks
    // subtracts the week-start value, so add it back by folding value+large
    // constant is wrong. We fold levels directly below.
    r.voq_curve.clear();
    // Direct level folding:
    const auto& s = r.voq_samples;
    if (s.size() >= 2) {
      const SimTime interval = s[1].t - s[0].t;
      const std::int64_t per_week = r.week / interval;
      if (per_week > 0) {
        SimTime aligned = s.front().t + config.warmup;
        const SimTime rem = aligned % r.week;
        if (!rem.IsZero()) aligned += r.week - rem;
        std::size_t start = 0;
        while (start < s.size() && s[start].t < aligned) ++start;
        std::vector<double> sums(static_cast<std::size_t>(per_week), 0.0);
        std::size_t weeks = 0;
        for (std::size_t w = start;
             w + static_cast<std::size_t>(per_week) <= s.size();
             w += static_cast<std::size_t>(per_week)) {
          for (std::int64_t k = 0; k < per_week; ++k) {
            sums[static_cast<std::size_t>(k)] += s[w + static_cast<std::size_t>(k)].value;
          }
          ++weeks;
        }
        if (weeks > 0) {
          for (int pw = 0; pw < plot_weeks; ++pw) {
            for (std::int64_t k = 0; k < per_week; ++k) {
              FoldedPoint p;
              p.offset_us = (interval * k).micros_f() + r.week.micros_f() * pw;
              p.mean = sums[static_cast<std::size_t>(k)] / static_cast<double>(weeks);
              r.voq_curve.push_back(p);
            }
          }
        }
      }
    }
  }

  if (reorder_ev) {
    r.reorder_event_samples = reorder_ev->samples();
    r.reorder_marked_samples = reorder_mk->samples();
    r.reorder_events_per_day =
        PerWeekDeltas(r.reorder_event_samples, r.week, config.warmup);
    r.reorder_marked_per_day =
        PerWeekDeltas(r.reorder_marked_samples, r.week, config.warmup);
    r.spurious_rtx_per_day =
        PerWeekDeltas(dup_segs->samples(), r.week, config.warmup);
  }

  // Analytic reference lines over the plotted window. The "optimal" flow
  // uses the full fabric rate of whichever TDN is active (nights idle); the
  // "packet only" flow holds the packet rate continuously (no blackouts).
  {
    const std::uint64_t pkt = config.topology.packet_mode.rate_bps;
    const std::uint64_t opt = config.topology.circuit_mode.rate_bps;
    const SimTime step = config.sample_interval;
    const SimTime window = r.week * plot_weeks;
    for (SimTime t = SimTime::Zero(); t <= window; t += step) {
      FoldedPoint po;
      po.offset_us = t.micros_f();
      po.mean = schedule.OptimalBits(t, pkt, opt) / 8.0;
      r.optimal_curve.push_back(po);
      FoldedPoint pp;
      pp.offset_us = t.micros_f();
      pp.mean = schedule.PacketOnlyBits(t, pkt) / 8.0;
      r.packet_only_curve.push_back(pp);
    }
  }

  // Aggregate stats.
  for (auto& f : workload.flows()) {
    r.retransmissions += f.retransmissions();
    r.reorder_events += f.reorder_events();
    r.reorder_marked_lost += f.reorder_marked_lost();
    r.duplicate_segments += f.duplicate_segments();
    if (f.tcp_sender) {
      r.undo_events += f.tcp_sender->stats().undo_events;
      r.timeouts += f.tcp_sender->stats().timeouts;
      r.cross_tdn_exemptions += f.tcp_sender->stats().cross_tdn_exemptions;
      r.tdn_inferred_switches += f.tcp_sender->stats().tdn_inferred_switches;
      r.tdn_reconfigs += f.tcp_sender->stats().tdn_reconfigs;
    }
    if (f.tcp_receiver) {
      r.tdn_inferred_switches += f.tcp_receiver->stats().tdn_inferred_switches;
      r.tdn_reconfigs += f.tcp_receiver->stats().tdn_reconfigs;
    }
  }

  // Schedule-perturbation accounting.
  if (rotor) {
    r.schedule_changes = rotor->schedule_changes_applied();
    r.restart_holds = rotor->restart_holds();
  } else if (controller) {
    r.schedule_changes = controller->schedule_changes_applied();
    r.restart_holds = controller->restart_holds();
  }

  // Connection-churn accounting.
  if (churn) {
    r.churn = churn->stats();
    r.churn_hash = churn->hash();
    r.churn_all_closed = churn->AllClosed();
    r.churn_fct_us.reserve(churn->fcts().size());
    for (SimTime fct : churn->fcts()) r.churn_fct_us.push_back(fct.micros_f());
    // Per-size-bucket FCT tails over the same completions (nearest-rank: the
    // tail of a small bucket is an observed sample, not an interpolation).
    std::vector<double> bucket_us[kNumFctBuckets];
    for (const SizedFct& sf : churn->sized_fcts()) {
      bucket_us[FctBucketOf(sf.bytes)].push_back(sf.fct.micros_f());
    }
    for (std::size_t bkt = 0; bkt < kNumFctBuckets; ++bkt) {
      auto& out = r.churn_fct_bucket[bkt];
      out.count = bucket_us[bkt].size();
      out.p50_us = PercentileNearestRank(bucket_us[bkt], 50);
      out.p99_us = PercentileNearestRank(bucket_us[bkt], 99);
      out.p999_us = PercentileNearestRank(bucket_us[bkt], 99.9);
    }
  }

  // Host recovery agent accounting.
  for (const auto& agent : agents) {
    r.recovery_forced += agent->stats().forced;
    r.recovery_rescued += agent->stats().rescued;
    r.recovery_spurious += agent->stats().spurious;
  }

  // Fault/robustness accounting.
  if (injector) {
    r.faults_injected = injector->stats().total();
    r.fault_trace_hash = injector->TraceHash();
    r.notifications_dropped =
        injector->stats().notifications_dropped + injector->stats().stall_dropped;
  }
  for (RackId rack = 0; rack < config.topology.num_racks; ++rack) {
    for (std::uint32_t i = 0; i < config.topology.hosts_per_rack; ++i) {
      r.stale_notifications += topo.host(rack, i)->stale_notifications_dropped();
    }
  }
  {
    const QueueDisc::Stats& qf = topo.port(a, b)->voq().stats();
    const QueueDisc::Stats& qr = topo.port(b, a)->voq().stats();
    r.voq_shrink_deferred = qf.shrink_deferred + qr.shrink_deferred;
    r.voq_drops = qf.dropped + qr.dropped;
    r.voq_ce_marked = qf.ce_marked + qr.ce_marked;
    r.voq_codel_drops = qf.codel_drops + qr.codel_drops;
    r.voq_codel_marks = qf.codel_marks + qr.codel_marks;
    r.voq_delay_marked = qf.delay_marked + qr.delay_marked;
    r.voq_shared_rejected = qf.shared_rejected + qr.shared_rejected;
    // Merge the two ports' sojourn histograms so the percentile reflects
    // every serviced packet on the observed pair.
    QueueDisc::Stats merged;
    merged.sojourn_count = qf.sojourn_count + qr.sojourn_count;
    merged.sojourn_sum_us = qf.sojourn_sum_us + qr.sojourn_sum_us;
    for (std::size_t bkt = 0; bkt < QueueDisc::Stats::kSojournBuckets; ++bkt) {
      merged.sojourn_hist[bkt] = qf.sojourn_hist[bkt] + qr.sojourn_hist[bkt];
    }
    r.voq_sojourn_mean_us = merged.mean_sojourn_us();
    r.voq_sojourn_p99_us = merged.SojournPercentileUs(99);
    r.voq_sojourn_max_us =
        std::max(qf.max_sojourn, qr.max_sojourn).micros_f();
  }
  {
    const Simulator::Stats ss = sim.GetStats();
    r.sim_events = ss.events_executed;
    r.sim_batches = ss.batches;
    r.sim_max_batch = ss.max_batch;
    r.sim_cohort_hits = ss.cohort_hits;
    r.sim_dead_dropped = ss.dead_dropped;
    r.sim_compactions = ss.compactions;
  }
  if (trace_ring) {
    r.trace_hash = trace_ring->Hash();
    r.trace_records = trace_ring->total_emitted();
    if (recorder) {
      r.recorded =
          std::make_shared<RecordedConnection>(recorder->Finish(*trace_ring));
    }
    // Convergence oracle over the post-warmup cwnd evolution of every traced
    // flow (long-lived and churned alike — both emit kTcpCwndUpdate).
    ConvergenceConfig oracle = config.stability;
    oracle.from_ps = config.warmup.picos();
    const ConvergenceReport report =
        ClassifyConvergence(trace_ring->Snapshot(), oracle);
    r.stability_converged = report.flows_converged;
    r.stability_oscillating = report.flows_oscillating;
    r.stability_starved = report.flows_starved;
    r.stability_insufficient = report.flows_insufficient;
    r.stability_worst_amplitude = report.worst_amplitude;
    r.stability_worst_period_us = report.worst_period_us;
  }
  return r;
}

ExperimentResult RunPaperExperiment(Variant v, SimTime duration) {
  return RunExperiment(PaperConfig(v).WithDuration(duration));
}

}  // namespace tdtcp
