// Flow-size distributions for production-style traffic: a deterministic
// piecewise-linear inverse-CDF sampler, the standard DC methodology for
// driving heavy-tailed workloads (the ns-3 "cdf.h" traffic-generator idiom:
// a table of (bytes, cumulative probability) rows, sampled by inverse
// transform with linear interpolation between rows).
//
// Two distributions ship built in — the web-search (DCTCP §2.2) and
// data-mining (VL2) flow-size tables as commonly distributed with the
// pFabric/Conga-style simulation scripts — plus a loader for the on-disk
// "cdf.h" table format so operators can bring their own traces.
//
// Sampling is deterministic: one uniform draw per sample from the caller's
// seeded Random stream, so the same seed always yields the same flow-size
// sequence regardless of thread count or machine.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace tdtcp {

class FlowSizeCdf {
 public:
  struct Point {
    double bytes = 0;  // flow size at this row
    double cum = 0;    // P(size <= bytes), nondecreasing, last row == 1
  };

  // Validates the table: at least two rows, bytes and cum both
  // nondecreasing, cum within [0, 1] with the last row at exactly 1.
  // Throws std::invalid_argument otherwise.
  FlowSizeCdf(std::string name, std::vector<Point> points);

  // The web-search flow-size distribution (DCTCP §2.2): ~60% of flows under
  // 200 KB but ~95% of bytes in the >1 MB tail. Mean ≈ 1.71 MB.
  static FlowSizeCdf Websearch();

  // The data-mining flow-size distribution (VL2): ~80% of flows under
  // 10 KB, with a 100 MB–1 GB super-heavy tail carrying most bytes.
  static FlowSizeCdf Datamining();

  // Loads the ns-3 "cdf.h" table format: one row per line, whitespace
  // separated, first column = size in bytes, last column = cumulative
  // probability (a middle column, when present, is ignored — the classic
  // three-column files carry an unused field). '#' starts a comment.
  static FlowSizeCdf FromFile(const std::string& path);

  // Inverse CDF at u in [0, 1]: linear interpolation in bytes between the
  // bracketing rows (u below the first row's cum returns the first row's
  // bytes). Exposed for tests; Sample() is the sampling entry point.
  double BytesAtQuantile(double u) const;

  // Draws one flow size: a single UniformDouble(0,1) from `rng`, mapped
  // through the inverse CDF and rounded, never less than 1 byte.
  std::uint64_t Sample(Random& rng) const;

  // Analytic mean of the piecewise-linear distribution (trapezoid rule over
  // the rows) — the reference the determinism tests check sample means
  // against.
  double MeanBytes() const;

  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }

 private:
  std::string name_;
  std::vector<Point> points_;
};

// Convenience: the built-in distribution with this name ("websearch" or
// "datamining"); throws std::invalid_argument for anything else.
std::shared_ptr<const FlowSizeCdf> BuiltinFlowSizeCdf(const std::string& name);

}  // namespace tdtcp
