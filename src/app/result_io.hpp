// Versioned sweep-result emission and ingestion.
//
// JSON schema "tdtcp-sweep/1": one document per sweep, carrying the grid
// metadata, every per-seed scalar metric, and the cross-seed aggregates —
// everything a plotting script needs to reproduce a figure with error bars
// without re-running the sweep. Curves (folded series) stay in the CSV
// side-channel (trace/samplers' WriteSeriesCsv) because they are large and
// per-seed identical under a fixed config.
//
// The reader parses exactly the subset of JSON the writer emits (objects,
// arrays, strings, numbers) so results round-trip without third-party
// dependencies.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/sweep.hpp"
// The JSON document model (JsonValue, ParseJson, writer helpers) lives in
// sim/json.hpp so lower layers (trace/) can serialize too; this include
// keeps every existing `result_io.hpp` user compiling unchanged.
#include "sim/json.hpp"

namespace tdtcp {

inline constexpr const char* kSweepSchemaVersion = "tdtcp-sweep/1";

// --- sweep serialization ----------------------------------------------------

// Serializes a SweepResult to schema tdtcp-sweep/1.
std::string SweepToJson(const SweepResult& sweep);
void WriteSweepJson(const std::string& path, const SweepResult& sweep);

// Rebuilds the scalar portion of a SweepResult (cells, per-seed metric
// values, aggregates) from a tdtcp-sweep/1 document. Series/curves are not
// serialized and come back empty. Throws std::runtime_error on schema
// mismatch.
SweepResult SweepFromJson(const std::string& json);
SweepResult ReadSweepJson(const std::string& path);

// Flat CSV: one row per (cell, seed) with every scalar metric as a column,
// then one "aggregate" row per cell with mean/stddev/ci95 triplets.
void WriteSweepCsv(const std::string& path, const SweepResult& sweep);

// --- microbenchmark serialization -------------------------------------------
//
// JSON schema "tdtcp-bench/1": one document per bench_micro invocation. The
// tracked baseline BENCH_sim_core.json at the repo root uses this schema, and
// tools/bench_compare.py diffs two such documents.

inline constexpr const char* kBenchSchemaVersion = "tdtcp-bench/1";

struct BenchRun {
  std::string name;            // e.g. "BM_EventQueueScheduleRun/1024"
  double real_time_ns = 0;     // wall time per iteration
  double cpu_time_ns = 0;      // cpu time per iteration
  double iterations = 0;
  double items_per_second = 0;  // 0 when the benchmark reports no item rate
  std::map<std::string, double> counters;  // finished (rate-resolved) values
};

struct BenchReport {
  std::string context;  // free-form host/build description
  std::vector<BenchRun> runs;

  const BenchRun* Find(const std::string& name) const;
};

std::string BenchToJson(const BenchReport& report);
void WriteBenchJson(const std::string& path, const BenchReport& report);

// Throws std::runtime_error on schema mismatch or missing fields.
BenchReport BenchFromJson(const std::string& json);
BenchReport ReadBenchJson(const std::string& path);

}  // namespace tdtcp
