#include "trace/samplers.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace tdtcp {

std::vector<FoldedPoint> FoldWeeks(const std::vector<Sample>& samples,
                                   SimTime week, SimTime warmup,
                                   int plot_weeks) {
  std::vector<FoldedPoint> out;
  if (samples.size() < 2 || week <= SimTime::Zero()) return out;

  // Assume a fixed sampling interval (SeriesSampler guarantees it).
  const SimTime interval = samples[1].t - samples[0].t;
  if (interval <= SimTime::Zero()) return out;
  const std::int64_t per_week = week / interval;
  if (per_week <= 0) return out;

  // First sample index at/after the first week boundary past warmup.
  const SimTime t0 = samples.front().t;
  SimTime aligned_start = t0 + warmup;
  const SimTime rem = aligned_start % week;
  if (!rem.IsZero()) aligned_start += week - rem;
  std::size_t start = 0;
  while (start < samples.size() && samples[start].t < aligned_start) ++start;

  // Average per-offset progress across complete weeks.
  std::vector<double> sums(static_cast<std::size_t>(per_week) + 1, 0.0);
  std::size_t weeks = 0;
  for (std::size_t w = start;
       w + static_cast<std::size_t>(per_week) < samples.size();
       w += static_cast<std::size_t>(per_week)) {
    const double base = samples[w].value;
    for (std::int64_t k = 0; k <= per_week; ++k) {
      sums[static_cast<std::size_t>(k)] += samples[w + static_cast<std::size_t>(k)].value - base;
    }
    ++weeks;
  }
  if (weeks == 0) return out;

  const double weekly_gain = sums[static_cast<std::size_t>(per_week)] / weeks;
  for (int pw = 0; pw < plot_weeks; ++pw) {
    // Skip the duplicated boundary point on subsequent tiles.
    const std::int64_t first = pw == 0 ? 0 : 1;
    for (std::int64_t k = first; k <= per_week; ++k) {
      FoldedPoint p;
      p.offset_us = (interval * k).micros_f() + week.micros_f() * pw;
      p.mean = sums[static_cast<std::size_t>(k)] / weeks + weekly_gain * pw;
      out.push_back(p);
    }
  }
  return out;
}

std::vector<double> PerWeekDeltas(const std::vector<Sample>& samples,
                                  SimTime week, SimTime warmup) {
  std::vector<double> out;
  if (samples.size() < 2 || week <= SimTime::Zero()) return out;
  const SimTime interval = samples[1].t - samples[0].t;
  const std::int64_t per_week = week / interval;
  if (per_week <= 0) return out;

  const SimTime t0 = samples.front().t;
  SimTime aligned_start = t0 + warmup;
  const SimTime rem = aligned_start % week;
  if (!rem.IsZero()) aligned_start += week - rem;
  std::size_t start = 0;
  while (start < samples.size() && samples[start].t < aligned_start) ++start;

  for (std::size_t w = start;
       w + static_cast<std::size_t>(per_week) < samples.size();
       w += static_cast<std::size_t>(per_week)) {
    out.push_back(samples[w + static_cast<std::size_t>(per_week)].value -
                  samples[w].value);
  }
  return out;
}

std::vector<CdfPoint> MakeCdf(std::vector<double> values) {
  std::vector<CdfPoint> out;
  if (values.empty()) return out;
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back(CdfPoint{values[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

double Percentile(const std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double idx = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(idx));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
  if (lo == hi) return sorted[lo];
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double PercentileNearestRank(const std::vector<double>& values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  std::size_t rank =
      static_cast<std::size_t>(std::ceil(p / 100.0 * n));  // 1-based
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

void WriteSeriesCsv(const std::string& path,
                    const std::vector<NamedSeries>& series) {
  std::ofstream f(path);
  if (!f) return;
  f << "offset_us";
  for (const auto& s : series) f << "," << s.name;
  f << "\n";
  if (series.empty()) return;
  const std::size_t rows = series.front().points.size();
  for (std::size_t i = 0; i < rows; ++i) {
    f << series.front().points[i].offset_us;
    for (const auto& s : series) {
      f << ",";
      if (i < s.points.size()) f << s.points[i].mean;
    }
    f << "\n";
  }
}

void WriteCdfCsv(const std::string& path, const std::string& name,
                 const std::vector<CdfPoint>& cdf) {
  std::ofstream f(path);
  if (!f) return;
  f << name << ",cdf\n";
  for (const auto& p : cdf) f << p.value << "," << p.probability << "\n";
}

}  // namespace tdtcp
