// Tracepoint observability layer.
//
// Instrumented components (TcpConnection, TdnManager, Host, RdcnController)
// emit fixed-size binary TraceRecords into a per-Simulator TraceRing. The
// design goals, in order:
//
//  1. Zero overhead when disabled. Every instrumented component keeps a
//     hoisted `bool has_trace_` next to its hot state (the same pattern as
//     the TapFn packet hooks), so the disabled fast path is one predictable
//     branch — no virtual call, no allocation, no lock.
//  2. Deterministic. Records carry simulated time and integer arguments
//     only; two runs of the same config produce bit-identical streams, which
//     is what the replay oracle (trace/replayer.hpp) asserts and what the
//     order-sensitive ring hash summarizes for jobs=1 == jobs=N checks.
//  3. Allocation-free in steady state. The ring preallocates its buffer at
//     construction and overwrites the oldest record on wraparound.
//
// This header is intentionally self-contained (no link-time dependency) so
// lower layers like tdtcp_stack can include it without linking tdtcp_trace;
// only the cold name table (TracePointName) lives in tracepoints.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/hash.hpp"

namespace tdtcp {

// Every instrumented site. Values are stable serialization IDs: they appear
// in tdtcp-trace/1 documents and checked-in replay fixtures, so append new
// points at the end and never renumber.
enum class TracePoint : std::uint32_t {
  // TCP connection (a0..a3 meanings in trace_io.cpp's argument tables).
  kTcpStateChange = 0,    // a0=old TcpState, a1=new TcpState
  kTcpCaStateChange = 1,  // a0=tdn, a1=old CaState, a2=new CaState
  kTcpCwndUpdate = 2,     // a0=tdn, a1=cwnd (segments), a2=ssthresh
  kTcpTimerArm = 3,       // a0=TraceTimer, a1=deadline ps
  kTcpTimerCancel = 4,    // a0=TraceTimer
  kTcpTimerFire = 5,      // a0=TraceTimer
  kTcpSackEdit = 6,       // a0=TraceSackEdit, a1=seq, a2=len
  kTcpUndo = 7,           // a0=tdn, a1=restored cwnd, a2=restored ssthresh
  // TDTCP.
  kTdnSwitch = 8,         // a0=old tdn, a1=new tdn
  kTdnStateSelect = 9,    // a0=tdn (first use: lazily created per-TDN state)
  // Host notification path.
  kHostNotifyRx = 10,     // a0=tdn, a1=notify_seq, a2=imminent
  kHostNotifyStale = 11,  // a0=tdn, a1=notify_seq (dropped as stale/dup)
  // RDCN controller day/night schedule.
  kRdcnDayStart = 12,     // a0=tdn, a1=day index, a2=is circuit day
  kRdcnNightStart = 13,   // a0=day index, a1=was circuit day
  // Connection lifecycle (teardown / abort paths).
  kTcpClose = 14,         // local Close(): a0=state when called
  kTcpClosed = 15,        // reached kClosed: a0=CloseReason
  kTcpRstOut = 16,        // RST sent: a0=state when generated
  kTcpRstIn = 17,         // RST received: a0=state when it landed
  kTcpFinRx = 18,         // peer FIN consumed in order: a0=fin seq
  // Host NIC state (FaultKind::kHostDown windows).
  kHostNicState = 19,     // a0=enabled (0/1), a3=host NodeId
  // Host recovery agent + timer wheel.
  kRecoveryForced = 20,   // a0=seq, a1=tdn, a2=quiet ps, a3=threshold ps
  kWheelCascade = 21,     // a0=level, a1=slot, a2=entries moved, a3=host NodeId
  // Adversarial-schedule perturbations (rdcn/perturbation.hpp).
  kSchedChange = 22,      // a0=day_length ps, a1=night_length ps, a2=live tdns
  kSchedRestartHold = 23, // a0=hold ps, a1=day index, a2=was night (0/1)
  kTdnRetire = 24,        // a0=live tdn count, a1=sets retired, a2=active moved
};

// Timer identity for kTcpTimer{Arm,Cancel,Fire}.
enum class TraceTimer : std::uint64_t {
  kRto = 0,
  kTlp = 1,
  kPace = 2,
  kPersist = 3,
  kTimeWait = 4,
};

// Scoreboard edit kinds for kTcpSackEdit.
enum class TraceSackEdit : std::uint64_t {
  kSacked = 0,   // segment newly marked sacked
  kLost = 1,     // segment newly marked lost
  kRetrans = 2,  // segment (re)transmitted from the scoreboard
  kAcked = 3,    // segment cumulatively acked and retired
  kUndo = 4,     // DSACK proved a retransmission spurious
};

// One fixed-size binary record. 48 bytes, no padding, trivially copyable —
// fixture comparison and the ring hash are plain memberwise operations.
struct TraceRecord {
  std::int64_t time_ps = 0;   // simulated time of emission
  std::uint32_t point = 0;    // TracePoint
  std::uint32_t flow = 0;     // FlowId, or 0 for host/controller scope
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t a2 = 0;
  std::uint64_t a3 = 0;

  friend bool operator==(const TraceRecord& x, const TraceRecord& y) {
    return x.time_ps == y.time_ps && x.point == y.point && x.flow == y.flow &&
           x.a0 == y.a0 && x.a1 == y.a1 && x.a2 == y.a2 && x.a3 == y.a3;
  }
  friend bool operator!=(const TraceRecord& x, const TraceRecord& y) {
    return !(x == y);
  }
};

static_assert(sizeof(TraceRecord) == 48, "TraceRecord must stay fixed-size");

// Preallocated power-of-two ring. Emit is the only hot entry point: one
// store per field plus a masked increment, no branches on capacity.
class TraceRing {
 public:
  // Capacity is rounded up to a power of two (minimum 2) so the wraparound
  // index is a mask, not a modulo.
  explicit TraceRing(std::size_t capacity = 1u << 16) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    mask_ = cap - 1;
    ring_.resize(cap);
  }

  void Emit(std::int64_t time_ps, TracePoint point, std::uint32_t flow,
            std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0,
            std::uint64_t a3 = 0) {
    TraceRecord& r = ring_[total_ & mask_];
    r.time_ps = time_ps;
    r.point = static_cast<std::uint32_t>(point);
    r.flow = flow;
    r.a0 = a0;
    r.a1 = a1;
    r.a2 = a2;
    r.a3 = a3;
    ++total_;
  }

  std::size_t capacity() const { return mask_ + 1; }
  // Total records ever emitted; min(total, capacity) survive in the ring.
  std::uint64_t total_emitted() const { return total_; }
  std::size_t size() const {
    return total_ < capacity() ? static_cast<std::size_t>(total_)
                               : capacity();
  }

  // Surviving records, oldest first. Allocates — debug/serialization only.
  std::vector<TraceRecord> Snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(size());
    const std::uint64_t begin = total_ < capacity() ? 0 : total_ - capacity();
    for (std::uint64_t i = begin; i < total_; ++i) {
      out.push_back(ring_[i & mask_]);
    }
    return out;
  }

  // Order-sensitive FNV-1a over every surviving record plus the emission
  // count. Identical streams hash identically regardless of how the sweep
  // engine scheduled the runs, which is what the `trace_hash` metric checks.
  std::uint64_t Hash() const {
    Fnv1a64 h;
    h.Mix(total_);
    const std::uint64_t begin = total_ < capacity() ? 0 : total_ - capacity();
    for (std::uint64_t i = begin; i < total_; ++i) {
      const TraceRecord& r = ring_[i & mask_];
      h.Mix(static_cast<std::uint64_t>(r.time_ps));
      h.Mix((static_cast<std::uint64_t>(r.point) << 32) | r.flow);
      h.Mix(r.a0);
      h.Mix(r.a1);
      h.Mix(r.a2);
      h.Mix(r.a3);
    }
    return h.value();
  }

  void Clear() { total_ = 0; }

 private:
  std::vector<TraceRecord> ring_;
  std::size_t mask_ = 0;
  std::uint64_t total_ = 0;
};

// Human-readable name for a point ("tcp_state_change", ...); defined in
// tracepoints.cpp so the table stays out of instrumented objects.
const char* TracePointName(TracePoint p);
const char* TraceTimerName(TraceTimer t);
const char* TraceSackEditName(TraceSackEdit e);

}  // namespace tdtcp
