// Instrumentation: periodic probes, week-folded averaging for the paper's
// "expected TCP sequence number" graphs, per-day counters for Fig. 10's
// CDFs, and CSV/console output helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace tdtcp {

struct Sample {
  SimTime t;
  double value;
};

// Samples `probe` every `interval` until stopped (or forever).
class SeriesSampler {
 public:
  SeriesSampler(Simulator& sim, SimTime interval, std::function<double()> probe)
      : sim_(sim), interval_(interval), probe_(std::move(probe)) {}

  void Start() { Tick(); }

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  void Tick() {
    samples_.push_back(Sample{sim_.now(), probe_()});
    sim_.ScheduleNoCancel(interval_, [this] { Tick(); });
  }

  Simulator& sim_;
  SimTime interval_;
  std::function<double()> probe_;
  std::vector<Sample> samples_;
};

// The paper's sequence graphs average "results across thousands of optical
// weeks". FoldWeeks aligns samples to week boundaries after `warmup`, takes
// each week's progress relative to its own start, and averages per offset:
// the result is the expected progress curve over one (or `plot_weeks`)
// week(s), re-expanded by tiling the expected weekly gain.
struct FoldedPoint {
  double offset_us;  // time since the start of the plotted window
  double mean;       // expected value delta since window start
};

std::vector<FoldedPoint> FoldWeeks(const std::vector<Sample>& samples,
                                   SimTime week, SimTime warmup,
                                   int plot_weeks = 1);

// Per-week deltas of a monotonically increasing counter, aligned to week
// boundaries after `warmup` (Fig. 10 bins its counters per optical day; with
// one optical day per week the two are the same).
std::vector<double> PerWeekDeltas(const std::vector<Sample>& samples,
                                  SimTime week, SimTime warmup);

// Empirical CDF rows: (value, cumulative probability), values ascending.
struct CdfPoint {
  double value;
  double probability;
};
std::vector<CdfPoint> MakeCdf(std::vector<double> values);
// Linear-interpolated percentile (matplotlib-style): idx = p/100 * (N-1),
// lerp between the bracketing order statistics. Smooth for plotting curves.
double Percentile(const std::vector<double>& values, double p);
// Nearest-rank percentile: the ceil(p/100 * N)-th order statistic (1-based),
// clamped to [1, N]; empty input returns 0. Always an observed sample — the
// right semantics for tail gating (p99 of N=2 is the max, not an average),
// and what the FCT reporting uses.
double PercentileNearestRank(const std::vector<double>& values, double p);

// --- output helpers ---------------------------------------------------------

// Writes "col1,col2,..." rows; each series is a named column sharing the x
// grid of the first.
struct NamedSeries {
  std::string name;
  std::vector<FoldedPoint> points;
};

void WriteSeriesCsv(const std::string& path, const std::vector<NamedSeries>& series);
void WriteCdfCsv(const std::string& path, const std::string& name,
                 const std::vector<CdfPoint>& cdf);

}  // namespace tdtcp
