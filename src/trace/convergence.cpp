#include "trace/convergence.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <map>
#include <utility>

namespace tdtcp {

const char* ConvergenceVerdictName(ConvergenceVerdict v) {
  switch (v) {
    case ConvergenceVerdict::kInsufficient: return "insufficient";
    case ConvergenceVerdict::kConverged: return "converged";
    case ConvergenceVerdict::kOscillating: return "oscillating";
    case ConvergenceVerdict::kStarved: return "starved";
  }
  return "?";
}

SeriesVerdict ClassifySeries(const std::vector<CwndSample>& samples,
                             const ConvergenceConfig& config) {
  SeriesVerdict out;
  double sum = 0.0;
  std::uint32_t lo = 0, hi = 0;
  bool first = true;
  // Cycle detection state: one cycle = the series drops into the bottom
  // quarter of its range and later climbs into the top quarter. Two passes —
  // the bands depend on min/max, which need the full series first.
  std::vector<std::int64_t> kept_times;
  std::vector<std::uint32_t> kept_cwnds;
  for (const CwndSample& s : samples) {
    if (s.time_ps < config.from_ps) continue;
    kept_times.push_back(s.time_ps);
    kept_cwnds.push_back(s.cwnd);
    sum += s.cwnd;
    if (first) {
      lo = hi = s.cwnd;
      first = false;
    } else {
      lo = std::min(lo, s.cwnd);
      hi = std::max(hi, s.cwnd);
    }
  }
  out.num_points = kept_cwnds.size();
  if (out.num_points < config.min_points) {
    out.verdict = ConvergenceVerdict::kInsufficient;
    return out;
  }
  out.mean_cwnd = sum / static_cast<double>(out.num_points);
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  out.amplitude = hi > 0 ? range / static_cast<double>(hi) : 0.0;

  // Hysteresis-band traversals low -> high, recording when each cycle tops
  // out so period regularity can be judged.
  const double band_lo = static_cast<double>(lo) + 0.25 * range;
  const double band_hi = static_cast<double>(hi) - 0.25 * range;
  std::vector<std::int64_t> cycle_tops;
  bool armed = false;  // saw the bottom band since the last top
  for (std::size_t i = 0; i < kept_cwnds.size(); ++i) {
    const double c = kept_cwnds[i];
    if (c <= band_lo) armed = true;
    if (armed && c >= band_hi) {
      cycle_tops.push_back(kept_times[i]);
      armed = false;
    }
  }
  out.cycles = cycle_tops.size();
  double period_cv = 0.0;
  if (cycle_tops.size() >= 2) {
    std::vector<double> periods;
    periods.reserve(cycle_tops.size() - 1);
    for (std::size_t i = 1; i < cycle_tops.size(); ++i) {
      periods.push_back(static_cast<double>(cycle_tops[i] - cycle_tops[i - 1]));
    }
    double psum = 0.0;
    for (double p : periods) psum += p;
    const double pmean = psum / static_cast<double>(periods.size());
    double var = 0.0;
    for (double p : periods) var += (p - pmean) * (p - pmean);
    var /= static_cast<double>(periods.size());
    period_cv = pmean > 0.0 ? std::sqrt(var) / pmean : 0.0;
    out.period_us = pmean / 1e6;  // ps -> us
  }

  const bool oscillating = out.amplitude >= config.osc_amplitude &&
                           out.cycles >= config.min_cycles &&
                           out.cycles >= 2 && period_cv <= config.max_period_cv;
  if (oscillating) {
    out.verdict = ConvergenceVerdict::kOscillating;
  } else if (out.mean_cwnd <= config.starved_cwnd) {
    out.verdict = ConvergenceVerdict::kStarved;
  } else {
    out.verdict = ConvergenceVerdict::kConverged;
  }
  return out;
}

ConvergenceReport ClassifyConvergence(const std::vector<TraceRecord>& records,
                                      const ConvergenceConfig& config) {
  // std::map: deterministic (flow, tdn) iteration order, so the report rows
  // (and the scalar rollups fed into result hashes) never depend on hash
  // seeding.
  std::map<std::pair<FlowId, TdnId>, std::vector<CwndSample>> by_series;
  for (const TraceRecord& r : records) {
    const auto p = static_cast<TracePoint>(r.point);
    if (p != TracePoint::kTcpCwndUpdate && p != TracePoint::kTcpUndo) continue;
    if (r.flow == 0) continue;
    by_series[{static_cast<FlowId>(r.flow), static_cast<TdnId>(r.a0)}]
        .push_back({r.time_ps, static_cast<std::uint32_t>(r.a1)});
  }

  ConvergenceReport report;
  FlowId current_flow = 0;
  bool have_flow = false;
  // Per-flow rollup accumulators.
  bool any_osc = false, any_starved = false, any_judged = false;
  auto flush_flow = [&] {
    if (!have_flow) return;
    if (any_osc) {
      ++report.flows_oscillating;
    } else if (any_starved) {
      ++report.flows_starved;
    } else if (any_judged) {
      ++report.flows_converged;
    } else {
      ++report.flows_insufficient;
    }
    any_osc = any_starved = any_judged = false;
  };
  for (auto& [key, samples] : by_series) {
    if (!have_flow || key.first != current_flow) {
      flush_flow();
      current_flow = key.first;
      have_flow = true;
    }
    SeriesVerdict v = ClassifySeries(samples, config);
    v.flow = key.first;
    v.tdn = key.second;
    switch (v.verdict) {
      case ConvergenceVerdict::kOscillating:
        any_osc = true;
        any_judged = true;
        if (v.amplitude > report.worst_amplitude) {
          report.worst_amplitude = v.amplitude;
          report.worst_period_us = v.period_us;
        }
        break;
      case ConvergenceVerdict::kStarved:
        any_starved = true;
        any_judged = true;
        break;
      case ConvergenceVerdict::kConverged:
        any_judged = true;
        break;
      case ConvergenceVerdict::kInsufficient:
        break;
    }
    report.series.push_back(v);
  }
  flush_flow();
  return report;
}

}  // namespace tdtcp
