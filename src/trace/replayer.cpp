#include "trace/replayer.hpp"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <memory>

#include "net/link.hpp"

namespace tdtcp {

namespace {

// Replay runs the sender against a void: transmissions vanish, and every
// response the sender ever saw arrives from the recording instead.
struct DiscardSink : PacketSink {
  void HandlePacket(Packet&&) override {}
};

}  // namespace

TraceRecorder::TraceRecorder(Simulator& sim, TcpConnection& conn, Host& host)
    : sim_(sim), conn_(conn), host_(host) {
  assert(!conn.config().mptcp && "recording MPTCP subflows is unsupported");
  conn_.SetPacketTap([this](TcpConnection::TapDirection dir, const Packet& p) {
    if (dir != TcpConnection::TapDirection::kRx) return;
    RecordedEvent ev;
    ev.t_ps = sim_.now().picos();
    ev.kind = RecordedEvent::Kind::kPacket;
    ev.packet = p;
    events_.push_back(std::move(ev));
  });
  // Registered after the connection's own listener, so under the pull model
  // both hear a notification synchronously at the same sim time and the
  // recorded order matches the connection's processing order.
  host_.AddTdnListener(
      this,
      [this](TdnId tdn, bool imminent) {
        RecordedEvent ev;
        ev.t_ps = sim_.now().picos();
        ev.kind = RecordedEvent::Kind::kNotify;
        ev.tdn = tdn;
        ev.imminent = imminent;
        events_.push_back(ev);
      },
      conn_.config().peer_rack);
}

TraceRecorder::~TraceRecorder() {
  host_.RemoveTdnListener(this);
  conn_.SetPacketTap(nullptr);
}

void TraceRecorder::NoteConnect() {
  events_.push_back(
      RecordedEvent{sim_.now().picos(), RecordedEvent::Kind::kConnect});
}

void TraceRecorder::NoteUnlimited() {
  events_.push_back(
      RecordedEvent{sim_.now().picos(), RecordedEvent::Kind::kUnlimited});
}

void TraceRecorder::NoteAppData(std::uint64_t bytes) {
  RecordedEvent ev;
  ev.t_ps = sim_.now().picos();
  ev.kind = RecordedEvent::Kind::kAppData;
  ev.app_bytes = bytes;
  events_.push_back(ev);
}

void TraceRecorder::NoteClose() {
  events_.push_back(
      RecordedEvent{sim_.now().picos(), RecordedEvent::Kind::kClose});
}

RecordedConnection TraceRecorder::Finish(const TraceRing& ring) const {
  RecordedConnection rec;
  rec.flow = conn_.flow();
  rec.host = host_.id();
  rec.peer = 0;  // informational; replay addresses nothing by peer id
  rec.end_ps = sim_.now().picos();
  rec.config = conn_.config();
  rec.cc_name =
      rec.config.cc_factory ? rec.config.cc_factory()->name() : "cubic";
  for (const CcFactory& f : rec.config.per_tdn_cc) {
    rec.per_tdn_cc.push_back(f ? f()->name() : "cubic");
  }
  rec.events = events_;
  rec.wrapped = ring.total_emitted() > ring.capacity();
  for (const TraceRecord& r : ring.Snapshot()) {
    if (r.flow == rec.flow) rec.records.push_back(r);
  }
  rec.hash = HashTraceRecords(rec.records);
  return rec;
}

std::string FormatTraceRecord(const TraceRecord& r) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "t=%" PRId64 "ps point=%s flow=%u a0=%" PRIu64 " a1=%" PRIu64
                " a2=%" PRIu64 " a3=%" PRIu64,
                r.time_ps, TracePointName(static_cast<TracePoint>(r.point)),
                r.flow, r.a0, r.a1, r.a2, r.a3);
  return buf;
}

ReplayResult ReplayConnection(const RecordedConnection& rec) {
  ReplayResult out;
  if (rec.wrapped) {
    out.message =
        "recording wrapped its ring: the stream is a suffix and cannot "
        "anchor a from-the-start replay (raise TraceOptions::ring_capacity)";
    return out;
  }

  Simulator sim;
  DiscardSink discard;
  Link::Config lc;
  lc.rate_bps = 1'000'000'000'000;  // effectively instant; tx is discarded
  lc.propagation = SimTime::Nanos(1);
  lc.queue.capacity_packets = 1u << 16;
  Link uplink(sim, lc, &discard);
  Host host(sim, rec.host);
  host.AttachUplink(&uplink);

  // The ring must hold the whole replayed stream: wraparound here would
  // silently drop the prefix the comparison anchors on.
  TraceRing ring(std::max<std::size_t>(1u << 16, 2 * rec.records.size() + 16));

  TcpConnection conn(sim, &host, rec.flow, rec.peer, rec.config);
  conn.SetTraceRing(&ring);

  // Pre-schedule every ingress event at its recorded absolute time. Events
  // sharing a timestamp fire in schedule order, which is the recorded order.
  // Events are captured by pointer into rec.events (alive for the whole
  // replay) to keep the lambda within the inline event capture budget.
  for (const RecordedEvent& ev : rec.events) {
    const RecordedEvent* evp = &ev;
    sim.ScheduleAtNoCancel(SimTime::Picos(ev.t_ps), [&conn, evp] {
      switch (evp->kind) {
        case RecordedEvent::Kind::kConnect:
          conn.Connect();
          break;
        case RecordedEvent::Kind::kUnlimited:
          conn.SetUnlimitedData(true);
          break;
        case RecordedEvent::Kind::kAppData:
          conn.AddAppData(evp->app_bytes);
          break;
        case RecordedEvent::Kind::kPacket:
          conn.HandlePacket(Packet(evp->packet));
          break;
        case RecordedEvent::Kind::kNotify:
          conn.OnTdnChange(evp->tdn, evp->imminent);
          break;
        case RecordedEvent::Kind::kClose:
          conn.Close();
          break;
      }
    });
  }

  sim.RunUntil(SimTime::Picos(rec.end_ps));

  std::vector<TraceRecord> got;
  for (const TraceRecord& r : ring.Snapshot()) {
    if (r.flow == rec.flow) got.push_back(r);
  }
  out.hash = HashTraceRecords(got);
  out.record_count = got.size();

  const std::size_t n = std::min(got.size(), rec.records.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (got[i] != rec.records[i]) {
      out.mismatch_index = i;
      out.message = "record " + std::to_string(i) +
                    " diverged:\n  expected " + FormatTraceRecord(rec.records[i]) +
                    "\n  replayed " + FormatTraceRecord(got[i]);
      return out;
    }
  }
  if (got.size() != rec.records.size()) {
    out.mismatch_index = n;
    out.message = "stream length diverged: expected " +
                  std::to_string(rec.records.size()) + " records, replay emitted " +
                  std::to_string(got.size());
    if (got.size() > rec.records.size()) {
      out.message += "\n  first extra " + FormatTraceRecord(got[n]);
    } else {
      out.message += "\n  first missing " + FormatTraceRecord(rec.records[n]);
    }
    return out;
  }

  out.ok = true;
  out.message = "replayed " + std::to_string(out.record_count) +
                " records bit-identically";
  return out;
}

}  // namespace tdtcp
