// Human-readable packet logging — the simulator counterpart of the paper
// artifact's Wireshark TDTCP dissector. Attach to a TcpConnection's packet
// tap; each event becomes a tcpdump-like line with the TDTCP options
// (TD_DATA_ACK TDN tags), SACK blocks, ECN/circuit marks, and MPTCP DSS
// fields decoded.
#pragma once

#include <deque>
#include <string>

#include "net/packet.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"

namespace tdtcp {

// Formats one packet event as a single log line.
std::string FormatPacketLine(SimTime now, TcpConnection::TapDirection dir,
                             const Packet& p);

// Ring-buffer packet log. Attach() installs the tap; Dump() returns (and
// optionally a test inspects) the retained lines.
class FlowLogger {
 public:
  explicit FlowLogger(Simulator& sim, std::size_t max_lines = 4096)
      : sim_(sim), max_lines_(max_lines) {}

  void Attach(TcpConnection& conn) {
    conn.SetPacketTap(
        [this](TcpConnection::TapDirection dir, const Packet& p) {
          Record(dir, p);
        });
  }

  void Record(TcpConnection::TapDirection dir, const Packet& p) {
    lines_.push_back(FormatPacketLine(sim_.now(), dir, p));
    if (lines_.size() > max_lines_) lines_.pop_front();
  }

  const std::deque<std::string>& lines() const { return lines_; }
  std::string Dump() const;

 private:
  Simulator& sim_;
  std::size_t max_lines_;
  std::deque<std::string> lines_;
};

}  // namespace tdtcp
