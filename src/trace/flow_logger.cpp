#include "trace/flow_logger.hpp"

#include <cstdio>

namespace tdtcp {

std::string FormatPacketLine(SimTime now, TcpConnection::TapDirection dir,
                             const Packet& p) {
  char buf[256];
  int n = std::snprintf(buf, sizeof(buf), "%10.3fus %s ",
                        now.micros_f(),
                        dir == TcpConnection::TapDirection::kTx ? "->" : "<-");
  std::string line(buf, static_cast<std::size_t>(n));

  switch (p.type) {
    case PacketType::kTdnNotify:
      std::snprintf(buf, sizeof(buf), "ICMP tdn-change active_tdn=%u%s",
                    p.notify_tdn,
                    p.circuit_imminent ? " [circuit imminent]" : "");
      line += buf;
      if (p.notify_peer != kAllRacks) {
        std::snprintf(buf, sizeof(buf), " peer_rack=%u", p.notify_peer);
        line += buf;
      }
      return line;
    case PacketType::kData:
      if (p.syn) {
        std::snprintf(buf, sizeof(buf), "SYN%s%s", p.ack ? "/ACK" : "",
                      p.td_capable ? " <TD_CAPABLE" : "");
        line += buf;
        if (p.td_capable) {
          std::snprintf(buf, sizeof(buf), " tdns=%u>", p.td_num_tdns);
          line += buf;
        }
        return line;
      }
      std::snprintf(buf, sizeof(buf), "DATA seq=%llu len=%u",
                    static_cast<unsigned long long>(p.seq), p.payload);
      line += buf;
      if (p.data_tdn != kNoTdn) {
        std::snprintf(buf, sizeof(buf), " <TD_DATA_ACK D tdn=%u>", p.data_tdn);
        line += buf;
      }
      break;
    case PacketType::kAck:
      std::snprintf(buf, sizeof(buf), "ACK %llu",
                    static_cast<unsigned long long>(p.ack));
      line += buf;
      for (std::uint8_t i = 0; i < p.num_sack; ++i) {
        std::snprintf(buf, sizeof(buf), " sack[%llu,%llu)",
                      static_cast<unsigned long long>(p.sack[i].start),
                      static_cast<unsigned long long>(p.sack[i].end));
        line += buf;
      }
      if (p.ack_tdn != kNoTdn) {
        std::snprintf(buf, sizeof(buf), " <TD_DATA_ACK A tdn=%u>", p.ack_tdn);
        line += buf;
      }
      if (p.ece) line += " ECE";
      break;
  }
  if (p.ecn == Ecn::kCe) line += " CE";
  if (p.circuit_mark) line += " [circuit]";
  if (p.circuit_echo) line += " [circuit-echo]";
  if (p.is_mptcp && p.has_dss) {
    std::snprintf(buf, sizeof(buf), " dss=%llu dack=%llu sf=%u",
                  static_cast<unsigned long long>(p.dss_seq),
                  static_cast<unsigned long long>(p.dss_ack), p.subflow);
    line += buf;
  }
  return line;
}

std::string FlowLogger::Dump() const {
  std::string out;
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  return out;
}

}  // namespace tdtcp
