// Convergence oracle: classifies each flow's cwnd evolution as converged,
// oscillating (limit cycle), or starved, from the same kTcpCwndUpdate /
// kTcpUndo records ExtractCwndEvolution consumes. bench_stability's phase
// diagrams and the stability_* scalar metrics are built on these verdicts,
// so "the schedule destabilized the transport" is a machine-checked claim,
// not an eyeballed plot.
//
// Algorithm (per (flow, tdn) series, post-warmup):
//   1. Fewer than min_points samples -> insufficient (too short to judge).
//   2. Oscillating: relative amplitude (max-min)/max >= osc_amplitude AND at
//      least min_cycles full low->high traversals of a 25% hysteresis band
//      AND the inter-cycle periods are regular (CV <= max_period_cv). The
//      hysteresis band rejects one-off loss episodes; the period-regularity
//      test rejects ordinary AIMD sawtooth noise and keeps only schedule-
//      locked limit cycles.
//   3. Starved: mean cwnd <= starved_cwnd (the window never grows).
//   4. Otherwise converged.
// Oscillation is tested BEFORE starvation so a periodic-collapse limit
// cycle (RTO backoff phase-locked with the rotation week: cwnd ramps then
// collapses to 1 every week) classifies as oscillating, not starved.
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {

enum class ConvergenceVerdict : std::uint8_t {
  kInsufficient = 0,  // too few post-warmup samples to judge
  kConverged = 1,
  kOscillating = 2,
  kStarved = 3,
};

const char* ConvergenceVerdictName(ConvergenceVerdict v);

struct ConvergenceConfig {
  // Ignore samples before this time (slow-start and ramp-up are expected to
  // look wild; the oracle judges steady state).
  std::int64_t from_ps = 0;
  std::size_t min_points = 8;
  // Starvation threshold: mean cwnd at or below this many segments.
  double starved_cwnd = 2.0;
  // Oscillation tests (see file comment).
  double osc_amplitude = 0.6;
  std::size_t min_cycles = 3;
  double max_period_cv = 0.55;
};

// One (flow, tdn) cwnd series' verdict.
struct SeriesVerdict {
  FlowId flow = 0;
  TdnId tdn = 0;
  ConvergenceVerdict verdict = ConvergenceVerdict::kInsufficient;
  std::size_t num_points = 0;
  double mean_cwnd = 0.0;
  double amplitude = 0.0;   // (max-min)/max, 0 when max == 0
  double period_us = 0.0;   // mean inter-cycle period (0 if < 2 cycles)
  std::size_t cycles = 0;   // full low->high band traversals
};

struct ConvergenceReport {
  std::vector<SeriesVerdict> series;
  // Flow-level rollup: a flow is oscillating if any of its TDN series
  // oscillates, else starved if any starves, else converged if any series
  // had enough samples, else insufficient.
  std::uint64_t flows_converged = 0;
  std::uint64_t flows_oscillating = 0;
  std::uint64_t flows_starved = 0;
  std::uint64_t flows_insufficient = 0;
  // Worst certified oscillator across all series (phase-diagram cells);
  // zero when nothing oscillates.
  double worst_amplitude = 0.0;
  double worst_period_us = 0.0;  // period of the highest-amplitude oscillator
};

// Classify one already-extracted series of (time_ps, cwnd) samples. The
// samples must be in emission order (TraceRing order qualifies).
struct CwndSample {
  std::int64_t time_ps = 0;
  std::uint32_t cwnd = 0;
};
SeriesVerdict ClassifySeries(const std::vector<CwndSample>& samples,
                             const ConvergenceConfig& config);

// Scan a trace snapshot, group kTcpCwndUpdate/kTcpUndo by (flow, tdn), and
// classify everything.
ConvergenceReport ClassifyConvergence(const std::vector<TraceRecord>& records,
                                      const ConvergenceConfig& config);

}  // namespace tdtcp
