// Serialization for the tracepoint layer: the `tdtcp-trace/1` JSON schema.
//
// Two document shapes share the schema:
//   * a plain ring dump — header + `records` array (tools/trace2tsv.py
//     consumes these for time-sequence / cwnd-evolution extraction);
//   * a replay fixture — the same plus a `recorded` section holding the
//     RecordedConnection (engine config snapshot + ordered ingress events)
//     that trace/replayer.hpp re-executes and asserts bit-identical.
//
// JSON numbers are doubles, so every serialized integer must stay below
// 2^53. Times (picoseconds), sequence numbers, and tracepoint arguments all
// do for any run the fixtures cover; the full 64-bit ring hash does not and
// is therefore written as a hex string.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "tcp/tcp_connection.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {

// One ingress event the recorded connection consumed, in wall (simulated)
// order. Replay re-schedules these at their absolute times; everything else
// the connection did (timers, transmissions) re-derives deterministically.
struct RecordedEvent {
  enum class Kind : std::uint8_t {
    kConnect,    // TcpConnection::Connect()
    kUnlimited,  // SetUnlimitedData(true)
    kAppData,    // AddAppData(app_bytes)
    kPacket,     // HandlePacket(packet)
    kNotify,     // OnTdnChange(tdn, imminent)
    kClose,      // TcpConnection::Close()
  };
  std::int64_t t_ps = 0;
  Kind kind = Kind::kConnect;
  std::uint64_t app_bytes = 0;   // kAppData
  Packet packet{};               // kPacket
  TdnId tdn = 0;                 // kNotify
  bool imminent = false;         // kNotify
};

// Everything needed to re-execute one connection and check its tracepoint
// stream: the engine config (cc modules by registry name so documents can
// rebuild the factory), the ordered ingress events, and the expected
// records (this connection's flow only, oldest first).
struct RecordedConnection {
  FlowId flow = 0;
  NodeId host = 0;
  NodeId peer = 0;
  std::int64_t end_ps = 0;  // sim time of the snapshot; replay runs to here
  TcpConfig config;         // cc_factory/per_tdn_cc rebuilt from names on load
  std::string cc_name = "cubic";
  std::vector<std::string> per_tdn_cc;
  std::vector<RecordedEvent> events;
  std::vector<TraceRecord> records;
  std::uint64_t hash = 0;  // HashTraceRecords(records)
  // True when the ring overwrote older records before the snapshot: the
  // stream is a suffix, so it cannot anchor a from-the-start replay.
  bool wrapped = false;
};

// Order-sensitive FNV-1a over a record sequence (the same mix as
// TraceRing::Hash, applied to an already-extracted vector).
std::uint64_t HashTraceRecords(const std::vector<TraceRecord>& records);

// Plain ring dump (no replay section). `records` should come from
// TraceRing::Snapshot().
std::string TraceToJson(const std::vector<TraceRecord>& records);

// Replay fixture round-trip. Readers throw std::runtime_error on schema
// mismatch or malformed input.
std::string RecordedConnectionToJson(const RecordedConnection& rec);
RecordedConnection RecordedConnectionFromJson(const std::string& text);
void WriteRecordedConnection(const std::string& path,
                             const RecordedConnection& rec);
RecordedConnection ReadRecordedConnection(const std::string& path);

// --- analysis extractions ---------------------------------------------------
// The C++ twins of tools/trace2tsv.py's --cwnd / --timeseq modes, so tests
// can assert on the same views the plotting pipeline consumes.

// cwnd/ssthresh evolution: every kTcpCwndUpdate / kTcpUndo for `flow`.
struct CwndPoint {
  std::int64_t time_ps = 0;
  TdnId tdn = 0;
  std::uint32_t cwnd = 0;
  std::uint32_t ssthresh = 0;
};
std::vector<CwndPoint> ExtractCwndEvolution(
    const std::vector<TraceRecord>& records, FlowId flow);

// Sender-side time-sequence: cumulative highest byte retired, from the
// kTcpSackEdit/kAcked records (a1=seq, a2=len).
struct TimeSeqPoint {
  std::int64_t time_ps = 0;
  std::uint64_t acked_through = 0;  // first unretired byte
};
std::vector<TimeSeqPoint> ExtractTimeSequence(
    const std::vector<TraceRecord>& records, FlowId flow);

}  // namespace tdtcp
