#include "trace/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "cc/registry.hpp"
#include "sim/json.hpp"

namespace tdtcp {

namespace {

constexpr const char* kTraceSchema = "tdtcp-trace/1";

std::string U64ToHex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, v);
  return buf;
}

std::uint64_t HexToU64(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

// Writer helper: appends `"key":value` pairs, inserting commas as needed.
class ObjectWriter {
 public:
  explicit ObjectWriter(std::string& out) : out_(out) { out_ += '{'; }
  void Num(const char* key, double v) {
    Key(key);
    out_ += NumberToJson(v);
  }
  void Int(const char* key, std::int64_t v) { Num(key, static_cast<double>(v)); }
  void U64(const char* key, std::uint64_t v) {
    Num(key, static_cast<double>(v));
  }
  void Bool(const char* key, bool v) {
    Key(key);
    out_ += v ? "true" : "false";
  }
  void Str(const char* key, const std::string& v) {
    Key(key);
    out_ += '"';
    out_ += EscapeJson(v);
    out_ += '"';
  }
  void Raw(const char* key, const std::string& v) {
    Key(key);
    out_ += v;
  }
  void Close() { out_ += '}'; }

 private:
  void Key(const char* key) {
    if (!first_) out_ += ',';
    first_ = false;
    out_ += '"';
    out_ += key;
    out_ += "\":";
  }
  std::string& out_;
  bool first_ = true;
};

std::string RecordsToJsonArray(const std::vector<TraceRecord>& records) {
  std::string out = "[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const TraceRecord& r = records[i];
    if (i) out += ',';
    out += '[';
    out += NumberToJson(static_cast<double>(r.time_ps));
    out += ',';
    out += NumberToJson(r.point);
    out += ',';
    out += NumberToJson(r.flow);
    out += ',';
    out += NumberToJson(static_cast<double>(r.a0));
    out += ',';
    out += NumberToJson(static_cast<double>(r.a1));
    out += ',';
    out += NumberToJson(static_cast<double>(r.a2));
    out += ',';
    out += NumberToJson(static_cast<double>(r.a3));
    out += ']';
  }
  out += ']';
  return out;
}

std::vector<TraceRecord> RecordsFromJsonArray(const JsonValue& arr) {
  if (arr.type != JsonValue::Type::kArray) {
    throw std::runtime_error("tdtcp-trace: records must be an array");
  }
  std::vector<TraceRecord> out;
  out.reserve(arr.array.size());
  for (const JsonValue& jr : arr.array) {
    if (jr.type != JsonValue::Type::kArray || jr.array.size() != 7) {
      throw std::runtime_error("tdtcp-trace: malformed record");
    }
    TraceRecord r;
    r.time_ps = static_cast<std::int64_t>(jr.array[0].number);
    r.point = static_cast<std::uint32_t>(jr.array[1].number);
    r.flow = static_cast<std::uint32_t>(jr.array[2].number);
    r.a0 = static_cast<std::uint64_t>(jr.array[3].number);
    r.a1 = static_cast<std::uint64_t>(jr.array[4].number);
    r.a2 = static_cast<std::uint64_t>(jr.array[5].number);
    r.a3 = static_cast<std::uint64_t>(jr.array[6].number);
    out.push_back(r);
  }
  return out;
}

// The point-name map keeps trace2tsv.py in sync with the enum without a
// duplicated table on the Python side.
std::string PointNamesJson() {
  std::string out = "{";
  for (std::uint32_t p = 0; p <= static_cast<std::uint32_t>(TracePoint::kTdnRetire); ++p) {
    if (p) out += ',';
    out += '"';
    out += std::to_string(p);
    out += "\":\"";
    out += TracePointName(static_cast<TracePoint>(p));
    out += '"';
  }
  out += '}';
  return out;
}

// Packet serialization: defaults are omitted so ACK-heavy fixtures stay
// small. The reader starts from a default-constructed Packet, which makes
// the omission lossless.
std::string PacketToJson(const Packet& p) {
  std::string out;
  ObjectWriter w(out);
  const Packet d;
  if (p.flow != d.flow) w.U64("flow", p.flow);
  if (p.src != d.src) w.U64("src", p.src);
  if (p.dst != d.dst) w.U64("dst", p.dst);
  if (p.type != d.type) w.Int("type", static_cast<int>(p.type));
  if (p.size_bytes != d.size_bytes) w.U64("size", p.size_bytes);
  if (p.pinned_path != d.pinned_path) w.Int("pin", p.pinned_path);
  if (p.seq != d.seq) w.U64("seq", p.seq);
  if (p.ack != d.ack) w.U64("ack", p.ack);
  if (p.payload != d.payload) w.U64("payload", p.payload);
  if (p.rcv_window != d.rcv_window) w.U64("rwnd", p.rcv_window);
  if (p.has_rwnd != d.has_rwnd) w.Bool("has_rwnd", p.has_rwnd);
  if (p.syn != d.syn) w.Bool("syn", p.syn);
  if (p.fin != d.fin) w.Bool("fin", p.fin);
  if (p.rst != d.rst) w.Bool("rst", p.rst);
  if (p.ece != d.ece) w.Bool("ece", p.ece);
  if (p.cwr != d.cwr) w.Bool("cwr", p.cwr);
  if (p.num_sack > 0) {
    std::string sacks = "[";
    for (std::uint8_t i = 0; i < p.num_sack; ++i) {
      if (i) sacks += ',';
      sacks += '[';
      sacks += NumberToJson(static_cast<double>(p.sack[i].start));
      sacks += ',';
      sacks += NumberToJson(static_cast<double>(p.sack[i].end));
      sacks += ']';
    }
    sacks += ']';
    w.Raw("sack", sacks);
  }
  if (p.ecn != d.ecn) w.Int("ecn", static_cast<int>(p.ecn));
  if (p.circuit_mark != d.circuit_mark) w.Bool("cmark", p.circuit_mark);
  if (p.circuit_echo != d.circuit_echo) w.Bool("cecho", p.circuit_echo);
  if (p.td_capable != d.td_capable) w.Bool("td_capable", p.td_capable);
  if (p.td_num_tdns != d.td_num_tdns) w.Int("td_num_tdns", p.td_num_tdns);
  if (p.data_tdn != d.data_tdn) w.Int("data_tdn", p.data_tdn);
  if (p.ack_tdn != d.ack_tdn) w.Int("ack_tdn", p.ack_tdn);
  if (p.notify_tdn != d.notify_tdn) w.Int("notify_tdn", p.notify_tdn);
  if (p.circuit_imminent != d.circuit_imminent) {
    w.Bool("imminent", p.circuit_imminent);
  }
  if (p.notify_peer != d.notify_peer) w.U64("notify_peer", p.notify_peer);
  if (p.notify_seq != d.notify_seq) w.U64("notify_seq", p.notify_seq);
  if (p.subflow != d.subflow) w.Int("subflow", p.subflow);
  if (p.has_dss != d.has_dss) w.Bool("has_dss", p.has_dss);
  if (p.dss_seq != d.dss_seq) w.U64("dss_seq", p.dss_seq);
  if (p.dss_ack != d.dss_ack) w.U64("dss_ack", p.dss_ack);
  if (p.dss_rwnd != d.dss_rwnd) w.U64("dss_rwnd", p.dss_rwnd);
  if (p.is_mptcp != d.is_mptcp) w.Bool("is_mptcp", p.is_mptcp);
  if (!p.sent_time.IsZero()) w.Int("sent_ps", p.sent_time.picos());
  if (!p.enqueue_time.IsZero()) w.Int("enq_ps", p.enqueue_time.picos());
  w.Close();
  return out;
}

double NumOr(const JsonValue& obj, const char* key, double def) {
  const JsonValue* v = obj.Find(key);
  return v ? v->NumberOr(def) : def;
}

bool BoolOr(const JsonValue& obj, const char* key, bool def) {
  // ParseJson models true/false as numbers 1/0.
  const JsonValue* v = obj.Find(key);
  return v ? v->NumberOr(def ? 1 : 0) != 0 : def;
}

Packet PacketFromJson(const JsonValue& j) {
  Packet p;
  p.flow = static_cast<FlowId>(NumOr(j, "flow", p.flow));
  p.src = static_cast<NodeId>(NumOr(j, "src", p.src));
  p.dst = static_cast<NodeId>(NumOr(j, "dst", p.dst));
  p.type = static_cast<PacketType>(
      static_cast<int>(NumOr(j, "type", static_cast<int>(p.type))));
  p.size_bytes = static_cast<std::uint32_t>(NumOr(j, "size", p.size_bytes));
  p.pinned_path = static_cast<std::int8_t>(NumOr(j, "pin", p.pinned_path));
  p.seq = static_cast<std::uint64_t>(NumOr(j, "seq", 0));
  p.ack = static_cast<std::uint64_t>(NumOr(j, "ack", 0));
  p.payload = static_cast<std::uint32_t>(NumOr(j, "payload", 0));
  p.rcv_window = static_cast<std::uint32_t>(NumOr(j, "rwnd", 0));
  p.has_rwnd = BoolOr(j, "has_rwnd", false);
  p.syn = BoolOr(j, "syn", false);
  p.fin = BoolOr(j, "fin", false);
  p.rst = BoolOr(j, "rst", false);
  p.ece = BoolOr(j, "ece", false);
  p.cwr = BoolOr(j, "cwr", false);
  if (const JsonValue* sacks = j.Find("sack")) {
    for (const JsonValue& b : sacks->array) {
      if (p.num_sack >= kMaxSackBlocks) break;
      p.sack[p.num_sack].start = static_cast<std::uint64_t>(b.array[0].number);
      p.sack[p.num_sack].end = static_cast<std::uint64_t>(b.array[1].number);
      ++p.num_sack;
    }
  }
  p.ecn = static_cast<Ecn>(static_cast<int>(NumOr(j, "ecn", 0)));
  p.circuit_mark = BoolOr(j, "cmark", false);
  p.circuit_echo = BoolOr(j, "cecho", false);
  p.td_capable = BoolOr(j, "td_capable", false);
  p.td_num_tdns = static_cast<std::uint8_t>(NumOr(j, "td_num_tdns", 0));
  p.data_tdn = static_cast<TdnId>(NumOr(j, "data_tdn", kNoTdn));
  p.ack_tdn = static_cast<TdnId>(NumOr(j, "ack_tdn", kNoTdn));
  p.notify_tdn = static_cast<TdnId>(NumOr(j, "notify_tdn", kNoTdn));
  p.circuit_imminent = BoolOr(j, "imminent", false);
  p.notify_peer = static_cast<RackId>(NumOr(j, "notify_peer", p.notify_peer));
  p.notify_seq = static_cast<std::uint64_t>(NumOr(j, "notify_seq", 0));
  p.subflow = static_cast<std::uint8_t>(NumOr(j, "subflow", 0));
  p.has_dss = BoolOr(j, "has_dss", false);
  p.dss_seq = static_cast<std::uint64_t>(NumOr(j, "dss_seq", 0));
  p.dss_ack = static_cast<std::uint64_t>(NumOr(j, "dss_ack", 0));
  p.dss_rwnd = static_cast<std::uint64_t>(NumOr(j, "dss_rwnd", 0));
  p.is_mptcp = BoolOr(j, "is_mptcp", false);
  p.sent_time = SimTime::Picos(static_cast<std::int64_t>(NumOr(j, "sent_ps", 0)));
  p.enqueue_time =
      SimTime::Picos(static_cast<std::int64_t>(NumOr(j, "enq_ps", 0)));
  return p;
}

const char* EventKindName(RecordedEvent::Kind k) {
  switch (k) {
    case RecordedEvent::Kind::kConnect: return "connect";
    case RecordedEvent::Kind::kUnlimited: return "unlimited";
    case RecordedEvent::Kind::kAppData: return "appdata";
    case RecordedEvent::Kind::kPacket: return "packet";
    case RecordedEvent::Kind::kNotify: return "notify";
    case RecordedEvent::Kind::kClose: return "close";
  }
  return "?";
}

RecordedEvent::Kind EventKindFromName(const std::string& name) {
  if (name == "connect") return RecordedEvent::Kind::kConnect;
  if (name == "unlimited") return RecordedEvent::Kind::kUnlimited;
  if (name == "appdata") return RecordedEvent::Kind::kAppData;
  if (name == "packet") return RecordedEvent::Kind::kPacket;
  if (name == "notify") return RecordedEvent::Kind::kNotify;
  if (name == "close") return RecordedEvent::Kind::kClose;
  throw std::runtime_error("tdtcp-trace: unknown event kind " + name);
}

std::string EventToJson(const RecordedEvent& ev) {
  std::string out;
  ObjectWriter w(out);
  w.Int("t", ev.t_ps);
  w.Str("kind", EventKindName(ev.kind));
  switch (ev.kind) {
    case RecordedEvent::Kind::kAppData:
      w.U64("bytes", ev.app_bytes);
      break;
    case RecordedEvent::Kind::kPacket:
      w.Raw("pkt", PacketToJson(ev.packet));
      break;
    case RecordedEvent::Kind::kNotify:
      w.Int("tdn", ev.tdn);
      w.Bool("imminent", ev.imminent);
      break;
    default:
      break;
  }
  w.Close();
  return out;
}

RecordedEvent EventFromJson(const JsonValue& j) {
  RecordedEvent ev;
  ev.t_ps = static_cast<std::int64_t>(NumOr(j, "t", 0));
  const JsonValue* kind = j.Find("kind");
  if (!kind) throw std::runtime_error("tdtcp-trace: event without kind");
  ev.kind = EventKindFromName(kind->string);
  ev.app_bytes = static_cast<std::uint64_t>(NumOr(j, "bytes", 0));
  if (const JsonValue* pkt = j.Find("pkt")) ev.packet = PacketFromJson(*pkt);
  ev.tdn = static_cast<TdnId>(NumOr(j, "tdn", 0));
  ev.imminent = BoolOr(j, "imminent", false);
  return ev;
}

// Engine-config snapshot. Only fields that influence sender behavior are
// serialized; MPTCP plumbing is out of scope for recorded fixtures (the
// recorder refuses mptcp connections).
std::string ConfigToJson(const RecordedConnection& rec) {
  const TcpConfig& c = rec.config;
  std::string out;
  ObjectWriter w(out);
  w.U64("mss", c.mss);
  w.U64("header_bytes", c.header_bytes);
  w.U64("ack_bytes", c.ack_bytes);
  w.U64("initial_cwnd", c.initial_cwnd);
  w.U64("snd_buf_bytes", c.snd_buf_bytes);
  w.U64("rcv_buf_bytes", c.rcv_buf_bytes);
  w.Bool("tdtcp_enabled", c.tdtcp_enabled);
  w.Int("num_tdns", c.num_tdns);
  w.Bool("relaxed_reordering", c.relaxed_reordering);
  w.Bool("per_tdn_rtt", c.per_tdn_rtt);
  w.Bool("synthesized_rto", c.synthesized_rto);
  w.Bool("invariant_checks", c.invariant_checks);
  w.Bool("tdn_inference", c.tdn_inference);
  w.U64("tdn_infer_packets", c.tdn_infer_packets);
  w.Bool("sack_enabled", c.sack_enabled);
  w.U64("dupack_threshold", c.dupack_threshold);
  w.Bool("rack_enabled", c.rack_enabled);
  w.Bool("tlp_enabled", c.tlp_enabled);
  w.Bool("ecn_enabled", c.ecn_enabled);
  w.Int("initial_rto_ps", c.rtt.initial_rto.picos());
  w.Int("min_rto_ps", c.rtt.min_rto.picos());
  w.Int("max_rto_ps", c.rtt.max_rto.picos());
  w.U64("max_syn_retries", c.max_syn_retries);
  w.U64("max_synack_retries", c.max_synack_retries);
  w.U64("max_rto_retries", c.max_rto_retries);
  w.U64("max_persist_retries", c.max_persist_retries);
  w.Int("time_wait_ps", c.time_wait_duration.picos());
  w.Bool("close_on_peer_fin", c.close_on_peer_fin);
  w.Bool("pacing_enabled", c.pacing_enabled);
  w.Num("pacing_gain", c.pacing_gain);
  w.Str("cc", rec.cc_name);
  if (!rec.per_tdn_cc.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < rec.per_tdn_cc.size(); ++i) {
      if (i) arr += ',';
      arr += '"';
      arr += EscapeJson(rec.per_tdn_cc[i]);
      arr += '"';
    }
    arr += ']';
    w.Raw("per_tdn_cc", arr);
  }
  w.U64("peer_rack", c.peer_rack);
  w.Close();
  return out;
}

void ConfigFromJson(const JsonValue& j, RecordedConnection& rec) {
  TcpConfig c;
  c.mss = static_cast<std::uint32_t>(NumOr(j, "mss", c.mss));
  c.header_bytes =
      static_cast<std::uint32_t>(NumOr(j, "header_bytes", c.header_bytes));
  c.ack_bytes = static_cast<std::uint32_t>(NumOr(j, "ack_bytes", c.ack_bytes));
  c.initial_cwnd =
      static_cast<std::uint32_t>(NumOr(j, "initial_cwnd", c.initial_cwnd));
  c.snd_buf_bytes = static_cast<std::uint64_t>(
      NumOr(j, "snd_buf_bytes", static_cast<double>(c.snd_buf_bytes)));
  c.rcv_buf_bytes = static_cast<std::uint64_t>(
      NumOr(j, "rcv_buf_bytes", static_cast<double>(c.rcv_buf_bytes)));
  c.tdtcp_enabled = BoolOr(j, "tdtcp_enabled", c.tdtcp_enabled);
  c.num_tdns = static_cast<std::uint8_t>(NumOr(j, "num_tdns", c.num_tdns));
  c.relaxed_reordering = BoolOr(j, "relaxed_reordering", c.relaxed_reordering);
  c.per_tdn_rtt = BoolOr(j, "per_tdn_rtt", c.per_tdn_rtt);
  c.synthesized_rto = BoolOr(j, "synthesized_rto", c.synthesized_rto);
  c.invariant_checks = BoolOr(j, "invariant_checks", c.invariant_checks);
  c.tdn_inference = BoolOr(j, "tdn_inference", c.tdn_inference);
  c.tdn_infer_packets = static_cast<std::uint32_t>(
      NumOr(j, "tdn_infer_packets", c.tdn_infer_packets));
  c.sack_enabled = BoolOr(j, "sack_enabled", c.sack_enabled);
  c.dupack_threshold = static_cast<std::uint32_t>(
      NumOr(j, "dupack_threshold", c.dupack_threshold));
  c.rack_enabled = BoolOr(j, "rack_enabled", c.rack_enabled);
  c.tlp_enabled = BoolOr(j, "tlp_enabled", c.tlp_enabled);
  c.ecn_enabled = BoolOr(j, "ecn_enabled", c.ecn_enabled);
  c.rtt.initial_rto = SimTime::Picos(static_cast<std::int64_t>(
      NumOr(j, "initial_rto_ps", c.rtt.initial_rto.picos())));
  c.rtt.min_rto = SimTime::Picos(static_cast<std::int64_t>(
      NumOr(j, "min_rto_ps", c.rtt.min_rto.picos())));
  c.rtt.max_rto = SimTime::Picos(static_cast<std::int64_t>(
      NumOr(j, "max_rto_ps", c.rtt.max_rto.picos())));
  c.max_syn_retries = static_cast<std::uint32_t>(
      NumOr(j, "max_syn_retries", c.max_syn_retries));
  c.max_synack_retries = static_cast<std::uint32_t>(
      NumOr(j, "max_synack_retries", c.max_synack_retries));
  c.max_rto_retries = static_cast<std::uint32_t>(
      NumOr(j, "max_rto_retries", c.max_rto_retries));
  c.max_persist_retries = static_cast<std::uint32_t>(
      NumOr(j, "max_persist_retries", c.max_persist_retries));
  c.time_wait_duration = SimTime::Picos(static_cast<std::int64_t>(
      NumOr(j, "time_wait_ps", c.time_wait_duration.picos())));
  c.close_on_peer_fin = BoolOr(j, "close_on_peer_fin", c.close_on_peer_fin);
  c.pacing_enabled = BoolOr(j, "pacing_enabled", c.pacing_enabled);
  c.pacing_gain = NumOr(j, "pacing_gain", c.pacing_gain);
  c.peer_rack = static_cast<RackId>(NumOr(j, "peer_rack", c.peer_rack));

  rec.cc_name = "cubic";
  if (const JsonValue* cc = j.Find("cc")) rec.cc_name = cc->string;
  c.cc_factory = MakeCcFactory(rec.cc_name);
  rec.per_tdn_cc.clear();
  if (const JsonValue* per = j.Find("per_tdn_cc")) {
    for (const JsonValue& name : per->array) {
      rec.per_tdn_cc.push_back(name.string);
      c.per_tdn_cc.push_back(MakeCcFactory(name.string));
    }
  }
  rec.config = std::move(c);
}

}  // namespace

std::uint64_t HashTraceRecords(const std::vector<TraceRecord>& records) {
  Fnv1a64 h;
  h.Mix(records.size());
  for (const TraceRecord& r : records) {
    h.Mix(static_cast<std::uint64_t>(r.time_ps));
    h.Mix((static_cast<std::uint64_t>(r.point) << 32) | r.flow);
    h.Mix(r.a0);
    h.Mix(r.a1);
    h.Mix(r.a2);
    h.Mix(r.a3);
  }
  return h.value();
}

std::string TraceToJson(const std::vector<TraceRecord>& records) {
  std::string out;
  ObjectWriter w(out);
  w.Str("schema", kTraceSchema);
  w.Str("hash", U64ToHex(HashTraceRecords(records)));
  w.Raw("points", PointNamesJson());
  w.Raw("records", RecordsToJsonArray(records));
  w.Close();
  return out;
}

std::string RecordedConnectionToJson(const RecordedConnection& rec) {
  std::string out;
  ObjectWriter w(out);
  w.Str("schema", kTraceSchema);
  w.Str("hash", U64ToHex(rec.hash));
  w.Raw("points", PointNamesJson());
  {
    std::string r;
    ObjectWriter rw(r);
    rw.U64("flow", rec.flow);
    rw.U64("host", rec.host);
    rw.U64("peer", rec.peer);
    rw.Int("end_ps", rec.end_ps);
    rw.Bool("wrapped", rec.wrapped);
    rw.Raw("config", ConfigToJson(rec));
    std::string evs = "[";
    for (std::size_t i = 0; i < rec.events.size(); ++i) {
      if (i) evs += ',';
      evs += EventToJson(rec.events[i]);
    }
    evs += ']';
    rw.Raw("events", evs);
    rw.Close();
    w.Raw("recorded", r);
  }
  w.Raw("records", RecordsToJsonArray(rec.records));
  w.Close();
  return out;
}

RecordedConnection RecordedConnectionFromJson(const std::string& text) {
  const JsonValue doc = ParseJson(text);
  const JsonValue* schema = doc.Find("schema");
  if (!schema || schema->string != kTraceSchema) {
    throw std::runtime_error("tdtcp-trace: unsupported schema");
  }
  const JsonValue* recorded = doc.Find("recorded");
  if (!recorded) {
    throw std::runtime_error("tdtcp-trace: document has no recorded section");
  }
  RecordedConnection rec;
  rec.flow = static_cast<FlowId>(NumOr(*recorded, "flow", 0));
  rec.host = static_cast<NodeId>(NumOr(*recorded, "host", 0));
  rec.peer = static_cast<NodeId>(NumOr(*recorded, "peer", 0));
  rec.end_ps = static_cast<std::int64_t>(NumOr(*recorded, "end_ps", 0));
  rec.wrapped = BoolOr(*recorded, "wrapped", false);
  if (const JsonValue* cfg = recorded->Find("config")) {
    ConfigFromJson(*cfg, rec);
  }
  if (const JsonValue* evs = recorded->Find("events")) {
    for (const JsonValue& je : evs->array) {
      rec.events.push_back(EventFromJson(je));
    }
  }
  if (const JsonValue* records = doc.Find("records")) {
    rec.records = RecordsFromJsonArray(*records);
  }
  rec.hash = HashTraceRecords(rec.records);
  if (const JsonValue* h = doc.Find("hash")) {
    if (HexToU64(h->string) != rec.hash) {
      throw std::runtime_error(
          "tdtcp-trace: stored hash does not match records (corrupt fixture?)");
    }
  }
  return rec;
}

void WriteRecordedConnection(const std::string& path,
                             const RecordedConnection& rec) {
  WriteTextFile(path, RecordedConnectionToJson(rec));
}

RecordedConnection ReadRecordedConnection(const std::string& path) {
  return RecordedConnectionFromJson(ReadTextFile(path));
}

std::vector<CwndPoint> ExtractCwndEvolution(
    const std::vector<TraceRecord>& records, FlowId flow) {
  std::vector<CwndPoint> out;
  for (const TraceRecord& r : records) {
    if (r.flow != flow) continue;
    const auto p = static_cast<TracePoint>(r.point);
    if (p != TracePoint::kTcpCwndUpdate && p != TracePoint::kTcpUndo) continue;
    CwndPoint c;
    c.time_ps = r.time_ps;
    c.tdn = static_cast<TdnId>(r.a0);
    c.cwnd = static_cast<std::uint32_t>(r.a1);
    c.ssthresh = static_cast<std::uint32_t>(r.a2);
    out.push_back(c);
  }
  return out;
}

std::vector<TimeSeqPoint> ExtractTimeSequence(
    const std::vector<TraceRecord>& records, FlowId flow) {
  std::vector<TimeSeqPoint> out;
  std::uint64_t high = 0;
  for (const TraceRecord& r : records) {
    if (r.flow != flow) continue;
    if (static_cast<TracePoint>(r.point) != TracePoint::kTcpSackEdit) continue;
    if (static_cast<TraceSackEdit>(r.a0) != TraceSackEdit::kAcked) continue;
    const std::uint64_t through = r.a1 + r.a2;
    if (through <= high) continue;
    high = through;
    out.push_back(TimeSeqPoint{r.time_ps, high});
  }
  return out;
}

}  // namespace tdtcp
