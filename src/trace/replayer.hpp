// Deterministic trace replay oracle.
//
// TraceRecorder captures everything a live TcpConnection consumes — its
// lifecycle calls, every packet it receives, every TDN notification its
// host delivers — alongside the tracepoint stream it emitted.
// ReplayConnection re-executes those ingress events against a fresh
// engine (fresh Simulator, a host whose uplink discards transmissions)
// and asserts that the re-emitted tracepoint stream is bit-identical.
//
// What this catches: any nondeterminism in the TCP/TDTCP state machines
// (iteration-order dependence, uninitialized reads, hidden wall-clock or
// RNG inputs) and any behavioral drift against checked-in fixtures — a
// code change that alters a recorded connection's decisions fails replay
// even if every aggregate statistic happens to come out the same.
//
// Scope: plain TCP/TDTCP senders (no MPTCP meta-connection plumbing), and
// hosts using the pull notification model — under the push model the
// recorder's listener hears notifications at its own stagger slot, not the
// connection's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/host.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "trace/trace_io.hpp"
#include "trace/tracepoints.hpp"

namespace tdtcp {

// Attach to a live connection before it connects; the recorder installs the
// connection's packet tap (rx direction) and registers a host TDN listener
// with the connection's rack filter. Lifecycle calls the harness makes on
// the connection (Connect, SetUnlimitedData, AddAppData) are not
// interceptable, so the harness mirrors them through Note*() at the moment
// it makes them.
class TraceRecorder {
 public:
  TraceRecorder(Simulator& sim, TcpConnection& conn, Host& host);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void NoteConnect();
  void NoteUnlimited();
  void NoteAppData(std::uint64_t bytes);
  void NoteClose();

  // Snapshot: engine config + ingress events + the ring's records for this
  // connection's flow, hashed. Call after the simulation finished (the
  // current sim time becomes the replay horizon).
  RecordedConnection Finish(const TraceRing& ring) const;

 private:
  Simulator& sim_;
  TcpConnection& conn_;
  Host& host_;
  std::vector<RecordedEvent> events_;
};

struct ReplayResult {
  bool ok = false;
  std::size_t record_count = 0;   // records compared
  std::size_t mismatch_index = 0; // first divergence (valid when !ok)
  std::string message;            // human-readable verdict
  std::uint64_t hash = 0;         // hash of the replayed stream
};

// Re-executes `rec` and compares tracepoint streams record by record.
ReplayResult ReplayConnection(const RecordedConnection& rec);

// Formats one record for diagnostics: "t=... point=tcp_timer_arm ...".
std::string FormatTraceRecord(const TraceRecord& r);

}  // namespace tdtcp
