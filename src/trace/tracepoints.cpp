#include "trace/tracepoints.hpp"

namespace tdtcp {

const char* TracePointName(TracePoint p) {
  switch (p) {
    case TracePoint::kTcpStateChange: return "tcp_state_change";
    case TracePoint::kTcpCaStateChange: return "tcp_ca_state_change";
    case TracePoint::kTcpCwndUpdate: return "tcp_cwnd_update";
    case TracePoint::kTcpTimerArm: return "tcp_timer_arm";
    case TracePoint::kTcpTimerCancel: return "tcp_timer_cancel";
    case TracePoint::kTcpTimerFire: return "tcp_timer_fire";
    case TracePoint::kTcpSackEdit: return "tcp_sack_edit";
    case TracePoint::kTcpUndo: return "tcp_undo";
    case TracePoint::kTdnSwitch: return "tdn_switch";
    case TracePoint::kTdnStateSelect: return "tdn_state_select";
    case TracePoint::kHostNotifyRx: return "host_notify_rx";
    case TracePoint::kHostNotifyStale: return "host_notify_stale";
    case TracePoint::kRdcnDayStart: return "rdcn_day_start";
    case TracePoint::kRdcnNightStart: return "rdcn_night_start";
    case TracePoint::kTcpClose: return "tcp_close";
    case TracePoint::kTcpClosed: return "tcp_closed";
    case TracePoint::kTcpRstOut: return "tcp_rst_out";
    case TracePoint::kTcpRstIn: return "tcp_rst_in";
    case TracePoint::kTcpFinRx: return "tcp_fin_rx";
    case TracePoint::kHostNicState: return "host_nic_state";
    case TracePoint::kRecoveryForced: return "recovery_forced";
    case TracePoint::kWheelCascade: return "wheel_cascade";
    case TracePoint::kSchedChange: return "sched_change";
    case TracePoint::kSchedRestartHold: return "sched_restart_hold";
    case TracePoint::kTdnRetire: return "tdn_retire";
  }
  return "unknown";
}

const char* TraceTimerName(TraceTimer t) {
  switch (t) {
    case TraceTimer::kRto: return "rto";
    case TraceTimer::kTlp: return "tlp";
    case TraceTimer::kPace: return "pace";
    case TraceTimer::kPersist: return "persist";
    case TraceTimer::kTimeWait: return "time_wait";
  }
  return "unknown";
}

const char* TraceSackEditName(TraceSackEdit e) {
  switch (e) {
    case TraceSackEdit::kSacked: return "sacked";
    case TraceSackEdit::kLost: return "lost";
    case TraceSackEdit::kRetrans: return "retrans";
    case TraceSackEdit::kAcked: return "acked";
    case TraceSackEdit::kUndo: return "undo";
  }
  return "unknown";
}

}  // namespace tdtcp
