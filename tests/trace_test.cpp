// Instrumentation: samplers, week folding, per-day deltas, CDFs, CSV output.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cc/registry.hpp"
#include "sim/simulator.hpp"
#include "trace/flow_logger.hpp"
#include "trace/samplers.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

TEST(SeriesSampler, SamplesAtFixedInterval) {
  Simulator sim;
  double value = 0;
  SeriesSampler s(sim, SimTime::Micros(10), [&] { return value; });
  s.Start();
  sim.Schedule(SimTime::Micros(25), [&] { value = 7; });
  sim.RunUntil(SimTime::Micros(100));
  ASSERT_GE(s.samples().size(), 10u);
  EXPECT_EQ(s.samples()[0].t, SimTime::Zero());
  EXPECT_EQ(s.samples()[1].t, SimTime::Micros(10));
  EXPECT_EQ(s.samples()[2].value, 0.0);
  EXPECT_EQ(s.samples()[3].value, 7.0);  // t=30 > 25
}

std::vector<Sample> LinearCounter(SimTime interval, int n, double slope) {
  std::vector<Sample> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(Sample{interval * i, slope * i});
  }
  return out;
}

TEST(FoldWeeks, LinearSeriesFoldsToLinearCurve) {
  // 10-sample weeks, value grows 2 per sample.
  auto samples = LinearCounter(SimTime::Micros(10), 101, 2.0);
  auto curve = FoldWeeks(samples, SimTime::Micros(100), SimTime::Zero(), 1);
  ASSERT_EQ(curve.size(), 11u);
  EXPECT_DOUBLE_EQ(curve.front().mean, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().mean, 20.0);
  EXPECT_DOUBLE_EQ(curve[5].offset_us, 50.0);
  EXPECT_DOUBLE_EQ(curve[5].mean, 10.0);
}

TEST(FoldWeeks, AveragesAcrossWeeks) {
  // Alternate weeks with slope 1 and slope 3: the folded mean is slope 2.
  std::vector<Sample> samples;
  double v = 0;
  for (int i = 0; i < 200; ++i) {
    const int week = i / 10;
    samples.push_back(Sample{SimTime::Micros(10) * i, v});
    v += (week % 2 == 0) ? 1.0 : 3.0;
  }
  auto curve = FoldWeeks(samples, SimTime::Micros(100), SimTime::Zero(), 1);
  ASSERT_FALSE(curve.empty());
  EXPECT_NEAR(curve.back().mean, 20.0, 1.0);
}

TEST(FoldWeeks, WarmupSkipsEarlySamples) {
  // First week is garbage (slope 100), remaining weeks slope 1.
  std::vector<Sample> samples;
  double v = 0;
  for (int i = 0; i < 100; ++i) {
    samples.push_back(Sample{SimTime::Micros(10) * i, v});
    v += (i < 10) ? 100.0 : 1.0;
  }
  auto curve = FoldWeeks(samples, SimTime::Micros(100), SimTime::Micros(100), 1);
  ASSERT_FALSE(curve.empty());
  EXPECT_NEAR(curve.back().mean, 10.0, 0.5);
}

TEST(FoldWeeks, PlotWeeksTilesExpectedGain) {
  auto samples = LinearCounter(SimTime::Micros(10), 101, 1.0);
  auto one = FoldWeeks(samples, SimTime::Micros(100), SimTime::Zero(), 1);
  auto three = FoldWeeks(samples, SimTime::Micros(100), SimTime::Zero(), 3);
  ASSERT_FALSE(three.empty());
  EXPECT_NEAR(three.back().mean, 3 * one.back().mean, 1e-9);
  EXPECT_NEAR(three.back().offset_us, 300.0, 1e-9);
}

TEST(FoldWeeks, DegenerateInputsReturnEmpty) {
  EXPECT_TRUE(FoldWeeks({}, SimTime::Micros(100), SimTime::Zero()).empty());
  auto two = LinearCounter(SimTime::Micros(10), 2, 1.0);
  EXPECT_TRUE(FoldWeeks(two, SimTime::Micros(1), SimTime::Zero()).empty());
}

TEST(PerWeekDeltas, CountsPerWeek) {
  // Counter grows by 5 per week (10 samples of 10us each).
  std::vector<Sample> samples;
  for (int i = 0; i < 100; ++i) {
    samples.push_back(Sample{SimTime::Micros(10) * i, 0.5 * i});
  }
  auto deltas = PerWeekDeltas(samples, SimTime::Micros(100), SimTime::Zero());
  ASSERT_GE(deltas.size(), 8u);
  for (double d : deltas) EXPECT_NEAR(d, 5.0, 1e-9);
}

TEST(MakeCdf, SortedWithCorrectProbabilities) {
  auto cdf = MakeCdf({3.0, 1.0, 2.0, 2.0});
  ASSERT_EQ(cdf.size(), 4u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[0].probability, 0.25);
  EXPECT_DOUBLE_EQ(cdf[3].value, 3.0);
  EXPECT_DOUBLE_EQ(cdf[3].probability, 1.0);
}

TEST(MakeCdf, EmptyInput) {
  EXPECT_TRUE(MakeCdf({}).empty());
}

TEST(Percentile, InterpolatesBetweenValues) {
  std::vector<double> v{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 90), 90.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 100.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 95), 95.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(Csv, WritesSeriesFile) {
  const std::string path = "/tmp/tdtcp_trace_test_series.csv";
  NamedSeries a{"alpha", {{0.0, 1.0}, {1.0, 2.0}}};
  NamedSeries b{"beta", {{0.0, 3.0}, {1.0, 4.0}}};
  WriteSeriesCsv(path, {a, b});
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "offset_us,alpha,beta");
  std::getline(f, line);
  EXPECT_EQ(line, "0,1,3");
  std::remove(path.c_str());
}

TEST(Csv, WritesCdfFile) {
  const std::string path = "/tmp/tdtcp_trace_test_cdf.csv";
  WriteCdfCsv(path, "events", MakeCdf({1.0, 2.0}));
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "events,cdf");
  std::getline(f, line);
  EXPECT_EQ(line, "1,0.5");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// FlowLogger (the artifact's Wireshark-dissector analogue)
// ---------------------------------------------------------------------------

TEST(FlowLogger, DecodesHandshakeDataAndOptions) {
  Simulator sim;
  test::PairHarness net(sim);
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  TcpConnection server(sim, &net.b, 1, 0, c);
  TcpConnection client(sim, &net.a, 1, 1, c);
  FlowLogger log(sim);
  log.Attach(client);
  server.Listen();
  client.Connect();
  client.AddAppData(5000);
  sim.RunUntil(SimTime::Millis(5));

  const std::string dump = log.Dump();
  EXPECT_NE(dump.find("SYN <TD_CAPABLE tdns=2>"), std::string::npos);
  EXPECT_NE(dump.find("SYN/ACK"), std::string::npos);
  EXPECT_NE(dump.find("DATA seq=1 len=1000 <TD_DATA_ACK D tdn=0>"),
            std::string::npos);
  EXPECT_NE(dump.find("<TD_DATA_ACK A tdn="), std::string::npos);
  EXPECT_NE(dump.find("ACK "), std::string::npos);
}

TEST(FlowLogger, FormatsNotificationAndSack) {
  Packet icmp;
  icmp.type = PacketType::kTdnNotify;
  icmp.notify_tdn = 1;
  icmp.circuit_imminent = true;
  icmp.notify_peer = 3;
  const std::string line = FormatPacketLine(
      SimTime::Micros(7), TcpConnection::TapDirection::kRx, icmp);
  EXPECT_NE(line.find("ICMP tdn-change active_tdn=1"), std::string::npos);
  EXPECT_NE(line.find("[circuit imminent]"), std::string::npos);
  EXPECT_NE(line.find("peer_rack=3"), std::string::npos);

  Packet ack;
  ack.type = PacketType::kAck;
  ack.ack = 500;
  ack.num_sack = 1;
  ack.sack[0] = {1000, 2000};
  ack.ece = true;
  ack.circuit_echo = true;
  const std::string aline = FormatPacketLine(
      SimTime::Micros(8), TcpConnection::TapDirection::kTx, ack);
  EXPECT_NE(aline.find("ACK 500 sack[1000,2000)"), std::string::npos);
  EXPECT_NE(aline.find("ECE"), std::string::npos);
  EXPECT_NE(aline.find("[circuit-echo]"), std::string::npos);
}

TEST(FlowLogger, RingBufferBounds) {
  Simulator sim;
  FlowLogger log(sim, /*max_lines=*/10);
  Packet p;
  p.type = PacketType::kAck;
  for (int i = 0; i < 50; ++i) {
    p.ack = static_cast<std::uint64_t>(i);
    log.Record(TcpConnection::TapDirection::kRx, p);
  }
  EXPECT_EQ(log.lines().size(), 10u);
  EXPECT_NE(log.lines().back().find("ACK 49"), std::string::npos);
}

}  // namespace
}  // namespace tdtcp
