// The per-host hierarchical timer wheel (sim/timer_wheel.hpp), asserted
// against its determinism contract: Arm returns the exact quantized fire
// time, entries parked at coarse levels cascade down and still fire on the
// exact tick, timers sharing a tick fire in FIFO arm order — the same order
// the Simulator's event heap gives same-time events — rearm replaces the
// pending deadline without ghost fires, disarm is idempotent, and a
// 10k-timer arm/rearm/disarm soak allocates nothing after warmup.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "alloc_harness.hpp"
#include "sim/simulator.hpp"
#include "sim/timer_wheel.hpp"

namespace tdtcp {
namespace {

using test::AllocDelta;
using test::CountAllocations;

constexpr std::int64_t kTickPs = std::int64_t{1} << TimerWheel::kTickShift;

SimTime Ticks(std::int64_t n) { return SimTime::Picos(n * kTickPs); }

// A probe timer that logs (id, fire time) into a shared journal.
struct Probe {
  Simulator* sim = nullptr;
  std::vector<std::pair<int, SimTime>>* log = nullptr;
  int id = 0;
  TimerWheel::Timer timer;

  void Wire(Simulator& s, std::vector<std::pair<int, SimTime>>& l, int i) {
    sim = &s;
    log = &l;
    id = i;
    timer.Init(this, &Fire);
  }
  static void Fire(void* self) {
    auto* p = static_cast<Probe*>(self);
    p->log->emplace_back(p->id, p->sim->now());
  }
};

// ---------------------------------------------------------------------------
// Quantization: Arm's return value IS the fire time
// ---------------------------------------------------------------------------

TEST(WheelQuantize, ArmRoundsUpAndFiresExactlyAtReturnedTime) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  Probe p;
  p.Wire(sim, log, 0);

  // Mid-tick deadline rounds UP to the next boundary.
  const SimTime ret = wheel.Arm(p.timer, Ticks(3) + SimTime::Picos(7));
  EXPECT_EQ(ret, Ticks(4));
  EXPECT_EQ(p.timer.deadline(), ret);
  sim.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, ret);
  EXPECT_EQ(wheel.fired(), 1u);
}

TEST(WheelQuantize, ExactBoundaryDeadlineIsNotPushed) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  Probe p;
  p.Wire(sim, log, 0);
  const SimTime ret = wheel.Arm(p.timer, Ticks(5));
  EXPECT_EQ(ret, Ticks(5));
  sim.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, Ticks(5));
}

TEST(WheelQuantize, PastDeadlineFiresAtNextTickBoundary) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  Probe p;
  p.Wire(sim, log, 0);
  // "Now" (and anything earlier) cannot fire this tick from outside the
  // driver; the wheel pushes it to the next boundary and says so.
  const SimTime ret = wheel.Arm(p.timer, SimTime::Zero());
  EXPECT_EQ(ret, Ticks(1));
  sim.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, Ticks(1));
}

// ---------------------------------------------------------------------------
// Disarm / rearm semantics
// ---------------------------------------------------------------------------

TEST(WheelDisarm, IsIdempotentAndSuppressesTheFire) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  Probe p;
  p.Wire(sim, log, 0);

  wheel.Disarm(p.timer);  // never armed: no-op
  EXPECT_EQ(wheel.armed_count(), 0u);

  wheel.Arm(p.timer, Ticks(10));
  EXPECT_TRUE(p.timer.armed());
  EXPECT_EQ(wheel.armed_count(), 1u);
  wheel.Disarm(p.timer);
  wheel.Disarm(p.timer);  // teardown paths disarm unconditionally
  EXPECT_FALSE(p.timer.armed());
  EXPECT_EQ(wheel.armed_count(), 0u);

  sim.Run();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(wheel.fired(), 0u);
}

TEST(WheelRearm, ReplacesPendingDeadlineBothDirections) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  Probe p;
  p.Wire(sim, log, 0);

  // Push out: the original deadline must not fire.
  wheel.Arm(p.timer, Ticks(10));
  const SimTime later = wheel.Arm(p.timer, Ticks(20));
  EXPECT_EQ(wheel.armed_count(), 1u);
  sim.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, later);

  // Pull in: rearm to an earlier tick fires early, once.
  log.clear();
  wheel.Arm(p.timer, sim.now() + Ticks(50));
  const SimTime sooner = wheel.Arm(p.timer, sim.now() + Ticks(5));
  sim.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].second, sooner);
  EXPECT_LT(sooner, sim.now() + Ticks(50));
}

TEST(WheelRearm, FromInsideCallbackKeepsRunning) {
  // The production shape: RTO re-arms itself from its own fire path.
  struct Periodic {
    Simulator* sim;
    TimerWheel* wheel;
    int fires = 0;
    TimerWheel::Timer timer;
    static void Fire(void* self) {
      auto* p = static_cast<Periodic*>(self);
      if (++p->fires < 5) {
        p->wheel->Arm(p->timer, p->sim->now() + Ticks(3));
      }
    }
  };
  Simulator sim;
  TimerWheel wheel(sim);
  Periodic p{&sim, &wheel};
  p.timer.Init(&p, &Periodic::Fire);
  wheel.Arm(p.timer, Ticks(3));
  sim.Run();
  EXPECT_EQ(p.fires, 5);
  EXPECT_EQ(wheel.fired(), 5u);
  EXPECT_EQ(wheel.armed_count(), 0u);
}

// ---------------------------------------------------------------------------
// Cascading across levels
// ---------------------------------------------------------------------------

TEST(WheelCascade, CoarseEntriesCascadeDownAndFireOnTheExactTick) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  // Level 0 holds deltas < 64 ticks, level 1 < 64^2, level 2 < 64^3; park
  // one entry in each and a far one at level 2 with a non-zero low digit so
  // the cascade has real re-placement to do.
  const std::int64_t deltas[] = {7, 100, 64 * 64 * 3 + 64 * 5 + 9};
  std::vector<Probe> probes(3);
  std::vector<SimTime> expect;
  for (int i = 0; i < 3; ++i) {
    probes[i].Wire(sim, log, i);
    expect.push_back(wheel.Arm(probes[i].timer, Ticks(deltas[i])));
    EXPECT_EQ(expect.back(), Ticks(deltas[i]));
  }
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(log[i].first, i) << "fired out of deadline order";
    EXPECT_EQ(log[i].second, expect[i]) << "cascade shifted the fire time";
  }
  // The far entry descended level 2 -> 1 -> 0: at least two cascade hops.
  EXPECT_GE(wheel.cascades(), 2u);
  EXPECT_EQ(wheel.fired(), 3u);
  EXPECT_EQ(wheel.armed_count(), 0u);
}

TEST(WheelCascade, DisarmReachesEntriesParkedAtCoarseLevels) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  Probe far, near;
  far.Wire(sim, log, 0);
  near.Wire(sim, log, 1);
  wheel.Arm(far.timer, Ticks(64 * 64 * 2));  // parks at level 2
  wheel.Arm(near.timer, Ticks(3));
  wheel.Disarm(far.timer);
  sim.Run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, 1);
}

// ---------------------------------------------------------------------------
// Intra-slot ordering: FIFO, matching the event-heap reference
// ---------------------------------------------------------------------------

TEST(WheelOrder, SameTickFiresInArmOrderMatchingEventHeap) {
  // 32 wheel timers and 32 reference heap events, created in the same
  // interleaved loop, all due at the same quantized instant. Both worlds
  // promise same-time FIFO; the wheel must agree with the heap exactly,
  // so swapping one for the other cannot reorder a trace.
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  std::vector<int> heap_order;
  std::vector<Probe> probes(32);
  for (int i = 0; i < 32; ++i) {
    probes[i].Wire(sim, log, i);
    const SimTime at = wheel.Arm(probes[i].timer, Ticks(40));
    sim.ScheduleAt(at, [&heap_order, i] { heap_order.push_back(i); });
  }
  sim.Run();
  std::vector<int> want(32);
  std::iota(want.begin(), want.end(), 0);
  std::vector<int> wheel_order;
  for (const auto& [id, t] : log) {
    EXPECT_EQ(t, Ticks(40));
    wheel_order.push_back(id);
  }
  EXPECT_EQ(wheel_order, want);
  EXPECT_EQ(heap_order, wheel_order);
}

TEST(WheelOrder, RearmMovesToTailOfItsSlot) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  std::vector<Probe> probes(3);
  for (int i = 0; i < 3; ++i) {
    probes[i].Wire(sim, log, i);
    wheel.Arm(probes[i].timer, Ticks(10));
  }
  // Rearming to the same deadline is still "newest arm": FIFO position is
  // by last arm, which is what makes replay independent of prior history.
  wheel.Arm(probes[1].timer, Ticks(10));
  sim.Run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].first, 0);
  EXPECT_EQ(log[1].first, 2);
  EXPECT_EQ(log[2].first, 1);
}

TEST(WheelOrder, ScatteredDeadlinesMatchEventHeapSequence) {
  // 200 timers at LCG-scattered deadlines (some colliding, some cascading)
  // against the same 200 deadlines on the Simulator heap: the two complete
  // firing sequences must be identical, and every wheel fire must land on
  // its Arm-returned instant.
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  std::vector<int> heap_order;
  std::vector<Probe> probes(200);
  std::vector<SimTime> expect(200);
  std::uint64_t lcg = 12345;
  for (int i = 0; i < 200; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    // Deltas spanning level 0 through level 2, deliberately non-aligned.
    const std::int64_t delta = 1 + static_cast<std::int64_t>(
                                       (lcg >> 33) % (64 * 64 * 4));
    probes[i].Wire(sim, log, i);
    expect[i] = wheel.Arm(probes[i].timer, Ticks(delta) - SimTime::Picos(1));
    sim.ScheduleAt(expect[i], [&heap_order, i] { heap_order.push_back(i); });
  }
  sim.Run();
  ASSERT_EQ(log.size(), 200u);
  std::vector<int> wheel_order;
  for (const auto& [id, t] : log) {
    EXPECT_EQ(t, expect[id]) << "timer " << id << " missed its quantized slot";
    wheel_order.push_back(id);
  }
  EXPECT_EQ(heap_order, wheel_order);
  // Fire times are non-decreasing and tick-aligned.
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].second.picos() % kTickPs, 0);
    if (i > 0) EXPECT_GE(log[i].second, log[i - 1].second);
  }
}

// ---------------------------------------------------------------------------
// Lifetime safety
// ---------------------------------------------------------------------------

TEST(WheelLifetime, TimerDestructorDisarmsItself) {
  Simulator sim;
  TimerWheel wheel(sim);
  std::vector<std::pair<int, SimTime>> log;
  {
    Probe p;
    p.Wire(sim, log, 0);
    wheel.Arm(p.timer, Ticks(10));
    EXPECT_EQ(wheel.armed_count(), 1u);
  }
  EXPECT_EQ(wheel.armed_count(), 0u);
  sim.Run();
  EXPECT_TRUE(log.empty());
}

TEST(WheelLifetime, WheelDestructorOrphansArmedTimers) {
  Simulator sim;
  std::vector<std::pair<int, SimTime>> log;
  Probe p;
  {
    TimerWheel wheel(sim);
    p.Wire(sim, log, 0);
    wheel.Arm(p.timer, Ticks(64 * 64));
    EXPECT_TRUE(p.timer.armed());
  }
  // The wheel died first: the entry is orphaned, not dangling, and the
  // probe's own destructor later finds an unarmed timer.
  EXPECT_FALSE(p.timer.armed());
  sim.Run();
  EXPECT_TRUE(log.empty());
}

// ---------------------------------------------------------------------------
// Zero steady-state allocation (tentpole acceptance)
// ---------------------------------------------------------------------------

// Self-rearming soak timer: counts fires, rearms with its own period until
// its budget runs out. Periods are scattered so the soak exercises level-0
// slots, cascades, and the driver's cancel/reschedule churn together.
struct SoakTimer {
  Simulator* sim = nullptr;
  TimerWheel* wheel = nullptr;
  std::uint64_t* fires = nullptr;
  int rearms_left = 0;
  std::int64_t period_ticks = 1;
  TimerWheel::Timer timer;

  static void Fire(void* self) {
    auto* t = static_cast<SoakTimer*>(self);
    ++*t->fires;
    if (t->rearms_left-- > 0) {
      t->wheel->Arm(t->timer, t->sim->now() + Ticks(t->period_ticks));
    }
  }
};

TEST(WheelAlloc, TenThousandTimerSoakAllocatesNothingAfterWarmup) {
  Simulator sim;
  TimerWheel wheel(sim);
  constexpr int kTimers = 10'000;
  std::uint64_t fires = 0;
  std::vector<SoakTimer> timers(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    SoakTimer& t = timers[i];
    t.sim = &sim;
    t.wheel = &wheel;
    t.fires = &fires;
    // 1..97-tick periods plus a sprinkle of multi-level laggards.
    t.period_ticks = 1 + i % 97 + (i % 13 == 0 ? 64 * 64 : 0);
    t.timer.Init(&t, &SoakTimer::Fire);
  }

  auto round = [&] {
    for (SoakTimer& t : timers) {
      t.rearms_left = 3;
      wheel.Arm(t.timer, sim.now() + Ticks(t.period_ticks));
    }
    // Mid-round churn: disarm a stripe, rearm it (the hot RTO path is
    // exactly this disarm/rearm cycle on every ACK).
    for (int i = 0; i < kTimers; i += 4) {
      wheel.Disarm(timers[i].timer);
      wheel.Arm(timers[i].timer, sim.now() + Ticks(timers[i].period_ticks));
    }
    sim.Run();  // drains: with every budget spent the wheel goes idle
  };

  round();  // warmup grows the simulator's event slab
  ASSERT_GT(fires, static_cast<std::uint64_t>(kTimers));
  ASSERT_EQ(wheel.armed_count(), 0u);

  fires = 0;
  const AllocDelta d = CountAllocations(round);
  EXPECT_EQ(fires, static_cast<std::uint64_t>(kTimers) * 4);
  EXPECT_EQ(d.news, 0u) << "wheel steady state allocated";
  EXPECT_EQ(d.deletes, 0u);
}

}  // namespace
}  // namespace tdtcp
