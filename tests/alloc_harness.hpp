// Counting global allocator for zero-allocation assertions.
//
// Including this header replaces the global operator new/delete with
// counting versions and provides CountAllocations() to measure a scoped
// block. Replacement allocation functions must be defined exactly once per
// binary, so include this from exactly one translation unit of a test
// executable (each add_tdtcp_test target is a single .cpp, which makes
// that automatic).
//
// The counters are relaxed atomics: some tests in a binary that includes
// this header run experiments on a ParallelFor pool, and every thread's
// allocations funnel through these counters. CountAllocations itself is
// only meaningful around a single-threaded block.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace tdtcp::test {

inline std::atomic<std::uint64_t> g_news{0};
inline std::atomic<std::uint64_t> g_deletes{0};

struct AllocDelta {
  std::uint64_t news;
  std::uint64_t deletes;
};

template <typename F>
AllocDelta CountAllocations(F&& f) {
  const std::uint64_t n0 = g_news.load(std::memory_order_relaxed);
  const std::uint64_t d0 = g_deletes.load(std::memory_order_relaxed);
  f();
  return AllocDelta{g_news.load(std::memory_order_relaxed) - n0,
                    g_deletes.load(std::memory_order_relaxed) - d0};
}

}  // namespace tdtcp::test

// All forms funnel through malloc/free so the aligned overloads used by the
// event core's heap buffer are counted too.
void* operator new(std::size_t n) {
  tdtcp::test::g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t n, std::align_val_t al) {
  tdtcp::test::g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                                   (n + static_cast<std::size_t>(al) - 1) &
                                       ~(static_cast<std::size_t>(al) - 1))) {
    return p;
  }
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept {
  tdtcp::test::g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  tdtcp::test::g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  tdtcp::test::g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  tdtcp::test::g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
