// Connection lifecycle: active/passive/simultaneous close, RST semantics in
// every state, bounded-retry aborts (SYN, SYN-ACK, RTO, persist), close
// racing a TDN switch, MPTCP meta teardown with orphan reinjection, the
// churn workload under fault injection, and a 10k-cycle churn soak proving
// zero steady-state allocations and zero leaked host registrations.
#include <gtest/gtest.h>

#include "alloc_harness.hpp"

#include "app/experiment.hpp"
#include "app/sweep.hpp"
#include "cc/registry.hpp"
#include "tcp/tcp_connection.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::CaptureSink;
using test::LoopbackHarness;
using test::PairHarness;

TcpConfig BaseConfig() {
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  return c;
}

Packet MakeSyn(FlowId flow) {
  Packet p;
  p.type = PacketType::kData;
  p.flow = flow;
  p.syn = true;
  p.seq = 0;
  p.size_bytes = 60;
  return p;
}

Packet MakeRst(FlowId flow) {
  Packet p;
  p.type = PacketType::kData;
  p.flow = flow;
  p.rst = true;
  p.size_bytes = 60;
  return p;
}

// A peer FIN at stream position `seq` (payload already delivered).
Packet MakeFin(FlowId flow, std::uint64_t seq) {
  Packet p;
  p.type = PacketType::kData;
  p.flow = flow;
  p.fin = true;
  p.seq = seq;
  p.payload = 0;
  p.size_bytes = 60;
  return p;
}

// Client established against hand-crafted responses (tcp_test idiom).
struct ClientFixture {
  explicit ClientFixture(TcpConfig config = BaseConfig())
      : harness(sim), conn(sim, &harness.host, 1, 99, config) {
    conn.SetClosedCallback([this](CloseReason r) { observed_reason = r; });
    conn.Connect();
    harness.Settle();
    Packet syn = harness.out.Pop();
    conn.HandlePacket(LoopbackHarness::SynAckFor(
        syn, conn.config().tdtcp_enabled, conn.config().num_tdns));
    harness.Settle();
    harness.out.packets.clear();
    EXPECT_EQ(conn.state(), TcpConnection::State::kEstablished);
  }

  Simulator sim;
  LoopbackHarness harness;
  TcpConnection conn;
  CloseReason observed_reason = CloseReason::kNone;
};

// Two real endpoints over real links.
struct E2eFixture {
  explicit E2eFixture(TcpConfig tx_cfg = BaseConfig(),
                      TcpConfig rx_cfg = BaseConfig())
      : net(sim),
        rx(sim, &net.b, 1, 0, rx_cfg),
        tx(sim, &net.a, 1, 1, tx_cfg) {
    rx.Listen();
    tx.Connect();
    sim.RunUntil(SimTime::Millis(1));
    EXPECT_EQ(tx.state(), TcpConnection::State::kEstablished);
  }

  Simulator sim;
  PairHarness net;
  TcpConnection rx;
  TcpConnection tx;
};

// ---------------------------------------------------------------------------
// Orderly close
// ---------------------------------------------------------------------------

TEST(Lifecycle, ActiveCloseAgainstAutoClosingReceiver) {
  TcpConfig rc = BaseConfig();
  rc.close_on_peer_fin = true;
  E2eFixture f(BaseConfig(), rc);
  f.tx.AddAppData(5000);
  f.tx.Close();  // lingering: the FIN rides out behind the 5 segments
  f.sim.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(f.tx.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.rx.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.tx.close_reason(), CloseReason::kNormal);
  EXPECT_EQ(f.rx.close_reason(), CloseReason::kNormal);
  EXPECT_EQ(f.tx.stats().fins_sent, 1u);
  EXPECT_EQ(f.tx.stats().fins_received, 1u);
  EXPECT_EQ(f.rx.stats().bytes_received, 5000u);
  // Closed endpoints deregistered themselves from the demux.
  EXPECT_EQ(f.net.a.num_endpoints(), 0u);
  EXPECT_EQ(f.net.b.num_endpoints(), 0u);
}

TEST(Lifecycle, PassiveCloseHoldsCloseWaitUntilAppCloses) {
  E2eFixture f;  // receiver does NOT auto-close on FIN
  f.tx.AddAppData(2000);
  f.tx.Close();
  f.sim.RunUntil(SimTime::Millis(5));
  // Half-closed: our FIN is acked (FIN-WAIT-2), the peer's app hasn't
  // answered yet (CLOSE-WAIT can last forever).
  EXPECT_EQ(f.tx.state(), TcpConnection::State::kFinWait2);
  EXPECT_EQ(f.rx.state(), TcpConnection::State::kCloseWait);
  f.rx.Close();  // app finally responds: LAST-ACK → closed on the ACK
  f.sim.RunUntil(SimTime::Millis(10));
  EXPECT_EQ(f.rx.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.rx.close_reason(), CloseReason::kNormal);
  f.sim.RunUntil(SimTime::Millis(20));  // tx: TIME-WAIT 2MSL expires
  EXPECT_EQ(f.tx.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.tx.close_reason(), CloseReason::kNormal);
}

TEST(Lifecycle, SimultaneousCloseTraversesClosing) {
  E2eFixture f;
  TcpConnection::State mid_tx{}, mid_rx{};
  f.sim.Schedule(SimTime::Micros(100), [&] {
    f.tx.Close();
    f.rx.Close();
  });
  // 15us after the closes: the crossing FINs have each arrived (10us links)
  // but the ACKs covering them have not — both sides sit in CLOSING.
  f.sim.Schedule(SimTime::Micros(115), [&] {
    mid_tx = f.tx.state();
    mid_rx = f.rx.state();
  });
  f.sim.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(mid_tx, TcpConnection::State::kClosing);
  EXPECT_EQ(mid_rx, TcpConnection::State::kClosing);
  EXPECT_EQ(f.tx.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.rx.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.tx.close_reason(), CloseReason::kNormal);
  EXPECT_EQ(f.rx.close_reason(), CloseReason::kNormal);
}

TEST(Lifecycle, SimultaneousCloseWithQueuedDataStillSendsFin) {
  // Regression: the peer's FIN arrives while our own FIN is still pending
  // behind cwnd-limited data (FIN-WAIT-1 → CLOSING with fin unsent). The FIN
  // must still go out from CLOSING once the data drains, or both ends hang.
  ClientFixture f;
  f.conn.AddAppData(20000);  // initial_cwnd 10 x mss 1000: half stays queued
  f.harness.Settle();
  f.conn.Close();
  f.harness.Settle();
  ASSERT_EQ(f.conn.state(), TcpConnection::State::kFinWait1);
  ASSERT_EQ(f.conn.stats().fins_sent, 0u);  // 10000 bytes still buffered
  f.conn.HandlePacket(MakeFin(1, 1));  // simultaneous close
  ASSERT_EQ(f.conn.state(), TcpConnection::State::kClosing);
  // Acks drain the stream; the FIN (seq 20001) follows the last byte.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 10001));
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 20001));
  f.harness.Settle();
  EXPECT_EQ(f.conn.stats().fins_sent, 1u);
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 20002));  // FIN acked
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kTimeWait);
  f.sim.RunUntil(f.sim.now() + f.conn.config().time_wait_duration * 2);
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.observed_reason, CloseReason::kNormal);
}

TEST(Lifecycle, RetransmittedPeerFinRestartsTimeWait) {
  ClientFixture f;
  f.conn.Close();
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2));  // FIN (seq 1) acked
  f.conn.HandlePacket(MakeFin(1, 1));
  ASSERT_EQ(f.conn.state(), TcpConnection::State::kTimeWait);
  // A retransmitted FIN re-ACKs and restarts the 2MSL clock.
  f.sim.RunUntil(f.sim.now() + f.conn.config().time_wait_duration / 2);
  f.harness.out.packets.clear();
  f.conn.HandlePacket(MakeFin(1, 1));
  f.harness.Settle();
  ASSERT_FALSE(f.harness.out.Empty());
  EXPECT_EQ(f.harness.out.Pop().ack, 2u);  // FIN's virtual byte re-acked
  f.sim.RunUntil(f.sim.now() + f.conn.config().time_wait_duration * 3 / 4);
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kTimeWait);  // restarted
  f.sim.RunUntil(f.sim.now() + f.conn.config().time_wait_duration);
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.observed_reason, CloseReason::kNormal);
}

// ---------------------------------------------------------------------------
// RST semantics
// ---------------------------------------------------------------------------

TEST(Lifecycle, RstAbortsEstablishedWithoutReply) {
  ClientFixture f;
  f.conn.HandlePacket(MakeRst(1));
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.conn.close_reason(), CloseReason::kPeerReset);
  EXPECT_EQ(f.observed_reason, CloseReason::kPeerReset);
  EXPECT_EQ(f.conn.stats().rsts_received, 1u);
  // Never answer an RST with an RST.
  f.harness.Settle();
  while (!f.harness.out.Empty()) EXPECT_FALSE(f.harness.out.Pop().rst);
}

TEST(Lifecycle, RstInSynReceivedReturnsToListen) {
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection server(sim, &h.host, 1, 99, BaseConfig());
  server.Listen();
  server.HandlePacket(MakeSyn(1));
  ASSERT_EQ(server.state(), TcpConnection::State::kSynReceived);
  server.HandlePacket(MakeRst(1));
  EXPECT_EQ(server.state(), TcpConnection::State::kListen);
  // A peer reset is not a SYN-ACK retransmit give-up.
  EXPECT_EQ(server.stats().synack_give_ups, 0u);
  // The listener is reusable: a fresh handshake succeeds.
  server.HandlePacket(MakeSyn(1));
  server.HandlePacket(LoopbackHarness::Ack(1, 1));
  EXPECT_EQ(server.state(), TcpConnection::State::kEstablished);
}

TEST(Lifecycle, RstInSynReceivedAfterCloseHonorsCloseIntent) {
  // Close() while half-open, then the peer resets: returning to a "fresh
  // listener" would strand the close intent (ClosedFn would never fire) or
  // leak fin_pending_ into the next accepted connection. The endpoint closes
  // like a listener Close() instead.
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection server(sim, &h.host, 1, 99, BaseConfig());
  CloseReason reason = CloseReason::kNone;
  server.SetClosedCallback([&](CloseReason r) { reason = r; });
  server.Listen();
  server.HandlePacket(MakeSyn(1));
  ASSERT_EQ(server.state(), TcpConnection::State::kSynReceived);
  server.Close();  // lingering close intent
  server.HandlePacket(MakeRst(1));
  EXPECT_EQ(server.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(reason, CloseReason::kNormal);
  EXPECT_EQ(h.host.num_endpoints(), 0u);
}

TEST(Lifecycle, SegmentToClosedEndpointDrawsRst) {
  ClientFixture f;
  f.conn.Abort();
  ASSERT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  f.harness.out.packets.clear();
  Packet data;
  data.type = PacketType::kData;
  data.flow = 1;
  data.seq = 1;
  data.payload = 1000;
  data.size_bytes = 1060;
  f.conn.HandlePacket(std::move(data));
  f.harness.Settle();
  ASSERT_FALSE(f.harness.out.Empty());
  EXPECT_TRUE(f.harness.out.Pop().rst);
}

TEST(Lifecycle, AbortSendsRstAndPeerAborts) {
  E2eFixture f;
  f.tx.AddAppData(2000);
  f.sim.RunUntil(SimTime::Millis(2));
  f.tx.Abort();
  EXPECT_EQ(f.tx.close_reason(), CloseReason::kUserAbort);
  EXPECT_GE(f.tx.stats().rsts_sent, 1u);
  f.sim.RunUntil(SimTime::Millis(3));
  EXPECT_EQ(f.rx.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.rx.close_reason(), CloseReason::kPeerReset);
}

TEST(Lifecycle, HostRstsUnknownFlowAndSenderAborts) {
  Simulator sim;
  PairHarness net(sim);
  auto rx = std::make_unique<TcpConnection>(sim, &net.b, 1, 0, BaseConfig());
  TcpConnection tx(sim, &net.a, 1, 1, BaseConfig());
  rx->Listen();
  tx.Connect();
  sim.RunUntil(SimTime::Millis(1));
  ASSERT_EQ(tx.state(), TcpConnection::State::kEstablished);
  // The receiver process dies: its endpoint vanishes from the demux, so the
  // next data segment hits the host's closed port and draws a host-level RST.
  rx.reset();
  tx.AddAppData(1000);
  sim.RunUntil(SimTime::Millis(2));
  EXPECT_EQ(tx.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(tx.close_reason(), CloseReason::kPeerReset);
}

// ---------------------------------------------------------------------------
// Bounded retries: every place a peer can be dead
// ---------------------------------------------------------------------------

TEST(Lifecycle, SynRetryCapAbortsConnect) {
  TcpConfig c = BaseConfig();
  c.max_syn_retries = 2;
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  CloseReason reason = CloseReason::kNone;
  conn.SetClosedCallback([&](CloseReason r) { reason = r; });
  conn.Connect();
  sim.RunUntil(SimTime::Millis(50));  // 1+2 retransmits at 1/3ms, abort at 7ms
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(reason, CloseReason::kConnectTimeout);
  std::size_t syns = 0;
  while (!h.out.Empty()) syns += h.out.Pop().syn ? 1 : 0;
  EXPECT_EQ(syns, 3u);  // original + max_syn_retries
}

TEST(Lifecycle, SynAckRetryCapFallsBackToListen) {
  TcpConfig c = BaseConfig();
  c.max_synack_retries = 2;
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection server(sim, &h.host, 1, 99, c);
  server.Listen();
  server.HandlePacket(MakeSyn(1));
  ASSERT_EQ(server.state(), TcpConnection::State::kSynReceived);
  sim.RunUntil(SimTime::Millis(50));  // handshake ACK never arrives
  EXPECT_EQ(server.state(), TcpConnection::State::kListen);
  EXPECT_EQ(server.stats().synack_give_ups, 1u);
  EXPECT_EQ(server.close_reason(), CloseReason::kNone);  // still usable
  // The fallback left a genuinely fresh listener: the next handshake
  // completes and lands in kEstablished, not some leaked teardown state.
  server.HandlePacket(MakeSyn(1));
  server.HandlePacket(LoopbackHarness::Ack(1, 1));
  EXPECT_EQ(server.state(), TcpConnection::State::kEstablished);
}

TEST(Lifecycle, RtoRetryCapAbortsEstablished) {
  TcpConfig c = BaseConfig();
  c.max_rto_retries = 3;
  ClientFixture f(c);
  f.conn.AddAppData(1000);
  f.sim.RunUntil(SimTime::Millis(100));  // nothing ever acked
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.observed_reason, CloseReason::kRetryLimit);
  EXPECT_GE(f.conn.stats().rsts_sent, 1u);  // courtesy RST on the way out
}

TEST(Lifecycle, PersistProbeGiveUpAbortsStalledSender) {
  TcpConfig c = BaseConfig();
  c.max_persist_retries = 3;
  ClientFixture f(c);
  f.conn.AddAppData(1000);
  f.harness.Settle();
  // Peer acks the segment but slams the window shut, then goes silent.
  Packet zero = LoopbackHarness::Ack(1, 1001);
  zero.rcv_window = 0;
  f.conn.HandlePacket(std::move(zero));
  f.conn.AddAppData(1000);  // blocked behind the zero window
  f.sim.RunUntil(SimTime::Millis(500));
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.observed_reason, CloseReason::kPersistTimeout);
}

TEST(Lifecycle, AnsweredProbesNeverAbortLivePeer) {
  TcpConfig c = BaseConfig();
  c.max_persist_retries = 2;
  ClientFixture f(c);
  f.conn.AddAppData(1000);
  f.harness.Settle();
  Packet zero = LoopbackHarness::Ack(1, 1001);
  zero.rcv_window = 0;
  f.conn.HandlePacket(std::move(zero));
  f.conn.AddAppData(1000);
  // A live peer that acks every probe (window still zero) must never trip
  // the give-up cap: an acked probe is an answered probe and resets the
  // budget. With cap 2 the stack tolerates ~3.5 ms of probe silence (RTO
  // floor 500 us, doubling), so a 1 ms ack cadence is comfortably "alive".
  for (int i = 0; i < 20; ++i) {
    f.sim.RunUntil(f.sim.now() + SimTime::Millis(1));
    std::uint64_t highest = 0;
    while (!f.harness.out.Empty()) {
      const Packet p = f.harness.out.Pop();
      if (p.payload > 0) highest = std::max(highest, p.seq + p.payload);
    }
    if (highest > 1000) {
      // `highest` is seq + payload, i.e. already the next expected byte.
      Packet ack = LoopbackHarness::Ack(1, highest);
      ack.rcv_window = 0;
      f.conn.HandlePacket(std::move(ack));
    }
  }
  EXPECT_NE(f.conn.state(), TcpConnection::State::kClosed);
}

// ---------------------------------------------------------------------------
// Hard lifecycle errors (release builds too)
// ---------------------------------------------------------------------------

TEST(Lifecycle, ConnectTwiceThrows) {
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, BaseConfig());
  conn.Connect();
  EXPECT_THROW(conn.Connect(), std::logic_error);
  EXPECT_THROW(conn.Listen(), std::logic_error);
}

TEST(Lifecycle, ClosedConnectionIsNotReusable) {
  ClientFixture f;
  f.conn.Abort();
  ASSERT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  EXPECT_THROW(f.conn.Connect(), std::logic_error);
  EXPECT_THROW(f.conn.Listen(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Close racing a TDN switch
// ---------------------------------------------------------------------------

TEST(Lifecycle, CloseAcrossTdnSwitchRetiresPerTdnState) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  ClientFixture f(c);  // SynAckFor negotiates TD_CAPABLE
  f.conn.AddAppData(2000);
  f.harness.Settle();
  f.conn.Close();  // FIN (seq 2001) follows the two data segments
  f.harness.Settle();
  EXPECT_EQ(f.conn.stats().fins_sent, 1u);
  // The TDN switches while data + FIN are in flight; the ACK for them
  // arrives tagged with the new TDN. The invariant checker's post-close
  // recount (on by default) throws if any per-TDN counter survives.
  f.conn.OnTdnChange(1, false);
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2002, {}, 1));
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kFinWait2);
  f.conn.HandlePacket(MakeFin(1, 1));
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kTimeWait);
  f.conn.OnTdnChange(0, false);  // switch again during TIME-WAIT: harmless
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(5));
  EXPECT_EQ(f.conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(f.observed_reason, CloseReason::kNormal);
  EXPECT_EQ(f.harness.host.num_tdn_listeners(), 0u);
}

// ---------------------------------------------------------------------------
// MPTCP meta teardown
// ---------------------------------------------------------------------------

// Full two-rack RDCN with one MPTCP flow (mptcp_test idiom), receiver
// subflows auto-closing on FIN so one meta Close() drives both ends down.
struct MptcpLifecycleFixture {
  MptcpLifecycleFixture() : rng(1), topo(sim, rng, TopoCfg()) {
    RdcnController::Config rc;
    rc.packet_mode = topo.config().packet_mode;
    rc.circuit_mode = topo.config().circuit_mode;
    controller = std::make_unique<RdcnController>(
        sim, rc, std::vector<FabricPort*>{topo.port(0, 1), topo.port(1, 0)},
        std::vector<ToRSwitch*>{topo.tor(0), topo.tor(1)});
    MptcpConnection::Config mc;
    mc.subflow.mss = 8940;
    MptcpConnection::Config rcv = mc;
    rcv.subflow.close_on_peer_fin = true;
    receiver = std::make_unique<MptcpConnection>(sim, topo.host(1, 0), 1,
                                                 topo.host_id(0, 0), rcv);
    sender = std::make_unique<MptcpConnection>(sim, topo.host(0, 0), 1,
                                               topo.host_id(1, 0), mc);
    receiver->Listen();
    controller->Start();
    sender->Connect();
    sender->SetUnlimitedData(true);
  }

  static TopologyConfig TopoCfg() {
    TopologyConfig tc;
    tc.hosts_per_rack = 2;
    return tc;
  }

  Simulator sim;
  Random rng;
  Topology topo;
  std::unique_ptr<RdcnController> controller;
  std::unique_ptr<MptcpConnection> sender;
  std::unique_ptr<MptcpConnection> receiver;
};

TEST(MptcpLifecycle, GracefulCloseClosesBothMetasAndDeregisters) {
  MptcpLifecycleFixture f;
  f.sim.RunUntil(SimTime::Millis(4));  // both subflows up, data moving
  CloseReason sender_reason = CloseReason::kNone;
  f.sender->SetClosedCallback([&](CloseReason r) { sender_reason = r; });
  f.sender->Close();
  f.sim.RunUntil(SimTime::Millis(30));
  EXPECT_TRUE(f.sender->closed());
  EXPECT_TRUE(f.receiver->closed());
  EXPECT_EQ(f.sender->close_reason(), CloseReason::kNormal);
  EXPECT_EQ(sender_reason, CloseReason::kNormal);
  EXPECT_EQ(f.receiver->close_reason(), CloseReason::kNormal);
  // Both metas released their demux entries and TDN listeners at close.
  EXPECT_EQ(f.topo.host(0, 0)->num_endpoints(), 0u);
  EXPECT_EQ(f.topo.host(1, 0)->num_endpoints(), 0u);
  EXPECT_EQ(f.topo.host(0, 0)->num_tdn_listeners(), 0u);
  EXPECT_EQ(f.topo.host(1, 0)->num_tdn_listeners(), 0u);
}

TEST(MptcpLifecycle, AbortedSubflowReinjectsOrphansOntoSurvivor) {
  MptcpLifecycleFixture f;
  f.sim.RunUntil(SimTime::Micros(1300));  // optical day: subflow 1 active
  ASSERT_EQ(f.sender->active_subflow(), 1u);
  const std::uint64_t acked_before = f.sender->meta_bytes_acked();
  f.sender->subflow(1)->Abort();  // circuit subflow dies mid-burst
  EXPECT_EQ(f.sender->stats().subflow_aborts, 1u);
  EXPECT_GT(f.sender->stats().abort_reinjections, 0u);
  EXPECT_EQ(f.sender->active_subflow(), 0u);  // failover
  EXPECT_FALSE(f.sender->closed());           // meta survives on subflow 0
  f.sim.RunUntil(SimTime::Millis(6));
  // The rescued DSS ranges were delivered: meta progress continued.
  EXPECT_GT(f.sender->meta_bytes_acked(), acked_before);
  f.sender->Close();
  f.sim.RunUntil(SimTime::Millis(30));
  EXPECT_TRUE(f.sender->closed());
  EXPECT_TRUE(f.receiver->closed());
  // First abnormal subflow reason wins on each side.
  EXPECT_EQ(f.sender->close_reason(), CloseReason::kUserAbort);
  EXPECT_EQ(f.receiver->close_reason(), CloseReason::kPeerReset);
}

TEST(MptcpLifecycle, AddMappedDataRefusedOnceFinIsOnTheWire) {
  // The reinjection contract: a subflow whose FIN occupies the last stream
  // byte has no sequence space left, so AddMappedData must refuse (and say
  // so) rather than silently queueing nothing.
  ClientFixture f;
  EXPECT_TRUE(f.conn.AddMappedData(100, 1));
  f.harness.Settle();
  f.conn.Close();  // no buffered data left: FIN goes out immediately
  f.harness.Settle();
  ASSERT_EQ(f.conn.stats().fins_sent, 1u);
  EXPECT_FALSE(f.conn.AddMappedData(100, 101));
  EXPECT_EQ(f.conn.unsent_buffered_bytes(), 0u);
}

TEST(MptcpLifecycle, OrphansWithNoSurvivorCountAsUnrescuedNotReinjected) {
  // Regression: the abort-reinjection stats must not claim rescues that
  // never landed. Kill the active subflow (rescue onto the survivor), then
  // kill the survivor too — its stranded DSS ranges have nowhere to go and
  // must be reported as unrescued, not as reinjections.
  MptcpLifecycleFixture f;
  f.sim.RunUntil(SimTime::Micros(1300));  // optical day: subflow 1 active
  ASSERT_EQ(f.sender->active_subflow(), 1u);
  f.sender->subflow(1)->Abort();
  ASSERT_GT(f.sender->stats().abort_reinjections, 0u);
  EXPECT_EQ(f.sender->stats().unrescued_ranges, 0u);  // subflow 0 took them
  const std::uint64_t rescued = f.sender->stats().reinjections;
  f.sender->subflow(0)->Abort();  // last leg down: nothing left to rescue to
  EXPECT_GT(f.sender->stats().unrescued_ranges, 0u);
  EXPECT_GT(f.sender->stats().unrescued_bytes, 0u);
  EXPECT_EQ(f.sender->stats().reinjections, rescued);  // no phantom rescues
  EXPECT_TRUE(f.sender->closed());
  EXPECT_EQ(f.sender->close_reason(), CloseReason::kUserAbort);
}

// ---------------------------------------------------------------------------
// Churn: open → transfer → close under fault injection
// ---------------------------------------------------------------------------

ExperimentConfig ChurnConfigForTest(std::uint32_t connections) {
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                             .WithFlows(2)
                             .WithDuration(SimTime::Millis(60))
                             .WithWarmup(SimTime::Millis(5))
                             .WithSampling(false, false)
                             .WithTrace()  // churned conns emit lifecycle
                                           // tracepoints into the run ring
                             .WithSeed(7);
  ChurnConfig cc;
  cc.target_connections = connections;
  cc.mean_interarrival = SimTime::Micros(25);
  // A wide slot pool (several cycles per host pair; flow ids demux them)
  // keeps the 10k-connection run's wall time in tier-1 territory.
  cc.max_concurrent = 64;
  cfg.WithChurnConfig(cc);
  FaultPlan plan;
  plan.host_links.gilbert_elliott = true;
  plan.host_links.ge_p_good_to_bad = 0.0005;
  // One host per rack dies mid-run (indices clear of the long-lived flows);
  // rack 1's victim comes back, rack 0's never does.
  plan.host_downs.push_back(
      {1, 3, SimTime::Millis(15), SimTime::Millis(10)});
  plan.host_downs.push_back({0, 5, SimTime::Millis(30), SimTime::Zero()});
  cfg.WithFault(plan);
  return cfg;
}

TEST(Churn, EveryConnectionReachesClosedWithDefiniteReason) {
  // 10k connections through a faulted fabric (burst loss + two host-down
  // windows) with the invariant checker on: the acceptance bar is that every
  // single one reaches kClosed with a definite reason.
  const ExperimentResult r = RunExperiment(ChurnConfigForTest(10000));
  EXPECT_EQ(r.churn.opened, 10000u);
  EXPECT_EQ(r.churn.closed, 10000u);
  EXPECT_TRUE(r.churn_all_closed);
  // Reasons partition the closed population and none is indefinite.
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < kNumCloseReasons; ++i) sum += r.churn.reasons[i];
  EXPECT_EQ(sum, r.churn.closed);
  EXPECT_EQ(r.churn.reasons[static_cast<std::size_t>(CloseReason::kNone)], 0u);
  // The downed hosts made some cycles die abnormally, and most still
  // completed the orderly FIN handshake.
  EXPECT_GT(r.churn.abnormal(), 0u);
  EXPECT_GT(r.churn.normal(), r.churn.abnormal());
  EXPECT_GT(r.faults_injected, 0u);
}

TEST(Churn, SeededChurnIsBitIdenticalAcrossJobs) {
  // The full 10k acceptance run on a 2-worker pool, racing an identical
  // twin: results must not depend on scheduling (the sweep engine's
  // jobs=1 == jobs=N guarantee extended to churn), and the tracepoint
  // stream — which now includes every churned connection's lifecycle
  // points — must hash identically too.
  const ExperimentConfig cfg = ChurnConfigForTest(10000);
  const ExperimentResult solo = RunExperiment(cfg);
  std::vector<ExperimentResult> pooled(2);
  ParallelFor(2, 2, [&](std::size_t i) { pooled[i] = RunExperiment(cfg); });
  for (const ExperimentResult& r : pooled) {
    EXPECT_EQ(r.churn_hash, solo.churn_hash);
    EXPECT_EQ(r.churn.opened, solo.churn.opened);
    EXPECT_EQ(r.churn.closed, solo.churn.closed);
    EXPECT_EQ(r.churn.bytes_completed, solo.churn.bytes_completed);
    EXPECT_EQ(r.fault_trace_hash, solo.fault_trace_hash);
    EXPECT_EQ(r.trace_hash, solo.trace_hash);
    EXPECT_EQ(r.total_bytes, solo.total_bytes);
  }
  EXPECT_NE(solo.churn_hash, 0u);
  EXPECT_NE(solo.trace_hash, 0u);
}

// ---------------------------------------------------------------------------
// Churn soak: zero steady-state allocations, zero leaked registrations
// ---------------------------------------------------------------------------

TEST(ChurnSoak, TenThousandCyclesLeakNothing) {
  Simulator sim;
  PairHarness net(sim);
  TcpConfig tc = BaseConfig();
  TcpConfig rc = tc;
  rc.close_on_peer_fin = true;

  auto one_cycle = [&](FlowId flow) {
    auto rx = std::make_unique<TcpConnection>(sim, &net.b, flow, 0, rc);
    auto tx = std::make_unique<TcpConnection>(sim, &net.a, flow, 1, tc);
    rx->Listen();
    tx->Connect();
    tx->AddAppData(3000);
    tx->Close();
    sim.RunUntil(sim.now() + SimTime::Millis(3));  // covers 2MSL (1ms)
    ASSERT_EQ(tx->state(), TcpConnection::State::kClosed);
    ASSERT_EQ(rx->state(), TcpConnection::State::kClosed);
    ASSERT_EQ(tx->close_reason(), CloseReason::kNormal);
    ASSERT_EQ(rx->close_reason(), CloseReason::kNormal);
  };

  // Warm up lazily-grown capacity (event heap, demux buckets, send queues).
  FlowId flow = 1;
  for (int i = 0; i < 200; ++i) one_cycle(flow++);

  const auto delta = test::CountAllocations([&] {
    for (int i = 0; i < 10'000; ++i) one_cycle(flow++);
  });
  // Per-cycle allocations (connections, buffers, callbacks) are all matched
  // by frees: the churn steady state holds zero net allocations.
  EXPECT_EQ(delta.news, delta.deletes);

  // And zero leaked host registrations across all 10200 open/close cycles.
  EXPECT_EQ(net.a.num_endpoints(), 0u);
  EXPECT_EQ(net.b.num_endpoints(), 0u);
  EXPECT_EQ(net.a.num_tdn_listeners(), 0u);
  EXPECT_EQ(net.b.num_tdn_listeners(), 0u);
}

}  // namespace
}  // namespace tdtcp
