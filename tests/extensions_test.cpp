// Extensions beyond the paper's evaluation testbed: sender pacing (§5.2's
// suggested mitigation), per-TDN congestion-control mixing (§3.5), the
// multi-rack RotorNet controller with per-destination notifications (§6),
// and the full appendix-A.1 cross-TDN arrival scenario catalogue.
#include <gtest/gtest.h>

#include "app/workload.hpp"
#include "cc/registry.hpp"
#include "rdcn/rotor_controller.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::LoopbackHarness;

TcpConfig BaseConfig() {
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  return c;
}

// ---------------------------------------------------------------------------
// Sender pacing
// ---------------------------------------------------------------------------

struct PacedFixture {
  explicit PacedFixture(TcpConfig config)
      : harness(sim), conn(sim, &harness.host, 1, 99, config) {
    conn.Connect();
    harness.Settle();
    Packet syn = harness.out.Pop();
    conn.HandlePacket(LoopbackHarness::SynAckFor(syn, false, 0));
    harness.Settle();
    harness.out.packets.clear();
  }
  Simulator sim;
  LoopbackHarness harness;
  TcpConnection conn;
};

TEST(Pacing, SpreadsWindowOverSrtt) {
  TcpConfig c = BaseConfig();
  c.pacing_enabled = true;
  c.pacing_gain = 1.0;
  PacedFixture f(c);
  // Train srtt to 100us, then release a 10-segment window.
  f.conn.tdns().active().rtt.AddSample(SimTime::Micros(100));
  const SimTime start = f.sim.now();
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  // With gain 1 and cwnd 10 over 100us srtt, 10 segments take ~100us, so
  // barely anything escapes within the first microsecond.
  EXPECT_LE(f.harness.out.packets.size(), 3u);
  f.sim.RunUntil(start + SimTime::Micros(150));
  EXPECT_EQ(f.conn.tdns().active().packets_in_flight(), 10u);
  // Inter-packet spacing ~ srtt / cwnd = 10us.
  ASSERT_GE(f.harness.out.packets.size(), 10u);
  const SimTime gap = f.harness.out.packets[5].sent_time -
                      f.harness.out.packets[4].sent_time;
  EXPECT_GE(gap, SimTime::Micros(5));
  EXPECT_LE(gap, SimTime::Micros(20));
}

TEST(Pacing, DisabledSendsBackToBack) {
  PacedFixture f(BaseConfig());
  f.conn.tdns().active().rtt.AddSample(SimTime::Micros(100));
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  EXPECT_EQ(f.harness.out.packets.size(), 10u);  // whole window at once
}

TEST(Pacing, NoRttSampleMeansNoPacing) {
  TcpConfig c = BaseConfig();
  c.pacing_enabled = true;
  PacedFixture f(c);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  EXPECT_EQ(f.harness.out.packets.size(), 10u);
}

TEST(Pacing, StillReachesFullThroughput) {
  Simulator sim;
  test::PairHarness net(sim);
  TcpConfig c = BaseConfig();
  c.pacing_enabled = true;
  TcpConnection server(sim, &net.b, 1, 0, c);
  TcpConnection client(sim, &net.a, 1, 1, c);
  server.Listen();
  client.Connect();
  client.AddAppData(400'000);
  sim.RunUntil(SimTime::Millis(40));
  EXPECT_EQ(client.bytes_acked(), 400'000u);
}

// ---------------------------------------------------------------------------
// Per-TDN congestion control (§3.5)
// ---------------------------------------------------------------------------

TEST(MixedCca, DifferentAlgorithmPerTdn) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  c.per_tdn_cc = {MakeCcFactory("cubic"), MakeCcFactory("dctcp")};
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  EXPECT_STREQ(conn.tdns().state(0).cc->name(), "cubic");
  EXPECT_STREQ(conn.tdns().state(1).cc->name(), "dctcp");
}

TEST(MixedCca, ExtraTdnsReuseLastFactory) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 4;
  c.per_tdn_cc = {MakeCcFactory("cubic"), MakeCcFactory("reno")};
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  EXPECT_STREQ(conn.tdns().state(0).cc->name(), "cubic");
  EXPECT_STREQ(conn.tdns().state(1).cc->name(), "reno");
  EXPECT_STREQ(conn.tdns().state(2).cc->name(), "reno");
  EXPECT_STREQ(conn.tdns().state(3).cc->name(), "reno");
}

TEST(MixedCca, TransfersCleanly) {
  Simulator sim;
  test::PairHarness net(sim);
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  c.per_tdn_cc = {MakeCcFactory("cubic"), MakeCcFactory("reno")};
  TcpConnection server(sim, &net.b, 1, 0, c);
  TcpConnection client(sim, &net.a, 1, 1, c);
  server.Listen();
  client.Connect();
  client.AddAppData(200'000);
  sim.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(client.bytes_acked(), 200'000u);
}

// ---------------------------------------------------------------------------
// Per-destination notifications
// ---------------------------------------------------------------------------

TEST(PerDestNotify, ListenerFiltersByPeerRack) {
  Simulator sim;
  Host host(sim, 0);
  int to_rack1 = 0, to_rack2 = 0, unfiltered = 0;
  int o1, o2, o3;
  host.AddTdnListener(&o1, [&](TdnId, bool) { ++to_rack1; }, 1);
  host.AddTdnListener(&o2, [&](TdnId, bool) { ++to_rack2; }, 2);
  host.AddTdnListener(&o3, [&](TdnId, bool) { ++unfiltered; });

  Packet for_rack1;
  for_rack1.type = PacketType::kTdnNotify;
  for_rack1.notify_tdn = 1;
  for_rack1.notify_peer = 1;
  host.HandlePacket(std::move(for_rack1));
  EXPECT_EQ(to_rack1, 1);
  EXPECT_EQ(to_rack2, 0);
  EXPECT_EQ(unfiltered, 1);  // kAllRacks listeners hear everything

  Packet fabric_wide;
  fabric_wide.type = PacketType::kTdnNotify;
  fabric_wide.notify_tdn = 0;
  host.HandlePacket(std::move(fabric_wide));
  EXPECT_EQ(to_rack1, 2);  // fabric-wide reaches filtered listeners too
  EXPECT_EQ(to_rack2, 1);
  EXPECT_EQ(unfiltered, 2);
}

// ---------------------------------------------------------------------------
// RotorController (multi-rack)
// ---------------------------------------------------------------------------

TEST(Rotor, MatchingsArePerfectAndCoverAllPairs) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.num_racks = 6;
  tc.hosts_per_rack = 1;
  Topology topo(sim, rng, tc);
  RotorController::Config rc;
  rc.packet_mode = tc.packet_mode;
  rc.circuit_mode = tc.circuit_mode;
  RotorController rotor(sim, rc, &topo);

  EXPECT_EQ(rotor.num_matchings(), 5u);
  std::set<std::pair<RackId, RackId>> seen;
  for (std::uint32_t d = 0; d < rotor.num_matchings(); ++d) {
    for (RackId r = 0; r < 6; ++r) {
      const RackId p = rotor.PartnerOf(d, r);
      EXPECT_NE(p, r);                        // no self-matching
      EXPECT_EQ(rotor.PartnerOf(d, p), r);    // symmetric
      seen.insert({std::min(r, p), std::max(r, p)});
    }
  }
  EXPECT_EQ(seen.size(), 15u);  // C(6,2): every pair met exactly once
}

TEST(Rotor, DrivesCircuitsPerMatching) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.num_racks = 4;
  tc.hosts_per_rack = 1;
  Topology topo(sim, rng, tc);
  RotorController::Config rc;
  rc.packet_mode = tc.packet_mode;
  rc.circuit_mode = tc.circuit_mode;
  RotorController rotor(sim, rc, &topo);
  rotor.Start();
  sim.RunUntil(SimTime::Micros(50));  // inside day 0
  int circuits = 0;
  for (RackId a = 0; a < 4; ++a) {
    for (RackId b = 0; b < 4; ++b) {
      if (a == b) continue;
      if (topo.port(a, b)->mode().circuit) {
        ++circuits;
        EXPECT_EQ(rotor.PartnerOf(0, a), b);
      }
    }
  }
  EXPECT_EQ(circuits, 4);  // two pairs, both directions
  // Nights black everything out.
  sim.RunUntil(SimTime::Micros(190));
  EXPECT_TRUE(topo.port(0, 1)->blackout());
}

TEST(Rotor, FlowsOnDistinctPairsKeepIndependentTdnViews) {
  // A 4-rack rotor with TDTCP flows 0->1 and 0->2: per-destination
  // notifications must keep the two flows' TDN views independent even
  // though they share the sending host's rack.
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.num_racks = 4;
  tc.hosts_per_rack = 2;
  Topology topo(sim, rng, tc);
  RotorController::Config rc;
  rc.packet_mode = tc.packet_mode;
  rc.circuit_mode = tc.circuit_mode;
  RotorController rotor(sim, rc, &topo);

  TcpConfig c;
  c.mss = 8940;
  c.cc_factory = MakeCcFactory("cubic");
  c.tdtcp_enabled = true;
  c.num_tdns = 2;

  auto make_flow = [&](FlowId id, std::uint32_t src_idx, RackId dst_rack) {
    TcpConfig fc = c;
    fc.peer_rack = dst_rack;
    auto rx = std::make_unique<TcpConnection>(
        sim, topo.host(dst_rack, src_idx), id,
        topo.host_id(0, src_idx), fc);
    TcpConfig sc = c;
    sc.peer_rack = dst_rack;
    auto tx = std::make_unique<TcpConnection>(
        sim, topo.host(0, src_idx), id, topo.host_id(dst_rack, src_idx), sc);
    rx->Listen();
    tx->Connect();
    tx->SetUnlimitedData(true);
    return std::make_pair(std::move(tx), std::move(rx));
  };

  auto [tx1, rx1] = make_flow(1, 0, 1);
  auto [tx2, rx2] = make_flow(2, 1, 2);
  rotor.Start();

  // Walk several weeks; whenever a flow's active TDN is 1, its pair must
  // actually be circuit-connected.
  for (int step = 0; step < 120; ++step) {
    sim.RunFor(SimTime::Micros(37));
    if (tx1->tdns().active_id() == 1) {
      EXPECT_TRUE(topo.port(0, 1)->mode().circuit) << "flow 0->1 desynced";
    }
    if (tx2->tdns().active_id() == 1) {
      EXPECT_TRUE(topo.port(0, 2)->mode().circuit) << "flow 0->2 desynced";
    }
  }
  // Both flows made progress and both saw optical service.
  EXPECT_GT(tx1->bytes_acked(), 0u);
  EXPECT_GT(tx2->bytes_acked(), 0u);
  EXPECT_GT(tx1->tdns().state(1).bytes_acked, 0u);
  EXPECT_GT(tx2->tdns().state(1).bytes_acked, 0u);
  EXPECT_GT(tx1->stats().tdn_switches, 4u);
}

// ---------------------------------------------------------------------------
// Appendix A.1: the full cross-TDN arrival scenario catalogue. Each scenario
// is an arrival order of data ACKs/SACKs around a high->low latency switch;
// none of them represents loss, so TDTCP must emit no retransmission and
// end with everything acknowledged and the connection in Open state.
// ---------------------------------------------------------------------------

struct A1Scenario {
  const char* name;
  // Arrival order of ACK events. Positive k: cumulative ACK covering the
  // first k segments. Negative k: SACK of segments (4..3+|k|) while the
  // cumulative ACK stays at the TDN boundary.
  std::vector<int> arrivals;
};

class AppendixA1 : public ::testing::TestWithParam<A1Scenario> {};

TEST_P(AppendixA1, NoSpuriousRetransmission) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  conn.Connect();
  h.Settle();
  Packet syn = h.out.Pop();
  conn.HandlePacket(LoopbackHarness::SynAckFor(syn, true, 2));
  h.Settle();
  h.out.packets.clear();

  // Segments 1..3 (seq 1..3000) on TDN 0, segments 4..6 on TDN 1.
  conn.AddAppData(3000);
  h.Settle();
  conn.OnTdnChange(1, false);
  conn.AddAppData(3000);
  h.Settle();
  h.out.packets.clear();
  ASSERT_EQ(conn.snd_nxt(), 6001u);

  for (int k : GetParam().arrivals) {
    if (k > 0) {
      conn.HandlePacket(LoopbackHarness::Ack(
          1, 1 + static_cast<std::uint64_t>(k) * 1000, {},
          /*ack_tdn=*/k > 3 ? 1 : 0));
    } else {
      conn.HandlePacket(LoopbackHarness::Ack(
          1, 3001, {{3001, 3001 + static_cast<std::uint64_t>(-k) * 1000}},
          /*ack_tdn=*/1));
    }
    h.Settle();
  }
  // Final state: everything acknowledged, no retransmissions, both TDNs
  // healthy.
  EXPECT_EQ(conn.snd_una(), 6001u) << GetParam().name;
  EXPECT_EQ(conn.stats().retransmissions, 0u) << GetParam().name;
  EXPECT_NE(conn.tdns().state(0).ca_state, CaState::kRecovery);
  EXPECT_NE(conn.tdns().state(1).ca_state, CaState::kRecovery);
  EXPECT_EQ(conn.tdns().TotalPacketsOut(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, AppendixA1,
    ::testing::Values(
        // (a)-(c) data crossing: TDN-1 data overtakes, the receiver SACKs it
        // above the TDN-0 hole before the delayed cumulative ACKs land.
        A1Scenario{"a_data_cross_full", {-3, 3, 6}},
        A1Scenario{"b_data_cross_partial", {-2, -3, 3, 6}},
        A1Scenario{"c_data_cross_late", {1, -3, 3, 6}},
        // (d)-(f) ACK crossing: later cumulative ACKs arrive first; stale
        // lower ACKs follow and are discarded harmlessly.
        A1Scenario{"d_ack_cross_full", {6, 3}},
        A1Scenario{"e_ack_cross_partial", {4, 6, 2, 3}},
        A1Scenario{"f_ack_cross_single", {6, 1, 2, 3}},
        // (g)-(h) double crossing: both directions swap, arrivals end up in
        // sent order — no anomaly visible at the sender.
        A1Scenario{"g_double_cross", {3, 6}},
        A1Scenario{"h_double_cross_interleaved", {1, 2, 3, 4, 5, 6}}),
    [](const ::testing::TestParamInfo<A1Scenario>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tdtcp
