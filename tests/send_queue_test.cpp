// Sender retransmission queue / SACK scoreboard.
#include <gtest/gtest.h>

#include "tcp/send_queue.hpp"

namespace tdtcp {
namespace {

TxSegment Seg(std::uint64_t seq, std::uint32_t len, TdnId tdn = 0) {
  TxSegment s;
  s.seq = seq;
  s.len = len;
  s.tdn = tdn;
  return s;
}

TEST(SendQueue, AppendAndFront) {
  SendQueue q;
  EXPECT_TRUE(q.Empty());
  q.Append(Seg(1, 100));
  q.Append(Seg(101, 100));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.front().seq, 1u);
}

TEST(SendQueue, AckThroughRemovesCovered) {
  SendQueue q;
  q.Append(Seg(1, 100));
  q.Append(Seg(101, 100));
  q.Append(Seg(201, 100));
  std::vector<std::uint64_t> acked;
  q.AckThrough(201, [&](const TxSegment& s) { acked.push_back(s.seq); });
  EXPECT_EQ(acked, (std::vector<std::uint64_t>{1, 101}));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front().seq, 201u);
}

TEST(SendQueue, AckThroughPartialCoverageKeepsSegment) {
  SendQueue q;
  q.Append(Seg(1, 100));
  int called = 0;
  q.AckThrough(50, [&](const TxSegment&) { ++called; });
  EXPECT_EQ(called, 0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(SendQueue, ApplySackMarksFullyCovered) {
  SendQueue q;
  q.Append(Seg(1, 100));
  q.Append(Seg(101, 100));
  q.Append(Seg(201, 100));
  SackBlock blocks[] = {{101, 201}};
  const auto newly = q.ApplySack(blocks, [](TxSegment&) {});
  EXPECT_EQ(newly, 1u);
  EXPECT_FALSE(q.segments()[0].sacked);
  EXPECT_TRUE(q.segments()[1].sacked);
  EXPECT_FALSE(q.segments()[2].sacked);
  EXPECT_EQ(q.highest_sacked(), 201u);
}

TEST(SendQueue, ApplySackIgnoresPartialCoverage) {
  SendQueue q;
  q.Append(Seg(1, 100));
  SackBlock blocks[] = {{1, 50}};
  EXPECT_EQ(q.ApplySack(blocks, [](TxSegment&) {}), 0u);
  EXPECT_FALSE(q.segments()[0].sacked);
}

TEST(SendQueue, ApplySackIdempotent) {
  SendQueue q;
  q.Append(Seg(1, 100));
  SackBlock blocks[] = {{1, 101}};
  EXPECT_EQ(q.ApplySack(blocks, [](TxSegment&) {}), 1u);
  EXPECT_EQ(q.ApplySack(blocks, [](TxSegment&) {}), 0u);  // already sacked
}

TEST(SendQueue, ApplySackMultipleBlocks) {
  SendQueue q;
  for (int i = 0; i < 6; ++i) q.Append(Seg(1 + i * 100, 100));
  SackBlock blocks[] = {{101, 201}, {301, 501}};
  EXPECT_EQ(q.ApplySack(blocks, [](TxSegment&) {}), 3u);
  EXPECT_EQ(q.highest_sacked(), 501u);
}

TEST(SendQueue, FindLocatesCoveringSegment) {
  SendQueue q;
  q.Append(Seg(1, 100));
  q.Append(Seg(101, 100));
  EXPECT_EQ(q.Find(150)->seq, 101u);
  EXPECT_EQ(q.Find(1)->seq, 1u);
  EXPECT_EQ(q.Find(100)->seq, 1u);   // last byte of first segment
  EXPECT_EQ(q.Find(201), nullptr);   // past the end
}

TEST(SendQueue, FlagCounters) {
  SendQueue q;
  q.Append(Seg(1, 100));
  q.Append(Seg(101, 100));
  q.Append(Seg(201, 100));
  q.segments()[0].lost = true;
  q.segments()[1].sacked = true;
  q.segments()[2].retrans = true;
  EXPECT_EQ(q.CountLost(), 1u);
  EXPECT_EQ(q.CountSacked(), 1u);
  EXPECT_EQ(q.CountRetrans(), 1u);
}

TEST(SendQueue, PerSegmentTdnTagsPreserved) {
  SendQueue q;
  q.Append(Seg(1, 100, 0));
  q.Append(Seg(101, 100, 1));
  std::vector<TdnId> tdns;
  q.AckThrough(201, [&](const TxSegment& s) { tdns.push_back(s.tdn); });
  EXPECT_EQ(tdns, (std::vector<TdnId>{0, 1}));
}

}  // namespace
}  // namespace tdtcp
