// Fault-injection subsystem (src/fault) and the robustness machinery it
// exercises: deterministic fault traces, sweep determinism under a fault
// plan, the hosts' notification sequence filter, data-path TDN inference
// after lost notifications, the runtime TCP invariant checker, drain-then-
// shrink VOQ resizing, and end-to-end graceful degradation.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "app/experiment.hpp"
#include "app/sweep.hpp"
#include "cc/registry.hpp"
#include "fault/fault_injector.hpp"
#include "net/queue_disc.hpp"
#include "net/topology.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::LoopbackHarness;

ExperimentConfig ShortConfig(Variant v, int ms = 10) {
  ExperimentConfig cfg = PaperConfig(v);
  cfg.duration = SimTime::Millis(ms);
  cfg.warmup = SimTime::Millis(ms / 5);
  cfg.workload.num_flows = 4;
  cfg.sample_voq = false;
  cfg.sample_reorder = false;
  return cfg;
}

FaultPlan MixedPlan() {
  FaultPlan plan;
  plan.fabric.loss_rate = 0.02;
  plan.control.notify_loss_rate = 0.1;
  plan.control.notify_delay_mean = SimTime::Micros(5);
  plan.control.notify_duplicate_rate = 0.05;
  return plan;
}

// ---------------------------------------------------------------------------
// Deterministic fault traces
// ---------------------------------------------------------------------------

TEST(FaultTrace, BitIdenticalAcrossRuns) {
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp).WithFault(MixedPlan());
  const ExperimentResult a = RunExperiment(cfg);
  const ExperimentResult b = RunExperiment(cfg);
  EXPECT_GT(a.faults_injected, 0u);
  EXPECT_EQ(a.fault_trace_hash, b.fault_trace_hash);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_DOUBLE_EQ(a.goodput_bps, b.goodput_bps);
}

TEST(FaultTrace, SeedChangesTrace) {
  const ExperimentConfig base = ShortConfig(Variant::kTdtcp).WithFault(MixedPlan());
  ExperimentConfig other = base;
  other.seed = 99;
  const ExperimentResult a = RunExperiment(base);
  const ExperimentResult b = RunExperiment(other);
  EXPECT_NE(a.fault_trace_hash, b.fault_trace_hash);
}

TEST(FaultTrace, EmptyPlanInjectsNothing) {
  const ExperimentResult r = RunExperiment(ShortConfig(Variant::kTdtcp));
  EXPECT_EQ(r.faults_injected, 0u);
  EXPECT_EQ(r.fault_trace_hash, 0u);
  EXPECT_EQ(r.notifications_dropped, 0u);
}

TEST(FaultSweep, MetricsIdenticalAtAnyJobCount) {
  // The stacked determinism guarantee: a sweep whose base config carries a
  // fault plan must produce bit-identical metrics (including the fault
  // trace hashes) at --jobs=1 and --jobs=4.
  SweepSpec spec;
  spec.base = ShortConfig(Variant::kTdtcp, 5).WithFault(MixedPlan());
  spec.variants = {Variant::kTdtcp, Variant::kCubic};
  spec.seeds = {1, 2};

  spec.jobs = 1;
  const SweepResult serial = RunSweep(spec);
  spec.jobs = 4;
  const SweepResult parallel = RunSweep(spec);

  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t c = 0; c < serial.cells.size(); ++c) {
    ASSERT_EQ(serial.cells[c].runs.size(), parallel.cells[c].runs.size());
    for (std::size_t k = 0; k < serial.cells[c].runs.size(); ++k) {
      const ExperimentResult& s = serial.cells[c].runs[k].result;
      const ExperimentResult& p = parallel.cells[c].runs[k].result;
      EXPECT_EQ(s.fault_trace_hash, p.fault_trace_hash);
      const auto sm = ScalarMetrics(s);
      const auto pm = ScalarMetrics(p);
      ASSERT_EQ(sm.size(), pm.size());
      for (std::size_t m = 0; m < sm.size(); ++m) {
        EXPECT_EQ(sm[m].second, pm[m].second)
            << serial.cells[c].label << " metric " << sm[m].first;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Injector mechanics (direct, no workload)
// ---------------------------------------------------------------------------

TEST(FaultInjector, LinkDownWindowTogglesLinkAndRecordsTrace) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.hosts_per_rack = 2;
  Topology topo(sim, rng, tc);

  FaultPlan plan;
  plan.audit_interval = SimTime::Zero();
  plan.link_downs.push_back(LinkDownWindow{/*rack=*/0, /*uplink=*/true,
                                           SimTime::Micros(100),
                                           SimTime::Micros(50)});
  FaultInjector inj(sim, plan, /*run_seed=*/1);
  inj.Arm(topo);

  sim.RunUntil(SimTime::Micros(120));
  EXPECT_FALSE(topo.rack_uplink(0)->enabled());
  sim.RunUntil(SimTime::Micros(200));
  EXPECT_TRUE(topo.rack_uplink(0)->enabled());

  EXPECT_EQ(inj.stats().link_transitions, 2u);
  ASSERT_EQ(inj.trace().size(), 2u);
  EXPECT_EQ(inj.trace()[0].kind, FaultKind::kLinkDown);
  EXPECT_EQ(inj.trace()[0].at, SimTime::Micros(100));
  EXPECT_EQ(inj.trace()[1].kind, FaultKind::kLinkUp);
  EXPECT_EQ(inj.trace()[1].at, SimTime::Micros(150));
  EXPECT_NE(inj.TraceHash(), 0u);
}

TEST(FaultInjector, GilbertElliottBurstsAreDeterministic) {
  FaultPlan plan;
  plan.fabric.gilbert_elliott = true;
  plan.fabric.ge_p_good_to_bad = 0.05;
  plan.fabric.ge_p_bad_to_good = 0.3;
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp).WithFault(plan);
  const ExperimentResult a = RunExperiment(cfg);
  const ExperimentResult b = RunExperiment(cfg);
  EXPECT_GT(a.faults_injected, 0u);       // bursts actually fired
  EXPECT_GT(a.retransmissions, 0u);       // and the transport noticed
  EXPECT_EQ(a.fault_trace_hash, b.fault_trace_hash);
}

// ---------------------------------------------------------------------------
// Host notification sequence filter
// ---------------------------------------------------------------------------

Packet NotifyPacket(std::uint64_t seq, TdnId tdn, RackId peer = kAllRacks) {
  Packet p;
  p.type = PacketType::kTdnNotify;
  p.notify_tdn = tdn;
  p.notify_peer = peer;
  p.notify_seq = seq;
  return p;
}

struct NotifyProbe {
  Simulator sim;
  Host host{sim, 0};
  std::vector<TdnId> applied;

  NotifyProbe() {
    host.AddTdnListener(this, [this](TdnId tdn, bool) { applied.push_back(tdn); });
  }
};

TEST(NotifySequence, DuplicateStaleAndReorderedAreDropped) {
  NotifyProbe probe;
  probe.host.HandlePacket(NotifyPacket(1, 1));  // applied
  probe.host.HandlePacket(NotifyPacket(1, 1));  // duplicate
  probe.host.HandlePacket(NotifyPacket(3, 0));  // applied (newer)
  probe.host.HandlePacket(NotifyPacket(2, 1));  // reordered straggler
  probe.host.HandlePacket(NotifyPacket(3, 0));  // duplicate of current
  EXPECT_EQ(probe.applied, (std::vector<TdnId>{1, 0}));
  EXPECT_EQ(probe.host.stale_notifications_dropped(), 3u);
}

TEST(NotifySequence, UnsequencedNotificationsAlwaysApply) {
  NotifyProbe probe;
  probe.host.HandlePacket(NotifyPacket(5, 1));
  probe.host.HandlePacket(NotifyPacket(0, 0));  // legacy unsequenced
  probe.host.HandlePacket(NotifyPacket(0, 1));
  EXPECT_EQ(probe.applied, (std::vector<TdnId>{1, 0, 1}));
  EXPECT_EQ(probe.host.stale_notifications_dropped(), 0u);
}

TEST(NotifySequence, ScopesAreIndependentPerPeerRack) {
  // A rotor controller numbers notifications per controller, but scopes
  // them per destination rack: sequence 5 toward rack 1 must not shadow
  // sequence 1 toward rack 2.
  NotifyProbe probe;
  probe.host.HandlePacket(NotifyPacket(5, 1, /*peer=*/1));
  probe.host.HandlePacket(NotifyPacket(1, 0, /*peer=*/2));  // applied
  probe.host.HandlePacket(NotifyPacket(4, 0, /*peer=*/1));  // stale for rack 1
  EXPECT_EQ(probe.applied, (std::vector<TdnId>{1, 0}));
  EXPECT_EQ(probe.host.stale_notifications_dropped(), 1u);
}

// ---------------------------------------------------------------------------
// TCP-level fixtures
// ---------------------------------------------------------------------------

TcpConfig TdtcpConfig() {
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  return c;
}

struct TdtcpFixture {
  explicit TdtcpFixture(TcpConfig config = TdtcpConfig())
      : harness(sim), conn(sim, &harness.host, 1, 99, config) {
    conn.Connect();
    harness.Settle();
    Packet syn = harness.out.Pop();
    conn.HandlePacket(LoopbackHarness::SynAckFor(syn, true, config.num_tdns));
    harness.Settle();
    harness.out.packets.clear();
  }

  std::vector<Packet> TakeData() {
    std::vector<Packet> out;
    while (!harness.out.Empty()) {
      Packet p = harness.out.Pop();
      if (p.payload > 0) out.push_back(std::move(p));
    }
    return out;
  }

  Simulator sim;
  LoopbackHarness harness;
  TcpConnection conn;
};

TEST(NotifySequence, TdnManagerConsistentUnderReplayedDeliveries) {
  // The end-to-end property behind the filter: however the control plane
  // duplicates and reorders deliveries, the connection's TDN view follows
  // the newest sequence number and replays are pure no-ops.
  TdtcpFixture f;
  ASSERT_TRUE(f.conn.tdtcp_active());
  f.harness.host.HandlePacket(NotifyPacket(2, 1));
  EXPECT_EQ(f.conn.tdns().active_id(), 1);
  const std::uint64_t switches = f.conn.stats().tdn_switches;

  f.harness.host.HandlePacket(NotifyPacket(1, 0));  // stale: would regress
  f.harness.host.HandlePacket(NotifyPacket(2, 1));  // duplicate
  f.harness.host.HandlePacket(NotifyPacket(2, 0));  // stale with new payload
  EXPECT_EQ(f.conn.tdns().active_id(), 1);
  EXPECT_EQ(f.conn.stats().tdn_switches, switches);
  EXPECT_EQ(f.conn.tdns().num_tdns(), 2u);

  f.harness.host.HandlePacket(NotifyPacket(3, 0));  // genuinely newer
  EXPECT_EQ(f.conn.tdns().active_id(), 0);
}

// ---------------------------------------------------------------------------
// Data-path TDN inference (§3.2 graceful degradation)
// ---------------------------------------------------------------------------

TEST(TdnInference, ConvergesAfterLostNotification) {
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  std::vector<Packet> data = f.TakeData();
  ASSERT_GE(data.size(), 6u);

  // The peer switched to TDN 1 but our notification was lost: every ACK now
  // carries ack_tdn=1. Spaced beyond the patience window, the mismatch
  // streak must converge the sender without any notification.
  std::uint64_t inferred = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    f.sim.RunUntil(f.sim.now() + SimTime::Micros(400));
    f.conn.HandlePacket(LoopbackHarness::Ack(
        1, data[i].seq + data[i].payload, {}, /*ack_tdn=*/1));
    inferred = f.conn.stats().tdn_inferred_switches;
    if (inferred > 0) break;
  }
  EXPECT_EQ(inferred, 1u);
  EXPECT_EQ(f.conn.tdns().active_id(), 1);
}

TEST(TdnInference, StragglersAfterGenuineNotificationDoNotFlap) {
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  std::vector<Packet> data = f.TakeData();
  ASSERT_GE(data.size(), 6u);

  // Genuine switch to TDN 1, then a burst of in-flight ACKs still tagged
  // with the old TDN arrives within the patience window (stragglers drain
  // within about one RTT of a real switch): not a lost notification, so no
  // flap back.
  f.conn.OnTdnChange(1, false);
  ASSERT_EQ(f.conn.tdns().active_id(), 1);
  for (std::size_t i = 0; i < data.size(); ++i) {
    f.sim.RunUntil(f.sim.now() + SimTime::Nanos(100));
    f.conn.HandlePacket(LoopbackHarness::Ack(
        1, data[i].seq + data[i].payload, {}, /*ack_tdn=*/0));
  }
  EXPECT_EQ(f.conn.tdns().active_id(), 1);
  EXPECT_EQ(f.conn.stats().tdn_inferred_switches, 0u);
}

TEST(TdnInference, DisabledByConfig) {
  TcpConfig cfg = TdtcpConfig();
  cfg.tdn_inference = false;
  TdtcpFixture f(cfg);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  std::vector<Packet> data = f.TakeData();
  ASSERT_GE(data.size(), 6u);
  for (std::size_t i = 0; i < data.size(); ++i) {
    f.sim.RunUntil(f.sim.now() + SimTime::Micros(400));
    f.conn.HandlePacket(LoopbackHarness::Ack(
        1, data[i].seq + data[i].payload, {}, /*ack_tdn=*/1));
  }
  EXPECT_EQ(f.conn.tdns().active_id(), 0);
  EXPECT_EQ(f.conn.stats().tdn_inferred_switches, 0u);
}

// ---------------------------------------------------------------------------
// Runtime invariant checker
// ---------------------------------------------------------------------------

TEST(InvariantChecker, FiresOnDeliberatelyCorruptedAccounting) {
  TdtcpFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  std::vector<Packet> data = f.TakeData();
  ASSERT_FALSE(data.empty());

  // Corrupt the per-TDN accounting behind the engine's back: the scoreboard
  // recount on the next ACK must detect the divergence and throw.
  f.conn.tdns().state(0).packets_out += 5;
  EXPECT_THROW(f.conn.HandlePacket(LoopbackHarness::Ack(
                   1, data[0].seq + data[0].payload)),
               std::logic_error);
}

TEST(InvariantChecker, CleanRunStaysSilent) {
  // invariant_checks defaults to on, so every experiment in the tier-1
  // suite doubles as a checker run; this one pins the default explicitly.
  ExperimentConfig cfg = ShortConfig(Variant::kTdtcp);
  ASSERT_TRUE(cfg.workload.base.invariant_checks);
  EXPECT_NO_THROW({
    const ExperimentResult r = RunExperiment(cfg);
    EXPECT_GT(r.goodput_bps, 0.0);
  });
}

// ---------------------------------------------------------------------------
// Drain-then-shrink VOQ resizing
// ---------------------------------------------------------------------------

Packet DataPacket() {
  Packet p;
  p.type = PacketType::kData;
  p.size_bytes = 9000;
  return p;
}

TEST(VoqShrink, DrainThenShrinkRetainsAdmittedPackets) {
  QueueDisc q(QueueDisc::Config{.capacity_packets = 50});
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(q.Enqueue(DataPacket()));

  // reTCPdyn teardown: 50 -> 16 while holding 40. Admitted packets are
  // retained (dropping them would manufacture loss at every teardown), but
  // admissions stop and the occupancy bound becomes the shrink watermark.
  q.set_capacity(16);
  EXPECT_EQ(q.occupancy(), 40u);
  EXPECT_EQ(q.capacity(), 16u);
  EXPECT_EQ(q.stats().shrink_deferred, 24u);  // 40 held - 16 new capacity
  EXPECT_TRUE(q.WithinBound());
  EXPECT_FALSE(q.Enqueue(DataPacket()));  // over capacity: no admissions
  EXPECT_EQ(q.stats().dropped, 1u);

  // Draining decays the watermark monotonically back to the capacity.
  for (int i = 0; i < 24; ++i) ASSERT_TRUE(q.Dequeue(SimTime::Zero()).has_value());
  EXPECT_EQ(q.occupancy(), 16u);
  EXPECT_TRUE(q.WithinBound());
  ASSERT_TRUE(q.Dequeue(SimTime::Zero()).has_value());
  EXPECT_TRUE(q.Enqueue(DataPacket()));  // back under capacity: admits again
  EXPECT_TRUE(q.WithinBound());
}

TEST(VoqShrink, ShrinkBelowEmptyQueueIsImmediate) {
  QueueDisc q(QueueDisc::Config{.capacity_packets = 50});
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.Enqueue(DataPacket()));
  q.set_capacity(16);  // occupancy 10 <= 16: plain resize
  EXPECT_EQ(q.stats().shrink_deferred, 0u);
  EXPECT_TRUE(q.WithinBound());
}

// ---------------------------------------------------------------------------
// End-to-end graceful degradation
// ---------------------------------------------------------------------------

TEST(GracefulDegradation, BernoulliFabricLossDegradesNotCollapses) {
  const double clean =
      RunExperiment(ShortConfig(Variant::kTdtcp)).goodput_bps;
  FaultPlan plan;
  plan.fabric.loss_rate = 0.05;
  const ExperimentResult lossy =
      RunExperiment(ShortConfig(Variant::kTdtcp).WithFault(plan));
  EXPECT_GT(lossy.faults_injected, 0u);
  EXPECT_GT(lossy.retransmissions, 0u);
  EXPECT_LT(lossy.goodput_bps, clean);
  EXPECT_GT(lossy.goodput_bps, 0.0);
}

TEST(GracefulDegradation, NotificationLossRecoversViaInference) {
  // ≥1% notification loss: TDTCP must hold most of its fault-free goodput
  // because hosts that miss a notification converge via TD_DATA_ACK tags.
  const double clean =
      RunExperiment(ShortConfig(Variant::kTdtcp, 20)).goodput_bps;
  FaultPlan plan;
  plan.control.notify_loss_rate = 0.01;
  const ExperimentResult r =
      RunExperiment(ShortConfig(Variant::kTdtcp, 20).WithFault(plan));
  EXPECT_GT(r.notifications_dropped, 0u);
  EXPECT_GE(r.goodput_bps, 0.5 * clean);
}

TEST(GracefulDegradation, HeavyNotificationLossExercisesInference) {
  FaultPlan plan;
  plan.control.notify_loss_rate = 0.5;
  const ExperimentResult r =
      RunExperiment(ShortConfig(Variant::kTdtcp, 20).WithFault(plan));
  // With half the per-host notifications lost, some hosts hear about each
  // switch and some don't: the data-path tags disagree and inference must
  // fire. The run still makes solid progress.
  EXPECT_GT(r.notifications_dropped, 0u);
  EXPECT_GT(r.tdn_inferred_switches, 0u);
  EXPECT_GT(r.goodput_bps, 0.0);
}

TEST(GracefulDegradation, ControllerStallSkipsReconfigurationSilently) {
  // The default schedule reconfigures (and notifies) at 1200us and 1380us
  // into each 1400us week; a stall window over [2500us, 2900us) therefore
  // swallows exactly the third week's circuit-up and teardown notifications
  // -- the fabric reconfigures but no host hears about it.
  FaultPlan plan;
  plan.control.stalls.push_back(ControlFaultSpec::StallWindow{
      SimTime::Micros(2500), SimTime::Micros(2900)});
  const ExperimentResult r =
      RunExperiment(ShortConfig(Variant::kTdtcp).WithFault(plan));
  EXPECT_GT(r.faults_injected, 0u);
  EXPECT_GT(r.notifications_dropped, 0u);  // stall drops count as dropped
  EXPECT_GT(r.goodput_bps, 0.0);
}

TEST(GracefulDegradation, DelayedAndDuplicatedNotificationsAreAbsorbed) {
  FaultPlan plan;
  plan.control.notify_delay_mean = SimTime::Micros(20);
  plan.control.notify_delay_jitter = SimTime::Micros(10);
  plan.control.notify_duplicate_rate = 0.3;
  const ExperimentResult r =
      RunExperiment(ShortConfig(Variant::kTdtcp, 20).WithFault(plan));
  // Duplicates arrive with the same sequence number and land in the hosts'
  // stale filter; heavy delay reorders notifications across switches.
  EXPECT_GT(r.stale_notifications, 0u);
  EXPECT_GT(r.goodput_bps, 0.0);
}

TEST(GracefulDegradation, DelayedNotificationsTraceDeterministically) {
  // Regression: jittered notification delivery must stay on the simulated
  // clock only — any wall-clock or iteration-order dependence shows up as a
  // tracepoint stream (and hence hash) difference between identical runs.
  FaultPlan plan;
  plan.control.notify_delay_mean = SimTime::Micros(20);
  plan.control.notify_delay_jitter = SimTime::Micros(10);
  plan.control.notify_duplicate_rate = 0.2;
  const ExperimentConfig cfg =
      ShortConfig(Variant::kTdtcp, 5).WithFault(plan).WithTrace();
  const ExperimentResult a = RunExperiment(cfg);
  const ExperimentResult b = RunExperiment(cfg);
  EXPECT_GT(a.trace_records, 0u);
  EXPECT_EQ(a.trace_hash, b.trace_hash);
  EXPECT_EQ(a.trace_records, b.trace_records);
}

}  // namespace
}  // namespace tdtcp
