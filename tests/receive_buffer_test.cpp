// Receiver reassembly, SACK generation (RFC 2018), DSACK (RFC 2883).
#include <gtest/gtest.h>

#include "tcp/receive_buffer.hpp"

namespace tdtcp {
namespace {

SimTime T(int us) { return SimTime::Micros(us); }

TEST(ReceiveBuffer, InOrderDelivery) {
  ReceiveBuffer rb;
  auto r = rb.OnData(1, 100, false, 0, T(0));
  ASSERT_EQ(r.delivered.size(), 1u);
  EXPECT_EQ(r.delivered[0].seq, 1u);
  EXPECT_EQ(rb.rcv_nxt(), 101u);
  EXPECT_FALSE(r.out_of_order);
  EXPECT_FALSE(r.duplicate);
}

TEST(ReceiveBuffer, OutOfOrderBuffersAndReleases) {
  ReceiveBuffer rb;
  auto r1 = rb.OnData(101, 100, false, 0, T(0));
  EXPECT_TRUE(r1.out_of_order);
  EXPECT_TRUE(r1.delivered.empty());
  EXPECT_EQ(rb.rcv_nxt(), 1u);
  EXPECT_EQ(rb.ooo_bytes(), 100u);

  auto r2 = rb.OnData(1, 100, false, 0, T(1));
  ASSERT_EQ(r2.delivered.size(), 2u);
  EXPECT_EQ(r2.delivered[0].seq, 1u);
  EXPECT_EQ(r2.delivered[1].seq, 101u);
  EXPECT_EQ(rb.rcv_nxt(), 201u);
  EXPECT_EQ(rb.ooo_bytes(), 0u);
}

TEST(ReceiveBuffer, DuplicateSignalsDsack) {
  ReceiveBuffer rb;
  rb.OnData(1, 100, false, 0, T(0));
  auto r = rb.OnData(1, 100, false, 0, T(1));
  EXPECT_TRUE(r.duplicate);
  EXPECT_TRUE(r.delivered.empty());
  EXPECT_EQ(r.dsack.start, 1u);
  EXPECT_EQ(r.dsack.end, 101u);
  // The DSACK is the first SACK block.
  auto blocks = rb.BuildSackBlocks(r);
  ASSERT_GE(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (SackBlock{1, 101}));
}

TEST(ReceiveBuffer, DuplicateOfBufferedOooIsDsack) {
  ReceiveBuffer rb;
  rb.OnData(201, 100, false, 0, T(0));
  auto r = rb.OnData(201, 100, false, 0, T(1));
  EXPECT_TRUE(r.duplicate);
}

TEST(ReceiveBuffer, PartialOverlapTrimsStalePrefix) {
  ReceiveBuffer rb;
  rb.OnData(1, 100, false, 0, T(0));
  // Segment [51, 151): first 50 bytes already delivered.
  auto r = rb.OnData(51, 100, false, 0, T(1));
  ASSERT_EQ(r.delivered.size(), 1u);
  EXPECT_EQ(r.delivered[0].seq, 101u);
  EXPECT_EQ(r.delivered[0].len, 50u);
  EXPECT_EQ(rb.rcv_nxt(), 151u);
}

TEST(ReceiveBuffer, SackBlocksMostRecentFirst) {
  ReceiveBuffer rb;
  ReceiveBuffer::Result last;
  rb.OnData(201, 100, false, 0, T(0));   // range A (older)
  last = rb.OnData(401, 100, false, 0, T(1));  // range B (newer)
  auto blocks = rb.BuildSackBlocks(last);
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], (SackBlock{401, 501}));
  EXPECT_EQ(blocks[1], (SackBlock{201, 301}));
}

TEST(ReceiveBuffer, AdjacentOooSegmentsCoalesce) {
  ReceiveBuffer rb;
  rb.OnData(201, 100, false, 0, T(0));
  auto last = rb.OnData(301, 100, false, 0, T(1));
  auto blocks = rb.BuildSackBlocks(last);
  ASSERT_EQ(blocks.size(), 1u);
  EXPECT_EQ(blocks[0], (SackBlock{201, 401}));
}

TEST(ReceiveBuffer, SackBlockLimit) {
  ReceiveBuffer rb;
  ReceiveBuffer::Result last;
  // Six disjoint ranges; only kMaxSackBlocks are reported.
  for (int i = 0; i < 6; ++i) {
    last = rb.OnData(201 + i * 200, 100, false, 0, T(i));
  }
  auto blocks = rb.BuildSackBlocks(last);
  EXPECT_EQ(blocks.size(), static_cast<std::size_t>(kMaxSackBlocks));
  // Most recent range first.
  EXPECT_EQ(blocks[0].start, 201u + 5 * 200);
}

TEST(ReceiveBuffer, DeliveryClearsSackRanges) {
  ReceiveBuffer rb;
  rb.OnData(101, 100, false, 0, T(0));
  auto r = rb.OnData(1, 100, false, 0, T(1));
  auto blocks = rb.BuildSackBlocks(r);
  EXPECT_TRUE(blocks.empty());
}

TEST(ReceiveBuffer, DssMappingPreserved) {
  ReceiveBuffer rb;
  auto r = rb.OnData(1, 100, true, 5000, T(0));
  ASSERT_EQ(r.delivered.size(), 1u);
  EXPECT_TRUE(r.delivered[0].has_dss);
  EXPECT_EQ(r.delivered[0].dss_seq, 5000u);
}

TEST(ReceiveBuffer, DssAdjustedOnTrim) {
  ReceiveBuffer rb;
  rb.OnData(1, 100, false, 0, T(0));
  auto r = rb.OnData(51, 100, true, 9000, T(1));
  ASSERT_EQ(r.delivered.size(), 1u);
  EXPECT_EQ(r.delivered[0].dss_seq, 9050u);
}

TEST(ReceiveBuffer, ManyInterleavedSegmentsAllDeliveredOnce) {
  ReceiveBuffer rb;
  // Even segments first (out of order), then odd ones.
  std::uint64_t delivered_bytes = 0;
  for (int i = 0; i < 20; i += 2) {
    auto r = rb.OnData(1 + i * 100, 100, false, 0, T(i));
    for (auto& d : r.delivered) delivered_bytes += d.len;
  }
  for (int i = 1; i < 20; i += 2) {
    auto r = rb.OnData(1 + i * 100, 100, false, 0, T(20 + i));
    for (auto& d : r.delivered) delivered_bytes += d.len;
  }
  EXPECT_EQ(delivered_bytes, 2000u);
  EXPECT_EQ(rb.rcv_nxt(), 2001u);
  EXPECT_EQ(rb.ooo_bytes(), 0u);
}

}  // namespace
}  // namespace tdtcp
