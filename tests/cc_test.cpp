// Congestion-control modules: NewReno, CUBIC, DCTCP, reTCP, registry.
#include <gtest/gtest.h>

#include "cc/cubic.hpp"
#include "cc/dctcp.hpp"
#include "cc/reno.hpp"
#include "cc/retcp.hpp"
#include "cc/registry.hpp"

namespace tdtcp {
namespace {

TdnState MakeState(std::uint32_t cwnd = 10,
                   std::uint32_t ssthresh = 0x7fffffff) {
  TdnState s;
  s.cwnd = cwnd;
  s.ssthresh = ssthresh;
  s.cwnd_limited = true;
  return s;
}

AckContext Ctx(SimTime now, std::uint64_t acked_bytes = 8940, bool ece = false,
               SimTime rtt = SimTime::Micros(100)) {
  AckContext ctx;
  ctx.event.newly_acked_packets = 1;
  ctx.event.newly_acked_bytes = acked_bytes;
  ctx.event.ece = ece;
  ctx.event.rtt_sample = rtt;
  ctx.now = now;
  return ctx;
}

// ---------------------------------------------------------------------------
// NewReno
// ---------------------------------------------------------------------------

TEST(Reno, SlowStartDoublesPerRtt) {
  RenoCc cc;
  TdnState s = MakeState(10);
  cc.CongAvoid(s, 10, SimTime::Zero());  // ack a full window
  EXPECT_EQ(s.cwnd, 20u);
}

TEST(Reno, CongestionAvoidanceOnePerWindow) {
  RenoCc cc;
  TdnState s = MakeState(10, 10);
  for (int i = 0; i < 10; ++i) cc.CongAvoid(s, 1, SimTime::Zero());
  EXPECT_EQ(s.cwnd, 11u);
}

TEST(Reno, NoGrowthWhenNotCwndLimited) {
  RenoCc cc;
  TdnState s = MakeState(10, 10);
  s.cwnd_limited = false;
  for (int i = 0; i < 100; ++i) cc.CongAvoid(s, 1, SimTime::Zero());
  EXPECT_EQ(s.cwnd, 10u);
}

TEST(Reno, SsThreshIsHalf) {
  RenoCc cc;
  TdnState s = MakeState(20);
  EXPECT_EQ(cc.SsThresh(s), 10u);
  s.cwnd = 3;
  EXPECT_EQ(cc.SsThresh(s), 2u);  // floor of 2
}

// ---------------------------------------------------------------------------
// CUBIC
// ---------------------------------------------------------------------------

TEST(Cubic, SlowStartGrowth) {
  CubicCc cc;
  TdnState s = MakeState(10);
  cc.Init(s);
  cc.CongAvoid(s, 10, SimTime::Micros(100));
  EXPECT_EQ(s.cwnd, 20u);
}

TEST(Cubic, BetaReduction) {
  CubicCc cc;
  TdnState s = MakeState(100, 50);
  cc.Init(s);
  const std::uint32_t ssthresh = cc.SsThresh(s);
  EXPECT_EQ(ssthresh, static_cast<std::uint32_t>(100 * 717 / 1024));
}

TEST(Cubic, FastConvergenceShrinksOrigin) {
  CubicCc cc;
  TdnState s = MakeState(100);
  cc.Init(s);
  cc.SsThresh(s);  // first loss at 100: last_max = 100
  EXPECT_DOUBLE_EQ(cc.last_max_cwnd(), 100.0);
  s.cwnd = 80;     // second loss below previous max -> fast convergence
  cc.SsThresh(s);
  EXPECT_LT(cc.last_max_cwnd(), 80.0 * 0.9);
  EXPECT_GT(cc.last_max_cwnd(), 80.0 * 0.8);
}

TEST(Cubic, ConcaveGrowthTowardsOrigin) {
  // After a loss at W, cubic grows back towards W: monotonically, and with
  // decelerating (concave) steps as it approaches the origin point. (At
  // data-center RTTs the Reno-friendliness floor keeps adding ~1 segment
  // per RTT afterwards, so we check the shape over a modest horizon, not a
  // plateau.)
  CubicCc cc;
  TdnState s = MakeState(100, 50);
  cc.Init(s);
  cc.OnAck(s, Ctx(SimTime::Micros(0)));
  s.ssthresh = cc.SsThresh(s);  // loss at 100 -> ssthresh 70, origin 100
  s.cwnd = s.ssthresh;
  SimTime t = SimTime::Micros(100);
  std::uint32_t prev = s.cwnd;
  std::vector<std::uint32_t> trajectory;
  for (int rtt = 0; rtt < 100; ++rtt) {
    cc.OnAck(s, Ctx(t));
    // One ACK event per delivered segment pair, as a real receiver produces.
    const std::uint32_t events = prev / 2;
    for (std::uint32_t e = 0; e < events; ++e) cc.CongAvoid(s, 2, t);
    t += SimTime::Micros(100);
    EXPECT_GE(s.cwnd, prev);
    prev = s.cwnd;
    trajectory.push_back(s.cwnd);
  }
  // Recovers to (roughly) the origin without exploding past it. (At this
  // horizon and RTT the growth blends the cubic curve with the
  // Reno-friendliness floor, so we assert recovery and boundedness; the
  // pure-cubic shape is checked by CubicClosedForm.ReturnsToOriginNearK.)
  EXPECT_GE(s.cwnd, 85u);
  EXPECT_LE(s.cwnd, 300u);
  EXPECT_FALSE(trajectory.empty());
}

TEST(Cubic, RtoResetsState) {
  CubicCc cc;
  TdnState s = MakeState(100);
  cc.Init(s);
  cc.SsThresh(s);
  cc.OnRetransmitTimeout(s);
  EXPECT_DOUBLE_EQ(cc.last_max_cwnd(), 0.0);
}

TEST(Cubic, IdleShiftPreventsTimeJumpGrowth) {
  // A TDN resumed after a long pause must not fast-forward its cubic curve
  // (§3.1 checkpoint semantics).
  CubicCc cc;
  TdnState s = MakeState(100, 50);
  cc.Init(s);
  s.ssthresh = cc.SsThresh(s);
  s.cwnd = s.ssthresh;
  // A few acks establish the epoch.
  SimTime t = SimTime::Micros(100);
  for (int i = 0; i < 5; ++i) {
    cc.OnAck(s, Ctx(t));
    cc.CongAvoid(s, 1, t);
    t += SimTime::Micros(100);
  }
  const std::uint32_t before = s.cwnd;
  // 1 second of inactivity, then the TDN resumes.
  t += SimTime::Seconds(1);
  cc.OnCwndEvent(s, CwndEvent::kTdnResume);
  cc.OnAck(s, Ctx(t));
  cc.CongAvoid(s, 1, t);
  // Without the epoch shift the cubic target after 1 idle second would jump
  // by thousands of segments in a single step.
  EXPECT_LE(s.cwnd, before + 2);
}

// ---------------------------------------------------------------------------
// DCTCP
// ---------------------------------------------------------------------------

TEST(Dctcp, AlphaStartsAtOne) {
  DctcpCc cc;
  TdnState s = MakeState();
  cc.Init(s);
  EXPECT_DOUBLE_EQ(cc.alpha(), 1.0);
}

TEST(Dctcp, AlphaDecaysWithoutMarks) {
  DctcpCc cc;
  TdnState s = MakeState();
  cc.Init(s);
  AckContext ctx = Ctx(SimTime::Micros(100));
  ctx.snd_una = 1;
  ctx.snd_nxt = 100'000;
  for (int w = 0; w < 100; ++w) {
    ctx.snd_una += 100'000;  // each ack crosses a window boundary
    ctx.snd_nxt = ctx.snd_una + 100'000;
    cc.OnAck(s, ctx);
  }
  EXPECT_LT(cc.alpha(), 0.01);
}

TEST(Dctcp, AlphaTracksMarkedFraction) {
  DctcpCc cc;
  TdnState s = MakeState();
  cc.Init(s);
  AckContext ctx = Ctx(SimTime::Micros(100));
  ctx.snd_una = 1;
  // Alternate: half the bytes in each window marked.
  for (int w = 0; w < 400; ++w) {
    ctx.event.ece = (w % 2 == 0);
    ctx.snd_una += 50'000;
    ctx.snd_nxt = ctx.snd_una + 50'000;
    cc.OnAck(s, ctx);
  }
  EXPECT_NEAR(cc.alpha(), 0.5, 0.1);
}

TEST(Dctcp, SsThreshScalesWithAlpha) {
  DctcpCc cc;
  TdnState s = MakeState(100);
  cc.Init(s);  // alpha = 1 -> cut to half
  EXPECT_EQ(cc.SsThresh(s), 50u);
}

TEST(Dctcp, WantsEcn) {
  DctcpCc cc;
  EXPECT_TRUE(cc.WantsEcn());
  RenoCc reno;
  EXPECT_FALSE(reno.WantsEcn());
}

// ---------------------------------------------------------------------------
// reTCP
// ---------------------------------------------------------------------------

TEST(Retcp, RampUpOnCircuitAndDownAfter) {
  RetcpCc cc(RetcpCc::Params{4.0, false});
  TdnState s = MakeState(10, 8);
  cc.Init(s);
  cc.OnCircuitTransition(s, /*up=*/true, /*imminent=*/false);
  EXPECT_EQ(s.cwnd, 40u);
  cc.OnCircuitTransition(s, /*up=*/false, /*imminent=*/false);
  EXPECT_EQ(s.cwnd, 10u);
  EXPECT_EQ(s.ssthresh, 8u);
}

TEST(Retcp, RampUpIsIdempotent) {
  RetcpCc cc(RetcpCc::Params{4.0, false});
  TdnState s = MakeState(10, 8);
  cc.OnCircuitTransition(s, true, false);
  cc.OnCircuitTransition(s, true, false);
  EXPECT_EQ(s.cwnd, 40u);
}

TEST(Retcp, NoRampDuringRecovery) {
  RetcpCc cc(RetcpCc::Params{4.0, false});
  TdnState s = MakeState(10, 8);
  s.ca_state = CaState::kRecovery;
  cc.OnCircuitTransition(s, true, false);
  EXPECT_EQ(s.cwnd, 10u);
}

TEST(Retcp, PlainVariantIgnoresImminent) {
  RetcpCc cc(RetcpCc::Params{4.0, false});
  TdnState s = MakeState(10, 8);
  cc.OnCircuitTransition(s, true, /*imminent=*/true);
  EXPECT_EQ(s.cwnd, 10u);
}

TEST(Retcp, DynVariantPreRampsOnImminent) {
  RetcpCc cc(RetcpCc::Params{4.0, true});
  TdnState s = MakeState(10, 8);
  cc.OnCircuitTransition(s, true, /*imminent=*/true);
  EXPECT_EQ(s.cwnd, 40u);
  // The echo arriving later must not double-ramp.
  cc.OnCircuitTransition(s, true, false);
  EXPECT_EQ(s.cwnd, 40u);
}

TEST(Retcp, RampDownTakesLossReductionsIntoAccount) {
  RetcpCc cc(RetcpCc::Params{4.0, false});
  TdnState s = MakeState(10, 8);
  cc.OnCircuitTransition(s, true, false);
  s.cwnd = 6;  // losses during the circuit shrank the window below pre-ramp
  cc.OnCircuitTransition(s, false, false);
  EXPECT_EQ(s.cwnd, 6u);  // min(current, pre-ramp)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, CreatesAllKnownAlgorithms) {
  for (const char* name : {"reno", "cubic", "dctcp", "retcp", "retcpdyn"}) {
    auto factory = MakeCcFactory(name);
    auto cc = factory();
    ASSERT_NE(cc, nullptr);
    EXPECT_STREQ(cc->name(), name);
  }
}

TEST(Registry, ThrowsOnUnknown) {
  EXPECT_THROW(MakeCcFactory("bbr2000"), std::invalid_argument);
}

TEST(Registry, FactoriesProduceIndependentInstances) {
  auto factory = MakeCcFactory("dctcp");
  auto a = factory();
  auto b = factory();
  EXPECT_NE(a.get(), b.get());
}

}  // namespace
}  // namespace tdtcp
