// The allocation-free event core's contract (see event_queue.hpp): exact
// FIFO among equal timestamps no matter how slots are recycled, O(1)
// sequence-tagged cancellation that can never alias a later event, the
// zero-delay lane's ordering against the heap, dead-entry compaction, and
// end-to-end bit-identity of a seeded RDCN run.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "app/experiment.hpp"
#include "cc/registry.hpp"
#include "net/topology.hpp"
#include "rdcn/controller.hpp"
#include "sim/event_queue.hpp"
#include "sim/hash.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "tcp/tcp_connection.hpp"

namespace tdtcp {
namespace {

// Drains the queue, appending each fired value to `order`.
void Drain(EventQueue& q) {
  SimTime now = SimTime::Zero();
  while (!q.Empty()) q.RunNext(now);
}

TEST(EventCore, FifoPreservedAcrossSlotRecycling) {
  // Slots are recycled LIFO while sequence numbers only grow; firing order
  // must follow schedule order even when a late event lands in a slot that
  // already hosted (and retired) many earlier events.
  EventQueue q;
  std::vector<int> order;
  int tag = 0;
  for (int round = 0; round < 50; ++round) {
    // Same timestamp for every event in the round: only the sequence number
    // can break the tie.
    const SimTime at = SimTime::Nanos(10);
    for (int i = 0; i < 7; ++i) {
      q.Schedule(at, [&order, t = tag++] { order.push_back(t); });
    }
    Drain(q);
  }
  ASSERT_EQ(order.size(), 350u);
  for (int i = 0; i < 350; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventCore, StaleIdNeverCancelsSlotsNewOccupant) {
  EventQueue q;
  bool first_ran = false;
  const EventId stale = q.Schedule(SimTime::Nanos(1),
                                   [&first_ran] { first_ran = true; });
  Drain(q);
  EXPECT_TRUE(first_ran);

  // The fired event's slot is recycled by the next schedule (LIFO freelist).
  bool second_ran = false;
  const EventId fresh = q.Schedule(SimTime::Nanos(2),
                                   [&second_ran] { second_ran = true; });
  ASSERT_EQ(EventQueue::SlotOf(stale), EventQueue::SlotOf(fresh))
      << "test premise: the slot must be recycled";
  ASSERT_NE(EventQueue::SeqOf(stale), EventQueue::SeqOf(fresh));

  q.Cancel(stale);  // must be a no-op against the new occupant
  EXPECT_EQ(q.size(), 1u);
  Drain(q);
  EXPECT_TRUE(second_ran);
}

TEST(EventCore, CancelAfterFireAndDoubleCancelAreNoOps) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.Schedule(SimTime::Nanos(1), [&fired] { ++fired; });
  Drain(q);
  q.Cancel(id);
  q.Cancel(id);
  EXPECT_EQ(q.size(), 0u);
  q.Schedule(SimTime::Nanos(2), [&fired] { ++fired; });
  Drain(q);
  EXPECT_EQ(fired, 2);
}

TEST(EventCore, SequenceSpaceExhaustionThrowsInsteadOfWrapping) {
  // A wrapped sequence number would silently reorder events; the queue must
  // refuse instead. Jump the counter to the edge rather than scheduling
  // 2^43 events.
  EventQueue q;
  q.ForceNextSeqForTest(EventQueue::kMaxSeq);
  int fired = 0;
  const EventId last = q.Schedule(SimTime::Nanos(1), [&fired] { ++fired; });
  EXPECT_EQ(EventQueue::SeqOf(last), EventQueue::kMaxSeq);
  EXPECT_THROW(q.Schedule(SimTime::Nanos(1), [] {}), std::length_error);
  // The event that did fit still works end to end.
  q.Cancel(last);
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventCore, MaxSequenceEventStillOrdersAfterEarlierOnes) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime::Nanos(5), [&order] { order.push_back(0); });
  q.ForceNextSeqForTest(EventQueue::kMaxSeq);
  q.Schedule(SimTime::Nanos(5), [&order] { order.push_back(1); });
  Drain(q);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
}

TEST(EventCore, ZeroDelayLaneKeepsScheduleOrderAgainstHeap) {
  // Heap events at time T were scheduled before the lane events that a
  // callback at T spawns, so every heap event at T fires first, then the
  // lane events in FIFO order.
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(SimTime::Nanos(10), [&] {
    order.push_back(0);
    sim.Schedule(SimTime::Zero(), [&order] { order.push_back(3); });
    sim.Schedule(SimTime::Zero(), [&order] { order.push_back(4); });
  });
  sim.ScheduleAt(SimTime::Nanos(10), [&order] { order.push_back(1); });
  sim.ScheduleAt(SimTime::Nanos(10), [&order] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventCore, ZeroDelayChainsDrainBreadthFirst) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(SimTime::Zero(), [&] {
    order.push_back(0);
    sim.Schedule(SimTime::Zero(), [&] {
      order.push_back(2);
      sim.Schedule(SimTime::Zero(), [&order] { order.push_back(4); });
    });
  });
  sim.Schedule(SimTime::Zero(), [&] {
    order.push_back(1);
    sim.Schedule(SimTime::Zero(), [&order] { order.push_back(3); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventCore, CancelledZeroDelayEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  int others = 0;
  sim.ScheduleAt(SimTime::Nanos(10), [&] {
    const EventId id =
        sim.Schedule(SimTime::Zero(), [&fired] { fired = true; });
    sim.Schedule(SimTime::Zero(), [&others] { ++others; });
    sim.Cancel(id);
  });
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(others, 1);
}

TEST(EventCore, CompactionBoundsDeadHeapEntries) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.Schedule(SimTime::Nanos(100 + i), [] {}));
  }
  EXPECT_EQ(q.heap_storage_for_test(), 1000u);
  // Cancel from the back so dead entries pile up in the heap's interior
  // where DropDeadHeads cannot see them.
  for (int i = 999; i >= 100; --i) q.Cancel(ids[static_cast<std::size_t>(i)]);
  EXPECT_EQ(q.size(), 100u);
  // Dead entries never exceed half the storage once compaction kicks in.
  EXPECT_LE(q.heap_storage_for_test(), 2 * q.size() + 1);
  // The survivors still fire, in order.
  std::vector<int> fired;
  SimTime now = SimTime::Zero();
  int expect = 0;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(q.NextTime(), SimTime::Nanos(100 + expect));
    q.RunNext(now);
    ++expect;
  }
  EXPECT_TRUE(q.Empty());
}

TEST(EventCore, ScheduleNoCancelInterleavesWithCancellableEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(SimTime::Nanos(5), [&order] { order.push_back(0); });
  sim.ScheduleNoCancel(SimTime::Nanos(5), [&order] { order.push_back(1); });
  sim.Schedule(SimTime::Nanos(5), [&order] { order.push_back(2); });
  sim.ScheduleAtNoCancel(SimTime::Nanos(5), [&order] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventCore, SlabGrowsInBlocksAndRecycles) {
  EventQueue q;
  for (int i = 0; i < 100; ++i) q.Schedule(SimTime::Nanos(i + 1), [] {});
  const std::size_t grown = q.slab_size_for_test();
  EXPECT_GE(grown, 100u);
  Drain(q);
  // Steady state re-uses the recycled slots: no further slab growth.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100; ++i) q.Schedule(SimTime::Nanos(i + 1), [] {});
    Drain(q);
  }
  EXPECT_EQ(q.slab_size_for_test(), grown);
}

// Digest of every packet a connection sends or receives, in tap order.
std::uint64_t RunSeededRdcnAndHashPackets() {
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp);
  Simulator sim;
  Random rng(cfg.seed);
  Topology topo(sim, rng, cfg.topology);
  RdcnController::Config rc;
  rc.schedule = cfg.schedule;
  rc.packet_mode = cfg.topology.packet_mode;
  rc.circuit_mode = cfg.topology.circuit_mode;
  RdcnController controller(sim, rc, {topo.port(0, 1), topo.port(1, 0)},
                            {topo.tor(0), topo.tor(1)});
  controller.Start();

  TcpConfig tc = MakeVariantConfig(Variant::kTdtcp, cfg.workload.base);
  TcpConnection server(sim, topo.host(1, 0), 1, topo.host_id(0, 0), tc);
  TcpConnection client(sim, topo.host(0, 0), 1, topo.host_id(1, 0), tc);

  Fnv1a64 hash;
  const auto tap = [&hash, &sim](TcpConnection::TapDirection dir,
                                 const Packet& p) {
    hash.Mix(static_cast<std::uint64_t>(sim.now().picos()));
    hash.Mix(dir == TcpConnection::TapDirection::kTx ? 1 : 2);
    hash.Mix(p.id);
    hash.Mix(p.seq);
    hash.Mix(p.ack);
    hash.Mix(p.payload);
    hash.Mix(static_cast<std::uint64_t>(p.type));
  };
  server.SetPacketTap(tap);
  client.SetPacketTap(tap);

  server.Listen();
  client.Connect();
  client.SetUnlimitedData(true);
  sim.RunUntil(SimTime::Millis(5));
  // Fold in the aggregate outcome so a divergence after the tap-visible
  // fields would still flip the digest.
  hash.Mix(client.bytes_acked());
  hash.Mix(sim.events_executed());
  return hash.value();
}

TEST(EventCore, SeededRdcnRunIsBitIdentical) {
  const std::uint64_t a = RunSeededRdcnAndHashPackets();
  const std::uint64_t b = RunSeededRdcnAndHashPackets();
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
}

}  // namespace
}  // namespace tdtcp
