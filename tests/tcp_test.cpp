// TCP engine behavior: handshake + TD_CAPABLE negotiation, transfer,
// SACK-based loss detection, recovery state machine, DSACK undo, RTO with
// backoff, TLP, ECN/CWR, flow control.
#include <gtest/gtest.h>

#include "cc/reno.hpp"
#include "cc/registry.hpp"
#include "tcp/tcp_connection.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::CaptureSink;
using test::LoopbackHarness;
using test::PairHarness;

TcpConfig BaseConfig() {
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  return c;
}

// Drives the client side of the handshake against hand-crafted packets.
struct ClientFixture {
  explicit ClientFixture(TcpConfig config = BaseConfig())
      : harness(sim), conn(sim, &harness.host, 1, 99, config) {
    Establish();
  }

  void Establish() {
    conn.Connect();
    harness.Settle();
    ASSERT_FALSE(harness.out.Empty());
    Packet syn = harness.out.Pop();
    ASSERT_TRUE(syn.syn);
    conn.HandlePacket(LoopbackHarness::SynAckFor(
        syn, conn.config().tdtcp_enabled, conn.config().num_tdns));
    harness.Settle();
    harness.out.packets.clear();  // drop the final handshake ACK
    ASSERT_EQ(conn.state(), TcpConnection::State::kEstablished);
  }

  // Collects the data segments currently captured.
  std::vector<Packet> TakeData() {
    std::vector<Packet> out;
    while (!harness.out.Empty()) {
      Packet p = harness.out.Pop();
      if (p.payload > 0) out.push_back(std::move(p));
    }
    return out;
  }

  Simulator sim;
  LoopbackHarness harness;
  TcpConnection conn;
};

// ---------------------------------------------------------------------------
// Handshake and negotiation
// ---------------------------------------------------------------------------

TEST(Handshake, SynCarriesTdCapable) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  conn.Connect();
  h.Settle();
  Packet syn = h.out.Pop();
  EXPECT_TRUE(syn.syn);
  EXPECT_TRUE(syn.td_capable);
  EXPECT_EQ(syn.td_num_tdns, 2);
  EXPECT_EQ(conn.state(), TcpConnection::State::kSynSent);
}

TEST(Handshake, TdtcpNegotiationSucceeds) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  ClientFixture f(c);
  EXPECT_TRUE(f.conn.tdtcp_active());
}

TEST(Handshake, MismatchedTdnCountDowngrades) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  conn.Connect();
  h.Settle();
  Packet syn = h.out.Pop();
  conn.HandlePacket(LoopbackHarness::SynAckFor(syn, true, 3));  // peer has 3
  EXPECT_EQ(conn.state(), TcpConnection::State::kEstablished);
  EXPECT_FALSE(conn.tdtcp_active());
}

TEST(Handshake, NonCapablePeerDowngrades) {
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  conn.Connect();
  h.Settle();
  Packet syn = h.out.Pop();
  conn.HandlePacket(LoopbackHarness::SynAckFor(syn, false, 0));
  EXPECT_FALSE(conn.tdtcp_active());
}

TEST(Handshake, SynAccountedOnTdnZero) {
  // Appendix A.2: the SYN is always tracked under TDN 0.
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, c);
  conn.Connect();
  EXPECT_EQ(conn.tdns().state(0).packets_out, 1u);
  EXPECT_EQ(conn.tdns().state(1).packets_out, 0u);
}

TEST(Handshake, SynRetransmittedOnTimeout) {
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection conn(sim, &h.host, 1, 99, BaseConfig());
  conn.Connect();
  sim.RunUntil(SimTime::Millis(5));  // several initial RTOs (1ms base)
  int syns = 0;
  for (auto& p : h.out.packets) {
    if (p.syn) ++syns;
  }
  EXPECT_GE(syns, 2);
  EXPECT_EQ(conn.state(), TcpConnection::State::kSynSent);
  // The late SYN/ACK still completes the handshake cleanly.
  conn.HandlePacket(
      LoopbackHarness::SynAckFor(h.out.packets.front(), false, 0));
  EXPECT_EQ(conn.state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(conn.tdns().state(0).packets_out, 0u);
  EXPECT_EQ(conn.tdns().state(0).packets_in_flight(), 0u);
}

TEST(Handshake, ServerSideListenAcceptsSyn) {
  Simulator sim;
  LoopbackHarness h(sim);
  TcpConnection server(sim, &h.host, 1, 99, BaseConfig());
  server.Listen();
  Packet syn;
  syn.type = PacketType::kData;
  syn.flow = 1;
  syn.syn = true;
  syn.src = 99;
  syn.size_bytes = 60;
  server.HandlePacket(std::move(syn));
  h.Settle();
  EXPECT_EQ(server.state(), TcpConnection::State::kSynReceived);
  Packet synack = h.out.Pop();
  EXPECT_TRUE(synack.syn);
  EXPECT_EQ(synack.ack, 1u);
  // Final ACK establishes.
  server.HandlePacket(LoopbackHarness::Ack(1, 1));
  EXPECT_EQ(server.state(), TcpConnection::State::kEstablished);
}

// ---------------------------------------------------------------------------
// Sending and ACK processing
// ---------------------------------------------------------------------------

TEST(Transfer, InitialWindowLimitsBurst) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  EXPECT_EQ(f.TakeData().size(), 10u);  // initial cwnd
  EXPECT_EQ(f.conn.tdns().active().packets_in_flight(), 10u);
}

TEST(Transfer, AckAdvancesAndReleasesMore) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1 + 2 * 1000));
  f.harness.Settle();
  EXPECT_EQ(f.conn.snd_una(), 2001u);
  EXPECT_EQ(f.conn.bytes_acked(), 2000u);
  // Slow start: 2 acked -> cwnd 12 -> 4 new segments (2 freed + 2 growth).
  EXPECT_EQ(f.TakeData().size(), 4u);
}

TEST(Transfer, FiniteDataStopsAtEnd) {
  ClientFixture f;
  f.conn.AddAppData(2500);  // 2.5 segments
  f.harness.Settle();
  auto data = f.TakeData();
  ASSERT_EQ(data.size(), 3u);
  EXPECT_EQ(data[2].payload, 500u);
  EXPECT_EQ(f.conn.snd_nxt(), 2501u);
}

TEST(Transfer, StaleAckIgnored) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 3001));
  const auto una = f.conn.snd_una();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 2001));  // old
  EXPECT_EQ(f.conn.snd_una(), una);
}

TEST(Transfer, AckBeyondSndNxtIgnored) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1'000'000));
  EXPECT_EQ(f.conn.snd_una(), 1u);
}

TEST(Transfer, RwndZeroStallsSender) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  Packet ack = LoopbackHarness::Ack(1, 10'001);
  ack.rcv_window = 0;  // close the window
  f.conn.HandlePacket(std::move(ack));
  f.harness.Settle();
  EXPECT_TRUE(f.TakeData().empty());
  // Window reopens.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 10'001));
  f.harness.Settle();
  EXPECT_FALSE(f.TakeData().empty());
}

// ---------------------------------------------------------------------------
// Loss detection and recovery
// ---------------------------------------------------------------------------

TEST(Recovery, SackTriggersFastRetransmit) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  // Segment 1 (seq 1..1001) lost; SACKs accumulate above it.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 2001}}));
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 3001}}));
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 4001}}));
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  f.harness.Settle();
  EXPECT_EQ(f.conn.tdns().active().ca_state, CaState::kRecovery);
  EXPECT_GE(f.conn.stats().retransmissions, 1u);
  // The head was retransmitted (limited transmit may interleave new data).
  auto sent = f.TakeData();
  bool head_retransmitted = false;
  for (auto& p : sent) head_retransmitted |= (p.seq == 1);
  EXPECT_TRUE(head_retransmitted);
}

TEST(Recovery, PrrReducesWindowTowardSsthresh) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  const auto before = f.conn.tdns().active().cwnd;
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  // Reno ssthresh is half; PRR holds cwnd near pipe+1 rather than jumping.
  EXPECT_EQ(f.conn.tdns().active().ssthresh, before / 2);
  EXPECT_LT(f.conn.tdns().active().cwnd, before);
  EXPECT_GE(f.conn.tdns().active().cwnd,
            f.conn.tdns().active().packets_in_flight());
}

TEST(Recovery, ExitsWhenHighSeqAcked) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  ASSERT_EQ(f.conn.tdns().active().ca_state, CaState::kRecovery);
  const auto high = f.conn.snd_nxt();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, high));
  EXPECT_EQ(f.conn.tdns().active().ca_state, CaState::kOpen);
  // tcp_end_cwnd_reduction: the window lands at (or near, after the exit
  // ACK's growth step) ssthresh.
  EXPECT_LE(f.conn.tdns().active().cwnd,
            f.conn.tdns().active().ssthresh + 2);
}

TEST(Recovery, PipeAccountingConsistentThroughRecovery) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  f.harness.Settle();
  const auto& st = f.conn.tdns().active();
  EXPECT_EQ(st.sacked_out, f.conn.send_queue().CountSacked());
  EXPECT_EQ(st.lost_out, f.conn.send_queue().CountLost());
  EXPECT_EQ(st.retrans_out, f.conn.send_queue().CountRetrans());
  EXPECT_EQ(st.packets_out, f.conn.send_queue().size());
}

TEST(Recovery, DupAcksWithoutSackTriggerRetransmit) {
  TcpConfig c = BaseConfig();
  c.sack_enabled = false;
  c.rack_enabled = false;
  ClientFixture f(c);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  for (int i = 0; i < 3; ++i) {
    f.conn.HandlePacket(LoopbackHarness::Ack(1, 1));
  }
  f.harness.Settle();
  auto sent = f.TakeData();
  bool head_retransmitted = false;
  for (auto& p : sent) head_retransmitted |= (p.seq == 1);
  EXPECT_TRUE(head_retransmitted);
  EXPECT_EQ(f.conn.tdns().active().ca_state, CaState::kRecovery);
}

TEST(Recovery, RetransmissionNotRemarkedWhileInFlight) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  f.harness.Settle();
  const auto rtx_after_first = f.conn.stats().retransmissions;
  EXPECT_GE(rtx_after_first, 1u);
  // More SACKs arrive; the head's retransmission is in flight and must not
  // be resent on every ACK.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 6001}}));
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 7001}}));
  EXPECT_EQ(f.conn.stats().retransmissions, rtx_after_first);
}

TEST(Rtt, SackedSegmentFeedsEstimator) {
  // Linux sack_rtt: a newly SACKed, never-retransmitted segment is a valid
  // RTT sample even when the cumulative ACK does not move. Without it a
  // sender whose in-order head is lost but whose later segments are SACKed
  // keeps RTO at initial_rto with no feedback from the live path.
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  const SimTime before = f.conn.tdns().active().rtt.srtt();
  // The segment sat in flight for 400us before the SACK-only dupACK.
  f.sim.RunUntil(f.sim.now() + SimTime::Micros(400));
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 2001}}));
  EXPECT_GT(f.conn.tdns().active().rtt.srtt(), before);
}

TEST(Rtt, SackSampleRespectsKarn) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  // Fast-retransmit the head, then let plenty of time pass.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  f.harness.Settle();
  ASSERT_GE(f.conn.stats().retransmissions, 1u);
  const SimTime before = f.conn.tdns().active().rtt.srtt();
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(5));
  // A SACK finally covering the retransmitted head is ambiguous (original
  // or retransmission?): Karn says no sample.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1, 1001}}));
  EXPECT_EQ(f.conn.tdns().active().rtt.srtt(), before);
}

TEST(Undo, DsackRestoresWindowAfterSpuriousRecovery) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  const auto cwnd_before = f.conn.tdns().active().cwnd;
  // Spurious loss detection: segment 1 was merely delayed.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  f.harness.Settle();
  ASSERT_GE(f.conn.stats().retransmissions, 1u);
  // The original arrives: cumulative ACK advances.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 5001));
  // The retransmission arrives as a duplicate: DSACK proves it spurious.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 5001, {{1, 1001}}));
  EXPECT_GE(f.conn.stats().undo_events, 1u);
  EXPECT_GE(f.conn.tdns().active().cwnd, cwnd_before);
  EXPECT_NE(f.conn.tdns().active().ca_state, CaState::kRecovery);
}

TEST(Rto, FiresAndEntersLoss) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(3));
  EXPECT_GE(f.conn.stats().timeouts, 1u);
  EXPECT_EQ(f.conn.tdns().active().ca_state, CaState::kLoss);
  auto rtx = f.TakeData();
  ASSERT_GE(rtx.size(), 1u);
  EXPECT_EQ(rtx[0].seq, 1u);
}

TEST(Rto, ExponentialBackoff) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(3));
  const auto timeouts_3ms = f.conn.stats().timeouts;
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(60));
  const auto timeouts_60ms = f.conn.stats().timeouts;
  // Backoff doubles the interval, so 20x more time yields far fewer than
  // 20x more timeouts.
  EXPECT_LT(timeouts_60ms, timeouts_3ms + 8);
}

TEST(Rto, RecoversAfterLoss) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(3));  // RTO fired
  // Receiver now acks everything outstanding.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, f.conn.snd_nxt()));
  f.harness.Settle();
  EXPECT_EQ(f.conn.tdns().active().ca_state, CaState::kOpen);
  EXPECT_FALSE(f.TakeData().empty());  // transmission resumed
}

TEST(Rto, RepeatedTimeoutWithSackedRetransmissionKeepsPipeSane) {
  // Regression: a segment whose retransmission was in flight when its
  // original got SACKed must not be double-counted (sacked + lost) by a
  // repeated timeout — that underflows the pipe and deadlocks the flow.
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  // Head marked lost and retransmitted.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1001, 5001}}));
  f.harness.Settle();
  ASSERT_GE(f.conn.stats().retransmissions, 1u);
  // The "lost" original now gets SACKed (it was only delayed).
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1, {{1, 1001}}));
  // Silence: RTO fires repeatedly (first and repeated timeouts).
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(40));
  EXPECT_GE(f.conn.stats().timeouts, 2u);
  for (std::size_t i = 0; i < f.conn.tdns().num_tdns(); ++i) {
    EXPECT_LT(f.conn.tdns().state(static_cast<TdnId>(i)).packets_in_flight(),
              1u << 30);
  }
  // The flow can still finish once connectivity "returns".
  f.conn.HandlePacket(LoopbackHarness::Ack(1, f.conn.snd_nxt()));
  f.harness.Settle();
  EXPECT_FALSE(f.TakeData().empty());
}

TEST(Tlp, ProbesTailLoss) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  // ACK all but the last segment; the tail is "lost" (no further SACKs).
  f.conn.HandlePacket(LoopbackHarness::Ack(1, 1 + 9 * 1000));
  f.harness.Settle();
  f.TakeData();
  // TLP (2*srtt floor 300us) fires well before the RTO.
  f.sim.RunUntil(f.sim.now() + SimTime::Micros(450));
  EXPECT_GE(f.conn.stats().tlp_probes, 1u);
  EXPECT_EQ(f.conn.stats().timeouts, 0u);
}

TEST(Tlp, RtoCancelsPendingProbe) {
  // Regression: with a converged low-variance RTT, the RTO (srtt + 4*rttvar)
  // fires before the TLP's 2*srtt deadline. The timeout must cancel the
  // armed probe — a TLP left pending would fire mid-Loss and inject a stray
  // retransmission into the reduced pipe.
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  // Converge srtt to ~600us with negligible variance: each ACK arrives
  // 600us after the segments it covers were sent.
  for (int i = 0; i < 20; ++i) {
    f.sim.RunUntil(f.sim.now() + SimTime::Micros(600));
    f.conn.HandlePacket(LoopbackHarness::Ack(1, f.conn.snd_nxt()));
  }
  // Final partial ACK leaves a tail outstanding, so this ACK arms a TLP
  // (2*srtt ~ 1.2ms). The unacked tail is already ~600us old, putting its
  // RTO deadline well before the probe's.
  f.sim.RunUntil(f.sim.now() + SimTime::Micros(600));
  f.conn.HandlePacket(LoopbackHarness::Ack(1, f.conn.snd_nxt() - 5000));
  f.TakeData();
  ASSERT_EQ(f.conn.stats().timeouts, 0u);
  ASSERT_EQ(f.conn.stats().tlp_probes, 0u);
  // Silence. The RTO fires first and must supersede the armed TLP.
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(5));
  EXPECT_GE(f.conn.stats().timeouts, 1u);
  EXPECT_EQ(f.conn.stats().tlp_probes, 0u)
      << "a stale TLP fired after the RTO took over";
}

// ---------------------------------------------------------------------------
// Zero-window persist
// ---------------------------------------------------------------------------

TEST(Persist, ZeroWindowProbesWithBackoffUntilReopen) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  f.TakeData();
  // Everything delivered, but the receiver's buffer is full: without a
  // persist timer both sides would now wait on each other forever (the
  // reopening window update is a pure ACK and is not retransmitted).
  Packet ack = LoopbackHarness::Ack(1, f.conn.snd_nxt());
  ack.rcv_window = 0;
  f.conn.HandlePacket(std::move(ack));
  f.harness.Settle();
  EXPECT_TRUE(f.TakeData().empty());
  ASSERT_TRUE(f.conn.persist_timer_armed());

  // First 1-byte window probe after about one RTO.
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(2));
  EXPECT_GE(f.conn.stats().persist_probes, 1u);
  auto probes = f.TakeData();
  ASSERT_FALSE(probes.empty());
  EXPECT_EQ(probes.front().payload, 1u);
  const auto probe_seq = probes.front().seq;

  // The probe is real new data, so once it is outstanding the RTO machinery
  // owns the clock: the probe byte is re-offered with the RTO's exponential
  // backoff (RFC 9293's "increase exponentially the interval between
  // successive probes"), not once per RTO.
  const auto timeouts_before = f.conn.stats().timeouts;
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(60));
  const auto rexmits = f.conn.stats().timeouts - timeouts_before;
  EXPECT_GE(rexmits, 2u);
  EXPECT_LT(rexmits, 10u);
  auto reprobes = f.TakeData();
  ASSERT_FALSE(reprobes.empty());
  for (const Packet& p : reprobes) {
    EXPECT_EQ(p.payload, 1u);
    EXPECT_EQ(p.seq, probe_seq);  // always the same single byte
  }

  // The window reopens: persist mode ends and the transfer resumes.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, f.conn.snd_nxt()));
  f.harness.Settle();
  EXPECT_FALSE(f.conn.persist_timer_armed());
  EXPECT_FALSE(f.TakeData().empty());
  // And stays quiet: no further probes once the window is open.
  const auto settled = f.conn.stats().persist_probes;
  f.sim.RunUntil(f.sim.now() + SimTime::Millis(20));
  EXPECT_EQ(f.conn.stats().persist_probes, settled);
}

// ---------------------------------------------------------------------------
// ECN
// ---------------------------------------------------------------------------

TEST(Ecn, EceEntersCwrOncePerWindow) {
  TcpConfig c = BaseConfig();
  c.ecn_enabled = true;
  ClientFixture f(c);
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  auto data = f.TakeData();
  EXPECT_EQ(data[0].ecn, Ecn::kEct0);
  const auto before = f.conn.tdns().active().cwnd;
  Packet e1 = LoopbackHarness::Ack(1, 1001);
  e1.ece = true;
  f.conn.HandlePacket(std::move(e1));
  EXPECT_EQ(f.conn.tdns().active().ca_state, CaState::kCwr);
  const auto ssthresh = f.conn.tdns().active().ssthresh;
  EXPECT_EQ(ssthresh, before / 2);  // reno reduction target
  // A second ECE within the same window must not re-reduce ssthresh.
  Packet e2 = LoopbackHarness::Ack(1, 2001);
  e2.ece = true;
  f.conn.HandlePacket(std::move(e2));
  EXPECT_EQ(f.conn.tdns().active().ssthresh, ssthresh);
  // Window completes -> back to Open with cwnd at the reduction target.
  f.conn.HandlePacket(LoopbackHarness::Ack(1, f.conn.snd_nxt()));
  EXPECT_EQ(f.conn.tdns().active().ca_state, CaState::kOpen);
  EXPECT_LE(f.conn.tdns().active().cwnd, ssthresh + 1);
}

TEST(Ecn, DataNotEctWhenDisabled) {
  ClientFixture f;
  f.conn.SetUnlimitedData(true);
  f.harness.Settle();
  EXPECT_EQ(f.TakeData()[0].ecn, Ecn::kNotEct);
}

// ---------------------------------------------------------------------------
// End-to-end over real links (PairHarness)
// ---------------------------------------------------------------------------

TEST(EndToEnd, HandshakeAndBulkTransfer) {
  Simulator sim;
  PairHarness net(sim);
  TcpConfig c = BaseConfig();
  TcpConnection server(sim, &net.b, 1, 0, c);
  TcpConnection client(sim, &net.a, 1, 1, c);
  server.Listen();
  client.Connect();
  client.AddAppData(500'000);
  sim.RunUntil(SimTime::Millis(20));
  EXPECT_EQ(client.bytes_acked(), 500'000u);
  EXPECT_EQ(server.stats().bytes_received, 500'000u);
  EXPECT_EQ(server.rcv_nxt(), 500'001u);
}

TEST(EndToEnd, DeliveryExactlyOnceUnderHeavyLoss) {
  Simulator sim;
  PairHarness::Options opt;
  opt.queue_capacity = 3;  // brutal: frequent tail drops
  PairHarness net(sim, opt);
  TcpConfig c = BaseConfig();
  TcpConnection server(sim, &net.b, 1, 0, c);
  TcpConnection client(sim, &net.a, 1, 1, c);
  std::uint64_t delivered = 0;
  std::uint64_t max_seq_end = 0;
  server.SetDeliverCallback([&](const TcpConnection::DeliverInfo& d) {
    delivered += d.len;
    EXPECT_EQ(d.stream_seq, max_seq_end + 1);  // strictly in-order
    max_seq_end = d.stream_seq + d.len - 1;
  });
  server.Listen();
  client.Connect();
  client.AddAppData(300'000);
  sim.RunUntil(SimTime::Millis(200));
  EXPECT_EQ(delivered, 300'000u);
  EXPECT_EQ(client.bytes_acked(), 300'000u);
  EXPECT_GT(client.stats().retransmissions, 0u);
}

TEST(EndToEnd, ThroughputApproachesLineRate) {
  Simulator sim;
  PairHarness::Options opt;
  opt.rate_bps = 1'000'000'000;  // 1 Gbps, 10us one-way delay
  opt.queue_capacity = 64;
  PairHarness net(sim, opt);
  TcpConfig c = BaseConfig();
  c.mss = 9000;
  TcpConnection server(sim, &net.b, 1, 0, c);
  TcpConnection client(sim, &net.a, 1, 1, c);
  server.Listen();
  client.Connect();
  client.SetUnlimitedData(true);
  sim.RunUntil(SimTime::Millis(50));
  const double goodput = static_cast<double>(client.bytes_acked()) * 8 / 50e-3;
  EXPECT_GT(goodput, 0.85e9);
  EXPECT_LT(goodput, 1.01e9);
}

TEST(EndToEnd, DowngradeMidConnectionKeepsWorking) {
  Simulator sim;
  PairHarness net(sim);
  TcpConfig c = BaseConfig();
  c.tdtcp_enabled = true;
  c.num_tdns = 2;
  TcpConnection server(sim, &net.b, 1, 0, c);
  TcpConnection client(sim, &net.a, 1, 1, c);
  server.Listen();
  client.Connect();
  client.SetUnlimitedData(true);
  sim.RunUntil(SimTime::Millis(5));
  ASSERT_TRUE(client.tdtcp_active());
  const auto at_downgrade = client.bytes_acked();
  EXPECT_GT(at_downgrade, 0u);
  client.DowngradeToRegularTcp();  // §4.2 debugging feature
  EXPECT_FALSE(client.tdtcp_active());
  sim.RunUntil(SimTime::Millis(10));
  EXPECT_GT(client.bytes_acked(), at_downgrade);
}

}  // namespace
}  // namespace tdtcp
