// RTT estimation, the TDTCP synthesized timeout (§4.4), and Karn's rules
// for the exponential RTO backoff.
#include <gtest/gtest.h>

#include "cc/registry.hpp"
#include "cc/reno.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/tcp_connection.hpp"
#include "tdtcp/tdn_manager.hpp"
#include "test_util.hpp"

namespace tdtcp {
namespace {

using test::LoopbackHarness;

TEST(RttEstimator, FirstSampleInitializes) {
  RttEstimator e;
  EXPECT_FALSE(e.has_sample());
  e.AddSample(SimTime::Micros(100));
  EXPECT_TRUE(e.has_sample());
  EXPECT_EQ(e.srtt(), SimTime::Micros(100));
  EXPECT_EQ(e.rttvar(), SimTime::Micros(50));
  EXPECT_EQ(e.min_rtt(), SimTime::Micros(100));
}

TEST(RttEstimator, ConvergesToStableRtt) {
  RttEstimator e;
  for (int i = 0; i < 200; ++i) e.AddSample(SimTime::Micros(100));
  EXPECT_EQ(e.srtt(), SimTime::Micros(100));
  EXPECT_LT(e.rttvar(), SimTime::Micros(2));
}

TEST(RttEstimator, TracksShiftingRtt) {
  RttEstimator e;
  for (int i = 0; i < 50; ++i) e.AddSample(SimTime::Micros(40));
  for (int i = 0; i < 200; ++i) e.AddSample(SimTime::Micros(120));
  EXPECT_GT(e.srtt(), SimTime::Micros(110));
  EXPECT_EQ(e.min_rtt(), SimTime::Micros(40));
}

TEST(RttEstimator, MixedSamplesLandBetween) {
  // The failure mode §3.1 describes: merging two TDNs' samples yields an
  // estimate wrong for both.
  RttEstimator e;
  for (int i = 0; i < 300; ++i) {
    e.AddSample(SimTime::Micros(i % 2 == 0 ? 40 : 100));
  }
  EXPECT_GT(e.srtt(), SimTime::Micros(50));
  EXPECT_LT(e.srtt(), SimTime::Micros(90));
}

TEST(RttEstimator, RtoBeforeSamplesIsInitial) {
  RttEstimator e;
  EXPECT_EQ(e.Rto(), RttEstimator::Config{}.initial_rto);
}

TEST(RttEstimator, RtoFormulaAndClamp) {
  RttEstimator::Config cfg;
  cfg.min_rto = SimTime::Micros(500);
  cfg.max_rto = SimTime::Millis(2);
  RttEstimator e(cfg);
  for (int i = 0; i < 200; ++i) e.AddSample(SimTime::Micros(50));
  // srtt + 4*rttvar ~ 50us -> clamped up to min_rto.
  EXPECT_EQ(e.Rto(), SimTime::Micros(500));

  RttEstimator big(cfg);
  for (int i = 0; i < 10; ++i) big.AddSample(SimTime::Millis(5));
  EXPECT_EQ(big.Rto(), SimTime::Millis(2));  // clamped down to max
}

TEST(RttEstimator, IgnoresNonPositiveSamples) {
  RttEstimator e;
  e.AddSample(SimTime::Zero());
  e.AddSample(SimTime::Micros(-5));
  EXPECT_FALSE(e.has_sample());
}

TEST(RttEstimator, SynthesizedRtoUsesSlowestTdn) {
  RttEstimator::Config cfg;
  cfg.min_rto = SimTime::Micros(10);
  RttEstimator fast(cfg), slow(cfg);
  for (int i = 0; i < 300; ++i) {
    fast.AddSample(SimTime::Micros(40));
    slow.AddSample(SimTime::Micros(200));
  }
  // ½*40 + ½*200 = 120us plus variance guard.
  const SimTime rto = fast.SynthesizedRto(slow);
  EXPECT_GE(rto, SimTime::Micros(120));
  EXPECT_LT(rto, SimTime::Micros(200));
  // Synthesizing against itself reduces to the plain formula's scale.
  EXPECT_LT(fast.SynthesizedRto(fast), SimTime::Micros(60));
}

TEST(RttEstimator, SynthesizedRtoWithoutSlowSamplesFallsBack) {
  RttEstimator fast, empty;
  for (int i = 0; i < 10; ++i) fast.AddSample(SimTime::Micros(40));
  EXPECT_EQ(fast.SynthesizedRto(empty), fast.SynthesizedRto(fast));
}

// ---------------------------------------------------------------------------
// TdnManager RTT plumbing
// ---------------------------------------------------------------------------

TEST(TdnManager, SlowestRttSelection) {
  TdnManager mgr(3, [] { return MakeReno(); }, RttEstimator::Config{}, 10);
  for (int i = 0; i < 50; ++i) {
    mgr.state(0).rtt.AddSample(SimTime::Micros(100));
    mgr.state(1).rtt.AddSample(SimTime::Micros(40));
    mgr.state(2).rtt.AddSample(SimTime::Micros(150));
  }
  EXPECT_EQ(&mgr.SlowestRtt(0), &mgr.state(2).rtt);
}

TEST(TdnManager, SlowestRttIgnoresEmptyEstimators) {
  TdnManager mgr(2, [] { return MakeReno(); }, RttEstimator::Config{}, 10);
  for (int i = 0; i < 50; ++i) mgr.state(0).rtt.AddSample(SimTime::Micros(40));
  EXPECT_EQ(&mgr.SlowestRtt(0), &mgr.state(0).rtt);
}

TEST(TdnManager, RtoForSynthesizedVsPlain) {
  RttEstimator::Config cfg;
  cfg.min_rto = SimTime::Micros(10);
  TdnManager mgr(2, [] { return MakeReno(); }, cfg, 10);
  for (int i = 0; i < 300; ++i) {
    mgr.state(0).rtt.AddSample(SimTime::Micros(200));
    mgr.state(1).rtt.AddSample(SimTime::Micros(40));
  }
  // Plain RTO for the fast TDN is small; synthesized is pessimistic.
  EXPECT_LT(mgr.RtoFor(1, false), SimTime::Micros(80));
  EXPECT_GE(mgr.RtoFor(1, true), SimTime::Micros(120));
}

// ---------------------------------------------------------------------------
// Karn's algorithm and the RTO backoff
// ---------------------------------------------------------------------------

TEST(Karn, BackoffOnlyResetByAckOfFreshData) {
  // An ACK that covers only retransmitted data is ambiguous — it may
  // acknowledge the original transmission, so it proves nothing about the
  // current path delay and must not reset the exponential backoff. Only an
  // ACK of never-retransmitted data may.
  TcpConfig c;
  c.mss = 1000;
  c.cc_factory = MakeCcFactory("reno");
  Simulator sim;
  LoopbackHarness harness(sim);
  TcpConnection conn(sim, &harness.host, 1, 99, c);
  conn.Connect();
  harness.Settle();
  Packet syn = harness.out.Pop();
  conn.HandlePacket(LoopbackHarness::SynAckFor(syn, false, 1));
  harness.Settle();
  conn.SetUnlimitedData(true);
  harness.Settle();
  harness.out.packets.clear();

  // Silence long enough for repeated timeouts: the head is retransmitted on
  // each, and the backoff climbs.
  sim.RunUntil(sim.now() + SimTime::Millis(4));
  const std::uint32_t backoff = conn.rto_backoff();
  ASSERT_GE(conn.stats().timeouts, 2u);
  ASSERT_GE(backoff, 2u);

  // Cumulative ACK of exactly the (retransmitted) head: Karn says hold.
  conn.HandlePacket(LoopbackHarness::Ack(1, 1001));
  harness.Settle();
  EXPECT_EQ(conn.rto_backoff(), backoff)
      << "backoff reset by an ACK of retransmitted-only data";

  // Cumulative ACK through data that was never retransmitted: the path is
  // demonstrably live, so the backoff resets.
  conn.HandlePacket(LoopbackHarness::Ack(1, conn.snd_nxt()));
  EXPECT_EQ(conn.rto_backoff(), 0u);
}

}  // namespace
}  // namespace tdtcp
