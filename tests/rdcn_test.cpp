// RDCN schedule and controller: day/night slots, TDN mapping, analytic
// capacity, fabric driving, notifications, reTCPdyn switch cooperation.
#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "rdcn/controller.hpp"
#include "rdcn/schedule.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace tdtcp {
namespace {

Schedule DefaultSchedule() { return Schedule(ScheduleConfig{}); }

TEST(Schedule, Lengths) {
  Schedule s = DefaultSchedule();
  EXPECT_EQ(s.slot_length(), SimTime::Micros(200));
  EXPECT_EQ(s.week_length(), SimTime::Micros(1400));
}

TEST(Schedule, SlotAtDayAndNight) {
  Schedule s = DefaultSchedule();
  auto day0 = s.SlotAt(SimTime::Micros(10));
  EXPECT_EQ(day0.day_index, 0u);
  EXPECT_FALSE(day0.night);
  EXPECT_FALSE(day0.circuit);
  EXPECT_EQ(day0.start, SimTime::Zero());
  EXPECT_EQ(day0.end, SimTime::Micros(180));

  auto night0 = s.SlotAt(SimTime::Micros(190));
  EXPECT_TRUE(night0.night);
  EXPECT_EQ(night0.start, SimTime::Micros(180));
  EXPECT_EQ(night0.end, SimTime::Micros(200));
}

TEST(Schedule, CircuitDaySlot) {
  Schedule s = DefaultSchedule();
  auto slot = s.SlotAt(SimTime::Micros(6 * 200 + 90));
  EXPECT_EQ(slot.day_index, 6u);
  EXPECT_TRUE(slot.circuit);
  EXPECT_FALSE(slot.night);
}

TEST(Schedule, WeeksRepeat) {
  Schedule s = DefaultSchedule();
  for (int w = 0; w < 5; ++w) {
    const SimTime base = s.week_length() * w;
    EXPECT_EQ(s.TdnAt(base + SimTime::Micros(100)), 0);
    EXPECT_EQ(s.TdnAt(base + SimTime::Micros(1250)), 1);
  }
}

TEST(Schedule, NightsAreTdnZeroEvenAroundCircuit) {
  Schedule s = DefaultSchedule();
  // Night after the circuit day.
  EXPECT_EQ(s.TdnAt(SimTime::Micros(1390)), 0);
  EXPECT_TRUE(s.BlackoutAt(SimTime::Micros(1390)));
  // Night before the circuit day.
  EXPECT_EQ(s.TdnAt(SimTime::Micros(1190)), 0);
}

TEST(Schedule, BoundariesExact) {
  Schedule s = DefaultSchedule();
  EXPECT_EQ(s.TdnAt(SimTime::Micros(1200)), 1);      // circuit day start
  EXPECT_EQ(s.TdnAt(SimTime::Micros(1379)), 1);      // last us of circuit day
  EXPECT_EQ(s.TdnAt(SimTime::Micros(1380)), 0);      // night begins
  EXPECT_FALSE(s.BlackoutAt(SimTime::Micros(1379)));
  EXPECT_TRUE(s.BlackoutAt(SimTime::Micros(1380)));
}

TEST(Schedule, OptimalBitsOneWeek) {
  Schedule s = DefaultSchedule();
  const double bits = s.OptimalBits(s.week_length(), 10e9, 100e9);
  // 6 packet days * 180us * 10G + 1 circuit day * 180us * 100G.
  const double expected = 6 * 180e-6 * 10e9 + 180e-6 * 100e9;
  EXPECT_NEAR(bits, expected, expected * 1e-9);
}

TEST(Schedule, OptimalBitsPartialWeek) {
  Schedule s = DefaultSchedule();
  // Half of day 0 only.
  EXPECT_NEAR(s.OptimalBits(SimTime::Micros(90), 10e9, 100e9), 90e-6 * 10e9, 1);
  // Day 0 + its night: night adds nothing.
  EXPECT_NEAR(s.OptimalBits(SimTime::Micros(200), 10e9, 100e9), 180e-6 * 10e9, 1);
  // Into the circuit day.
  const double into_circuit = s.OptimalBits(SimTime::Micros(1300), 10e9, 100e9);
  EXPECT_NEAR(into_circuit, 6 * 180e-6 * 10e9 + 100e-6 * 100e9, 10);
}

TEST(Schedule, OptimalBitsMonotone) {
  Schedule s = DefaultSchedule();
  double prev = -1;
  for (int us = 0; us <= 3000; us += 17) {
    const double bits = s.OptimalBits(SimTime::Micros(us), 10e9, 100e9);
    EXPECT_GE(bits, prev);
    prev = bits;
  }
}

TEST(Schedule, PacketOnlyIgnoresBlackouts) {
  Schedule s = DefaultSchedule();
  EXPECT_NEAR(s.PacketOnlyBits(s.week_length(), 10e9), 1400e-6 * 10e9, 1);
}

TEST(Schedule, CustomRatio) {
  ScheduleConfig sc;
  sc.num_days = 3;
  sc.circuit_day = 0;
  Schedule s(sc);
  EXPECT_EQ(s.week_length(), SimTime::Micros(600));
  EXPECT_EQ(s.TdnAt(SimTime::Micros(10)), 1);
  EXPECT_EQ(s.TdnAt(SimTime::Micros(210)), 0);
}

// ---------------------------------------------------------------------------
// Controller (driving a real topology)
// ---------------------------------------------------------------------------

struct ControllerFixture {
  ControllerFixture(bool dynamic_voq = false) : rng(1), topo(sim, rng, TopoCfg()) {
    RdcnController::Config rc;
    rc.packet_mode = topo.config().packet_mode;
    rc.circuit_mode = topo.config().circuit_mode;
    rc.dynamic_voq = dynamic_voq;
    controller = std::make_unique<RdcnController>(
        sim, rc,
        std::vector<FabricPort*>{topo.port(0, 1), topo.port(1, 0)},
        std::vector<ToRSwitch*>{topo.tor(0), topo.tor(1)});
  }

  static TopologyConfig TopoCfg() {
    TopologyConfig tc;
    tc.hosts_per_rack = 2;
    return tc;
  }

  Simulator sim;
  Random rng;
  Topology topo;
  std::unique_ptr<RdcnController> controller;
};

TEST(Controller, DrivesModesThroughWeek) {
  ControllerFixture f;
  f.controller->Start();
  f.sim.RunUntil(SimTime::Micros(100));  // packet day 0
  EXPECT_FALSE(f.topo.port(0, 1)->mode().circuit);
  EXPECT_FALSE(f.topo.port(0, 1)->blackout());

  f.sim.RunUntil(SimTime::Micros(190));  // night 0
  EXPECT_TRUE(f.topo.port(0, 1)->blackout());

  f.sim.RunUntil(SimTime::Micros(1250));  // circuit day
  EXPECT_TRUE(f.topo.port(0, 1)->mode().circuit);
  EXPECT_TRUE(f.topo.port(1, 0)->mode().circuit);
  EXPECT_FALSE(f.topo.port(0, 1)->blackout());

  f.sim.RunUntil(SimTime::Micros(1390));  // night after circuit
  EXPECT_TRUE(f.topo.port(0, 1)->blackout());

  f.sim.RunUntil(SimTime::Micros(1450));  // next week's day 0
  EXPECT_FALSE(f.topo.port(0, 1)->mode().circuit);
  EXPECT_FALSE(f.topo.port(0, 1)->blackout());
}

TEST(Controller, NotifiesOnlyOnTdnChanges) {
  ControllerFixture f;
  std::vector<std::pair<SimTime, TdnId>> notifications;
  int owner;
  f.topo.host(0, 0)->AddTdnListener(&owner, [&](TdnId t, bool imm) {
    if (!imm) notifications.push_back({f.sim.now(), t});
  });
  f.controller->Start();
  f.sim.RunUntil(SimTime::Micros(2800));  // two weeks
  // Exactly 2 changes per week: ->1 at circuit start, ->0 at circuit end.
  ASSERT_EQ(notifications.size(), 4u);
  EXPECT_EQ(notifications[0].second, 1);
  EXPECT_EQ(notifications[1].second, 0);
  // Timing: TDN 1 shortly after 1200us, TDN 0 shortly after 1380us.
  EXPECT_GE(notifications[0].first, SimTime::Micros(1200));
  EXPECT_LT(notifications[0].first, SimTime::Micros(1205));
  EXPECT_GE(notifications[1].first, SimTime::Micros(1380));
  EXPECT_LT(notifications[1].first, SimTime::Micros(1385));
}

TEST(Controller, ActiveTdnQueryMatchesSchedule) {
  ControllerFixture f;
  f.controller->Start();
  f.sim.RunUntil(SimTime::Micros(10));
  EXPECT_EQ(f.controller->ActiveTdn(SimTime::Micros(1250)), 1);
  EXPECT_EQ(f.controller->ActiveTdn(SimTime::Micros(100)), 0);
  EXPECT_TRUE(f.controller->BlackoutAt(SimTime::Micros(190)));
}

TEST(Controller, DynamicVoqResizesAhead) {
  ControllerFixture f(/*dynamic_voq=*/true);
  f.controller->Start();
  // Before the advance point the VOQ is at its configured size.
  f.sim.RunUntil(SimTime::Micros(1040));
  EXPECT_EQ(f.topo.port(0, 1)->voq().capacity(), 16u);
  // 150us ahead of the circuit day (1200), i.e., from 1050 on: enlarged.
  f.sim.RunUntil(SimTime::Micros(1060));
  EXPECT_EQ(f.topo.port(0, 1)->voq().capacity(), 50u);
  // Restored at circuit teardown.
  f.sim.RunUntil(SimTime::Micros(1390));
  EXPECT_EQ(f.topo.port(0, 1)->voq().capacity(), 16u);
}

TEST(Controller, DynamicVoqSendsImminentNotice) {
  ControllerFixture f(/*dynamic_voq=*/true);
  std::vector<SimTime> imminents;
  int owner;
  f.topo.host(0, 0)->AddTdnListener(&owner, [&](TdnId, bool imm) {
    if (imm) imminents.push_back(f.sim.now());
  });
  f.controller->Start();
  f.sim.RunUntil(SimTime::Micros(2800));
  ASSERT_EQ(imminents.size(), 2u);
  EXPECT_GE(imminents[0], SimTime::Micros(1050));
  EXPECT_LT(imminents[0], SimTime::Micros(1055));
}

TEST(Controller, CountsReconfigurations) {
  ControllerFixture f;
  f.controller->Start();
  f.sim.RunUntil(SimTime::Micros(1400));
  EXPECT_EQ(f.controller->reconfigurations(), 8u);  // days 0..6 + next day 0
}

}  // namespace
}  // namespace tdtcp
