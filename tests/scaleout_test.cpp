// Scale-out workload engine: flow-size CDF sampling, rack-selection
// policies, rack validation (the NDEBUG-silent-assert bugfixes), per-size
// FCT bucketing, nearest-rank percentile semantics, and the N-rack rotor
// sweep's jobs=1 == jobs=N bit-identity contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/experiment.hpp"
#include "app/flow_cdf.hpp"
#include "app/result_io.hpp"
#include "app/sweep.hpp"
#include "app/workload.hpp"
#include "rdcn/rotor_controller.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "trace/samplers.hpp"

namespace tdtcp {
namespace {

// ---------------------------------------------------------------------------
// FlowSizeCdf
// ---------------------------------------------------------------------------

TEST(FlowSizeCdf, ValidatesTable) {
  using P = FlowSizeCdf::Point;
  EXPECT_THROW(FlowSizeCdf("x", {}), std::invalid_argument);
  EXPECT_THROW(FlowSizeCdf("x", {P{0, 0}}), std::invalid_argument);
  // cum decreasing.
  EXPECT_THROW(FlowSizeCdf("x", {P{0, 0.5}, P{10, 0.2}, P{20, 1.0}}),
               std::invalid_argument);
  // bytes decreasing.
  EXPECT_THROW(FlowSizeCdf("x", {P{10, 0}, P{5, 0.5}, P{20, 1.0}}),
               std::invalid_argument);
  // last row must close at 1.
  EXPECT_THROW(FlowSizeCdf("x", {P{0, 0}, P{10, 0.9}}), std::invalid_argument);
  // cum out of range.
  EXPECT_THROW(FlowSizeCdf("x", {P{0, 0}, P{10, 1.5}}), std::invalid_argument);
  EXPECT_NO_THROW(FlowSizeCdf("x", {P{0, 0}, P{10, 1.0}}));
}

TEST(FlowSizeCdf, PinnedQuantiles) {
  const FlowSizeCdf ws = FlowSizeCdf::Websearch();
  EXPECT_DOUBLE_EQ(ws.BytesAtQuantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ws.BytesAtQuantile(0.15), 10'000.0);
  // Interpolated halfway between (10000, .15) and (20000, .20).
  EXPECT_DOUBLE_EQ(ws.BytesAtQuantile(0.175), 15'000.0);
  EXPECT_DOUBLE_EQ(ws.BytesAtQuantile(1.0), 30'000'000.0);
  // u below the first row's cum sticks to the first row's size.
  const FlowSizeCdf dm = FlowSizeCdf::Datamining();
  EXPECT_DOUBLE_EQ(dm.BytesAtQuantile(0.0), 80.0);
  EXPECT_DOUBLE_EQ(dm.BytesAtQuantile(1.0), 1'000'000'000.0);
}

TEST(FlowSizeCdf, DeterministicSampleStream) {
  const FlowSizeCdf ws = FlowSizeCdf::Websearch();
  Random a(42), b(42), c(43);
  std::vector<std::uint64_t> sa, sb, sc;
  for (int i = 0; i < 1000; ++i) {
    sa.push_back(ws.Sample(a));
    sb.push_back(ws.Sample(b));
    sc.push_back(ws.Sample(c));
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(FlowSizeCdf, SampleMeanMatchesAnalyticMean) {
  for (const char* name : {"websearch", "datamining"}) {
    const auto cdf = BuiltinFlowSizeCdf(name);
    Random rng(7);
    const int n = 200'000;
    double sum = 0;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(cdf->Sample(rng));
    }
    const double sample_mean = sum / n;
    const double analytic = cdf->MeanBytes();
    // Generous tolerance: datamining's tail reaches 1 GB, so even 200k
    // draws leave a few percent of sampling noise.
    EXPECT_NEAR(sample_mean / analytic, 1.0, 0.10) << name;
  }
  // Websearch's documented mean is ~1.71 MB.
  EXPECT_NEAR(BuiltinFlowSizeCdf("websearch")->MeanBytes(), 1.71e6, 0.1e6);
}

TEST(FlowSizeCdf, FromFileParsesCdfFormat) {
  const std::string path = testing::TempDir() + "/tdtcp_cdf_test.txt";
  {
    std::ofstream f(path);
    f << "# classic three-column cdf.h file: size, unused, cum\n";
    f << "100 1 0\n";
    f << "1000 2 0.5   # trailing comment\n";
    f << "\n";
    f << "10000 3 1\n";
  }
  const FlowSizeCdf cdf = FlowSizeCdf::FromFile(path);
  ASSERT_EQ(cdf.points().size(), 3u);
  EXPECT_DOUBLE_EQ(cdf.BytesAtQuantile(0.0), 100.0);
  EXPECT_DOUBLE_EQ(cdf.BytesAtQuantile(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(cdf.BytesAtQuantile(1.0), 10'000.0);
  std::remove(path.c_str());
  EXPECT_THROW(FlowSizeCdf::FromFile("/nonexistent/cdf.txt"),
               std::invalid_argument);
}

TEST(FlowSizeCdf, BuiltinLookup) {
  EXPECT_EQ(BuiltinFlowSizeCdf("websearch")->name(), "websearch");
  EXPECT_EQ(BuiltinFlowSizeCdf("datamining")->name(), "datamining");
  EXPECT_THROW(BuiltinFlowSizeCdf("nope"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Size buckets and percentile semantics (the off-by-one audit)
// ---------------------------------------------------------------------------

TEST(FctBuckets, PinnedEdges) {
  EXPECT_EQ(FctBucketOf(1), 0u);
  EXPECT_EQ(FctBucketOf(10'000), 0u);    // upper edges are inclusive
  EXPECT_EQ(FctBucketOf(10'001), 1u);
  EXPECT_EQ(FctBucketOf(100'000), 1u);
  EXPECT_EQ(FctBucketOf(100'001), 2u);
  EXPECT_EQ(FctBucketOf(1'000'000), 2u);
  EXPECT_EQ(FctBucketOf(1'000'001), 3u);
  EXPECT_EQ(FctBucketOf(1ull << 40), 3u);
}

TEST(Percentiles, NearestRankSmallN) {
  // Empty: defined as 0 (an empty bucket reports zero percentiles).
  EXPECT_DOUBLE_EQ(PercentileNearestRank({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank({}, 99.9), 0.0);
  // N=1: every percentile is the lone sample.
  const std::vector<double> one{42};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(one, 0), 42.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(one, 50), 42.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(one, 100), 42.0);
  // N=2: rank = ceil(p/100 * 2), so p50 is the first sample (rank 1) and
  // everything above p50 is the second.
  const std::vector<double> two{1, 2};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(two, 0), 1.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(two, 50), 1.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(two, 51), 2.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(two, 99), 2.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(two, 100), 2.0);
  // N=4 and an unsorted input: p99 must be an observed sample (the max),
  // never an interpolation.
  const std::vector<double> four{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(PercentileNearestRank(four, 50), 2.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(four, 75), 3.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(four, 99), 4.0);
  EXPECT_DOUBLE_EQ(PercentileNearestRank(four, 99.9), 4.0);
}

TEST(Percentiles, InterpolatedSmallNForContrast) {
  // The linear-interpolated Percentile (plotting curves) averages between
  // order statistics — exactly why the FCT tails use nearest-rank instead.
  const std::vector<double> two{1, 2};
  EXPECT_DOUBLE_EQ(Percentile(two, 50), 1.5);
  EXPECT_DOUBLE_EQ(Percentile(two, 100), 2.0);
  EXPECT_DOUBLE_EQ(Percentile(two, 0), 1.0);
  const std::vector<double> one{42};
  EXPECT_DOUBLE_EQ(Percentile(one, 99), 42.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

// ---------------------------------------------------------------------------
// Rack validation (NDEBUG builds must throw, not corrupt)
// ---------------------------------------------------------------------------

TEST(RotorValidation, OddRackCountThrows) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.num_racks = 3;
  tc.hosts_per_rack = 2;
  Topology topo(sim, rng, tc);
  RotorController::Config rc;
  EXPECT_THROW(RotorController(sim, rc, &topo), std::invalid_argument);
}

TEST(RotorValidation, EvenRackCountConstructs) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.num_racks = 4;
  tc.hosts_per_rack = 2;
  Topology topo(sim, rng, tc);
  RotorController::Config rc;
  RotorController rotor(sim, rc, &topo);
  EXPECT_EQ(rotor.num_matchings(), 3u);
}

TEST(RackValidation, WorkloadRejectsBadPairs) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.num_racks = 2;
  tc.hosts_per_rack = 4;
  Topology topo(sim, rng, tc);
  WorkloadConfig same;
  same.num_flows = 1;
  same.src_rack = 1;
  same.dst_rack = 1;
  EXPECT_THROW(Workload(sim, topo, same), std::invalid_argument);
  WorkloadConfig oob;
  oob.num_flows = 1;
  oob.src_rack = 0;
  oob.dst_rack = 5;
  EXPECT_THROW(Workload(sim, topo, oob), std::invalid_argument);
  WorkloadConfig too_many;
  too_many.num_flows = 5;  // > hosts_per_rack
  EXPECT_THROW(Workload(sim, topo, too_many), std::invalid_argument);
}

TEST(RackValidation, ChurnRejectsBadConfigs) {
  Simulator sim;
  Random rng(1);
  TopologyConfig tc;
  tc.num_racks = 2;
  tc.hosts_per_rack = 4;
  Topology topo(sim, rng, tc);
  ChurnConfig same;
  same.src_rack = 0;
  same.dst_rack = 0;
  EXPECT_THROW(ChurnGenerator(sim, topo, same, 1), std::invalid_argument);
  ChurnConfig oob;
  oob.src_rack = 9;
  EXPECT_THROW(ChurnGenerator(sim, topo, oob, 1), std::invalid_argument);
  ChurnConfig hotspot;
  hotspot.rack_policy = RackPolicy::kHotspot;
  hotspot.hotspot_rack = 7;
  EXPECT_THROW(ChurnGenerator(sim, topo, hotspot, 1), std::invalid_argument);
  ChurnConfig bad_frac;
  bad_frac.rack_policy = RackPolicy::kHotspot;
  bad_frac.hotspot_fraction = 1.5;
  EXPECT_THROW(ChurnGenerator(sim, topo, bad_frac, 1), std::invalid_argument);
}

TEST(RackValidation, RunExperimentRejectsBadWorkloadPair) {
  ExperimentConfig cfg = PaperConfig(Variant::kCubic);
  cfg.workload.src_rack = 5;  // 2-rack default topology
  EXPECT_THROW(RunExperiment(cfg), std::invalid_argument);
  ExperimentConfig same = PaperConfig(Variant::kCubic);
  same.workload.dst_rack = same.workload.src_rack;
  EXPECT_THROW(RunExperiment(same), std::invalid_argument);
}

TEST(RackPolicy, NameRoundTrip) {
  for (const RackPolicy p :
       {RackPolicy::kFixedPair, RackPolicy::kUniform, RackPolicy::kPermutation,
        RackPolicy::kHotspot}) {
    EXPECT_EQ(RackPolicyFromName(RackPolicyName(p)), p);
  }
  EXPECT_THROW(RackPolicyFromName("bogus"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// N-rack rotor sweep: determinism and per-bucket FCT reporting
// ---------------------------------------------------------------------------

ExperimentConfig RotorChurnConfig(RackPolicy policy) {
  ExperimentConfig cfg = PaperConfig(Variant::kTdtcp)
                             .WithRotorFabric(4)
                             .WithDurationMs(8)
                             .WithSampling(false, false)
                             .WithSampleInterval(SimTime::Millis(1))
                             .WithRackPolicy(policy)
                             .WithFlowSizeCdf(BuiltinFlowSizeCdf("websearch"),
                                              1.0 / 64)
                             .WithTrace();
  cfg.workload.num_flows = 0;
  cfg.churn.enabled = true;
  cfg.churn.target_connections = 600;
  cfg.churn.mean_interarrival = SimTime::Micros(150);
  cfg.churn.max_concurrent = 128;
  cfg.churn.size_cap_bytes = 2'000'000;
  return cfg;
}

TEST(RotorSweep, BitIdenticalAcrossJobs) {
  const std::vector<RackPolicy> policies{
      RackPolicy::kUniform, RackPolicy::kPermutation, RackPolicy::kHotspot};
  std::vector<ExperimentResult> serial(policies.size());
  std::vector<ExperimentResult> parallel(policies.size());
  ParallelFor(1, policies.size(), [&](std::size_t i) {
    serial[i] = RunExperiment(RotorChurnConfig(policies[i]));
  });
  ParallelFor(4, policies.size(), [&](std::size_t i) {
    parallel[i] = RunExperiment(RotorChurnConfig(policies[i]));
  });
  for (std::size_t i = 0; i < policies.size(); ++i) {
    SCOPED_TRACE(RackPolicyName(policies[i]));
    EXPECT_EQ(serial[i].churn_hash, parallel[i].churn_hash);
    EXPECT_EQ(serial[i].trace_hash, parallel[i].trace_hash);
    EXPECT_NE(serial[i].churn_hash, 0u);
    EXPECT_NE(serial[i].trace_hash, 0u);
    // Every lifecycle resolves.
    EXPECT_TRUE(serial[i].churn_all_closed);
    EXPECT_EQ(serial[i].churn.opened, 600u);
    EXPECT_EQ(serial[i].churn.closed, serial[i].churn.opened);
  }
  // Distinct policies route differently, so their fingerprints differ.
  EXPECT_NE(serial[0].churn_hash, serial[1].churn_hash);
  EXPECT_NE(serial[0].churn_hash, serial[2].churn_hash);
}

TEST(RotorSweep, PerBucketFctsPartitionCompletions) {
  const ExperimentResult r = RunExperiment(RotorChurnConfig(RackPolicy::kUniform));
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kNumFctBuckets; ++b) {
    const auto& bucket = r.churn_fct_bucket[b];
    total += bucket.count;
    if (bucket.count > 0) {
      EXPECT_GT(bucket.p50_us, 0.0);
      EXPECT_LE(bucket.p50_us, bucket.p99_us);
      EXPECT_LE(bucket.p99_us, bucket.p999_us);
    } else {
      EXPECT_DOUBLE_EQ(bucket.p50_us, 0.0);
    }
  }
  // The buckets partition exactly the kNormal completions.
  EXPECT_EQ(total, r.churn_fct_us.size());
  EXPECT_GT(total, 0u);
  // Websearch/64 under a 2 MB cap spans at least the first three buckets.
  EXPECT_GT(r.churn_fct_bucket[0].count, 0u);
  EXPECT_GT(r.churn_fct_bucket[1].count, 0u);
}

TEST(RotorSweep, BucketMetricsRoundTripThroughSweepJson) {
  SweepResult sweep;
  sweep.jobs = 1;
  SweepCell cell;
  cell.label = "tdtcp";
  cell.variant = Variant::kTdtcp;
  SweepRun run;
  run.seed = 1;
  run.result = RunExperiment(RotorChurnConfig(RackPolicy::kUniform));
  cell.duration = run.result.duration;
  cell.runs.push_back(std::move(run));
  cell.metrics = AggregateRuns(cell.runs);
  sweep.cells.push_back(std::move(cell));

  const std::string json = SweepToJson(sweep);
  // The per-bucket family is on the wire...
  EXPECT_NE(json.find("churn_fct_s_p99_us"), std::string::npos);
  EXPECT_NE(json.find("churn_fct_xl_count"), std::string::npos);
  // ...and ApplyMetric inverts it on the way back in.
  const SweepResult parsed = SweepFromJson(json);
  ASSERT_EQ(parsed.cells.size(), 1u);
  ASSERT_EQ(parsed.cells[0].runs.size(), 1u);
  const ExperimentResult& orig = sweep.cells[0].runs[0].result;
  const ExperimentResult& back = parsed.cells[0].runs[0].result;
  for (std::size_t b = 0; b < kNumFctBuckets; ++b) {
    SCOPED_TRACE(kFctBucketNames[b]);
    EXPECT_EQ(back.churn_fct_bucket[b].count, orig.churn_fct_bucket[b].count);
    EXPECT_DOUBLE_EQ(back.churn_fct_bucket[b].p50_us,
                     orig.churn_fct_bucket[b].p50_us);
    EXPECT_DOUBLE_EQ(back.churn_fct_bucket[b].p99_us,
                     orig.churn_fct_bucket[b].p99_us);
    EXPECT_DOUBLE_EQ(back.churn_fct_bucket[b].p999_us,
                     orig.churn_fct_bucket[b].p999_us);
  }
}

TEST(RotorSweep, FixedPairChurnStillRunsOnPairFabric) {
  // The legacy single-process fixed-pair path must keep working untouched
  // (the paper's two-rack churn benches ride on it).
  ExperimentConfig cfg = PaperConfig(Variant::kCubic)
                             .WithDurationMs(8)
                             .WithSampling(false, false)
                             .WithChurn(200);
  const ExperimentResult r = RunExperiment(cfg);
  EXPECT_TRUE(r.churn_all_closed);
  EXPECT_EQ(r.churn.opened, 200u);
  // Uniform 1..10-segment transfers span the s and m buckets.
  EXPECT_EQ(r.churn_fct_bucket[0].count + r.churn_fct_bucket[1].count,
            r.churn_fct_us.size());
}

}  // namespace
}  // namespace tdtcp
